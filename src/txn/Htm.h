//===- txn/Htm.h - Intel RTM intrinsics, probe, and runtime ----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware tier of the three-level execution ladder (DESIGN.md §3.12):
/// raw RTM begin/end/abort primitives, the abort-status decoding shared by
/// the retry layer's attribution counters, and the process-wide HtmRuntime
/// capability probe.
///
/// The primitives are emitted as raw opcodes (`xbegin`, `xend`,
/// `xabort imm8`) so no `-mrtm` toolchain flag or `<immintrin.h>` target
/// pragma is needed; the instructions only ever execute after the runtime
/// probe *committed* a hardware transaction on this machine, so CPUs
/// without TSX (or with RTM_ALWAYS_ABORT microcode) never reach them.
///
/// Compile-out contract: `-DOTM_HTM=0` (and any non-x86_64 target, and any
/// ThreadSanitizer build — TSan cannot see into a speculative region, so
/// instrumented builds must run the software tier) turns this header into a
/// same-surface stub whose probe reports "unavailable" and whose begin()
/// routes every caller straight to the STM. Everything above it compiles
/// unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TXN_HTM_H
#define OTM_TXN_HTM_H

#include "support/Compiler.h"

#include <cstdint>
#include <cstdlib>

/// The compile gate, defaulting on exactly where the primitives can exist.
/// Forced off under TSan even when requested explicitly: an `_xbegin`
/// region is invisible to the race detector, so instrumented builds must
/// exercise the software path they can actually check.
#ifndef OTM_HTM
#if defined(__x86_64__) && !OTM_TSAN
#define OTM_HTM 1
#else
#define OTM_HTM 0
#endif
#endif
#if OTM_HTM && (!defined(__x86_64__) || OTM_TSAN)
#undef OTM_HTM
#define OTM_HTM 0
#endif

namespace otm {
namespace txn {
namespace htm {

/// EAX after a successful `xbegin` (the Intel _XBEGIN_STARTED value).
inline constexpr unsigned Started = ~0u;

/// Abort-status bits (Intel SDM vol. 1, RTM status register).
inline constexpr unsigned StatusExplicit = 1u << 0; ///< xabort executed
inline constexpr unsigned StatusRetry = 1u << 1;    ///< retry may succeed
inline constexpr unsigned StatusConflict = 1u << 2; ///< coherence conflict
inline constexpr unsigned StatusCapacity = 1u << 3; ///< buffer overflow

/// `xabort` immediates: how the software inside a hardware region tells the
/// retry layer *why* it bailed (bits 31:24 of the abort status).
inline constexpr uint8_t CodeSerial = 0x01;      ///< serial gate held
inline constexpr uint8_t CodeUnsupported = 0x02; ///< op cannot run in hw
inline constexpr uint8_t CodeUser = 0x03;        ///< Tx.userAbort()
inline constexpr uint8_t CodeException = 0x04;   ///< user exception thrown
inline constexpr uint8_t CodeLocked = 0x05;      ///< software owner seen

inline constexpr uint8_t abortCode(unsigned Status) {
  return static_cast<uint8_t>((Status >> 24) & 0xffu);
}

#if OTM_HTM

/// Starts a hardware transaction. Returns Started on entry into the
/// speculative region; on abort, execution resumes *here* with the abort
/// status in the return value (registers and memory rolled back).
OTM_ALWAYS_INLINE unsigned begin() {
  unsigned Status = Started;
  asm volatile(".byte 0xc7,0xf8; .long 0" : "+a"(Status) : : "memory");
  return Status;
}

/// Commits the current hardware transaction, publishing every speculative
/// store atomically.
OTM_ALWAYS_INLINE void end() {
  asm volatile(".byte 0x0f,0x01,0xd5" ::: "memory");
}

/// Aborts the current hardware transaction with \p Code in the status. Must
/// only execute inside a speculative region (xbegin succeeded); outside one
/// the instruction is a no-op, which the trailing trap turns loud.
template <uint8_t Code> [[noreturn]] OTM_ALWAYS_INLINE void abortWith() {
  asm volatile(".byte 0xc6,0xf8,%c0" : : "i"(Code) : "memory");
  OTM_UNREACHABLE("xabort executed outside a hardware transaction");
}

#else // !OTM_HTM — same-surface stub

/// Stub begin(): reports a capacity abort without the retry bit, which is
/// the "will never fit, go to software" answer — callers that ignore the
/// runtime probe still route to the STM tier.
OTM_ALWAYS_INLINE unsigned begin() { return StatusCapacity; }
OTM_ALWAYS_INLINE void end() {}
template <uint8_t Code> [[noreturn]] OTM_ALWAYS_INLINE void abortWith() {
  OTM_UNREACHABLE("htm::abortWith reached in an OTM_HTM=0 build");
}

#endif // OTM_HTM

/// Process-wide RTM capability, decided once at first use.
///
/// Three gates compose into available():
///   1. CPUID leaf 7 advertises RTM (bit EBX[11]),
///   2. a *functional* probe committed an empty hardware transaction —
///      CPUID alone is a lie on RTM_ALWAYS_ABORT parts and under some
///      hypervisors, so the only trustworthy signal is a real commit,
///   3. the OTM_HTM environment kill switch is not "0" (the same variable
///      also zeroes TxConfig::HtmAttempts; checking here too makes the
///      switch total even for code that sets attempts programmatically).
///
/// The probe never runs `xbegin` unless CPUID said RTM exists, so no-TSX
/// hosts execute only CPUID — the #UD trap is unreachable.
class HtmRuntime {
public:
  static HtmRuntime &instance() {
    static HtmRuntime R;
    return R;
  }

  /// CPUID leaf 7 advertised RTM.
  bool cpuidSupported() const { return CpuidRtm; }
  /// The functional probe committed a hardware transaction.
  bool probeCommitted() const { return Functional; }
  /// The OTM_HTM=0 environment kill switch is set.
  bool envDisabled() const { return EnvOff; }
  /// All gates passed: the executor may issue hardware attempts.
  bool available() const { return Avail; }

private:
  HtmRuntime() {
#if OTM_HTM
    if (const char *E = std::getenv("OTM_HTM"))
      EnvOff = std::strtoul(E, nullptr, 10) == 0;
    CpuidRtm = cpuidHasRtm();
    if (CpuidRtm && !EnvOff)
      Functional = probeRtm();
    Avail = CpuidRtm && Functional && !EnvOff;
#endif
  }

#if OTM_HTM
  static bool cpuidHasRtm() {
    unsigned Eax = 0, Ebx = 0, Ecx = 0, Edx = 0;
    asm volatile("cpuid" : "+a"(Eax), "=b"(Ebx), "+c"(Ecx), "=d"(Edx));
    if (Eax < 7)
      return false; // leaf 7 does not exist
    Eax = 7;
    Ecx = 0;
    asm volatile("cpuid" : "+a"(Eax), "=b"(Ebx), "+c"(Ecx), "=d"(Edx));
    return (Ebx >> 11) & 1;
  }

  /// Tries a handful of empty transactions; success is one real commit.
  /// Empty regions abort only on interrupts, so a working implementation
  /// commits on the first or second try; sixteen misses means the
  /// hardware lies (RTM_ALWAYS_ABORT) and the tier stays off.
  static bool probeRtm() {
    for (int I = 0; I < 16; ++I) {
      unsigned S = begin();
      if (S == Started) {
        end();
        return true;
      }
    }
    return false;
  }
#endif

  bool CpuidRtm = false;
  bool Functional = false;
  bool EnvOff = false;
  bool Avail = false;
};

} // namespace htm
} // namespace txn
} // namespace otm

#endif // OTM_TXN_HTM_H
