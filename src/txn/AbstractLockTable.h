//===- txn/AbstractLockTable.h - Striped abstract (semantic) locks -*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lock table behind transactional boosting (DESIGN.md §3.10): a striped
/// hash of (container-id, key) -> owning transaction. A boosted container
/// operation acquires the abstract lock for its key at operation start and
/// holds it until the transaction commits or aborts, so two transactions
/// conflict exactly when their *operations* don't commute — not when they
/// happen to touch shared structure (bucket heads, tree spines).
///
/// The table provides only the primitives (single CAS attempts, release,
/// occupancy); the wait/abort protocol lives in stm::TxManager, where a
/// semantic conflict is arbitrated by the same pluggable ContentionManagers
/// that handle structural ownership conflicts. Slot owners are identified by
/// their txn::CmTxState so this layer never needs to know about TxManager.
///
/// Each container also maps to a *gate* that arbitrates between semantic
/// operations and whole-container structural ones (sumValues-style
/// traversals, and any future resize/rebalance that can't express a per-key
/// inverse). The handshake is Dekker-shaped, hence the seq_cst notes:
///
///   semantic:   ActiveSemantic++  ;  if (Structural owned) back off
///   structural: CAS Structural    ;  wait until ActiveSemantic drains
///
/// A semantic holder keeps its ActiveSemantic contribution until the lock is
/// released at commit/abort — after its undo handlers ran — so a structural
/// operation admitted by the drain can never observe half-undone state.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TXN_ABSTRACTLOCKTABLE_H
#define OTM_TXN_ABSTRACTLOCKTABLE_H

#include "txn/ContentionManager.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>

/// Compile-time kill switch for the transactional-boosting tier. Defined
/// here (every boosting-aware file includes this header, directly or via
/// TxManager.h) and overridable from the build: -DOTM_BOOST=0 compiles out
/// the deferred-action logs and acquire paths, and BoostedPolicy degrades to
/// the optimized object-STM hooks so every container stays correct.
#ifndef OTM_BOOST
#define OTM_BOOST 1
#endif

namespace otm {
namespace txn {

class AbstractLockTable {
public:
  /// Striping: 16K key slots shared by every container, 1K container gates.
  /// Collisions are conservative (a false semantic conflict waits or
  /// aborts; it never admits a real one).
  static constexpr std::size_t NumSlots = std::size_t(1) << 14;
  static constexpr std::size_t NumGates = std::size_t(1) << 10;

  struct Slot {
    std::atomic<CmTxState *> Owner{nullptr};
  };

  struct Gate {
    /// Transaction holding the whole container (structural fallback).
    std::atomic<CmTxState *> Structural{nullptr};
    /// Abstract key locks currently held under this gate. Incremented by
    /// the acquirer *before* its slot CAS (see the handshake above) and
    /// decremented either on back-out or when the lock is released.
    std::atomic<uint32_t> ActiveSemantic{0};
  };

  /// One held lock in a transaction's release log.
  struct LockRef {
    Slot *S = nullptr;
    Gate *G = nullptr;
    bool Structural = false;
  };

  enum class Acquire : uint8_t { Acquired, AlreadyHeld, Busy };

  /// Lazy singleton: the half-MB of slots is only instantiated when a
  /// boosted container actually runs.
  static AbstractLockTable &instance() {
    static AbstractLockTable Table;
    return Table;
  }

  /// Container identity for the hash. Monotonic, never recycled: a stale id
  /// can only cause a false conflict, never alias a live lock incorrectly.
  static uint64_t nextContainerId() {
    static std::atomic<uint64_t> Next{1};
    return Next.fetch_add(1, std::memory_order_relaxed);
  }

  Slot &slotFor(uint64_t ContainerId, uint64_t Key) {
    return Slots[mix(ContainerId * 0x9e3779b97f4a7c15ULL + Key) &
                 (NumSlots - 1)];
  }

  Gate &gateFor(uint64_t ContainerId) {
    return Gates[mix(ContainerId) & (NumGates - 1)];
  }

  /// Single CAS attempt on a key slot. On Busy, \p OwnerOut carries the
  /// current holder for contention-manager arbitration. The caller must
  /// already hold an ActiveSemantic claim on the slot's gate; an Acquired
  /// result transfers that claim to the lock (released in release()).
  Acquire tryAcquire(Slot &S, CmTxState *Self, CmTxState *&OwnerOut) {
    CmTxState *Expected = nullptr;
    if (S.Owner.compare_exchange_strong(Expected, Self,
                                        std::memory_order_seq_cst,
                                        std::memory_order_acquire)) {
      Held.fetch_add(1, std::memory_order_relaxed);
      return Acquire::Acquired;
    }
    if (Expected == Self)
      return Acquire::AlreadyHeld;
    OwnerOut = Expected;
    return Acquire::Busy;
  }

  /// Single CAS attempt on a gate's structural side. Claiming the gate does
  /// NOT yet exclude semantic holders — the caller must drain
  /// ActiveSemantic down to its own contribution before touching structure.
  bool tryClaimStructural(Gate &G, CmTxState *Self, CmTxState *&OwnerOut) {
    CmTxState *Expected = nullptr;
    if (G.Structural.compare_exchange_strong(Expected, Self,
                                             std::memory_order_seq_cst,
                                             std::memory_order_acquire)) {
      Held.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    OwnerOut = Expected;
    return false;
  }

  void release(const LockRef &R, CmTxState *Self) {
    (void)Self;
    if (R.Structural) {
      assert(R.G->Structural.load(std::memory_order_relaxed) == Self &&
             "releasing a structural gate we don't hold");
      R.G->Structural.store(nullptr, std::memory_order_release);
    } else {
      assert(R.S->Owner.load(std::memory_order_relaxed) == Self &&
             "releasing an abstract lock we don't hold");
      R.S->Owner.store(nullptr, std::memory_order_release);
      R.G->ActiveSemantic.fetch_sub(1, std::memory_order_release);
    }
    Held.fetch_sub(1, std::memory_order_relaxed);
  }

  /// Occupancy gauge for telemetry (key locks + structural gates held).
  uint64_t heldCount() const { return Held.load(std::memory_order_relaxed); }
  static constexpr std::size_t capacity() { return NumSlots; }

private:
  AbstractLockTable()
      : Slots(new Slot[NumSlots]), Gates(new Gate[NumGates]) {}

  /// 64-bit finalizer (murmur3-style) so sequential keys spread over slots.
  static uint64_t mix(uint64_t X) {
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdULL;
    X ^= X >> 33;
    X *= 0xc4ceb9fe1a85ec53ULL;
    X ^= X >> 33;
    return X;
  }

  std::unique_ptr<Slot[]> Slots;
  std::unique_ptr<Gate[]> Gates;
  std::atomic<uint64_t> Held{0};
};

} // namespace txn
} // namespace otm

#endif // OTM_TXN_ABSTRACTLOCKTABLE_H
