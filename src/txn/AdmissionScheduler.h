//===- txn/AdmissionScheduler.h - Conflict-avoiding admission --*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission/batching layer above the retry executor (DESIGN.md §3.11):
/// every mechanism below this line resolves conflicts *after* transactions
/// collide (contention managers arbitrate, the serial gate guarantees
/// progress, MVCC hides readers). This layer is the complementary move —
/// detect statically-compatible transactions *before* they execute and
/// schedule them so the conflict never happens, turning aborted speculation
/// into bounded queueing.
///
/// Mechanics:
///
///   - Incoming transactions carry a TxSummary (Bloom read/write-set
///     fingerprints, declared up front or sampled from a first speculative
///     attempt). Summaries whose fingerprints are provably disjoint from
///     every in-flight transaction of the same class are admitted
///     immediately and run concurrently — the retry path is untouched.
///
///   - A transaction whose summary maybe-conflicts with in-flight work
///     parks in a bounded per-shard FIFO instead of speculating. Releases
///     drain the queue strictly in order (no overtaking, so the queue
///     cannot starve anyone). A full queue — or a waiter that outlives the
///     wait budget — falls back to ordinary speculation: the scheduler is
///     an optimization gate, never a correctness gate, and the STM below
///     stays the sole arbiter of serializability.
///
///   - Admission costs a lock+scan per transaction, which only pays for
///     itself under contention. A per-class adaptive gate therefore keeps
///     admission OFF until the measured abort rate of that class crosses a
///     threshold, and turns it back off when the storm passes. The rate is
///     fed by caller-reported aborted attempts and cross-checked against
///     the per-victim abort totals of the obs::AbortSites conflict-graph
///     edge table (the same table the topology work consumes).
///
/// Classes partition the key-space convention: summaries are only compared
/// within one class (one container / one request family), so declared
/// container-key summaries never meet sampled address-based ones.
/// Cross-class conflicts remain speculative — safe, just unscheduled.
///
/// Compile-time kill switch: -DOTM_SCHED=0 compiles the shard tables,
/// queues, and gates out; admit() degrades to an immediate no-op ticket and
/// Stm::atomicScheduled to plain Stm::atomic. Runtime mode comes from
/// OTM_SCHED= (off | on | adaptive, default adaptive).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TXN_ADMISSIONSCHEDULER_H
#define OTM_TXN_ADMISSIONSCHEDULER_H

#include "obs/Json.h"
#include "txn/Fingerprint.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

/// Compile-time kill switch for the admission/batching tier (CI builds with
/// -DOTM_SCHED=0 to prove the pure-speculation path stands alone).
#ifndef OTM_SCHED
#define OTM_SCHED 1
#endif

namespace otm {
namespace txn {

/// Runtime admission mode (OTM_SCHED environment variable).
enum class SchedMode : uint8_t {
  Off,      ///< never admit; every transaction speculates (baseline arm)
  On,       ///< admission always active for every class
  Adaptive, ///< per-class gates driven by measured abort rates (default)
};

/// Plain snapshot of the scheduler counters (relaxed reads; same memory-
/// order policy as the other stats blocks).
struct SchedStatsSnapshot {
  uint64_t AdmittedImmediate = 0; ///< compatible on arrival, ran at once
  uint64_t Queued = 0;            ///< parked in a shard FIFO at least once
  uint64_t QueueOverflows = 0;    ///< queue full: fell back to speculation
  uint64_t TimeoutBypasses = 0;   ///< outwaited the budget: speculated
  uint64_t Bypassed = 0;          ///< admission off (mode or class gate)
  uint64_t Releases = 0;          ///< transactions that reported back
  uint64_t AbortsReported = 0;    ///< aborted attempts across all releases
  uint64_t GateFlipsOn = 0;       ///< adaptive gates armed by abort storms
  uint64_t GateFlipsOff = 0;      ///< adaptive gates disarmed after calm
  uint64_t GatesOn = 0;           ///< gauge: classes currently gated on
  uint64_t MaxQueueDepth = 0;     ///< high-water mark across all shards
  uint64_t QueueWaitMicros = 0;   ///< total time spent parked (nd)
};

#if OTM_SCHED

class AdmissionScheduler {
public:
  /// Shards partition classes; slots bound the compat scan; the queue cap
  /// bounds how much latency queueing may add before the scheduler gets out
  /// of the way and lets speculation absorb the burst.
  static constexpr unsigned NumShards = 8;      // power of two
  static constexpr unsigned SlotsPerShard = 16; // in-flight compat window
  static constexpr unsigned NumClasses = 64;    // adaptive gate slots

  static AdmissionScheduler &instance();

  static constexpr bool compiledIn() { return true; }

  /// Handle for one admitted (or bypassed) transaction; returned by
  /// admit(), consumed by release(). A negative Slot means the transaction
  /// was not admitted into an in-flight slot (bypass/overflow/timeout) and
  /// runs as ordinary speculation — release() then only feeds the gate.
  struct Ticket {
    uint32_t Shard = 0;
    int32_t Slot = -1;
    uint32_t ClassId = 0;
    bool Waited = false;
  };

  /// Admission decision for one transaction of \p ClassId with footprint
  /// \p S. May block (bounded by the queue-wait budget) while conflicting
  /// in-flight transactions drain. Never blocks when the mode or the
  /// class gate has admission off.
  Ticket admit(uint32_t ClassId, const TxSummary &S);

  /// Reports the transaction done. \p AbortedAttempts is how many times
  /// the STM below still aborted it (0 for a clean run) — the adaptive
  /// gate's primary feedback; \p VictimSite optionally names the executing
  /// thread's obs site id so the gate can cross-check the AbortSites
  /// conflict-graph edge table. Must be called exactly once per admit().
  void release(Ticket &T, uint64_t AbortedAttempts, uint32_t VictimSite = 0);

  SchedMode mode() const { return Mode.load(std::memory_order_relaxed); }
  void setMode(SchedMode M) { Mode.store(M, std::memory_order_relaxed); }

  /// True when transactions of \p ClassId are currently being admission-
  /// controlled (mode On, or mode Adaptive with the class gate armed).
  bool admissionActive(uint32_t ClassId) const {
    SchedMode M = mode();
    if (M == SchedMode::Off)
      return false;
    if (M == SchedMode::On)
      return true;
    return Gates[ClassId % NumClasses].On.load(std::memory_order_relaxed);
  }

  /// Adaptive-gate tuning (tests force storms through these; defaults are
  /// conservative: admission must be clearly cheaper than the aborts it
  /// prevents before it turns on).
  void setGateThresholds(double OnRate, double OffRate) {
    GateOnRate = OnRate;
    GateOffRate = OffRate;
  }
  void setGateWindow(unsigned Releases) { GateWindow = Releases; }
  void setQueueCapacity(unsigned Cap) { QueueCap = Cap; }
  unsigned queueCapacity() const { return QueueCap; }
  void setQueueWaitBudget(std::chrono::microseconds B) { WaitBudget = B; }

  SchedStatsSnapshot stats() const;

  /// Drops all gates, counters, and high-water marks. Only safe while no
  /// transaction is between admit() and release() (bench cell boundaries,
  /// test setup).
  void resetForTesting();

private:
  AdmissionScheduler();

  struct InFlight {
    TxSummary S;
    uint32_t ClassId = 0;
    bool Active = false;
  };

  struct Waiter {
    const TxSummary *S = nullptr;
    uint32_t ClassId = 0;
    int32_t GrantedSlot = -1;
  };

  struct Shard {
    std::mutex M;
    std::condition_variable CV;
    InFlight Slots[SlotsPerShard];
    unsigned ActiveCount = 0;
    std::deque<Waiter *> Queue;
  };

  /// Per-class adaptive gate: a sliding window of release feedback plus
  /// the clamped delta of this class's victim-site abort total from the
  /// AbortSites edge table.
  struct ClassGate {
    std::atomic<bool> On{false};
    std::atomic<uint32_t> VictimSite{0};
    std::atomic<uint64_t> WindowReleases{0};
    std::atomic<uint64_t> WindowAborts{0};
    std::atomic<uint64_t> PrevEdgeTotal{0};
  };

  Shard &shardFor(uint32_t ClassId) {
    return Shards[ClassId & (NumShards - 1)];
  }

  /// Caller holds the shard mutex. Returns the granted slot index, or -1
  /// when \p S conflicts with an active same-class summary (or no slot is
  /// free). Different classes use different key conventions, so their
  /// fingerprints are incomparable — they pass each other freely and their
  /// conflicts stay with the STM.
  int32_t tryInstall(Shard &Sh, uint32_t ClassId, const TxSummary &S);

  /// Caller holds the shard mutex: grants slots to queue heads in strict
  /// FIFO order until the head is incompatible (or the queue empties).
  void drainQueueLocked(Shard &Sh);

  void recordRelease(uint32_t ClassId, uint64_t AbortedAttempts,
                     uint32_t VictimSite);
  void recomputeGate(ClassGate &G, uint64_t WindowAborts);

  /// Sum of the AbortSites conflict-graph edge totals whose victim is
  /// \p Site (0 -> 0). Linear scan of the bounded edge table; runs once
  /// per gate window, not per transaction.
  static uint64_t victimEdgeTotal(uint32_t Site);

  Shard Shards[NumShards];
  ClassGate Gates[NumClasses];

  std::atomic<SchedMode> Mode{SchedMode::Adaptive};
  unsigned QueueCap = 64;
  unsigned GateWindow = 128;
  double GateOnRate = 0.05;  ///< aborts per release that arm a gate
  double GateOffRate = 0.01; ///< ... and disarm it (hysteresis)
  std::chrono::microseconds WaitBudget{100000}; // 100ms safety valve

  // Counters (names match SchedStatsSnapshot).
  std::atomic<uint64_t> AdmittedImmediate{0};
  std::atomic<uint64_t> QueuedCount{0};
  std::atomic<uint64_t> QueueOverflows{0};
  std::atomic<uint64_t> TimeoutBypasses{0};
  std::atomic<uint64_t> Bypassed{0};
  std::atomic<uint64_t> Releases{0};
  std::atomic<uint64_t> AbortsReported{0};
  std::atomic<uint64_t> GateFlipsOn{0};
  std::atomic<uint64_t> GateFlipsOff{0};
  std::atomic<uint64_t> GatesOn{0};
  std::atomic<uint64_t> MaxQueueDepth{0};
  std::atomic<uint64_t> QueueWaitMicros{0};
};

#else // !OTM_SCHED

/// Compiled-out stub: the same surface with every path a no-op, so call
/// sites (Stm::atomicScheduled, the E11 harness, tests) build unchanged
/// and behave exactly like pure speculation.
class AdmissionScheduler {
public:
  static constexpr unsigned NumShards = 8;
  static constexpr unsigned SlotsPerShard = 16;
  static constexpr unsigned NumClasses = 64;

  static AdmissionScheduler &instance();

  static constexpr bool compiledIn() { return false; }

  struct Ticket {
    uint32_t Shard = 0;
    int32_t Slot = -1;
    uint32_t ClassId = 0;
    bool Waited = false;
  };

  Ticket admit(uint32_t, const TxSummary &) { return {}; }
  void release(Ticket &, uint64_t, uint32_t = 0) {}

  SchedMode mode() const { return SchedMode::Off; }
  void setMode(SchedMode) {}
  bool admissionActive(uint32_t) const { return false; }
  void setGateThresholds(double, double) {}
  void setGateWindow(unsigned) {}
  void setQueueCapacity(unsigned) {}
  unsigned queueCapacity() const { return 0; }
  void setQueueWaitBudget(std::chrono::microseconds) {}
  SchedStatsSnapshot stats() const { return {}; }
  void resetForTesting() {}
};

#endif // OTM_SCHED

/// The scheduler's view for BENCH_E*.json ("sched" section) and the
/// telemetry stream ("sched" source). Keys exist — with zero values — in
/// OTM_SCHED=0 builds too: the schema must not fork on the compile switch.
obs::JsonValue schedStatsToJson();

} // namespace txn
} // namespace otm

#endif // OTM_TXN_ADMISSIONSCHEDULER_H
