//===- txn/Fingerprint.h - Read/write-set Bloom summaries ------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width Bloom-filter summaries of transaction read/write sets, the
/// currency of the admission scheduler (DESIGN.md §3.11). A summary is what
/// a transaction *declares* (server request handlers know their keys up
/// front) or what gets *sampled* from a first speculative attempt (the
/// per-transaction HashFilter already holds the read set; the update log
/// holds the write set — see HashFilter::appendFingerprint and
/// TxManager::sampleSummary).
///
/// The conservative direction matters and is one-sided by construction:
/// any key present in two real sets is hashed to the *same* k bit
/// positions in both filters, so the bitwise AND of the filters is nonzero
/// whenever the real intersection is nonempty. Hence
///
///   disjoint(A, B) == true   =>   the real sets are disjoint (provable),
///   disjoint(A, B) == false  =>   maybe-conflict (false conflicts allowed).
///
/// A false conflict only costs queueing where speculation might have won;
/// a false "compatible" can never happen, so admission decisions never
/// admit a provably conflicting pair (SchedulerTest pins this property).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TXN_FINGERPRINT_H
#define OTM_TXN_FINGERPRINT_H

#include <cstdint>

namespace otm {
namespace txn {

/// A 256-bit Bloom filter over 64-bit keys, k = 2 probes per key. 256 bits
/// keeps a summary at four words (half a cache line for the pair of them),
/// and with typical transaction footprints of 8-32 keys the false-conflict
/// probability stays in the low percents — cheap next to one abort.
struct RwFingerprint {
  static constexpr unsigned Words = 4;
  static constexpr unsigned BitsTotal = Words * 64;

  uint64_t Bits[Words] = {};

  /// Hashes \p Key into the filter. Keys may be any 64-bit convention
  /// (object addresses for sampled summaries, container-key hashes for
  /// declared ones) — intersecting summaries is only meaningful when both
  /// sides used the same convention, which the scheduler's per-class
  /// partitioning guarantees.
  void insert(uint64_t Key) {
    uint64_t H = mix(Key);
    setBit(static_cast<unsigned>(H) & (BitsTotal - 1));
    setBit(static_cast<unsigned>(H >> 32) & (BitsTotal - 1));
  }

  void clear() {
    for (uint64_t &W : Bits)
      W = 0;
  }

  bool empty() const {
    uint64_t Acc = 0;
    for (uint64_t W : Bits)
      Acc |= W;
    return Acc == 0;
  }

  /// Union of the two key sets (Bloom OR) — the `merge` half of the
  /// compat/merge pair: a merged summary stands in for both transactions.
  void merge(const RwFingerprint &O) {
    for (unsigned I = 0; I < Words; ++I)
      Bits[I] |= O.Bits[I];
  }

  /// True when the summarized key sets are *provably* disjoint. A real
  /// shared key sets the same two bits in both filters, so a zero AND is
  /// proof of disjointness; a nonzero AND may be bit aliasing (false
  /// conflict — allowed).
  static bool disjoint(const RwFingerprint &A, const RwFingerprint &B) {
    uint64_t Acc = 0;
    for (unsigned I = 0; I < Words; ++I)
      Acc |= A.Bits[I] & B.Bits[I];
    return Acc == 0;
  }

  static bool maybeIntersects(const RwFingerprint &A, const RwFingerprint &B) {
    return !disjoint(A, B);
  }

  /// SplitMix64 finalizer: full-avalanche so both 32-bit probe halves are
  /// independently well distributed even for sequential or strided keys
  /// (pool indices, slab pointers).
  static uint64_t mix(uint64_t Key) {
    uint64_t Z = Key + 0x9e3779b97f4a7c15ULL;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  void setBit(unsigned Index) { Bits[Index >> 6] |= uint64_t{1} << (Index & 63); }
};

/// One transaction's footprint: the read set and the write set, summarized
/// separately so reader/reader concurrency survives the compression.
struct TxSummary {
  RwFingerprint Reads;
  RwFingerprint Writes;

  void clear() {
    Reads.clear();
    Writes.clear();
  }

  bool empty() const { return Reads.empty() && Writes.empty(); }

  void addRead(uint64_t Key) { Reads.insert(Key); }
  void addWrite(uint64_t Key) { Writes.insert(Key); }

  /// Serializability-compatible: no write/write, write/read, or read/write
  /// overlap between the two transactions. Read/read overlap is fine —
  /// that is the whole point of keeping the two filters separate. False
  /// conflicts allowed, false compatibilities impossible (see file header).
  bool compat(const TxSummary &O) const {
    return RwFingerprint::disjoint(Writes, O.Writes) &&
           RwFingerprint::disjoint(Writes, O.Reads) &&
           RwFingerprint::disjoint(Reads, O.Writes);
  }

  /// Union of footprints; valid for any pair, but only meaningful as a
  /// combined in-flight summary when compat() held (the snippet exemplar's
  /// merge-of-compatible-transactions rule).
  void merge(const TxSummary &O) {
    Reads.merge(O.Reads);
    Writes.merge(O.Writes);
  }
};

} // namespace txn
} // namespace otm

#endif // OTM_TXN_FINGERPRINT_H
