//===- txn/RetryExecutor.h - Unified transaction retry loop ----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one transaction-execution loop shared by all three execution paths
/// (object-STM Stm::atomic, word-STM WordStm::atomic, and the TMIR
/// interpreter's atomic regions). It owns the begin/try/rollback/pause
/// sequencing, delegates every conflict decision to the configured
/// ContentionManager, and escalates to serial-irrevocable mode through the
/// SerialGate once the retry budget is exhausted.
///
/// Two entry shapes:
///
///   - RetryExecutor<Adapter>::atomic(Fn) — the lambda style. The Adapter
///     binds the loop to a concrete STM (manager lookup, begin, one
///     attempt with that STM's abort-exception protocol, op counting for
///     karma). See stm/Stm.h and wstm/WordStm.h for the two adapters.
///
///   - RetryController — the stateful core of the loop, used directly by
///     clients whose control flow cannot be shaped as a callable (the
///     interpreter restarts from a frame snapshot instead of re-entering a
///     lambda). beforeAttempt/afterAbort/onFinished bracket each attempt;
///     the destructor releases any gate state, so unwinding on a non-STM
///     exception cannot leak serial ownership.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TXN_RETRYEXECUTOR_H
#define OTM_TXN_RETRYEXECUTOR_H

#include "gc/EpochManager.h"
#include "obs/PhaseProfile.h"
#include "obs/TraceRing.h"
#include "obs/TxObs.h"
#include "support/Backoff.h"
#include "txn/CmStats.h"
#include "txn/ContentionManager.h"
#include "txn/Htm.h"
#include "txn/SerialGate.h"

#include <optional>
#include <utility>

namespace otm {
namespace txn {

/// Result of one transaction attempt, as reported by an Adapter.
enum class AttemptOutcome : uint8_t {
  Committed,    ///< published; the transaction is done
  RetryAbort,   ///< rolled back on conflict/validation; run another attempt
  NoRetryAbort, ///< rolled back on explicit user abort; do not retry
};

/// Stateful retry sequencing for one top-level transaction. Construct it
/// when the transaction arrives, call beforeAttempt() before each STM-level
/// begin, afterAbort() after each rolled-back attempt, and onFinished()
/// when an attempt commits (or aborts without retry).
class RetryController {
public:
  /// \p FallbackAfter is the retry budget: after that many aborted
  /// attempts the next one runs serial-irrevocable (0 disables fallback).
  RetryController(const ContentionManager &CM, CmTxState &St,
                  unsigned FallbackAfter, uint64_t BackoffSeed)
      : CM(CM), St(St), Gate(SerialGate::instance()),
        Slot(Gate.slotForCurrentThread()),
        EPin(gc::EpochManager::global().threadPin()),
        FallbackAfter(FallbackAfter), B(BackoffSeed) {
    St.beginTransaction(CM.needsArrivalStamp() ? nextArrivalStamp() : 0);
  }

  RetryController(const RetryController &) = delete;
  RetryController &operator=(const RetryController &) = delete;

  ~RetryController() {
    releasePin();
    releaseGate();
  }

  /// Brackets the next attempt into the serial gate; escalates to
  /// exclusive mode first when afterAbort() exhausted the budget. \p
  /// OpCountNow is the client's monotone work counter (karma accrual).
  ///
  /// The shared-mode fast path also takes the attempt's outermost epoch
  /// pin: the gate's slot publication and the epoch publication are both
  /// "store mine, fence, check theirs" patterns, so funneling them through
  /// one seq_cst fence halves the fence count of every uncontended
  /// transaction. The STM's begin() then pins nested (a depth bump), and
  /// afterAbort()/onFinished() release the controller's pin.
  /// \p ZeroConflict marks an attempt that cannot conflict with anyone
  /// (an MVCC snapshot reader): it skips the serial gate entirely — it must
  /// not stall behind an exclusive writer's drain, and the writer does not
  /// need it drained either — but still takes the epoch pin. Re-evaluated
  /// per attempt, so an upgraded (now writing) retry rejoins the gate. A
  /// zero-conflict transaction that exhausts the retry budget anyway
  /// (refresh storms) still escalates to serial, which is always safe.
  void beforeAttempt(uint64_t OpCountNow, bool ZeroConflict = false) {
    OpAtBegin = OpCountNow;
    if (Mode == GateMode::Exclusive)
      return; // still serial from the previous attempt
    if (OTM_UNLIKELY(ZeroConflict && !PendingSerial)) {
      EPin.pin();
      HoldsPin = true;
      Mode = GateMode::Bypass;
      return;
    }
    if (OTM_UNLIKELY(PendingSerial)) {
      PendingSerial = false;
      Gate.enterExclusive(Slot);
      Mode = GateMode::Exclusive;
      CmStats::instance().bumpFallbackEntries();
      OTM_TRACE_EVENT(obs::TraceRing::forCurrentThread(),
                      obs::EventKind::SerialEnter, nullptr, 0);
      return;
    }
    for (;;) {
      Gate.publishShared(Slot);
      EPin.prePin();
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (OTM_LIKELY(Gate.confirmShared(Slot))) {
        EPin.confirmPin();
        break;
      }
      EPin.unpin(); // drop the speculative pin before blocking on the gate
      CmStats::instance().bumpGateWaits();
      Gate.waitWhileExclusive();
    }
    HoldsPin = true;
    Mode = GateMode::Shared;
  }

  /// Call after a failed attempt has been fully rolled back. Performs the
  /// policy's inter-attempt pause and arms the serial fallback once the
  /// budget is gone.
  void afterAbort(uint64_t OpCountNow) {
    ++Attempts;
    St.addPriority(OpCountNow >= OpAtBegin ? OpCountNow - OpAtBegin : 0);
    if (Mode == GateMode::Exclusive)
      return; // retry immediately; we already run alone
    releasePin(); // unpin across the inter-attempt pause
    if (Mode == GateMode::Shared)
      leaveShared();
    else
      Mode = GateMode::Outside; // Bypass held no gate state
    if (FallbackAfter != 0 && Attempts >= FallbackAfter) {
      PendingSerial = true;
      return; // no pause: escalate on the next attempt
    }
    bool Paused;
    {
      // Attribute the inter-attempt pause to the Backoff phase. The scope
      // is armed only when the client wired a histogram (setter below) and
      // latency sampling is on, so the common path costs one null check.
      obs::PhaseScope Ph(BackoffHist && obs::samplingEnabled(), *BackoffHist);
      Paused = CM.pauseAfterAbort(Attempts, B);
    }
    if (Paused)
      CmStats::instance().bumpAttemptPauses();
  }

  /// Call once the transaction committed or user-aborted (no more
  /// attempts). Safe to destroy the controller right after.
  void onFinished() {
    if (Mode == GateMode::Exclusive)
      CmStats::instance().bumpFallbackCommits();
    releasePin();
    releaseGate();
  }

  unsigned attempts() const { return Attempts; }
  bool inSerialMode() const { return Mode == GateMode::Exclusive; }

  /// Wires the histogram that receives one sample per inter-attempt pause
  /// (obs::Phase::Backoff). Optional; the txn layer cannot name TxStats, so
  /// the STM-specific adapter (or the interpreter) passes its own.
  void setBackoffHistogram(obs::Histogram *H) { BackoffHist = H; }

private:
  enum class GateMode : uint8_t { Outside, Shared, Exclusive, Bypass };

  void leaveShared() {
    Gate.exitShared(Slot);
    Mode = GateMode::Outside;
  }

  void releasePin() {
    if (HoldsPin) {
      EPin.unpin();
      HoldsPin = false;
    }
  }

  void releaseGate() {
    if (Mode == GateMode::Shared) {
      leaveShared();
    } else if (Mode == GateMode::Bypass) {
      Mode = GateMode::Outside; // nothing published to the gate
    } else if (Mode == GateMode::Exclusive) {
      Gate.exitExclusive();
      Mode = GateMode::Outside;
      OTM_TRACE_EVENT(obs::TraceRing::forCurrentThread(),
                      obs::EventKind::SerialExit, nullptr, 0);
    }
  }

  const ContentionManager &CM;
  CmTxState &St;
  SerialGate &Gate;
  SerialGate::Slot &Slot;
  gc::EpochManager::ThreadPin EPin;
  unsigned FallbackAfter;
  Backoff B;
  unsigned Attempts = 0;
  uint64_t OpAtBegin = 0;
  obs::Histogram *BackoffHist = nullptr;
  bool PendingSerial = false;
  bool HoldsPin = false;
  GateMode Mode = GateMode::Outside;
};

#if OTM_HTM
/// The hardware rung of the ladder: up to Adapter::htmAttempts() RTM
/// attempts before RetryExecutor::atomic falls through to the software
/// retry loop. Returns true when an attempt committed (or terminally
/// user-aborted) in hardware, false to hand the transaction to the STM.
///
/// Interaction rules (DESIGN.md §3.12):
///  - The serial gate is subscribed from inside the region: a pre-begin
///    check skips doomed attempts cheaply, and the post-begin re-check
///    loads the exclusive flag transactionally, so a writer entering
///    exclusive mode after we started aborts us instead of racing us.
///  - The epoch pin is taken *outside* the region (htmPrepare): a pin
///    stored speculatively is invisible to concurrent reclaimers until
///    commit, which is too late to protect the reads before it.
///  - User aborts (CodeUser) are terminal: the adapter records the abort
///    and we return true without touching the software tier, matching
///    AttemptOutcome::NoRetryAbort semantics.
///  - Everything else maps onto the same contention-management hooks the
///    software tier uses: retryable aborts consult CM.pauseAfterAbort with
///    the shared Backoff, and exhaustion bumps HtmFallbacks before the STM
///    takes over.
template <typename Adapter, typename FnType>
bool htmTryExecute(typename Adapter::Manager &Tx, FnType &Fn) {
  const unsigned MaxAttempts = Adapter::htmAttempts();
  if (OTM_LIKELY(MaxAttempts == 0))
    return false;
  if (!htm::HtmRuntime::instance().available())
    return false;
  if (!Adapter::htmEligible(Tx))
    return false;
  SerialGate &Gate = SerialGate::instance();
  CmStats &CS = CmStats::instance();
  const ContentionManager &CM = managerFor(Adapter::policy());
  Backoff B(reinterpret_cast<uintptr_t>(&Tx) * Adapter::seedMix());
  for (unsigned Attempt = 1; Attempt <= MaxAttempts; ++Attempt) {
    if (Gate.exclusiveActive())
      break; // an irrevocable writer runs; wait at the gate in software
    Adapter::htmPrepare(Tx);
    unsigned Status = htm::begin();
    if (Status == htm::Started) {
      // Transactional load of the gate flag: subscribes this region to it,
      // so enterExclusive() by anyone else aborts us before their drain.
      if (OTM_UNLIKELY(Gate.exclusiveActive()))
        htm::abortWith<htm::CodeSerial>();
      Adapter::htmEnter(Tx);
      try {
        Fn(Tx);
      } catch (...) {
        // Unwinding inside a region is not generally safe (the handler
        // frames may alias speculative state); funnel through an explicit
        // abort and let the software tier surface the exception.
        htm::abortWith<htm::CodeException>();
      }
      Adapter::htmCommit(Tx);
      htm::end();
      Adapter::htmUnpin(Tx);
      return true;
    }
    // Aborted: the region's side effects (including htmEnter's bookkeeping)
    // rolled back; only the pre-begin prepare state survives.
    Adapter::htmAbortReset(Tx);
    Adapter::htmUnpin(Tx);
    bool RetryHw = (Status & htm::StatusRetry) != 0;
    if (Status & htm::StatusExplicit) {
      CS.bumpHtmAbortsExplicit();
      switch (htm::abortCode(Status)) {
      case htm::CodeSerial:
        CS.bumpHtmAbortsSerial();
        RetryHw = false; // the gate is busy; go wait at it properly
        break;
      case htm::CodeUnsupported:
        CS.bumpHtmAbortsUnsupported();
        RetryHw = false; // the body needs software-only machinery
        break;
      case htm::CodeUser:
        CS.bumpHtmAbortsUser();
        Adapter::htmUserAbort(Tx);
        return true; // terminal: user aborts never retry on any tier
      case htm::CodeException:
        CS.bumpHtmAbortsException();
        RetryHw = false; // rerun in software so the exception propagates
        break;
      case htm::CodeLocked:
        CS.bumpHtmAbortsLocked();
        RetryHw = true; // software owner mid-commit; likely gone next try
        break;
      default:
        break;
      }
    } else if (Status & htm::StatusConflict) {
      CS.bumpHtmAbortsConflict();
    } else if (Status & htm::StatusCapacity) {
      CS.bumpHtmAbortsCapacity();
      RetryHw = false; // will not fit this time either
    } else {
      // Spurious (interrupt, page fault, ...): retryable but unattributed.
      CS.bumpHtmAbortsOther();
    }
    if (!RetryHw)
      break;
    // Same inter-attempt arbitration as the software rungs.
    if (CM.pauseAfterAbort(Attempt, B))
      CS.bumpAttemptPauses();
  }
  CS.bumpHtmFallbacks();
  return false;
}
#endif // OTM_HTM

/// The lambda-style retry loop. An Adapter provides:
///
/// \code
///   struct Adapter {
///     using Manager = ...;                     // per-thread descriptor
///     static Manager &manager();               // thread's descriptor
///     static bool inTx(Manager &);             // inside a transaction?
///     static void noteSubsumed(Manager &);     // flattened-nesting stat
///     static void begin(Manager &);            // TxStart
///     template <typename Fn>
///     static AttemptOutcome attempt(Manager &, Fn &);  // run + commit or
///                                              // catch-abort + rollback;
///                                              // non-STM exceptions must
///                                              // roll back and rethrow
///     static uint64_t opCount(Manager &);      // monotone work counter
///     static CmTxState &cmState(Manager &);    // embedded CM state
///     static CmPolicy policy();                // from the active config
///     static unsigned fallbackAfter();         // retry budget
///     static uint64_t seedMix();               // backoff seed multiplier
///     // optional: next attempt cannot conflict -> bypass the serial gate
///     static bool zeroConflict(Manager &);
///     // optional (all-or-none): opt into the hardware rung. htmAttempts
///     // is the per-transaction RTM budget (0 = software only); the rest
///     // flip the manager in and out of hardware execution mode. See
///     // htmTryExecute above for the exact call sequence.
///     static unsigned htmAttempts();
///     static bool htmEligible(Manager &);
///     static void htmPrepare(Manager &);    // outside the region: pin
///     static void htmEnter(Manager &);      // inside: enter HtmMode
///     static void htmCommit(Manager &);     // inside: commit bookkeeping
///     static void htmAbortReset(Manager &); // after abort: clear HtmMode
///     static void htmUnpin(Manager &);      // outside: drop the pin
///     static void htmUserAbort(Manager &);  // record a terminal CodeUser
///   };
/// \endcode
template <typename Adapter> class RetryExecutor {
public:
  using Manager = typename Adapter::Manager;

  template <typename FnType> static void atomic(FnType &&Fn) {
    Manager &Tx = Adapter::manager();
    if (Adapter::inTx(Tx)) {
      // Flattening: the nested body runs inside the enclosing transaction
      // and conflicts unwind to the outermost retry loop.
      Adapter::noteSubsumed(Tx);
      Fn(Tx);
      return;
    }
#if OTM_HTM
    // Top rung: hardware attempts, for adapters that opt in. Falls through
    // to the software retry loop on exhaustion or ineligibility.
    if constexpr (requires { Adapter::htmAttempts(); })
      if (htmTryExecute<Adapter>(Tx, Fn))
        return;
#endif
    const ContentionManager &CM = managerFor(Adapter::policy());
    RetryController Ctl(CM, Adapter::cmState(Tx), Adapter::fallbackAfter(),
                        reinterpret_cast<uintptr_t>(&Tx) *
                            Adapter::seedMix());
    if constexpr (requires { Adapter::backoffHistogram(Tx); })
      Ctl.setBackoffHistogram(Adapter::backoffHistogram(Tx));
    for (;;) {
      // Optional adapter hook: attempts that cannot conflict (MVCC snapshot
      // readers) bypass the serial gate. Asked per attempt — the answer
      // flips once a read-only body upgrades to a writer.
      bool ZeroConflict = false;
      if constexpr (requires { Adapter::zeroConflict(Tx); })
        ZeroConflict = Adapter::zeroConflict(Tx);
      Ctl.beforeAttempt(Adapter::opCount(Tx), ZeroConflict);
      Adapter::begin(Tx);
      AttemptOutcome Out = Adapter::attempt(Tx, Fn);
      if (Out != AttemptOutcome::RetryAbort) {
        Ctl.onFinished();
        return;
      }
      Ctl.afterAbort(Adapter::opCount(Tx));
    }
  }

  /// Runs \p Fn transactionally and returns its result. The result is
  /// constructed into optional storage, so the result type needs neither
  /// default construction nor assignment — only move construction.
  template <typename FnType> static auto atomicResult(FnType &&Fn) {
    using ResultType = decltype(Fn(std::declval<Manager &>()));
    std::optional<ResultType> Result;
    atomic([&](Manager &Tx) { Result.emplace(Fn(Tx)); });
    return std::move(*Result);
  }
};

} // namespace txn
} // namespace otm

#endif // OTM_TXN_RETRYEXECUTOR_H
