//===- txn/ContentionManager.h - Pluggable conflict policies ---*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contention-management layer: *what happens on conflict* is a policy,
/// not a hard-coded heuristic. Both STMs and the interpreter consult one
/// ContentionManager at their two decision points:
///
///   - onConflict: attacker-side arbitration while another transaction owns
///     the object/stripe we want — keep waiting for the owner, or abort
///     ourselves (optionally attributed as a *priority* abort when the
///     policy decided we lost the arbitration rather than timed out);
///   - pauseAfterAbort: inter-attempt pacing inside the retry loop.
///
/// Four policies ship (selected per-process via TxConfig or the OTM_CM
/// environment variable):
///
///   - passive: the attacker always yields immediately — minimal waiting,
///     maximal optimism, relies on the retry loop for progress;
///   - backoff: the pre-refactor behaviour — bounded spin at the conflict,
///     randomized exponential backoff between attempts;
///   - karma: priority accrues with work done (opens + undo logs) across
///     the attempts of one transaction; richer transactions wait longer,
///     poorer ones yield to them (adapted to this STM: we cannot abort the
///     *owner* remotely, so losing means aborting ourselves);
///   - greedy: timestamp order — the oldest transaction wins: an older
///     attacker outwaits the owner, a younger one yields at once.
///
/// This library sits below both STMs (it depends only on support + obs), so
/// the per-transaction arbitration state (CmTxState) is defined here and
/// embedded by each transaction-manager type.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TXN_CONTENTIONMANAGER_H
#define OTM_TXN_CONTENTIONMANAGER_H

#include "support/Backoff.h"

#include <atomic>
#include <cstdint>

namespace otm {
namespace txn {

/// Identifies a contention-management policy.
enum class CmPolicy : uint8_t {
  Passive = 0,
  Backoff = 1,
  Karma = 2,
  TimestampGreedy = 3,
};

inline constexpr unsigned NumCmPolicies = 4;

/// Per-transaction arbitration state. Embedded in each transaction manager
/// so an attacker can inspect the *owner's* priority/age across threads;
/// all fields are relaxed atomics (arbitration tolerates staleness — a
/// wrong decision costs a wasted wait or an extra retry, never safety).
class CmTxState {
public:
  /// Called by the retry layer when a new top-level transaction starts.
  /// \p NewStamp is the global arrival stamp (0 when the policy does not
  /// need one); priority restarts from zero.
  void beginTransaction(uint64_t NewStamp) {
    Stamp.store(NewStamp, std::memory_order_relaxed);
    Priority.store(0, std::memory_order_relaxed);
  }

  /// Arrival stamp of the current transaction (0 = unknown/none).
  uint64_t stamp() const { return Stamp.load(std::memory_order_relaxed); }

  /// Karma accrued by this transaction so far.
  uint64_t priority() const {
    return Priority.load(std::memory_order_relaxed);
  }

  /// Accrues \p Work units of karma (only this thread writes; attackers
  /// read concurrently).
  void addPriority(uint64_t Work) {
    Priority.store(Priority.load(std::memory_order_relaxed) + Work,
                   std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Stamp{0};
  std::atomic<uint64_t> Priority{0};
};

/// Attacker-side arbitration outcome for one wait round.
enum class ConflictChoice : uint8_t {
  Wait,              ///< keep waiting for the owner to release
  AbortSelf,         ///< give up (wait budget exhausted)
  AbortSelfPriority, ///< yield because the policy ranked the owner above us
};

/// One contention-management policy. Implementations are stateless
/// process-wide singletons (all per-transaction state lives in CmTxState),
/// so consulting one from any thread is free of synchronization.
class ContentionManager {
public:
  virtual ~ContentionManager() = default;

  /// True when the policy needs a global arrival stamp per transaction.
  /// A plain flag (not a virtual) because the retry layer asks once per
  /// transaction, on the hot path.
  bool needsArrivalStamp() const { return NeedsStamp; }

  virtual CmPolicy kind() const = 0;
  virtual const char *name() const = 0;

  /// Arbitrates one wait round of an open/lock conflict. \p Round counts
  /// completed wait rounds on this conflict (each ~32 spins at the call
  /// site); \p BudgetRounds is the configured spin budget in rounds.
  virtual ConflictChoice onConflict(const CmTxState &Us,
                                    const CmTxState &Owner, unsigned Round,
                                    unsigned BudgetRounds) const = 0;

  /// Inter-attempt pacing after attempt number \p Attempts aborted.
  /// Returns true if the policy actually paused (for statistics).
  virtual bool pauseAfterAbort(unsigned Attempts, Backoff &B) const = 0;

protected:
  explicit ContentionManager(bool NeedsStamp = false)
      : NeedsStamp(NeedsStamp) {}

private:
  const bool NeedsStamp;
};

namespace detail {
/// Singleton table indexed by CmPolicy (defined in ContentionManager.cpp).
extern const ContentionManager *const CmTable[NumCmPolicies];
} // namespace detail

/// The process-wide singleton implementing \p P. Inline (one indexed load):
/// the retry layer resolves the policy at every top-level transaction.
inline const ContentionManager &managerFor(CmPolicy P) {
  return *detail::CmTable[static_cast<unsigned>(P)];
}

/// Short lowercase name ("passive", "backoff", "karma", "greedy").
const char *policyName(CmPolicy P);

/// Parses a policy name (the OTM_CM values); returns false on unknown.
bool parsePolicy(const char *Name, CmPolicy &Out);

/// Reads OTM_CM from the environment; \p Fallback when unset/unknown.
CmPolicy policyFromEnv(CmPolicy Fallback);

/// Next value of the global transaction arrival clock (1-based; 0 is
/// reserved for "no stamp"). Only taken when the policy asks for stamps.
uint64_t nextArrivalStamp();

} // namespace txn
} // namespace otm

#endif // OTM_TXN_CONTENTIONMANAGER_H
