//===- txn/SerialGate.cpp - Serial-irrevocable execution gate -------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "txn/SerialGate.h"

#include "support/Compiler.h"

#include <mutex>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::txn;

namespace {

/// Registry of every thread's slot. Slots are leaked (a zombie scan by a
/// late serial owner must never fault), so the vector only ever grows.
struct SlotRegistry {
  std::mutex Mutex;
  std::vector<SerialGate::Slot *> Slots;

  SerialGate::Slot *add() {
    auto *S = new SerialGate::Slot();
    std::lock_guard<std::mutex> Lock(Mutex);
    Slots.push_back(S);
    return S;
  }
};

SlotRegistry &registry() {
  static SlotRegistry R;
  return R;
}

} // namespace

SerialGate &SerialGate::instance() {
  static SerialGate G;
  return G;
}

SerialGate::Slot &SerialGate::slotForCurrentThread() {
  static thread_local Slot *S = nullptr;
  if (OTM_UNLIKELY(!S))
    S = registry().add();
  return *S;
}

void SerialGate::waitWhileExclusive() {
  while (Exclusive.load(std::memory_order_acquire))
    std::this_thread::yield();
}

void SerialGate::enterExclusive(Slot &Self) {
  // One serial owner at a time.
  while (Exclusive.exchange(true, std::memory_order_acq_rel))
    std::this_thread::yield();
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Drain: every other registered thread must leave its attempt. New
  // attempts see Exclusive and stall in enterShared, so the count only
  // falls. Copy the slot list once; threads registered after the fence
  // can only observe Exclusive already set.
  std::vector<Slot *> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(registry().Mutex);
    Snapshot = registry().Slots;
  }
  for (;;) {
    bool Quiet = true;
    for (Slot *S : Snapshot) {
      if (S == &Self)
        continue;
      if (S->Active.load(std::memory_order_acquire) != 0) {
        Quiet = false;
        break;
      }
    }
    if (Quiet)
      return;
    std::this_thread::yield();
  }
}

void SerialGate::exitExclusive() {
  Exclusive.store(false, std::memory_order_release);
}
