//===- txn/CmStats.h - Contention-management statistics --------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide counters for the decisions the contention-management layer
/// makes: conflict waits, priority aborts, inter-attempt pauses, serial
/// fallback entries/commits, gate stalls. All of them sit on slow paths
/// (a conflict or an abort has already happened), so relaxed global atomics
/// are fine — no per-thread buffering needed.
///
/// Same X-macro discipline as stm::TxStats: the field inventory exists
/// exactly once, so snapshot/reset/serialize cannot desync.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TXN_CMSTATS_H
#define OTM_TXN_CMSTATS_H

#include "obs/Json.h"

#include <atomic>
#include <cstdint>

namespace otm {
namespace txn {

/// X(Name) per counter.
#define OTM_CMSTAT_COUNTERS(X)                                                 \
  X(ConflictWaits)    /* conflicts where the policy chose to wait */           \
  X(PriorityAborts)   /* attacker yielded because it lost arbitration */       \
  X(AttemptPauses)    /* inter-attempt pauses the policy performed */          \
  X(FallbackEntries)  /* escalations into serial-irrevocable mode */           \
  X(FallbackCommits)  /* transactions that finished while serial */            \
  X(GateWaits)        /* attempts that stalled behind a serial owner */        \
  X(SemanticWaits)    /* abstract-lock conflicts where the policy waited */    \
  X(SemanticPriorityAborts) /* abstract-lock conflicts lost on priority */     \
  X(HtmAbortsExplicit)    /* hw aborts via xabort (all codes) */               \
  X(HtmAbortsSerial)      /* ... code: serial gate held by a writer */         \
  X(HtmAbortsLocked)      /* ... code: object/stripe owned by software */      \
  X(HtmAbortsUnsupported) /* ... code: op cannot run speculatively */          \
  X(HtmAbortsUser)        /* ... code: Tx.userAbort inside hardware */         \
  X(HtmAbortsException)   /* ... code: user exception inside hardware */       \
  X(HtmAbortsConflict)    /* hw aborts: cache-coherence conflict */            \
  X(HtmAbortsCapacity)    /* hw aborts: speculation buffer overflow */         \
  X(HtmAbortsOther)       /* hw aborts: interrupt/fault/unclassified */        \
  X(HtmFallbacks)         /* transactions that left hardware for the STM */

/// Plain snapshot block.
struct CmStatsSnapshot {
#define OTM_X(Name) uint64_t Name = 0;
  OTM_CMSTAT_COUNTERS(OTM_X)
#undef OTM_X

  /// Visits (const char *Name, uint64_t Value) per counter.
  template <typename FnType> void forEachCounter(FnType Fn) const {
#define OTM_X(Name) Fn(#Name, Name);
    OTM_CMSTAT_COUNTERS(OTM_X)
#undef OTM_X
  }
};

/// The process-wide aggregate.
class CmStats {
public:
  static CmStats &instance() {
    static CmStats S;
    return S;
  }

#define OTM_X(Name)                                                            \
  void bump##Name(uint64_t N = 1) {                                            \
    Name.fetch_add(N, std::memory_order_relaxed);                              \
  }
  OTM_CMSTAT_COUNTERS(OTM_X)
#undef OTM_X

  CmStatsSnapshot snapshot() const {
    CmStatsSnapshot S;
#define OTM_X(Name) S.Name = Name.load(std::memory_order_relaxed);
    OTM_CMSTAT_COUNTERS(OTM_X)
#undef OTM_X
    return S;
  }

  void reset() {
#define OTM_X(Name) Name.store(0, std::memory_order_relaxed);
    OTM_CMSTAT_COUNTERS(OTM_X)
#undef OTM_X
  }

private:
#define OTM_X(Name) std::atomic<uint64_t> Name{0};
  OTM_CMSTAT_COUNTERS(OTM_X)
#undef OTM_X
};

/// {counters: {...}} for the BENCH_E*.json "txn_cm" section.
inline obs::JsonValue cmStatsToJson(const CmStatsSnapshot &S) {
  obs::JsonValue V = obs::JsonValue::object();
  obs::JsonValue Counters = obs::JsonValue::object();
  S.forEachCounter(
      [&](const char *Name, uint64_t Value) { Counters.set(Name, Value); });
  V.set("counters", std::move(Counters));
  return V;
}

} // namespace txn
} // namespace otm

#endif // OTM_TXN_CMSTATS_H
