//===- txn/ContentionManager.cpp - Pluggable conflict policies ------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "txn/ContentionManager.h"

#include <cstdlib>
#include <cstring>

using namespace otm;
using namespace otm::txn;

namespace {

/// passive — the attacker never waits at a conflict and retries without
/// pacing. Pure optimism: progress comes from the retry loop (and, under
/// pathological contention, from the serial fallback).
class PassiveCm final : public ContentionManager {
public:
  CmPolicy kind() const override { return CmPolicy::Passive; }
  const char *name() const override { return "passive"; }

  ConflictChoice onConflict(const CmTxState &, const CmTxState &, unsigned,
                            unsigned) const override {
    return ConflictChoice::AbortSelf;
  }

  bool pauseAfterAbort(unsigned, Backoff &) const override { return false; }
};

/// backoff — the pre-refactor heuristic: spin at the conflict up to the
/// configured budget, randomized exponential backoff between attempts.
class BackoffCm final : public ContentionManager {
public:
  CmPolicy kind() const override { return CmPolicy::Backoff; }
  const char *name() const override { return "backoff"; }

  ConflictChoice onConflict(const CmTxState &, const CmTxState &,
                            unsigned Round,
                            unsigned BudgetRounds) const override {
    return Round < BudgetRounds ? ConflictChoice::Wait
                                : ConflictChoice::AbortSelf;
  }

  bool pauseAfterAbort(unsigned, Backoff &B) const override {
    B.pause();
    return true;
  }
};

/// karma — priority is the work (opens + undo logs) a transaction has
/// invested across all its attempts. A richer attacker outwaits the owner
/// (it has more to lose) up to an extended budget; a poorer one yields
/// immediately — a *priority* abort. Repeated losers accrue karma with
/// every attempt, so starvation self-corrects before the serial fallback
/// has to step in.
class KarmaCm final : public ContentionManager {
public:
  CmPolicy kind() const override { return CmPolicy::Karma; }
  const char *name() const override { return "karma"; }

  ConflictChoice onConflict(const CmTxState &Us, const CmTxState &Owner,
                            unsigned Round,
                            unsigned BudgetRounds) const override {
    if (Us.priority() >= Owner.priority())
      return Round < PatienceFactor * BudgetRounds
                 ? ConflictChoice::Wait
                 : ConflictChoice::AbortSelf;
    return ConflictChoice::AbortSelfPriority;
  }

  bool pauseAfterAbort(unsigned, Backoff &B) const override {
    B.pause();
    return true;
  }

private:
  static constexpr unsigned PatienceFactor = 8;
};

/// greedy — timestamp order: the oldest transaction wins. An older
/// attacker outwaits the owner; a younger one yields at once and retries
/// after a pause (by which time the elder has usually finished). Owners
/// without a stamp (transactions begun outside the retry layer) are
/// treated as unknown and outwaited like backoff.
class GreedyCm final : public ContentionManager {
public:
  GreedyCm() : ContentionManager(/*NeedsStamp=*/true) {}

  CmPolicy kind() const override { return CmPolicy::TimestampGreedy; }
  const char *name() const override { return "greedy"; }

  ConflictChoice onConflict(const CmTxState &Us, const CmTxState &Owner,
                            unsigned Round,
                            unsigned BudgetRounds) const override {
    uint64_t OwnerStamp = Owner.stamp();
    uint64_t UsStamp = Us.stamp();
    if (UsStamp != 0 && OwnerStamp != 0 && UsStamp > OwnerStamp)
      return ConflictChoice::AbortSelfPriority; // younger yields to elder
    return Round < PatienceFactor * BudgetRounds ? ConflictChoice::Wait
                                                 : ConflictChoice::AbortSelf;
  }

  bool pauseAfterAbort(unsigned, Backoff &B) const override {
    B.pause();
    return true;
  }

private:
  static constexpr unsigned PatienceFactor = 8;
};

// Singleton instances behind the inline managerFor table. Namespace-scope
// (not function-local statics) so the table lookup carries no init guard.
const PassiveCm PassiveInst;
const BackoffCm BackoffInst;
const KarmaCm KarmaInst;
const GreedyCm GreedyInst;

} // namespace

const ContentionManager *const otm::txn::detail::CmTable[NumCmPolicies] = {
    &PassiveInst, &BackoffInst, &KarmaInst, &GreedyInst};

const char *otm::txn::policyName(CmPolicy P) {
  return managerFor(P).name();
}

bool otm::txn::parsePolicy(const char *Name, CmPolicy &Out) {
  if (!Name)
    return false;
  for (unsigned I = 0; I < NumCmPolicies; ++I) {
    CmPolicy P = static_cast<CmPolicy>(I);
    if (std::strcmp(Name, policyName(P)) == 0) {
      Out = P;
      return true;
    }
  }
  return false;
}

CmPolicy otm::txn::policyFromEnv(CmPolicy Fallback) {
  CmPolicy P = Fallback;
  parsePolicy(std::getenv("OTM_CM"), P);
  return P;
}

uint64_t otm::txn::nextArrivalStamp() {
  static std::atomic<uint64_t> Clock{0};
  return Clock.fetch_add(1, std::memory_order_relaxed) + 1;
}
