//===- txn/AdmissionScheduler.cpp - Conflict-avoiding admission -----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "txn/AdmissionScheduler.h"

#include "obs/AbortSites.h"
#include "obs/Telemetry.h"
#include "obs/TraceRing.h" // OTM_OBS_ENABLE default

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace otm {
namespace txn {

#if OTM_SCHED

namespace {

/// OTM_SCHED= runtime parse: 0/off -> Off, 1/on -> On, adaptive/unset ->
/// Adaptive. Unknown values keep the default (adaptive) rather than
/// surprising a bench with a typo'd full-off.
SchedMode modeFromEnv() {
  const char *E = std::getenv("OTM_SCHED");
  if (!E)
    return SchedMode::Adaptive;
  if (!std::strcmp(E, "0") || !std::strcmp(E, "off"))
    return SchedMode::Off;
  if (!std::strcmp(E, "1") || !std::strcmp(E, "on"))
    return SchedMode::On;
  return SchedMode::Adaptive;
}

void maxRelaxed(std::atomic<uint64_t> &Slot, uint64_t V) {
  uint64_t Cur = Slot.load(std::memory_order_relaxed);
  while (V > Cur &&
         !Slot.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

} // namespace

AdmissionScheduler &AdmissionScheduler::instance() {
  static AdmissionScheduler S;
  return S;
}

AdmissionScheduler::AdmissionScheduler() {
  Mode.store(modeFromEnv(), std::memory_order_relaxed);
  if (const char *E = std::getenv("OTM_SCHED_QUEUE")) {
    long V = std::atol(E);
    if (V > 0)
      QueueCap = static_cast<unsigned>(V);
  }
}

int32_t AdmissionScheduler::tryInstall(Shard &Sh, uint32_t ClassId,
                                       const TxSummary &S) {
  if (Sh.ActiveCount >= SlotsPerShard)
    return -1;
  int32_t Free = -1;
  for (unsigned I = 0; I < SlotsPerShard; ++I) {
    InFlight &F = Sh.Slots[I];
    if (!F.Active) {
      if (Free < 0)
        Free = static_cast<int32_t>(I);
      continue;
    }
    // Summaries are only comparable within one class (one key convention);
    // cross-class pairs pass freely and their conflicts stay speculative.
    if (F.ClassId == ClassId && !S.compat(F.S))
      return -1;
  }
  if (Free < 0)
    return -1;
  InFlight &F = Sh.Slots[Free];
  F.S = S;
  F.ClassId = ClassId;
  F.Active = true;
  ++Sh.ActiveCount;
  return Free;
}

void AdmissionScheduler::drainQueueLocked(Shard &Sh) {
  // Strict FIFO: only ever grant the head, so a wide transaction behind a
  // stream of narrow compatible ones cannot starve.
  while (!Sh.Queue.empty()) {
    Waiter *W = Sh.Queue.front();
    int32_t Slot = tryInstall(Sh, W->ClassId, *W->S);
    if (Slot < 0)
      break;
    W->GrantedSlot = Slot;
    Sh.Queue.pop_front();
  }
}

AdmissionScheduler::Ticket AdmissionScheduler::admit(uint32_t ClassId,
                                                     const TxSummary &S) {
  Ticket T;
  T.ClassId = ClassId;
  T.Shard = ClassId & (NumShards - 1);
  if (!admissionActive(ClassId) || S.empty()) {
    Bypassed.fetch_add(1, std::memory_order_relaxed);
    return T;
  }

  Shard &Sh = Shards[T.Shard];
  std::unique_lock<std::mutex> Lock(Sh.M);
  if (Sh.Queue.empty()) {
    int32_t Slot = tryInstall(Sh, ClassId, S);
    if (Slot >= 0) {
      T.Slot = Slot;
      AdmittedImmediate.fetch_add(1, std::memory_order_relaxed);
      return T;
    }
  }
  if (Sh.Queue.size() >= QueueCap) {
    // Queue full: the backlog is already absorbing as much latency as we
    // allow it to — let speculation (and the CM ladder below) absorb the
    // rest of the burst rather than growing an unbounded convoy.
    QueueOverflows.fetch_add(1, std::memory_order_relaxed);
    return T;
  }

  Waiter W;
  W.S = &S;
  W.ClassId = ClassId;
  Sh.Queue.push_back(&W);
  QueuedCount.fetch_add(1, std::memory_order_relaxed);
  maxRelaxed(MaxQueueDepth, Sh.Queue.size());

  auto WaitStart = std::chrono::steady_clock::now();
  bool Granted = Sh.CV.wait_for(Lock, WaitBudget,
                                [&] { return W.GrantedSlot >= 0; });
  auto Waited = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - WaitStart);
  QueueWaitMicros.fetch_add(static_cast<uint64_t>(Waited.count()),
                            std::memory_order_relaxed);
  T.Waited = true;
  if (!Granted) {
    // Outwaited the budget: a liveness backstop, not a scheduling decision.
    // Remove ourselves (release() may have granted us between the timeout
    // and reacquiring the lock — re-check before bailing).
    if (W.GrantedSlot >= 0) {
      T.Slot = W.GrantedSlot;
      return T;
    }
    auto It = std::find(Sh.Queue.begin(), Sh.Queue.end(), &W);
    if (It != Sh.Queue.end())
      Sh.Queue.erase(It);
    TimeoutBypasses.fetch_add(1, std::memory_order_relaxed);
    // Our removal may unblock the strict-FIFO head behind us.
    drainQueueLocked(Sh);
    if (Sh.ActiveCount > 0 || !Sh.Queue.empty())
      Sh.CV.notify_all();
    return T;
  }
  T.Slot = W.GrantedSlot;
  return T;
}

void AdmissionScheduler::release(Ticket &T, uint64_t AbortedAttempts,
                                 uint32_t VictimSite) {
  Releases.fetch_add(1, std::memory_order_relaxed);
  AbortsReported.fetch_add(AbortedAttempts, std::memory_order_relaxed);
  recordRelease(T.ClassId, AbortedAttempts, VictimSite);
  if (T.Slot < 0)
    return;
  Shard &Sh = Shards[T.Shard];
  {
    std::lock_guard<std::mutex> Lock(Sh.M);
    InFlight &F = Sh.Slots[T.Slot];
    F.Active = false;
    F.S.clear();
    --Sh.ActiveCount;
    drainQueueLocked(Sh);
  }
  // Unconditional: waiters granted by the drain are no longer in the queue
  // and must be woken to observe their GrantedSlot.
  Sh.CV.notify_all();
  T.Slot = -1;
}

void AdmissionScheduler::recordRelease(uint32_t ClassId,
                                       uint64_t AbortedAttempts,
                                       uint32_t VictimSite) {
  ClassGate &G = Gates[ClassId % NumClasses];
  if (VictimSite)
    G.VictimSite.store(VictimSite, std::memory_order_relaxed);
  G.WindowAborts.fetch_add(AbortedAttempts, std::memory_order_relaxed);
  uint64_t R = G.WindowReleases.fetch_add(1, std::memory_order_relaxed) + 1;
  if (R < GateWindow)
    return;
  // One releaser wins the window close; racing losers fold their feedback
  // into the next window (the exchange keeps the rate denominator honest).
  uint64_t Expected = R;
  if (!G.WindowReleases.compare_exchange_strong(Expected, 0,
                                                std::memory_order_relaxed))
    return;
  recomputeGate(G, G.WindowAborts.exchange(0, std::memory_order_relaxed));
}

void AdmissionScheduler::recomputeGate(ClassGate &G, uint64_t WindowAborts) {
  // Cross-check caller feedback against the conflict-graph edge table: the
  // victim-site total covers aborts this class suffered through *any* path
  // (including ones the caller could not attribute). Clamped delta — the
  // bench harness resets AbortSites between cells, shrinking the total.
  uint64_t Aborts = WindowAborts;
#if OTM_OBS_ENABLE
  if (uint32_t Site = G.VictimSite.load(std::memory_order_relaxed)) {
    uint64_t Total = victimEdgeTotal(Site);
    uint64_t Prev = G.PrevEdgeTotal.exchange(Total, std::memory_order_relaxed);
    uint64_t Delta = Total >= Prev ? Total - Prev : Total;
    Aborts = std::max(Aborts, Delta);
  }
#endif
  double Rate = static_cast<double>(Aborts) / static_cast<double>(GateWindow);
  bool On = G.On.load(std::memory_order_relaxed);
  if (!On && Rate >= GateOnRate) {
    G.On.store(true, std::memory_order_relaxed);
    GateFlipsOn.fetch_add(1, std::memory_order_relaxed);
    GatesOn.fetch_add(1, std::memory_order_relaxed);
  } else if (On && Rate <= GateOffRate) {
    G.On.store(false, std::memory_order_relaxed);
    GateFlipsOff.fetch_add(1, std::memory_order_relaxed);
    GatesOn.fetch_sub(1, std::memory_order_relaxed);
  }
}

uint64_t AdmissionScheduler::victimEdgeTotal(uint32_t Site) {
  if (!Site)
    return 0;
  uint64_t Total = 0;
  for (const obs::AbortSites::Edge &E :
       obs::AbortSites::instance().topEdges(obs::AbortSites::edgeCapacity()))
    if (E.Victim == Site)
      Total += E.total();
  return Total;
}

SchedStatsSnapshot AdmissionScheduler::stats() const {
  SchedStatsSnapshot S;
  S.AdmittedImmediate = AdmittedImmediate.load(std::memory_order_relaxed);
  S.Queued = QueuedCount.load(std::memory_order_relaxed);
  S.QueueOverflows = QueueOverflows.load(std::memory_order_relaxed);
  S.TimeoutBypasses = TimeoutBypasses.load(std::memory_order_relaxed);
  S.Bypassed = Bypassed.load(std::memory_order_relaxed);
  S.Releases = Releases.load(std::memory_order_relaxed);
  S.AbortsReported = AbortsReported.load(std::memory_order_relaxed);
  S.GateFlipsOn = GateFlipsOn.load(std::memory_order_relaxed);
  S.GateFlipsOff = GateFlipsOff.load(std::memory_order_relaxed);
  S.GatesOn = GatesOn.load(std::memory_order_relaxed);
  S.MaxQueueDepth = MaxQueueDepth.load(std::memory_order_relaxed);
  S.QueueWaitMicros = QueueWaitMicros.load(std::memory_order_relaxed);
  return S;
}

void AdmissionScheduler::resetForTesting() {
  for (Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Lock(Sh.M);
    for (InFlight &F : Sh.Slots) {
      F.Active = false;
      F.S.clear();
      F.ClassId = 0;
    }
    Sh.ActiveCount = 0;
    Sh.Queue.clear();
  }
  for (ClassGate &G : Gates) {
    G.On.store(false, std::memory_order_relaxed);
    G.VictimSite.store(0, std::memory_order_relaxed);
    G.WindowReleases.store(0, std::memory_order_relaxed);
    G.WindowAborts.store(0, std::memory_order_relaxed);
    G.PrevEdgeTotal.store(0, std::memory_order_relaxed);
  }
  AdmittedImmediate.store(0, std::memory_order_relaxed);
  QueuedCount.store(0, std::memory_order_relaxed);
  QueueOverflows.store(0, std::memory_order_relaxed);
  TimeoutBypasses.store(0, std::memory_order_relaxed);
  Bypassed.store(0, std::memory_order_relaxed);
  Releases.store(0, std::memory_order_relaxed);
  AbortsReported.store(0, std::memory_order_relaxed);
  GateFlipsOn.store(0, std::memory_order_relaxed);
  GateFlipsOff.store(0, std::memory_order_relaxed);
  GatesOn.store(0, std::memory_order_relaxed);
  MaxQueueDepth.store(0, std::memory_order_relaxed);
  QueueWaitMicros.store(0, std::memory_order_relaxed);
}

#else // !OTM_SCHED

AdmissionScheduler &AdmissionScheduler::instance() {
  static AdmissionScheduler S;
  return S;
}

#endif // OTM_SCHED

obs::JsonValue schedStatsToJson() {
  SchedStatsSnapshot S = AdmissionScheduler::instance().stats();
  const char *ModeName = "off";
#if OTM_SCHED
  switch (AdmissionScheduler::instance().mode()) {
  case SchedMode::Off:
    ModeName = "off";
    break;
  case SchedMode::On:
    ModeName = "on";
    break;
  case SchedMode::Adaptive:
    ModeName = "adaptive";
    break;
  }
#endif
  obs::JsonValue V = obs::JsonValue::object();
  V.set("enabled", AdmissionScheduler::compiledIn());
  V.set("mode", ModeName);
  V.set("admitted_immediate", S.AdmittedImmediate);
  V.set("queued", S.Queued);
  V.set("queue_overflows", S.QueueOverflows);
  V.set("timeout_bypasses", S.TimeoutBypasses);
  V.set("bypassed", S.Bypassed);
  V.set("releases", S.Releases);
  V.set("aborts_reported", S.AbortsReported);
  V.set("gate_flips_on", S.GateFlipsOn);
  V.set("gate_flips_off", S.GateFlipsOff);
  V.set("gates_on", S.GatesOn);
  V.set("max_queue_depth", S.MaxQueueDepth);
  V.set("queue_wait_us", S.QueueWaitMicros);
  return V;
}

#if OTM_OBS_ENABLE
namespace {
/// Registers the scheduler as a telemetry source at static-init time, the
/// same idiom TxManager.cpp uses for the stm/mvcc/boost sources. Keys are
/// present (zeros, enabled=false) in -DOTM_SCHED=0 builds too, so the
/// otm-telemetry-v1 schema does not fork on the compile switch.
struct SchedTelemetrySource {
  SchedTelemetrySource() {
    obs::Telemetry::instance().registerSource("sched",
                                              [] { return schedStatsToJson(); });
  }
} RegisterSchedSource;
} // namespace
#endif // OTM_OBS_ENABLE

} // namespace txn
} // namespace otm
