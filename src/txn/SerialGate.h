//===- txn/SerialGate.h - Serial-irrevocable execution gate ----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The starvation escape hatch: when a transaction has exhausted its retry
/// budget, it escalates to *serial-irrevocable* mode — it acquires this
/// process-wide gate exclusively, every other transaction's next attempt
/// stalls at the gate, in-flight attempts drain, and the starving
/// transaction then runs alone (so it cannot conflict and commits on the
/// next attempt). Pathological contention degrades to brief serialization
/// instead of livelock.
///
/// Cost discipline: the shared (non-serial) fast path must not put a
/// contended atomic on every transaction. Each thread registers a leaked,
/// cache-line-padded slot holding its in-flight attempt depth; enterShared
/// is an uncontended store to that slot plus a fence and one load of the
/// exclusive flag. The (rare) serial owner pays the expensive part:
/// walking every slot until the fleet has drained.
///
/// The gate is cooperative at the retry-executor layer: transactions begun
/// outside RetryExecutor/RetryController (unit tests driving TxManager by
/// hand) do not participate. They cannot break safety — at worst they
/// conflict with the serial owner, which rolls back and retries while
/// still holding the gate.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TXN_SERIALGATE_H
#define OTM_TXN_SERIALGATE_H

#include "support/Compiler.h"

#include <atomic>
#include <cstdint>

namespace otm {
namespace txn {

class SerialGate {
public:
  /// One registered thread's in-flight attempt depth. Padded so the
  /// per-attempt store never shares a line with another thread's slot.
  struct alignas(64) Slot {
    std::atomic<uint64_t> Active{0};
  };

  static SerialGate &instance();

  /// The calling thread's slot (created and registered on first use;
  /// leaked, mirroring the TxManager lifetime rules).
  Slot &slotForCurrentThread();

  /// First half of enterShared for callers that share one seq_cst fence
  /// across several per-attempt publications (RetryController also
  /// publishes the epoch pin under the same fence). Only this thread
  /// writes its slot, so the depth bump itself can be relaxed; the
  /// caller's fence pairs it against the owner's flag-publish + slot-scan
  /// (Dekker).
  void publishShared(Slot &S) {
    S.Active.store(S.Active.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  }

  /// Second half: call after the fence. Returns true when no serial owner
  /// holds the gate and the attempt may proceed; otherwise steps the slot
  /// back out and returns false — the caller should waitWhileExclusive()
  /// and re-publish.
  bool confirmShared(Slot &S) {
    if (OTM_LIKELY(!Exclusive.load(std::memory_order_relaxed)))
      return true;
    S.Active.store(S.Active.load(std::memory_order_relaxed) - 1,
                   std::memory_order_relaxed);
    return false;
  }

  /// Blocks while a serial owner holds the gate (cold path of
  /// confirmShared; also usable directly).
  void waitWhileExclusive();

  /// Marks an attempt in flight on \p S, stalling first while a serial
  /// owner holds the gate. Returns true if it had to stall (statistics).
  /// Nested use on one thread (an outer object-STM transaction driving an
  /// inner word-STM one) just deepens the slot count.
  bool enterShared(Slot &S) {
    bool Stalled = false;
    for (;;) {
      publishShared(S);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (confirmShared(S))
        return Stalled;
      // A serial owner is (or just went) active: wait it out.
      Stalled = true;
      waitWhileExclusive();
    }
  }

  /// Ends the in-flight attempt on \p S.
  void exitShared(Slot &S) {
    S.Active.store(S.Active.load(std::memory_order_relaxed) - 1,
                   std::memory_order_release);
  }

  /// Acquires the gate exclusively: publishes the flag, then drains every
  /// other thread's in-flight attempts. \p Self is the caller's slot — its
  /// own depth is exempt (an outer-nesting transaction on this thread may
  /// legitimately still be open).
  void enterExclusive(Slot &Self);

  /// Releases exclusive ownership.
  void exitExclusive();

  /// True while some transaction runs serial-irrevocable (tests).
  bool exclusiveActive() const {
    return Exclusive.load(std::memory_order_acquire);
  }

private:
  SerialGate() = default;

  std::atomic<bool> Exclusive{false};
};

} // namespace txn
} // namespace otm

#endif // OTM_TXN_SERIALGATE_H
