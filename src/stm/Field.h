//===- stm/Field.h - Race-tolerant transactional field ---------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Field<T> wraps a data field of a transactional object.
///
/// A direct-update STM writes object fields in place before commit, so a
/// doomed reader can race with a writer; the race is benign (validation
/// catches the reader) but would be undefined behaviour on plain fields.
/// Field<T> performs all accesses with relaxed atomics, which compiles to
/// ordinary loads and stores on x86 while keeping the program well defined.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_FIELD_H
#define OTM_STM_FIELD_H

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace otm {
namespace stm {

template <typename T> class Field {
  static_assert(std::is_trivially_copyable_v<T>,
                "transactional fields must be trivially copyable");
  static_assert(sizeof(T) <= sizeof(uint64_t),
                "transactional fields are at most 8 bytes; use TxArray or a "
                "separate object for larger state");

public:
  Field() : Value(T{}) {}
  explicit Field(T V) : Value(V) {}
  Field(const Field &) = delete;
  Field &operator=(const Field &) = delete;

  /// Reads the field. The caller must have opened the owning object for
  /// read or update (or otherwise know the access is safe).
  T load() const { return Value.load(std::memory_order_relaxed); }

  /// Writes the field. The caller must have opened the owning object for
  /// update and logged the old value with TxManager::logUndo.
  void store(T V) { Value.store(V, std::memory_order_relaxed); }

  /// Bit pattern of the current value, padded to 64 bits (undo logging).
  uint64_t bitsForUndo() const {
    T V = load();
    uint64_t Bits = 0;
    std::memcpy(&Bits, &V, sizeof(T));
    return Bits;
  }

  /// Restores a value captured by bitsForUndo (undo replay).
  void restoreFromBits(uint64_t Bits) {
    T V;
    std::memcpy(&V, &Bits, sizeof(T));
    store(V);
  }

private:
  std::atomic<T> Value;
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_FIELD_H
