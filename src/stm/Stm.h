//===- stm/Stm.h - Public STM entry points ----------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public face of the direct-update STM: Stm::atomic runs a lambda as a
/// transaction with automatic retry, which is what an `atomic { ... }`
/// block lowers to. Inside the lambda the TxManager exposes the decomposed
/// barriers that the compiler (or careful hand-written code) places.
///
/// The retry loop itself lives in the shared transaction-execution layer
/// (txn::RetryExecutor): this header only supplies the adapter that binds
/// the loop to stm::TxManager's begin/commit/abort protocol. Contention
/// policy and the serial-fallback budget come from TxConfig (and the
/// OTM_CM / OTM_RETRY_BUDGET environment variables).
///
/// \code
///   otm::stm::Stm::atomic([&](otm::stm::TxManager &Tx) {
///     Tx.openForUpdate(Account);
///     Tx.logUndo(&Account->Balance);
///     Account->Balance.store(Account->Balance.load() + Amount);
///   });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_STM_H
#define OTM_STM_STM_H

#include "obs/AbortSites.h"
#include "stm/Field.h"
#include "stm/TxManager.h"
#include "stm/TxObject.h"
#include "stm/TxStats.h"
#include "txn/RetryExecutor.h"

#include <optional>
#include <utility>

namespace otm {
namespace stm {

/// Binds txn::RetryExecutor to the object STM: AbortTx is the abort
/// protocol, opens + undo logs are the karma work measure.
struct StmRetryAdapter {
  using Manager = TxManager;

  static Manager &manager() { return TxManager::current(); }
  static bool inTx(Manager &Tx) { return Tx.inTx(); }
  static void noteSubsumed(Manager &Tx) { ++Tx.stats().SubsumedTx; }
  static void begin(Manager &Tx) { Tx.begin(); }

  template <typename FnType>
  static txn::AttemptOutcome attempt(Manager &Tx, FnType &Fn) {
    try {
      Fn(Tx);
      if (Tx.tryCommit())
        return txn::AttemptOutcome::Committed;
      return txn::AttemptOutcome::RetryAbort;
    } catch (const AbortTx &Reason) {
      Tx.rollbackAttempt(Reason.Why);
      // Explicit user abort: roll back and leave, do not retry.
      return Reason.Why == AbortTx::Cause::User
                 ? txn::AttemptOutcome::NoRetryAbort
                 : txn::AttemptOutcome::RetryAbort;
    } catch (...) {
      // A non-STM exception escaping the block aborts the transaction
      // (failure atomicity) and propagates to the caller.
      Tx.rollbackAttempt(AbortTx::Cause::User);
      throw;
    }
  }

  static uint64_t opCount(Manager &Tx) {
    const TxStats &S = Tx.stats();
    return S.OpensForRead + S.OpensForUpdate + S.UndoLogAppends;
  }
  static txn::CmTxState &cmState(Manager &Tx) { return Tx.cmState(); }
  static txn::CmPolicy policy() {
    return TxManager::config().ContentionPolicy;
  }
  static unsigned fallbackAfter() {
    return TxManager::config().SerialFallbackAfter;
  }
  static uint64_t seedMix() { return 0x9e3779b97f4a7c15ULL; }
  static obs::Histogram *backoffHistogram(Manager &Tx) {
    return &Tx.stats().PhaseBackoffCycles;
  }
  /// Snapshot readers are invisible and validate-free: the retry layer lets
  /// them bypass the serial gate (they cannot conflict with the exclusive
  /// writer) while still pinning the epoch. Evaluated per attempt so an
  /// upgrade restart re-enters the gate as a normal writer.
  static bool zeroConflict(Manager &Tx) { return Tx.armAttemptMode(); }
};

class Stm {
public:
  /// Runs \p Fn transactionally with automatic conflict retry. Nested calls
  /// are flattened into the enclosing transaction (subsumption). \p Fn must
  /// be safe to re-execute; all its transactional effects are rolled back
  /// before a retry.
  template <typename FnType> static void atomic(FnType &&Fn) {
    txn::RetryExecutor<StmRetryAdapter>::atomic(std::forward<FnType>(Fn));
  }

  /// Runs \p Fn transactionally and returns its result (move-constructed
  /// out of optional storage; no default-constructible requirement).
  template <typename FnType> static auto atomicResult(FnType &&Fn) {
    return txn::RetryExecutor<StmRetryAdapter>::atomicResult(
        std::forward<FnType>(Fn));
  }

  /// Runs \p Fn as a *read-only* transaction on the MVCC snapshot path: all
  /// reads must go through Tx.read()/Tx.snapshotLoad(), the commit needs no
  /// validation, and no concurrent writer can abort it. A body that turns
  /// out to write (any update barrier, allocation, or decomposed
  /// openForRead) transparently restarts as an ordinary writer, so the hint
  /// is always safe — just wasted when wrong. Nested inside an existing
  /// transaction it flattens like atomic() and the hint is ignored. Falls
  /// back to atomic() entirely when the MVCC tier is compiled out or
  /// TxConfig.MvVersions is 0.
  template <typename FnType> static void atomicReadOnly(FnType &&Fn) {
    TxManager &Tx = TxManager::current();
    if (!Tx.inTx())
      Tx.setReadOnlyHint(true);
    txn::RetryExecutor<StmRetryAdapter>::atomic(std::forward<FnType>(Fn));
  }

  /// atomicReadOnly with a result (see atomicResult for the storage rules).
  template <typename FnType> static auto atomicReadOnlyResult(FnType &&Fn) {
    using ResultType = decltype(Fn(std::declval<TxManager &>()));
    std::optional<ResultType> Result;
    atomicReadOnly([&](TxManager &Tx) { Result.emplace(Fn(Tx)); });
    return std::move(*Result);
  }

  static TxConfig &config() { return TxManager::config(); }

  /// Process-wide statistics (includes only flushed threads; benchmark
  /// workers call TxManager::current().flushStats() before joining).
  static TxStats globalStats() {
    return GlobalTxStats::instance().snapshot();
  }
  static void resetGlobalStats() {
    GlobalTxStats::instance().reset();
    obs::AbortSites::instance().reset();
  }
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_STM_H
