//===- stm/Stm.h - Public STM entry points ----------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public face of the direct-update STM: Stm::atomic runs a lambda as a
/// transaction with automatic retry, which is what an `atomic { ... }`
/// block lowers to. Inside the lambda the TxManager exposes the decomposed
/// barriers that the compiler (or careful hand-written code) places.
///
/// The retry loop itself lives in the shared transaction-execution layer
/// (txn::RetryExecutor): this header only supplies the adapter that binds
/// the loop to stm::TxManager's begin/commit/abort protocol. Contention
/// policy and the serial-fallback budget come from TxConfig (and the
/// OTM_CM / OTM_RETRY_BUDGET environment variables).
///
/// \code
///   otm::stm::Stm::atomic([&](otm::stm::TxManager &Tx) {
///     Tx.openForUpdate(Account);
///     Tx.logUndo(&Account->Balance);
///     Account->Balance.store(Account->Balance.load() + Amount);
///   });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_STM_H
#define OTM_STM_STM_H

#include "obs/AbortSites.h"
#include "stm/Field.h"
#include "stm/TxManager.h"
#include "stm/TxObject.h"
#include "stm/TxStats.h"
#include "txn/RetryExecutor.h"

#include <utility>

namespace otm {
namespace stm {

/// Binds txn::RetryExecutor to the object STM: AbortTx is the abort
/// protocol, opens + undo logs are the karma work measure.
struct StmRetryAdapter {
  using Manager = TxManager;

  static Manager &manager() { return TxManager::current(); }
  static bool inTx(Manager &Tx) { return Tx.inTx(); }
  static void noteSubsumed(Manager &Tx) { ++Tx.stats().SubsumedTx; }
  static void begin(Manager &Tx) { Tx.begin(); }

  template <typename FnType>
  static txn::AttemptOutcome attempt(Manager &Tx, FnType &Fn) {
    try {
      Fn(Tx);
      if (Tx.tryCommit())
        return txn::AttemptOutcome::Committed;
      return txn::AttemptOutcome::RetryAbort;
    } catch (const AbortTx &Reason) {
      Tx.rollbackAttempt(Reason.Why);
      // Explicit user abort: roll back and leave, do not retry.
      return Reason.Why == AbortTx::Cause::User
                 ? txn::AttemptOutcome::NoRetryAbort
                 : txn::AttemptOutcome::RetryAbort;
    } catch (...) {
      // A non-STM exception escaping the block aborts the transaction
      // (failure atomicity) and propagates to the caller.
      Tx.rollbackAttempt(AbortTx::Cause::User);
      throw;
    }
  }

  static uint64_t opCount(Manager &Tx) {
    const TxStats &S = Tx.stats();
    return S.OpensForRead + S.OpensForUpdate + S.UndoLogAppends;
  }
  static txn::CmTxState &cmState(Manager &Tx) { return Tx.cmState(); }
  static txn::CmPolicy policy() {
    return TxManager::config().ContentionPolicy;
  }
  static unsigned fallbackAfter() {
    return TxManager::config().SerialFallbackAfter;
  }
  static uint64_t seedMix() { return 0x9e3779b97f4a7c15ULL; }
  static obs::Histogram *backoffHistogram(Manager &Tx) {
    return &Tx.stats().PhaseBackoffCycles;
  }
};

class Stm {
public:
  /// Runs \p Fn transactionally with automatic conflict retry. Nested calls
  /// are flattened into the enclosing transaction (subsumption). \p Fn must
  /// be safe to re-execute; all its transactional effects are rolled back
  /// before a retry.
  template <typename FnType> static void atomic(FnType &&Fn) {
    txn::RetryExecutor<StmRetryAdapter>::atomic(std::forward<FnType>(Fn));
  }

  /// Runs \p Fn transactionally and returns its result (move-constructed
  /// out of optional storage; no default-constructible requirement).
  template <typename FnType> static auto atomicResult(FnType &&Fn) {
    return txn::RetryExecutor<StmRetryAdapter>::atomicResult(
        std::forward<FnType>(Fn));
  }

  static TxConfig &config() { return TxManager::config(); }

  /// Process-wide statistics (includes only flushed threads; benchmark
  /// workers call TxManager::current().flushStats() before joining).
  static TxStats globalStats() {
    return GlobalTxStats::instance().snapshot();
  }
  static void resetGlobalStats() {
    GlobalTxStats::instance().reset();
    obs::AbortSites::instance().reset();
  }
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_STM_H
