//===- stm/Stm.h - Public STM entry points ----------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public face of the direct-update STM: Stm::atomic runs a lambda as a
/// transaction with automatic retry, which is what an `atomic { ... }`
/// block lowers to. Inside the lambda the TxManager exposes the decomposed
/// barriers that the compiler (or careful hand-written code) places.
///
/// The retry loop itself lives in the shared transaction-execution layer
/// (txn::RetryExecutor): this header only supplies the adapter that binds
/// the loop to stm::TxManager's begin/commit/abort protocol. Contention
/// policy and the serial-fallback budget come from TxConfig (and the
/// OTM_CM / OTM_RETRY_BUDGET environment variables).
///
/// \code
///   otm::stm::Stm::atomic([&](otm::stm::TxManager &Tx) {
///     Tx.openForUpdate(Account);
///     Tx.logUndo(&Account->Balance);
///     Account->Balance.store(Account->Balance.load() + Amount);
///   });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_STM_H
#define OTM_STM_STM_H

#include "obs/AbortSites.h"
#include "stm/Field.h"
#include "stm/TxManager.h"
#include "stm/TxObject.h"
#include "stm/TxStats.h"
#include "txn/AdmissionScheduler.h"
#include "txn/RetryExecutor.h"

#include <optional>
#include <utility>

namespace otm {
namespace stm {

/// Binds txn::RetryExecutor to the object STM: AbortTx is the abort
/// protocol, opens + undo logs are the karma work measure.
struct StmRetryAdapter {
  using Manager = TxManager;

  static Manager &manager() { return TxManager::current(); }
  static bool inTx(Manager &Tx) { return Tx.inTx(); }
  static void noteSubsumed(Manager &Tx) { ++Tx.stats().SubsumedTx; }
  static void begin(Manager &Tx) { Tx.begin(); }

  template <typename FnType>
  static txn::AttemptOutcome attempt(Manager &Tx, FnType &Fn) {
    try {
      Fn(Tx);
      if (Tx.tryCommit())
        return txn::AttemptOutcome::Committed;
      return txn::AttemptOutcome::RetryAbort;
    } catch (const AbortTx &Reason) {
      Tx.rollbackAttempt(Reason.Why);
      // Explicit user abort: roll back and leave, do not retry.
      return Reason.Why == AbortTx::Cause::User
                 ? txn::AttemptOutcome::NoRetryAbort
                 : txn::AttemptOutcome::RetryAbort;
    } catch (...) {
      // A non-STM exception escaping the block aborts the transaction
      // (failure atomicity) and propagates to the caller.
      Tx.rollbackAttempt(AbortTx::Cause::User);
      throw;
    }
  }

  static uint64_t opCount(Manager &Tx) {
    const TxStats &S = Tx.stats();
    return S.OpensForRead + S.OpensForUpdate + S.UndoLogAppends;
  }
  static txn::CmTxState &cmState(Manager &Tx) { return Tx.cmState(); }
  static txn::CmPolicy policy() {
    return TxManager::config().ContentionPolicy;
  }
  static unsigned fallbackAfter() {
    return TxManager::config().SerialFallbackAfter;
  }
  static uint64_t seedMix() { return 0x9e3779b97f4a7c15ULL; }
  static obs::Histogram *backoffHistogram(Manager &Tx) {
    return &Tx.stats().PhaseBackoffCycles;
  }
  /// Snapshot readers are invisible and validate-free: the retry layer lets
  /// them bypass the serial gate (they cannot conflict with the exclusive
  /// writer) while still pinning the epoch. Evaluated per attempt so an
  /// upgrade restart re-enters the gate as a normal writer.
  static bool zeroConflict(Manager &Tx) { return Tx.armAttemptMode(); }

#if OTM_HTM
  // Hardware rung (DESIGN.md §3.12): delegate straight to the manager's
  // hardware-mode surface. htmAttempts is sampled from the live config so
  // tests and benches can flip the budget per phase.
  static unsigned htmAttempts() { return TxManager::config().HtmAttempts; }
  static bool htmEligible(Manager &Tx) { return Tx.htmEligible(); }
  static void htmPrepare(Manager &Tx) { Tx.htmPrepare(); }
  static void htmEnter(Manager &Tx) { Tx.htmEnter(); }
  static void htmCommit(Manager &Tx) { Tx.htmCommit(); }
  static void htmAbortReset(Manager &Tx) { Tx.htmAbortReset(); }
  static void htmUnpin(Manager &Tx) { Tx.htmUnpin(); }
  static void htmUserAbort(Manager &Tx) { Tx.htmNoteUserAbort(); }
#endif
};

class Stm {
public:
  /// Runs \p Fn transactionally with automatic conflict retry. Nested calls
  /// are flattened into the enclosing transaction (subsumption). \p Fn must
  /// be safe to re-execute; all its transactional effects are rolled back
  /// before a retry.
  template <typename FnType> static void atomic(FnType &&Fn) {
    txn::RetryExecutor<StmRetryAdapter>::atomic(std::forward<FnType>(Fn));
  }

  /// Runs \p Fn transactionally and returns its result (move-constructed
  /// out of optional storage; no default-constructible requirement).
  template <typename FnType> static auto atomicResult(FnType &&Fn) {
    return txn::RetryExecutor<StmRetryAdapter>::atomicResult(
        std::forward<FnType>(Fn));
  }

  /// Runs \p Fn as a *read-only* transaction on the MVCC snapshot path: all
  /// reads must go through Tx.read()/Tx.snapshotLoad(), the commit needs no
  /// validation, and no concurrent writer can abort it. A body that turns
  /// out to write (any update barrier, allocation, or decomposed
  /// openForRead) transparently restarts as an ordinary writer, so the hint
  /// is always safe — just wasted when wrong. Nested inside an existing
  /// transaction it flattens like atomic() and the hint is ignored. Falls
  /// back to atomic() entirely when the MVCC tier is compiled out or
  /// TxConfig.MvVersions is 0.
  template <typename FnType> static void atomicReadOnly(FnType &&Fn) {
    TxManager &Tx = TxManager::current();
    if (!Tx.inTx())
      Tx.setReadOnlyHint(true);
    txn::RetryExecutor<StmRetryAdapter>::atomic(std::forward<FnType>(Fn));
  }

  /// atomicReadOnly with a result (see atomicResult for the storage rules).
  template <typename FnType> static auto atomicReadOnlyResult(FnType &&Fn) {
    using ResultType = decltype(Fn(std::declval<TxManager &>()));
    std::optional<ResultType> Result;
    atomicReadOnly([&](TxManager &Tx) { Result.emplace(Fn(Tx)); });
    return std::move(*Result);
  }

  /// atomic() routed through the admission scheduler (DESIGN.md §3.11),
  /// with the transaction's footprint *declared* up front: \p Declared
  /// summarizes the keys \p Fn will touch (same key convention as every
  /// other \p ClassId transaction — E11 uses row addresses). Provably
  /// compatible transactions run concurrently; maybe-conflicting ones
  /// queue instead of speculating. The summary is advisory only — an
  /// under-declared footprint costs aborts (the STM still arbitrates),
  /// never correctness. Nested calls flatten like atomic(): admission
  /// inside our own in-flight slot would self-deadlock.
  template <typename FnType>
  static void atomicScheduled(uint32_t ClassId, const txn::TxSummary &Declared,
                              FnType &&Fn) {
    atomicScheduledImpl(ClassId, &Declared, std::forward<FnType>(Fn));
  }

  /// atomicScheduled() with the footprint *sampled from the first attempt*
  /// instead of declared: the first attempt speculates unadmitted, and if
  /// it aborts, its read filter / update log are fingerprinted before
  /// rollback — every retry then admits with that summary. Zero caller
  /// knowledge needed; costs one speculative attempt before scheduling
  /// engages (exactly the transactions that were going to abort anyway).
  template <typename FnType>
  static void atomicScheduled(uint32_t ClassId, FnType &&Fn) {
    atomicScheduledImpl(ClassId, nullptr, std::forward<FnType>(Fn));
  }

  static TxConfig &config() { return TxManager::config(); }

  /// Process-wide statistics (includes only flushed threads; benchmark
  /// workers call TxManager::current().flushStats() before joining).
  static TxStats globalStats() {
    return GlobalTxStats::instance().snapshot();
  }
  static void resetGlobalStats() {
    GlobalTxStats::instance().reset();
    obs::AbortSites::instance().reset();
  }

private:
  /// The scheduled retry loop. Uses RetryController directly (the
  /// interpreter's pattern) rather than RetryExecutor: each attempt is
  /// bracketed by a scheduler ticket — admit *before* the serial-gate
  /// entry (a parked waiter holds no gate or epoch state, so it cannot
  /// deadlock the gate's drain), release *before* the inter-attempt
  /// backoff pause (the freed slot drains the shard queue while we wait).
  /// Serial-exclusive attempts skip admission entirely: they already run
  /// alone, and parking while holding the exclusive gate would stall every
  /// in-flight slot holder against the queue — the one circular wait the
  /// layering otherwise rules out.
  template <typename FnType>
  static void atomicScheduledImpl(uint32_t ClassId,
                                  const txn::TxSummary *Declared,
                                  FnType &&Fn) {
    TxManager &Tx = TxManager::current();
    if (Tx.inTx()) {
      ++Tx.stats().SubsumedTx;
      Fn(Tx);
      return;
    }
    txn::AdmissionScheduler &Sched = txn::AdmissionScheduler::instance();
    txn::TxSummary Sampled;
    const txn::TxSummary *Summary = Declared; // null until sampled
    static const txn::TxSummary EmptySummary{};

    const txn::ContentionManager &CM =
        txn::managerFor(StmRetryAdapter::policy());
    txn::RetryController Ctl(CM, Tx.cmState(), StmRetryAdapter::fallbackAfter(),
                             reinterpret_cast<uintptr_t>(&Tx) *
                                 StmRetryAdapter::seedMix());
    Ctl.setBackoffHistogram(&Tx.stats().PhaseBackoffCycles);
    for (;;) {
      // An empty summary bypasses in admit() but release() still feeds the
      // adaptive gate — the unsampled first attempt and gated-off classes
      // keep reporting abort rates, so storms can arm the gate.
      txn::AdmissionScheduler::Ticket Ticket;
      if (!Ctl.inSerialMode())
        Ticket = Sched.admit(ClassId, Summary ? *Summary : EmptySummary);
      Ctl.beforeAttempt(StmRetryAdapter::opCount(Tx),
                        StmRetryAdapter::zeroConflict(Tx));
      Tx.begin();
      txn::AttemptOutcome Out;
      try {
        Fn(Tx);
        // Footprint is complete here; sample before tryCommit() — a failed
        // validation throws through finishAttempt(), which clears the
        // filters this reads.
        if (!Summary) {
          Tx.sampleSummary(Sampled);
          Summary = &Sampled;
        }
        Out = Tx.tryCommit() ? txn::AttemptOutcome::Committed
                             : txn::AttemptOutcome::RetryAbort;
      } catch (const AbortTx &Reason) {
        // Mid-body conflict: the partial footprint (keys opened so far) is
        // still the best available sample. Under-approximation is safe —
        // admission is advisory; the STM below remains the arbiter.
        if (!Summary && Reason.Why != AbortTx::Cause::User) {
          Tx.sampleSummary(Sampled);
          Summary = &Sampled;
        }
        Tx.rollbackAttempt(Reason.Why);
        Out = Reason.Why == AbortTx::Cause::User
                  ? txn::AttemptOutcome::NoRetryAbort
                  : txn::AttemptOutcome::RetryAbort;
      } catch (...) {
        Sched.release(Ticket, 0, Tx.siteId());
        Tx.rollbackAttempt(AbortTx::Cause::User);
        throw; // Ctl's destructor releases the gate/pin
      }
      if (Out != txn::AttemptOutcome::RetryAbort) {
        Sched.release(Ticket, 0, Tx.siteId());
        Ctl.onFinished();
        return;
      }
      Sched.release(Ticket, 1, Tx.siteId());
      Ctl.afterAbort(StmRetryAdapter::opCount(Tx));
    }
  }
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_STM_H
