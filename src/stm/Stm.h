//===- stm/Stm.h - Public STM entry points ----------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public face of the direct-update STM: Stm::atomic runs a lambda as a
/// transaction with automatic retry, which is what an `atomic { ... }`
/// block lowers to. Inside the lambda the TxManager exposes the decomposed
/// barriers that the compiler (or careful hand-written code) places.
///
/// \code
///   otm::stm::Stm::atomic([&](otm::stm::TxManager &Tx) {
///     Tx.openForUpdate(Account);
///     Tx.logUndo(&Account->Balance);
///     Account->Balance.store(Account->Balance.load() + Amount);
///   });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_STM_H
#define OTM_STM_STM_H

#include "obs/AbortSites.h"
#include "stm/Field.h"
#include "stm/TxManager.h"
#include "stm/TxObject.h"
#include "stm/TxStats.h"
#include "support/Backoff.h"

#include <utility>

namespace otm {
namespace stm {

class Stm {
public:
  /// Runs \p Fn transactionally with automatic conflict retry. Nested calls
  /// are flattened into the enclosing transaction (subsumption). \p Fn must
  /// be safe to re-execute; all its transactional effects are rolled back
  /// before a retry.
  template <typename FnType> static void atomic(FnType &&Fn) {
    TxManager &Tx = TxManager::current();
    if (Tx.inTx()) {
      Fn(Tx); // flattening: conflicts unwind to the outermost retry loop
      return;
    }
    Backoff B(reinterpret_cast<uintptr_t>(&Tx) * 0x9e3779b97f4a7c15ULL);
    for (;;) {
      Tx.begin();
      try {
        Fn(Tx);
        if (Tx.tryCommit())
          return;
      } catch (const AbortTx &Reason) {
        Tx.rollbackAttempt(Reason.Why);
        if (Reason.Why == AbortTx::Cause::User)
          return; // explicit user abort: roll back and leave, do not retry
      } catch (...) {
        // A non-STM exception escaping the block aborts the transaction
        // (failure atomicity) and propagates to the caller.
        Tx.rollbackAttempt(AbortTx::Cause::User);
        throw;
      }
      B.pause();
    }
  }

  /// Runs \p Fn transactionally and returns its result.
  template <typename FnType> static auto atomicResult(FnType &&Fn) {
    using ResultType = decltype(Fn(std::declval<TxManager &>()));
    ResultType Result{};
    atomic([&](TxManager &Tx) { Result = Fn(Tx); });
    return Result;
  }

  static TxConfig &config() { return TxManager::config(); }

  /// Process-wide statistics (includes only flushed threads; benchmark
  /// workers call TxManager::current().flushStats() before joining).
  static TxStats globalStats() {
    return GlobalTxStats::instance().snapshot();
  }
  static void resetGlobalStats() {
    GlobalTxStats::instance().reset();
    obs::AbortSites::instance().reset();
  }
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_STM_H
