//===- stm/Mvcc.h - Multi-version support for snapshot readers -*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-version tier of the object STM: a global commit clock plus a
/// short per-object chain of committed *pre-images*, which is what lets
/// read-only transactions commit off a consistent snapshot with no read
/// log, no validate scan, and no possibility of abort (DESIGN.md §3.9).
///
/// Layout. One MvRecord is shared by all objects a commit wrote: it carries
/// the commit's stamp and the commit's entire undo log (address, old bits)
/// — the values the commit *overwrote*. Each written object gets one MvNode
/// prepended to its chain, pointing at the shared record; a snapshot reader
/// that finds the in-place value too new walks its object's chain
/// newest-to-oldest and reconstructs the field as of its begin stamp from
/// the pre-images. Chains are truncated to TxConfig.MvVersions nodes at
/// install time; cut nodes (and records whose reference count reaches
/// zero) are retired through the existing epoch reclaimer, so a reader
/// paused mid-walk keeps everything it can reach alive via its pin.
///
/// The whole tier compiles out under -DOTM_MVCC=0: TxObject loses the
/// chain-head word, the snapshot read path disappears, and writer commits
/// go back to per-object version increments.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_MVCC_H
#define OTM_STM_MVCC_H

#include <atomic>
#include <cstdint>

/// Compile-time kill switch for the multi-version tier (CI builds with
/// -DOTM_MVCC=0 to prove the legacy validate-scan path stands alone).
#ifndef OTM_MVCC
#define OTM_MVCC 1
#endif

namespace otm {
namespace stm {
namespace mv {

/// One overwritten (address, old bits) pair — the same information the undo
/// log holds, frozen at commit instead of discarded.
struct MvField {
  void *Addr;
  uint64_t Bits;
};

/// One committed write-back, shared by every object the commit touched.
/// Fields are stored in undo-log order, so within one record the *first*
/// match for an address is the oldest pre-image (the value as of the
/// commit's own begin) — exactly what a reader below this stamp needs.
/// Trivially destructible: retirement frees the raw block.
struct MvRecord {
  uint64_t NewStamp;               ///< commit stamp this record installed
  std::atomic<uint32_t> ChainRefs; ///< MvNodes (across objects) pointing here
  uint32_t NumFields;

  MvField *fields() { return reinterpret_cast<MvField *>(this + 1); }
  const MvField *fields() const {
    return reinterpret_cast<const MvField *>(this + 1);
  }
};

/// One link in an object's version chain (newest first). PrevStamp is the
/// stamp the object carried *before* this commit, so a walker knows when
/// the remaining history is at or below its snapshot without dereferencing
/// the older node.
struct MvNode {
  MvRecord *Rec;
  std::atomic<MvNode *> Older;
  uint64_t PrevStamp;
};

/// The global commit clock. Writer commits stamp their objects with
/// 1 + fetch_add(1) *after* validation succeeds (no abort can follow), so
/// stamps are unique, monotone, and any snapshot stamp T read from the
/// clock has the property that every commit ≤ T is fully published.
inline std::atomic<uint64_t> &commitClock() {
  static std::atomic<uint64_t> Clock{0};
  return Clock;
}

} // namespace mv
} // namespace stm
} // namespace otm

#endif // OTM_STM_MVCC_H
