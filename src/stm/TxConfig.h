//===- stm/TxConfig.h - Runtime configuration of the STM -------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime knobs of the STM. The benchmarks flip these to isolate the
/// contribution of each mechanism (e.g. runtime log filtering on/off is the
/// E5 axis). Configuration is sampled when a transaction begins.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_TXCONFIG_H
#define OTM_STM_TXCONFIG_H

namespace otm {
namespace stm {

struct TxConfig {
  /// Filter duplicate read-log enlistments with a per-transaction hash set.
  bool FilterReads = true;

  /// Filter duplicate undo-log entries with a per-transaction hash set.
  bool FilterUndo = true;

  /// Spin iterations on an open-for-update / open-for-read ownership
  /// conflict before aborting the attacker.
  unsigned ConflictSpins = 128;

  /// Cap on commit attempts before atomic() escalates backoff to yields.
  unsigned SoftRetryLimit = 16;
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_TXCONFIG_H
