//===- stm/TxConfig.h - Runtime configuration of the STM -------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime knobs of the STM. The benchmarks flip these to isolate the
/// contribution of each mechanism (e.g. runtime log filtering on/off is the
/// E5 axis). Configuration is sampled when a transaction begins.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_TXCONFIG_H
#define OTM_STM_TXCONFIG_H

#include "txn/ContentionManager.h"

#include <cstdlib>

namespace otm {
namespace stm {

struct TxConfig {
  /// Filter duplicate read-log enlistments with a per-transaction hash set.
  bool FilterReads = true;

  /// Filter duplicate undo-log entries with a per-transaction hash set.
  bool FilterUndo = true;

  /// Spin iterations on an open-for-update / open-for-read ownership
  /// conflict before aborting the attacker.
  unsigned ConflictSpins = 128;

  /// Cap on commit attempts before atomic() escalates backoff to yields.
  unsigned SoftRetryLimit = 16;

  /// Contention-management policy consulted at ownership conflicts and
  /// between retry attempts (both STMs and the interpreter). Defaults to
  /// the OTM_CM environment variable (passive|backoff|karma|greedy),
  /// falling back to backoff — the pre-txn-layer behaviour.
  txn::CmPolicy ContentionPolicy = txn::policyFromEnv(txn::CmPolicy::Backoff);

  /// Retry budget: after this many aborted attempts of one transaction,
  /// the next attempt escalates to serial-irrevocable mode (all other
  /// transactions drain and stall until it finishes). 0 disables the
  /// fallback. Defaults to the OTM_RETRY_BUDGET environment variable.
  unsigned SerialFallbackAfter = defaultSerialFallbackAfter();

  /// Static read-only hint: transactions begun under this flag run on the
  /// MVCC snapshot path (no read log, no validation, cannot abort) and are
  /// restarted as writers on their first update barrier. Per-transaction
  /// declaration goes through Stm::atomicReadOnly instead of this
  /// process-wide knob. Ignored when the MVCC tier is compiled out.
  bool ReadOnly = false;

  /// Committed versions kept per object for snapshot readers (chain depth
  /// K). 0 disables version-chain maintenance, which also sends read-only
  /// transactions back to the validate-scan path. Defaults to the
  /// OTM_MV_VERSIONS environment variable. Set once at startup: toggling
  /// while snapshot readers are in flight only costs them refresh restarts,
  /// but it wastes the chains already built.
  unsigned MvVersions = defaultMvVersions();

  /// Hardware (RTM) attempts tried before the software retry ladder — the
  /// top rung of the three-tier escalation (DESIGN.md §3.12). 0 sends every
  /// transaction straight to the STM. The default honors the OTM_HTM=0
  /// runtime kill switch and OTM_HTM_ATTEMPTS=<n>; the knob is inert when
  /// the tier is compiled out (-DOTM_HTM=0) or the runtime capability
  /// probe found no working RTM on this machine.
  unsigned HtmAttempts = defaultHtmAttempts();

  static unsigned defaultSerialFallbackAfter() {
    if (const char *E = std::getenv("OTM_RETRY_BUDGET"))
      return static_cast<unsigned>(std::strtoul(E, nullptr, 10));
    return 64;
  }

  static unsigned defaultMvVersions() {
    if (const char *E = std::getenv("OTM_MV_VERSIONS"))
      return static_cast<unsigned>(std::strtoul(E, nullptr, 10));
    return 8;
  }

  static unsigned defaultHtmAttempts() {
    if (const char *E = std::getenv("OTM_HTM"))
      if (std::strtoul(E, nullptr, 10) == 0)
        return 0; // kill switch: OTM_HTM=0 forces the software ladder
    if (const char *E = std::getenv("OTM_HTM_ATTEMPTS"))
      return static_cast<unsigned>(std::strtoul(E, nullptr, 10));
    return 8;
  }
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_TXCONFIG_H
