//===- stm/TxManager.cpp - Decomposed direct-access STM ------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stm/TxManager.h"

#include "gc/EpochManager.h"
#include "obs/AbortSites.h"
#include "obs/Telemetry.h"
#include "stm/HashFilter.h"
#include "stm/StatsJson.h"
#include "txn/CmStats.h"

#include <thread>

using namespace otm;
using namespace otm::stm;

namespace {

/// Thread-local holder. TxManager instances are intentionally leaked: a
/// zombie transaction on another thread may still dereference an
/// UpdateEntry inside this manager's update log an instant after the owner
/// released it, so the log storage must outlive the thread.
struct TlsHolder {
  TxManager *Manager = nullptr;
  ~TlsHolder();
};

} // namespace

constinit thread_local TxManager *otm::stm::detail::CurrentTxPtr = nullptr;

TxManager &TxManager::currentSlow() {
  static thread_local TlsHolder Holder;
  Holder.Manager = new TxManager();
  Holder.Manager->Obs.attachThread();
  detail::CurrentTxPtr = Holder.Manager;
  return *Holder.Manager;
}

TlsHolder::~TlsHolder() {
  if (Manager)
    Manager->flushStats();
}

bool TxManager::validateEntry(const ReadEntry &Entry) const {
  WordValue Cur = Entry.Obj->Word.load(std::memory_order_acquire);
  if (Cur == Entry.Seen)
    return !isOwned(Cur); // seen words are always unowned versions
  if (isOwned(Cur)) {
    // We may have upgraded the object to update ownership after reading it;
    // that is consistent iff nobody committed in between.
    const UpdateEntry *Owner = ownerEntry(Cur);
    return Owner->owner() == this && Owner->PrevWord == Entry.Seen;
  }
  return false;
}

bool TxManager::validate() {
  assert(inTx() && "validate outside a transaction");
  // Walk the raw chunk arrays (no per-index arithmetic) and prefetch the
  // next entry's STM word one step ahead: the words live in the objects,
  // not the log, so a large read set takes a dependent cache miss per
  // entry that the prefetch overlaps with the current compare.
  bool Ok = true;
  obs::PhaseScope Ph(Obs.Sampling, Stats.PhaseValidateCycles);
  ReadLog.forEachChunkArray([&](ReadEntry *Data, std::size_t N) {
    if (!Ok)
      return;
    for (std::size_t I = 0; I != N; ++I) {
      if (OTM_LIKELY(I + 1 != N))
        OTM_PREFETCH(&Data[I + 1].Obj->Word);
      if (OTM_UNLIKELY(!validateEntry(Data[I]))) {
        Ok = false;
        return;
      }
    }
  });
  return Ok;
}

void TxManager::releaseOwnershipForCommit() {
  UpdateLog.forEach([](UpdateEntry &Entry) {
    WordValue NewWord = makeVersion(versionOf(Entry.PrevWord) + 1);
    Entry.Obj->Word.store(NewWord, std::memory_order_release);
  });
}

void TxManager::releaseOwnershipForAbort() {
  UpdateLog.forEach([](UpdateEntry &Entry) {
    Entry.Obj->Word.store(Entry.PrevWord, std::memory_order_release);
  });
}

bool TxManager::tryCommit() {
  assert(inTx() && "tryCommit outside a transaction");
  if (Depth > 1) {
    --Depth; // nested commit: the outermost decides
    return true;
  }

  if (OTM_UNLIKELY(!validate())) {
    ++Stats.AbortsOnValidation;
    recordValidationFailureSite();
    rollbackAttempt(AbortTx::Cause::Validation);
    return false;
  }

  // Serialization point. Publish new versions; owned objects were
  // exclusively ours, so each release makes one update atomically visible.
  // Read-only transactions skip the (out-of-line) release walk entirely.
  if (!UpdateLog.empty()) {
    obs::PhaseScope Ph(Obs.Sampling, Stats.PhaseWriteBackCycles);
    releaseOwnershipForCommit();
  }
  ++Stats.Commits;
  Obs.onCommit(0, Stats.CommitTscCycles, Stats.RetriesPerCommit);

  // Deferred frees take effect only now that the deletion is committed;
  // epoch-based retirement protects concurrent zombies still holding refs.
  if (OTM_UNLIKELY(!AllocLog.empty()))
    AllocLog.forEach([](AllocEntry &Entry) {
      if (Entry.FreeOnCommit)
        gc::EpochManager::global().retire(Entry.Raw, Entry.Destroy);
    });
  finishAttempt();
  return true;
}

static uint16_t auxCauseFor(AbortTx::Cause Why) {
  switch (Why) {
  case AbortTx::Cause::Conflict:
    return obs::AuxCauseConflict;
  case AbortTx::Cause::Validation:
    return obs::AuxCauseValidation;
  case AbortTx::Cause::User:
    return obs::AuxCauseUser;
  }
  return obs::AuxCauseConflict;
}

void TxManager::rollbackAttempt(AbortTx::Cause Why) {
  assert(inTx() && "rollbackAttempt outside a transaction");
  // Undo in reverse so multiply-written locations get their oldest value
  // back (only relevant when undo filtering is off and duplicates exist).
  UndoLog.forEachReverse(
      [](UndoEntry &Entry) { Entry.Restore(Entry.Addr, Entry.Bits); });
  // Only after every old value is back in place may others see the object.
  releaseOwnershipForAbort();
  // Objects allocated by this attempt are garbage; retire via the epoch
  // reclaimer because a concurrent zombie may still hold a reference that
  // escaped through one of our (now undone) in-place stores.
  AllocLog.forEach([](AllocEntry &Entry) {
    if (!Entry.FreeOnCommit)
      gc::EpochManager::global().retire(Entry.Raw, Entry.Destroy);
  });
  ++Stats.Aborts;
  Obs.onAbort(auxCauseFor(Why), 0);
  finishAttempt();
}

WordValue TxManager::waitForUnowned(TxObject *Obj) {
  // Arbitration is delegated to the configured contention manager: one
  // decision per wait round (a round is ~32 pause iterations plus a yield,
  // so the backoff policy's budget matches the old ConflictSpins loop).
  const txn::ContentionManager &CM =
      txn::managerFor(ActiveConfig.ContentionPolicy);
  constexpr unsigned RoundSpins = 32;
  const unsigned BudgetRounds =
      (ActiveConfig.ConflictSpins + RoundSpins - 1) / RoundSpins;
  WordValue W = Obj->Word.load(std::memory_order_acquire);
  // CmWait nests inside the Open scope of the barrier that called us, so
  // PhaseOpenCycles already contains this time; the separate histogram
  // isolates how much of the open barrier was arbitration.
  obs::PhaseScope Ph(Obs.Sampling, Stats.PhaseCmWaitCycles);
  for (unsigned Round = 0;; ++Round) {
    if (!isOwned(W))
      return W;
    txn::ConflictChoice Choice = CM.onConflict(
        CmState, ownerEntry(W)->owner()->CmState, Round, BudgetRounds);
    if (Choice == txn::ConflictChoice::Wait) {
      if (Round == 0)
        txn::CmStats::instance().bumpConflictWaits();
      for (unsigned Spin = 0; Spin < RoundSpins - 1; ++Spin)
        cpuRelax();
      std::this_thread::yield(); // crucial on oversubscribed machines
      W = Obj->Word.load(std::memory_order_acquire);
      continue;
    }
    if (Choice == txn::ConflictChoice::AbortSelfPriority)
      txn::CmStats::instance().bumpPriorityAborts();
    break;
  }
  ++Stats.AbortsOnConflict;
  // Attribute the conflict to whoever owns the object right now (the owner
  // may have released it since the last spin; then the site is unknown).
  W = Obj->Word.load(std::memory_order_acquire);
  obs::AbortSites::instance().record(
      Obj, obs::AbortCause::Conflict,
      isOwned(W) ? ownerEntry(W)->owner()->siteId() : 0, siteId());
  abortAndThrow(AbortTx::Cause::Conflict);
}

void TxManager::recordValidationFailureSite() {
  for (std::size_t I = 0, E = ReadLog.size(); I != E; ++I) {
    const ReadEntry &Entry = ReadLog[I];
    if (OTM_LIKELY(validateEntry(Entry)))
      continue;
    WordValue Cur = Entry.Obj->Word.load(std::memory_order_acquire);
    obs::AbortSites::instance().record(
        Entry.Obj, obs::AbortCause::Validation,
        isOwned(Cur) ? ownerEntry(Cur)->owner()->siteId() : 0, siteId());
    return; // first invalid entry is the one that doomed the attempt
  }
}

void TxManager::abortAndThrow(AbortTx::Cause Why) {
  // Unwind first (user destructors run), then Stm::atomic's catch block
  // calls rollbackAttempt.
  throw AbortTx{Why};
}

void TxManager::userAbort() {
  ++Stats.AbortsByUser;
  abortAndThrow(AbortTx::Cause::User);
}

void TxManager::flushStats() {
  GlobalTxStats::instance().add(Stats);
  Stats.reset();
}

std::pair<std::size_t, std::size_t> TxManager::compactLogsForGc() {
  assert(inTx() && "compactLogsForGc outside a transaction");
  // Deduplicate the read log by object, keeping the first enlistment (if a
  // later duplicate saw a different word the transaction is doomed anyway
  // and validation will catch it).
  HashFilter Seen;
  std::size_t ReadsRemoved = ReadLog.removeIf([&](const ReadEntry &Entry) {
    return !Seen.insert(reinterpret_cast<uintptr_t>(Entry.Obj));
  });
  // Deduplicate the undo log by address, keeping the first (oldest) value:
  // replaying it restores the pre-transaction state.
  Seen.clear();
  std::size_t UndosRemoved = UndoLog.removeIf([&](const UndoEntry &Entry) {
    return !Seen.insert(reinterpret_cast<uintptr_t>(Entry.Addr));
  });
  return {ReadsRemoved, UndosRemoved};
}

#if OTM_OBS_ENABLE
namespace {

/// Registers the stm-side telemetry sources during static initialization.
/// obs cannot depend on stm, so the conversion from GlobalTxStats/CmStats
/// into JsonValue trees lives here; the sampler only sees named callbacks.
/// All sources read process-lifetime aggregates with relaxed snapshots, so
/// they are safe from the sampler thread at any point in the run.
struct StmTelemetrySources {
  StmTelemetrySources() {
    using obs::JsonValue;
    obs::Telemetry &T = obs::Telemetry::instance();
    T.registerSource("stm", [] {
      TxStats S = GlobalTxStats::instance().snapshot();
      JsonValue V = JsonValue::object();
      S.forEachCounter(
          [&](const char *Name, uint64_t Value) { V.set(Name, Value); });
      // Doubles are reported in totals only; the delta pass skips them
      // (quantiles of a cumulative histogram are not a rate).
      JsonValue Commit = JsonValue::object();
      Commit.set("count", S.CommitTscCycles.count());
      Commit.set("p50_cycles", S.CommitTscCycles.percentile(50.0));
      Commit.set("p99_cycles", S.CommitTscCycles.percentile(99.0));
      Commit.set("p999_cycles", S.CommitTscCycles.percentile(99.9));
      V.set("commit_latency", std::move(Commit));
      return V;
    });
    T.registerSource("txn_cm", [] {
      return txn::cmStatsToJson(txn::CmStats::instance().snapshot());
    });
    T.registerSource("abort_sites", [] {
      const obs::AbortSites &A = obs::AbortSites::instance();
      JsonValue V = JsonValue::object();
      V.set("dropped", A.dropped());
      V.set("edges_dropped", A.edgesDropped());
      V.set("sites_used", static_cast<uint64_t>(A.siteOccupancy()));
      V.set("edges_used", static_cast<uint64_t>(A.edgeOccupancy()));
      return V;
    });
    T.registerSource("phases", [] {
      return phaseBreakdownToJson(GlobalTxStats::instance().snapshot());
    });
  }
} RegisterStmSources;

} // namespace
#endif // OTM_OBS_ENABLE
