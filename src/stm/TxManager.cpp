//===- stm/TxManager.cpp - Decomposed direct-access STM ------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "stm/TxManager.h"

#include "gc/EpochManager.h"
#include "obs/AbortSites.h"
#include "obs/Telemetry.h"
#include "stm/HashFilter.h"
#include "stm/StatsJson.h"
#include "txn/CmStats.h"

#include <thread>

using namespace otm;
using namespace otm::stm;

namespace {

/// Thread-local holder. TxManager instances are intentionally leaked: a
/// zombie transaction on another thread may still dereference an
/// UpdateEntry inside this manager's update log an instant after the owner
/// released it, so the log storage must outlive the thread.
struct TlsHolder {
  TxManager *Manager = nullptr;
  ~TlsHolder();
};

} // namespace

constinit thread_local TxManager *otm::stm::detail::CurrentTxPtr = nullptr;

TxManager &TxManager::currentSlow() {
  static thread_local TlsHolder Holder;
  Holder.Manager = new TxManager();
  Holder.Manager->Obs.attachThread();
  detail::CurrentTxPtr = Holder.Manager;
  return *Holder.Manager;
}

TlsHolder::~TlsHolder() {
  if (Manager)
    Manager->flushStats();
}

bool TxManager::validateEntry(const ReadEntry &Entry) const {
  WordValue Cur = Entry.Obj->Word.load(std::memory_order_acquire);
  if (Cur == Entry.Seen)
    return !isOwned(Cur); // seen words are always unowned versions
  if (isOwned(Cur)) {
    // We may have upgraded the object to update ownership after reading it;
    // that is consistent iff nobody committed in between.
    const UpdateEntry *Owner = ownerEntry(Cur);
    return Owner->owner() == this && Owner->PrevWord == Entry.Seen;
  }
  return false;
}

bool TxManager::validate() {
  assert(inTx() && "validate outside a transaction");
#if OTM_HTM
  if (OTM_UNLIKELY(HtmMode))
    return true; // the speculation hardware keeps the read set coherent
#endif
  // Walk the raw chunk arrays (no per-index arithmetic) and prefetch the
  // next entry's STM word one step ahead: the words live in the objects,
  // not the log, so a large read set takes a dependent cache miss per
  // entry that the prefetch overlaps with the current compare.
  bool Ok = true;
  obs::PhaseScope Ph(Obs.Sampling, Stats.PhaseValidateCycles);
  ReadLog.forEachChunkArray([&](ReadEntry *Data, std::size_t N) {
    if (!Ok)
      return;
    for (std::size_t I = 0; I != N; ++I) {
      if (OTM_LIKELY(I + 1 != N))
        OTM_PREFETCH(&Data[I + 1].Obj->Word);
      if (OTM_UNLIKELY(!validateEntry(Data[I]))) {
        Ok = false;
        return;
      }
    }
  });
  return Ok;
}

void TxManager::releaseOwnershipForCommit(uint64_t CommitStamp) {
#if OTM_MVCC
  // Every object this commit wrote gets the same global stamp: snapshot
  // readers compare it against their begin-time clock value, and stamps
  // are unique and monotone so validation's word compare stays exact.
  const WordValue NewWord = makeVersion(CommitStamp);
  UpdateLog.forEach([NewWord](UpdateEntry &Entry) {
    Entry.Obj->Word.store(NewWord, std::memory_order_release);
  });
#else
  (void)CommitStamp;
  UpdateLog.forEach([](UpdateEntry &Entry) {
    WordValue NewWord = makeVersion(versionOf(Entry.PrevWord) + 1);
    Entry.Obj->Word.store(NewWord, std::memory_order_release);
  });
#endif
}

void TxManager::releaseOwnershipForAbort() {
  // Releasing with the pre-ownership word restored would be an ABA trap: a
  // transaction that read a field between our in-place store and this
  // rollback has a dirty value, but its read-log entry would still match
  // the word and validate — it could commit state that never existed
  // (observed as an extra increment under preemption-heavy scheduling).
  // Instead an abort releases like an *identity commit* of the restored
  // values: the word moves to a fresh version, so every concurrent read
  // enlisted against the old word — and every upgrade whose PrevWord is
  // the old word — fails validation and retries.
  if (UpdateLog.empty())
    return;
  if (UndoLog.empty()) {
    // Ownership was acquired but nothing was stored in place, so no dirty
    // value can have escaped: restoring the old word is exact.
    UpdateLog.forEach([](UpdateEntry &Entry) {
      Entry.Obj->Word.store(Entry.PrevWord, std::memory_order_release);
    });
    return;
  }
#if OTM_MVCC
  // The pseudo-commit draws from the same clock as real commits (stamps
  // stay unique and monotone) and installs the same version-chain node:
  // the undo log's pre-images are exactly the values this rollback just
  // restored, so snapshot readers resolve through it instead of being
  // pushed to a refresh by a stamp they cannot find on the chain.
  const uint64_t AbortStamp =
      1 + mv::commitClock().fetch_add(1, std::memory_order_acq_rel);
  if (OTM_LIKELY(ActiveConfig.MvVersions > 0))
    installVersions(AbortStamp);
  const WordValue NewWord = makeVersion(AbortStamp);
  UpdateLog.forEach([NewWord](UpdateEntry &Entry) {
    Entry.Obj->Word.store(NewWord, std::memory_order_release);
  });
#else
  UpdateLog.forEach([](UpdateEntry &Entry) {
    WordValue NewWord = makeVersion(versionOf(Entry.PrevWord) + 1);
    Entry.Obj->Word.store(NewWord, std::memory_order_release);
  });
#endif
}

bool TxManager::tryCommit() {
  assert(inTx() && "tryCommit outside a transaction");
  if (Depth > 1) {
    --Depth; // nested commit: the outermost decides
    return true;
  }

#if OTM_MVCC
  if (OTM_UNLIKELY(SnapshotMode))
    return snapshotCommit();
#endif

  if (OTM_UNLIKELY(!validate())) {
    ++Stats.AbortsOnValidation;
    recordValidationFailureSite();
    rollbackAttempt(AbortTx::Cause::Validation);
    return false;
  }

  // Serialization point. Publish new versions; owned objects were
  // exclusively ours, so each release makes one update atomically visible.
  // Read-only transactions skip the (out-of-line) release walk entirely.
  if (!UpdateLog.empty()) {
    obs::PhaseScope Ph(Obs.Sampling, Stats.PhaseWriteBackCycles);
#if OTM_MVCC
    // Take the commit stamp only now: validation has succeeded and nothing
    // can abort this transaction anymore, so every stamp the clock hands
    // out is eventually published and snapshot stamps never wait on holes.
    const uint64_t CommitStamp =
        1 + mv::commitClock().fetch_add(1, std::memory_order_acq_rel);
    if (OTM_LIKELY(ActiveConfig.MvVersions > 0))
      installVersions(CommitStamp);
    releaseOwnershipForCommit(CommitStamp);
#else
    releaseOwnershipForCommit(0);
#endif
  }
  ++Stats.Commits;
#if OTM_MVCC
  ForceWriter = false; // the transaction is done; drop the upgrade latch
  ReadOnlyHint = false;
#endif
  Obs.onCommit(0, Stats.CommitTscCycles, Stats.RetriesPerCommit);

  // Deferred frees take effect only now that the deletion is committed;
  // epoch-based retirement protects concurrent zombies still holding refs.
  if (OTM_UNLIKELY(!AllocLog.empty()))
    AllocLog.forEach([](AllocEntry &Entry) {
      if (Entry.FreeOnCommit)
        gc::EpochManager::global().retire(Entry.Raw, Entry.Destroy);
    });
#if OTM_BOOST
  if (OTM_UNLIKELY(!boostStateEmpty()))
    commitBoostState();
#endif
  finishAttempt();
  return true;
}

static uint16_t auxCauseFor(AbortTx::Cause Why) {
  switch (Why) {
  case AbortTx::Cause::Conflict:
    return obs::AuxCauseConflict;
  case AbortTx::Cause::Validation:
    return obs::AuxCauseValidation;
  case AbortTx::Cause::User:
    return obs::AuxCauseUser;
  case AbortTx::Cause::SnapshotUpgrade:
    return obs::AuxCauseSnapshotUpgrade;
  case AbortTx::Cause::SnapshotRefresh:
    return obs::AuxCauseSnapshotRefresh;
  }
  return obs::AuxCauseConflict;
}

void TxManager::rollbackAttempt(AbortTx::Cause Why) {
  assert(inTx() && "rollbackAttempt outside a transaction");
  // Undo in reverse so multiply-written locations get their oldest value
  // back (only relevant when undo filtering is off and duplicates exist).
  // Snapshot attempts have nothing enlisted, so these walks are no-ops.
  UndoLog.forEachReverse(
      [](UndoEntry &Entry) { Entry.Restore(Entry.Addr, Entry.Bits); });
  // Only after every old value is back in place may others see the object.
  releaseOwnershipForAbort();
  // Objects allocated by this attempt are garbage; retire via the epoch
  // reclaimer because a concurrent zombie may still hold a reference that
  // escaped through one of our (now undone) in-place stores.
  AllocLog.forEach([](AllocEntry &Entry) {
    if (!Entry.FreeOnCommit)
      gc::EpochManager::global().retire(Entry.Raw, Entry.Destroy);
  });
#if OTM_BOOST
  // Semantic undo: run the abort handlers (newest first) while the abstract
  // locks are still held, then drop the locks. The structural gate's drain
  // counts a held key lock until this releases it, so a whole-container
  // operation can never observe a half-undone container.
  if (OTM_UNLIKELY(!boostStateEmpty()))
    abortBoostState();
#endif
  // Snapshot upgrades/refreshes are restarts of a transaction that cannot
  // lose to anyone — keeping them out of Aborts preserves the never-abort
  // accounting the read-only path advertises.
  const bool SnapshotRestart = Why == AbortTx::Cause::SnapshotUpgrade ||
                               Why == AbortTx::Cause::SnapshotRefresh;
  if (!SnapshotRestart)
    ++Stats.Aborts;
#if OTM_MVCC
  if (Why == AbortTx::Cause::User) {
    ForceWriter = false; // final outcome: drop the per-transaction latches
    ReadOnlyHint = false;
  }
#endif
  Obs.onAbort(auxCauseFor(Why), 0);
  finishAttempt();
}

WordValue TxManager::waitForUnowned(TxObject *Obj) {
  // Arbitration is delegated to the configured contention manager: one
  // decision per wait round (a round is ~32 pause iterations plus a yield,
  // so the backoff policy's budget matches the old ConflictSpins loop).
  const txn::ContentionManager &CM =
      txn::managerFor(ActiveConfig.ContentionPolicy);
  constexpr unsigned RoundSpins = 32;
  const unsigned BudgetRounds =
      (ActiveConfig.ConflictSpins + RoundSpins - 1) / RoundSpins;
  WordValue W = Obj->Word.load(std::memory_order_acquire);
  // CmWait nests inside the Open scope of the barrier that called us, so
  // PhaseOpenCycles already contains this time; the separate histogram
  // isolates how much of the open barrier was arbitration.
  obs::PhaseScope Ph(Obs.Sampling, Stats.PhaseCmWaitCycles);
  for (unsigned Round = 0;; ++Round) {
    if (!isOwned(W))
      return W;
    txn::ConflictChoice Choice = CM.onConflict(
        CmState, ownerEntry(W)->owner()->CmState, Round, BudgetRounds);
    if (Choice == txn::ConflictChoice::Wait) {
      if (Round == 0)
        txn::CmStats::instance().bumpConflictWaits();
      for (unsigned Spin = 0; Spin < RoundSpins - 1; ++Spin)
        cpuRelax();
      std::this_thread::yield(); // crucial on oversubscribed machines
      W = Obj->Word.load(std::memory_order_acquire);
      continue;
    }
    if (Choice == txn::ConflictChoice::AbortSelfPriority)
      txn::CmStats::instance().bumpPriorityAborts();
    break;
  }
  ++Stats.AbortsOnConflict;
  // Attribute the conflict to whoever owns the object right now (the owner
  // may have released it since the last spin; then the site is unknown).
  W = Obj->Word.load(std::memory_order_acquire);
  obs::AbortSites::instance().record(
      Obj, obs::AbortCause::Conflict,
      isOwned(W) ? ownerEntry(W)->owner()->siteId() : 0, siteId());
  abortAndThrow(AbortTx::Cause::Conflict);
}

#if OTM_BOOST

void TxManager::boostAcquireKey(uint64_t ContainerId, uint64_t Key) {
  assert(inTx() && "boostAcquireKey outside a transaction");
#if OTM_HTM
  // Abstract locks outlive the attempt (released at commit/abort time by
  // the deferred-action machinery) — that protocol cannot run inside a
  // hardware region. Boosted operations always take the software tier.
  if (OTM_UNLIKELY(HtmMode))
    txn::htm::abortWith<txn::htm::CodeUnsupported>();
#endif
#if OTM_MVCC
  if (OTM_UNLIKELY(SnapshotMode))
    upgradeToWriter(); // boosted ops mutate in place: not read-only
#endif
  txn::AbstractLockTable &Table = txn::AbstractLockTable::instance();
  txn::AbstractLockTable::Slot &S = Table.slotFor(ContainerId, Key);
  txn::AbstractLockTable::Gate &G = Table.gateFor(ContainerId);
  // Holding the whole container (structural fallback earlier in this
  // transaction) subsumes every key lock under its gate: the drain that
  // admitted us proved no foreign key lock exists, and newcomers back off
  // on the gate before reaching any slot.
  if (G.Structural.load(std::memory_order_acquire) == &CmState)
    return;
  const txn::ContentionManager &CM =
      txn::managerFor(ActiveConfig.ContentionPolicy);
  constexpr unsigned RoundSpins = 32;
  const unsigned BudgetRounds =
      (ActiveConfig.ConflictSpins + RoundSpins - 1) / RoundSpins;
  obs::PhaseScope Ph(Obs.Sampling, Stats.PhaseCmWaitCycles);
  bool CountedWait = false;
  for (unsigned Round = 0;;) {
    txn::CmTxState *Blocker = nullptr;
    // Dekker handshake with the structural side: claim ActiveSemantic
    // first, then recheck the gate (the structural claimant stores its
    // owner first, then reads ActiveSemantic; both sides seq_cst).
    txn::CmTxState *Structural = G.Structural.load(std::memory_order_seq_cst);
    if (Structural && Structural != &CmState) {
      Blocker = Structural;
    } else {
      G.ActiveSemantic.fetch_add(1, std::memory_order_seq_cst);
      Structural = G.Structural.load(std::memory_order_seq_cst);
      if (Structural && Structural != &CmState) {
        G.ActiveSemantic.fetch_sub(1, std::memory_order_seq_cst);
        Blocker = Structural;
      } else {
        txn::CmTxState *Owner = nullptr;
        switch (Table.tryAcquire(S, &CmState, Owner)) {
        case txn::AbstractLockTable::Acquire::Acquired:
          // The ActiveSemantic claim transfers to the held lock; it drops
          // when release() runs at commit/abort.
          BoostLocks.emplaceBack(
              txn::AbstractLockTable::LockRef{&S, &G, false});
          ++Stats.BoostLockAcquires;
          return;
        case txn::AbstractLockTable::Acquire::AlreadyHeld:
          G.ActiveSemantic.fetch_sub(1, std::memory_order_seq_cst);
          return; // idempotent re-acquire (same key, or a slot collision)
        case txn::AbstractLockTable::Acquire::Busy:
          G.ActiveSemantic.fetch_sub(1, std::memory_order_seq_cst);
          Blocker = Owner;
          break;
        }
      }
    }
    // A semantic conflict is arbitrated exactly like a structural ownership
    // conflict: same managers, same round budget, same wait shape.
    if (!CountedWait) {
      txn::CmStats::instance().bumpSemanticWaits();
      ++Stats.BoostLockWaits;
      CountedWait = true;
    }
    txn::ConflictChoice Choice =
        CM.onConflict(CmState, *Blocker, Round, BudgetRounds);
    if (Choice == txn::ConflictChoice::Wait) {
      for (unsigned Spin = 0; Spin < RoundSpins - 1; ++Spin)
        cpuRelax();
      std::this_thread::yield();
      ++Round;
      continue;
    }
    if (Choice == txn::ConflictChoice::AbortSelfPriority)
      txn::CmStats::instance().bumpSemanticPriorityAborts();
    ++Stats.AbortsOnConflict;
    // Attribute to the slot address: abstract locks have no TxObject, but
    // the site table only needs a stable key for the contended resource.
    obs::AbortSites::instance().record(&S, obs::AbortCause::Conflict, 0,
                                       siteId());
    abortAndThrow(AbortTx::Cause::Conflict);
  }
}

void TxManager::boostAcquireStructural(uint64_t ContainerId) {
  assert(inTx() && "boostAcquireStructural outside a transaction");
#if OTM_HTM
  if (OTM_UNLIKELY(HtmMode)) // same rule as boostAcquireKey
    txn::htm::abortWith<txn::htm::CodeUnsupported>();
#endif
#if OTM_MVCC
  if (OTM_UNLIKELY(SnapshotMode))
    upgradeToWriter();
#endif
  txn::AbstractLockTable &Table = txn::AbstractLockTable::instance();
  txn::AbstractLockTable::Gate &G = Table.gateFor(ContainerId);
  if (G.Structural.load(std::memory_order_acquire) == &CmState)
    return; // reentrant within the transaction
  ++Stats.BoostStructuralFallbacks;
  const txn::ContentionManager &CM =
      txn::managerFor(ActiveConfig.ContentionPolicy);
  constexpr unsigned RoundSpins = 32;
  const unsigned BudgetRounds =
      (ActiveConfig.ConflictSpins + RoundSpins - 1) / RoundSpins;
  obs::PhaseScope Ph(Obs.Sampling, Stats.PhaseCmWaitCycles);
  // Phase 1: claim the gate, arbitrating against a rival structural owner.
  bool CountedWait = false;
  for (unsigned Round = 0;;) {
    txn::CmTxState *Owner = nullptr;
    if (Table.tryClaimStructural(G, &CmState, Owner))
      break;
    if (!CountedWait) {
      txn::CmStats::instance().bumpSemanticWaits();
      ++Stats.BoostLockWaits;
      CountedWait = true;
    }
    txn::ConflictChoice Choice =
        CM.onConflict(CmState, *Owner, Round, BudgetRounds);
    if (Choice == txn::ConflictChoice::Wait) {
      for (unsigned Spin = 0; Spin < RoundSpins - 1; ++Spin)
        cpuRelax();
      std::this_thread::yield();
      ++Round;
      continue;
    }
    if (Choice == txn::ConflictChoice::AbortSelfPriority)
      txn::CmStats::instance().bumpSemanticPriorityAborts();
    ++Stats.AbortsOnConflict;
    obs::AbortSites::instance().record(&G, obs::AbortCause::Conflict, 0,
                                       siteId());
    abortAndThrow(AbortTx::Cause::Conflict);
  }
  // Record the gate *before* draining: if the drain aborts us, rollback
  // releases the claim through the ordinary lock-release walk.
  BoostLocks.emplaceBack(txn::AbstractLockTable::LockRef{nullptr, &G, true});
  // Phase 2: wait out foreign key locks under this gate. Our own are part
  // of ActiveSemantic too, so drain down to that self-contribution. The
  // wait is bounded: key holders release at commit/abort, but an older
  // holder may itself be waiting on a resource we hold elsewhere — there is
  // no single owner to arbitrate with, so past the budget we abort
  // unconditionally rather than risk a cycle.
  uint32_t SelfHeld = 0;
  BoostLocks.forEach([&](txn::AbstractLockTable::LockRef &R) {
    if (!R.Structural && R.G == &G)
      ++SelfHeld;
  });
  for (unsigned Round = 0;;) {
    if (G.ActiveSemantic.load(std::memory_order_seq_cst) <= SelfHeld)
      return;
    if (Round >= BudgetRounds) {
      ++Stats.AbortsOnConflict;
      obs::AbortSites::instance().record(&G, obs::AbortCause::Conflict, 0,
                                         siteId());
      abortAndThrow(AbortTx::Cause::Conflict);
    }
    for (unsigned Spin = 0; Spin < RoundSpins - 1; ++Spin)
      cpuRelax();
    std::this_thread::yield();
    ++Round;
  }
}

void TxManager::releaseBoostLocks() {
  if (BoostLocks.empty())
    return;
  txn::AbstractLockTable &Table = txn::AbstractLockTable::instance();
  BoostLocks.forEachReverse([&](txn::AbstractLockTable::LockRef &R) {
    Table.release(R, &CmState);
  });
  BoostLocks.clear();
}

void TxManager::commitBoostState() {
  if (!CommitActions.empty()) {
    RunningDeferred = true;
    CommitActions.forEach([&](DeferredAction &A) {
      A.Invoke(A.Payload);
      A.Dispose(A.Payload);
      ++Stats.BoostCommitOps;
    });
    RunningDeferred = false;
    CommitActions.clear();
  }
  if (!AbortActions.empty()) {
    AbortActions.forEach([](DeferredAction &A) { A.Dispose(A.Payload); });
    AbortActions.clear();
  }
  releaseBoostLocks();
}

void TxManager::abortBoostState() {
  if (!AbortActions.empty()) {
    RunningDeferred = true;
    AbortActions.forEachReverse([&](DeferredAction &A) {
      A.Invoke(A.Payload);
      A.Dispose(A.Payload);
      ++Stats.BoostUndoOps;
    });
    RunningDeferred = false;
    AbortActions.clear();
  }
  if (!CommitActions.empty()) {
    CommitActions.forEach([](DeferredAction &A) { A.Dispose(A.Payload); });
    CommitActions.clear();
  }
  releaseBoostLocks();
}

#endif // OTM_BOOST

void TxManager::recordValidationFailureSite() {
  for (std::size_t I = 0, E = ReadLog.size(); I != E; ++I) {
    const ReadEntry &Entry = ReadLog[I];
    if (OTM_LIKELY(validateEntry(Entry)))
      continue;
    WordValue Cur = Entry.Obj->Word.load(std::memory_order_acquire);
    obs::AbortSites::instance().record(
        Entry.Obj, obs::AbortCause::Validation,
        isOwned(Cur) ? ownerEntry(Cur)->owner()->siteId() : 0, siteId());
    return; // first invalid entry is the one that doomed the attempt
  }
}

void TxManager::abortAndThrow(AbortTx::Cause Why) {
  // Unwind first (user destructors run), then Stm::atomic's catch block
  // calls rollbackAttempt.
  throw AbortTx{Why};
}

void TxManager::userAbort() {
#if OTM_HTM
  // Inside a hardware region there is nothing to unwind in software: the
  // explicit abort rolls everything back and hands the executor the User
  // code, which accounts the abort (htmNoteUserAbort) and does not retry.
  if (OTM_UNLIKELY(HtmMode))
    txn::htm::abortWith<txn::htm::CodeUser>();
#endif
  ++Stats.AbortsByUser;
  abortAndThrow(AbortTx::Cause::User);
}

#if OTM_MVCC

namespace {
/// MvRecord/MvNode blocks come from the transaction pool; retirement frees
/// them raw (both types are trivially destructible).
void freePoolBlock(void *P) { support::TxPool::deallocate(P); }
} // namespace

void TxManager::installVersions(uint64_t CommitStamp) {
  assert(!UpdateLog.empty() && "nothing to version");
  const std::size_t NumFields = UndoLog.size();
  // One shared record per commit carries the whole undo log (the
  // pre-images); one node per written object links it into that object's
  // chain. Within the record, fields keep undo-log order, so the first
  // match for an address is the oldest pre-image even when undo filtering
  // is off and duplicates exist.
  auto *Rec = static_cast<mv::MvRecord *>(support::TxPool::allocate(
      sizeof(mv::MvRecord) + NumFields * sizeof(mv::MvField)));
  Rec->NewStamp = CommitStamp;
  Rec->ChainRefs.store(static_cast<uint32_t>(UpdateLog.size()),
                       std::memory_order_relaxed);
  Rec->NumFields = static_cast<uint32_t>(NumFields);
  std::size_t I = 0;
  UndoLog.forEach([&](UndoEntry &Entry) {
    Rec->fields()[I++] = {Entry.Addr, Entry.Bits};
  });

  const unsigned K = ActiveConfig.MvVersions;
  UpdateLog.forEach([&](UpdateEntry &Entry) {
    TxObject *Obj = Entry.Obj;
    auto *Node =
        static_cast<mv::MvNode *>(support::TxPool::allocate(sizeof(mv::MvNode)));
    Node->Rec = Rec;
    // We hold update ownership of Obj, so its chain head is ours alone to
    // write; readers get the node (and the record behind it) through the
    // release store below.
    Node->Older.store(Obj->Hist.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    Node->PrevStamp = versionOf(Entry.PrevWord);
    Obj->Hist.store(Node, std::memory_order_release);
    ++Stats.MvVersionsInstalled;

    // Truncate the chain to K nodes. Readers paused inside the cut tail
    // stay safe: the nodes (and the records they reference) are retired
    // through the epoch reclaimer, which waits out every active pin.
    unsigned Depth = 1;
    mv::MvNode *Last = Node;
    while (Depth < K) {
      mv::MvNode *Older = Last->Older.load(std::memory_order_relaxed);
      if (!Older)
        break;
      Last = Older;
      ++Depth;
    }
    if (Depth == K) {
      mv::MvNode *Cut = Last->Older.load(std::memory_order_relaxed);
      if (Cut) {
        Last->Older.store(nullptr, std::memory_order_relaxed);
        do {
          mv::MvNode *Next = Cut->Older.load(std::memory_order_relaxed);
          if (Cut->Rec->ChainRefs.fetch_sub(1, std::memory_order_acq_rel) == 1)
            gc::EpochManager::global().retire(Cut->Rec, freePoolBlock);
          gc::EpochManager::global().retire(Cut, freePoolBlock);
          ++Stats.MvVersionsRetired;
          Cut = Next;
        } while (Cut);
      }
    }
    if (OTM_UNLIKELY(Obs.Sampling))
      Stats.MvChainDepth.record(Depth);
  });
}

bool TxManager::snapshotCommit() {
  // The snapshot was consistent by construction, so there is nothing to
  // validate, publish, or release — this is the entire commit.
  assert(ReadLog.empty() && UpdateLog.empty() && UndoLog.empty() &&
         AllocLog.empty() && "snapshot attempt enlisted state");
  ++Stats.Commits;
  ++Stats.SnapshotCommits;
  ForceWriter = false;
  ReadOnlyHint = false;
  Obs.onCommit(0, Stats.CommitTscCycles, Stats.RetriesPerCommit);
  finishAttempt();
  return true;
}

TxManager::SnapshotResolve
TxManager::snapshotResolve(TxObject *Obj, const void *Addr, WordValue W,
                           uint64_t &Bits) const {
  const uint64_t T = SnapshotStamp;
  mv::MvNode *Node = Obj->Hist.load(std::memory_order_acquire);
  if (!isOwned(W)) {
    // The committed value is newer than our stamp. The chain must account
    // for that commit; a mismatched head means it committed without
    // maintaining the chain (MvVersions was toggled off mid-run) and the
    // pre-image never existed — only a fresh stamp can make progress.
    if (!Node || Node->Rec->NewStamp != versionOf(W))
      return SnapshotResolve::Refresh;
  } else if (!Node) {
    // First-ever writer of this object is in flight; its rollback-or-commit
    // resolves the word and the fast path takes over.
    return SnapshotResolve::Wait;
  }
  bool Found = false;
  bool Covered = false;
  while (Node) {
    const mv::MvRecord *Rec = Node->Rec;
    if (Rec->NewStamp <= T) {
      Covered = true; // the rest of the chain is at or below the snapshot
      break;
    }
    // This commit is above the snapshot: whatever it overwrote is closer
    // to the snapshot state than the in-place value. Keep overwriting as
    // the walk ages so the *oldest* qualifying pre-image wins.
    for (uint32_t F = 0; F < Rec->NumFields; ++F) {
      if (Rec->fields()[F].Addr == Addr) {
        Bits = Rec->fields()[F].Bits;
        Found = true;
        break; // first match within a record = that commit's oldest value
      }
    }
    if (Node->PrevStamp <= T) {
      Covered = true; // the object's pre-commit state was already visible
      break;
    }
    mv::MvNode *Older = Node->Older.load(std::memory_order_acquire);
    // Contiguity check: a gap (older node missing or stamped differently
    // than this node's predecessor) means an unmaintained commit hides in
    // between; its pre-images are lost, so refresh rather than guess.
    if (Older && Older->Rec->NewStamp != Node->PrevStamp)
      return SnapshotResolve::Refresh;
    Node = Older;
  }
  // Without coverage the walk never reached a state at or below the
  // snapshot: the chain was truncated above it, and any pre-image found on
  // the way down still reflects a commit newer than the snapshot. Only a
  // fresh stamp can make progress.
  if (!Covered)
    return SnapshotResolve::Refresh;
  if (Found)
    return SnapshotResolve::Hit;
  // Every commit above the snapshot left this field alone; the in-place
  // value is the snapshot value — once no writer is mid-flight on it.
  return isOwned(W) ? SnapshotResolve::Wait : SnapshotResolve::InPlace;
}

void TxManager::snapshotWait(TxObject *Obj) {
  ++Stats.SnapshotWaits;
  unsigned Spin = 0;
  while (isOwned(Obj->Word.load(std::memory_order_acquire))) {
    if (++Spin % 64 == 0)
      std::this_thread::yield();
    else
      cpuRelax();
  }
}

void TxManager::upgradeToWriter() {
  ++Stats.SnapshotUpgrades;
  ForceWriter = true; // every further attempt of this transaction is a writer
  abortAndThrow(AbortTx::Cause::SnapshotUpgrade);
}

void TxManager::refreshSnapshot() {
  ++Stats.SnapshotRefreshes;
  abortAndThrow(AbortTx::Cause::SnapshotRefresh);
}

void TxObject::releaseHistory() noexcept {
  // Runs from the destructor: any reader that could have reached this chain
  // head was waited out by the epoch grace period that preceded the delete
  // (shared objects die via retireOnCommit), so the nodes are unreachable
  // and freed directly. Records may still be referenced by *other* objects'
  // chains and readers thereof — drop our reference and epoch-retire on
  // zero.
  mv::MvNode *Node = Hist.load(std::memory_order_relaxed);
  Hist.store(nullptr, std::memory_order_relaxed);
  while (Node) {
    mv::MvNode *Older = Node->Older.load(std::memory_order_relaxed);
    if (Node->Rec->ChainRefs.fetch_sub(1, std::memory_order_acq_rel) == 1)
      gc::EpochManager::global().retire(Node->Rec, freePoolBlock);
    support::TxPool::deallocate(Node);
    Node = Older;
  }
}

#endif // OTM_MVCC

void TxManager::flushStats() {
  GlobalTxStats::instance().add(Stats);
  Stats.reset();
}

std::pair<std::size_t, std::size_t> TxManager::compactLogsForGc() {
  assert(inTx() && "compactLogsForGc outside a transaction");
  // Deduplicate the read log by object, keeping the first enlistment (if a
  // later duplicate saw a different word the transaction is doomed anyway
  // and validation will catch it).
  HashFilter Seen;
  std::size_t ReadsRemoved = ReadLog.removeIf([&](const ReadEntry &Entry) {
    return !Seen.insert(reinterpret_cast<uintptr_t>(Entry.Obj));
  });
  // Deduplicate the undo log by address, keeping the first (oldest) value:
  // replaying it restores the pre-transaction state.
  Seen.clear();
  std::size_t UndosRemoved = UndoLog.removeIf([&](const UndoEntry &Entry) {
    return !Seen.insert(reinterpret_cast<uintptr_t>(Entry.Addr));
  });
  return {ReadsRemoved, UndosRemoved};
}

#if OTM_OBS_ENABLE
namespace {

/// Registers the stm-side telemetry sources during static initialization.
/// obs cannot depend on stm, so the conversion from GlobalTxStats/CmStats
/// into JsonValue trees lives here; the sampler only sees named callbacks.
/// All sources read process-lifetime aggregates with relaxed snapshots, so
/// they are safe from the sampler thread at any point in the run.
struct StmTelemetrySources {
  StmTelemetrySources() {
    using obs::JsonValue;
    obs::Telemetry &T = obs::Telemetry::instance();
    T.registerSource("stm", [] {
      TxStats S = GlobalTxStats::instance().snapshot();
      JsonValue V = JsonValue::object();
      S.forEachCounter(
          [&](const char *Name, uint64_t Value) { V.set(Name, Value); });
      // Doubles are reported in totals only; the delta pass skips them
      // (quantiles of a cumulative histogram are not a rate).
      JsonValue Commit = JsonValue::object();
      Commit.set("count", S.CommitTscCycles.count());
      Commit.set("p50_cycles", S.CommitTscCycles.percentile(50.0));
      Commit.set("p99_cycles", S.CommitTscCycles.percentile(99.0));
      Commit.set("p999_cycles", S.CommitTscCycles.percentile(99.9));
      V.set("commit_latency", std::move(Commit));
      return V;
    });
    T.registerSource("txn_cm", [] {
      return txn::cmStatsToJson(txn::CmStats::instance().snapshot());
    });
    T.registerSource("abort_sites", [] {
      const obs::AbortSites &A = obs::AbortSites::instance();
      JsonValue V = JsonValue::object();
      V.set("dropped", A.dropped());
      V.set("edges_dropped", A.edgesDropped());
      V.set("sites_used", static_cast<uint64_t>(A.siteOccupancy()));
      V.set("edges_used", static_cast<uint64_t>(A.edgeOccupancy()));
      return V;
    });
    T.registerSource("phases", [] {
      return phaseBreakdownToJson(GlobalTxStats::instance().snapshot());
    });
    T.registerSource("mvcc", [] {
      return mvccStatsToJson(GlobalTxStats::instance().snapshot());
    });
    T.registerSource("boost", [] {
      return boostStatsToJson(GlobalTxStats::instance().snapshot());
    });
    T.registerSource("htm", [] {
      return htmStatsToJson(GlobalTxStats::instance().snapshot(),
                            txn::CmStats::instance().snapshot());
    });
  }
} RegisterStmSources;

} // namespace
#endif // OTM_OBS_ENABLE
