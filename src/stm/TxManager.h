//===- stm/TxManager.h - Decomposed direct-access STM interface -*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TxManager is the per-thread transaction manager and exposes the paper's
/// *decomposed direct-access* STM interface:
///
/// \code
///   TxManager &Tx = TxManager::current();   // GetTxManager()
///   Tx.begin();                             // TxStart
///   Tx.openForRead(Obj);                    // OpenForRead
///   Tx.openForUpdate(Obj);                  // OpenForUpdate
///   Tx.logUndo(&Obj->F);                    // LogForUndo
///   Obj->F.store(V);                        // direct in-place store
///   Tx.tryCommit();                         // TxCommit
/// \endcode
///
/// Reads are optimistic and invisible (the seen STM word is logged and
/// validated at commit); updates take eager ownership of the object by
/// CASing its STM word to point at the transaction's update-log entry, and
/// stores happen in place with old values recorded in an undo log. This is
/// exactly the design whose barrier costs the paper's compiler
/// optimizations attack: because opens and undo-logs are idempotent,
/// explicit operations, the compiler (src/passes) removes redundant ones
/// and the runtime hash filters (stm/HashFilter.h) catch the rest.
///
/// The combined read()/write() helpers are what *naive* lowering emits (one
/// open per access); optimized code calls the decomposed operations
/// directly and elides the duplicates.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_TXMANAGER_H
#define OTM_STM_TXMANAGER_H

#include "gc/EpochManager.h"
#include "obs/PhaseProfile.h"
#include "obs/TxObs.h"
#include "stm/Field.h"
#include "stm/HashFilter.h"
#include "stm/LogEntries.h"
#include "stm/Mvcc.h"
#include "stm/StmWord.h"
#include "stm/TxConfig.h"
#include "stm/TxObject.h"
#include "stm/TxStats.h"
#include "support/Backoff.h"
#include "support/ChunkedVector.h"
#include "support/Compiler.h"
#include "support/TxPool.h"
#include "txn/AbstractLockTable.h"
#include "txn/ContentionManager.h"
#include "txn/Htm.h"

#include <cassert>
#include <cstdint>
#include <type_traits>
#include <utility>

namespace otm {
namespace stm {

/// Thrown (internally) when a transaction must abort and restart: ownership
/// conflict, failed revalidation, or an explicit user abort. Caught by
/// Stm::atomic's retry loop; user code should not catch it.
///
/// The two Snapshot* causes are restarts of the MVCC read-only path, not
/// aborts: SnapshotUpgrade re-runs a read-only attempt as a writer after it
/// hit an update barrier, SnapshotRefresh re-runs it on a fresh snapshot
/// stamp after its begin stamp fell off a version chain. Neither undoes
/// any in-place state (snapshot attempts have none) and neither counts as
/// an abort in the statistics.
struct AbortTx {
  enum class Cause { Conflict, Validation, User, SnapshotUpgrade,
                     SnapshotRefresh };
  Cause Why = Cause::Conflict;
};

class TxManager;

namespace detail {
/// The calling thread's manager, or nullptr before its first transaction.
/// constinit guarantees constant initialization, so cross-TU accesses
/// compile to a direct TLS load with no init-wrapper call — this sits on
/// the entry path of every top-level transaction.
extern constinit thread_local TxManager *CurrentTxPtr;
} // namespace detail

class TxManager {
public:
  /// Returns the calling thread's transaction manager (the paper's
  /// GetTxManager operation; creation is lazy and thread-local).
  static TxManager &current() {
    TxManager *Tx = detail::CurrentTxPtr;
    if (OTM_UNLIKELY(!Tx))
      return currentSlow();
    return *Tx;
  }

  /// Process-wide configuration; sampled at begin() of each transaction.
  /// Inline: the retry layer reads the policy knobs once or twice per
  /// transaction, and an out-of-line call costs more than the access.
  static TxConfig &config() {
    static TxConfig Config;
    return Config;
  }

  TxManager(const TxManager &) = delete;
  TxManager &operator=(const TxManager &) = delete;

  //===--------------------------------------------------------------------===
  // Lifecycle
  //===--------------------------------------------------------------------===

  /// Starts a transaction. Nested calls are flattened (subsumption): only
  /// the outermost begin/commit pair does real work.
  void begin() {
    if (Depth++ != 0) {
      ++Stats.SubsumedTx; // flattened nested transaction
      return;
    }
    ActiveConfig = config();
    FilterReadsOn = ActiveConfig.FilterReads;
    FilterUndoOn = ActiveConfig.FilterUndo;
    assert(ReadLog.empty() && UpdateLog.empty() && UndoLog.empty() &&
           AllocLog.empty() && "logs leaked from a previous attempt");
#if OTM_BOOST
    assert(boostStateEmpty() && "boost state leaked from a previous attempt");
#endif
    EPin.pin(); // nested under RetryController's pre-pin on executor paths
#if OTM_MVCC
    // The retry layer may have pre-computed the attempt mode (so its gate
    // bypass and our path agree even if config() races); manual drivers
    // compute it here.
    SnapshotMode = ArmedModeValid ? ArmedSnapshot : wantsSnapshot();
    ArmedModeValid = false;
    if (OTM_UNLIKELY(SnapshotMode))
      SnapshotStamp = mv::commitClock().load(std::memory_order_acquire);
#endif
    ++Stats.Starts;
    Obs.onBegin(0);
  }

  /// Attempts to commit the innermost begin(). For the outermost level,
  /// validates the read log and either publishes (returns true) or rolls
  /// back (returns false, caller must restart). Nested levels always
  /// succeed.
  bool tryCommit();

  /// Explicitly aborts the current transaction attempt: rolls back all
  /// in-place stores, releases ownership, frees transaction-local
  /// allocations, and throws AbortTx to unwind to the retry loop.
  [[noreturn]] void userAbort();

  /// True between an outermost begin() and its commit/abort.
  bool inTx() const { return Depth > 0; }
  unsigned nestingDepth() const { return Depth; }

  //===--------------------------------------------------------------------===
  // Decomposed barriers (the unit the compiler optimizes)
  //===--------------------------------------------------------------------===

  /// Enlists \p Obj for optimistic reading. Idempotent; a transaction that
  /// already owns the object for update skips logging entirely.
  void openForRead(TxObject *Obj) {
    assert(inTx() && "openForRead outside a transaction");
#if OTM_HTM
    // Hardware mode: the speculation hardware tracks the read set, so the
    // only job left is conflict detection against *software* owners — an
    // owned word means a writer is mid-flight with dirty in-place values.
    // Loading the word also subscribes it: a later software acquisition
    // aborts this region via coherence.
    if (OTM_UNLIKELY(HtmMode)) {
      ++Stats.OpensForRead;
      if (OTM_UNLIKELY(isOwned(Obj->Word.load(std::memory_order_acquire))))
        txn::htm::abortWith<txn::htm::CodeLocked>();
      return;
    }
#endif
#if OTM_MVCC
    // Decomposed opens hand out raw in-place access, which a snapshot
    // cannot honor; only the combined read()/snapshotLoad() barriers are
    // snapshot-safe. Restart as a writer (same rule as openForUpdate).
    if (OTM_UNLIKELY(SnapshotMode))
      upgradeToWriter();
#endif
    ++Stats.OpensForRead;
    OTM_TRACE_OPEN_EVENT(Obs.Ring, obs::EventKind::OpenForRead, Obj, 0);
    OTM_PHASE_OPEN_SCOPE(Obs.Sampling, Stats.PhaseOpenCycles);
    WordValue W = Obj->Word.load(std::memory_order_acquire);
    if (OTM_UNLIKELY(isOwned(W))) {
      if (ownerEntry(W)->owner() == this)
        return; // we own it: reads are trivially consistent
      W = waitForUnowned(Obj);
    }
    if (FilterReadsOn &&
        !ReadFilter.insert(reinterpret_cast<uintptr_t>(Obj))) {
      ++Stats.ReadsFiltered;
      return;
    }
    ReadLog.emplaceBack(Obj, W);
    ++Stats.ReadLogAppends;
  }

  /// Acquires exclusive update ownership of \p Obj (eager two-phase
  /// locking). Idempotent. On conflict with another owner, spins briefly
  /// and then aborts this transaction.
  void openForUpdate(TxObject *Obj) {
    assert(inTx() && "openForUpdate outside a transaction");
#if OTM_HTM
    // Hardware mode: no ownership CAS, no update log. Publishing the new
    // version stamp *speculatively* is what keeps software validation
    // exact — if this region commits, every concurrent software read of
    // the object sees a moved word and fails its equality check; if it
    // aborts, the store was never visible. Re-opens just restamp (same
    // clock stamp under MVCC, another per-object bump otherwise — only
    // equality matters to validators in that mode).
    if (OTM_UNLIKELY(HtmMode)) {
      ++Stats.OpensForUpdate;
      WordValue W = Obj->Word.load(std::memory_order_acquire);
      if (OTM_UNLIKELY(isOwned(W)))
        txn::htm::abortWith<txn::htm::CodeLocked>();
      Obj->Word.store(makeVersion(htmStamp(W)), std::memory_order_relaxed);
      return;
    }
#endif
#if OTM_MVCC
    // Dynamic read-only detection: the first update barrier restarts the
    // attempt as a writer (the paper's upgrade rule lifted to tx level).
    if (OTM_UNLIKELY(SnapshotMode))
      upgradeToWriter();
#endif
    ++Stats.OpensForUpdate;
    OTM_TRACE_OPEN_EVENT(Obs.Ring, obs::EventKind::OpenForUpdate, Obj, 0);
    OTM_PHASE_OPEN_SCOPE(Obs.Sampling, Stats.PhaseOpenCycles);
    WordValue W = Obj->Word.load(std::memory_order_acquire);
    for (;;) {
      if (OTM_UNLIKELY(isOwned(W))) {
        if (ownerEntry(W)->owner() == this)
          return; // already ours
        W = waitForUnowned(Obj);
        continue;
      }
      UpdateEntry *Entry = UpdateLog.emplaceBack(Obj, W, this);
      if (Obj->Word.compare_exchange_strong(W, makeOwned(Entry),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire))
        return;
      UpdateLog.popBack(); // lost the race; W holds the fresh word
    }
  }

  /// Records the old value of \p F so an abort can restore it. Must be
  /// called before the in-place store, on an object this transaction has
  /// opened for update. Filtered dynamically unless disabled.
  template <typename T> void logUndo(Field<T> *F) {
    assert(inTx() && "logUndo outside a transaction");
#if OTM_HTM
    if (OTM_UNLIKELY(HtmMode))
      return; // the hardware rolls every speculative store back itself
#endif
    if (FilterUndoOn && !UndoFilter.insert(reinterpret_cast<uintptr_t>(F))) {
      ++Stats.UndosFiltered;
      return;
    }
    UndoLog.emplaceBack(F, F->bitsForUndo(), &restoreField<T>);
    ++Stats.UndoLogAppends;
  }

  /// Allocates a transaction-local object. If the transaction aborts the
  /// object is destroyed; opens and undo logging on it are unnecessary
  /// (the compiler's alloc-elision pass exploits exactly this). The `new`
  /// lands in the per-thread transaction pool (TxObject::operator new), so
  /// abort-heavy churn recycles blocks O(1) once the epoch reclaimer
  /// returns them.
  template <typename T, typename... ArgTypes> T *allocInTx(ArgTypes &&...Args) {
    T *Obj = new T(std::forward<ArgTypes>(Args)...);
    recordAlloc(Obj);
    return Obj;
  }

  /// Registers an externally allocated object as transaction-local.
  template <typename T> void recordAlloc(T *Obj) {
    assert(inTx() && "recordAlloc outside a transaction");
#if OTM_HTM
    // Registering a destructor for the abort path cannot work when the
    // abort path is a hardware rollback; escalate to the software tier
    // (which also unwinds the speculative TxPool bump of the allocation).
    if (OTM_UNLIKELY(HtmMode))
      txn::htm::abortWith<txn::htm::CodeUnsupported>();
#endif
#if OTM_MVCC
    if (OTM_UNLIKELY(SnapshotMode))
      upgradeToWriter(); // allocation is a side effect: not read-only
#endif
    AllocLog.emplaceBack(static_cast<TxObject *>(Obj),
                         static_cast<void *>(Obj),
                         +[](void *P) { delete static_cast<T *>(P); },
                         /*FreeOnCommit=*/false);
    ++Stats.Allocations;
  }

  /// Logically deletes \p Obj: it is retired to the epoch reclaimer when
  /// the transaction commits, and kept alive if it aborts. The caller must
  /// have opened \p Obj for update (so no concurrent committer holds it).
  template <typename T> void retireOnCommit(T *Obj) {
    assert(inTx() && "retireOnCommit outside a transaction");
#if OTM_HTM
    if (OTM_UNLIKELY(HtmMode)) // epoch retirement is a commit side effect
      txn::htm::abortWith<txn::htm::CodeUnsupported>();
#endif
#if OTM_MVCC
    if (OTM_UNLIKELY(SnapshotMode))
      upgradeToWriter(); // deletion is a side effect: not read-only
#endif
    AllocLog.emplaceBack(static_cast<TxObject *>(Obj),
                         static_cast<void *>(Obj),
                         +[](void *P) { delete static_cast<T *>(P); },
                         /*FreeOnCommit=*/true);
    ++Stats.Retires;
  }

  //===--------------------------------------------------------------------===
  // Combined barriers (what naive lowering emits, one open per access)
  //===--------------------------------------------------------------------===

  template <typename ObjType, typename T>
  T read(ObjType *Obj, Field<T> ObjType::*Member) {
#if OTM_MVCC
    if (OTM_UNLIKELY(SnapshotMode))
      return snapshotLoad(static_cast<TxObject *>(Obj), &(Obj->*Member));
#endif
    openForRead(Obj);
    return (Obj->*Member).load();
  }

  template <typename ObjType, typename T>
  void write(ObjType *Obj, Field<T> ObjType::*Member, T Value) {
    openForUpdate(Obj);
    logUndo(&(Obj->*Member));
    (Obj->*Member).store(Value);
  }

  //===--------------------------------------------------------------------===
  // Snapshot (MVCC) read path — see DESIGN.md §3.9
  //===--------------------------------------------------------------------===

  /// True when the MVCC tier is compiled in (-DOTM_MVCC, default on).
  static constexpr bool mvccEnabled() { return OTM_MVCC != 0; }

  /// Declares the *next* top-level transaction of this manager read-only
  /// (Stm::atomicReadOnly sets it). Cleared when that transaction commits
  /// or finally aborts. No-op when the MVCC tier is compiled out.
  void setReadOnlyHint(bool On) {
#if OTM_MVCC
    ReadOnlyHint = On;
#else
    (void)On;
#endif
  }

  /// True while the current attempt runs on the snapshot path.
  bool inSnapshotMode() const {
#if OTM_MVCC
    return Depth > 0 && SnapshotMode;
#else
    return false;
#endif
  }

  uint64_t snapshotStampForTesting() const {
#if OTM_MVCC
    return SnapshotStamp;
#else
    return 0;
#endif
  }

  /// Decides and caches the mode of the next attempt. The retry layer calls
  /// this *before* entering the serial gate so that a snapshot attempt can
  /// bypass the gate and begin() is guaranteed to agree with that decision
  /// (config() could change between the two otherwise). Returns true when
  /// the attempt will run as a zero-conflict snapshot reader.
  bool armAttemptMode() {
#if OTM_MVCC
    ArmedSnapshot = wantsSnapshot();
    ArmedModeValid = true;
    return ArmedSnapshot;
#else
    return false;
#endif
  }

  /// Snapshot-consistent field read: the in-place value when the object's
  /// version is at or below the begin stamp (seqlock-checked), otherwise
  /// the pre-image reconstructed from the object's version chain. Never
  /// enlists anything; never aborts (it can *restart* the attempt on a
  /// truncated chain). Outside snapshot mode degrades to a plain combined
  /// read barrier.
  template <typename T> T snapshotLoad(TxObject *Obj, Field<T> *F) {
#if OTM_MVCC
    if (!SnapshotMode) {
      openForRead(Obj);
      return F->load();
    }
    assert(inTx() && "snapshotLoad outside a transaction");
    ++Stats.SnapshotReads;
    const uint64_t T0 = SnapshotStamp;
    unsigned Retries = 0;
    for (;;) {
      WordValue W = Obj->Word.load(std::memory_order_acquire);
      if (OTM_LIKELY(!isOwned(W) && versionOf(W) <= T0)) {
        // Fast path: the committed in-place value is old enough. The word
        // recheck behind an acquire fence makes the two loads a seqlock:
        // any concurrent commit would have changed the word.
        T V = F->load();
        std::atomic_thread_fence(std::memory_order_acquire);
        if (OTM_LIKELY(Obj->Word.load(std::memory_order_relaxed) == W))
          return V;
      } else {
        uint64_t Bits = 0;
        switch (snapshotResolve(Obj, F, W, Bits)) {
        case SnapshotResolve::Hit:
          ++Stats.SnapshotReadsFromChain;
          return fieldFromBits<T>(Bits);
        case SnapshotResolve::InPlace: {
          // Chain walk proved no commit above T0 touched this field; the
          // in-place value stands if the word has not moved meanwhile.
          T V = F->load();
          std::atomic_thread_fence(std::memory_order_acquire);
          if (Obj->Word.load(std::memory_order_relaxed) == W)
            return V;
          break; // a commit landed mid-walk: retry from the word
        }
        case SnapshotResolve::Wait:
          // An in-flight writer holds the only copy of the value we need
          // (its pre-images are not published until it commits or rolls
          // back). Waiting is progress, so it does not charge the retry
          // budget; writer progress is guaranteed by the CM/serial gate.
          snapshotWait(Obj);
          continue;
        case SnapshotResolve::Refresh:
          refreshSnapshot(); // [[noreturn]]: restart on a fresh stamp
        }
      }
      if (OTM_UNLIKELY(++Retries > 64))
        refreshSnapshot(); // word churn outran T0; a fresh stamp catches up
      cpuRelax();
    }
#else
    openForRead(Obj);
    return F->load();
#endif
  }

  //===--------------------------------------------------------------------===
  // Deferred actions & abstract locks (transactional boosting, §3.10)
  //===--------------------------------------------------------------------===

  /// True when the boosting tier is compiled in (-DOTM_BOOST, default on).
  static constexpr bool boostEnabled() { return OTM_BOOST != 0; }

#if OTM_BOOST
  /// Defers \p Fn to run iff the outermost transaction commits, after
  /// write-back and ownership release but *before* the abstract locks are
  /// dropped. Handlers run in registration (FIFO) order. They must not
  /// throw and must not start transactions or register further deferred
  /// actions (node destruction from inside a handler is routed through
  /// runningDeferredActions() instead).
  template <typename FnType> void onCommit(FnType &&Fn) {
    deferAction(CommitActions, std::forward<FnType>(Fn));
  }

  /// Defers \p Fn to run iff the outermost transaction aborts. Handlers run
  /// in reverse registration (LIFO) order — the semantic undo discipline —
  /// after the in-place undo replay and STM-word release, and before the
  /// abstract locks are dropped, so an inverse always executes while the
  /// keys it touches are still exclusively this transaction's.
  template <typename FnType> void onAbort(FnType &&Fn) {
    deferAction(AbortActions, std::forward<FnType>(Fn));
  }

  /// Acquires the abstract lock for (\p ContainerId, \p Key), waiting or
  /// aborting under the configured contention manager exactly as a
  /// structural ownership conflict would. Idempotent for locks this
  /// transaction already holds; released automatically at commit/abort.
  void boostAcquireKey(uint64_t ContainerId, uint64_t Key);

  /// Acquires \p ContainerId's whole-container gate (structural fallback):
  /// claims the gate, then drains concurrently held abstract key locks.
  /// The drain is bounded by the conflict-spin budget; exceeding it aborts
  /// this transaction (no single owner exists to arbitrate against).
  void boostAcquireStructural(uint64_t ContainerId);

  /// True while commit/abort deferred actions are executing. Semantic
  /// inverse helpers use it to destroy nodes immediately instead of
  /// registering further deferred deletes into the log being walked.
  bool runningDeferredActions() const { return RunningDeferred; }

  std::size_t boostLockCountForTesting() const { return BoostLocks.size(); }
  std::size_t deferredCommitCountForTesting() const {
    return CommitActions.size();
  }
  std::size_t deferredAbortCountForTesting() const {
    return AbortActions.size();
  }
#endif

  //===--------------------------------------------------------------------===
  // Hardware (RTM) execution mode — see DESIGN.md §3.12
  //===--------------------------------------------------------------------===

  /// True when the hardware tier is compiled in (-DOTM_HTM, default on for
  /// x86-64 non-TSan builds).
  static constexpr bool htmEnabled() { return OTM_HTM != 0; }

  /// True while the current attempt runs inside a hardware transaction.
  bool inHtmMode() const {
#if OTM_HTM
    return HtmMode;
#else
    return false;
#endif
  }

#if OTM_HTM
  /// Whether the *next* top-level attempt may try the hardware tier.
  /// Snapshot-bound transactions stay on the MVCC path: it already commits
  /// read-only work without validation or aborts, and a hardware attempt
  /// would only add a way to lose to writers.
  bool htmEligible() const {
#if OTM_MVCC
    if (wantsSnapshot())
      return false;
#endif
    return true;
  }

  /// Pre-xbegin prologue: counts the attempt and pins the epoch. The pin
  /// must happen *outside* the speculative region — a speculative store to
  /// the pin slot is invisible to reclaimers until commit, which is
  /// exactly when the protection is too late.
  void htmPrepare() {
    ++Stats.HtmAttempts;
    EPin.pin();
  }
  /// Post-attempt epilogue (any outcome): drops htmPrepare's pin.
  void htmUnpin() { EPin.unpin(); }

  /// Inside-the-region begin: runs after a successful xbegin. Every store
  /// here is speculative, so an abort rewinds the mode flags and counters
  /// by itself — htmAbortReset() below is defensive, not load-bearing.
  void htmEnter() {
    Depth = 1; // nested atomics flatten off inTx(), same as software
    HtmMode = true;
#if OTM_MVCC
    HtmStamped = false;
#endif
    ++Stats.Starts;
    Obs.onBegin(0);
  }

  /// Inside-the-region commit: runs right before xend, so the counter
  /// bumps publish atomically with the data — HtmCommits is commit-exact.
  void htmCommit() {
    ++Stats.Commits;
    ++Stats.HtmCommits;
#if OTM_MVCC
    ReadOnlyHint = false;
#endif
    Obs.onCommit(0, Stats.CommitTscCycles, Stats.RetriesPerCommit);
    HtmMode = false;
    Depth = 0;
  }

  /// Post-abort cleanup. The hardware already restored HtmMode/Depth (they
  /// were set speculatively); clearing again is free and keeps the manager
  /// obviously consistent even if an abort path changes someday.
  void htmAbortReset() {
    HtmMode = false;
    Depth = 0;
  }

  /// Accounting for a userAbort() that fired inside a hardware region: the
  /// rollback erased the speculative Starts bump, so restore the exact
  /// counter shape a software user abort leaves behind.
  void htmNoteUserAbort() {
    ++Stats.Starts;
    ++Stats.AbortsByUser;
    ++Stats.Aborts;
#if OTM_MVCC
    ForceWriter = false;
    ReadOnlyHint = false;
#endif
    Obs.onAbort(obs::AuxCauseUser, 0);
  }
#endif // OTM_HTM

  //===--------------------------------------------------------------------===
  // Validation
  //===--------------------------------------------------------------------===

  /// Re-checks the read log. Direct-update STM is not opaque: a doomed
  /// transaction can observe inconsistent state, so long-running loops call
  /// this periodically to bound zombie execution.
  bool validate();

  /// validate() or abort-and-restart.
  void validateOrAbort() {
    if (OTM_LIKELY(validate()))
      return;
    ++Stats.AbortsOnValidation;
    recordValidationFailureSite();
    abortAndThrow(AbortTx::Cause::Validation);
  }

  //===--------------------------------------------------------------------===
  // Statistics & introspection
  //===--------------------------------------------------------------------===

  TxStats &stats() { return Stats; }
  /// Adds this thread's counters into the process aggregate and zeroes them.
  void flushStats();

  /// This manager's process-unique transaction site id (abort attribution
  /// reports it as the owner of contended objects).
  uint32_t siteId() const { return Obs.SiteId; }

  /// Contention-management state of this manager's current transaction.
  /// Attackers read it cross-thread during conflict arbitration (karma
  /// priority, greedy arrival stamp); the retry layer resets it per
  /// transaction.
  txn::CmTxState &cmState() { return CmState; }

  std::size_t readLogSizeForTesting() const { return ReadLog.size(); }
  std::size_t updateLogSizeForTesting() const { return UpdateLog.size(); }
  std::size_t undoLogSizeForTesting() const { return UndoLog.size(); }

  /// Samples this attempt's footprint into \p S as Bloom fingerprints over
  /// *object addresses* (DESIGN.md §3.11): reads from the read filter when
  /// it is on (already deduplicated) or the read log otherwise; writes from
  /// the update-log objects — the undo filter keys on field addresses, a
  /// different keyspace, so it is deliberately not used. Call *before*
  /// rollbackAttempt()/tryCommit(): finishAttempt() clears the filters and
  /// logs. The scheduler replays this summary to admit the retry only when
  /// it is provably disjoint from in-flight work.
  void sampleSummary(txn::TxSummary &S) {
    S.clear();
    if (FilterReadsOn)
      ReadFilter.appendFingerprint(S.Reads);
    else
      ReadLog.forEach([&](ReadEntry &Entry) {
        S.Reads.insert(reinterpret_cast<uintptr_t>(Entry.Obj));
      });
    UpdateLog.forEach([&](UpdateEntry &Entry) {
      S.Writes.insert(reinterpret_cast<uintptr_t>(Entry.Obj));
    });
  }

  /// Rolls the current attempt back (undo, release, free allocations).
  /// Public so the retry loop can clean up after catching AbortTx thrown
  /// from arbitrary user-frame depth.
  void rollbackAttempt(AbortTx::Cause Why);

  /// GC log-compaction hook (paper's GC integration): deduplicates read and
  /// undo logs in place, as the collector does while logs are roots.
  /// Returns (readEntriesRemoved, undoEntriesRemoved).
  std::pair<std::size_t, std::size_t> compactLogsForGc();

  /// GC root enumeration (paper's GC integration): visits every object the
  /// current transaction has enlisted in its read, update or alloc logs.
  template <typename FnType> void forEachEnlistedObject(FnType Fn) {
    ReadLog.forEach([&](ReadEntry &Entry) { Fn(Entry.Obj); });
    UpdateLog.forEach([&](UpdateEntry &Entry) { Fn(Entry.Obj); });
    AllocLog.forEach([&](AllocEntry &Entry) { Fn(Entry.Obj); });
  }

private:
  TxManager() = default;
  friend class TxManagerTestPeer;

  /// Creates and registers this thread's manager (first use only).
  static TxManager &currentSlow();

  /// Spins while \p Obj is owned by another transaction; returns the
  /// unowned word, or aborts this transaction after the spin budget.
  WordValue waitForUnowned(TxObject *Obj);

  /// Attributes the first invalid read-log entry (called on the abort
  /// path, so scanning the log again is fine).
  void recordValidationFailureSite();

  [[noreturn]] void abortAndThrow(AbortTx::Cause Why);

  bool validateEntry(const ReadEntry &Entry) const;
  void releaseOwnershipForCommit(uint64_t CommitStamp);
  void releaseOwnershipForAbort();

#if OTM_MVCC
  /// Mode predicate for the next attempt: snapshot iff declared read-only,
  /// not already upgraded to a writer, and version chains are maintained.
  bool wantsSnapshot() const {
    const TxConfig &C = config();
    return (C.ReadOnly || ReadOnlyHint) && !ForceWriter && C.MvVersions > 0;
  }

  /// Restarts the attempt as a writer (first update barrier in snapshot
  /// mode) / on a fresh snapshot stamp (begin stamp no longer covered by a
  /// version chain). Both unwind via AbortTx; neither counts as an abort.
  [[noreturn]] void upgradeToWriter();
  [[noreturn]] void refreshSnapshot();

  /// Spins (with yields) while \p Obj is owned by an in-flight writer.
  /// Snapshot readers are invisible, so there is no CM arbitration and no
  /// abort — only patience.
  void snapshotWait(TxObject *Obj);

  enum class SnapshotResolve : uint8_t {
    Hit,     ///< pre-image found in the chain; Bits holds it
    InPlace, ///< no commit above the stamp touched the field; read in place
    Wait,    ///< an in-flight owner must release before the value exists
    Refresh, ///< chain truncated/unmaintained below the stamp: new stamp
  };

  /// Chain walk for one field of an object whose in-place value is too new
  /// (or owned). \p W is the word the caller just loaded.
  SnapshotResolve snapshotResolve(TxObject *Obj, const void *Addr,
                                  WordValue W, uint64_t &Bits) const;

  /// Commit-side chain maintenance: builds the shared pre-image record from
  /// the undo log, prepends one node per updated object, truncates each
  /// chain to ActiveConfig.MvVersions, and epoch-retires the cut tails.
  void installVersions(uint64_t CommitStamp);

  /// Snapshot-path commit: no validation, no write-back, no release walk.
  bool snapshotCommit();
#endif

#if OTM_BOOST
  /// Wraps \p Fn in a TxPool-allocated closure and appends it to \p Log.
  /// The snapshot upgrade happens before the allocation so an upgrade
  /// restart cannot leak the payload.
  template <typename LogType, typename FnType>
  void deferAction(LogType &Log, FnType &&Fn) {
    assert(inTx() && "deferred action outside a transaction");
#if OTM_HTM
    if (OTM_UNLIKELY(HtmMode)) // deferred handlers need the software logs
      txn::htm::abortWith<txn::htm::CodeUnsupported>();
#endif
#if OTM_MVCC
    if (OTM_UNLIKELY(SnapshotMode))
      upgradeToWriter(); // a deferred handler is a side effect
#endif
    using Closure = std::decay_t<FnType>;
    void *Payload = support::TxPool::allocate(sizeof(Closure));
    ::new (Payload) Closure(std::forward<FnType>(Fn));
    Log.emplaceBack(DeferredAction{
        +[](void *P) { (*static_cast<Closure *>(P))(); },
        +[](void *P) {
          static_cast<Closure *>(P)->~Closure();
          support::TxPool::deallocate(P);
        },
        Payload});
  }

  /// Commit epilogue: run commit handlers (FIFO), dispose abort handlers,
  /// release abstract locks. Rollback epilogue: run abort handlers (LIFO),
  /// dispose commit handlers, release abstract locks. Lock release is last
  /// in both so no concurrent transaction can acquire a key whose semantic
  /// state is still being settled.
  void commitBoostState();
  void abortBoostState();
  void releaseBoostLocks();

  bool boostStateEmpty() const {
    return CommitActions.empty() && AbortActions.empty() && BoostLocks.empty();
  }
#endif

#if OTM_HTM
  /// The version stamp a hardware transaction publishes into the STM words
  /// it writes. Under MVCC every stamp must come from the global commit
  /// clock (snapshot readers order by it), and the fetch_add happens
  /// *inside* the speculative region: the RMW joins the transaction, so if
  /// this region survives to commit, no other clock user intervened and
  /// the stamp is effectively commit-time — unique and monotone. The cost
  /// is that any concurrent clock bump (every software commit) aborts a
  /// speculating hardware writer; E12 prices that honestly. Without MVCC,
  /// version numbers only feed equality checks, so a per-object bump off
  /// the previous word suffices and touches no shared line.
  uint64_t htmStamp(WordValue PrevW) {
#if OTM_MVCC
    (void)PrevW;
    if (!HtmStamped) {
      HtmStampVal =
          1 + mv::commitClock().fetch_add(1, std::memory_order_acq_rel);
      HtmStamped = true;
    }
    return HtmStampVal;
#else
    return versionOf(PrevW) + 1;
#endif
  }
#endif

  template <typename T> static T fieldFromBits(uint64_t Bits) {
    T V;
    std::memcpy(&V, &Bits, sizeof(T));
    return V;
  }

  /// Per-attempt epilogue: reset logs and filters, unpin the epoch. All
  /// clears are pointer/generation resets, so this inlines into the commit
  /// and rollback paths without touching chunk storage.
  void finishAttempt() {
    ReadLog.clear();
    UpdateLog.clear();
    UndoLog.clear();
    AllocLog.clear();
    ReadFilter.clear();
    UndoFilter.clear();
    Depth = 0;
#if OTM_MVCC
    SnapshotMode = false;
#endif
    EPin.unpin();
  }

  template <typename T> static void restoreField(void *Addr, uint64_t Bits) {
    static_cast<Field<T> *>(Addr)->restoreFromBits(Bits);
  }

  unsigned Depth = 0;
  TxConfig ActiveConfig;
  bool FilterReadsOn = true;
  bool FilterUndoOn = true;
#if OTM_HTM
  bool HtmMode = false; ///< current attempt runs inside a hardware txn
#if OTM_MVCC
  bool HtmStamped = false;   ///< this hardware attempt drew its clock stamp
  uint64_t HtmStampVal = 0;  ///< ... and this is it
#endif
#endif
#if OTM_MVCC
  bool SnapshotMode = false;   ///< current attempt runs validate-free
  bool ForceWriter = false;    ///< upgraded: rerun attempts as a writer
  bool ReadOnlyHint = false;   ///< per-transaction Stm::atomicReadOnly flag
  bool ArmedSnapshot = false;  ///< mode pre-computed by armAttemptMode()
  bool ArmedModeValid = false;
  uint64_t SnapshotStamp = 0;  ///< commit-clock value at snapshot begin
#endif

  ChunkedVector<ReadEntry> ReadLog;
  ChunkedVector<UpdateEntry> UpdateLog;
  ChunkedVector<UndoEntry> UndoLog;
  ChunkedVector<AllocEntry> AllocLog;
  HashFilter ReadFilter;
  HashFilter UndoFilter;
#if OTM_BOOST
  ChunkedVector<DeferredAction> CommitActions;
  ChunkedVector<DeferredAction> AbortActions;
  ChunkedVector<txn::AbstractLockTable::LockRef> BoostLocks;
  bool RunningDeferred = false;
#endif

  TxStats Stats;
  obs::TxObs Obs;
  txn::CmTxState CmState;

  /// Cached per-thread pin handle: begin()/finishAttempt() pin and unpin
  /// once per attempt, so the inline handle keeps the epoch operations off
  /// the out-of-line + thread-local-lookup path.
  gc::EpochManager::ThreadPin EPin = gc::EpochManager::global().threadPin();
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_TXMANAGER_H
