//===- stm/TxManager.h - Decomposed direct-access STM interface -*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TxManager is the per-thread transaction manager and exposes the paper's
/// *decomposed direct-access* STM interface:
///
/// \code
///   TxManager &Tx = TxManager::current();   // GetTxManager()
///   Tx.begin();                             // TxStart
///   Tx.openForRead(Obj);                    // OpenForRead
///   Tx.openForUpdate(Obj);                  // OpenForUpdate
///   Tx.logUndo(&Obj->F);                    // LogForUndo
///   Obj->F.store(V);                        // direct in-place store
///   Tx.tryCommit();                         // TxCommit
/// \endcode
///
/// Reads are optimistic and invisible (the seen STM word is logged and
/// validated at commit); updates take eager ownership of the object by
/// CASing its STM word to point at the transaction's update-log entry, and
/// stores happen in place with old values recorded in an undo log. This is
/// exactly the design whose barrier costs the paper's compiler
/// optimizations attack: because opens and undo-logs are idempotent,
/// explicit operations, the compiler (src/passes) removes redundant ones
/// and the runtime hash filters (stm/HashFilter.h) catch the rest.
///
/// The combined read()/write() helpers are what *naive* lowering emits (one
/// open per access); optimized code calls the decomposed operations
/// directly and elides the duplicates.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_TXMANAGER_H
#define OTM_STM_TXMANAGER_H

#include "gc/EpochManager.h"
#include "obs/PhaseProfile.h"
#include "obs/TxObs.h"
#include "stm/Field.h"
#include "stm/HashFilter.h"
#include "stm/LogEntries.h"
#include "stm/StmWord.h"
#include "stm/TxConfig.h"
#include "stm/TxObject.h"
#include "stm/TxStats.h"
#include "support/Backoff.h"
#include "support/ChunkedVector.h"
#include "support/Compiler.h"
#include "txn/ContentionManager.h"

#include <cassert>
#include <cstdint>
#include <utility>

namespace otm {
namespace stm {

/// Thrown (internally) when a transaction must abort and restart: ownership
/// conflict, failed revalidation, or an explicit user abort. Caught by
/// Stm::atomic's retry loop; user code should not catch it.
struct AbortTx {
  enum class Cause { Conflict, Validation, User };
  Cause Why = Cause::Conflict;
};

class TxManager;

namespace detail {
/// The calling thread's manager, or nullptr before its first transaction.
/// constinit guarantees constant initialization, so cross-TU accesses
/// compile to a direct TLS load with no init-wrapper call — this sits on
/// the entry path of every top-level transaction.
extern constinit thread_local TxManager *CurrentTxPtr;
} // namespace detail

class TxManager {
public:
  /// Returns the calling thread's transaction manager (the paper's
  /// GetTxManager operation; creation is lazy and thread-local).
  static TxManager &current() {
    TxManager *Tx = detail::CurrentTxPtr;
    if (OTM_UNLIKELY(!Tx))
      return currentSlow();
    return *Tx;
  }

  /// Process-wide configuration; sampled at begin() of each transaction.
  /// Inline: the retry layer reads the policy knobs once or twice per
  /// transaction, and an out-of-line call costs more than the access.
  static TxConfig &config() {
    static TxConfig Config;
    return Config;
  }

  TxManager(const TxManager &) = delete;
  TxManager &operator=(const TxManager &) = delete;

  //===--------------------------------------------------------------------===
  // Lifecycle
  //===--------------------------------------------------------------------===

  /// Starts a transaction. Nested calls are flattened (subsumption): only
  /// the outermost begin/commit pair does real work.
  void begin() {
    if (Depth++ != 0) {
      ++Stats.SubsumedTx; // flattened nested transaction
      return;
    }
    ActiveConfig = config();
    FilterReadsOn = ActiveConfig.FilterReads;
    FilterUndoOn = ActiveConfig.FilterUndo;
    assert(ReadLog.empty() && UpdateLog.empty() && UndoLog.empty() &&
           AllocLog.empty() && "logs leaked from a previous attempt");
    EPin.pin(); // nested under RetryController's pre-pin on executor paths
    ++Stats.Starts;
    Obs.onBegin(0);
  }

  /// Attempts to commit the innermost begin(). For the outermost level,
  /// validates the read log and either publishes (returns true) or rolls
  /// back (returns false, caller must restart). Nested levels always
  /// succeed.
  bool tryCommit();

  /// Explicitly aborts the current transaction attempt: rolls back all
  /// in-place stores, releases ownership, frees transaction-local
  /// allocations, and throws AbortTx to unwind to the retry loop.
  [[noreturn]] void userAbort();

  /// True between an outermost begin() and its commit/abort.
  bool inTx() const { return Depth > 0; }
  unsigned nestingDepth() const { return Depth; }

  //===--------------------------------------------------------------------===
  // Decomposed barriers (the unit the compiler optimizes)
  //===--------------------------------------------------------------------===

  /// Enlists \p Obj for optimistic reading. Idempotent; a transaction that
  /// already owns the object for update skips logging entirely.
  void openForRead(TxObject *Obj) {
    assert(inTx() && "openForRead outside a transaction");
    ++Stats.OpensForRead;
    OTM_TRACE_OPEN_EVENT(Obs.Ring, obs::EventKind::OpenForRead, Obj, 0);
    OTM_PHASE_OPEN_SCOPE(Obs.Sampling, Stats.PhaseOpenCycles);
    WordValue W = Obj->Word.load(std::memory_order_acquire);
    if (OTM_UNLIKELY(isOwned(W))) {
      if (ownerEntry(W)->owner() == this)
        return; // we own it: reads are trivially consistent
      W = waitForUnowned(Obj);
    }
    if (FilterReadsOn &&
        !ReadFilter.insert(reinterpret_cast<uintptr_t>(Obj))) {
      ++Stats.ReadsFiltered;
      return;
    }
    ReadLog.emplaceBack(Obj, W);
    ++Stats.ReadLogAppends;
  }

  /// Acquires exclusive update ownership of \p Obj (eager two-phase
  /// locking). Idempotent. On conflict with another owner, spins briefly
  /// and then aborts this transaction.
  void openForUpdate(TxObject *Obj) {
    assert(inTx() && "openForUpdate outside a transaction");
    ++Stats.OpensForUpdate;
    OTM_TRACE_OPEN_EVENT(Obs.Ring, obs::EventKind::OpenForUpdate, Obj, 0);
    OTM_PHASE_OPEN_SCOPE(Obs.Sampling, Stats.PhaseOpenCycles);
    WordValue W = Obj->Word.load(std::memory_order_acquire);
    for (;;) {
      if (OTM_UNLIKELY(isOwned(W))) {
        if (ownerEntry(W)->owner() == this)
          return; // already ours
        W = waitForUnowned(Obj);
        continue;
      }
      UpdateEntry *Entry = UpdateLog.emplaceBack(Obj, W, this);
      if (Obj->Word.compare_exchange_strong(W, makeOwned(Entry),
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire))
        return;
      UpdateLog.popBack(); // lost the race; W holds the fresh word
    }
  }

  /// Records the old value of \p F so an abort can restore it. Must be
  /// called before the in-place store, on an object this transaction has
  /// opened for update. Filtered dynamically unless disabled.
  template <typename T> void logUndo(Field<T> *F) {
    assert(inTx() && "logUndo outside a transaction");
    if (FilterUndoOn && !UndoFilter.insert(reinterpret_cast<uintptr_t>(F))) {
      ++Stats.UndosFiltered;
      return;
    }
    UndoLog.emplaceBack(F, F->bitsForUndo(), &restoreField<T>);
    ++Stats.UndoLogAppends;
  }

  /// Allocates a transaction-local object. If the transaction aborts the
  /// object is destroyed; opens and undo logging on it are unnecessary
  /// (the compiler's alloc-elision pass exploits exactly this). The `new`
  /// lands in the per-thread transaction pool (TxObject::operator new), so
  /// abort-heavy churn recycles blocks O(1) once the epoch reclaimer
  /// returns them.
  template <typename T, typename... ArgTypes> T *allocInTx(ArgTypes &&...Args) {
    T *Obj = new T(std::forward<ArgTypes>(Args)...);
    recordAlloc(Obj);
    return Obj;
  }

  /// Registers an externally allocated object as transaction-local.
  template <typename T> void recordAlloc(T *Obj) {
    assert(inTx() && "recordAlloc outside a transaction");
    AllocLog.emplaceBack(static_cast<TxObject *>(Obj),
                         static_cast<void *>(Obj),
                         +[](void *P) { delete static_cast<T *>(P); },
                         /*FreeOnCommit=*/false);
    ++Stats.Allocations;
  }

  /// Logically deletes \p Obj: it is retired to the epoch reclaimer when
  /// the transaction commits, and kept alive if it aborts. The caller must
  /// have opened \p Obj for update (so no concurrent committer holds it).
  template <typename T> void retireOnCommit(T *Obj) {
    assert(inTx() && "retireOnCommit outside a transaction");
    AllocLog.emplaceBack(static_cast<TxObject *>(Obj),
                         static_cast<void *>(Obj),
                         +[](void *P) { delete static_cast<T *>(P); },
                         /*FreeOnCommit=*/true);
    ++Stats.Retires;
  }

  //===--------------------------------------------------------------------===
  // Combined barriers (what naive lowering emits, one open per access)
  //===--------------------------------------------------------------------===

  template <typename ObjType, typename T>
  T read(ObjType *Obj, Field<T> ObjType::*Member) {
    openForRead(Obj);
    return (Obj->*Member).load();
  }

  template <typename ObjType, typename T>
  void write(ObjType *Obj, Field<T> ObjType::*Member, T Value) {
    openForUpdate(Obj);
    logUndo(&(Obj->*Member));
    (Obj->*Member).store(Value);
  }

  //===--------------------------------------------------------------------===
  // Validation
  //===--------------------------------------------------------------------===

  /// Re-checks the read log. Direct-update STM is not opaque: a doomed
  /// transaction can observe inconsistent state, so long-running loops call
  /// this periodically to bound zombie execution.
  bool validate();

  /// validate() or abort-and-restart.
  void validateOrAbort() {
    if (OTM_LIKELY(validate()))
      return;
    ++Stats.AbortsOnValidation;
    recordValidationFailureSite();
    abortAndThrow(AbortTx::Cause::Validation);
  }

  //===--------------------------------------------------------------------===
  // Statistics & introspection
  //===--------------------------------------------------------------------===

  TxStats &stats() { return Stats; }
  /// Adds this thread's counters into the process aggregate and zeroes them.
  void flushStats();

  /// This manager's process-unique transaction site id (abort attribution
  /// reports it as the owner of contended objects).
  uint32_t siteId() const { return Obs.SiteId; }

  /// Contention-management state of this manager's current transaction.
  /// Attackers read it cross-thread during conflict arbitration (karma
  /// priority, greedy arrival stamp); the retry layer resets it per
  /// transaction.
  txn::CmTxState &cmState() { return CmState; }

  std::size_t readLogSizeForTesting() const { return ReadLog.size(); }
  std::size_t updateLogSizeForTesting() const { return UpdateLog.size(); }
  std::size_t undoLogSizeForTesting() const { return UndoLog.size(); }

  /// Rolls the current attempt back (undo, release, free allocations).
  /// Public so the retry loop can clean up after catching AbortTx thrown
  /// from arbitrary user-frame depth.
  void rollbackAttempt(AbortTx::Cause Why);

  /// GC log-compaction hook (paper's GC integration): deduplicates read and
  /// undo logs in place, as the collector does while logs are roots.
  /// Returns (readEntriesRemoved, undoEntriesRemoved).
  std::pair<std::size_t, std::size_t> compactLogsForGc();

  /// GC root enumeration (paper's GC integration): visits every object the
  /// current transaction has enlisted in its read, update or alloc logs.
  template <typename FnType> void forEachEnlistedObject(FnType Fn) {
    ReadLog.forEach([&](ReadEntry &Entry) { Fn(Entry.Obj); });
    UpdateLog.forEach([&](UpdateEntry &Entry) { Fn(Entry.Obj); });
    AllocLog.forEach([&](AllocEntry &Entry) { Fn(Entry.Obj); });
  }

private:
  TxManager() = default;
  friend class TxManagerTestPeer;

  /// Creates and registers this thread's manager (first use only).
  static TxManager &currentSlow();

  /// Spins while \p Obj is owned by another transaction; returns the
  /// unowned word, or aborts this transaction after the spin budget.
  WordValue waitForUnowned(TxObject *Obj);

  /// Attributes the first invalid read-log entry (called on the abort
  /// path, so scanning the log again is fine).
  void recordValidationFailureSite();

  [[noreturn]] void abortAndThrow(AbortTx::Cause Why);

  bool validateEntry(const ReadEntry &Entry) const;
  void releaseOwnershipForCommit();
  void releaseOwnershipForAbort();

  /// Per-attempt epilogue: reset logs and filters, unpin the epoch. All
  /// clears are pointer/generation resets, so this inlines into the commit
  /// and rollback paths without touching chunk storage.
  void finishAttempt() {
    ReadLog.clear();
    UpdateLog.clear();
    UndoLog.clear();
    AllocLog.clear();
    ReadFilter.clear();
    UndoFilter.clear();
    Depth = 0;
    EPin.unpin();
  }

  template <typename T> static void restoreField(void *Addr, uint64_t Bits) {
    static_cast<Field<T> *>(Addr)->restoreFromBits(Bits);
  }

  unsigned Depth = 0;
  TxConfig ActiveConfig;
  bool FilterReadsOn = true;
  bool FilterUndoOn = true;

  ChunkedVector<ReadEntry> ReadLog;
  ChunkedVector<UpdateEntry> UpdateLog;
  ChunkedVector<UndoEntry> UndoLog;
  ChunkedVector<AllocEntry> AllocLog;
  HashFilter ReadFilter;
  HashFilter UndoFilter;

  TxStats Stats;
  obs::TxObs Obs;
  txn::CmTxState CmState;

  /// Cached per-thread pin handle: begin()/finishAttempt() pin and unpin
  /// once per attempt, so the inline handle keeps the epoch operations off
  /// the out-of-line + thread-local-lookup path.
  gc::EpochManager::ThreadPin EPin = gc::EpochManager::global().threadPin();
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_TXMANAGER_H
