//===- stm/TxObject.h - Base class of transactional objects ----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TxObject is the base class of every object managed by the direct-update
/// STM. It contributes exactly one word of metadata — the STM word — which
/// is all the runtime needs for both optimistic read versioning and eager
/// update locking (see stm/StmWord.h for the encoding).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_TXOBJECT_H
#define OTM_STM_TXOBJECT_H

#include "stm/Mvcc.h"
#include "stm/StmWord.h"
#include "support/TxPool.h"

#include <atomic>
#include <cstddef>
#include <new>

namespace otm {
namespace stm {

class TxManager;

/// Base class for transactional objects (one STM word of overhead).
///
/// Heap allocation is routed through the per-thread transaction pool
/// (support/TxPool.h): every `new`/`delete` of a TxObject-derived type —
/// allocInTx, container node creation, retireOnCommit's deferred deleters —
/// recycles size-classed blocks in O(1) instead of round-tripping malloc.
/// Deletion through the epoch reclaimer may run on a foreign thread; the
/// pool's block headers route such frees back to the owning pool safely.
class TxObject {
public:
  TxObject() : Word(makeVersion(0)) {}
  TxObject(const TxObject &) = delete;
  TxObject &operator=(const TxObject &) = delete;
#if OTM_MVCC
  /// Version-chain teardown. By the time an object is destroyed (always
  /// after an epoch grace period when it was shared) no snapshot reader can
  /// reach its chain head anymore, so the nodes are freed directly; shared
  /// records are epoch-retired when their last reference drops.
  ~TxObject() {
    if (Hist.load(std::memory_order_relaxed))
      releaseHistory();
  }
#endif

  static void *operator new(std::size_t Size) {
    return support::TxPool::allocate(Size);
  }
  static void operator delete(void *P) noexcept {
    if (P)
      support::TxPool::deallocate(P);
  }
  static void operator delete(void *P, std::size_t) noexcept {
    if (P)
      support::TxPool::deallocate(P);
  }
  /// Over-aligned derived types bypass the pool (its blocks are 16-aligned).
  static void *operator new(std::size_t Size, std::align_val_t Align) {
    return ::operator new(Size, Align);
  }
  static void operator delete(void *P, std::align_val_t Align) noexcept {
    ::operator delete(P, Align);
  }
  /// Class-scope operator new hides the global placement forms; restore them.
  static void *operator new(std::size_t, void *Place) noexcept { return Place; }
  static void operator delete(void *, void *) noexcept {}
  /// Arrays of transactional objects are rare; keep them off the pool.
  static void *operator new[](std::size_t Size) { return ::operator new(Size); }
  static void operator delete[](void *P) noexcept { ::operator delete(P); }

  /// Current version; asserts the object is not open for update. Intended
  /// for tests and statistics, not for synchronization decisions.
  uint64_t versionForTesting() const {
    return versionOf(Word.load(std::memory_order_acquire));
  }

  /// True if some transaction currently owns this object for update.
  bool isOpenForUpdate() const {
    return isOwned(Word.load(std::memory_order_acquire));
  }

  /// Length of this object's version chain (0 when the MVCC tier is
  /// compiled out or no versioned commit has touched the object yet).
  /// Testing only: racy against concurrent committers.
  std::size_t historyDepthForTesting() const {
#if OTM_MVCC
    std::size_t N = 0;
    for (const mv::MvNode *Node = Hist.load(std::memory_order_acquire); Node;
         Node = Node->Older.load(std::memory_order_acquire))
      ++N;
    return N;
#else
    return 0;
#endif
  }

private:
  friend class TxManager;
  std::atomic<WordValue> Word;
#if OTM_MVCC
  /// Head of the committed-version chain (newest first). Mutated only by
  /// the transaction holding update ownership of this object; read
  /// concurrently by snapshot readers.
  std::atomic<mv::MvNode *> Hist{nullptr};

  /// Out of line (TxManager.cpp): frees the chain at destruction.
  void releaseHistory() noexcept;
#endif
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_TXOBJECT_H
