//===- stm/TxObject.h - Base class of transactional objects ----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// TxObject is the base class of every object managed by the direct-update
/// STM. It contributes exactly one word of metadata — the STM word — which
/// is all the runtime needs for both optimistic read versioning and eager
/// update locking (see stm/StmWord.h for the encoding).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_TXOBJECT_H
#define OTM_STM_TXOBJECT_H

#include "stm/StmWord.h"

#include <atomic>

namespace otm {
namespace stm {

class TxManager;

/// Base class for transactional objects (one STM word of overhead).
class TxObject {
public:
  TxObject() : Word(makeVersion(0)) {}
  TxObject(const TxObject &) = delete;
  TxObject &operator=(const TxObject &) = delete;

  /// Current version; asserts the object is not open for update. Intended
  /// for tests and statistics, not for synchronization decisions.
  uint64_t versionForTesting() const {
    return versionOf(Word.load(std::memory_order_acquire));
  }

  /// True if some transaction currently owns this object for update.
  bool isOpenForUpdate() const {
    return isOwned(Word.load(std::memory_order_acquire));
  }

private:
  friend class TxManager;
  std::atomic<WordValue> Word;
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_TXOBJECT_H
