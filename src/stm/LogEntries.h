//===- stm/LogEntries.h - Per-transaction log entry types ------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entry types of the four per-transaction logs of the decomposed STM:
///
///   - read-object log: (object, STM word seen at OpenForRead), validated
///     at commit;
///   - update log: (object, previous version word, owner); the object's STM
///     word points at this entry while owned, so entries live in a
///     ChunkedVector and never move;
///   - undo log: (address, old bits, restore thunk), replayed backwards on
///     abort;
///   - alloc log: objects allocated inside the transaction, destroyed if it
///     aborts (and the basis of the compiler's alloc-elision optimization);
///     plus deferred frees that take effect only on commit.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_LOGENTRIES_H
#define OTM_STM_LOGENTRIES_H

#include "stm/StmWord.h"

#include <atomic>
#include <cstdint>

namespace otm {
namespace stm {

class TxManager;
class TxObject;

/// One optimistic read enlistment.
struct ReadEntry {
  TxObject *Obj = nullptr;
  WordValue Seen = 0;
};

/// One exclusive update enlistment. The owned object's STM word encodes a
/// tagged pointer to this entry.
///
/// Owner is read cross-thread: an attacker that loaded a stale STM word may
/// dereference this entry after the owner released it and its slot was
/// recycled by the owner's next transaction (slots live in a leaked
/// ChunkedVector precisely so the dereference stays mapped). The stale value
/// is benign — arbitration against the wrong manager just delays the abort —
/// but the access must be atomic to be defined; relaxed ordering keeps it an
/// ordinary load/store, mirroring Field<T>. Obj and PrevWord are only ever
/// read by the owning thread (validateEntry checks Owner == this first).
///
/// This is also why the type keeps an assignment operator: ChunkedVector
/// reuses previously-published slots *by assignment* (its reuse-by-assign
/// mode for trivially destructible types), so re-initializing Owner stays a
/// relaxed atomic store rather than a plain placement-new write that a
/// stale reader could race with. Fresh, never-published slots are
/// placement-new constructed, which is safe because their address has not
/// yet escaped this thread.
struct UpdateEntry {
  TxObject *Obj = nullptr;
  WordValue PrevWord = 0;
  std::atomic<TxManager *> Owner{nullptr};

  UpdateEntry() = default;
  UpdateEntry(TxObject *O, WordValue Prev, TxManager *Own)
      : Obj(O), PrevWord(Prev), Owner(Own) {}
  UpdateEntry(const UpdateEntry &E)
      : Obj(E.Obj), PrevWord(E.PrevWord), Owner(E.owner()) {}
  UpdateEntry &operator=(const UpdateEntry &E) {
    Obj = E.Obj;
    PrevWord = E.PrevWord;
    Owner.store(E.owner(), std::memory_order_relaxed);
    return *this;
  }

  TxManager *owner() const { return Owner.load(std::memory_order_relaxed); }
};

/// One overwritten location. Restore is a type-aware thunk so that undo
/// replay performs a correctly typed (relaxed atomic) store.
struct UndoEntry {
  void *Addr = nullptr;
  uint64_t Bits = 0;
  void (*Restore)(void *Addr, uint64_t Bits) = nullptr;
};

/// One object allocated inside the transaction (freed on abort), or — when
/// FreeOnCommit is true — an object the transaction logically deleted
/// (retired to the epoch reclaimer on commit, kept on abort). Raw is the
/// most-derived pointer matching Destroy's expectation.
struct AllocEntry {
  TxObject *Obj = nullptr;
  void *Raw = nullptr;
  void (*Destroy)(void *Raw) = nullptr;
  bool FreeOnCommit = false;
};

/// One deferred commit/abort handler of the boosting tier (DESIGN.md §3.10).
/// Payload is a TxPool-allocated closure; Invoke runs it, Dispose destroys
/// it and returns the block to the pool. Exactly one of the commit/abort
/// logs runs its entries; the other log only disposes them.
struct DeferredAction {
  void (*Invoke)(void *Payload) = nullptr;
  void (*Dispose)(void *Payload) = nullptr;
  void *Payload = nullptr;
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_LOGENTRIES_H
