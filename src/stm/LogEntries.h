//===- stm/LogEntries.h - Per-transaction log entry types ------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entry types of the four per-transaction logs of the decomposed STM:
///
///   - read-object log: (object, STM word seen at OpenForRead), validated
///     at commit;
///   - update log: (object, previous version word, owner); the object's STM
///     word points at this entry while owned, so entries live in a
///     ChunkedVector and never move;
///   - undo log: (address, old bits, restore thunk), replayed backwards on
///     abort;
///   - alloc log: objects allocated inside the transaction, destroyed if it
///     aborts (and the basis of the compiler's alloc-elision optimization);
///     plus deferred frees that take effect only on commit.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_LOGENTRIES_H
#define OTM_STM_LOGENTRIES_H

#include "stm/StmWord.h"

#include <cstdint>

namespace otm {
namespace stm {

class TxManager;
class TxObject;

/// One optimistic read enlistment.
struct ReadEntry {
  TxObject *Obj = nullptr;
  WordValue Seen = 0;
};

/// One exclusive update enlistment. The owned object's STM word encodes a
/// tagged pointer to this entry.
struct UpdateEntry {
  TxObject *Obj = nullptr;
  WordValue PrevWord = 0;
  TxManager *Owner = nullptr;
};

/// One overwritten location. Restore is a type-aware thunk so that undo
/// replay performs a correctly typed (relaxed atomic) store.
struct UndoEntry {
  void *Addr = nullptr;
  uint64_t Bits = 0;
  void (*Restore)(void *Addr, uint64_t Bits) = nullptr;
};

/// One object allocated inside the transaction (freed on abort), or — when
/// FreeOnCommit is true — an object the transaction logically deleted
/// (retired to the epoch reclaimer on commit, kept on abort). Raw is the
/// most-derived pointer matching Destroy's expectation.
struct AllocEntry {
  TxObject *Obj = nullptr;
  void *Raw = nullptr;
  void (*Destroy)(void *Raw) = nullptr;
  bool FreeOnCommit = false;
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_LOGENTRIES_H
