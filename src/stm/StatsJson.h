//===- stm/StatsJson.h - STM stats to JSON conversion ----------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts STM statistics blocks into obs::JsonValue trees for the
/// machine-readable BENCH_E*.json documents. Lives on the stm side of the
/// layering (obs knows nothing about TxStats); BenchUtil and the
/// experiment binaries are the consumers.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_STATSJSON_H
#define OTM_STM_STATSJSON_H

#include "obs/AbortSites.h"
#include "obs/Json.h"
#include "obs/PhaseProfile.h"
#include "stm/Mvcc.h"
#include "stm/TxStats.h"
#include "txn/AbstractLockTable.h"
#include "txn/CmStats.h"
#include "txn/Htm.h"

namespace otm {
namespace stm {

inline obs::JsonValue histogramToJson(const obs::Histogram &H) {
  obs::JsonValue V = obs::JsonValue::object();
  V.set("count", H.count());
  V.set("sum", H.sum());
  V.set("max", H.max());
  V.set("mean", H.mean());
  obs::JsonValue Buckets = obs::JsonValue::array();
  H.forEachBucket([&](uint64_t Lower, uint64_t N) {
    obs::JsonValue Pair = obs::JsonValue::array();
    Pair.push(Lower);
    Pair.push(N);
    Buckets.push(std::move(Pair));
  });
  V.set("buckets_pow2", std::move(Buckets));
  // Interpolated percentiles; exact only up to bucket resolution, but the
  // tail quantiles are what the latency studies read.
  V.set("p50", H.percentile(50.0));
  V.set("p99", H.percentile(99.0));
  V.set("p999", H.percentile(99.9));
  return V;
}

/// Per-phase {count, cycles, mean_cycles} breakdown of where transaction
/// time went (see obs/PhaseProfile.h for the phase inventory and nesting
/// caveats). Keys are the obs::phaseName() strings.
inline obs::JsonValue phaseBreakdownToJson(const TxStats &S) {
  obs::JsonValue V = obs::JsonValue::object();
  auto Emit = [&](obs::Phase P, const obs::Histogram &H) {
    obs::JsonValue Entry = obs::JsonValue::object();
    Entry.set("count", H.count());
    Entry.set("cycles", H.sum());
    Entry.set("mean_cycles", H.mean());
    V.set(obs::phaseName(P), std::move(Entry));
  };
  Emit(obs::Phase::Open, S.PhaseOpenCycles);
  Emit(obs::Phase::Validate, S.PhaseValidateCycles);
  Emit(obs::Phase::CommitLock, S.PhaseCommitLockCycles);
  Emit(obs::Phase::WriteBack, S.PhaseWriteBackCycles);
  Emit(obs::Phase::CmWait, S.PhaseCmWaitCycles);
  Emit(obs::Phase::Backoff, S.PhaseBackoffCycles);
  return V;
}

/// {counters: {...}, histograms: {...}} for one stats block.
inline obs::JsonValue statsToJson(const TxStats &S) {
  obs::JsonValue V = obs::JsonValue::object();
  obs::JsonValue Counters = obs::JsonValue::object();
  S.forEachCounter(
      [&](const char *Name, uint64_t Value) { Counters.set(Name, Value); });
  V.set("counters", std::move(Counters));
  obs::JsonValue Histograms = obs::JsonValue::object();
  S.forEachHistogram([&](const char *Name, const obs::Histogram &H) {
    Histograms.set(Name, histogramToJson(H));
  });
  V.set("histograms", std::move(Histograms));
  return V;
}

/// The MVCC tier's view of a stats block: snapshot-path traffic, version
/// churn, and the chain-depth distribution (DESIGN.md §3.9). live_versions
/// is a gauge derived from two counters sampled non-atomically, so it can
/// transiently undershoot; it is clamped at zero.
inline obs::JsonValue mvccStatsToJson(const TxStats &S) {
  obs::JsonValue V = obs::JsonValue::object();
  V.set("enabled", OTM_MVCC != 0);
  V.set("snapshot_commits", S.SnapshotCommits);
  V.set("snapshot_upgrades", S.SnapshotUpgrades);
  V.set("snapshot_refreshes", S.SnapshotRefreshes);
  V.set("snapshot_reads", S.SnapshotReads);
  V.set("snapshot_reads_from_chain", S.SnapshotReadsFromChain);
  V.set("snapshot_waits", S.SnapshotWaits);
  V.set("versions_installed", S.MvVersionsInstalled);
  V.set("versions_retired", S.MvVersionsRetired);
  V.set("versions_live", S.MvVersionsInstalled >= S.MvVersionsRetired
                             ? S.MvVersionsInstalled - S.MvVersionsRetired
                             : 0);
  obs::JsonValue Depth = obs::JsonValue::object();
  Depth.set("count", S.MvChainDepth.count());
  Depth.set("max", S.MvChainDepth.max());
  Depth.set("p50", S.MvChainDepth.percentile(50.0));
  Depth.set("p99", S.MvChainDepth.percentile(99.0));
  V.set("chain_depth", std::move(Depth));
  return V;
}

/// The boosting tier's view of a stats block: abstract-lock traffic,
/// deferred-action volume, and the live lock-table occupancy gauge
/// (DESIGN.md §3.10). The keys exist — with zero values — in OTM_BOOST=0
/// builds too: the telemetry schema must not fork on the compile switch.
inline obs::JsonValue boostStatsToJson(const TxStats &S) {
  obs::JsonValue V = obs::JsonValue::object();
  V.set("enabled", OTM_BOOST != 0);
  V.set("lock_acquires", S.BoostLockAcquires);
  V.set("lock_waits", S.BoostLockWaits);
  V.set("commit_ops", S.BoostCommitOps);
  V.set("undo_ops", S.BoostUndoOps);
  V.set("structural_fallbacks", S.BoostStructuralFallbacks);
#if OTM_BOOST
  V.set("lock_table_held", txn::AbstractLockTable::instance().heldCount());
#else
  V.set("lock_table_held", uint64_t(0));
#endif
  V.set("lock_table_capacity",
        static_cast<uint64_t>(txn::AbstractLockTable::capacity()));
  return V;
}

/// The hardware tier's view (DESIGN.md §3.12): attempt/commit volume from
/// the per-thread stats, abort attribution by code and fallback transitions
/// from the process-wide CmStats. "enabled" is the compile switch,
/// "available" the runtime probe verdict — both keys exist (false/0) in
/// -DOTM_HTM=0 builds and on no-RTM hosts: the telemetry schema must not
/// fork on either switch.
inline obs::JsonValue htmStatsToJson(const TxStats &S,
                                     const txn::CmStatsSnapshot &C) {
  obs::JsonValue V = obs::JsonValue::object();
  V.set("enabled", OTM_HTM != 0);
  V.set("available", txn::htm::HtmRuntime::instance().available());
  V.set("attempts", S.HtmAttempts);
  V.set("commits", S.HtmCommits);
  V.set("aborts_conflict", C.HtmAbortsConflict);
  V.set("aborts_capacity", C.HtmAbortsCapacity);
  V.set("aborts_explicit", C.HtmAbortsExplicit);
  V.set("aborts_serial", C.HtmAbortsSerial);
  V.set("aborts_locked", C.HtmAbortsLocked);
  V.set("aborts_unsupported", C.HtmAbortsUnsupported);
  V.set("aborts_user", C.HtmAbortsUser);
  V.set("aborts_exception", C.HtmAbortsException);
  V.set("aborts_other", C.HtmAbortsOther);
  V.set("fallbacks", C.HtmFallbacks);
  return V;
}

/// Top-K abort attribution plus the conflict graph (shared by both STMs).
inline obs::JsonValue abortSitesToJson(std::size_t K = 16) {
  const obs::AbortSites &A = obs::AbortSites::instance();
  obs::JsonValue V = obs::JsonValue::object();
  V.set("top", A.toJson(K));
  V.set("dropped", A.dropped());
  V.set("edges", A.edgesToJson(K));
  V.set("edges_dropped", A.edgesDropped());
  obs::JsonValue Occ = obs::JsonValue::object();
  Occ.set("sites_used", static_cast<uint64_t>(A.siteOccupancy()));
  Occ.set("sites_capacity", static_cast<uint64_t>(A.siteCapacity()));
  Occ.set("edges_used", static_cast<uint64_t>(A.edgeOccupancy()));
  Occ.set("edges_capacity", static_cast<uint64_t>(A.edgeCapacity()));
  V.set("occupancy", std::move(Occ));
  return V;
}

} // namespace stm
} // namespace otm

#endif // OTM_STM_STATSJSON_H
