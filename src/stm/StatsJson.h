//===- stm/StatsJson.h - STM stats to JSON conversion ----------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts STM statistics blocks into obs::JsonValue trees for the
/// machine-readable BENCH_E*.json documents. Lives on the stm side of the
/// layering (obs knows nothing about TxStats); BenchUtil and the
/// experiment binaries are the consumers.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_STATSJSON_H
#define OTM_STM_STATSJSON_H

#include "obs/AbortSites.h"
#include "obs/Json.h"
#include "stm/TxStats.h"

namespace otm {
namespace stm {

inline obs::JsonValue histogramToJson(const obs::Histogram &H) {
  obs::JsonValue V = obs::JsonValue::object();
  V.set("count", H.count());
  V.set("sum", H.sum());
  V.set("max", H.max());
  V.set("mean", H.mean());
  obs::JsonValue Buckets = obs::JsonValue::array();
  H.forEachBucket([&](uint64_t Lower, uint64_t N) {
    obs::JsonValue Pair = obs::JsonValue::array();
    Pair.push(Lower);
    Pair.push(N);
    Buckets.push(std::move(Pair));
  });
  V.set("buckets_pow2", std::move(Buckets));
  return V;
}

/// {counters: {...}, histograms: {...}} for one stats block.
inline obs::JsonValue statsToJson(const TxStats &S) {
  obs::JsonValue V = obs::JsonValue::object();
  obs::JsonValue Counters = obs::JsonValue::object();
  S.forEachCounter(
      [&](const char *Name, uint64_t Value) { Counters.set(Name, Value); });
  V.set("counters", std::move(Counters));
  obs::JsonValue Histograms = obs::JsonValue::object();
  S.forEachHistogram([&](const char *Name, const obs::Histogram &H) {
    Histograms.set(Name, histogramToJson(H));
  });
  V.set("histograms", std::move(Histograms));
  return V;
}

/// Top-K abort attribution (shared by both STMs).
inline obs::JsonValue abortSitesToJson(std::size_t K = 16) {
  obs::JsonValue V = obs::JsonValue::object();
  V.set("top", obs::AbortSites::instance().toJson(K));
  V.set("dropped", obs::AbortSites::instance().dropped());
  return V;
}

} // namespace stm
} // namespace otm

#endif // OTM_STM_STATSJSON_H
