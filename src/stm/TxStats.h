//===- stm/TxStats.h - Transaction statistics -------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread transaction statistics, accumulated without atomics on the
/// fast path and flushed into a process-wide aggregate on demand. These
/// counters feed the dynamic-count tables (E5), the contention study (E7)
/// and the machine-readable BENCH_E*.json stats documents.
///
/// The field inventory lives in two X-macros so the per-thread block, the
/// atomic aggregate, and every add/snapshot/reset/serialize routine are
/// generated from one list — a new counter cannot silently desync them.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_TXSTATS_H
#define OTM_STM_TXSTATS_H

#include "obs/Histogram.h"

#include <atomic>
#include <cstdint>

namespace otm {
namespace stm {

/// Scalar event counters. X(Name) per field.
#define OTM_TXSTAT_COUNTERS(X)                                                 \
  X(Starts)                                                                    \
  X(SubsumedTx)         /* nested transactions flattened into their parent */  \
  X(Commits)                                                                   \
  X(Aborts)                                                                    \
  X(AbortsOnConflict)   /* open saw a foreign owner */                         \
  X(AbortsOnValidation) /* commit-time read validation failed */               \
  X(AbortsByUser)                                                              \
  X(OpensForRead)                                                              \
  X(OpensForUpdate)                                                            \
  X(ReadLogAppends)                                                            \
  X(ReadsFiltered)                                                             \
  X(UndoLogAppends)                                                            \
  X(UndosFiltered)                                                             \
  X(Allocations)                                                               \
  X(Retires) /* retireOnCommit calls (deferred deletes), both STMs */          \
  X(SnapshotCommits)        /* read-only commits off the MVCC snapshot path */ \
  X(SnapshotUpgrades)       /* snapshot attempts restarted as writers */       \
  X(SnapshotRefreshes)      /* snapshot attempts restarted on a newer stamp */ \
  X(SnapshotReads)          /* field reads resolved in snapshot mode */        \
  X(SnapshotReadsFromChain) /* ... that reconstructed from a version chain */  \
  X(SnapshotWaits)          /* ... that waited out an in-flight writer */      \
  X(MvVersionsInstalled)    /* version-chain nodes pushed at commit */         \
  X(MvVersionsRetired)      /* version-chain nodes cut and epoch-retired */    \
  X(BoostLockAcquires)      /* abstract (container,key) locks taken */         \
  X(BoostLockWaits)         /* ... that found a foreign owner first */         \
  X(BoostCommitOps)         /* deferred on-commit actions executed */          \
  X(BoostUndoOps)           /* semantic inverse actions executed on abort */   \
  X(BoostStructuralFallbacks) /* whole-container ops via the gate */           \
  X(HtmAttempts) /* hardware (RTM) attempts issued, counted pre-xbegin */      \
  X(HtmCommits)  /* transactions retired on the hardware tier; bumped */       \
                 /* inside the speculative region, so an aborted attempt */    \
                 /* rolls its bump back and the counter is commit-exact */

/// Power-of-two distributions sampled when obs::setSampling(true):
/// CommitTscCycles is outermost begin() -> published commit in TSC ticks;
/// RetriesPerCommit is aborted attempts absorbed by each commit. The
/// Phase*Cycles histograms record one sample per phase *episode* (one open
/// barrier, one validation scan, one backoff pause, ...) so sum() is the
/// total cycles that phase consumed — the per-phase breakdown of
/// obs::Phase (see obs/PhaseProfile.h; keep the two lists in sync).
#define OTM_TXSTAT_HISTOGRAMS(X)                                               \
  X(CommitTscCycles)                                                           \
  X(RetriesPerCommit)                                                          \
  X(PhaseOpenCycles)       /* obs::Phase::Open */                              \
  X(PhaseValidateCycles)   /* obs::Phase::Validate */                          \
  X(PhaseCommitLockCycles) /* obs::Phase::CommitLock (word STM) */             \
  X(PhaseWriteBackCycles)  /* obs::Phase::WriteBack */                         \
  X(PhaseCmWaitCycles)     /* obs::Phase::CmWait */                            \
  X(PhaseBackoffCycles)    /* obs::Phase::Backoff (retry layer) */             \
  X(MvChainDepth)          /* version-chain depth after each install */

/// Plain counter block (per thread; no synchronization).
struct TxStats {
#define OTM_X(Name) uint64_t Name = 0;
  OTM_TXSTAT_COUNTERS(OTM_X)
#undef OTM_X
#define OTM_X(Name) obs::Histogram Name;
  OTM_TXSTAT_HISTOGRAMS(OTM_X)
#undef OTM_X

  void reset() { *this = TxStats(); }

  void add(const TxStats &O) {
#define OTM_X(Name) Name += O.Name;
    OTM_TXSTAT_COUNTERS(OTM_X)
#undef OTM_X
#define OTM_X(Name) Name.merge(O.Name);
    OTM_TXSTAT_HISTOGRAMS(OTM_X)
#undef OTM_X
  }

  /// Visits (const char *Name, uint64_t Value) per scalar counter.
  template <typename FnType> void forEachCounter(FnType Fn) const {
#define OTM_X(Name) Fn(#Name, Name);
    OTM_TXSTAT_COUNTERS(OTM_X)
#undef OTM_X
  }

  /// Visits (const char *Name, const obs::Histogram &) per histogram.
  template <typename FnType> void forEachHistogram(FnType Fn) const {
#define OTM_X(Name) Fn(#Name, Name);
    OTM_TXSTAT_HISTOGRAMS(OTM_X)
#undef OTM_X
  }
};

/// Process-wide aggregate, updated by TxManager::flushStats().
class GlobalTxStats {
public:
  static GlobalTxStats &instance() {
    static GlobalTxStats G;
    return G;
  }

  void add(const TxStats &S) {
#define OTM_X(Name) Name.fetch_add(S.Name, std::memory_order_relaxed);
    OTM_TXSTAT_COUNTERS(OTM_X)
#undef OTM_X
#define OTM_X(Name) Name.add(S.Name);
    OTM_TXSTAT_HISTOGRAMS(OTM_X)
#undef OTM_X
  }

  /// Snapshot into a plain TxStats block.
  TxStats snapshot() const {
    TxStats S;
#define OTM_X(Name) S.Name = Name.load(std::memory_order_relaxed);
    OTM_TXSTAT_COUNTERS(OTM_X)
#undef OTM_X
#define OTM_X(Name) S.Name = Name.snapshot();
    OTM_TXSTAT_HISTOGRAMS(OTM_X)
#undef OTM_X
    return S;
  }

  /// Relaxed stores, consistent with the documented memory-order policy
  /// (reset races with concurrent flushes only across bench boundaries).
  void reset() {
#define OTM_X(Name) Name.store(0, std::memory_order_relaxed);
    OTM_TXSTAT_COUNTERS(OTM_X)
#undef OTM_X
#define OTM_X(Name) Name.reset();
    OTM_TXSTAT_HISTOGRAMS(OTM_X)
#undef OTM_X
  }

private:
#define OTM_X(Name) std::atomic<uint64_t> Name{0};
  OTM_TXSTAT_COUNTERS(OTM_X)
#undef OTM_X
#define OTM_X(Name) obs::AtomicHistogram Name;
  OTM_TXSTAT_HISTOGRAMS(OTM_X)
#undef OTM_X
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_TXSTATS_H
