//===- stm/TxStats.h - Transaction statistics -------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread transaction statistics, accumulated without atomics on the
/// fast path and flushed into a process-wide aggregate on demand. These
/// counters feed the dynamic-count tables (E5) and the contention study
/// (E7).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_TXSTATS_H
#define OTM_STM_TXSTATS_H

#include <atomic>
#include <cstdint>

namespace otm {
namespace stm {

/// Plain counter block (per thread; no synchronization).
struct TxStats {
  uint64_t Starts = 0;
  uint64_t Commits = 0;
  uint64_t Aborts = 0;
  uint64_t AbortsOnConflict = 0;   // open saw a foreign owner
  uint64_t AbortsOnValidation = 0; // commit-time read validation failed
  uint64_t AbortsByUser = 0;
  uint64_t OpensForRead = 0;
  uint64_t OpensForUpdate = 0;
  uint64_t ReadLogAppends = 0;
  uint64_t ReadsFiltered = 0;
  uint64_t UndoLogAppends = 0;
  uint64_t UndosFiltered = 0;
  uint64_t Allocations = 0;

  void reset() { *this = TxStats(); }

  void add(const TxStats &O) {
    Starts += O.Starts;
    Commits += O.Commits;
    Aborts += O.Aborts;
    AbortsOnConflict += O.AbortsOnConflict;
    AbortsOnValidation += O.AbortsOnValidation;
    AbortsByUser += O.AbortsByUser;
    OpensForRead += O.OpensForRead;
    OpensForUpdate += O.OpensForUpdate;
    ReadLogAppends += O.ReadLogAppends;
    ReadsFiltered += O.ReadsFiltered;
    UndoLogAppends += O.UndoLogAppends;
    UndosFiltered += O.UndosFiltered;
    Allocations += O.Allocations;
  }
};

/// Process-wide aggregate, updated by TxManager::flushStats().
class GlobalTxStats {
public:
  static GlobalTxStats &instance() {
    static GlobalTxStats G;
    return G;
  }

  void add(const TxStats &S) {
    Starts.fetch_add(S.Starts, std::memory_order_relaxed);
    Commits.fetch_add(S.Commits, std::memory_order_relaxed);
    Aborts.fetch_add(S.Aborts, std::memory_order_relaxed);
    AbortsOnConflict.fetch_add(S.AbortsOnConflict, std::memory_order_relaxed);
    AbortsOnValidation.fetch_add(S.AbortsOnValidation,
                                 std::memory_order_relaxed);
    AbortsByUser.fetch_add(S.AbortsByUser, std::memory_order_relaxed);
    OpensForRead.fetch_add(S.OpensForRead, std::memory_order_relaxed);
    OpensForUpdate.fetch_add(S.OpensForUpdate, std::memory_order_relaxed);
    ReadLogAppends.fetch_add(S.ReadLogAppends, std::memory_order_relaxed);
    ReadsFiltered.fetch_add(S.ReadsFiltered, std::memory_order_relaxed);
    UndoLogAppends.fetch_add(S.UndoLogAppends, std::memory_order_relaxed);
    UndosFiltered.fetch_add(S.UndosFiltered, std::memory_order_relaxed);
    Allocations.fetch_add(S.Allocations, std::memory_order_relaxed);
  }

  /// Snapshot into a plain TxStats block.
  TxStats snapshot() const {
    TxStats S;
    S.Starts = Starts.load(std::memory_order_relaxed);
    S.Commits = Commits.load(std::memory_order_relaxed);
    S.Aborts = Aborts.load(std::memory_order_relaxed);
    S.AbortsOnConflict = AbortsOnConflict.load(std::memory_order_relaxed);
    S.AbortsOnValidation = AbortsOnValidation.load(std::memory_order_relaxed);
    S.AbortsByUser = AbortsByUser.load(std::memory_order_relaxed);
    S.OpensForRead = OpensForRead.load(std::memory_order_relaxed);
    S.OpensForUpdate = OpensForUpdate.load(std::memory_order_relaxed);
    S.ReadLogAppends = ReadLogAppends.load(std::memory_order_relaxed);
    S.ReadsFiltered = ReadsFiltered.load(std::memory_order_relaxed);
    S.UndoLogAppends = UndoLogAppends.load(std::memory_order_relaxed);
    S.UndosFiltered = UndosFiltered.load(std::memory_order_relaxed);
    S.Allocations = Allocations.load(std::memory_order_relaxed);
    return S;
  }

  void reset() {
    Starts = 0;
    Commits = 0;
    Aborts = 0;
    AbortsOnConflict = 0;
    AbortsOnValidation = 0;
    AbortsByUser = 0;
    OpensForRead = 0;
    OpensForUpdate = 0;
    ReadLogAppends = 0;
    ReadsFiltered = 0;
    UndoLogAppends = 0;
    UndosFiltered = 0;
    Allocations = 0;
  }

private:
  std::atomic<uint64_t> Starts{0}, Commits{0}, Aborts{0};
  std::atomic<uint64_t> AbortsOnConflict{0}, AbortsOnValidation{0},
      AbortsByUser{0};
  std::atomic<uint64_t> OpensForRead{0}, OpensForUpdate{0};
  std::atomic<uint64_t> ReadLogAppends{0}, ReadsFiltered{0};
  std::atomic<uint64_t> UndoLogAppends{0}, UndosFiltered{0};
  std::atomic<uint64_t> Allocations{0};
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_TXSTATS_H
