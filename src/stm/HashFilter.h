//===- stm/HashFilter.h - Per-transaction duplicate filter -----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime log filtering (Section "runtime filtering" of the paper): the
/// compiler removes duplicate opens and undo-logs it can prove, but
/// duplicates that reach the same object through different references can
/// only be caught dynamically. Each transaction keeps two of these filters
/// (one keyed by object for the read log, one keyed by address for the undo
/// log) and skips the log append when the key was already present.
///
/// The filter is an open-addressing hash set sized for the barrier fast
/// path:
///
///   - Slots are a single 64-bit word: the key's 48 significant pointer
///     bits tagged with a 16-bit generation in the top bits. One slot per
///     probe is one 8-byte load — 8 slots per cache line, twice the old
///     {key, gen} pair layout.
///   - clear() between transactions is O(1): bump the generation and every
///     slot goes logically empty. When the 16-bit tag wraps (every 65535
///     clears) the table is scrubbed to zero so ancient tags can never
///     alias back to life.
///   - The load-factor check is off the hit path: only claiming a fresh
///     slot (a first-time insert) checks whether the table must grow;
///     duplicate hits — the common case the filter exists for — probe and
///     return without ever looking at the occupancy.
///
/// Keys are object/field addresses. User-space pointers fit in 48 bits on
/// the supported targets (x86-64/aarch64 with 4-level paging); asserted on
/// every insert.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_HASHFILTER_H
#define OTM_STM_HASHFILTER_H

#include "support/Compiler.h"
#include "txn/Fingerprint.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace otm {
namespace stm {

class HashFilter {
public:
  HashFilter() : Slots(InitialCapacity, 0), GrowAt(growThreshold(InitialCapacity)) {}

  /// Inserts \p Key; returns true if it was not already present.
  bool insert(uintptr_t Key) {
    assert((Key >> KeyBits) == 0 && "pointer exceeds 48 significant bits");
    std::size_t Mask = Slots.size() - 1;
    uint64_t Tag = Gen << KeyBits;
    std::size_t Index = hash(Key) & Mask;
    for (;;) {
      uint64_t S = Slots[Index];
      if ((S & TagMask) != Tag) { // empty or stale: first-time insert
        if (OTM_UNLIKELY(Count >= GrowAt)) {
          grow();
          return insert(Key); // table doubled; re-probe once
        }
        Slots[Index] = Tag | Key;
        ++Count;
        return true;
      }
      if (OTM_LIKELY((S & KeyMask) == Key))
        return false;
      Index = (Index + 1) & Mask;
    }
  }

  /// True if \p Key has been inserted since the last clear.
  bool contains(uintptr_t Key) const {
    std::size_t Mask = Slots.size() - 1;
    uint64_t Tag = Gen << KeyBits;
    std::size_t Index = hash(Key) & Mask;
    for (;;) {
      uint64_t S = Slots[Index];
      if ((S & TagMask) != Tag)
        return false;
      if ((S & KeyMask) == Key)
        return true;
      Index = (Index + 1) & Mask;
    }
  }

  /// O(1) logical clear (amortized: a full scrub every 65535 generations).
  void clear() {
    Count = 0;
    if (OTM_UNLIKELY(++Gen > MaxTag)) {
      Gen = 1;
      std::fill(Slots.begin(), Slots.end(), 0);
    }
  }

  std::size_t size() const { return Count; }

  /// Folds every live key into \p F — the fixed-width Bloom export the
  /// admission scheduler samples (DESIGN.md §3.11). The exact set
  /// compresses to 256 bits, so the fingerprint inherits this filter's
  /// keyspace (object/field addresses) and the one-sided guarantee of
  /// txn::RwFingerprint: a shared key always collides, so fingerprint
  /// disjointness proves set disjointness. Walks the table — sample once
  /// per attempt, not per barrier.
  void appendFingerprint(txn::RwFingerprint &F) const {
    uint64_t Tag = Gen << KeyBits;
    for (uint64_t S : Slots)
      if ((S & TagMask) == Tag)
        F.insert(S & KeyMask);
  }

  /// Convenience form of appendFingerprint() for tests and declared-set
  /// construction.
  txn::RwFingerprint fingerprint() const {
    txn::RwFingerprint F;
    appendFingerprint(F);
    return F;
  }

private:
  static constexpr std::size_t InitialCapacity = 64; // power of two
  static constexpr unsigned KeyBits = 48;
  static constexpr uint64_t KeyMask = (uint64_t{1} << KeyBits) - 1;
  static constexpr uint64_t TagMask = ~KeyMask;
  static constexpr uint64_t MaxTag = 0xffff; // tag 0 is "never written"

  /// Grow at 5/8 occupancy: with one-word slots the table is still half
  /// the old footprint, and the slack keeps linear-probe chains short.
  static std::size_t growThreshold(std::size_t Capacity) {
    return Capacity * 5 / 8;
  }

  /// Multiplicative hash with a two-way fold: one golden-ratio multiply,
  /// then xor the upper thirds down so the masked low bits depend on every
  /// product bit. Half the latency of a full murmur finalizer (one multiply
  /// instead of two; the shifts are parallel), which matters because the
  /// hash sits on the critical dependency chain of every open barrier. The
  /// fold is what keeps strided pointer keys (pool slabs hand out objects at
  /// a constant stride) from resonating with the table size, which a plain
  /// top-bits or bottom-bits multiplicative hash is vulnerable to.
  static std::size_t hash(uintptr_t Key) {
    uint64_t H = static_cast<uint64_t>(Key) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(H ^ (H >> 21) ^ (H >> 43));
  }

  OTM_NOINLINE void grow() {
    std::vector<uint64_t> Old = std::move(Slots);
    Slots.assign(Old.size() * 2, 0);
    // A fresh zeroed table holds no current-tag slots, so re-inserting the
    // live keys under the same generation is exact (tag 0 is never live).
    uint64_t Tag = Gen << KeyBits;
    Count = 0;
    GrowAt = growThreshold(Slots.size());
    for (uint64_t S : Old)
      if ((S & TagMask) == Tag)
        insert(S & KeyMask);
  }

  std::vector<uint64_t> Slots;
  uint64_t Gen = 1; ///< current tag, cycles 1..MaxTag
  std::size_t Count = 0;
  std::size_t GrowAt;
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_HASHFILTER_H
