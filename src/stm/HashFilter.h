//===- stm/HashFilter.h - Per-transaction duplicate filter -----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime log filtering (Section "runtime filtering" of the paper): the
/// compiler removes duplicate opens and undo-logs it can prove, but
/// duplicates that reach the same object through different references can
/// only be caught dynamically. Each transaction keeps two of these filters
/// (one keyed by object for the read log, one keyed by address for the undo
/// log) and skips the log append when the key was already present.
///
/// The filter is an open-addressing hash set with generation-stamped slots,
/// so clearing between transactions is O(1): bump the generation and all
/// slots become logically empty.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_HASHFILTER_H
#define OTM_STM_HASHFILTER_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace otm {
namespace stm {

class HashFilter {
public:
  HashFilter() : Slots(InitialCapacity) {}

  /// Inserts \p Key; returns true if it was not already present.
  bool insert(uintptr_t Key) {
    if (Count * 4 >= Slots.size() * 3)
      grow();
    std::size_t Mask = Slots.size() - 1;
    std::size_t Index = hash(Key) & Mask;
    for (;;) {
      Slot &S = Slots[Index];
      if (S.Gen != Gen) {
        S.Gen = Gen;
        S.Key = Key;
        ++Count;
        return true;
      }
      if (S.Key == Key)
        return false;
      Index = (Index + 1) & Mask;
    }
  }

  /// True if \p Key has been inserted since the last clear.
  bool contains(uintptr_t Key) const {
    std::size_t Mask = Slots.size() - 1;
    std::size_t Index = hash(Key) & Mask;
    for (;;) {
      const Slot &S = Slots[Index];
      if (S.Gen != Gen)
        return false;
      if (S.Key == Key)
        return true;
      Index = (Index + 1) & Mask;
    }
  }

  /// O(1) logical clear.
  void clear() {
    ++Gen;
    Count = 0;
  }

  std::size_t size() const { return Count; }

private:
  static constexpr std::size_t InitialCapacity = 64; // power of two

  struct Slot {
    uintptr_t Key = 0;
    uint64_t Gen = 0; // slot is live iff Gen == filter generation
  };

  static std::size_t hash(uintptr_t Key) {
    // Murmur3 finalizer; pointers share low zero bits, so mix thoroughly.
    uint64_t H = static_cast<uint64_t>(Key);
    H ^= H >> 33;
    H *= 0xff51afd7ed558ccdULL;
    H ^= H >> 33;
    H *= 0xc4ceb9fe1a85ec53ULL;
    H ^= H >> 33;
    return static_cast<std::size_t>(H);
  }

  void grow() {
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(Old.size() * 2, Slot());
    uint64_t OldGen = Gen++;
    Count = 0;
    for (const Slot &S : Old)
      if (S.Gen == OldGen)
        insert(S.Key);
  }

  std::vector<Slot> Slots;
  uint64_t Gen = 1;
  std::size_t Count = 0;
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_HASHFILTER_H
