//===- stm/TxGlobal.h - Surrogate objects for global state -----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's object-granularity STM covers static/global variables by
/// mapping each one onto a heap *surrogate* object whose STM word stands in
/// for the variable. TxGlobal<T> is that surrogate: a one-field
/// transactional object with get/set barriers, usable at namespace scope.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_TXGLOBAL_H
#define OTM_STM_TXGLOBAL_H

#include "stm/Field.h"
#include "stm/TxManager.h"
#include "stm/TxObject.h"

namespace otm {
namespace stm {

template <typename T> class TxGlobal : public TxObject {
public:
  TxGlobal() = default;
  explicit TxGlobal(T Initial) : Value(Initial) {}

  /// Transactional read (open-for-read barrier + direct load; resolves
  /// against the begin-stamp version inside a snapshot transaction).
  T get(TxManager &Tx) { return Tx.snapshotLoad(this, &Value); }

  /// Transactional write (open-for-update + undo log + in-place store).
  void set(TxManager &Tx, T NewValue) {
    Tx.openForUpdate(this);
    Tx.logUndo(&Value);
    Value.store(NewValue);
  }

  /// Non-transactional initialization/inspection (single-threaded phases).
  T unsafeGet() const { return Value.load(); }
  void unsafeSet(T NewValue) { Value.store(NewValue); }

  /// Exposed for decomposed access after a manual open.
  Field<T> Value;
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_TXGLOBAL_H
