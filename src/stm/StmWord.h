//===- stm/StmWord.h - Multiplexed per-object STM word ---------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encoding of the per-object *STM word*, the single word of metadata the
/// paper attaches to every transactional object.
///
/// The word multiplexes two states:
///   - low bit 0: the word holds the object's version number, `V << 1`.
///     The object is not open for update by anyone.
///   - low bit 1: the word holds `(UpdateEntry*) | 1` — the object is owned
///     for update by the transaction whose update log contains that entry.
///     The entry records the previous (version) word, so ownership release
///     on abort restores it exactly and release on commit installs the
///     incremented version.
///
/// Versions are 63-bit on LP64 and cannot realistically overflow (the paper
/// needs overflow handling for its 29-bit header versions; we document the
/// difference instead of reproducing it).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_STMWORD_H
#define OTM_STM_STMWORD_H

#include <cstdint>

namespace otm {
namespace stm {

struct UpdateEntry;

/// Raw value of an STM word.
using WordValue = uintptr_t;

inline constexpr WordValue OwnedBit = 1;

/// True if the word encodes update ownership.
inline bool isOwned(WordValue W) { return (W & OwnedBit) != 0; }

/// Decodes the owning update-log entry; only valid when isOwned(W).
inline UpdateEntry *ownerEntry(WordValue W) {
  return reinterpret_cast<UpdateEntry *>(W & ~OwnedBit);
}

/// Encodes ownership by \p Entry.
inline WordValue makeOwned(UpdateEntry *Entry) {
  return reinterpret_cast<WordValue>(Entry) | OwnedBit;
}

/// Decodes a version number; only valid when !isOwned(W).
inline uint64_t versionOf(WordValue W) {
  return static_cast<uint64_t>(W >> 1);
}

/// Encodes version number \p V.
inline WordValue makeVersion(uint64_t V) {
  return static_cast<WordValue>(V << 1);
}

} // namespace stm
} // namespace otm

#endif // OTM_STM_STMWORD_H
