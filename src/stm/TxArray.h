//===- stm/TxArray.h - Object-granularity transactional array --*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size transactional array. Conflict detection is at object (whole
/// array) granularity, matching the paper's object-based STM: one
/// OpenForRead covers any number of element reads, which is precisely what
/// makes the direct-update design cheaper than a word-based STM on
/// array-heavy code (experiment E2).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_STM_TXARRAY_H
#define OTM_STM_TXARRAY_H

#include "stm/Field.h"
#include "stm/TxManager.h"
#include "stm/TxObject.h"

#include <cassert>
#include <cstddef>
#include <memory>

namespace otm {
namespace stm {

template <typename T> class TxArray : public TxObject {
public:
  explicit TxArray(std::size_t Count)
      : Slots(std::make_unique<Field<T>[]>(Count)), Count(Count) {}

  std::size_t size() const { return Count; }

  /// Transactional element read (combined barrier).
  T get(TxManager &Tx, std::size_t Index) {
    Tx.openForRead(this);
    return slot(Index).load();
  }

  /// Transactional element write (combined barrier).
  void set(TxManager &Tx, std::size_t Index, T Value) {
    Tx.openForUpdate(this);
    Tx.logUndo(&slot(Index));
    slot(Index).store(Value);
  }

  /// Decomposed access: the caller opened the array already.
  Field<T> &slot(std::size_t Index) {
    assert(Index < Count && "TxArray index out of range");
    return Slots[Index];
  }

  /// Non-transactional initialization (single-threaded setup phases).
  void unsafeSet(std::size_t Index, T Value) { slot(Index).store(Value); }
  T unsafeGet(std::size_t Index) { return slot(Index).load(); }

private:
  std::unique_ptr<Field<T>[]> Slots;
  std::size_t Count;
};

} // namespace stm
} // namespace otm

#endif // OTM_STM_TXARRAY_H
