//===- gc/EpochManager.h - Epoch-based memory reclamation ------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based reclamation (EBR) for transactional objects.
///
/// The PLDI 2006 direct-update STM relies on the CLR garbage collector for a
/// crucial safety property: a doomed ("zombie") transaction that has read a
/// stale pointer can still dereference it, because the collector will not
/// recycle memory that a running thread can reach. In unmanaged C++ we
/// substitute epoch-based reclamation: every transaction attempt runs inside
/// an epoch *pin*, and retired objects are only freed once every pinned
/// thread has moved past the retirement epoch. This preserves the paper's
/// zombie-safety behaviour without a tracing collector.
///
/// (The tracing mark-sweep collector that reproduces the paper's GC/log
/// integration experiments lives in src/interp/Heap.h; it manages the IR
/// interpreter's heap, where we control the full object graph.)
///
//===----------------------------------------------------------------------===//

#ifndef OTM_GC_EPOCHMANAGER_H
#define OTM_GC_EPOCHMANAGER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace otm {
namespace gc {

/// Process-wide epoch-based reclamation domain.
///
/// Usage: call pin() before touching shared transactional objects and
/// unpin() afterwards (TxManager does this per transaction attempt). Call
/// retire() after an object has been unlinked from all shared structures;
/// the deleter runs once no pinned thread can still hold a reference.
class EpochManager {
public:
  using Deleter = void (*)(void *);

  /// Returns the process-wide reclamation domain.
  static EpochManager &global();

  /// Enters a critical region. Reentrant: nested pins are counted.
  void pin();

  /// Leaves a critical region; the outermost unpin unpublishes the epoch.
  void unpin();

  /// True if the calling thread currently holds a pin.
  bool isPinned() const;

  /// Schedules \p Ptr for deletion once all current pins are released.
  /// May be called with or without a pin held.
  void retire(void *Ptr, Deleter D);

  /// Attempts to advance the global epoch and free retired objects that are
  /// no longer reachable. Called automatically every few retirements.
  void collect();

  /// Frees everything unconditionally. Only safe when no thread is pinned
  /// (e.g. test teardown); asserts that this is the case.
  void drainForTesting();

  /// Number of objects retired but not yet freed (approximate).
  std::size_t pendingForTesting();

  /// Total objects freed so far (for tests and the E8 bench).
  uint64_t freedCount() const { return Freed.load(std::memory_order_relaxed); }

private:
  EpochManager() = default;

  static constexpr uint64_t Unpinned = ~static_cast<uint64_t>(0);
  static constexpr std::size_t CollectThreshold = 128;

  struct Slot {
    std::atomic<uint64_t> LocalEpoch{Unpinned};
    std::atomic<bool> InUse{false};
  };

  struct Retired {
    void *Ptr;
    Deleter D;
    uint64_t Epoch;
  };

  struct ThreadState {
    Slot *S = nullptr;
    unsigned PinDepth = 0;
    std::vector<Retired> Bin;
    EpochManager *Owner = nullptr;
    ~ThreadState();
  };

  ThreadState &state();
  Slot *acquireSlot();
  /// Minimum epoch over all pinned threads, or current epoch if none.
  uint64_t minActiveEpoch();
  void freeUpTo(std::vector<Retired> &Bin, uint64_t SafeEpoch);

  std::atomic<uint64_t> GlobalEpoch{2};
  std::atomic<uint64_t> Freed{0};

  std::mutex SlotsMutex;
  std::vector<Slot *> Slots; // never shrinks; slots are reused

  std::mutex OrphanMutex;
  std::vector<Retired> OrphanBin; // bins of exited threads
};

/// Convenience: retire \p Ptr with a typed deleter.
template <typename T> void retireObject(T *Ptr) {
  EpochManager::global().retire(
      Ptr, [](void *P) { delete static_cast<T *>(P); });
}

} // namespace gc
} // namespace otm

#endif // OTM_GC_EPOCHMANAGER_H
