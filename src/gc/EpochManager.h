//===- gc/EpochManager.h - Epoch-based memory reclamation ------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Epoch-based reclamation (EBR) for transactional objects.
///
/// The PLDI 2006 direct-update STM relies on the CLR garbage collector for a
/// crucial safety property: a doomed ("zombie") transaction that has read a
/// stale pointer can still dereference it, because the collector will not
/// recycle memory that a running thread can reach. In unmanaged C++ we
/// substitute epoch-based reclamation: every transaction attempt runs inside
/// an epoch *pin*, and retired objects are only freed once every pinned
/// thread has moved past the retirement epoch. This preserves the paper's
/// zombie-safety behaviour without a tracing collector.
///
/// (The tracing mark-sweep collector that reproduces the paper's GC/log
/// integration experiments lives in src/interp/Heap.h; it manages the IR
/// interpreter's heap, where we control the full object graph.)
///
//===----------------------------------------------------------------------===//

#ifndef OTM_GC_EPOCHMANAGER_H
#define OTM_GC_EPOCHMANAGER_H

#include "support/Compiler.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace otm {
namespace gc {

/// Process-wide epoch-based reclamation domain.
///
/// Usage: call pin() before touching shared transactional objects and
/// unpin() afterwards (TxManager does this per transaction attempt). Call
/// retire() after an object has been unlinked from all shared structures;
/// the deleter runs once no pinned thread can still hold a reference.
class EpochManager {
public:
  using Deleter = void (*)(void *);

  /// Returns the process-wide reclamation domain.
  static EpochManager &global();

  /// Enters a critical region. Reentrant: nested pins are counted.
  void pin();

  /// Leaves a critical region; the outermost unpin unpublishes the epoch.
  void unpin();

  /// True if the calling thread currently holds a pin.
  bool isPinned() const;

  /// Schedules \p Ptr for deletion once all current pins are released.
  /// May be called with or without a pin held.
  void retire(void *Ptr, Deleter D);

  /// Attempts to advance the global epoch and free retired objects that are
  /// no longer reachable. Called automatically every few retirements.
  void collect();

  /// Frees everything unconditionally. Only safe when no thread is pinned
  /// (e.g. test teardown); asserts that this is the case.
  void drainForTesting();

  /// Number of objects retired but not yet freed (approximate).
  std::size_t pendingForTesting();

  /// Total objects freed so far (for tests and the E8 bench).
  uint64_t freedCount() const { return Freed.load(std::memory_order_relaxed); }

  class ThreadPin;

  /// The calling thread's pin handle. Fetch once per scope that pins on a
  /// hot path and operate on the handle: every ThreadPin method is inline
  /// and thread-local-lookup-free. The handle is valid for the lifetime of
  /// the calling thread (it points at the same per-thread state pin()
  /// uses, so handle and non-handle calls nest freely).
  ThreadPin threadPin();

private:
  EpochManager() = default;

  static constexpr uint64_t Unpinned = ~static_cast<uint64_t>(0);
  static constexpr std::size_t CollectThreshold = 128;

  struct Slot {
    std::atomic<uint64_t> LocalEpoch{Unpinned};
    std::atomic<bool> InUse{false};
  };

  struct Retired {
    void *Ptr;
    Deleter D;
    uint64_t Epoch;
  };

  struct ThreadState {
    Slot *S = nullptr;
    unsigned PinDepth = 0;
    uint64_t LastEpoch = 0; ///< epoch published by the last outermost pin
    bool InCollect = false; ///< a deleter on this thread is running
    std::vector<Retired> Bin;
    EpochManager *Owner = nullptr;
    ~ThreadState();
  };

  ThreadState &state();
  Slot *acquireSlot();
  /// Minimum epoch over all pinned threads, or current epoch if none.
  uint64_t minActiveEpoch();
  void freeUpTo(std::vector<Retired> &Bin, uint64_t SafeEpoch);

  std::atomic<uint64_t> GlobalEpoch{2};
  std::atomic<uint64_t> Freed{0};

  std::mutex SlotsMutex;
  std::vector<Slot *> Slots; // never shrinks; slots are reused

  std::mutex OrphanMutex;
  std::vector<Retired> OrphanBin; // bins of exited threads
};

/// Inline, cached-thread-state pin operations (see threadPin()). Two entry
/// styles:
///
///   - pin()/unpin(): the full protocol, equivalent to the EpochManager
///     methods minus the thread-local lookup.
///   - prePin()/confirmPin() around a caller-owned seq_cst fence: prePin
///     publishes the epoch observed by the previous pin with a relaxed
///     store — a stale epoch is always safe to publish, it can only lower
///     minActiveEpoch() and delay reclamation. After the caller's fence,
///     confirmPin() re-reads the global epoch and re-publishes behind its
///     own fence in the rare case it advanced, restoring pin()'s protocol
///     while letting the common case share one fence with the caller's
///     other per-attempt publications (the serial gate's Dekker store).
class EpochManager::ThreadPin {
public:
  void pin() {
    if (TS->PinDepth++ != 0)
      return;
    uint64_t E = EM->GlobalEpoch.load(std::memory_order_seq_cst);
    TS->LastEpoch = E;
    TS->S->LocalEpoch.store(E, std::memory_order_seq_cst);
  }

  void prePin() {
    if (TS->PinDepth++ != 0)
      return;
#if OTM_TSAN
    // TSan does not understand the caller's fence; keep the seq_cst-store
    // protocol so the pin/collect synchronization stays visible to it.
    uint64_t E = EM->GlobalEpoch.load(std::memory_order_seq_cst);
    TS->LastEpoch = E;
    TS->S->LocalEpoch.store(E, std::memory_order_seq_cst);
#else
    TS->S->LocalEpoch.store(TS->LastEpoch, std::memory_order_relaxed);
#endif
  }

  void confirmPin() {
    if (TS->PinDepth != 1)
      return; // nested: the outermost pin's publication already stands
    // The caller fenced after prePin's relaxed publication, so this load
    // is ordered after it. If the global epoch moved past the (stale)
    // value we published, catch up: each re-publication gets its own
    // fence before the re-check, restoring the pin() protocol exactly.
    uint64_t E = EM->GlobalEpoch.load(std::memory_order_relaxed);
    while (OTM_UNLIKELY(E != TS->LastEpoch)) {
      TS->S->LocalEpoch.store(E, std::memory_order_relaxed);
      TS->LastEpoch = E;
      std::atomic_thread_fence(std::memory_order_seq_cst);
      E = EM->GlobalEpoch.load(std::memory_order_relaxed);
    }
  }

  void unpin() {
    if (--TS->PinDepth == 0)
      TS->S->LocalEpoch.store(Unpinned, std::memory_order_release);
  }

private:
  friend class EpochManager;
  ThreadPin(EpochManager *EM, ThreadState *TS) : EM(EM), TS(TS) {}

  EpochManager *EM;
  ThreadState *TS;
};

inline EpochManager::ThreadPin EpochManager::threadPin() {
  return ThreadPin(this, &state());
}

/// Convenience: retire \p Ptr with a typed deleter.
template <typename T> void retireObject(T *Ptr) {
  EpochManager::global().retire(
      Ptr, [](void *P) { delete static_cast<T *>(P); });
}

} // namespace gc
} // namespace otm

#endif // OTM_GC_EPOCHMANAGER_H
