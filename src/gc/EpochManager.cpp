//===- gc/EpochManager.cpp - Epoch-based memory reclamation --------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/EpochManager.h"

#include "support/Compiler.h"

#include <cassert>

using namespace otm;
using namespace otm::gc;

EpochManager &EpochManager::global() {
  // Leaked singleton: avoids a static destructor racing with thread-local
  // ThreadState destructors during process shutdown.
  static EpochManager *EM = new EpochManager();
  return *EM;
}

EpochManager::ThreadState::~ThreadState() {
  if (!Owner)
    return;
  // Move any not-yet-freed retirements to the orphan bin so a short-lived
  // thread never leaks, and release the slot for reuse.
  if (!Bin.empty()) {
    std::lock_guard<std::mutex> Lock(Owner->OrphanMutex);
    for (const Retired &R : Bin)
      Owner->OrphanBin.push_back(R);
    Bin.clear();
  }
  if (S) {
    S->LocalEpoch.store(Unpinned, std::memory_order_release);
    S->InUse.store(false, std::memory_order_release);
  }
}

EpochManager::ThreadState &EpochManager::state() {
  static thread_local ThreadState TS;
  if (!TS.Owner) {
    TS.Owner = this;
    TS.S = acquireSlot();
  }
  return TS;
}

EpochManager::Slot *EpochManager::acquireSlot() {
  std::lock_guard<std::mutex> Lock(SlotsMutex);
  for (Slot *S : Slots) {
    bool Expected = false;
    if (S->InUse.compare_exchange_strong(Expected, true,
                                         std::memory_order_acq_rel))
      return S;
  }
  Slot *S = new Slot();
  S->InUse.store(true, std::memory_order_release);
  Slots.push_back(S);
  return S;
}

void EpochManager::pin() {
  ThreadState &TS = state();
  if (TS.PinDepth++ != 0)
    return;
  // Publish the epoch we entered under. The seq_cst store orders the
  // publication against subsequent shared-memory loads.
  uint64_t E = GlobalEpoch.load(std::memory_order_seq_cst);
  TS.LastEpoch = E;
  TS.S->LocalEpoch.store(E, std::memory_order_seq_cst);
}


void EpochManager::unpin() {
  ThreadState &TS = state();
  assert(TS.PinDepth > 0 && "unpin without matching pin");
  if (--TS.PinDepth == 0)
    TS.S->LocalEpoch.store(Unpinned, std::memory_order_release);
}

bool EpochManager::isPinned() const {
  EpochManager *Self = const_cast<EpochManager *>(this);
  return Self->state().PinDepth > 0;
}

void EpochManager::retire(void *Ptr, Deleter D) {
  ThreadState &TS = state();
  uint64_t E = GlobalEpoch.load(std::memory_order_acquire);
  TS.Bin.push_back({Ptr, D, E});
  // Deleters may retire further objects (an object's destructor retiring
  // the version records hanging off it). Those land in the bin like any
  // other retirement, but must not re-enter collect(): the outer collect
  // is mid-iteration over this bin (double free) and may hold OrphanMutex
  // (self-deadlock).
  if (TS.Bin.size() >= CollectThreshold && !TS.InCollect)
    collect();
}

uint64_t EpochManager::minActiveEpoch() {
  uint64_t Min = GlobalEpoch.load(std::memory_order_seq_cst);
  std::lock_guard<std::mutex> Lock(SlotsMutex);
  for (Slot *S : Slots) {
    uint64_t E = S->LocalEpoch.load(std::memory_order_seq_cst);
    if (E != Unpinned && E < Min)
      Min = E;
  }
  return Min;
}

void EpochManager::freeUpTo(std::vector<Retired> &Bin, uint64_t SafeEpoch) {
  std::size_t Kept = 0;
  for (std::size_t I = 0; I < Bin.size(); ++I) {
    // An object retired at epoch E may still be referenced by threads pinned
    // at E; it is safe once the minimum active epoch exceeds E.
    if (Bin[I].Epoch < SafeEpoch) {
      Bin[I].D(Bin[I].Ptr);
      Freed.fetch_add(1, std::memory_order_relaxed);
    } else {
      Bin[Kept++] = Bin[I];
    }
  }
  Bin.resize(Kept);
}

void EpochManager::collect() {
  ThreadState &TS = state();
  if (TS.InCollect)
    return; // re-entered from a deleter; the outer collect finishes the job
  // Try to advance the global epoch: allowed when every pinned thread has
  // observed the current epoch.
  uint64_t Current = GlobalEpoch.load(std::memory_order_seq_cst);
  if (minActiveEpoch() == Current)
    GlobalEpoch.compare_exchange_strong(Current, Current + 1,
                                        std::memory_order_seq_cst);

  uint64_t Safe = minActiveEpoch();
  TS.InCollect = true;
  freeUpTo(TS.Bin, Safe);
  {
    std::lock_guard<std::mutex> Lock(OrphanMutex);
    freeUpTo(OrphanBin, Safe);
  }
  TS.InCollect = false;
}

void EpochManager::drainForTesting() {
  {
    std::lock_guard<std::mutex> Lock(SlotsMutex);
    for ([[maybe_unused]] Slot *S : Slots)
      assert(S->LocalEpoch.load(std::memory_order_seq_cst) == Unpinned &&
             "drainForTesting with a pinned thread");
  }
  // Two epoch advances make every retirement strictly older than the
  // minimum active epoch.
  collect();
  collect();
  ThreadState &TS = state();
  uint64_t Max = ~static_cast<uint64_t>(0);
  TS.InCollect = true;
  freeUpTo(TS.Bin, Max);
  {
    std::lock_guard<std::mutex> Lock(OrphanMutex);
    freeUpTo(OrphanBin, Max);
  }
  TS.InCollect = false;
}

std::size_t EpochManager::pendingForTesting() {
  std::size_t N = state().Bin.size();
  std::lock_guard<std::mutex> Lock(OrphanMutex);
  return N + OrphanBin.size();
}
