//===- wstm/VersionedLock.h - Striped versioned write locks ----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned write locks for the word-based STM baseline. Each lock word
/// holds either `version << 1` (unlocked) or `owner | 1` (locked). A global
/// striped table maps memory addresses to locks, which is the defining
/// difference from the paper's object-based STM: metadata lives *beside*
/// the heap in a hash-indexed table rather than inside each object, so
/// every word-sized access pays its own barrier.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_WSTM_VERSIONEDLOCK_H
#define OTM_WSTM_VERSIONEDLOCK_H

#include <atomic>
#include <cstdint>

namespace otm {
namespace wstm {

class VersionedLock {
public:
  /// Lock word snapshot helpers.
  static bool isLocked(uint64_t W) { return (W & 1) != 0; }
  static uint64_t versionOf(uint64_t W) { return W >> 1; }

  uint64_t load() const { return Word.load(std::memory_order_acquire); }

  /// Attempts to lock; on success returns true and stores the pre-lock
  /// version in \p SavedVersion.
  bool tryLock(uint64_t &SavedVersion, uintptr_t OwnerTag) {
    uint64_t W = Word.load(std::memory_order_acquire);
    if (isLocked(W))
      return false;
    if (!Word.compare_exchange_strong(W, OwnerTag | 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire))
      return false;
    SavedVersion = versionOf(W);
    return true;
  }

  /// Releases the lock, publishing \p NewVersion.
  void unlockToVersion(uint64_t NewVersion) {
    Word.store(NewVersion << 1, std::memory_order_release);
  }

private:
  std::atomic<uint64_t> Word{0};
};

/// Global striped lock table (2^16 stripes by default). Addresses of
/// distinct cells may alias to the same stripe; the STM handles that like
/// any other conflict (false sharing of metadata, a known cost of
/// word-based designs that E2 quantifies).
class LockTable {
public:
  static constexpr std::size_t Log2Stripes = 16;
  static constexpr std::size_t NumStripes = std::size_t(1) << Log2Stripes;

  static LockTable &global() {
    static LockTable *T = new LockTable();
    return *T;
  }

  VersionedLock &lockFor(const void *Addr) {
    uint64_t H = reinterpret_cast<uintptr_t>(Addr);
    H ^= H >> 33;
    H *= 0xff51afd7ed558ccdULL;
    H ^= H >> 29;
    return Locks[H & (NumStripes - 1)];
  }

  std::size_t indexOf(const VersionedLock *L) const { return L - Locks; }

private:
  LockTable() = default;
  VersionedLock Locks[NumStripes];
};

} // namespace wstm
} // namespace otm

#endif // OTM_WSTM_VERSIONEDLOCK_H
