//===- wstm/WordStm.h - TL2-style word-based STM baseline ------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A word-granularity STM in the TL2 style: global version clock, striped
/// versioned write locks, per-read validation against the transaction's
/// read version, lazy (buffered) writes applied at commit under the locks.
///
/// This is the *baseline* the paper's object-based direct-update STM is
/// compared against (experiment E2): every word-sized access pays a barrier
/// and a lock-table probe, whereas the object STM amortizes one open over
/// all accesses to the object's fields.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_WSTM_WORDSTM_H
#define OTM_WSTM_WORDSTM_H

#include "gc/EpochManager.h"
#include "obs/AbortSites.h"
#include "obs/PhaseProfile.h"
#include "obs/TxObs.h"
#include "stm/Field.h"
#include "stm/TxStats.h"
#include "stm/TxManager.h" // shared process-wide TxConfig (policy knobs)
#include "support/Backoff.h"
#include "support/ChunkedVector.h"
#include "support/Compiler.h"
#include "txn/Htm.h"
#include "txn/RetryExecutor.h"
#include "wstm/VersionedLock.h"
#include "wstm/WriteSet.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

namespace otm {
namespace wstm {

/// Word-based transactional cell; reuses stm::Field's relaxed-atomic
/// storage so the two STMs can share container layouts.
template <typename T> using WCell = stm::Field<T>;

/// Thrown on conflict; caught by WordStm::atomic.
struct WAbort {};

class WTxManager;

namespace detail {
/// The calling thread's descriptor, or nullptr before its first
/// transaction (same constinit-TLS fast path as stm::detail::CurrentTxPtr).
extern constinit thread_local WTxManager *CurrentWTxPtr;
} // namespace detail

/// Per-thread word-STM transaction descriptor.
class WTxManager {
public:
  static WTxManager &current() {
    WTxManager *Tx = detail::CurrentWTxPtr;
    if (OTM_UNLIKELY(!Tx))
      return currentSlow();
    return *Tx;
  }

  /// Global version clock shared by all word-STM transactions.
  static std::atomic<uint64_t> &clock();

  void begin() {
    if (Depth++ != 0) {
      ++Stats.SubsumedTx; // flattened, like TxManager::begin
      return;
    }
    ActiveConfig = stm::TxManager::config();
    ReadVersion = clock().load(std::memory_order_acquire);
    EPin.pin(); // nested under RetryController's pre-pin on executor paths
    ++Stats.Starts;
    Obs.onBegin(obs::AuxWordStm);
  }

  /// TL2 read barrier: pre-validate lock, load, post-validate lock.
  template <typename T> T read(const WCell<T> &Cell) {
    assert(inTx() && "wstm read outside transaction");
#if OTM_HTM
    if (OTM_UNLIKELY(HtmMode)) {
      // Hardware path: the transactional load of the stripe word is the
      // whole protocol — any software locker's CAS aborts this region. No
      // read set, no post-validate. A currently-locked stripe means a
      // software commit is mid-flight; yield to it explicitly.
      ++Stats.OpensForRead;
      if (OTM_UNLIKELY(
              VersionedLock::isLocked(LockTable::global().lockFor(&Cell).load())))
        txn::htm::abortWith<txn::htm::CodeLocked>();
      return Cell.load();
    }
#endif
    ++Stats.OpensForRead;
    OTM_TRACE_OPEN_EVENT(Obs.Ring, obs::EventKind::OpenForRead, &Cell,
                    obs::AuxWordStm);
    OTM_PHASE_OPEN_SCOPE(Obs.Sampling, Stats.PhaseOpenCycles);
    uint64_t Buffered;
    if (!Writes.empty() && Writes.lookup(&Cell, Buffered))
      return fromBits<T>(Buffered); // read-own-write
    VersionedLock &Lock = LockTable::global().lockFor(&Cell);
    uint64_t L1 = Lock.load();
    if (OTM_UNLIKELY(VersionedLock::isLocked(L1) ||
                     VersionedLock::versionOf(L1) > ReadVersion))
      abortOnRead(&Cell, L1);
    T Value = Cell.load();
    uint64_t L2 = Lock.load();
    if (OTM_UNLIKELY(L1 != L2))
      abortOnRead(&Cell, L2);
    ReadSet.emplaceBack(&Lock);
    ++Stats.ReadLogAppends;
    return Value;
  }

  /// TL2 write barrier: buffer the value in the redo log.
  template <typename T> void write(WCell<T> &Cell, T Value) {
    assert(inTx() && "wstm write outside transaction");
#if OTM_HTM
    if (OTM_UNLIKELY(HtmMode)) {
      // Hardware path: write in place and advance the stripe version
      // speculatively, so software readers that raced past us revalidate
      // against the bumped version when we commit. One clock stamp per
      // region, fetched lazily — the RMW joins the transaction, so a
      // surviving region held the clock's latest value at commit.
      ++Stats.OpensForUpdate;
      VersionedLock &Lock = LockTable::global().lockFor(&Cell);
      if (OTM_UNLIKELY(VersionedLock::isLocked(Lock.load())))
        txn::htm::abortWith<txn::htm::CodeLocked>();
      Lock.unlockToVersion(htmStamp());
      Cell.store(Value);
      return;
    }
#endif
    ++Stats.OpensForUpdate;
    OTM_TRACE_OPEN_EVENT(Obs.Ring, obs::EventKind::OpenForUpdate, &Cell,
                    obs::AuxWordStm);
    OTM_PHASE_OPEN_SCOPE(Obs.Sampling, Stats.PhaseOpenCycles);
    Writes.put(&Cell, toBits(Value), &applyCell<T>);
  }

  /// Registers a transaction-locally allocated object (deleted on abort).
  template <typename T> void recordAlloc(T *Obj) {
#if OTM_HTM
    if (OTM_UNLIKELY(HtmMode))
      txn::htm::abortWith<txn::htm::CodeUnsupported>();
#endif
    Allocs.emplaceBack(static_cast<void *>(Obj),
                       +[](void *P) { delete static_cast<T *>(P); },
                       /*FreeOnCommit=*/false);
    ++Stats.Allocations;
  }

  /// Defers deletion of \p Obj to a successful commit (epoch-retired).
  template <typename T> void retireOnCommit(T *Obj) {
#if OTM_HTM
    if (OTM_UNLIKELY(HtmMode))
      txn::htm::abortWith<txn::htm::CodeUnsupported>();
#endif
    Allocs.emplaceBack(static_cast<void *>(Obj),
                       +[](void *P) { delete static_cast<T *>(P); },
                       /*FreeOnCommit=*/true);
    ++Stats.Retires;
  }

  bool tryCommit();

  /// Rolls back the attempt (discard redo log, free allocations). \p
  /// AuxCause is the obs::AuxCause* code reported to the tracer.
  void rollbackAttempt(uint16_t AuxCause = obs::AuxCauseValidation);

  bool inTx() const { return Depth > 0; }

  /// Process-unique site id for abort attribution (locked stripes encode
  /// the owner descriptor, which is leaked, so this is always derefable).
  uint32_t siteId() const { return Obs.SiteId; }

  stm::TxStats &stats() { return Stats; }
  void flushStats() {
    stm::GlobalTxStats::instance().add(Stats);
    Stats.reset();
  }

  /// Contention-management state (read cross-thread by attackers that find
  /// this descriptor's tag in a locked stripe).
  txn::CmTxState &cmState() { return CmState; }

#if OTM_HTM
  // Hardware (RTM) execution mode — see DESIGN.md §3.12 and the matching
  // surface on stm::TxManager. The executor calls prepare/unpin outside
  // the region and enter/commit inside it.
  bool htmEligible() { return true; }
  bool inHtmMode() const { return HtmMode; }
  void htmPrepare() {
    ++Stats.HtmAttempts;
    EPin.pin(); // must precede xbegin: a speculative pin protects nothing
  }
  void htmUnpin() { EPin.unpin(); }
  void htmEnter() {
    Depth = 1;
    HtmMode = true;
    HtmStamped = false;
    ++Stats.Starts;
    Obs.onBegin(obs::AuxWordStm);
  }
  void htmCommit() {
    ++Stats.Commits;
    ++Stats.HtmCommits; // inside the region: rolls back with it, so exact
    Obs.onCommit(obs::AuxWordStm, Stats.CommitTscCycles,
                 Stats.RetriesPerCommit);
    HtmMode = false;
    Depth = 0;
  }
  void htmAbortReset() {
    // The region's speculative state (including htmEnter's effects) is
    // already gone; only the non-speculative flags need clearing.
    HtmMode = false;
    Depth = 0;
  }
  void htmNoteUserAbort() {
    // Unreachable today (the word STM has no user-abort surface), but the
    // executor contract requires the hook; account it like a software
    // no-retry abort.
    ++Stats.Starts;
    ++Stats.Aborts;
    ++Stats.AbortsByUser;
    Obs.onAbort(obs::AuxCauseUser, obs::AuxWordStm);
  }
#endif

private:
  WTxManager() = default;

  /// Creates and registers this thread's descriptor (first use only).
  static WTxManager &currentSlow();

  /// Owner site encoded in a locked stripe word, or 0 when unlocked.
  static uint32_t ownerSiteOf(uint64_t LockWord) {
    if (!VersionedLock::isLocked(LockWord))
      return 0;
    return reinterpret_cast<const WTxManager *>(LockWord & ~uint64_t(1))
        ->siteId();
  }

  [[noreturn]] void abortOnRead(const void *Addr, uint64_t LockWord) {
    ++Stats.AbortsOnValidation;
    obs::AbortSites::instance().record(Addr, obs::AbortCause::Validation,
                                       ownerSiteOf(LockWord), siteId());
    throw WAbort{};
  }

  template <typename T> static uint64_t toBits(T Value) {
    uint64_t Bits = 0;
    std::memcpy(&Bits, &Value, sizeof(T));
    return Bits;
  }

  template <typename T> static T fromBits(uint64_t Bits) {
    T Value;
    std::memcpy(&Value, &Bits, sizeof(T));
    return Value;
  }

  template <typename T> static void applyCell(void *Addr, uint64_t Bits) {
    static_cast<WCell<T> *>(Addr)->restoreFromBits(Bits);
  }

  struct AllocRecord {
    void *Raw = nullptr;
    void (*Destroy)(void *) = nullptr;
    bool FreeOnCommit = false;
  };

  /// Releases the first \p N acquired commit locks to their saved versions.
  void unlockFirstN(std::size_t N);
  /// Clears all per-attempt state and unpins the epoch.
  void finish();

#if OTM_HTM
  /// One global-clock stamp per hardware region, fetched lazily on the
  /// first write barrier. The fetch_add joins the region: if anyone else
  /// touches the clock before we commit, we abort, so a surviving region's
  /// stamp is effectively a commit-time stamp — unique and monotone.
  uint64_t htmStamp() {
    if (!HtmStamped) {
      HtmStampVal = 1 + clock().fetch_add(1, std::memory_order_acq_rel);
      HtmStamped = true;
    }
    return HtmStampVal;
  }
#endif

  unsigned Depth = 0;
  uint64_t ReadVersion = 0;
  stm::TxConfig ActiveConfig;
  WriteSet Writes;
  ChunkedVector<VersionedLock *> ReadSet;
  ChunkedVector<AllocRecord> Allocs;
  std::vector<VersionedLock *> LockOrder;  // scratch for commit
  std::vector<uint64_t> SavedVersions;     // pre-lock versions, commit scratch
  stm::TxStats Stats;
  obs::TxObs Obs;
  txn::CmTxState CmState;
#if OTM_HTM
  bool HtmMode = false;
  bool HtmStamped = false;
  uint64_t HtmStampVal = 0;
#endif

  /// Cached per-thread pin handle (same rationale as stm::TxManager).
  gc::EpochManager::ThreadPin EPin = gc::EpochManager::global().threadPin();
};

/// Binds txn::RetryExecutor to the word STM: WAbort is the abort protocol,
/// read/write barriers are the karma work measure. Policy knobs are shared
/// with the object STM through the process-wide TxConfig.
struct WstmRetryAdapter {
  using Manager = WTxManager;

  static Manager &manager() { return WTxManager::current(); }
  static bool inTx(Manager &Tx) { return Tx.inTx(); }
  static void noteSubsumed(Manager &Tx) { ++Tx.stats().SubsumedTx; }
  static void begin(Manager &Tx) { Tx.begin(); }

  template <typename FnType>
  static txn::AttemptOutcome attempt(Manager &Tx, FnType &Fn) {
    try {
      Fn(Tx);
      if (Tx.tryCommit())
        return txn::AttemptOutcome::Committed;
      return txn::AttemptOutcome::RetryAbort;
    } catch (const WAbort &) {
      Tx.rollbackAttempt(obs::AuxCauseValidation);
      return txn::AttemptOutcome::RetryAbort;
    } catch (...) {
      Tx.rollbackAttempt(obs::AuxCauseUser);
      throw;
    }
  }

  static uint64_t opCount(Manager &Tx) {
    const stm::TxStats &S = Tx.stats();
    return S.OpensForRead + S.OpensForUpdate;
  }
  static txn::CmTxState &cmState(Manager &Tx) { return Tx.cmState(); }
  static txn::CmPolicy policy() {
    return stm::TxManager::config().ContentionPolicy;
  }
  static unsigned fallbackAfter() {
    return stm::TxManager::config().SerialFallbackAfter;
  }
  static uint64_t seedMix() { return 0x2545f4914f6cdd1dULL; }
  static obs::Histogram *backoffHistogram(Manager &Tx) {
    return &Tx.stats().PhaseBackoffCycles;
  }

#if OTM_HTM
  // Hardware rung (DESIGN.md §3.12); same shape as StmRetryAdapter's.
  static unsigned htmAttempts() {
    return stm::TxManager::config().HtmAttempts;
  }
  static bool htmEligible(Manager &Tx) { return Tx.htmEligible(); }
  static void htmPrepare(Manager &Tx) { Tx.htmPrepare(); }
  static void htmEnter(Manager &Tx) { Tx.htmEnter(); }
  static void htmCommit(Manager &Tx) { Tx.htmCommit(); }
  static void htmAbortReset(Manager &Tx) { Tx.htmAbortReset(); }
  static void htmUnpin(Manager &Tx) { Tx.htmUnpin(); }
  static void htmUserAbort(Manager &Tx) { Tx.htmNoteUserAbort(); }
#endif
};

/// Public entry point mirroring stm::Stm::atomic for the baseline STM.
class WordStm {
public:
  template <typename FnType> static void atomic(FnType &&Fn) {
    txn::RetryExecutor<WstmRetryAdapter>::atomic(std::forward<FnType>(Fn));
  }

  template <typename FnType> static auto atomicResult(FnType &&Fn) {
    return txn::RetryExecutor<WstmRetryAdapter>::atomicResult(
        std::forward<FnType>(Fn));
  }
};

} // namespace wstm
} // namespace otm

#endif // OTM_WSTM_WORDSTM_H
