//===- wstm/WordStm.cpp - TL2-style word-based STM -----------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "wstm/WordStm.h"

#include "txn/CmStats.h"

#include <algorithm>
#include <thread>

using namespace otm;
using namespace otm::wstm;

constinit thread_local WTxManager *otm::wstm::detail::CurrentWTxPtr = nullptr;

WTxManager &WTxManager::currentSlow() {
  // Leaked per-thread descriptor (same rationale as stm::TxManager).
  WTxManager *Tx = new WTxManager();
  Tx->Obs.attachThread();
  detail::CurrentWTxPtr = Tx;
  return *Tx;
}

std::atomic<uint64_t> &WTxManager::clock() {
  static std::atomic<uint64_t> Clock{0};
  return Clock;
}

bool WTxManager::tryCommit() {
  assert(inTx() && "tryCommit outside transaction");
  if (Depth > 1) {
    --Depth;
    return true;
  }

  // Read-only fast path: every read was validated against ReadVersion when
  // it happened, so the snapshot is already consistent. Deferred frees
  // still take effect — a committed transaction may delete without writing.
  if (Writes.empty()) {
    Allocs.forEach([](AllocRecord &R) {
      if (R.FreeOnCommit)
        gc::EpochManager::global().retire(R.Raw, R.Destroy);
    });
    ++Stats.Commits;
    Obs.onCommit(obs::AuxWordStm, Stats.CommitTscCycles,
                 Stats.RetriesPerCommit);
    finish();
    return true;
  }

  // Phase 1: lock the write set. Stripes are deduplicated and locked in
  // table order, which makes the locking phase deadlock-free.
  LockOrder.clear();
  Writes.forEach([&](WriteSet::Entry &E) {
    LockOrder.push_back(&LockTable::global().lockFor(E.Addr));
  });
  std::sort(LockOrder.begin(), LockOrder.end());
  LockOrder.erase(std::unique(LockOrder.begin(), LockOrder.end()),
                  LockOrder.end());

  // Stripe-lock arbitration is delegated to the configured contention
  // manager, exactly like the object STM's waitForUnowned: one decision per
  // wait round of ~32 spins, with the round budget derived from
  // ConflictSpins (default 128 == the old fixed spin count here).
  const txn::ContentionManager &CM =
      txn::managerFor(ActiveConfig.ContentionPolicy);
  constexpr unsigned RoundSpins = 32;
  const unsigned BudgetRounds =
      (ActiveConfig.ConflictSpins + RoundSpins - 1) / RoundSpins;

  uintptr_t OwnerTag = reinterpret_cast<uintptr_t>(this) & ~uintptr_t(1);
  std::size_t Acquired = 0;
  {
    // CommitLock covers the whole acquisition loop, stripe waits included;
    // an abort inside the loop records the partial scope on the way out.
    obs::PhaseScope LockPh(Obs.Sampling, Stats.PhaseCommitLockCycles);
    for (VersionedLock *Lock : LockOrder) {
      uint64_t Saved;
      unsigned Round = 0;
      while (!Lock->tryLock(Saved, OwnerTag)) {
        uint64_t W = Lock->load();
        txn::ConflictChoice Choice = txn::ConflictChoice::Wait;
        if (VersionedLock::isLocked(W))
          Choice = CM.onConflict(
              CmState,
              reinterpret_cast<WTxManager *>(W & ~uint64_t(1))->CmState, Round,
              BudgetRounds);
        if (Choice == txn::ConflictChoice::Wait) {
          if (Round++ == 0)
            txn::CmStats::instance().bumpConflictWaits();
          for (unsigned Spin = 0; Spin < RoundSpins - 1; ++Spin)
            cpuRelax();
          std::this_thread::yield();
          continue;
        }
        if (Choice == txn::ConflictChoice::AbortSelfPriority)
          txn::CmStats::instance().bumpPriorityAborts();
        unlockFirstN(Acquired);
        ++Stats.AbortsOnConflict;
        obs::AbortSites::instance().record(Lock, obs::AbortCause::Conflict,
                                           ownerSiteOf(Lock->load()), siteId());
        rollbackAttempt(obs::AuxCauseConflict);
        return false;
      }
      // Saved is already a decoded version number (tryLock strips the lock
      // encoding). This pre-lock check is the only witness of commits that
      // happened to this stripe while we slept: once we own the lock, the
      // read-set validation below exempts self-owned stripes.
      if (Saved > ReadVersion) {
        Lock->unlockToVersion(Saved);
        unlockFirstN(Acquired);
        ++Stats.AbortsOnValidation;
        obs::AbortSites::instance().record(Lock, obs::AbortCause::Validation, 0,
                                           siteId());
        rollbackAttempt(obs::AuxCauseValidation);
        return false;
      }
      SavedVersions.push_back(Saved);
      ++Acquired;
    }
  }

  // Phase 2: advance the clock and validate the read set.
  uint64_t WriteVersion = clock().fetch_add(1, std::memory_order_acq_rel) + 1;
  if (WriteVersion != ReadVersion + 1) { // else nothing else committed
    obs::PhaseScope ValidatePh(Obs.Sampling, Stats.PhaseValidateCycles);
    bool Valid = true;
    VersionedLock *FirstBad = nullptr;
    uint64_t FirstBadWord = 0;
    ReadSet.forEach([&](VersionedLock *Lock) {
      uint64_t W = Lock->load();
      bool Ok = true;
      if (VersionedLock::isLocked(W)) {
        // Locked by us is fine (we hold write locks); by others is not.
        if ((W & ~uint64_t(1)) != OwnerTag)
          Ok = false;
      } else if (VersionedLock::versionOf(W) > ReadVersion) {
        Ok = false;
      }
      if (!Ok && Valid) {
        Valid = false;
        FirstBad = Lock;
        FirstBadWord = W;
      }
    });
    if (!Valid) {
      for (std::size_t I = 0; I < Acquired; ++I)
        LockOrder[I]->unlockToVersion(SavedVersions[I]);
      SavedVersions.clear();
      ++Stats.AbortsOnValidation;
      obs::AbortSites::instance().record(FirstBad, obs::AbortCause::Validation,
                                         ownerSiteOf(FirstBadWord), siteId());
      rollbackAttempt(obs::AuxCauseValidation);
      return false;
    }
  }

  // Phase 3: write back and release with the new version.
  {
    obs::PhaseScope WriteBackPh(Obs.Sampling, Stats.PhaseWriteBackCycles);
    Writes.applyAll();
    for (VersionedLock *Lock : LockOrder)
      Lock->unlockToVersion(WriteVersion);
  }
  SavedVersions.clear();

  Allocs.forEach([](AllocRecord &R) {
    if (R.FreeOnCommit)
      gc::EpochManager::global().retire(R.Raw, R.Destroy);
  });
  ++Stats.Commits;
  Obs.onCommit(obs::AuxWordStm, Stats.CommitTscCycles, Stats.RetriesPerCommit);
  finish();
  return true;
}

void WTxManager::rollbackAttempt(uint16_t AuxCause) {
  assert(inTx() && "rollbackAttempt outside transaction");
  // Writes were buffered, so memory is untouched; just drop the logs and
  // free this attempt's allocations.
  Allocs.forEach([](AllocRecord &R) {
    if (!R.FreeOnCommit)
      gc::EpochManager::global().retire(R.Raw, R.Destroy);
  });
  ++Stats.Aborts;
  Obs.onAbort(AuxCause, obs::AuxWordStm);
  finish();
}

void WTxManager::unlockFirstN(std::size_t N) {
  for (std::size_t I = 0; I < N; ++I)
    LockOrder[I]->unlockToVersion(SavedVersions[I]);
  SavedVersions.clear();
}

void WTxManager::finish() {
  Writes.clear();
  ReadSet.clear();
  Allocs.clear();
  LockOrder.clear();
  Depth = 0;
  EPin.unpin();
}
