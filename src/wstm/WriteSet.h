//===- wstm/WriteSet.h - Redo-log write set with lookup --------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The word-based STM buffers writes in a redo log until commit (lazy
/// versioning). Reads must see earlier writes of the same transaction, so
/// the log is paired with an open-addressing index from cell address to
/// log position.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_WSTM_WRITESET_H
#define OTM_WSTM_WRITESET_H

#include "support/ChunkedVector.h"

#include <cstdint>
#include <vector>

namespace otm {
namespace wstm {

class WriteSet {
public:
  struct Entry {
    void *Addr = nullptr;
    uint64_t Bits = 0;
    void (*Apply)(void *Addr, uint64_t Bits) = nullptr;
  };

  WriteSet() : Index(InitialCapacity, emptySlot()) {}

  /// Records (or overwrites) the pending value for \p Addr.
  void put(void *Addr, uint64_t Bits, void (*Apply)(void *, uint64_t)) {
    std::size_t Slot = findSlot(Addr);
    if (Index[Slot].Gen == Gen && Index[Slot].Addr == Addr) {
      Log[Index[Slot].LogPos].Bits = Bits;
      return;
    }
    if ((Log.size() + 1) * 4 >= Index.size() * 3) {
      grow();
      Slot = findSlot(Addr);
    }
    Index[Slot] = {Addr, Log.size(), Gen};
    Log.emplaceBack(Addr, Bits, Apply);
  }

  /// Looks up a pending value; returns true and fills \p Bits if found.
  bool lookup(const void *Addr, uint64_t &Bits) const {
    std::size_t Slot = findSlot(const_cast<void *>(Addr));
    if (Index[Slot].Gen == Gen && Index[Slot].Addr == Addr) {
      Bits = Log[Index[Slot].LogPos].Bits;
      return true;
    }
    return false;
  }

  /// Applies all pending writes to memory (commit write-back phase).
  void applyAll() {
    Log.forEach([](Entry &E) { E.Apply(E.Addr, E.Bits); });
  }

  template <typename FnType> void forEach(FnType Fn) { Log.forEach(Fn); }

  std::size_t size() const { return Log.size(); }
  bool empty() const { return Log.empty(); }

  void clear() {
    Log.clear();
    ++Gen;
  }

private:
  static constexpr std::size_t InitialCapacity = 128; // power of two

  struct IndexSlot {
    void *Addr = nullptr;
    std::size_t LogPos = 0;
    uint64_t Gen = 0;
  };
  static IndexSlot emptySlot() { return IndexSlot(); }

  std::size_t findSlot(void *Addr) const {
    std::size_t Mask = Index.size() - 1;
    uint64_t H = reinterpret_cast<uintptr_t>(Addr);
    H ^= H >> 33;
    H *= 0xff51afd7ed558ccdULL;
    H ^= H >> 33;
    std::size_t Slot = static_cast<std::size_t>(H) & Mask;
    while (Index[Slot].Gen == Gen && Index[Slot].Addr != Addr)
      Slot = (Slot + 1) & Mask;
    return Slot;
  }

  void grow() {
    Index.assign(Index.size() * 2, emptySlot());
    ++Gen;
    for (std::size_t I = 0, E = Log.size(); I != E; ++I) {
      std::size_t Slot = findSlot(Log[I].Addr);
      Index[Slot] = {Log[I].Addr, I, Gen};
    }
  }

  ChunkedVector<Entry> Log;
  mutable std::vector<IndexSlot> Index;
  uint64_t Gen = 1;
};

} // namespace wstm
} // namespace otm

#endif // OTM_WSTM_WRITESET_H
