//===- wstm/WriteSet.h - Redo-log write set with lookup --------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The word-based STM buffers writes in a redo log until commit (lazy
/// versioning). Reads must see earlier writes of the same transaction, so
/// the log is paired with an open-addressing index from cell address to
/// log position.
///
/// The index is split for probe density: a packed array of 64-bit words
/// (48 significant address bits tagged with a 16-bit generation, same slot
/// format as stm::HashFilter) that probing touches, and a parallel array
/// of log positions read once on a hit. Probes therefore pull 8 slots per
/// cache line instead of 2 with the old {addr, pos, gen} record. clear()
/// is O(1) via the generation; a tag wrap (every 65535 transactions)
/// scrubs the packed array.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_WSTM_WRITESET_H
#define OTM_WSTM_WRITESET_H

#include "support/ChunkedVector.h"
#include "support/Compiler.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

namespace otm {
namespace wstm {

class WriteSet {
public:
  struct Entry {
    void *Addr = nullptr;
    uint64_t Bits = 0;
    void (*Apply)(void *Addr, uint64_t Bits) = nullptr;
  };

  WriteSet()
      : Keys(InitialCapacity, 0), Pos(InitialCapacity, 0),
        GrowAt(growThreshold(InitialCapacity)) {}

  /// Records (or overwrites) the pending value for \p Addr.
  void put(void *Addr, uint64_t Bits, void (*Apply)(void *, uint64_t)) {
    uintptr_t Key = keyFor(Addr);
    std::size_t Slot = findSlot(Key);
    if (Keys[Slot] == ((Gen << KeyBits) | Key)) {
      Log[Pos[Slot]].Bits = Bits;
      return;
    }
    if (OTM_UNLIKELY(Log.size() >= GrowAt)) {
      grow();
      Slot = findSlot(Key);
    }
    Keys[Slot] = (Gen << KeyBits) | Key;
    Pos[Slot] = static_cast<uint32_t>(Log.size());
    Log.emplaceBack(Addr, Bits, Apply);
  }

  /// Looks up a pending value; returns true and fills \p Bits if found.
  bool lookup(const void *Addr, uint64_t &Bits) const {
    uintptr_t Key = keyFor(Addr);
    std::size_t Slot = findSlot(Key);
    if (Keys[Slot] == ((Gen << KeyBits) | Key)) {
      Bits = Log[Pos[Slot]].Bits;
      return true;
    }
    return false;
  }

  /// Applies all pending writes to memory (commit write-back phase).
  void applyAll() {
    Log.forEach([](Entry &E) { E.Apply(E.Addr, E.Bits); });
  }

  template <typename FnType> void forEach(FnType Fn) { Log.forEach(Fn); }

  std::size_t size() const { return Log.size(); }
  bool empty() const { return Log.empty(); }

  void clear() {
    Log.clear();
    if (OTM_UNLIKELY(++Gen > MaxTag)) {
      Gen = 1;
      std::fill(Keys.begin(), Keys.end(), 0);
    }
  }

private:
  static constexpr std::size_t InitialCapacity = 128; // power of two
  static constexpr unsigned KeyBits = 48;
  static constexpr uint64_t KeyMask = (uint64_t{1} << KeyBits) - 1;
  static constexpr uint64_t TagMask = ~KeyMask;
  static constexpr uint64_t MaxTag = 0xffff;

  static std::size_t growThreshold(std::size_t Capacity) {
    return Capacity * 5 / 8;
  }

  static uintptr_t keyFor(const void *Addr) {
    uintptr_t Key = reinterpret_cast<uintptr_t>(Addr);
    assert((Key >> KeyBits) == 0 && "pointer exceeds 48 significant bits");
    return Key;
  }

  /// Slot holding \p Key under the current generation, or the first
  /// empty/stale slot of its probe chain. Folded multiplicative hash, same
  /// as stm::HashFilter::hash: the read-own-write check sits on every wstm
  /// read barrier, so one multiply beats a finalizer chain.
  std::size_t findSlot(uintptr_t Key) const {
    std::size_t Mask = Keys.size() - 1;
    uint64_t Tagged = (Gen << KeyBits) | Key;
    uint64_t H = static_cast<uint64_t>(Key) * 0x9e3779b97f4a7c15ULL;
    std::size_t Slot = static_cast<std::size_t>(H ^ (H >> 21) ^ (H >> 43)) & Mask;
    for (;;) {
      uint64_t S = Keys[Slot];
      if (S == Tagged || (S & TagMask) != (Gen << KeyBits))
        return Slot;
      Slot = (Slot + 1) & Mask;
    }
  }

  OTM_NOINLINE void grow() {
    Keys.assign(Keys.size() * 2, 0);
    Pos.assign(Pos.size() * 2, 0);
    GrowAt = growThreshold(Keys.size());
    // Rebuild under the same generation: the zeroed table has no live tags.
    for (std::size_t I = 0, E = Log.size(); I != E; ++I) {
      uintptr_t Key = keyFor(Log[I].Addr);
      std::size_t Slot = findSlot(Key);
      Keys[Slot] = (Gen << KeyBits) | Key;
      Pos[Slot] = static_cast<uint32_t>(I);
    }
  }

  ChunkedVector<Entry> Log;
  std::vector<uint64_t> Keys; ///< packed addr|gen probe array
  std::vector<uint32_t> Pos;  ///< log position per live slot
  uint64_t Gen = 1;
  std::size_t GrowAt;
};

} // namespace wstm
} // namespace otm

#endif // OTM_WSTM_WRITESET_H
