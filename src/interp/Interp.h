//===- interp/Interp.h - TMIR interpreter over the STM ---------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes TMIR against the real STM runtime. The interpreter plays the
/// role of the compiled program in the paper's evaluation: lowered modules
/// run their barrier instructions through stm::TxManager, so the dynamic
/// barrier counts, abort rates and log sizes it reports are those of real
/// transactions (experiments E1, E5, E8).
///
/// Execution pipeline: at construction the module is decoded once into a
/// dense, pre-resolved bytecode (interp/Decoder.h) specialized for the
/// configured TxMode, then executed by one of two loops over the same
/// decoded stream:
///
///   - a computed-goto direct-threaded loop (default on GCC/Clang; build
///     with -DOTM_INTERP_THREADED=0 or set Options::Dispatch /
///     OTM_INTERP_DISPATCH=switch to opt out), and
///   - a portable switch loop, which doubles as the differential oracle
///     for the threaded one.
///
/// Transaction modes:
///   - IgnoreAtomic — region markers are no-ops (sequential baseline);
///   - GlobalLock   — each region runs under one global recursive mutex
///                    (the coarse-lock baseline);
///   - ObjStm       — regions are real STM transactions with retry: at
///                    AtomicBegin the slots the decoder proved live across
///                    the region are snapshotted; a conflict or failed
///                    commit rolls the STM back and resumes from the
///                    snapshot.
///
/// Multiple threads may call run() concurrently (each gets its own frame
/// stack); the GC trigger must stay disabled in that case (see Heap).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_INTERP_INTERP_H
#define OTM_INTERP_INTERP_H

#include "interp/Bytecode.h"
#include "interp/Heap.h"
#include "tmir/IR.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace otm {
namespace interp {

/// Dynamic operation counters (process-wide, relaxed atomics). The
/// execution engine counts into a plain per-run Delta and folds it in here
/// once per run() — the atomics are off the per-instruction path.
struct DynCounts {
  std::atomic<uint64_t> Instrs{0};
  std::atomic<uint64_t> OpenRead{0};
  std::atomic<uint64_t> OpenUpdate{0};
  std::atomic<uint64_t> UndoField{0};
  std::atomic<uint64_t> UndoElem{0};
  std::atomic<uint64_t> FieldReads{0};
  std::atomic<uint64_t> FieldWrites{0};
  std::atomic<uint64_t> Calls{0};
  std::atomic<uint64_t> TxStarted{0};
  std::atomic<uint64_t> TxCommitted{0};
  std::atomic<uint64_t> TxRetried{0};

  /// Plain per-run accumulator; one lives on each run()'s stack.
  struct Delta {
    uint64_t Instrs = 0;
    uint64_t OpenRead = 0;
    uint64_t OpenUpdate = 0;
    uint64_t UndoField = 0;
    uint64_t UndoElem = 0;
    uint64_t FieldReads = 0;
    uint64_t FieldWrites = 0;
    uint64_t Calls = 0;
    uint64_t TxStarted = 0;
    uint64_t TxCommitted = 0;
    uint64_t TxRetried = 0;
  };

  void add(const Delta &D) {
    Instrs.fetch_add(D.Instrs, std::memory_order_relaxed);
    OpenRead.fetch_add(D.OpenRead, std::memory_order_relaxed);
    OpenUpdate.fetch_add(D.OpenUpdate, std::memory_order_relaxed);
    UndoField.fetch_add(D.UndoField, std::memory_order_relaxed);
    UndoElem.fetch_add(D.UndoElem, std::memory_order_relaxed);
    FieldReads.fetch_add(D.FieldReads, std::memory_order_relaxed);
    FieldWrites.fetch_add(D.FieldWrites, std::memory_order_relaxed);
    Calls.fetch_add(D.Calls, std::memory_order_relaxed);
    TxStarted.fetch_add(D.TxStarted, std::memory_order_relaxed);
    TxCommitted.fetch_add(D.TxCommitted, std::memory_order_relaxed);
    TxRetried.fetch_add(D.TxRetried, std::memory_order_relaxed);
  }

  /// Zeroes every counter. Requires quiescence: no run() may be live on
  /// any thread, or its end-of-run flush races the reset and the totals
  /// are garbage (asserted via the live-run count below). The stores are
  /// relaxed — reset is not a synchronization point.
  void reset() {
    assert(ActiveRuns.load(std::memory_order_relaxed) == 0 &&
           "DynCounts::reset() while a run() is live");
    for (std::atomic<uint64_t> *C :
         {&Instrs, &OpenRead, &OpenUpdate, &UndoField, &UndoElem,
          &FieldReads, &FieldWrites, &Calls, &TxStarted, &TxCommitted,
          &TxRetried})
      C->store(0, std::memory_order_relaxed);
  }

  /// Number of run() activations currently executing (quiescence check).
  std::atomic<uint32_t> ActiveRuns{0};
};

class Interpreter {
public:
  enum class TxMode { IgnoreAtomic, GlobalLock, ObjStm };

  /// Which execution loop run() uses. Auto resolves to the threaded loop
  /// when compiled in (honouring the OTM_INTERP_DISPATCH=threaded|switch
  /// environment override), else the switch loop.
  enum class Dispatch { Auto, Threaded, Switch };

  struct Options {
    TxMode Mode = TxMode::ObjStm;
    Dispatch Loop = Dispatch::Auto;
    /// Auto-collect when this many allocations accumulate (0 = never).
    /// Only legal for single-threaded runs.
    uint64_t GcEveryNAllocs = 0;
    /// Validate the running transaction every N instructions to bound
    /// zombie execution (0 = never).
    uint64_t ValidateEveryNInstrs = 1024;
    /// Capture `print` output instead of writing to stdout.
    bool CapturePrints = true;
    /// Testing hook: force this many rollback-and-retry cycles on every
    /// top-level atomic region before letting it commit. Deterministic,
    /// so differential tests can exercise the snapshot/restore path.
    uint32_t ForceRetries = 0;
  };

  struct RunResult {
    bool Trapped = false;
    std::string Error;
    int64_t Value = 0;
  };

  Interpreter(tmir::Module &M, Options Opts);

  /// Runs function \p Name with i64/reference arguments (refs as bits).
  RunResult run(const std::string &Name, const std::vector<int64_t> &Args);

  Heap &heap() { return TheHeap; }
  DynCounts &counts() { return Counts; }
  const std::vector<int64_t> &printedValues() const { return Printed; }
  void clearPrinted() { Printed.clear(); }

  /// True when the computed-goto loop was compiled in.
  static bool threadedDispatchAvailable();
  /// The loop this interpreter actually runs (after Auto resolution).
  bool usesThreadedDispatch() const { return UseThreaded; }

  /// Allocates an object/array usable as a run() argument (setup phases).
  HeapObject *makeObject(const std::string &ClassName);
  HeapObject *makeArray(std::size_t Length);

  /// Runs a collection now, using the current thread's frames and the
  /// current transaction's logs as roots. Single-mutator only.
  void collectGarbage();

  /// One interpreter activation record; public so the thread-local frame
  /// registry (GC roots) can refer to it.
  struct Frame;

private:
  int64_t execFunction(const DecodedFunction &DF, const int64_t *Args,
                       std::size_t NumArgs, DynCounts::Delta &D);
  int64_t execSwitchLoop(Frame &Fr, uint32_t Pc, DynCounts::Delta &D,
                         uint64_t ValidateReload);
  int64_t execThreadedLoop(Frame &Fr, uint32_t Pc, DynCounts::Delta &D,
                           uint64_t ValidateReload);
  /// Restores the owning frame's snapshot after a rolled-back attempt and
  /// sequences the retry; returns the pc to resume at (the atomic_begin).
  uint32_t failedAttemptResume(Frame &Fr, DynCounts::Delta &D);

  tmir::Module &M;
  Options Opts;
  DecodedModule DM;
  bool UseThreaded = false;
  Heap TheHeap;
  DynCounts Counts;
  std::vector<int64_t> Printed; // guarded by PrintMutex
  std::mutex PrintMutex;
};

} // namespace interp
} // namespace otm

#endif // OTM_INTERP_INTERP_H
