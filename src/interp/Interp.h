//===- interp/Interp.h - TMIR interpreter over the STM ---------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes TMIR against the real STM runtime. The interpreter plays the
/// role of the compiled program in the paper's evaluation: lowered modules
/// run their barrier instructions through stm::TxManager, so the dynamic
/// barrier counts, abort rates and log sizes it reports are those of real
/// transactions (experiments E5, E8).
///
/// Transaction modes:
///   - IgnoreAtomic — region markers are no-ops (sequential baseline);
///   - GlobalLock   — each region runs under one global recursive mutex
///                    (the coarse-lock baseline);
///   - ObjStm       — regions are real STM transactions with retry: at
///                    AtomicBegin the frame state (registers + locals +
///                    pc) is snapshotted; a conflict or failed commit
///                    rolls the STM back and resumes from the snapshot.
///
/// Multiple threads may call run() concurrently (each gets its own frame
/// stack); the GC trigger must stay disabled in that case (see Heap).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_INTERP_INTERP_H
#define OTM_INTERP_INTERP_H

#include "interp/Heap.h"
#include "tmir/IR.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace otm {
namespace interp {

/// Dynamic operation counters (process-wide, relaxed atomics).
struct DynCounts {
  std::atomic<uint64_t> Instrs{0};
  std::atomic<uint64_t> OpenRead{0};
  std::atomic<uint64_t> OpenUpdate{0};
  std::atomic<uint64_t> UndoField{0};
  std::atomic<uint64_t> UndoElem{0};
  std::atomic<uint64_t> FieldReads{0};
  std::atomic<uint64_t> FieldWrites{0};
  std::atomic<uint64_t> Calls{0};
  std::atomic<uint64_t> TxStarted{0};
  std::atomic<uint64_t> TxCommitted{0};
  std::atomic<uint64_t> TxRetried{0};

  void reset() {
    Instrs = OpenRead = OpenUpdate = UndoField = UndoElem = 0;
    FieldReads = FieldWrites = Calls = 0;
    TxStarted = TxCommitted = TxRetried = 0;
  }
};

class Interpreter {
public:
  enum class TxMode { IgnoreAtomic, GlobalLock, ObjStm };

  struct Options {
    TxMode Mode = TxMode::ObjStm;
    /// Auto-collect when this many allocations accumulate (0 = never).
    /// Only legal for single-threaded runs.
    uint64_t GcEveryNAllocs = 0;
    /// Validate the running transaction every N instructions to bound
    /// zombie execution (0 = never).
    uint64_t ValidateEveryNInstrs = 1024;
    /// Capture `print` output instead of writing to stdout.
    bool CapturePrints = true;
  };

  struct RunResult {
    bool Trapped = false;
    std::string Error;
    int64_t Value = 0;
  };

  Interpreter(tmir::Module &M, Options Opts);

  /// Runs function \p Name with i64/reference arguments (refs as bits).
  RunResult run(const std::string &Name, const std::vector<int64_t> &Args);

  Heap &heap() { return TheHeap; }
  DynCounts &counts() { return Counts; }
  const std::vector<int64_t> &printedValues() const { return Printed; }
  void clearPrinted() { Printed.clear(); }

  /// Allocates an object/array usable as a run() argument (setup phases).
  HeapObject *makeObject(const std::string &ClassName);
  HeapObject *makeArray(std::size_t Length);

  /// Runs a collection now, using the current thread's frames and the
  /// current transaction's logs as roots. Single-mutator only.
  void collectGarbage();

  /// One interpreter activation record; public so the thread-local frame
  /// registry (GC roots) can refer to it.
  struct Frame;

private:

  int64_t execFunction(tmir::Function &F, const std::vector<int64_t> &Args);
  void maybeGcAndValidate(tmir::Function &F);

  tmir::Module &M;
  Options Opts;
  Heap TheHeap;
  DynCounts Counts;
  std::vector<int64_t> Printed; // guarded by PrintMutex
  std::mutex PrintMutex;
};

} // namespace interp
} // namespace otm

#endif // OTM_INTERP_INTERP_H
