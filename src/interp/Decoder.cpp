//===- interp/Decoder.cpp - TMIR -> bytecode decoder ----------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Decoder.h"

#include "obs/Statistic.h"
#include "tmir/Liveness.h"

#include <cassert>
#include <optional>
#include <unordered_map>

using namespace otm;
using namespace otm::interp;
using namespace otm::tmir;

OTM_STATISTIC(NumFuncsDecoded, "interp-decode", "funcs-decoded",
              "functions flattened to bytecode");
OTM_STATISTIC(NumInstrsDecoded, "interp-decode", "instrs-decoded",
              "bytecode instructions emitted");
OTM_STATISTIC(NumSnapSlotsFull, "interp-decode", "region-slots-full",
              "reg+local slots a whole-frame region snapshot would copy");
OTM_STATISTIC(NumSnapSlotsLive, "interp-decode", "region-slots-live",
              "slots actually in the live-across-region snapshot windows");

namespace {

class FunctionDecoder {
public:
  FunctionDecoder(const Function &F, Interpreter::TxMode Mode)
      : F(F), Mode(Mode) {}

  DecodedFunction decode() {
    DF.Src = &F;
    DF.NumRegs = static_cast<uint32_t>(F.numRegs());
    DF.NumLocals = static_cast<uint32_t>(F.Locals.size());
    DF.LocalBase = DF.NumRegs;
    DF.ConstBase = DF.NumRegs + DF.NumLocals;

    // Flat offsets: blocks lay out in order, one DInstr per tmir::Instr
    // (the 1:1 mapping keeps dynamic instruction counts identical to the
    // tree-walking semantics).
    BlockStart.reserve(F.Blocks.size());
    uint32_t Off = 0;
    for (const auto &BB : F.Blocks) {
      BlockStart.push_back(Off);
      Off += static_cast<uint32_t>(BB->Instrs.size());
    }
    DF.Code.reserve(Off);

    for (const auto &BB : F.Blocks)
      for (std::size_t Idx = 0; Idx < BB->Instrs.size(); ++Idx)
        emit(BB->Instrs[Idx], BB->Id, Idx);

    // Slot typing for the GC: registers and locals carry their declared
    // types; constants are never references.
    DF.NumSlots = DF.ConstBase + static_cast<uint32_t>(DF.Consts.size());
    DF.RefSlot.assign(DF.NumSlots, false);
    for (uint32_t R = 0; R < DF.NumRegs; ++R)
      DF.RefSlot[R] = F.RegTypes[R].isRef();
    for (uint32_t L = 0; L < DF.NumLocals; ++L)
      DF.RefSlot[DF.LocalBase + L] = F.Locals[L].Ty.isRef();

    ++NumFuncsDecoded;
    NumInstrsDecoded += DF.Code.size();
    return std::move(DF);
  }

private:
  uint32_t constSlot(int64_t V) {
    auto [It, Inserted] = ConstIndex.try_emplace(
        V, DF.ConstBase + static_cast<uint32_t>(DF.Consts.size()));
    if (Inserted)
      DF.Consts.push_back(V);
    return It->second;
  }

  uint32_t slotOf(const Value &V) {
    switch (V.kind()) {
    case Value::Kind::Reg:
      return static_cast<uint32_t>(V.regId());
    case Value::Kind::Imm:
      return constSlot(V.immValue());
    case Value::Kind::Null:
      return constSlot(0);
    case Value::Kind::None:
      break;
    }
    assert(false && "malformed operand survived verification");
    return constSlot(0);
  }

  /// The slots live immediately before the `atomic_begin` at
  /// (\p Block, \p Idx): what a restart there may still read.
  void emitSnapshotWindow(DInstr &D, int Block, std::size_t Idx) {
    if (!LI)
      LI = computeLiveness(F);
    LiveSet Regs, Locals;
    liveBeforeInstr(F, *LI, Block, Idx, Regs, Locals);
    D.A = static_cast<uint32_t>(DF.Pool.size());
    for (uint32_t R = 0; R < DF.NumRegs; ++R)
      if (Regs.test(R))
        DF.Pool.push_back(R);
    for (uint32_t L = 0; L < DF.NumLocals; ++L)
      if (Locals.test(L))
        DF.Pool.push_back(DF.LocalBase + L);
    D.B = static_cast<uint32_t>(DF.Pool.size()) - D.A;
    NumSnapSlotsFull += DF.NumRegs + DF.NumLocals;
    NumSnapSlotsLive += D.B;
  }

  void emit(const Instr &I, int Block, std::size_t Idx) {
    DInstr D;
    if (I.ResultReg >= 0)
      D.Dst = static_cast<uint32_t>(I.ResultReg);
    switch (I.Op) {
    case Opcode::Mov:
      D.Op = DOp::Mov;
      D.A = slotOf(I.Operands[0]);
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      // The two opcode enums share the arithmetic/compare block layout.
      D.Op = static_cast<DOp>(
          static_cast<unsigned>(DOp::Add) +
          (static_cast<unsigned>(I.Op) - static_cast<unsigned>(Opcode::Add)));
      D.A = slotOf(I.Operands[0]);
      D.B = slotOf(I.Operands[1]);
      break;
    case Opcode::LoadLocal:
      D.Op = DOp::Mov;
      D.A = DF.LocalBase + static_cast<uint32_t>(I.LocalIdx);
      break;
    case Opcode::StoreLocal:
      D.Op = DOp::Mov;
      D.Dst = DF.LocalBase + static_cast<uint32_t>(I.LocalIdx);
      D.A = slotOf(I.Operands[0]);
      break;
    case Opcode::NewObj:
      D.Op = DOp::NewObj;
      D.C = static_cast<uint32_t>(I.ClassId);
      break;
    case Opcode::NewArr:
      D.Op = DOp::NewArr;
      D.A = slotOf(I.Operands[0]);
      break;
    case Opcode::GetField:
      D.Op = DOp::GetField;
      D.A = slotOf(I.Operands[0]);
      D.Aux = static_cast<uint16_t>(I.FieldIdx);
      D.C = I.ClassId >= 0 ? static_cast<uint32_t>(I.ClassId) : NoClass;
      break;
    case Opcode::SetField:
      D.Op = DOp::SetField;
      D.A = slotOf(I.Operands[0]);
      D.B = slotOf(I.Operands[1]);
      D.Aux = static_cast<uint16_t>(I.FieldIdx);
      D.C = I.ClassId >= 0 ? static_cast<uint32_t>(I.ClassId) : NoClass;
      break;
    case Opcode::ArrLen:
      D.Op = DOp::ArrLen;
      D.A = slotOf(I.Operands[0]);
      break;
    case Opcode::ArrGet:
      D.Op = DOp::ArrGet;
      D.A = slotOf(I.Operands[0]);
      D.B = slotOf(I.Operands[1]);
      break;
    case Opcode::ArrSet:
      D.Op = DOp::ArrSet;
      D.A = slotOf(I.Operands[0]);
      D.B = slotOf(I.Operands[1]);
      D.C = slotOf(I.Operands[2]);
      break;
    case Opcode::Call:
      D.Op = DOp::Call;
      D.A = static_cast<uint32_t>(DF.Pool.size());
      for (const Value &V : I.Operands)
        DF.Pool.push_back(slotOf(V));
      D.B = static_cast<uint32_t>(I.Operands.size());
      D.C = static_cast<uint32_t>(I.CalleeIdx);
      break;
    case Opcode::Print:
      D.Op = DOp::Print;
      D.A = slotOf(I.Operands[0]);
      break;
    case Opcode::AtomicBegin:
      switch (Mode) {
      case Interpreter::TxMode::IgnoreAtomic:
        D.Op = DOp::AtomicNop;
        break;
      case Interpreter::TxMode::GlobalLock:
        D.Op = DOp::AtomicBeginLock;
        break;
      case Interpreter::TxMode::ObjStm:
        D.Op = DOp::AtomicBeginStm;
        emitSnapshotWindow(D, Block, Idx);
        break;
      }
      break;
    case Opcode::AtomicEnd:
      switch (Mode) {
      case Interpreter::TxMode::IgnoreAtomic:
        D.Op = DOp::AtomicNop;
        break;
      case Interpreter::TxMode::GlobalLock:
        D.Op = DOp::AtomicEndLock;
        break;
      case Interpreter::TxMode::ObjStm:
        D.Op = DOp::AtomicEndStm;
        break;
      }
      break;
    case Opcode::OpenForRead:
      D.Op = Mode == Interpreter::TxMode::ObjStm ? DOp::OpenRead
                                                 : DOp::OpenReadCnt;
      D.A = slotOf(I.Operands[0]);
      break;
    case Opcode::OpenForUpdate:
      D.Op = Mode == Interpreter::TxMode::ObjStm ? DOp::OpenUpdate
                                                 : DOp::OpenUpdateCnt;
      D.A = slotOf(I.Operands[0]);
      break;
    case Opcode::LogUndoField:
      D.Op = Mode == Interpreter::TxMode::ObjStm ? DOp::UndoField
                                                 : DOp::UndoFieldCnt;
      D.A = slotOf(I.Operands[0]);
      D.Aux = static_cast<uint16_t>(I.FieldIdx);
      break;
    case Opcode::LogUndoElem:
      D.Op = Mode == Interpreter::TxMode::ObjStm ? DOp::UndoElem
                                                 : DOp::UndoElemCnt;
      D.A = slotOf(I.Operands[0]);
      D.B = slotOf(I.Operands[1]);
      break;
    case Opcode::Br:
      D.Op = DOp::Jump;
      D.B = BlockStart[I.TargetA];
      break;
    case Opcode::CondBr:
      D.Op = DOp::Branch;
      D.A = slotOf(I.Operands[0]);
      D.B = BlockStart[I.TargetA];
      D.C = BlockStart[I.TargetB];
      break;
    case Opcode::Ret:
      D.Op = DOp::Ret;
      D.A = I.Operands.empty() ? constSlot(0) : slotOf(I.Operands[0]);
      break;
    }
    DF.Code.push_back(D);
  }

  const Function &F;
  Interpreter::TxMode Mode;
  DecodedFunction DF;
  std::vector<uint32_t> BlockStart;
  std::unordered_map<int64_t, uint32_t> ConstIndex;
  std::optional<LivenessInfo> LI; ///< computed lazily, once per function
};

} // namespace

DecodedModule interp::decodeModule(const Module &M,
                                   Interpreter::TxMode Mode) {
  DecodedModule DM;
  DM.Funcs.reserve(M.Functions.size());
  for (const auto &F : M.Functions)
    DM.Funcs.push_back(FunctionDecoder(*F, Mode).decode());
  return DM;
}
