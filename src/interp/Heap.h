//===- interp/Heap.h - GC'd heap for the TMIR interpreter ------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter's managed heap, reproducing the paper's GC/STM
/// integration: a mark-and-sweep collector whose root set includes the
/// running transaction's logs, and which *compacts* those logs while it
/// collects (dropping duplicate read enlistments and undo entries —
/// experiment E8).
///
/// Every heap value is a HeapObject: either a class instance (typed field
/// slots) or an i64 array. References are stored in slots as bit-cast
/// pointers; the static types in ClassDecl tell the collector which slots
/// to trace.
///
/// Collection is stop-the-world with a single mutator: callers must ensure
/// no other thread is executing interpreter code during collect(). (The
/// multi-threaded benchmarks run with the collector disabled, exactly like
/// the paper's measurements which never triggered a GC mid-run.)
///
//===----------------------------------------------------------------------===//

#ifndef OTM_INTERP_HEAP_H
#define OTM_INTERP_HEAP_H

#include "stm/Field.h"
#include "stm/TxObject.h"
#include "tmir/IR.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace otm {
namespace interp {

/// One heap cell: a class instance (Class != nullptr) or an i64 array.
/// Inherits TxObject's pooled operator new/delete, so the allocation-heavy
/// E8 workloads (allocate, retire, collect) recycle cell blocks through the
/// per-thread transaction pool instead of malloc.
class HeapObject : public stm::TxObject {
public:
  HeapObject(const tmir::ClassDecl *Class, std::size_t SlotCount)
      : Class(Class), Slots(SlotCount) {}

  const tmir::ClassDecl *Class; ///< nullptr for arrays
  std::vector<stm::Field<int64_t>> Slots;
  bool Marked = false;

  bool isArray() const { return Class == nullptr; }
  std::size_t slotCount() const { return Slots.size(); }

  static HeapObject *fromBits(int64_t Bits) {
    return reinterpret_cast<HeapObject *>(static_cast<uintptr_t>(Bits));
  }
  static int64_t toBits(HeapObject *Obj) {
    return static_cast<int64_t>(reinterpret_cast<uintptr_t>(Obj));
  }
};

struct GcStats {
  uint64_t Collections = 0;
  uint64_t ObjectsFreed = 0;
  uint64_t ObjectsScanned = 0;
  uint64_t ReadEntriesDropped = 0;
  uint64_t UndoEntriesDropped = 0;
};

class Heap {
public:
  Heap() = default;
  ~Heap();
  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  HeapObject *allocObject(const tmir::ClassDecl *Class);
  HeapObject *allocArray(std::size_t Length);

  std::size_t liveCount();
  uint64_t allocCount() const {
    return Allocated.load(std::memory_order_relaxed);
  }
  /// Allocations since the last collection (GC trigger input).
  uint64_t allocsSinceGc() const {
    return SinceGc.load(std::memory_order_relaxed);
  }

  /// Mark phase entry points: mark \p Obj and everything reachable.
  void mark(HeapObject *Obj);

  /// Runs a full collection. \p RootProvider is invoked with a callback
  /// and must pass every root HeapObject* to it (frames, snapshots and
  /// transaction logs). Single-mutator only; see file comment.
  template <typename RootProviderType>
  void collect(RootProviderType RootProvider) {
    std::lock_guard<std::mutex> Lock(M);
    for (HeapObject *Obj : All)
      Obj->Marked = false;
    RootProvider([this](HeapObject *Root) { mark(Root); });
    sweep();
    SinceGc.store(0, std::memory_order_relaxed);
    ++Stats.Collections;
  }

  GcStats &stats() { return Stats; }

private:
  void sweep();

  std::mutex M;
  std::vector<HeapObject *> All;
  std::atomic<uint64_t> Allocated{0};
  std::atomic<uint64_t> SinceGc{0};
  GcStats Stats;
};

} // namespace interp
} // namespace otm

#endif // OTM_INTERP_HEAP_H
