//===- interp/Heap.cpp - GC'd heap for the TMIR interpreter ----------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Heap.h"

using namespace otm;
using namespace otm::interp;
using namespace otm::tmir;

Heap::~Heap() {
  for (HeapObject *Obj : All)
    delete Obj;
}

HeapObject *Heap::allocObject(const ClassDecl *Class) {
  HeapObject *Obj = new HeapObject(Class, Class->Fields.size());
  {
    std::lock_guard<std::mutex> Lock(M);
    All.push_back(Obj);
  }
  Allocated.fetch_add(1, std::memory_order_relaxed);
  SinceGc.fetch_add(1, std::memory_order_relaxed);
  return Obj;
}

HeapObject *Heap::allocArray(std::size_t Length) {
  HeapObject *Obj = new HeapObject(nullptr, Length);
  {
    std::lock_guard<std::mutex> Lock(M);
    All.push_back(Obj);
  }
  Allocated.fetch_add(1, std::memory_order_relaxed);
  SinceGc.fetch_add(1, std::memory_order_relaxed);
  return Obj;
}

std::size_t Heap::liveCount() {
  std::lock_guard<std::mutex> Lock(M);
  return All.size();
}

void Heap::mark(HeapObject *Obj) {
  if (!Obj || Obj->Marked)
    return;
  // Iterative marking; field types tell us which slots are references.
  std::vector<HeapObject *> Work{Obj};
  while (!Work.empty()) {
    HeapObject *Cur = Work.back();
    Work.pop_back();
    if (Cur->Marked)
      continue;
    Cur->Marked = true;
    ++Stats.ObjectsScanned;
    if (Cur->isArray())
      continue; // arrays hold only i64
    for (std::size_t I = 0; I < Cur->Class->Fields.size(); ++I) {
      if (!Cur->Class->Fields[I].Ty.isRef())
        continue;
      if (HeapObject *Child = HeapObject::fromBits(Cur->Slots[I].load()))
        if (!Child->Marked)
          Work.push_back(Child);
    }
  }
}

void Heap::sweep() {
  std::size_t Kept = 0;
  for (std::size_t I = 0; I < All.size(); ++I) {
    if (All[I]->Marked) {
      All[Kept++] = All[I];
      continue;
    }
    delete All[I];
    ++Stats.ObjectsFreed;
  }
  All.resize(Kept);
}
