//===- interp/Decoder.h - TMIR -> bytecode decoder -------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-pass decoder from tmir::IR to the dense execution format in
/// Bytecode.h. Runs once per (module, TxMode) at Interpreter construction;
/// the decoded form is immutable afterwards and shared by all threads.
///
/// Decode-time work the tree-walking interpreter used to repeat on every
/// executed instruction:
///   - operand classification (register / immediate / null) becomes slot
///     index resolution, with immediates interned into a per-function
///     constant area of the slot file;
///   - branch targets become flat instruction indices;
///   - the TxMode dispatch inside region markers and barriers becomes
///     opcode specialization ("needs-open" decided per mode, once);
///   - per-`atomic_begin` live-slot windows (tmir::Liveness) shrink retry
///     snapshots from whole-frame copies to the live window.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_INTERP_DECODER_H
#define OTM_INTERP_DECODER_H

#include "interp/Bytecode.h"
#include "interp/Interp.h"

namespace otm {
namespace interp {

/// Decodes every function of \p M for execution under \p Mode. \p M must
/// be verified (register types filled in) before decoding.
DecodedModule decodeModule(const tmir::Module &M, Interpreter::TxMode Mode);

} // namespace interp
} // namespace otm

#endif // OTM_INTERP_DECODER_H
