//===- interp/Bytecode.h - Decoded TMIR execution format -------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dense, pre-resolved form the interpreter executes. The decoder
/// (Decoder.h) flattens a tmir::Function into one contiguous DInstr array:
///
///   - every operand is a *slot index* into the frame's unified slot file
///     (registers, then locals, then immediate constants), so the engine
///     never switches on tmir::Value::kind() at run time;
///   - branch targets are flat instruction indices;
///   - barrier instructions are specialized per TxMode at decode time (the
///     "needs-open" flag): under IgnoreAtomic/GlobalLock they decode to
///     count-only opcodes that never touch the STM;
///   - each `atomic_begin` carries the list of slots live across its
///     region, so a retry snapshot copies that window instead of the whole
///     frame.
///
/// The decoded form is engine-independent: the computed-goto threaded loop
/// and the portable switch loop (Interp.cpp) execute the same DInstr
/// stream, which is what makes them differential-testable against each
/// other.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_INTERP_BYTECODE_H
#define OTM_INTERP_BYTECODE_H

#include "tmir/IR.h"

#include <cstdint>
#include <vector>

namespace otm {
namespace interp {

/// Decoded opcodes. One DInstr per source tmir::Instr (the mapping is 1:1
/// so dynamic instruction counts match the tree-walking semantics exactly);
/// specialization happens in the opcode, not in runtime flag checks.
enum class DOp : uint8_t {
  Mov, ///< also LoadLocal/StoreLocal: slots are unified
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  NewObj,
  NewArr,
  GetField,
  SetField,
  ArrLen,
  ArrGet,
  ArrSet,
  Call,
  Print,
  // Region markers, specialized per TxMode at decode time.
  AtomicNop,       ///< IgnoreAtomic: begin/end are pure instruction counts
  AtomicBeginLock, ///< GlobalLock: take the global recursive mutex
  AtomicEndLock,
  AtomicBeginStm, ///< ObjStm: snapshot + TxManager::begin
  AtomicEndStm,
  // Barriers under ObjStm: talk to the TxManager.
  OpenRead,
  OpenUpdate,
  UndoField,
  UndoElem,
  // Barriers under IgnoreAtomic/GlobalLock: bump the dynamic counter only.
  OpenReadCnt,
  OpenUpdateCnt,
  UndoFieldCnt,
  UndoElemCnt,
  Jump,
  Branch,
  Ret,
};

constexpr unsigned NumDOps = static_cast<unsigned>(DOp::Ret) + 1;

/// Sentinel for "no slot" (Call with no result).
constexpr uint32_t NoSlot = 0xffffffffu;
/// Sentinel for "no class check" (GetField/SetField with ClassId < 0).
constexpr uint32_t NoClass = 0xffffffffu;

/// One decoded instruction. Field meaning by opcode:
///
///   Mov               Dst <- A
///   arith/cmp         Dst <- A op B
///   NewObj            Dst <- new C (class id)
///   NewArr            Dst <- new array of length slot A
///   GetField          Dst <- slot A object, field Aux, class check C
///   SetField          slot A object, field Aux, value slot B, check C
///   ArrLen            Dst <- length of array slot A
///   ArrGet            Dst <- array slot A, index slot B
///   ArrSet            array slot A, index slot B, value slot C
///   Call              callee C, args Pool[A .. A+B), result Dst (or NoSlot)
///   Print             value slot A
///   AtomicBeginStm    live-slot window Pool[A .. A+B)
///   OpenRead/Update   object slot A
///   UndoField         object slot A, field Aux
///   UndoElem          object slot A, index slot B
///   Jump              target pc B
///   Branch            cond slot A, true pc B, false pc C
///   Ret               value slot A
struct DInstr {
  DOp Op = DOp::Mov;
  uint16_t Aux = 0; ///< field index where applicable
  uint32_t Dst = NoSlot;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
};

/// One function, decoded. Immutable after decode; shared read-only by every
/// thread running the interpreter.
struct DecodedFunction {
  const tmir::Function *Src = nullptr;

  uint32_t NumRegs = 0;
  uint32_t NumLocals = 0;
  uint32_t LocalBase = 0; ///< == NumRegs
  uint32_t ConstBase = 0; ///< == NumRegs + NumLocals
  uint32_t NumSlots = 0;  ///< regs + locals + constants

  std::vector<DInstr> Code;
  /// Constant values, copied into slots [ConstBase, NumSlots) at frame
  /// entry and never written afterwards.
  std::vector<int64_t> Consts;
  /// Shared index pool: call argument slot lists and atomic-region
  /// live-slot windows, referenced by (offset, count) pairs in DInstr.
  std::vector<uint32_t> Pool;
  /// RefSlot[i]: slot i holds a reference (GC must trace it). Constants
  /// are never references (the only ref constant is null == 0).
  std::vector<bool> RefSlot;
};

/// A whole module decoded for one TxMode, indexed by function id.
struct DecodedModule {
  std::vector<DecodedFunction> Funcs;
};

} // namespace interp
} // namespace otm

#endif // OTM_INTERP_BYTECODE_H
