//===- interp/Interp.cpp - TMIR interpreter over the STM -------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Execution engine over the decoded bytecode (Bytecode.h / Decoder.h). The
// per-instruction work the old tree-walker repeated — operand kind
// switches, TxMode tests, field-index lookups — happens once at decode; at
// run time each handler is a few loads/stores on the frame's slot file.
//
// Two loops execute the same DInstr stream: a computed-goto direct-
// threaded loop (GCC/Clang; compiled out with -DOTM_INTERP_THREADED=0) and
// a portable switch loop. Both are generated from InterpDispatch.inc so
// their semantics cannot drift; tests/InterpDifferentialTest.cpp runs
// every benchmark program through both and compares results, prints and
// dynamic counts.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "interp/Decoder.h"
#include "obs/TraceRing.h"
#include "stm/Stm.h"
#include "support/Compiler.h"
#include "tmir/Verifier.h"
#include "txn/RetryExecutor.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>

// The direct-threaded loop needs GNU computed goto; default it on for the
// compilers that have it, off elsewhere. Build with -DOTM_INTERP_THREADED=0
// to force the portable switch loop only.
#ifndef OTM_INTERP_THREADED
#if defined(__GNUC__) || defined(__clang__)
#define OTM_INTERP_THREADED 1
#else
#define OTM_INTERP_THREADED 0
#endif
#endif

using namespace otm;
using namespace otm::interp;
using namespace otm::tmir;

// The decoder maps these blocks between the two opcode enums by offset;
// pin the anchors of each contiguous run it relies on.
static_assert(static_cast<unsigned>(Opcode::CmpGe) -
                      static_cast<unsigned>(Opcode::Add) ==
                  static_cast<unsigned>(DOp::CmpGe) -
                      static_cast<unsigned>(DOp::Add),
              "arith/compare blocks of Opcode and DOp must stay parallel");
// The threaded loop's label table lists DOp values in declaration order;
// pin the anchors so a reordering shows up as a compile error, not a
// misdispatch.
static_assert(static_cast<unsigned>(DOp::Mov) == 0 &&
                  static_cast<unsigned>(DOp::CmpGe) == 16 &&
                  static_cast<unsigned>(DOp::Call) == 24 &&
                  static_cast<unsigned>(DOp::AtomicBeginStm) == 29 &&
                  static_cast<unsigned>(DOp::OpenReadCnt) == 35 &&
                  static_cast<unsigned>(DOp::Ret) == 41 && NumDOps == 42,
              "DOp order changed: update the Labels table in "
              "InterpDispatch.inc to match");

namespace {

/// Internal trap signal; converted to RunResult at the run() boundary.
struct TrapError {
  std::string Msg;
};

[[noreturn]] void trap(const std::string &Msg) { throw TrapError{Msg}; }

std::recursive_mutex &globalTxMutex() {
  static std::recursive_mutex M;
  return M;
}

thread_local int GlobalLockDepth = 0;
thread_local int CallDepth = 0;
constexpr int MaxCallDepth = 2048;

/// Monotone work counter for karma accrual (same measure as Stm::atomic).
uint64_t txOpCount(stm::TxManager &Tx) {
  const stm::TxStats &S = Tx.stats();
  return S.OpensForRead + S.OpensForUpdate + S.UndoLogAppends;
}

} // namespace

struct Interpreter::Frame {
  const DecodedFunction *DF = nullptr;
  /// Unified slot file: [registers | locals | constants].
  std::vector<int64_t> Slots;
  bool OwnsTx = false;
  bool HasSnapshot = false;
  /// Forced-abort cycles already taken for the current region
  /// (Options::ForceRetries testing hook).
  uint32_t ForcedRetries = 0;
  /// Retry snapshot: flat pc of the owning atomic_begin plus the values of
  /// its live-slot window (slot indices are Pool[SnapPoolOff ..
  /// SnapPoolOff+SnapCount) of the decoded function).
  uint32_t SnapPc = 0;
  uint32_t SnapPoolOff = 0;
  uint32_t SnapCount = 0;
  std::vector<int64_t> SnapVals;
  /// Retry sequencing for the atomic region this frame owns. Lives across
  /// snapshot-restart retries of one region; unwinding the frame on a trap
  /// releases any serial-gate state through the controller's destructor.
  std::optional<txn::RetryController> Ctl;
};

namespace {

/// Per-thread stack of live frames (GC roots for the current thread).
thread_local std::vector<Interpreter::Frame *> TlFrames;

} // namespace

namespace otm {
namespace interp {

class FrameScope {
public:
  explicit FrameScope(Interpreter::Frame &Fr) { TlFrames.push_back(&Fr); }
  ~FrameScope() { TlFrames.pop_back(); }
};

} // namespace interp
} // namespace otm

bool Interpreter::threadedDispatchAvailable() {
  return OTM_INTERP_THREADED != 0;
}

Interpreter::Interpreter(Module &M, Options Opts) : M(M), Opts(Opts) {
  verifyModuleOrDie(M); // fills RegTypes, required for decode + GC scanning
  DM = decodeModule(M, Opts.Mode);

  if (threadedDispatchAvailable()) {
    switch (Opts.Loop) {
    case Dispatch::Threaded:
      UseThreaded = true;
      break;
    case Dispatch::Switch:
      UseThreaded = false;
      break;
    case Dispatch::Auto: {
      const char *Env = std::getenv("OTM_INTERP_DISPATCH");
      UseThreaded = !(Env && std::strcmp(Env, "switch") == 0);
      break;
    }
    }
  }
}

HeapObject *Interpreter::makeObject(const std::string &ClassName) {
  int Id = M.classIndex(ClassName);
  assert(Id >= 0 && "unknown class");
  return TheHeap.allocObject(&M.Classes[Id]);
}

HeapObject *Interpreter::makeArray(std::size_t Length) {
  return TheHeap.allocArray(Length);
}

void Interpreter::collectGarbage() {
  stm::TxManager &Tx = stm::TxManager::current();
  obs::TraceRing *Ring = obs::TraceRing::forCurrentThread();
  OTM_TRACE_EVENT(Ring, obs::EventKind::GcBegin, nullptr, 0);
  TheHeap.collect([&](auto Mark) {
    for (Frame *Fr : TlFrames) {
      const DecodedFunction &DF = *Fr->DF;
      // Every reference-typed register/local slot of a live frame is a
      // root — including currently-dead ones, which may hold pointers from
      // earlier in the frame. Keeping those alive is what makes the
      // narrowed retry snapshots safe: a restored dead slot can never
      // resurrect a swept object.
      for (uint32_t Sl = 0; Sl < DF.ConstBase; ++Sl)
        if (DF.RefSlot[Sl] && Fr->Slots[Sl])
          Mark(HeapObject::fromBits(Fr->Slots[Sl]));
      if (Fr->HasSnapshot) {
        const uint32_t *Window = DF.Pool.data() + Fr->SnapPoolOff;
        for (uint32_t K = 0; K < Fr->SnapCount; ++K)
          if (DF.RefSlot[Window[K]] && Fr->SnapVals[K])
            Mark(HeapObject::fromBits(Fr->SnapVals[K]));
      }
    }
    if (Tx.inTx()) {
      // The paper's GC/STM integration: compact the logs while they are
      // being treated as roots.
      auto [ReadsDropped, UndosDropped] = Tx.compactLogsForGc();
      TheHeap.stats().ReadEntriesDropped += ReadsDropped;
      TheHeap.stats().UndoEntriesDropped += UndosDropped;
      Tx.forEachEnlistedObject([&](stm::TxObject *Obj) {
        Mark(static_cast<HeapObject *>(Obj));
      });
    }
  });
  OTM_TRACE_EVENT(Ring, obs::EventKind::GcEnd, nullptr, 0);
}

Interpreter::RunResult Interpreter::run(const std::string &Name,
                                        const std::vector<int64_t> &Args) {
  RunResult Result;
  Function *F = M.functionByName(Name);
  if (!F) {
    Result.Trapped = true;
    Result.Error = "no such function: " + Name;
    return Result;
  }
  if (Args.size() != F->NumParams) {
    Result.Trapped = true;
    Result.Error = "argument count mismatch calling " + Name;
    return Result;
  }
  const DecodedFunction *DF = nullptr;
  for (std::size_t Idx = 0; Idx < M.Functions.size(); ++Idx)
    if (M.Functions[Idx].get() == F) {
      DF = &DM.Funcs[Idx];
      break;
    }
  assert(DF && "function present in module but not in decoded module");

  Counts.ActiveRuns.fetch_add(1, std::memory_order_relaxed);
  DynCounts::Delta D;
  try {
    Result.Value = execFunction(*DF, Args.data(), Args.size(), D);
  } catch (const TrapError &T) {
    Result.Trapped = true;
    Result.Error = T.Msg;
    // Clean up any transactional or lock state the trap interrupted.
    stm::TxManager &Tx = stm::TxManager::current();
    if (Tx.inTx())
      Tx.rollbackAttempt(stm::AbortTx::Cause::User);
    while (GlobalLockDepth > 0) {
      globalTxMutex().unlock();
      --GlobalLockDepth;
    }
  }
  // One flush of the per-run counters into the process-wide atomics.
  Counts.add(D);
  Counts.ActiveRuns.fetch_sub(1, std::memory_order_relaxed);
  return Result;
}

uint32_t Interpreter::failedAttemptResume(Frame &Fr, DynCounts::Delta &D) {
  const DecodedFunction &DF = *Fr.DF;
  const uint32_t *Window = DF.Pool.data() + Fr.SnapPoolOff;
  for (uint32_t K = 0; K < Fr.SnapCount; ++K)
    Fr.Slots[Window[K]] = Fr.SnapVals[K];
  Fr.OwnsTx = false;
  ++D.TxRetried;
  Fr.Ctl->afterAbort(txOpCount(stm::TxManager::current()));
  return Fr.SnapPc;
}

int64_t Interpreter::execFunction(const DecodedFunction &DF,
                                  const int64_t *Args, std::size_t NumArgs,
                                  DynCounts::Delta &D) {
  if (OTM_UNLIKELY(++CallDepth > MaxCallDepth)) {
    --CallDepth;
    trap("call depth limit exceeded in " + DF.Src->Name);
  }
  struct DepthGuard {
    ~DepthGuard() { --CallDepth; }
  } Guard;

  Frame Fr;
  Fr.DF = &DF;
  Fr.Slots.assign(DF.NumSlots, 0);
  std::copy(DF.Consts.begin(), DF.Consts.end(),
            Fr.Slots.begin() + DF.ConstBase);
  for (std::size_t A = 0; A < NumArgs; ++A)
    Fr.Slots[DF.LocalBase + A] = Args[A];
  FrameScope Scope(Fr);

  const uint64_t Reload =
      Opts.Mode == TxMode::ObjStm && Opts.ValidateEveryNInstrs
          ? Opts.ValidateEveryNInstrs
          : ~uint64_t(0);

  uint32_t Pc = 0;
  for (;;) {
    try {
      return UseThreaded ? execThreadedLoop(Fr, Pc, D, Reload)
                         : execSwitchLoop(Fr, Pc, D, Reload);
    } catch (const stm::AbortTx &Reason) {
      if (!Fr.OwnsTx)
        throw; // unwind to the frame that owns the transaction
      stm::TxManager::current().rollbackAttempt(Reason.Why);
      Pc = failedAttemptResume(Fr, D); // resume from the atomic_begin
    }
  }
}

int64_t Interpreter::execSwitchLoop(Frame &Fr, uint32_t Pc,
                                    DynCounts::Delta &D,
                                    uint64_t ValidateReload) {
#define OTM_LOOP_THREADED 0
#include "interp/InterpDispatch.inc"
#undef OTM_LOOP_THREADED
}

#if OTM_INTERP_THREADED

int64_t Interpreter::execThreadedLoop(Frame &Fr, uint32_t Pc,
                                      DynCounts::Delta &D,
                                      uint64_t ValidateReload) {
#define OTM_LOOP_THREADED 1
#include "interp/InterpDispatch.inc"
#undef OTM_LOOP_THREADED
}

#else

int64_t Interpreter::execThreadedLoop(Frame &Fr, uint32_t Pc,
                                      DynCounts::Delta &D,
                                      uint64_t ValidateReload) {
  return execSwitchLoop(Fr, Pc, D, ValidateReload);
}

#endif // OTM_INTERP_THREADED
