//===- interp/Interp.cpp - TMIR interpreter over the STM -------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "obs/TraceRing.h"
#include "stm/Stm.h"
#include "support/Compiler.h"
#include "tmir/Verifier.h"
#include "txn/RetryExecutor.h"

#include <cstdio>
#include <mutex>
#include <optional>

using namespace otm;
using namespace otm::interp;
using namespace otm::tmir;

namespace {

/// Internal trap signal; converted to RunResult at the run() boundary.
struct TrapError {
  std::string Msg;
};

[[noreturn]] void trap(const std::string &Msg) { throw TrapError{Msg}; }

std::recursive_mutex &globalTxMutex() {
  static std::recursive_mutex M;
  return M;
}

thread_local int GlobalLockDepth = 0;
thread_local int CallDepth = 0;
constexpr int MaxCallDepth = 2048;

} // namespace

struct Interpreter::Frame {
  Function *F = nullptr;
  std::vector<int64_t> Regs;
  std::vector<int64_t> Locals;
  bool OwnsTx = false;
  bool HasSnapshot = false;
  int SnapBlock = 0;
  std::size_t SnapIdx = 0;
  std::vector<int64_t> SnapRegs;
  std::vector<int64_t> SnapLocals;
  /// Retry sequencing for the atomic region this frame owns. Lives across
  /// snapshot-restart retries of one region; unwinding the frame on a trap
  /// releases any serial-gate state through the controller's destructor.
  std::optional<txn::RetryController> Ctl;
};

namespace {

/// Per-thread stack of live frames (GC roots for the current thread).
thread_local std::vector<Interpreter::Frame *> TlFrames;

} // namespace

namespace otm {
namespace interp {

class FrameScope {
public:
  explicit FrameScope(Interpreter::Frame &Fr) { TlFrames.push_back(&Fr); }
  ~FrameScope() { TlFrames.pop_back(); }
};

} // namespace interp
} // namespace otm

Interpreter::Interpreter(Module &M, Options Opts) : M(M), Opts(Opts) {
  verifyModuleOrDie(M); // fills RegTypes, required for GC root scanning
}

HeapObject *Interpreter::makeObject(const std::string &ClassName) {
  int Id = M.classIndex(ClassName);
  assert(Id >= 0 && "unknown class");
  return TheHeap.allocObject(&M.Classes[Id]);
}

HeapObject *Interpreter::makeArray(std::size_t Length) {
  return TheHeap.allocArray(Length);
}

void Interpreter::collectGarbage() {
  stm::TxManager &Tx = stm::TxManager::current();
  obs::TraceRing *Ring = obs::TraceRing::forCurrentThread();
  OTM_TRACE_EVENT(Ring, obs::EventKind::GcBegin, nullptr, 0);
  TheHeap.collect([&](auto Mark) {
    for (Frame *Fr : TlFrames) {
      Function &F = *Fr->F;
      for (int R = 0; R < F.numRegs(); ++R)
        if (F.RegTypes[R].isRef() && Fr->Regs[R])
          Mark(HeapObject::fromBits(Fr->Regs[R]));
      for (std::size_t L = 0; L < F.Locals.size(); ++L)
        if (F.Locals[L].Ty.isRef() && Fr->Locals[L])
          Mark(HeapObject::fromBits(Fr->Locals[L]));
      if (Fr->HasSnapshot) {
        for (int R = 0; R < F.numRegs(); ++R)
          if (F.RegTypes[R].isRef() && Fr->SnapRegs[R])
            Mark(HeapObject::fromBits(Fr->SnapRegs[R]));
        for (std::size_t L = 0; L < F.Locals.size(); ++L)
          if (F.Locals[L].Ty.isRef() && Fr->SnapLocals[L])
            Mark(HeapObject::fromBits(Fr->SnapLocals[L]));
      }
    }
    if (Tx.inTx()) {
      // The paper's GC/STM integration: compact the logs while they are
      // being treated as roots.
      auto [ReadsDropped, UndosDropped] = Tx.compactLogsForGc();
      TheHeap.stats().ReadEntriesDropped += ReadsDropped;
      TheHeap.stats().UndoEntriesDropped += UndosDropped;
      Tx.forEachEnlistedObject([&](stm::TxObject *Obj) {
        Mark(static_cast<HeapObject *>(Obj));
      });
    }
  });
  OTM_TRACE_EVENT(Ring, obs::EventKind::GcEnd, nullptr, 0);
}

Interpreter::RunResult Interpreter::run(const std::string &Name,
                                        const std::vector<int64_t> &Args) {
  RunResult Result;
  Function *F = M.functionByName(Name);
  if (!F) {
    Result.Trapped = true;
    Result.Error = "no such function: " + Name;
    return Result;
  }
  if (Args.size() != F->NumParams) {
    Result.Trapped = true;
    Result.Error = "argument count mismatch calling " + Name;
    return Result;
  }
  try {
    Result.Value = execFunction(*F, Args);
  } catch (const TrapError &T) {
    Result.Trapped = true;
    Result.Error = T.Msg;
    // Clean up any transactional or lock state the trap interrupted.
    stm::TxManager &Tx = stm::TxManager::current();
    if (Tx.inTx())
      Tx.rollbackAttempt(stm::AbortTx::Cause::User);
    while (GlobalLockDepth > 0) {
      globalTxMutex().unlock();
      --GlobalLockDepth;
    }
  }
  return Result;
}

int64_t Interpreter::execFunction(Function &F,
                                  const std::vector<int64_t> &Args) {
  if (++CallDepth > MaxCallDepth) {
    --CallDepth;
    trap("call depth limit exceeded in " + F.Name);
  }

  Frame Fr;
  Fr.F = &F;
  Fr.Regs.assign(F.numRegs(), 0);
  Fr.Locals.assign(F.Locals.size(), 0);
  for (std::size_t A = 0; A < Args.size(); ++A)
    Fr.Locals[A] = Args[A];
  FrameScope Scope(Fr);

  stm::TxManager &Tx = stm::TxManager::current();

  // Monotone work counter for karma accrual (same measure as Stm::atomic).
  auto TxOpCount = [&]() -> uint64_t {
    const stm::TxStats &S = Tx.stats();
    return S.OpensForRead + S.OpensForUpdate + S.UndoLogAppends;
  };

  auto Val = [&](const Value &V) -> int64_t {
    switch (V.kind()) {
    case Value::Kind::Reg:
      return Fr.Regs[V.regId()];
    case Value::Kind::Imm:
      return V.immValue();
    case Value::Kind::Null:
      return 0;
    case Value::Kind::None:
      break;
    }
    trap("malformed operand");
  };

  auto RefVal = [&](const Value &V) -> HeapObject * {
    return HeapObject::fromBits(Val(V));
  };

  auto ObjectOperand = [&](const Value &V, int ClassId) -> HeapObject * {
    HeapObject *Obj = RefVal(V);
    if (!Obj)
      trap("null reference in " + F.Name);
    if (Obj->isArray() || (ClassId >= 0 && Obj->Class != &M.Classes[ClassId]))
      trap("reference has wrong class in " + F.Name);
    return Obj;
  };

  auto ArrayOperand = [&](const Value &V) -> HeapObject * {
    HeapObject *Obj = RefVal(V);
    if (!Obj)
      trap("null array reference in " + F.Name);
    if (!Obj->isArray())
      trap("reference is not an array in " + F.Name);
    return Obj;
  };

  auto SaveSnapshot = [&](int Block, std::size_t Idx) {
    Fr.HasSnapshot = true;
    Fr.SnapBlock = Block;
    Fr.SnapIdx = Idx;
    Fr.SnapRegs = Fr.Regs;
    Fr.SnapLocals = Fr.Locals;
  };

  int Block = 0;
  std::size_t Idx = 0;
  uint64_t InstrsSinceValidate = 0;

  auto RestoreSnapshot = [&]() {
    Fr.Regs = Fr.SnapRegs;
    Fr.Locals = Fr.SnapLocals;
    Block = Fr.SnapBlock;
    Idx = Fr.SnapIdx;
    Fr.OwnsTx = false;
    Counts.TxRetried.fetch_add(1, std::memory_order_relaxed);
  };

  struct DepthGuard {
    ~DepthGuard() { --CallDepth; }
  } Guard;

  for (;;) {
    BasicBlock &BB = *F.Blocks[Block];
    assert(Idx < BB.Instrs.size() && "ran off the end of a block");
    Instr &I = BB.Instrs[Idx];
    Counts.Instrs.fetch_add(1, std::memory_order_relaxed);

    try {
      // Bound zombie execution: a doomed transaction may loop on stale
      // pointers; periodic validation aborts it.
      if (Opts.Mode == TxMode::ObjStm && Opts.ValidateEveryNInstrs &&
          ++InstrsSinceValidate >= Opts.ValidateEveryNInstrs) {
        InstrsSinceValidate = 0;
        if (Tx.inTx())
          Tx.validateOrAbort();
      }

      switch (I.Op) {
      case Opcode::Mov:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]);
        break;
      case Opcode::Add:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) + Val(I.Operands[1]);
        break;
      case Opcode::Sub:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) - Val(I.Operands[1]);
        break;
      case Opcode::Mul:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) * Val(I.Operands[1]);
        break;
      case Opcode::Div: {
        int64_t D = Val(I.Operands[1]);
        if (D == 0)
          trap("division by zero in " + F.Name);
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) / D;
        break;
      }
      case Opcode::Rem: {
        int64_t D = Val(I.Operands[1]);
        if (D == 0)
          trap("remainder by zero in " + F.Name);
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) % D;
        break;
      }
      case Opcode::And:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) & Val(I.Operands[1]);
        break;
      case Opcode::Or:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) | Val(I.Operands[1]);
        break;
      case Opcode::Xor:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) ^ Val(I.Operands[1]);
        break;
      case Opcode::Shl:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0])
                               << (Val(I.Operands[1]) & 63);
        break;
      case Opcode::Shr:
        Fr.Regs[I.ResultReg] = static_cast<int64_t>(
            static_cast<uint64_t>(Val(I.Operands[0])) >>
            (Val(I.Operands[1]) & 63));
        break;
      case Opcode::CmpEq:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) == Val(I.Operands[1]);
        break;
      case Opcode::CmpNe:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) != Val(I.Operands[1]);
        break;
      case Opcode::CmpLt:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) < Val(I.Operands[1]);
        break;
      case Opcode::CmpLe:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) <= Val(I.Operands[1]);
        break;
      case Opcode::CmpGt:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) > Val(I.Operands[1]);
        break;
      case Opcode::CmpGe:
        Fr.Regs[I.ResultReg] = Val(I.Operands[0]) >= Val(I.Operands[1]);
        break;
      case Opcode::LoadLocal:
        Fr.Regs[I.ResultReg] = Fr.Locals[I.LocalIdx];
        break;
      case Opcode::StoreLocal:
        Fr.Locals[I.LocalIdx] = Val(I.Operands[0]);
        break;
      case Opcode::NewObj: {
        if (Opts.GcEveryNAllocs &&
            TheHeap.allocsSinceGc() >= Opts.GcEveryNAllocs)
          collectGarbage();
        HeapObject *Obj = TheHeap.allocObject(&M.Classes[I.ClassId]);
        Fr.Regs[I.ResultReg] = HeapObject::toBits(Obj);
        break;
      }
      case Opcode::NewArr: {
        int64_t Len = Val(I.Operands[0]);
        if (Len < 0 || Len > (int64_t(1) << 30))
          trap("bad array length in " + F.Name);
        if (Opts.GcEveryNAllocs &&
            TheHeap.allocsSinceGc() >= Opts.GcEveryNAllocs)
          collectGarbage();
        Fr.Regs[I.ResultReg] = HeapObject::toBits(
            TheHeap.allocArray(static_cast<std::size_t>(Len)));
        break;
      }
      case Opcode::GetField: {
        HeapObject *Obj = ObjectOperand(I.Operands[0], I.ClassId);
        Counts.FieldReads.fetch_add(1, std::memory_order_relaxed);
        Fr.Regs[I.ResultReg] = Obj->Slots[I.FieldIdx].load();
        break;
      }
      case Opcode::SetField: {
        HeapObject *Obj = ObjectOperand(I.Operands[0], I.ClassId);
        Counts.FieldWrites.fetch_add(1, std::memory_order_relaxed);
        Obj->Slots[I.FieldIdx].store(Val(I.Operands[1]));
        break;
      }
      case Opcode::ArrLen: {
        HeapObject *Arr = ArrayOperand(I.Operands[0]);
        Counts.FieldReads.fetch_add(1, std::memory_order_relaxed);
        Fr.Regs[I.ResultReg] = static_cast<int64_t>(Arr->slotCount());
        break;
      }
      case Opcode::ArrGet: {
        HeapObject *Arr = ArrayOperand(I.Operands[0]);
        int64_t Index = Val(I.Operands[1]);
        if (Index < 0 || static_cast<std::size_t>(Index) >= Arr->slotCount())
          trap("array index out of bounds in " + F.Name);
        Counts.FieldReads.fetch_add(1, std::memory_order_relaxed);
        Fr.Regs[I.ResultReg] = Arr->Slots[Index].load();
        break;
      }
      case Opcode::ArrSet: {
        HeapObject *Arr = ArrayOperand(I.Operands[0]);
        int64_t Index = Val(I.Operands[1]);
        if (Index < 0 || static_cast<std::size_t>(Index) >= Arr->slotCount())
          trap("array index out of bounds in " + F.Name);
        Counts.FieldWrites.fetch_add(1, std::memory_order_relaxed);
        Arr->Slots[Index].store(Val(I.Operands[2]));
        break;
      }
      case Opcode::Call: {
        std::vector<int64_t> CallArgs;
        CallArgs.reserve(I.Operands.size());
        for (const Value &V : I.Operands)
          CallArgs.push_back(Val(V));
        Counts.Calls.fetch_add(1, std::memory_order_relaxed);
        int64_t R = execFunction(*M.Functions[I.CalleeIdx], CallArgs);
        if (I.ResultReg >= 0)
          Fr.Regs[I.ResultReg] = R;
        break;
      }
      case Opcode::Print: {
        int64_t V = Val(I.Operands[0]);
        if (Opts.CapturePrints) {
          std::lock_guard<std::mutex> Lock(PrintMutex);
          Printed.push_back(V);
        } else {
          std::printf("%lld\n", static_cast<long long>(V));
        }
        break;
      }
      case Opcode::AtomicBegin:
        switch (Opts.Mode) {
        case TxMode::IgnoreAtomic:
          break;
        case TxMode::GlobalLock:
          globalTxMutex().lock();
          ++GlobalLockDepth;
          break;
        case TxMode::ObjStm:
          if (!Tx.inTx()) {
            SaveSnapshot(Block, Idx);
            Fr.OwnsTx = true;
            // First attempt of a new top-level region constructs the retry
            // controller; snapshot restarts reuse it (attempt count and
            // karma persist across the attempts of one transaction).
            if (!Fr.Ctl)
              Fr.Ctl.emplace(
                  txn::managerFor(stm::TxManager::config().ContentionPolicy),
                  Tx.cmState(), stm::TxManager::config().SerialFallbackAfter,
                  reinterpret_cast<uintptr_t>(&Fr) * 0x9e3779b97f4a7c15ULL);
            Fr.Ctl->beforeAttempt(TxOpCount());
          }
          Tx.begin();
          Counts.TxStarted.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        break;
      case Opcode::AtomicEnd:
        switch (Opts.Mode) {
        case TxMode::IgnoreAtomic:
          break;
        case TxMode::GlobalLock:
          globalTxMutex().unlock();
          --GlobalLockDepth;
          break;
        case TxMode::ObjStm:
          if (Fr.OwnsTx && Tx.nestingDepth() == 1) {
            if (!Tx.tryCommit()) {
              RestoreSnapshot();
              Fr.Ctl->afterAbort(TxOpCount());
              continue; // resume from atomic_begin
            }
            Fr.OwnsTx = false;
            Fr.HasSnapshot = false;
            Counts.TxCommitted.fetch_add(1, std::memory_order_relaxed);
            Fr.Ctl->onFinished();
            Fr.Ctl.reset();
          } else {
            Tx.tryCommit(); // nested level: always succeeds
          }
          break;
        }
        break;
      case Opcode::OpenForRead: {
        Counts.OpenRead.fetch_add(1, std::memory_order_relaxed);
        if (Opts.Mode == TxMode::ObjStm && Tx.inTx())
          if (HeapObject *Obj = RefVal(I.Operands[0]))
            Tx.openForRead(Obj);
        break;
      }
      case Opcode::OpenForUpdate: {
        Counts.OpenUpdate.fetch_add(1, std::memory_order_relaxed);
        if (Opts.Mode == TxMode::ObjStm && Tx.inTx())
          if (HeapObject *Obj = RefVal(I.Operands[0]))
            Tx.openForUpdate(Obj);
        break;
      }
      case Opcode::LogUndoField: {
        Counts.UndoField.fetch_add(1, std::memory_order_relaxed);
        if (Opts.Mode == TxMode::ObjStm && Tx.inTx())
          if (HeapObject *Obj = RefVal(I.Operands[0]))
            Tx.logUndo(&Obj->Slots[I.FieldIdx]);
        break;
      }
      case Opcode::LogUndoElem: {
        Counts.UndoElem.fetch_add(1, std::memory_order_relaxed);
        if (Opts.Mode == TxMode::ObjStm && Tx.inTx())
          if (HeapObject *Obj = RefVal(I.Operands[0])) {
            int64_t Index = Val(I.Operands[1]);
            if (Index >= 0 &&
                static_cast<std::size_t>(Index) < Obj->slotCount())
              Tx.logUndo(&Obj->Slots[Index]);
          }
        break;
      }
      case Opcode::Br:
        Block = I.TargetA;
        Idx = 0;
        continue;
      case Opcode::CondBr:
        Block = Val(I.Operands[0]) ? I.TargetA : I.TargetB;
        Idx = 0;
        continue;
      case Opcode::Ret:
        return I.Operands.empty() ? 0 : Val(I.Operands[0]);
      }
    } catch (const stm::AbortTx &Reason) {
      if (!Fr.OwnsTx)
        throw; // unwind to the frame that owns the transaction
      Tx.rollbackAttempt(Reason.Why);
      RestoreSnapshot();
      Fr.Ctl->afterAbort(TxOpCount());
      continue;
    }
    ++Idx;
  }
}
