//===- containers/Policy.h - Synchronization policies ----------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transactional containers are templates over a *synchronization
/// policy* so the same structural code runs under every configuration the
/// paper's evaluation compares:
///
///   - SeqPolicy          — no synchronization (the 1-thread baseline);
///   - CoarseLockPolicy   — one global mutex around each operation;
///   - WordStmPolicy      — TL2-style word-based STM (baseline STM);
///   - ObjStmNaivePolicy  — object STM with *naive* barrier placement: an
///     open accompanies every single field access, modelling unoptimized
///     compiler output;
///   - ObjStmOptPolicy    — object STM with *optimized* placement: the
///     container calls openRead/openWrite once per object per region,
///     exactly where the compiler passes (src/passes) leave the opens;
///   - BoostedPolicy      — transactional boosting (DESIGN.md §3.10):
///     conflicts are detected on abstract (container, key) locks instead of
///     structure, operations apply via the sequential path under a short
///     base lock, and aborts undo by semantic inverse (insert<->erase).
///
/// A policy provides: node base class, field cell type, an execution
/// context, `run` (the atomic block), region-level opens, per-access
/// load/store, allocation hooks, and a checkpoint hook used to bound
/// zombie execution in unbounded traversals. A boosted policy additionally
/// sets `Boosted = true`, which routes the containers' public operations
/// through their boosted wrappers (abstract lock, base lock, core, inverse).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_CONTAINERS_POLICY_H
#define OTM_CONTAINERS_POLICY_H

#include "stm/Field.h"
#include "stm/Stm.h"
#include "wstm/WordStm.h"

#include <mutex>
#include <type_traits>
#include <utility>

namespace otm {
namespace containers {

//===----------------------------------------------------------------------===
// Sequential (unsynchronized) policy
//===----------------------------------------------------------------------===

struct SeqPolicy {
  static constexpr const char *Name = "seq";
  struct ObjBase {};
  template <typename T> using Cell = stm::Field<T>;
  struct Ctx {};

  template <typename FnType> static void run(FnType &&Fn) {
    Ctx C;
    Fn(C);
  }

  static void openRead(Ctx &, ObjBase *) {}
  static void openWrite(Ctx &, ObjBase *) {}

  template <typename ObjType, typename T>
  static T load(Ctx &, ObjType *, Cell<T> &C) {
    return C.load();
  }

  template <typename ObjType, typename T>
  static void store(Ctx &, ObjType *, Cell<T> &C, T Value) {
    C.store(Value);
  }

  template <typename T, typename... ArgTypes>
  static T *create(Ctx &, ArgTypes &&...Args) {
    return new T(std::forward<ArgTypes>(Args)...);
  }

  template <typename T> static void destroy(Ctx &, T *Obj) { delete Obj; }

  
  /// Store into a freshly created, not-yet-published object (alloc-elided).
  template <typename ObjType, typename T>
  static void initStore(Ctx &, ObjType *, Cell<T> &C, T Value) {
    C.store(Value);
  }

  static void checkpoint(Ctx &) {}
};

//===----------------------------------------------------------------------===
// Coarse-grained lock policy (one process-wide mutex)
//===----------------------------------------------------------------------===

struct CoarseLockPolicy {
  static constexpr const char *Name = "coarse-lock";
  struct ObjBase {};
  template <typename T> using Cell = stm::Field<T>;
  struct Ctx {};

  static std::mutex &mutex() {
    static std::mutex M;
    return M;
  }

  template <typename FnType> static void run(FnType &&Fn) {
    std::lock_guard<std::mutex> Lock(mutex());
    Ctx C;
    Fn(C);
  }

  static void openRead(Ctx &, ObjBase *) {}
  static void openWrite(Ctx &, ObjBase *) {}

  template <typename ObjType, typename T>
  static T load(Ctx &, ObjType *, Cell<T> &C) {
    return C.load();
  }

  template <typename ObjType, typename T>
  static void store(Ctx &, ObjType *, Cell<T> &C, T Value) {
    C.store(Value);
  }

  template <typename T, typename... ArgTypes>
  static T *create(Ctx &, ArgTypes &&...Args) {
    return new T(std::forward<ArgTypes>(Args)...);
  }

  template <typename T> static void destroy(Ctx &, T *Obj) { delete Obj; }

  
  /// Store into a freshly created, not-yet-published object (alloc-elided).
  template <typename ObjType, typename T>
  static void initStore(Ctx &, ObjType *, Cell<T> &C, T Value) {
    C.store(Value);
  }

  static void checkpoint(Ctx &) {}
};

//===----------------------------------------------------------------------===
// Word-based STM policy (TL2 baseline)
//===----------------------------------------------------------------------===

struct WordStmPolicy {
  static constexpr const char *Name = "word-stm";
  struct ObjBase {};
  template <typename T> using Cell = wstm::WCell<T>;
  using Ctx = wstm::WTxManager;

  template <typename FnType> static void run(FnType &&Fn) {
    wstm::WordStm::atomic(std::forward<FnType>(Fn));
  }

  static void openRead(Ctx &, ObjBase *) {}
  static void openWrite(Ctx &, ObjBase *) {}

  template <typename ObjType, typename T>
  static T load(Ctx &Tx, ObjType *, Cell<T> &C) {
    return Tx.read(C);
  }

  template <typename ObjType, typename T>
  static void store(Ctx &Tx, ObjType *, Cell<T> &C, T Value) {
    Tx.write(C, Value);
  }

  template <typename T, typename... ArgTypes>
  static T *create(Ctx &Tx, ArgTypes &&...Args) {
    T *Obj = new T(std::forward<ArgTypes>(Args)...);
    Tx.recordAlloc(Obj);
    return Obj;
  }

  template <typename T> static void destroy(Ctx &Tx, T *Obj) {
    Tx.retireOnCommit(Obj);
  }

  // TL2 validates every read against the read version, so a running
  // transaction never observes an inconsistent snapshot: no zombies.
  
  /// Store into a freshly created, not-yet-published object (alloc-elided).
  template <typename ObjType, typename T>
  static void initStore(Ctx &, ObjType *, Cell<T> &C, T Value) {
    C.store(Value);
  }

  static void checkpoint(Ctx &) {}
};

//===----------------------------------------------------------------------===
// Object STM, naive barrier placement (unoptimized compiler output)
//===----------------------------------------------------------------------===

struct ObjStmNaivePolicy {
  static constexpr const char *Name = "obj-stm-naive";
  using ObjBase = stm::TxObject;
  template <typename T> using Cell = stm::Field<T>;
  using Ctx = stm::TxManager;

  template <typename FnType> static void run(FnType &&Fn) {
    stm::Stm::atomic(std::forward<FnType>(Fn));
  }

  // Naive code has no region-level opens...
  static void openRead(Ctx &, ObjBase *) {}
  static void openWrite(Ctx &, ObjBase *) {}

  // ...because every access performs its own full barrier.
  template <typename ObjType, typename T>
  static T load(Ctx &Tx, ObjType *Obj, Cell<T> &C) {
    Tx.openForRead(Obj);
    return C.load();
  }

  template <typename ObjType, typename T>
  static void store(Ctx &Tx, ObjType *Obj, Cell<T> &C, T Value) {
    Tx.openForUpdate(Obj);
    Tx.logUndo(&C);
    C.store(Value);
  }

  template <typename T, typename... ArgTypes>
  static T *create(Ctx &Tx, ArgTypes &&...Args) {
    return Tx.allocInTx<T>(std::forward<ArgTypes>(Args)...);
  }

  template <typename T> static void destroy(Ctx &Tx, T *Obj) {
    Tx.retireOnCommit(Obj);
  }

  
  /// Naive output performs the full barrier even on fresh allocations.
  template <typename ObjType, typename T>
  static void initStore(Ctx &Tx, ObjType *Obj, Cell<T> &C, T Value) {
    store(Tx, Obj, C, Value);
  }

  static void checkpoint(Ctx &Tx) { Tx.validateOrAbort(); }
};

//===----------------------------------------------------------------------===
// Object STM, optimized barrier placement (post-optimization output)
//===----------------------------------------------------------------------===

struct ObjStmOptPolicy {
  static constexpr const char *Name = "obj-stm-opt";
  using ObjBase = stm::TxObject;
  template <typename T> using Cell = stm::Field<T>;
  using Ctx = stm::TxManager;

  template <typename FnType> static void run(FnType &&Fn) {
    stm::Stm::atomic(std::forward<FnType>(Fn));
  }

  // One open per object per region, placed by the container author exactly
  // as the compiler's open-elimination/upgrade passes would place it.
  static void openRead(Ctx &Tx, ObjBase *Obj) { Tx.openForRead(Obj); }
  static void openWrite(Ctx &Tx, ObjBase *Obj) { Tx.openForUpdate(Obj); }

  template <typename ObjType, typename T>
  static T load(Ctx &, ObjType *, Cell<T> &C) {
    return C.load(); // covered by the region's open
  }

  template <typename ObjType, typename T>
  static void store(Ctx &Tx, ObjType *, Cell<T> &C, T Value) {
    Tx.logUndo(&C); // undo granularity stays per-field
    C.store(Value);
  }

  template <typename T, typename... ArgTypes>
  static T *create(Ctx &Tx, ArgTypes &&...Args) {
    return Tx.allocInTx<T>(std::forward<ArgTypes>(Args)...);
  }

  template <typename T> static void destroy(Ctx &Tx, T *Obj) {
    Tx.retireOnCommit(Obj);
  }

  
  /// Store into a freshly created, not-yet-published object (alloc-elided).
  template <typename ObjType, typename T>
  static void initStore(Ctx &, ObjType *, Cell<T> &C, T Value) {
    C.store(Value);
  }

  static void checkpoint(Ctx &Tx) { Tx.validateOrAbort(); }
};

//===----------------------------------------------------------------------===
// Boosted policy — semantic conflict detection (DESIGN.md §3.10)
//===----------------------------------------------------------------------===

/// Transactional boosting. Isolation comes from abstract (container, key)
/// locks held to commit (TxManager::boostAcquireKey), not from STM opens;
/// physical atomicity of each operation comes from the container's short
/// base lock. The per-access hooks are therefore direct: no read log, no
/// undo log, no validation. Rollback is semantic — the containers register
/// the inverse operation via Ctx::onAbort — and deletion is deferred to
/// commit via Ctx::onCommit (an erase's node must reappear if the
/// transaction aborts).
///
/// With -DOTM_BOOST=0 the tier is compiled out: Boosted turns false (so the
/// containers' generic paths run) and the hooks degrade to the optimized
/// object-STM placement, keeping every container correct and every
/// deterministic count of the non-boosted experiments bit-identical.
struct BoostedPolicy {
  static constexpr const char *Name = "boosted";
  static constexpr bool Boosted = stm::TxManager::boostEnabled();
  using ObjBase = stm::TxObject;
  template <typename T> using Cell = stm::Field<T>;
  using Ctx = stm::TxManager;

  template <typename FnType> static void run(FnType &&Fn) {
    stm::Stm::atomic(std::forward<FnType>(Fn));
  }

#if OTM_BOOST
  static void openRead(Ctx &, ObjBase *) {}
  static void openWrite(Ctx &, ObjBase *) {}

  template <typename ObjType, typename T>
  static T load(Ctx &, ObjType *, Cell<T> &C) {
    return C.load(); // covered by the abstract lock + base lock
  }

  template <typename ObjType, typename T>
  static void store(Ctx &, ObjType *, Cell<T> &C, T Value) {
    C.store(Value); // rollback is semantic, not value-level
  }

  /// Plain allocation (TxObject::operator new -> TxPool): cleanup on abort
  /// is the registered semantic inverse, not an alloc-log walk.
  template <typename T, typename... ArgTypes>
  static T *create(Ctx &, ArgTypes &&...Args) {
    return new T(std::forward<ArgTypes>(Args)...);
  }

  /// Unlinked nodes stay allocated until the outcome is known: commit
  /// deletes them, abort deletes them too — but only after the semantic
  /// re-insert (registered later, run earlier by LIFO) rebuilt the key from
  /// fresh storage. Inside a running handler the outcome *is* known, so
  /// destruction is immediate instead of re-entering the log being walked.
  template <typename T> static void destroy(Ctx &Tx, T *Obj) {
    if (Tx.runningDeferredActions()) {
      delete Obj;
      return;
    }
    Tx.onCommit([Obj] { delete Obj; });
    Tx.onAbort([Obj] { delete Obj; });
  }

  template <typename ObjType, typename T>
  static void initStore(Ctx &, ObjType *, Cell<T> &C, T Value) {
    C.store(Value);
  }

  /// Boosted traversals hold the base lock or the structural gate, so they
  /// never observe torn structure: no zombie windows to bound.
  static void checkpoint(Ctx &) {}
#else
  // Kill-switch degradation: identical to ObjStmOptPolicy.
  static void openRead(Ctx &Tx, ObjBase *Obj) { Tx.openForRead(Obj); }
  static void openWrite(Ctx &Tx, ObjBase *Obj) { Tx.openForUpdate(Obj); }

  template <typename ObjType, typename T>
  static T load(Ctx &, ObjType *, Cell<T> &C) {
    return C.load();
  }

  template <typename ObjType, typename T>
  static void store(Ctx &Tx, ObjType *, Cell<T> &C, T Value) {
    Tx.logUndo(&C);
    C.store(Value);
  }

  template <typename T, typename... ArgTypes>
  static T *create(Ctx &Tx, ArgTypes &&...Args) {
    return Tx.allocInTx<T>(std::forward<ArgTypes>(Args)...);
  }

  template <typename T> static void destroy(Ctx &Tx, T *Obj) {
    Tx.retireOnCommit(Obj);
  }

  template <typename ObjType, typename T>
  static void initStore(Ctx &, ObjType *, Cell<T> &C, T Value) {
    C.store(Value);
  }

  static void checkpoint(Ctx &Tx) { Tx.validateOrAbort(); }
#endif
};

namespace detail {
template <typename P, typename = void>
struct PolicyIsBoosted : std::false_type {};
template <typename P>
struct PolicyIsBoosted<P, std::void_t<decltype(P::Boosted)>>
    : std::bool_constant<P::Boosted> {};
} // namespace detail

/// True for policies whose Boosted flag is present and set — the containers
/// branch on this (if constexpr) to route operations through the boosted
/// wrappers.
template <typename P>
inline constexpr bool kBoostedPolicy = detail::PolicyIsBoosted<P>::value;

} // namespace containers
} // namespace otm

#endif // OTM_CONTAINERS_POLICY_H
