//===- containers/SortedList.h - Transactional sorted list -----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sorted singly linked list (set/map of int64 keys) templated over a
/// synchronization policy. The traversal is the canonical workload where
/// barrier placement matters: naive lowering opens every node once per
/// field access (key, next), optimized lowering opens each node exactly
/// once — the difference E1 measures.
///
/// Under a boosted policy (DESIGN.md §3.10) point operations conflict on
/// the abstract key instead of on every traversed node; the whole-list
/// sumValues has no per-key footprint, so it takes the container's
/// structural gate (table-wide lock) instead.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_CONTAINERS_SORTEDLIST_H
#define OTM_CONTAINERS_SORTEDLIST_H

#include "containers/Policy.h"

#include <cstddef>
#include <cstdint>

namespace otm {
namespace containers {

template <typename Policy> class SortedList {
  using Ctx = typename Policy::Ctx;
  template <typename T> using Cell = typename Policy::template Cell<T>;

  struct Node : Policy::ObjBase {
    Cell<int64_t> Key;
    Cell<int64_t> Value;
    Cell<Node *> Next;
  };

public:
  SortedList() = default;
  SortedList(const SortedList &) = delete;
  SortedList &operator=(const SortedList &) = delete;

  ~SortedList() {
    Node *N = Head.Next.load();
    while (N) {
      Node *Next = N->Next.load();
      delete N;
      N = Next;
    }
  }

  /// Inserts \p Key (or updates its value); returns true if newly inserted.
  bool insert(int64_t Key, int64_t Value) {
    bool Inserted = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        int64_t Displaced = 0;
        {
          std::lock_guard<std::mutex> Guard(BaseLock);
          Inserted = insertCore(C, Key, Value, &Displaced);
        }
        if (Inserted)
          C.onAbort([this, Key] { undoInsert(Key); });
        else
          C.onAbort([this, Key, Displaced] { undoWrite(Key, Displaced); });
      } else {
        Inserted = insertCore(C, Key, Value, nullptr);
      }
    });
    return Inserted;
  }

  /// Removes \p Key; returns true if it was present.
  bool erase(int64_t Key) {
    bool Erased = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        int64_t Displaced = 0;
        {
          std::lock_guard<std::mutex> Guard(BaseLock);
          Erased = eraseCore(C, Key, &Displaced);
        }
        if (Erased)
          C.onAbort([this, Key, Displaced] { undoWrite(Key, Displaced); });
      } else {
        Erased = eraseCore(C, Key, nullptr);
      }
    });
    return Erased;
  }

  /// Looks up \p Key; returns true and fills \p Value if present.
  bool lookup(int64_t Key, int64_t &Value) {
    bool Found = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        std::lock_guard<std::mutex> Guard(BaseLock);
        Found = lookupCore(C, Key, Value);
      } else {
        Found = lookupCore(C, Key, Value);
      }
    });
    return Found;
  }

  bool contains(int64_t Key) {
    int64_t Ignored;
    return lookup(Key, Ignored);
  }

  /// Transactionally sums all values (a long read-only transaction). A
  /// whole-container operation has no per-key conflict footprint, so the
  /// boosted path falls back to the structural gate: every concurrent
  /// semantic operation is excluded until this transaction resolves.
  int64_t sumValues() {
    int64_t Sum = 0;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>)
        C.boostAcquireStructural(BoostId);
      Sum = 0;
      unsigned Steps = 0;
      Node *Prev = &Head;
      Policy::openRead(C, Prev);
      Node *Cur = Policy::load(C, Prev, Prev->Next);
      while (Cur) {
        Policy::openRead(C, Cur);
        Sum += Policy::load(C, Cur, Cur->Value);
        Cur = Policy::load(C, Cur, Cur->Next);
        if ((++Steps & 63) == 0)
          Policy::checkpoint(C);
      }
    });
    return Sum;
  }

  /// Quiescent size (no synchronization; verification only).
  std::size_t sizeSlow() const {
    std::size_t Count = 0;
    for (Node *N = Head.Next.load(); N; N = N->Next.load())
      ++Count;
    return Count;
  }

  /// Quiescent sortedness check (verification only).
  bool isSortedSlow() const {
    Node *N = Head.Next.load();
    if (!N)
      return true;
    int64_t Last = N->Key.load();
    for (N = N->Next.load(); N; N = N->Next.load()) {
      int64_t K = N->Key.load();
      if (K <= Last)
        return false;
      Last = K;
    }
    return true;
  }

private:
  struct Locate {
    Node *Prev;
    Node *Cur;
    int64_t CurKey;
  };

  /// Walks to the first node with key >= \p Key. Opens every visited node
  /// for read (optimized placement: exactly one open per node).
  Locate locate(Ctx &C, int64_t Key) {
    Node *Prev = &Head;
    Policy::openRead(C, Prev);
    Node *Cur = Policy::load(C, Prev, Prev->Next);
    unsigned Steps = 0;
    while (Cur) {
      Policy::openRead(C, Cur);
      int64_t CurKey = Policy::load(C, Cur, Cur->Key);
      if (CurKey >= Key)
        return {Prev, Cur, CurKey};
      Prev = Cur;
      Cur = Policy::load(C, Cur, Cur->Next);
      if ((++Steps & 63) == 0)
        Policy::checkpoint(C);
    }
    return {Prev, nullptr, 0};
  }

  /// Structural body shared by every policy; \p DisplacedOut (boosted
  /// callers only — null elsewhere so no extra barrier perturbs the
  /// non-boosted deterministic counts) receives the overwritten value.
  bool insertCore(Ctx &C, int64_t Key, int64_t Value, int64_t *DisplacedOut) {
    auto [Prev, Cur, CurKey] = locate(C, Key);
    if (Cur && CurKey == Key) {
      Policy::openWrite(C, Cur);
      if (DisplacedOut)
        *DisplacedOut = Policy::load(C, Cur, Cur->Value);
      Policy::store(C, Cur, Cur->Value, Value);
      return false;
    }
    Node *Fresh = Policy::template create<Node>(C);
    Policy::initStore(C, Fresh, Fresh->Key, Key);
    Policy::initStore(C, Fresh, Fresh->Value, Value);
    Policy::initStore(C, Fresh, Fresh->Next, Cur);
    Policy::openWrite(C, Prev);
    Policy::store(C, Prev, Prev->Next, Fresh);
    return true;
  }

  bool eraseCore(Ctx &C, int64_t Key, int64_t *DisplacedOut) {
    auto [Prev, Cur, CurKey] = locate(C, Key);
    if (!Cur || CurKey != Key)
      return false;
    if (DisplacedOut)
      *DisplacedOut = Policy::load(C, Cur, Cur->Value);
    Node *After = Policy::load(C, Cur, Cur->Next);
    Policy::openWrite(C, Prev);
    Policy::store(C, Prev, Prev->Next, After);
    Policy::destroy(C, Cur);
    return true;
  }

  bool lookupCore(Ctx &C, int64_t Key, int64_t &Value) {
    auto [Prev, Cur, CurKey] = locate(C, Key);
    (void)Prev;
    if (Cur && CurKey == Key) {
      Value = Policy::load(C, Cur, Cur->Value);
      return true;
    }
    return false;
  }

  // Semantic inverses (abort handlers; abstract key lock still held).
  void undoInsert(int64_t Key) {
    Ctx &C = stm::TxManager::current();
    std::lock_guard<std::mutex> Guard(BaseLock);
    eraseCore(C, Key, nullptr);
  }

  /// Restores \p Key to \p OldValue — the inverse of both an update (store
  /// back the displaced value) and an erase (re-insert the displaced pair).
  void undoWrite(int64_t Key, int64_t OldValue) {
    Ctx &C = stm::TxManager::current();
    std::lock_guard<std::mutex> Guard(BaseLock);
    insertCore(C, Key, OldValue, nullptr);
  }

  Node Head; // sentinel; Key unused

  /// Boosting state; inert under non-boosted policies.
  const uint64_t BoostId = txn::AbstractLockTable::nextContainerId();
  std::mutex BaseLock;
};

} // namespace containers
} // namespace otm

#endif // OTM_CONTAINERS_SORTEDLIST_H
