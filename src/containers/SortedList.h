//===- containers/SortedList.h - Transactional sorted list -----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sorted singly linked list (set/map of int64 keys) templated over a
/// synchronization policy. The traversal is the canonical workload where
/// barrier placement matters: naive lowering opens every node once per
/// field access (key, next), optimized lowering opens each node exactly
/// once — the difference E1 measures.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_CONTAINERS_SORTEDLIST_H
#define OTM_CONTAINERS_SORTEDLIST_H

#include "containers/Policy.h"

#include <cstddef>
#include <cstdint>

namespace otm {
namespace containers {

template <typename Policy> class SortedList {
  using Ctx = typename Policy::Ctx;
  template <typename T> using Cell = typename Policy::template Cell<T>;

  struct Node : Policy::ObjBase {
    Cell<int64_t> Key;
    Cell<int64_t> Value;
    Cell<Node *> Next;
  };

public:
  SortedList() = default;
  SortedList(const SortedList &) = delete;
  SortedList &operator=(const SortedList &) = delete;

  ~SortedList() {
    Node *N = Head.Next.load();
    while (N) {
      Node *Next = N->Next.load();
      delete N;
      N = Next;
    }
  }

  /// Inserts \p Key (or updates its value); returns true if newly inserted.
  bool insert(int64_t Key, int64_t Value) {
    bool Inserted = false;
    Policy::run([&](Ctx &C) {
      auto [Prev, Cur, CurKey] = locate(C, Key);
      if (Cur && CurKey == Key) {
        Policy::openWrite(C, Cur);
        Policy::store(C, Cur, Cur->Value, Value);
        Inserted = false;
        return;
      }
      Node *Fresh = Policy::template create<Node>(C);
      Policy::initStore(C, Fresh, Fresh->Key, Key);
      Policy::initStore(C, Fresh, Fresh->Value, Value);
      Policy::initStore(C, Fresh, Fresh->Next, Cur);
      Policy::openWrite(C, Prev);
      Policy::store(C, Prev, Prev->Next, Fresh);
      Inserted = true;
    });
    return Inserted;
  }

  /// Removes \p Key; returns true if it was present.
  bool erase(int64_t Key) {
    bool Erased = false;
    Policy::run([&](Ctx &C) {
      auto [Prev, Cur, CurKey] = locate(C, Key);
      if (!Cur || CurKey != Key) {
        Erased = false;
        return;
      }
      Node *After = Policy::load(C, Cur, Cur->Next);
      Policy::openWrite(C, Prev);
      Policy::store(C, Prev, Prev->Next, After);
      Policy::destroy(C, Cur);
      Erased = true;
    });
    return Erased;
  }

  /// Looks up \p Key; returns true and fills \p Value if present.
  bool lookup(int64_t Key, int64_t &Value) {
    bool Found = false;
    Policy::run([&](Ctx &C) {
      auto [Prev, Cur, CurKey] = locate(C, Key);
      (void)Prev;
      if (Cur && CurKey == Key) {
        Value = Policy::load(C, Cur, Cur->Value);
        Found = true;
      } else {
        Found = false;
      }
    });
    return Found;
  }

  bool contains(int64_t Key) {
    int64_t Ignored;
    return lookup(Key, Ignored);
  }

  /// Transactionally sums all values (a long read-only transaction).
  int64_t sumValues() {
    int64_t Sum = 0;
    Policy::run([&](Ctx &C) {
      Sum = 0;
      unsigned Steps = 0;
      Node *Prev = &Head;
      Policy::openRead(C, Prev);
      Node *Cur = Policy::load(C, Prev, Prev->Next);
      while (Cur) {
        Policy::openRead(C, Cur);
        Sum += Policy::load(C, Cur, Cur->Value);
        Cur = Policy::load(C, Cur, Cur->Next);
        if ((++Steps & 63) == 0)
          Policy::checkpoint(C);
      }
    });
    return Sum;
  }

  /// Quiescent size (no synchronization; verification only).
  std::size_t sizeSlow() const {
    std::size_t Count = 0;
    for (Node *N = Head.Next.load(); N; N = N->Next.load())
      ++Count;
    return Count;
  }

  /// Quiescent sortedness check (verification only).
  bool isSortedSlow() const {
    Node *N = Head.Next.load();
    if (!N)
      return true;
    int64_t Last = N->Key.load();
    for (N = N->Next.load(); N; N = N->Next.load()) {
      int64_t K = N->Key.load();
      if (K <= Last)
        return false;
      Last = K;
    }
    return true;
  }

private:
  struct Locate {
    Node *Prev;
    Node *Cur;
    int64_t CurKey;
  };

  /// Walks to the first node with key >= \p Key. Opens every visited node
  /// for read (optimized placement: exactly one open per node).
  Locate locate(Ctx &C, int64_t Key) {
    Node *Prev = &Head;
    Policy::openRead(C, Prev);
    Node *Cur = Policy::load(C, Prev, Prev->Next);
    unsigned Steps = 0;
    while (Cur) {
      Policy::openRead(C, Cur);
      int64_t CurKey = Policy::load(C, Cur, Cur->Key);
      if (CurKey >= Key)
        return {Prev, Cur, CurKey};
      Prev = Cur;
      Cur = Policy::load(C, Cur, Cur->Next);
      if ((++Steps & 63) == 0)
        Policy::checkpoint(C);
    }
    return {Prev, nullptr, 0};
  }

  Node Head; // sentinel; Key unused
};

} // namespace containers
} // namespace otm

#endif // OTM_CONTAINERS_SORTEDLIST_H
