//===- containers/SkipList.h - Transactional skip list ---------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A skip list (int64 key → value map) templated over a synchronization
/// policy. Node heights are derived deterministically from a hash of the
/// key, so runs are reproducible and every policy builds the identical
/// structure — only the barriers differ.
///
/// Under a boosted policy (DESIGN.md §3.10) operations conflict on the
/// abstract key instead of on every tower node the descent traverses — the
/// skip list is the worst structural false-conflict case (every operation
/// reads the high levels near the head).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_CONTAINERS_SKIPLIST_H
#define OTM_CONTAINERS_SKIPLIST_H

#include "containers/Policy.h"

#include <cstddef>
#include <cstdint>

namespace otm {
namespace containers {

template <typename Policy> class SkipList {
  using Ctx = typename Policy::Ctx;
  template <typename T> using Cell = typename Policy::template Cell<T>;

  static constexpr unsigned MaxLevel = 16;

  struct Node : Policy::ObjBase {
    Cell<int64_t> Key;
    Cell<int64_t> Value;
    Cell<int64_t> Height;
    Cell<Node *> Next[MaxLevel];
  };

public:
  SkipList() { Head.Height.store(MaxLevel); }
  SkipList(const SkipList &) = delete;
  SkipList &operator=(const SkipList &) = delete;

  ~SkipList() {
    Node *N = Head.Next[0].load();
    while (N) {
      Node *Next = N->Next[0].load();
      delete N;
      N = Next;
    }
  }

  /// Inserts \p Key (or updates its value); returns true if newly added.
  bool insert(int64_t Key, int64_t Value) {
    bool Inserted = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        int64_t Displaced = 0;
        {
          std::lock_guard<std::mutex> Guard(BaseLock);
          Inserted = insertCore(C, Key, Value, &Displaced);
        }
        if (Inserted)
          C.onAbort([this, Key] { undoInsert(Key); });
        else
          C.onAbort([this, Key, Displaced] { undoWrite(Key, Displaced); });
      } else {
        Inserted = insertCore(C, Key, Value, nullptr);
      }
    });
    return Inserted;
  }

  /// Removes \p Key; returns true if it was present.
  bool erase(int64_t Key) {
    bool Erased = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        int64_t Displaced = 0;
        {
          std::lock_guard<std::mutex> Guard(BaseLock);
          Erased = eraseCore(C, Key, &Displaced);
        }
        if (Erased)
          C.onAbort([this, Key, Displaced] { undoWrite(Key, Displaced); });
      } else {
        Erased = eraseCore(C, Key, nullptr);
      }
    });
    return Erased;
  }

  /// Looks up \p Key; returns true and fills \p Value if present.
  bool lookup(int64_t Key, int64_t &Value) {
    bool Found = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        std::lock_guard<std::mutex> Guard(BaseLock);
        Found = lookupCore(C, Key, Value);
      } else {
        Found = lookupCore(C, Key, Value);
      }
    });
    return Found;
  }

  bool contains(int64_t Key) {
    int64_t Ignored;
    return lookup(Key, Ignored);
  }

  /// Quiescent size (verification only).
  std::size_t sizeSlow() const {
    std::size_t Count = 0;
    for (Node *N = Head.Next[0].load(); N; N = N->Next[0].load())
      ++Count;
    return Count;
  }

  /// Quiescent structure check: every level sorted and a sublist of the
  /// level below.
  bool checkInvariantsSlow() const {
    for (unsigned L = 0; L < MaxLevel; ++L) {
      int64_t Last = INT64_MIN;
      for (Node *N = Head.Next[L].load(); N; N = N->Next[L].load()) {
        int64_t K = N->Key.load();
        if (K <= Last)
          return false;
        if (static_cast<unsigned>(N->Height.load()) <= L)
          return false;
        if (L > 0 && !containsAtLevel(N->Key.load(), L - 1))
          return false;
        Last = K;
      }
    }
    return true;
  }

private:
  /// Deterministic height: trailing zeros of a key hash, 1..MaxLevel.
  static unsigned heightFor(int64_t Key) {
    uint64_t H = static_cast<uint64_t>(Key) * 0x9e3779b97f4a7c15ULL;
    H ^= H >> 29;
    unsigned Level = 1;
    while ((H & 1) && Level < MaxLevel) {
      ++Level;
      H >>= 1;
    }
    return Level;
  }

  /// Walks towards \p Key, filling Preds[l] with the rightmost node whose
  /// key is smaller at each level. Returns the node with \p Key or null.
  Node *locate(Ctx &C, int64_t Key, Node *Preds[MaxLevel]) {
    Node *Cur = &Head;
    Policy::openRead(C, Cur);
    unsigned Steps = 0;
    for (int L = MaxLevel - 1; L >= 0; --L) {
      for (;;) {
        Node *Next = Policy::load(C, Cur, Cur->Next[L]);
        if (!Next)
          break;
        Policy::openRead(C, Next);
        if (Policy::load(C, Next, Next->Key) >= Key)
          break;
        Cur = Next;
        if ((++Steps & 63) == 0)
          Policy::checkpoint(C);
      }
      Preds[L] = Cur;
    }
    Node *Candidate = Policy::load(C, Cur, Cur->Next[0]);
    if (!Candidate)
      return nullptr;
    Policy::openRead(C, Candidate);
    return Policy::load(C, Candidate, Candidate->Key) == Key ? Candidate
                                                             : nullptr;
  }

  bool containsAtLevel(int64_t Key, unsigned Level) const {
    for (Node *N = Head.Next[Level].load(); N; N = N->Next[Level].load())
      if (N->Key.load() == Key)
        return true;
    return false;
  }

  /// Structural body shared by every policy; \p DisplacedOut (boosted
  /// callers only — null elsewhere so no extra barrier perturbs the
  /// non-boosted deterministic counts) receives the overwritten value.
  bool insertCore(Ctx &C, int64_t Key, int64_t Value, int64_t *DisplacedOut) {
    Node *Preds[MaxLevel];
    Node *Found = locate(C, Key, Preds);
    if (Found) {
      Policy::openWrite(C, Found);
      if (DisplacedOut)
        *DisplacedOut = Policy::load(C, Found, Found->Value);
      Policy::store(C, Found, Found->Value, Value);
      return false;
    }
    unsigned Height = heightFor(Key);
    Node *Fresh = Policy::template create<Node>(C);
    Policy::initStore(C, Fresh, Fresh->Key, Key);
    Policy::initStore(C, Fresh, Fresh->Value, Value);
    Policy::initStore(C, Fresh, Fresh->Height, static_cast<int64_t>(Height));
    for (unsigned L = 0; L < Height; ++L) {
      Node *After = Policy::load(C, Preds[L], Preds[L]->Next[L]);
      Policy::initStore(C, Fresh, Fresh->Next[L], After);
    }
    // Link bottom-up; predecessors were opened for read by locate.
    for (unsigned L = 0; L < Height; ++L) {
      Policy::openWrite(C, Preds[L]);
      Policy::store(C, Preds[L], Preds[L]->Next[L], Fresh);
    }
    return true;
  }

  bool eraseCore(Ctx &C, int64_t Key, int64_t *DisplacedOut) {
    Node *Preds[MaxLevel];
    Node *Found = locate(C, Key, Preds);
    if (!Found)
      return false;
    Policy::openRead(C, Found);
    if (DisplacedOut)
      *DisplacedOut = Policy::load(C, Found, Found->Value);
    unsigned Height =
        static_cast<unsigned>(Policy::load(C, Found, Found->Height));
    for (unsigned L = 0; L < Height; ++L) {
      Node *After = Policy::load(C, Found, Found->Next[L]);
      Policy::openWrite(C, Preds[L]);
      Policy::store(C, Preds[L], Preds[L]->Next[L], After);
    }
    Policy::destroy(C, Found);
    return true;
  }

  bool lookupCore(Ctx &C, int64_t Key, int64_t &Value) {
    Node *Preds[MaxLevel];
    Node *N = locate(C, Key, Preds);
    if (!N)
      return false;
    Value = Policy::load(C, N, N->Value);
    return true;
  }

  // Semantic inverses (abort handlers; abstract key lock still held).
  void undoInsert(int64_t Key) {
    Ctx &C = stm::TxManager::current();
    std::lock_guard<std::mutex> Guard(BaseLock);
    eraseCore(C, Key, nullptr);
  }

  /// Restores \p Key to \p OldValue — the inverse of both an update and an
  /// erase (heights are key-deterministic, so the re-inserted tower is
  /// structurally identical to the erased one).
  void undoWrite(int64_t Key, int64_t OldValue) {
    Ctx &C = stm::TxManager::current();
    std::lock_guard<std::mutex> Guard(BaseLock);
    insertCore(C, Key, OldValue, nullptr);
  }

  Node Head; // sentinel: Key unused, full height

  /// Boosting state; inert under non-boosted policies.
  const uint64_t BoostId = txn::AbstractLockTable::nextContainerId();
  std::mutex BaseLock;
};

} // namespace containers
} // namespace otm

#endif // OTM_CONTAINERS_SKIPLIST_H
