//===- containers/RBTree.h - Transactional red-black tree ------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A red-black tree (int64 key → value map) templated over a
/// synchronization policy (CLRS layout: parent pointers plus a single nil
/// sentinel). The tree is the workload where the read-to-update upgrade
/// optimization matters (experiment E6): the descent phase only reads
/// nodes, but an insert's rebalancing then re-opens part of the same path
/// for update — naive placement pays both barriers, upgraded placement
/// acquires once.
///
/// Barrier discipline follows the optimized placement: one
/// Policy::openRead per node visit, one Policy::openWrite before a node's
/// fields are stored, with per-field undo logging inside Policy::store.
/// Under the naive policy the same code degenerates to one open per field
/// access, which is exactly the comparison the experiments make.
///
/// Under a boosted policy (DESIGN.md §3.10) point operations conflict on
/// the abstract key instead of on the rebalancing path — rotations near
/// the root are the tree's structural false-conflict hot spot. The CLRS
/// insert/erase bodies run unchanged as the sequential path; the semantic
/// inverse (erase the inserted key / re-insert the displaced pair) is
/// registered as the abort action.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_CONTAINERS_RBTREE_H
#define OTM_CONTAINERS_RBTREE_H

#include "containers/Policy.h"

#include <cstddef>
#include <cstdint>

namespace otm {
namespace containers {

template <typename Policy> class RBTree {
  using Ctx = typename Policy::Ctx;
  template <typename T> using Cell = typename Policy::template Cell<T>;

  static constexpr int64_t Black = 0;
  static constexpr int64_t Red = 1;

  struct Node : Policy::ObjBase {
    Cell<int64_t> Key;
    Cell<int64_t> Value;
    Cell<int64_t> Color;
    Cell<Node *> Left;
    Cell<Node *> Right;
    Cell<Node *> Parent;
  };

public:
  RBTree() {
    // The nil sentinel: black, self-linked. Its Parent field is scribbled
    // on during fixups, as in CLRS.
    Nil.Color.store(Black);
    Nil.Left.store(&Nil);
    Nil.Right.store(&Nil);
    Nil.Parent.store(&Nil);
    Root.store(&Nil);
  }

  RBTree(const RBTree &) = delete;
  RBTree &operator=(const RBTree &) = delete;

  ~RBTree() { destroySubtree(Root.load()); }

  /// Inserts \p Key (or updates its value); returns true if newly added.
  bool insert(int64_t Key, int64_t Value) {
    bool Inserted = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        int64_t Displaced = 0;
        {
          std::lock_guard<std::mutex> Guard(BaseLock);
          Inserted = insertImpl(C, Key, Value, &Displaced);
        }
        if (Inserted)
          C.onAbort([this, Key] { undoInsert(Key); });
        else
          C.onAbort([this, Key, Displaced] { undoWrite(Key, Displaced); });
      } else {
        Inserted = insertImpl(C, Key, Value, nullptr);
      }
    });
    return Inserted;
  }

  /// Removes \p Key; returns true if it was present.
  bool erase(int64_t Key) {
    bool Erased = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        int64_t Displaced = 0;
        {
          std::lock_guard<std::mutex> Guard(BaseLock);
          Erased = eraseImpl(C, Key, &Displaced);
        }
        if (Erased)
          C.onAbort([this, Key, Displaced] { undoWrite(Key, Displaced); });
      } else {
        Erased = eraseImpl(C, Key, nullptr);
      }
    });
    return Erased;
  }

  /// Looks up \p Key; returns true and fills \p Value if present.
  bool lookup(int64_t Key, int64_t &Value) {
    bool Found = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        std::lock_guard<std::mutex> Guard(BaseLock);
        Found = lookupCore(C, Key, Value);
      } else {
        Found = lookupCore(C, Key, Value);
      }
    });
    return Found;
  }

  bool contains(int64_t Key) {
    int64_t Ignored;
    return lookup(Key, Ignored);
  }

  /// Transactional in-order sum of values (long read-only transaction). A
  /// whole-container operation has no per-key conflict footprint, so the
  /// boosted path falls back to the structural gate.
  int64_t sumValues() {
    int64_t Sum = 0;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>)
        C.boostAcquireStructural(BoostId);
      Sum = 0;
      sumSubtree(C, rootNode(C), Sum, 0);
    });
    return Sum;
  }

  //===--------------------------------------------------------------------===
  // Quiescent verification helpers (no synchronization)
  //===--------------------------------------------------------------------===

  std::size_t sizeSlow() const { return countSlow(Root.load()); }

  /// Checks the BST ordering and both red-black invariants.
  bool checkInvariantsSlow() const {
    if (Root.load()->Color.load() != Black)
      return false;
    int BlackHeight = -1;
    return checkSlow(Root.load(), INT64_MIN, INT64_MAX, 0, BlackHeight);
  }

private:
  //===--------------------------------------------------------------------===
  // Transactional accessors (optimized barrier placement)
  //===--------------------------------------------------------------------===

  Node *rootNode(Ctx &C) {
    Policy::openRead(C, &RootHolder);
    return Policy::load(C, &RootHolder, Root);
  }

  void setRoot(Ctx &C, Node *N) {
    Policy::openWrite(C, &RootHolder);
    Policy::store(C, &RootHolder, Root, N);
  }

  /// Walks from the root to the node with \p Key, or Nil. One open per
  /// visited node.
  Node *descend(Ctx &C, int64_t Key) {
    Node *Cur = rootNode(C);
    unsigned Steps = 0;
    while (Cur != &Nil) {
      Policy::openRead(C, Cur);
      int64_t CK = Policy::load(C, Cur, Cur->Key);
      if (CK == Key)
        return Cur;
      Cur = (Key < CK) ? Policy::load(C, Cur, Cur->Left)
                       : Policy::load(C, Cur, Cur->Right);
      if ((++Steps & 63) == 0)
        Policy::checkpoint(C);
    }
    return &Nil;
  }

  void rotateLeft(Ctx &C, Node *X) {
    Policy::openWrite(C, X);
    Node *Y = Policy::load(C, X, X->Right);
    Policy::openWrite(C, Y);
    Node *Beta = Policy::load(C, Y, Y->Left);
    Policy::store(C, X, X->Right, Beta);
    if (Beta != &Nil) {
      Policy::openWrite(C, Beta);
      Policy::store(C, Beta, Beta->Parent, X);
    }
    Node *P = Policy::load(C, X, X->Parent);
    Policy::store(C, Y, Y->Parent, P);
    if (P == &Nil) {
      setRoot(C, Y);
    } else {
      Policy::openWrite(C, P);
      if (Policy::load(C, P, P->Left) == X)
        Policy::store(C, P, P->Left, Y);
      else
        Policy::store(C, P, P->Right, Y);
    }
    Policy::store(C, Y, Y->Left, X);
    Policy::store(C, X, X->Parent, Y);
  }

  void rotateRight(Ctx &C, Node *X) {
    Policy::openWrite(C, X);
    Node *Y = Policy::load(C, X, X->Left);
    Policy::openWrite(C, Y);
    Node *Beta = Policy::load(C, Y, Y->Right);
    Policy::store(C, X, X->Left, Beta);
    if (Beta != &Nil) {
      Policy::openWrite(C, Beta);
      Policy::store(C, Beta, Beta->Parent, X);
    }
    Node *P = Policy::load(C, X, X->Parent);
    Policy::store(C, Y, Y->Parent, P);
    if (P == &Nil) {
      setRoot(C, Y);
    } else {
      Policy::openWrite(C, P);
      if (Policy::load(C, P, P->Right) == X)
        Policy::store(C, P, P->Right, Y);
      else
        Policy::store(C, P, P->Left, Y);
    }
    Policy::store(C, Y, Y->Right, X);
    Policy::store(C, X, X->Parent, Y);
  }

  /// Structural body shared by every policy; \p DisplacedOut (boosted
  /// callers only — null elsewhere so no extra barrier perturbs the
  /// non-boosted deterministic counts) receives the overwritten value.
  bool insertImpl(Ctx &C, int64_t Key, int64_t Value, int64_t *DisplacedOut) {
    // Descent phase (reads only).
    Node *Parent = &Nil;
    Node *Cur = rootNode(C);
    unsigned Steps = 0;
    while (Cur != &Nil) {
      Policy::openRead(C, Cur);
      int64_t CK = Policy::load(C, Cur, Cur->Key);
      if (CK == Key) {
        Policy::openWrite(C, Cur);
        if (DisplacedOut)
          *DisplacedOut = Policy::load(C, Cur, Cur->Value);
        Policy::store(C, Cur, Cur->Value, Value);
        return false;
      }
      Parent = Cur;
      Cur = (Key < CK) ? Policy::load(C, Cur, Cur->Left)
                       : Policy::load(C, Cur, Cur->Right);
      if ((++Steps & 63) == 0)
        Policy::checkpoint(C);
    }

    Node *Fresh = Policy::template create<Node>(C);
    Policy::initStore(C, Fresh, Fresh->Key, Key);
    Policy::initStore(C, Fresh, Fresh->Value, Value);
    Policy::initStore(C, Fresh, Fresh->Color, Red);
    Policy::initStore(C, Fresh, Fresh->Left, &Nil);
    Policy::initStore(C, Fresh, Fresh->Right, &Nil);
    Policy::initStore(C, Fresh, Fresh->Parent, Parent);

    if (Parent == &Nil) {
      setRoot(C, Fresh);
    } else {
      Policy::openWrite(C, Parent);
      if (Key < Policy::load(C, Parent, Parent->Key))
        Policy::store(C, Parent, Parent->Left, Fresh);
      else
        Policy::store(C, Parent, Parent->Right, Fresh);
    }
    insertFixup(C, Fresh);
    return true;
  }

  void insertFixup(Ctx &C, Node *Z) {
    for (;;) {
      Policy::openRead(C, Z);
      Node *P = Policy::load(C, Z, Z->Parent);
      if (P == &Nil)
        break;
      Policy::openRead(C, P);
      if (Policy::load(C, P, P->Color) != Red)
        break;
      Node *G = Policy::load(C, P, P->Parent); // grandparent exists: P red
      Policy::openRead(C, G);
      if (Policy::load(C, G, G->Left) == P) {
        Node *Uncle = Policy::load(C, G, G->Right);
        Policy::openRead(C, Uncle);
        if (Uncle != &Nil && Policy::load(C, Uncle, Uncle->Color) == Red) {
          Policy::openWrite(C, P);
          Policy::store(C, P, P->Color, Black);
          Policy::openWrite(C, Uncle);
          Policy::store(C, Uncle, Uncle->Color, Black);
          Policy::openWrite(C, G);
          Policy::store(C, G, G->Color, Red);
          Z = G;
          continue;
        }
        if (Policy::load(C, P, P->Right) == Z) {
          Z = P;
          rotateLeft(C, Z);
          P = Policy::load(C, Z, Z->Parent);
        }
        Policy::openWrite(C, P);
        Policy::store(C, P, P->Color, Black);
        G = Policy::load(C, P, P->Parent);
        Policy::openWrite(C, G);
        Policy::store(C, G, G->Color, Red);
        rotateRight(C, G);
      } else {
        Node *Uncle = Policy::load(C, G, G->Left);
        Policy::openRead(C, Uncle);
        if (Uncle != &Nil && Policy::load(C, Uncle, Uncle->Color) == Red) {
          Policy::openWrite(C, P);
          Policy::store(C, P, P->Color, Black);
          Policy::openWrite(C, Uncle);
          Policy::store(C, Uncle, Uncle->Color, Black);
          Policy::openWrite(C, G);
          Policy::store(C, G, G->Color, Red);
          Z = G;
          continue;
        }
        if (Policy::load(C, P, P->Left) == Z) {
          Z = P;
          rotateRight(C, Z);
          P = Policy::load(C, Z, Z->Parent);
        }
        Policy::openWrite(C, P);
        Policy::store(C, P, P->Color, Black);
        G = Policy::load(C, P, P->Parent);
        Policy::openWrite(C, G);
        Policy::store(C, G, G->Color, Red);
        rotateLeft(C, G);
      }
    }
    Node *R = rootNode(C);
    Policy::openWrite(C, R);
    Policy::store(C, R, R->Color, Black);
  }

  /// Replaces subtree rooted at \p U with the one rooted at \p V.
  void transplant(Ctx &C, Node *U, Node *V) {
    Policy::openRead(C, U);
    Node *P = Policy::load(C, U, U->Parent);
    if (P == &Nil) {
      setRoot(C, V);
    } else {
      Policy::openWrite(C, P);
      if (Policy::load(C, P, P->Left) == U)
        Policy::store(C, P, P->Left, V);
      else
        Policy::store(C, P, P->Right, V);
    }
    Policy::openWrite(C, V);
    Policy::store(C, V, V->Parent, P);
  }

  Node *minimum(Ctx &C, Node *N) {
    unsigned Steps = 0;
    for (;;) {
      Policy::openRead(C, N);
      Node *L = Policy::load(C, N, N->Left);
      if (L == &Nil)
        return N;
      N = L;
      if ((++Steps & 63) == 0)
        Policy::checkpoint(C);
    }
  }

  bool eraseImpl(Ctx &C, int64_t Key, int64_t *DisplacedOut) {
    Node *Z = descend(C, Key);
    if (Z == &Nil)
      return false;

    Policy::openRead(C, Z);
    if (DisplacedOut)
      *DisplacedOut = Policy::load(C, Z, Z->Value);
    Node *Y = Z;
    int64_t YColor = Policy::load(C, Z, Z->Color);
    Node *X = &Nil;

    Node *ZL = Policy::load(C, Z, Z->Left);
    Node *ZR = Policy::load(C, Z, Z->Right);
    if (ZL == &Nil) {
      X = ZR;
      transplant(C, Z, ZR);
    } else if (ZR == &Nil) {
      X = ZL;
      transplant(C, Z, ZL);
    } else {
      Y = minimum(C, ZR);
      Policy::openRead(C, Y);
      YColor = Policy::load(C, Y, Y->Color);
      X = Policy::load(C, Y, Y->Right);
      if (Policy::load(C, Y, Y->Parent) == Z) {
        Policy::openWrite(C, X);
        Policy::store(C, X, X->Parent, Y);
      } else {
        transplant(C, Y, X);
        Policy::openWrite(C, Y);
        Node *NewRight = Policy::load(C, Z, Z->Right);
        Policy::store(C, Y, Y->Right, NewRight);
        Policy::openWrite(C, NewRight);
        Policy::store(C, NewRight, NewRight->Parent, Y);
      }
      transplant(C, Z, Y);
      Policy::openWrite(C, Y);
      Node *NewLeft = Policy::load(C, Z, Z->Left);
      Policy::store(C, Y, Y->Left, NewLeft);
      Policy::openWrite(C, NewLeft);
      Policy::store(C, NewLeft, NewLeft->Parent, Y);
      Policy::store(C, Y, Y->Color, Policy::load(C, Z, Z->Color));
    }
    if (YColor == Black)
      eraseFixup(C, X);
    Policy::destroy(C, Z);
    return true;
  }

  void eraseFixup(Ctx &C, Node *X) {
    unsigned Steps = 0;
    for (;;) {
      Policy::openRead(C, X);
      if (X == rootNode(C) || Policy::load(C, X, X->Color) == Red)
        break;
      if ((++Steps & 31) == 0)
        Policy::checkpoint(C);
      Node *P = Policy::load(C, X, X->Parent);
      Policy::openRead(C, P);
      if (Policy::load(C, P, P->Left) == X) {
        Node *W = Policy::load(C, P, P->Right);
        Policy::openRead(C, W);
        if (Policy::load(C, W, W->Color) == Red) {
          Policy::openWrite(C, W);
          Policy::store(C, W, W->Color, Black);
          Policy::openWrite(C, P);
          Policy::store(C, P, P->Color, Red);
          rotateLeft(C, P);
          W = Policy::load(C, P, P->Right);
          Policy::openRead(C, W);
        }
        Node *WL = Policy::load(C, W, W->Left);
        Node *WR = Policy::load(C, W, W->Right);
        Policy::openRead(C, WL);
        Policy::openRead(C, WR);
        bool LBlack = Policy::load(C, WL, WL->Color) == Black;
        bool RBlack = Policy::load(C, WR, WR->Color) == Black;
        if (LBlack && RBlack) {
          Policy::openWrite(C, W);
          Policy::store(C, W, W->Color, Red);
          X = P;
          continue;
        }
        if (RBlack) {
          Policy::openWrite(C, WL);
          Policy::store(C, WL, WL->Color, Black);
          Policy::openWrite(C, W);
          Policy::store(C, W, W->Color, Red);
          rotateRight(C, W);
          W = Policy::load(C, P, P->Right);
          Policy::openRead(C, W);
        }
        Policy::openWrite(C, W);
        Policy::store(C, W, W->Color, Policy::load(C, P, P->Color));
        Policy::openWrite(C, P);
        Policy::store(C, P, P->Color, Black);
        Node *WR2 = Policy::load(C, W, W->Right);
        Policy::openWrite(C, WR2);
        Policy::store(C, WR2, WR2->Color, Black);
        rotateLeft(C, P);
        break;
      } else {
        Node *W = Policy::load(C, P, P->Left);
        Policy::openRead(C, W);
        if (Policy::load(C, W, W->Color) == Red) {
          Policy::openWrite(C, W);
          Policy::store(C, W, W->Color, Black);
          Policy::openWrite(C, P);
          Policy::store(C, P, P->Color, Red);
          rotateRight(C, P);
          W = Policy::load(C, P, P->Left);
          Policy::openRead(C, W);
        }
        Node *WL = Policy::load(C, W, W->Left);
        Node *WR = Policy::load(C, W, W->Right);
        Policy::openRead(C, WL);
        Policy::openRead(C, WR);
        bool LBlack = Policy::load(C, WL, WL->Color) == Black;
        bool RBlack = Policy::load(C, WR, WR->Color) == Black;
        if (LBlack && RBlack) {
          Policy::openWrite(C, W);
          Policy::store(C, W, W->Color, Red);
          X = P;
          continue;
        }
        if (LBlack) {
          Policy::openWrite(C, WR);
          Policy::store(C, WR, WR->Color, Black);
          Policy::openWrite(C, W);
          Policy::store(C, W, W->Color, Red);
          rotateLeft(C, W);
          W = Policy::load(C, P, P->Left);
          Policy::openRead(C, W);
        }
        Policy::openWrite(C, W);
        Policy::store(C, W, W->Color, Policy::load(C, P, P->Color));
        Policy::openWrite(C, P);
        Policy::store(C, P, P->Color, Black);
        Node *WL2 = Policy::load(C, W, W->Left);
        Policy::openWrite(C, WL2);
        Policy::store(C, WL2, WL2->Color, Black);
        rotateRight(C, P);
        break;
      }
    }
    Policy::openWrite(C, X);
    Policy::store(C, X, X->Color, Black);
  }

  bool lookupCore(Ctx &C, int64_t Key, int64_t &Value) {
    Node *N = descend(C, Key);
    if (N == &Nil)
      return false;
    Value = Policy::load(C, N, N->Value);
    return true;
  }

  // Semantic inverses (abort handlers; abstract key lock still held). They
  // operate by key, never through a retained node pointer — erase-then-
  // rebalance may have moved or unlinked the node the forward op touched.
  void undoInsert(int64_t Key) {
    Ctx &C = stm::TxManager::current();
    std::lock_guard<std::mutex> Guard(BaseLock);
    eraseImpl(C, Key, nullptr);
  }

  /// Restores \p Key to \p OldValue — the inverse of both an update (store
  /// back the displaced value) and an erase (re-insert the displaced pair;
  /// the tree shape may differ from the pre-erase shape, but red-black
  /// invariants and the key→value map are restored, which is the semantic
  /// contract).
  void undoWrite(int64_t Key, int64_t OldValue) {
    Ctx &C = stm::TxManager::current();
    std::lock_guard<std::mutex> Guard(BaseLock);
    insertImpl(C, Key, OldValue, nullptr);
  }

  void sumSubtree(Ctx &C, Node *N, int64_t &Sum, unsigned Depth) {
    if (N == &Nil || Depth > 128)
      return;
    Policy::openRead(C, N);
    Sum += Policy::load(C, N, N->Value);
    sumSubtree(C, Policy::load(C, N, N->Left), Sum, Depth + 1);
    sumSubtree(C, Policy::load(C, N, N->Right), Sum, Depth + 1);
  }

  //===--------------------------------------------------------------------===
  // Quiescent helpers
  //===--------------------------------------------------------------------===

  void destroySubtree(Node *N) {
    if (N == &Nil)
      return;
    destroySubtree(N->Left.load());
    destroySubtree(N->Right.load());
    delete N;
  }

  std::size_t countSlow(Node *N) const {
    if (N == &Nil)
      return 0;
    return 1 + countSlow(N->Left.load()) + countSlow(N->Right.load());
  }

  bool checkSlow(Node *N, int64_t Lo, int64_t Hi, int Blacks,
                 int &ExpectedBlacks) const {
    if (N == &Nil) {
      if (ExpectedBlacks < 0)
        ExpectedBlacks = Blacks;
      return Blacks == ExpectedBlacks;
    }
    int64_t K = N->Key.load();
    if (K <= Lo || K >= Hi)
      return false;
    int64_t Color = N->Color.load();
    if (Color == Red) {
      if (N->Left.load()->Color.load() == Red ||
          N->Right.load()->Color.load() == Red)
        return false;
    } else {
      ++Blacks;
    }
    return checkSlow(N->Left.load(), Lo, K, Blacks, ExpectedBlacks) &&
           checkSlow(N->Right.load(), K, Hi, Blacks, ExpectedBlacks);
  }

  /// Holder object giving the root pointer its own STM word.
  struct RootHolderType : Policy::ObjBase {
  } RootHolder;
  Cell<Node *> Root;
  Node Nil;

  /// Boosting state; inert under non-boosted policies.
  const uint64_t BoostId = txn::AbstractLockTable::nextContainerId();
  std::mutex BaseLock;
};

} // namespace containers
} // namespace otm

#endif // OTM_CONTAINERS_RBTREE_H
