//===- containers/HashMap.h - Transactional chained hash map ---*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity chained hash map templated over a synchronization
/// policy — the paper's flagship scalability benchmark (E3): written once
/// as straight-line `atomic` code, it is compared against the hand-tuned
/// fine-grained-lock map in src/sync. Each bucket head is its own
/// transactional object so that conflicts are per-bucket, mirroring the
/// object granularity a C# array-of-heads would *not* give (the paper notes
/// array-granularity conflicts; we follow the common idiom of one head
/// object per bucket).
///
/// Under a boosted policy (Policy::Boosted, DESIGN.md §3.10) the public
/// operations route through boosted wrappers instead: acquire the abstract
/// (container, key) lock, apply the same structural core under the short
/// base lock, and register the semantic inverse as the abort action. Two
/// transactions then conflict only when they touch the same key — never on
/// a shared bucket head.
///
/// The table does not rehash: capacity is fixed at construction, as in the
/// paper's benchmark configuration.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_CONTAINERS_HASHMAP_H
#define OTM_CONTAINERS_HASHMAP_H

#include "containers/Policy.h"

#include <cstddef>
#include <cstdint>
#include <memory>

namespace otm {
namespace containers {

template <typename Policy> class HashMap {
  using Ctx = typename Policy::Ctx;
  template <typename T> using Cell = typename Policy::template Cell<T>;

  struct Node : Policy::ObjBase {
    Cell<int64_t> Key;
    Cell<int64_t> Value;
    Cell<Node *> Next;
  };

  struct Bucket : Policy::ObjBase {
    Cell<Node *> Head;
  };

public:
  explicit HashMap(std::size_t BucketCount)
      : NumBuckets(roundUpPow2(BucketCount)),
        Buckets(std::make_unique<Bucket[]>(NumBuckets)) {}

  HashMap(const HashMap &) = delete;
  HashMap &operator=(const HashMap &) = delete;

  ~HashMap() {
    for (std::size_t I = 0; I < NumBuckets; ++I) {
      Node *N = Buckets[I].Head.load();
      while (N) {
        Node *Next = N->Next.load();
        delete N;
        N = Next;
      }
    }
  }

  /// Inserts or updates; returns true if the key was newly inserted.
  bool insert(int64_t Key, int64_t Value) {
    bool Inserted = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        int64_t Displaced = 0;
        {
          std::lock_guard<std::mutex> Guard(BaseLock);
          Inserted = insertCore(C, Key, Value, &Displaced);
        }
        if (Inserted)
          C.onAbort([this, Key] { undoInsert(Key); });
        else
          C.onAbort([this, Key, Displaced] { undoUpdate(Key, Displaced); });
      } else {
        Inserted = insertCore(C, Key, Value, nullptr);
      }
    });
    return Inserted;
  }

  /// Removes \p Key; returns true if it was present.
  bool erase(int64_t Key) {
    bool Erased = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        int64_t Displaced = 0;
        {
          std::lock_guard<std::mutex> Guard(BaseLock);
          Erased = eraseCore(C, Key, &Displaced);
        }
        if (Erased)
          C.onAbort([this, Key, Displaced] { undoErase(Key, Displaced); });
      } else {
        Erased = eraseCore(C, Key, nullptr);
      }
    });
    return Erased;
  }

  /// Looks up \p Key; returns true and fills \p Value if present.
  bool lookup(int64_t Key, int64_t &Value) {
    bool Found = false;
    Policy::run([&](Ctx &C) {
      if constexpr (kBoostedPolicy<Policy>) {
        // Exclusive abstract lock even for the read: the lock table does
        // not distinguish modes, and a lookup's "inverse" is a no-op.
        C.boostAcquireKey(BoostId, static_cast<uint64_t>(Key));
        std::lock_guard<std::mutex> Guard(BaseLock);
        Found = lookupCore(C, Key, Value);
      } else {
        Found = lookupCore(C, Key, Value);
      }
    });
    return Found;
  }

  bool contains(int64_t Key) {
    int64_t Ignored;
    return lookup(Key, Ignored);
  }

  std::size_t bucketCount() const { return NumBuckets; }

  /// Quiescent size (verification only).
  std::size_t sizeSlow() const {
    std::size_t Count = 0;
    for (std::size_t I = 0; I < NumBuckets; ++I)
      for (Node *N = Buckets[I].Head.load(); N; N = N->Next.load())
        ++Count;
    return Count;
  }

  /// Quiescent check that every node hashes to its bucket.
  bool checkPlacementSlow() const {
    for (std::size_t I = 0; I < NumBuckets; ++I)
      for (Node *N = Buckets[I].Head.load(); N; N = N->Next.load())
        if ((hash(N->Key.load()) & (NumBuckets - 1)) != I)
          return false;
    return true;
  }

private:
  /// The structural body shared by every policy. \p DisplacedOut (boosted
  /// callers only — it must stay null elsewhere so no extra barrier
  /// perturbs the non-boosted policies' deterministic counts) receives the
  /// value an update overwrote.
  bool insertCore(Ctx &C, int64_t Key, int64_t Value,
                  int64_t *DisplacedOut) {
    Bucket *B = bucketFor(Key);
    Policy::openRead(C, B);
    Node *Head = Policy::load(C, B, B->Head);
    for (Node *N = Head; N; N = Policy::load(C, N, N->Next)) {
      Policy::openRead(C, N);
      if (Policy::load(C, N, N->Key) == Key) {
        Policy::openWrite(C, N);
        if (DisplacedOut)
          *DisplacedOut = Policy::load(C, N, N->Value);
        Policy::store(C, N, N->Value, Value);
        return false;
      }
    }
    Node *Fresh = Policy::template create<Node>(C);
    Policy::initStore(C, Fresh, Fresh->Key, Key);
    Policy::initStore(C, Fresh, Fresh->Value, Value);
    Policy::initStore(C, Fresh, Fresh->Next, Head);
    Policy::openWrite(C, B);
    Policy::store(C, B, B->Head, Fresh);
    return true;
  }

  bool eraseCore(Ctx &C, int64_t Key, int64_t *DisplacedOut) {
    Bucket *B = bucketFor(Key);
    Policy::openRead(C, B);
    Node *Cur = Policy::load(C, B, B->Head);
    Node *Prev = nullptr;
    while (Cur) {
      Policy::openRead(C, Cur);
      if (Policy::load(C, Cur, Cur->Key) == Key)
        break;
      Prev = Cur;
      Cur = Policy::load(C, Cur, Cur->Next);
    }
    if (!Cur)
      return false;
    if (DisplacedOut)
      *DisplacedOut = Policy::load(C, Cur, Cur->Value);
    Node *After = Policy::load(C, Cur, Cur->Next);
    if (Prev) {
      Policy::openWrite(C, Prev);
      Policy::store(C, Prev, Prev->Next, After);
    } else {
      Policy::openWrite(C, B);
      Policy::store(C, B, B->Head, After);
    }
    Policy::destroy(C, Cur);
    return true;
  }

  bool lookupCore(Ctx &C, int64_t Key, int64_t &Value) {
    Bucket *B = bucketFor(Key);
    Policy::openRead(C, B);
    for (Node *N = Policy::load(C, B, B->Head); N;
         N = Policy::load(C, N, N->Next)) {
      Policy::openRead(C, N);
      if (Policy::load(C, N, N->Key) == Key) {
        Value = Policy::load(C, N, N->Value);
        return true;
      }
    }
    return false;
  }

  // Semantic inverses, run as abort handlers while the abstract key lock is
  // still held. They operate by key, never through a retained node pointer
  // (the node an operation touched may since have been unlinked by a later
  // operation of the same transaction).
  void undoInsert(int64_t Key) {
    Ctx &C = stm::TxManager::current();
    std::lock_guard<std::mutex> Guard(BaseLock);
    eraseCore(C, Key, nullptr);
  }

  void undoUpdate(int64_t Key, int64_t OldValue) {
    Ctx &C = stm::TxManager::current();
    std::lock_guard<std::mutex> Guard(BaseLock);
    insertCore(C, Key, OldValue, nullptr);
  }

  void undoErase(int64_t Key, int64_t OldValue) {
    Ctx &C = stm::TxManager::current();
    std::lock_guard<std::mutex> Guard(BaseLock);
    insertCore(C, Key, OldValue, nullptr);
  }

  static std::size_t roundUpPow2(std::size_t N) {
    std::size_t P = 1;
    while (P < N)
      P <<= 1;
    return P;
  }

  static uint64_t hash(int64_t Key) {
    uint64_t H = static_cast<uint64_t>(Key);
    H ^= H >> 33;
    H *= 0xff51afd7ed558ccdULL;
    H ^= H >> 33;
    return H;
  }

  Bucket *bucketFor(int64_t Key) {
    return &Buckets[hash(Key) & (NumBuckets - 1)];
  }

  std::size_t NumBuckets;
  std::unique_ptr<Bucket[]> Buckets;

  /// Boosting state; inert under non-boosted policies (the id costs one
  /// relaxed fetch_add at construction).
  const uint64_t BoostId = txn::AbstractLockTable::nextContainerId();
  std::mutex BaseLock;
};

} // namespace containers
} // namespace otm

#endif // OTM_CONTAINERS_HASHMAP_H
