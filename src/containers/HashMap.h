//===- containers/HashMap.h - Transactional chained hash map ---*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity chained hash map templated over a synchronization
/// policy — the paper's flagship scalability benchmark (E3): written once
/// as straight-line `atomic` code, it is compared against the hand-tuned
/// fine-grained-lock map in src/sync. Each bucket head is its own
/// transactional object so that conflicts are per-bucket, mirroring the
/// object granularity a C# array-of-heads would *not* give (the paper notes
/// array-granularity conflicts; we follow the common idiom of one head
/// object per bucket).
///
/// The table does not rehash: capacity is fixed at construction, as in the
/// paper's benchmark configuration.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_CONTAINERS_HASHMAP_H
#define OTM_CONTAINERS_HASHMAP_H

#include "containers/Policy.h"

#include <cstddef>
#include <cstdint>
#include <memory>

namespace otm {
namespace containers {

template <typename Policy> class HashMap {
  using Ctx = typename Policy::Ctx;
  template <typename T> using Cell = typename Policy::template Cell<T>;

  struct Node : Policy::ObjBase {
    Cell<int64_t> Key;
    Cell<int64_t> Value;
    Cell<Node *> Next;
  };

  struct Bucket : Policy::ObjBase {
    Cell<Node *> Head;
  };

public:
  explicit HashMap(std::size_t BucketCount)
      : NumBuckets(roundUpPow2(BucketCount)),
        Buckets(std::make_unique<Bucket[]>(NumBuckets)) {}

  HashMap(const HashMap &) = delete;
  HashMap &operator=(const HashMap &) = delete;

  ~HashMap() {
    for (std::size_t I = 0; I < NumBuckets; ++I) {
      Node *N = Buckets[I].Head.load();
      while (N) {
        Node *Next = N->Next.load();
        delete N;
        N = Next;
      }
    }
  }

  /// Inserts or updates; returns true if the key was newly inserted.
  bool insert(int64_t Key, int64_t Value) {
    Bucket *B = bucketFor(Key);
    bool Inserted = false;
    Policy::run([&](Ctx &C) {
      Policy::openRead(C, B);
      Node *Head = Policy::load(C, B, B->Head);
      for (Node *N = Head; N; N = Policy::load(C, N, N->Next)) {
        Policy::openRead(C, N);
        if (Policy::load(C, N, N->Key) == Key) {
          Policy::openWrite(C, N);
          Policy::store(C, N, N->Value, Value);
          Inserted = false;
          return;
        }
      }
      Node *Fresh = Policy::template create<Node>(C);
      Policy::initStore(C, Fresh, Fresh->Key, Key);
      Policy::initStore(C, Fresh, Fresh->Value, Value);
      Policy::initStore(C, Fresh, Fresh->Next, Head);
      Policy::openWrite(C, B);
      Policy::store(C, B, B->Head, Fresh);
      Inserted = true;
    });
    return Inserted;
  }

  /// Removes \p Key; returns true if it was present.
  bool erase(int64_t Key) {
    Bucket *B = bucketFor(Key);
    bool Erased = false;
    Policy::run([&](Ctx &C) {
      Erased = false;
      Policy::openRead(C, B);
      Node *Cur = Policy::load(C, B, B->Head);
      Node *Prev = nullptr;
      while (Cur) {
        Policy::openRead(C, Cur);
        if (Policy::load(C, Cur, Cur->Key) == Key)
          break;
        Prev = Cur;
        Cur = Policy::load(C, Cur, Cur->Next);
      }
      if (!Cur)
        return;
      Node *After = Policy::load(C, Cur, Cur->Next);
      if (Prev) {
        Policy::openWrite(C, Prev);
        Policy::store(C, Prev, Prev->Next, After);
      } else {
        Policy::openWrite(C, B);
        Policy::store(C, B, B->Head, After);
      }
      Policy::destroy(C, Cur);
      Erased = true;
    });
    return Erased;
  }

  /// Looks up \p Key; returns true and fills \p Value if present.
  bool lookup(int64_t Key, int64_t &Value) {
    Bucket *B = bucketFor(Key);
    bool Found = false;
    Policy::run([&](Ctx &C) {
      Found = false;
      Policy::openRead(C, B);
      for (Node *N = Policy::load(C, B, B->Head); N;
           N = Policy::load(C, N, N->Next)) {
        Policy::openRead(C, N);
        if (Policy::load(C, N, N->Key) == Key) {
          Value = Policy::load(C, N, N->Value);
          Found = true;
          return;
        }
      }
    });
    return Found;
  }

  bool contains(int64_t Key) {
    int64_t Ignored;
    return lookup(Key, Ignored);
  }

  std::size_t bucketCount() const { return NumBuckets; }

  /// Quiescent size (verification only).
  std::size_t sizeSlow() const {
    std::size_t Count = 0;
    for (std::size_t I = 0; I < NumBuckets; ++I)
      for (Node *N = Buckets[I].Head.load(); N; N = N->Next.load())
        ++Count;
    return Count;
  }

  /// Quiescent check that every node hashes to its bucket.
  bool checkPlacementSlow() const {
    for (std::size_t I = 0; I < NumBuckets; ++I)
      for (Node *N = Buckets[I].Head.load(); N; N = N->Next.load())
        if ((hash(N->Key.load()) & (NumBuckets - 1)) != I)
          return false;
    return true;
  }

private:
  static std::size_t roundUpPow2(std::size_t N) {
    std::size_t P = 1;
    while (P < N)
      P <<= 1;
    return P;
  }

  static uint64_t hash(int64_t Key) {
    uint64_t H = static_cast<uint64_t>(Key);
    H ^= H >> 33;
    H *= 0xff51afd7ed558ccdULL;
    H ^= H >> 33;
    return H;
  }

  Bucket *bucketFor(int64_t Key) {
    return &Buckets[hash(Key) & (NumBuckets - 1)];
  }

  std::size_t NumBuckets;
  std::unique_ptr<Bucket[]> Buckets;
};

} // namespace containers
} // namespace otm

#endif // OTM_CONTAINERS_HASHMAP_H
