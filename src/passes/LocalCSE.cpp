//===- passes/LocalCSE.cpp - Local load/copy forwarding --------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Soundness note: TMIR registers are statically single-assignment but their
// definitions re-execute in loops, so forwarding %a -> %s is only safe when
// every re-execution of %s's definition also re-executes the forwarding
// point. That holds when both live in the same block (blocks execute
// atomically from entry to terminator). We therefore forward only values
// that are constants or registers defined earlier in the same block.
//
//===----------------------------------------------------------------------===//

#include "passes/LocalCSE.h"

#include <unordered_map>
#include <unordered_set>

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

/// Rewrites every use of register \p Reg in \p F to \p Replacement.
void replaceAllUses(Function &F, int Reg, const Value &Replacement) {
  for (std::unique_ptr<BasicBlock> &BB : F.Blocks)
    for (Instr &I : BB->Instrs)
      for (Value &V : I.Operands)
        if (V.isReg() && V.regId() == Reg)
          V = Replacement;
}

bool runOnFunction(Function &F) {
  bool Changed = false;
  for (std::unique_ptr<BasicBlock> &BB : F.Blocks) {
    // Registers defined earlier in this block (safe forwarding sources).
    std::unordered_set<int> DefinedHere;
    // Known value of each local slot, if forwardable.
    std::unordered_map<int, Value> SlotValue;

    auto Forwardable = [&](const Value &V) {
      if (V.isImm() || V.isNull())
        return true;
      return V.isReg() && DefinedHere.count(V.regId()) != 0;
    };

    std::vector<Instr> Kept;
    Kept.reserve(BB->Instrs.size());
    for (Instr &I : BB->Instrs) {
      switch (I.Op) {
      case Opcode::LoadLocal: {
        auto It = SlotValue.find(I.LocalIdx);
        if (It != SlotValue.end()) {
          replaceAllUses(F, I.ResultReg, It->second);
          Changed = true;
          continue; // drop the redundant load
        }
        SlotValue[I.LocalIdx] = Value::reg(I.ResultReg);
        break;
      }
      case Opcode::StoreLocal:
        if (Forwardable(I.Operands[0]))
          SlotValue[I.LocalIdx] = I.Operands[0];
        else
          SlotValue.erase(I.LocalIdx);
        break;
      case Opcode::Mov:
        if (Forwardable(I.Operands[0])) {
          replaceAllUses(F, I.ResultReg, I.Operands[0]);
          Changed = true;
          continue; // drop the copy
        }
        break;
      default:
        break;
      }
      if (I.ResultReg >= 0)
        DefinedHere.insert(I.ResultReg);
      Kept.push_back(std::move(I));
    }
    BB->Instrs = std::move(Kept);
  }
  return Changed;
}

} // namespace

bool LocalCsePass::run(Module &M) {
  bool Changed = false;
  for (std::unique_ptr<Function> &F : M.Functions)
    Changed |= runOnFunction(*F);
  return Changed;
}
