//===- passes/LocalCSE.h - Local load/copy forwarding ----------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Block-local value forwarding that makes the barrier dataflow effective:
///
///   - a LoadLocal of a slot whose value is already in a register (from an
///     earlier load or store in the same block) is deleted and its uses
///     rewritten to that register;
///   - `mov %a, %b` / `mov %a, <const>` is deleted and uses of %a
///     rewritten (copy propagation).
///
/// This matters because open availability is keyed on registers: without
/// forwarding, each reload of the same local would look like a different
/// object to the open-elimination pass — the same interplay the paper gets
/// from running its STM decomposition before the compiler's standard CSE.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_LOCALCSE_H
#define OTM_PASSES_LOCALCSE_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

class LocalCsePass : public Pass {
public:
  const char *name() const override { return "local-cse"; }
  bool run(tmir::Module &M) override;
};

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_LOCALCSE_H
