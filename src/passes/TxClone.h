//===- passes/TxClone.h - Transactional function cloning -------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Creates transactional clones of functions called from atomic regions —
/// the paper's dual-version compilation: `f` keeps its unbarriered body for
/// non-transactional callers, while `f$tx` (Function::IsAllAtomic) is the
/// version the barrier-insertion pass instruments throughout. Call sites
/// inside atomic regions (and inside clones) are retargeted to the clones,
/// transitively over the call graph.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_TXCLONE_H
#define OTM_PASSES_TXCLONE_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

class TxClonePass : public Pass {
public:
  const char *name() const override { return "tx-clone"; }
  bool run(tmir::Module &M) override;
};

/// Deep-copies \p F into \p M under \p CloneName (exposed for tests).
tmir::Function *cloneFunction(tmir::Module &M, const tmir::Function &F,
                              const std::string &CloneName);

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_TXCLONE_H
