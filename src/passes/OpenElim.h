//===- passes/OpenElim.h - Redundant barrier elimination -------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central optimization: because the decomposed open and
/// undo-log operations are idempotent within a transaction, any such
/// operation *dominated* by an equal-or-stronger one on the same reference
/// is redundant. Implemented as a forward must-available dataflow:
///
///   - OpenForRead(r) is removed if OpenRead(r) or OpenUpdate(r) is
///     available (an update open subsumes a read open);
///   - OpenForUpdate(r) is removed if OpenUpdate(r) is available;
///   - LogUndoField / LogUndoElem are removed if the same (object, field)
///     or (array, index) fact is available;
///   - barriers on the constant null are removed outright (the runtime
///     treats them as no-ops).
///
/// Facts die at the defining instruction of their register (loop back
/// edges re-execute the definition) and at region boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_OPENELIM_H
#define OTM_PASSES_OPENELIM_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

class OpenElimPass : public Pass {
public:
  const char *name() const override { return "open-elim"; }
  bool run(tmir::Module &M) override;

  /// Barriers removed by the last run (for reports/tests).
  unsigned removedLastRun() const { return Removed; }

private:
  unsigned Removed = 0;
};

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_OPENELIM_H
