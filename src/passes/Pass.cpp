//===- passes/Pass.cpp - Pass framework -----------------------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Pass.h"

#include "tmir/Verifier.h"

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

BarrierCounts passes::countBarriers(const Function &F) {
  BarrierCounts C;
  for (const std::unique_ptr<BasicBlock> &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      switch (I.Op) {
      case Opcode::OpenForRead:
        ++C.OpenRead;
        break;
      case Opcode::OpenForUpdate:
        ++C.OpenUpdate;
        break;
      case Opcode::LogUndoField:
        ++C.UndoField;
        break;
      case Opcode::LogUndoElem:
        ++C.UndoElem;
        break;
      default:
        break;
      }
  return C;
}

BarrierCounts passes::countBarriers(const Module &M) {
  BarrierCounts C;
  for (const std::unique_ptr<Function> &F : M.Functions) {
    BarrierCounts FC = countBarriers(*F);
    C.OpenRead += FC.OpenRead;
    C.OpenUpdate += FC.OpenUpdate;
    C.UndoField += FC.UndoField;
    C.UndoElem += FC.UndoElem;
  }
  return C;
}

std::vector<PassReport> PassManager::run(Module &M) {
  std::vector<PassReport> Reports;
  for (std::unique_ptr<Pass> &P : Passes) {
    PassReport R;
    R.PassName = P->name();
    R.Before = countBarriers(M);
    R.Changed = P->run(M);
    R.After = countBarriers(M);
    verifyModuleOrDie(M); // every pass must leave the module well-formed
    Reports.push_back(std::move(R));
  }
  return Reports;
}
