//===- passes/OpenLicm.cpp - Loop-invariant open hoisting ------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/OpenLicm.h"

#include "obs/Statistic.h"
#include "passes/DataflowUtil.h"
#include "tmir/AtomicRegions.h"
#include "tmir/Dominators.h"
#include "tmir/LoopInfo.h"

#include <set>

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

/// Finds the block where register \p Reg is defined, or -1.
int findDefBlock(const Function &F, int Reg) {
  for (const std::unique_ptr<BasicBlock> &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.ResultReg == Reg)
        return BB->Id;
  return -1;
}

/// A stable key identifying a barrier for deduplication when hoisting.
uint64_t barrierKey(const Instr &I) {
  if (!I.Operands[0].isReg())
    return 0;
  uint64_t R = static_cast<uint64_t>(I.Operands[0].regId());
  switch (I.Op) {
  case Opcode::OpenForRead:
    return packFact(FactKind::OpenRead, R);
  case Opcode::OpenForUpdate:
    return packFact(FactKind::OpenUpdate, R);
  case Opcode::LogUndoField:
    return packFact(FactKind::UndoField, R, static_cast<uint64_t>(I.ClassId),
                    static_cast<uint64_t>(I.FieldIdx));
  case Opcode::LogUndoElem:
    return packUndoElem(I.Operands[0].regId(), I.Operands[1]);
  default:
    return 0;
  }
}

/// Performs one round of hoisting on \p F; returns hoist count (0 = done).
unsigned hoistOnce(Function &F) {
  AtomicRegions AR(F);
  if (!AR.valid())
    return 0;
  DominatorTree DT(F);
  LoopInfo LI(F, DT);

  for (const Loop &L : LI.loops()) {
    // The whole loop must run transactionally: every block enters inside a
    // region and contains no region markers.
    bool FullyAtomic = true;
    for (int B : L.Blocks) {
      if (!F.IsAllAtomic && !AR.inAtomicAtEntry(B)) {
        FullyAtomic = false;
        break;
      }
      for (const Instr &I : F.Blocks[B]->Instrs)
        if (I.Op == Opcode::AtomicBegin || I.Op == Opcode::AtomicEnd) {
          FullyAtomic = false;
          break;
        }
    }
    if (!FullyAtomic)
      continue;

    // Collect hoistable barriers.
    struct Candidate {
      int Block;
      std::size_t Index;
    };
    std::vector<Candidate> Candidates;
    std::set<uint64_t> Keys;
    for (int B : L.Blocks) {
      bool DominatesLatches = true;
      for (int Latch : L.Latches)
        if (!DT.dominates(B, Latch)) {
          DominatesLatches = false;
          break;
        }
      if (!DominatesLatches)
        continue;
      const BasicBlock &BB = *F.Blocks[B];
      for (std::size_t II = 0; II < BB.Instrs.size(); ++II) {
        const Instr &I = BB.Instrs[II];
        if (!isBarrier(I.Op))
          continue;
        // Every register the barrier mentions must be loop-invariant.
        bool Invariant = true;
        for (const Value &V : I.Operands)
          if (V.isReg()) {
            int Def = findDefBlock(F, V.regId());
            if (Def < 0 || L.contains(Def)) {
              Invariant = false;
              break;
            }
          }
        if (!Invariant)
          continue;
        uint64_t Key = barrierKey(I);
        if (Key == 0 || Keys.count(Key))
          continue; // unkeyable or duplicate of an already-hoisted barrier
        Keys.insert(Key);
        Candidates.push_back({B, II});
      }
    }
    if (Candidates.empty())
      continue;

    // Find or create the preheader.
    std::vector<std::vector<int>> Preds = F.computePredecessors();
    std::vector<int> Outside;
    for (int P : Preds[L.Header])
      if (!L.contains(P))
        Outside.push_back(P);
    BasicBlock *Preheader = nullptr;
    if (Outside.size() == 1) {
      BasicBlock &Cand = *F.Blocks[Outside[0]];
      if (Cand.terminator().Op == Opcode::Br)
        Preheader = &Cand;
    }
    if (!Preheader) {
      Preheader = F.addBlock(F.Blocks[L.Header]->Name + "$preheader");
      Instr Jump = Instr::make(Opcode::Br);
      Jump.TargetA = L.Header;
      Preheader->Instrs.push_back(std::move(Jump));
      for (int P : Outside) {
        Instr &T = F.Blocks[P]->Instrs.back();
        if (T.TargetA == L.Header)
          T.TargetA = Preheader->Id;
        if (T.Op == Opcode::CondBr && T.TargetB == L.Header)
          T.TargetB = Preheader->Id;
      }
    }

    // Move the candidates (in order) to the preheader, before its branch.
    std::vector<Instr> Moved;
    for (const Candidate &C : Candidates)
      Moved.push_back(F.Blocks[C.Block]->Instrs[C.Index]);
    // Erase from the loop blocks (descending index order per block).
    for (std::size_t CI = Candidates.size(); CI > 0; --CI) {
      const Candidate &C = Candidates[CI - 1];
      F.Blocks[C.Block]->Instrs.erase(F.Blocks[C.Block]->Instrs.begin() +
                                      static_cast<long>(C.Index));
    }
    Preheader->Instrs.insert(Preheader->Instrs.end() - 1, Moved.begin(),
                             Moved.end());
    return static_cast<unsigned>(Moved.size());
  }
  return 0;
}

} // namespace

OTM_STATISTIC(StatOpensHoisted, "open-licm", "opens-hoisted",
              "loop-invariant open barriers hoisted to preheaders");

bool OpenLicmPass::run(Module &M) {
  Hoisted = 0;
  for (std::unique_ptr<Function> &FP : M.Functions) {
    // One loop is transformed per round (the CFG changes); cap rounds
    // defensively.
    for (unsigned Round = 0; Round < 64; ++Round) {
      unsigned N = hoistOnce(*FP);
      if (N == 0)
        break;
      Hoisted += N;
    }
  }
  StatOpensHoisted += Hoisted;
  return Hoisted != 0;
}
