//===- passes/SimplifyCFG.h - CFG cleanup -----------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Merges straight-line block chains (A ends in an unconditional branch to
/// B, and A is B's only predecessor) and deletes unreachable blocks.
/// Inlining and preheader creation leave many such chains; merging them
/// matters because LocalCSE's forwarding — and therefore the open
/// elimination keyed on its registers — is block-local.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_SIMPLIFYCFG_H
#define OTM_PASSES_SIMPLIFYCFG_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

class SimplifyCfgPass : public Pass {
public:
  const char *name() const override { return "simplify-cfg"; }
  bool run(tmir::Module &M) override;
};

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_SIMPLIFYCFG_H
