//===- passes/Pipeline.cpp - Standard optimization pipelines ---------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Pipeline.h"

#include "obs/Statistic.h"
#include "passes/AllocElision.h"
#include "passes/Inline.h"
#include "passes/ConstFold.h"
#include "passes/DCE.h"
#include "passes/LocalCSE.h"
#include "passes/LowerAtomic.h"
#include "passes/OpenElim.h"
#include "passes/OpenLicm.h"
#include "passes/SimplifyCFG.h"
#include "passes/TxClone.h"
#include "passes/Upgrade.h"

#include <cstdlib>

using namespace otm;
using namespace otm::passes;

void passes::buildPipeline(PassManager &PM, const OptConfig &Config) {
  // Inlining runs before lowering so the open-elimination pass can see
  // across former call boundaries (the paper's enabler optimization).
  if (Config.Inline)
    PM.addPass<InlinePass>();
  // Lowering is unconditional: calls inside atomic regions are retargeted
  // to transactional clones, then naive barriers are inserted everywhere.
  PM.addPass<TxClonePass>();
  PM.addPass<LowerAtomicPass>();

  if (Config.SimplifyCfg)
    PM.addPass<SimplifyCfgPass>();
  if (Config.LocalCse)
    PM.addPass<LocalCsePass>();
  if (Config.ConstFold) {
    PM.addPass<ConstFoldPass>();
    if (Config.SimplifyCfg)
      PM.addPass<SimplifyCfgPass>(); // collapse constant branches
  }
  if (Config.OpenElim)
    PM.addPass<OpenElimPass>();
  if (Config.Upgrade) {
    PM.addPass<UpgradePass>();
    if (Config.OpenElim)
      PM.addPass<OpenElimPass>(); // delete the now-dominated update opens
  }
  if (Config.AllocElision)
    PM.addPass<AllocElisionPass>();
  if (Config.OpenLicm) {
    PM.addPass<OpenLicmPass>();
    if (Config.OpenElim)
      PM.addPass<OpenElimPass>(); // hoisted opens dominate loop bodies
  }
  if (Config.Dce)
    PM.addPass<DcePass>();
}

std::vector<PassReport> passes::lowerAndOptimize(tmir::Module &M,
                                                 const OptConfig &Config) {
  PassManager PM;
  buildPipeline(PM, Config);
  std::vector<PassReport> Reports = PM.run(M);
  // LLVM-style `-stats` dump: opt in with OTM_PASS_STATS=1. Counters
  // accumulate across runs (obs::Statistic::resetAll() clears them).
  static const bool PrintStats = [] {
    const char *E = std::getenv("OTM_PASS_STATS");
    return E && E[0] == '1';
  }();
  if (PrintStats)
    obs::Statistic::printAll(stderr);
  return Reports;
}
