//===- passes/Upgrade.h - Read-to-update open upgrading --------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's read-to-update upgrade: if an object opened for read is
/// certain to be opened for update later in the same transaction (on every
/// path — a backward *anticipability* analysis), the read open is
/// strengthened to OpenForUpdate up front. The later update open then
/// becomes dominated-redundant and a following open-elim run deletes it,
/// saving both the read enlistment and the second barrier, and shrinking
/// the window in which the upgrade itself could conflict.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_UPGRADE_H
#define OTM_PASSES_UPGRADE_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

class UpgradePass : public Pass {
public:
  const char *name() const override { return "read-to-update"; }
  bool run(tmir::Module &M) override;

  unsigned upgradedLastRun() const { return Upgraded; }

private:
  unsigned Upgraded = 0;
};

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_UPGRADE_H
