//===- passes/Inline.cpp - Function inlining --------------------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Inline.h"

#include "obs/Statistic.h"
#include "tmir/AtomicRegions.h"

#include <string>

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

unsigned instrCount(const Function &F) {
  unsigned N = 0;
  for (const std::unique_ptr<BasicBlock> &BB : F.Blocks)
    N += static_cast<unsigned>(BB->Instrs.size());
  return N;
}

bool hasAtomicMarkers(const Function &F) {
  for (const std::unique_ptr<BasicBlock> &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::AtomicBegin || I.Op == Opcode::AtomicEnd)
        return true;
  return false;
}

/// Inlines the call at (BlockId, InstrIdx) in \p Caller. The callee must
/// already satisfy the legality checks. \p Serial uniquifies names.
void inlineCall(Function &Caller, const Function &Callee, int BlockId,
                std::size_t InstrIdx, unsigned Serial) {
  const Instr Call = Caller.Blocks[BlockId]->Instrs[InstrIdx];
  std::string Suffix = "$i" + std::to_string(Serial);

  // Map callee locals and registers into the caller.
  int LocalOffset = static_cast<int>(Caller.Locals.size());
  for (const LocalDecl &L : Callee.Locals)
    Caller.Locals.push_back({L.Name + Suffix, L.Ty});
  int RegOffset = Caller.numRegs();
  for (int R = 0; R < Callee.numRegs(); ++R)
    Caller.addReg(Callee.RegNames[R] + Suffix, Callee.RegTypes[R]);

  // A local slot carries the return value from every ret to the join.
  int ResultLocal = -1;
  if (!Callee.ReturnTy.isVoid()) {
    ResultLocal = static_cast<int>(Caller.Locals.size());
    Caller.Locals.push_back({"retval" + Suffix, Callee.ReturnTy});
  }

  // Split the call block: instructions after the call move to a new join
  // block that keeps the original terminator.
  BasicBlock &CallBlock = *Caller.Blocks[BlockId];
  BasicBlock *Join =
      Caller.addBlock(CallBlock.Name + "$join" + Suffix);
  Join->Instrs.assign(CallBlock.Instrs.begin() +
                          static_cast<long>(InstrIdx) + 1,
                      CallBlock.Instrs.end());
  CallBlock.Instrs.resize(InstrIdx);

  // The call's result register is now defined by a load from ResultLocal.
  if (Call.ResultReg >= 0) {
    Instr Load = Instr::make(Opcode::LoadLocal);
    Load.ResultReg = Call.ResultReg;
    Load.LocalIdx = ResultLocal;
    Join->Instrs.insert(Join->Instrs.begin(), std::move(Load));
  }

  // Pass arguments through the callee's (remapped) parameter locals.
  for (unsigned P = 0; P < Callee.NumParams; ++P) {
    Instr Store = Instr::make(Opcode::StoreLocal);
    Store.LocalIdx = LocalOffset + static_cast<int>(P);
    Store.Operands.push_back(Call.Operands[P]);
    CallBlock.Instrs.push_back(std::move(Store));
  }

  // Copy the callee body, remapping everything.
  int BlockOffset = static_cast<int>(Caller.Blocks.size());
  for (const std::unique_ptr<BasicBlock> &BB : Callee.Blocks)
    Caller.addBlock(BB->Name + Suffix);
  for (std::size_t B = 0; B < Callee.Blocks.size(); ++B) {
    BasicBlock &Dst = *Caller.Blocks[BlockOffset + static_cast<int>(B)];
    for (const Instr &Orig : Callee.Blocks[B]->Instrs) {
      Instr I = Orig;
      if (I.ResultReg >= 0)
        I.ResultReg += RegOffset;
      for (Value &V : I.Operands)
        if (V.isReg())
          V = Value::reg(V.regId() + RegOffset);
      if (I.LocalIdx >= 0)
        I.LocalIdx += LocalOffset;
      if (I.Op == Opcode::Br || I.Op == Opcode::CondBr) {
        I.TargetA += BlockOffset;
        if (I.Op == Opcode::CondBr)
          I.TargetB += BlockOffset;
      }
      if (I.Op == Opcode::Ret) {
        if (ResultLocal >= 0) {
          Instr Store = Instr::make(Opcode::StoreLocal);
          Store.LocalIdx = ResultLocal;
          Store.Operands.push_back(I.Operands[0]);
          Dst.Instrs.push_back(std::move(Store));
        }
        Instr Jump = Instr::make(Opcode::Br);
        Jump.TargetA = Join->Id;
        Dst.Instrs.push_back(std::move(Jump));
        continue;
      }
      Dst.Instrs.push_back(std::move(I));
    }
  }

  // Enter the inlined entry block.
  Instr Enter = Instr::make(Opcode::Br);
  Enter.TargetA = BlockOffset;
  CallBlock.Instrs.push_back(std::move(Enter));
}

/// Runs one inlining round over \p Caller; returns inlined-call count.
unsigned runOnFunction(Module &M, Function &Caller, unsigned Budget,
                       unsigned &Serial) {
  unsigned Done = 0;
  // Scan a snapshot of block count: blocks added by inlining are bodies we
  // should not rescan this round.
  std::size_t OrigBlocks = Caller.Blocks.size();
  for (std::size_t B = 0; B < OrigBlocks; ++B) {
    // Region membership changes as blocks are split; recompute per block.
    AtomicRegions AR(Caller);
    if (!AR.valid())
      return Done;
    for (std::size_t I = 0; I < Caller.Blocks[B]->Instrs.size(); ++I) {
      const Instr &Ins = Caller.Blocks[B]->Instrs[I];
      if (Ins.Op != Opcode::Call)
        continue;
      Function &Callee = *M.Functions[Ins.CalleeIdx];
      if (&Callee == &Caller)
        continue; // direct recursion
      if (instrCount(Callee) > Budget)
        continue;
      bool SiteInAtomic = Caller.IsAllAtomic ||
                          AR.inAtomic(static_cast<int>(B), I);
      if (SiteInAtomic && hasAtomicMarkers(Callee))
        continue; // would textually nest regions
      inlineCall(Caller, Callee, static_cast<int>(B), I, Serial++);
      ++Done;
      // The block was split: everything after the call moved to the join
      // block, so this block holds no further calls this round.
      break;
    }
  }
  return Done;
}

} // namespace

OTM_STATISTIC(StatCallsInlined, "inline", "calls-inlined",
              "call sites inlined inside atomic regions");

bool InlinePass::run(Module &M) {
  Inlined = 0;
  unsigned Serial = 0;
  for (unsigned Round = 0; Round < MaxRounds; ++Round) {
    unsigned ThisRound = 0;
    for (std::unique_ptr<Function> &F : M.Functions)
      ThisRound += runOnFunction(M, *F, MaxCalleeInstrs, Serial);
    Inlined += ThisRound;
    if (ThisRound == 0)
      break;
  }
  StatCallsInlined += Inlined;
  return Inlined != 0;
}
