//===- passes/SimplifyCFG.cpp - CFG cleanup ---------------------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/SimplifyCFG.h"

#include <vector>

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

/// Rebuilds F.Blocks without the blocks marked dead, remapping ids.
void compactBlocks(Function &F, const std::vector<bool> &Dead) {
  std::vector<int> NewId(F.Blocks.size(), -1);
  std::vector<std::unique_ptr<BasicBlock>> Kept;
  for (std::size_t B = 0; B < F.Blocks.size(); ++B) {
    if (Dead[B])
      continue;
    NewId[B] = static_cast<int>(Kept.size());
    Kept.push_back(std::move(F.Blocks[B]));
  }
  for (std::size_t NewIdx = 0; NewIdx < Kept.size(); ++NewIdx) {
    BasicBlock *BB = Kept[NewIdx].get();
    BB->Id = static_cast<int>(NewIdx);
    for (Instr &I : BB->Instrs) {
      if (I.Op == Opcode::Br || I.Op == Opcode::CondBr) {
        I.TargetA = NewId[I.TargetA];
        if (I.Op == Opcode::CondBr)
          I.TargetB = NewId[I.TargetB];
      }
    }
  }
  F.Blocks = std::move(Kept);
}

bool runOnFunction(Function &F) {
  bool Changed = false;
  bool Iterate = true;
  while (Iterate) {
    Iterate = false;
    std::vector<bool> Dead(F.Blocks.size(), false);

    // Delete unreachable blocks.
    std::vector<bool> Reachable(F.Blocks.size(), false);
    std::vector<int> Work{0};
    Reachable[0] = true;
    while (!Work.empty()) {
      int B = Work.back();
      Work.pop_back();
      for (int S : F.Blocks[B]->successors())
        if (!Reachable[S]) {
          Reachable[S] = true;
          Work.push_back(S);
        }
    }
    for (std::size_t B = 1; B < F.Blocks.size(); ++B)
      if (!Reachable[B])
        Dead[B] = Iterate = Changed = true;

    // Merge A -> B chains where A is B's unique predecessor.
    std::vector<std::vector<int>> Preds = F.computePredecessors();
    for (std::size_t B = 0; B < F.Blocks.size(); ++B) {
      if (Dead[B])
        continue;
      BasicBlock &A = *F.Blocks[B];
      if (A.terminator().Op != Opcode::Br)
        continue;
      int Succ = A.terminator().TargetA;
      if (Succ == static_cast<int>(B) || Succ == 0 || Dead[Succ])
        continue;
      if (Preds[Succ].size() != 1)
        continue;
      A.Instrs.pop_back(); // the br
      BasicBlock &BBlk = *F.Blocks[Succ];
      for (Instr &I : BBlk.Instrs)
        A.Instrs.push_back(std::move(I));
      BBlk.Instrs.clear();
      Dead[Succ] = Iterate = Changed = true;
      break; // predecessor lists are stale; recompute
    }

    bool AnyDead = false;
    for (std::size_t B = 0; B < Dead.size(); ++B)
      AnyDead |= Dead[B];
    if (AnyDead)
      compactBlocks(F, Dead);
  }
  return Changed;
}

} // namespace

bool SimplifyCfgPass::run(Module &M) {
  bool Changed = false;
  for (std::unique_ptr<Function> &F : M.Functions)
    Changed |= runOnFunction(*F);
  return Changed;
}
