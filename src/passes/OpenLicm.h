//===- passes/OpenLicm.h - Loop-invariant open hoisting --------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hoists loop-invariant barriers out of loops that execute entirely
/// inside a transaction: an open (or undo log) of a reference defined
/// outside the loop, executed on every iteration (its block dominates all
/// latches), is moved to the loop preheader, paying its cost once instead
/// of once per iteration. Barriers are idempotent and — via the runtime's
/// null-tolerant barrier semantics — safe to execute speculatively when
/// the loop body would run zero times.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_OPENLICM_H
#define OTM_PASSES_OPENLICM_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

class OpenLicmPass : public Pass {
public:
  const char *name() const override { return "open-licm"; }
  bool run(tmir::Module &M) override;

  unsigned hoistedLastRun() const { return Hoisted; }

private:
  unsigned Hoisted = 0;
};

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_OPENLICM_H
