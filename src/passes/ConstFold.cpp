//===- passes/ConstFold.cpp - Constant folding -------------------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/ConstFold.h"

#include "obs/Statistic.h"

#include <optional>

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

/// Evaluates a pure binary operation over two immediates. Returns nothing
/// for trapping cases (division by zero stays in the program).
std::optional<int64_t> evaluate(Opcode Op, int64_t A, int64_t B) {
  switch (Op) {
  case Opcode::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(A) +
                                static_cast<uint64_t>(B));
  case Opcode::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(A) -
                                static_cast<uint64_t>(B));
  case Opcode::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(A) *
                                static_cast<uint64_t>(B));
  case Opcode::Div:
    if (B == 0)
      return std::nullopt;
    return A / B;
  case Opcode::Rem:
    if (B == 0)
      return std::nullopt;
    return A % B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return static_cast<int64_t>(static_cast<uint64_t>(A) << (B & 63));
  case Opcode::Shr:
    return static_cast<int64_t>(static_cast<uint64_t>(A) >> (B & 63));
  case Opcode::CmpEq:
    return A == B;
  case Opcode::CmpNe:
    return A != B;
  case Opcode::CmpLt:
    return A < B;
  case Opcode::CmpLe:
    return A <= B;
  case Opcode::CmpGt:
    return A > B;
  case Opcode::CmpGe:
    return A >= B;
  default:
    return std::nullopt;
  }
}

bool runOnFunction(Function &F, unsigned &Folded) {
  bool Changed = false;
  bool Iterate = true;
  while (Iterate) {
    Iterate = false;
    // Registers known to hold a constant.
    std::vector<std::optional<int64_t>> Known(F.RegNames.size());
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks)
      for (Instr &I : BB->Instrs) {
        if (I.ResultReg < 0)
          continue;
        if (I.Op == Opcode::Mov && I.Operands[0].isImm()) {
          Known[I.ResultReg] = I.Operands[0].immValue();
          continue;
        }
        if (!isBinaryArith(I.Op) && !isCompare(I.Op))
          continue;
        if (!I.Operands[0].isImm() || !I.Operands[1].isImm())
          continue;
        if (std::optional<int64_t> V = evaluate(
                I.Op, I.Operands[0].immValue(), I.Operands[1].immValue())) {
          I.Op = Opcode::Mov;
          I.Operands = {Value::imm(*V)};
          Known[I.ResultReg] = *V;
          ++Folded;
          Iterate = Changed = true;
        }
      }

    // Propagate known constants into operands (the next round folds more)
    // and collapse constant conditional branches.
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks)
      for (Instr &I : BB->Instrs) {
        for (Value &V : I.Operands)
          if (V.isReg() && Known[V.regId()]) {
            V = Value::imm(*Known[V.regId()]);
            Iterate = Changed = true;
          }
        if (I.Op == Opcode::CondBr && I.Operands[0].isImm()) {
          int Target = I.Operands[0].immValue() ? I.TargetA : I.TargetB;
          I.Op = Opcode::Br;
          I.Operands.clear();
          I.TargetA = Target;
          I.TargetB = -1;
          ++Folded;
          Iterate = Changed = true;
        }
      }
  }
  return Changed;
}

} // namespace

OTM_STATISTIC(StatInstrsFolded, "const-fold", "instrs-folded",
              "instructions folded to constants");

bool ConstFoldPass::run(Module &M) {
  Folded = 0;
  bool Changed = false;
  for (std::unique_ptr<Function> &F : M.Functions)
    Changed |= runOnFunction(*F, Folded);
  StatInstrsFolded += Folded;
  return Changed;
}
