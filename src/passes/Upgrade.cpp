//===- passes/Upgrade.cpp - Read-to-update open upgrading ------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Upgrade.h"

#include "obs/Statistic.h"
#include "passes/DataflowUtil.h"

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

/// Backward transfer: a register is "will be updated" before instruction I
/// if it is after I, unless I defines it or ends the region.
void transferAnticipated(FactSet &Facts, const Instr &I) {
  switch (I.Op) {
  case Opcode::OpenForUpdate:
    if (I.Operands[0].isReg())
      Facts.insert(packFact(FactKind::WillUpdate,
                            static_cast<uint64_t>(I.Operands[0].regId())));
    return;
  case Opcode::AtomicBegin:
  case Opcode::AtomicEnd:
    Facts.clear();
    return;
  default:
    if (I.ResultReg >= 0)
      killRegFacts(Facts, I.ResultReg);
    return;
  }
}

} // namespace

OTM_STATISTIC(StatOpensUpgraded, "upgrade", "opens-upgraded",
              "open-for-read barriers upgraded to open-for-update");

bool UpgradePass::run(Module &M) {
  Upgraded = 0;
  for (std::unique_ptr<Function> &FP : M.Functions) {
    Function &F = *FP;
    std::vector<FactSet> Out = solveBackward(F, transferAnticipated);
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks) {
      // Recompute the running fact set backwards through the block so each
      // open_read sees the anticipated-updates holding right after it.
      FactSet Facts = Out[BB->Id];
      for (std::size_t II = BB->Instrs.size(); II > 0; --II) {
        Instr &I = BB->Instrs[II - 1];
        if (I.Op == Opcode::OpenForRead && I.Operands[0].isReg() &&
            Facts.count(packFact(
                FactKind::WillUpdate,
                static_cast<uint64_t>(I.Operands[0].regId())))) {
          I.Op = Opcode::OpenForUpdate;
          ++Upgraded;
        }
        transferAnticipated(Facts, I);
      }
    }
  }
  StatOpensUpgraded += Upgraded;
  return Upgraded != 0;
}
