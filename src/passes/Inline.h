//===- passes/Inline.h - Function inlining ----------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conservative bottom-up inliner. In the paper's system, inlining is
/// the enabler optimization: once a callee's body is in the caller, the
/// dominance-based open/undo elimination sees across the former call
/// boundary and merges barriers that target the same object in caller and
/// callee (e.g. a helper that re-reads an object its caller already opened
/// pays nothing after inlining + open-elim).
///
/// A call is inlined when the callee
///   - is small (block/instruction budget),
///   - is not (mutually) recursive at this site (bounded by rounds),
///   - is region-compatible: a callee containing atomic markers is never
///     inlined into an atomic region (textual nesting is illegal; such
///     call sites target marker-free `$tx` clones after tx-cloning anyway).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_INLINE_H
#define OTM_PASSES_INLINE_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

class InlinePass : public Pass {
public:
  explicit InlinePass(unsigned MaxCalleeInstrs = 64, unsigned MaxRounds = 4)
      : MaxCalleeInstrs(MaxCalleeInstrs), MaxRounds(MaxRounds) {}

  const char *name() const override { return "inline"; }
  bool run(tmir::Module &M) override;

  unsigned inlinedLastRun() const { return Inlined; }

private:
  unsigned MaxCalleeInstrs;
  unsigned MaxRounds;
  unsigned Inlined = 0;
};

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_INLINE_H
