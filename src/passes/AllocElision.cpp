//===- passes/AllocElision.cpp - Barrier elision on fresh objects ----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/AllocElision.h"

#include "obs/Statistic.h"
#include "passes/DataflowUtil.h"

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

bool isFreshReg(const FactSet &Facts, const Value &V) {
  return V.isReg() &&
         Facts.count(
             packFact(FactKind::FreshReg, static_cast<uint64_t>(V.regId())));
}

void transferFresh(FactSet &Facts, const Instr &I) {
  switch (I.Op) {
  case Opcode::NewObj:
  case Opcode::NewArr:
    killRegFacts(Facts, I.ResultReg);
    Facts.insert(
        packFact(FactKind::FreshReg, static_cast<uint64_t>(I.ResultReg)));
    return;
  case Opcode::Mov: {
    bool Fresh = isFreshReg(Facts, I.Operands[0]);
    killRegFacts(Facts, I.ResultReg);
    if (Fresh)
      Facts.insert(
          packFact(FactKind::FreshReg, static_cast<uint64_t>(I.ResultReg)));
    return;
  }
  case Opcode::LoadLocal: {
    bool Fresh = Facts.count(packFact(FactKind::FreshLocal,
                                      static_cast<uint64_t>(I.LocalIdx))) != 0;
    killRegFacts(Facts, I.ResultReg);
    if (Fresh)
      Facts.insert(
          packFact(FactKind::FreshReg, static_cast<uint64_t>(I.ResultReg)));
    return;
  }
  case Opcode::StoreLocal:
    if (isFreshReg(Facts, I.Operands[0]))
      Facts.insert(
          packFact(FactKind::FreshLocal, static_cast<uint64_t>(I.LocalIdx)));
    else
      killLocalFact(Facts, I.LocalIdx);
    return;
  case Opcode::AtomicBegin:
  case Opcode::AtomicEnd:
    // Fresh means "allocated inside the current region"; objects from
    // before the transaction (or a previous one) are shared.
    Facts.clear();
    return;
  default:
    if (I.ResultReg >= 0)
      killRegFacts(Facts, I.ResultReg);
    return;
  }
}

} // namespace

OTM_STATISTIC(StatFreshBarriersRemoved, "alloc-elision",
              "fresh-barriers-removed",
              "barriers removed on transaction-locally allocated objects");

bool AllocElisionPass::run(Module &M) {
  Removed = 0;
  for (std::unique_ptr<Function> &FP : M.Functions) {
    Function &F = *FP;
    // In a transactional clone freshness survives from function entry only
    // if the allocation happened in this function; parameters are never
    // fresh, so starting from the empty set is correct for both kinds.
    std::vector<FactSet> In = solveForward(F, transferFresh);
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks) {
      FactSet Facts = In[BB->Id];
      std::vector<Instr> Kept;
      Kept.reserve(BB->Instrs.size());
      for (Instr &I : BB->Instrs) {
        if (isBarrier(I.Op) && isFreshReg(Facts, I.Operands[0])) {
          ++Removed;
          continue;
        }
        transferFresh(Facts, I);
        Kept.push_back(std::move(I));
      }
      BB->Instrs = std::move(Kept);
    }
  }
  StatFreshBarriersRemoved += Removed;
  return Removed != 0;
}
