//===- passes/DCE.h - Dead code elimination ---------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Removes side-effect-free instructions whose results are unused. After
/// barrier elimination, the loads that only fed removed barriers become
/// dead — the "decomposition exposes STM operations to classic compiler
/// optimizations" effect the paper highlights.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_DCE_H
#define OTM_PASSES_DCE_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

class DcePass : public Pass {
public:
  const char *name() const override { return "dce"; }
  bool run(tmir::Module &M) override;
};

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_DCE_H
