//===- passes/LowerAtomic.h - Naive barrier insertion ----------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Inserts the decomposed STM barriers that make transactional code
/// correct, in the *naive* placement a non-optimizing translation
/// produces — exactly one barrier per memory access:
///
///   - before every GetField/ArrGet/ArrLen in a region: OpenForRead(obj);
///   - before every SetField in a region: OpenForUpdate(obj) followed by
///     LogUndoField(obj, field);
///   - before every ArrSet: OpenForUpdate(arr) + LogUndoElem(arr, idx).
///
/// Everything the later passes remove is inserted here first, so the
/// before/after barrier counts measure precisely what the optimizations
/// buy (experiment E4).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_LOWERATOMIC_H
#define OTM_PASSES_LOWERATOMIC_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

class LowerAtomicPass : public Pass {
public:
  const char *name() const override { return "lower-atomic"; }
  bool run(tmir::Module &M) override;
};

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_LOWERATOMIC_H
