//===- passes/OpenElim.cpp - Redundant barrier elimination -----------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/OpenElim.h"

#include "obs/Statistic.h"
#include "passes/DataflowUtil.h"

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

/// Applies the availability transfer for one instruction to \p Facts.
void transferOpen(FactSet &Facts, const Instr &I) {
  switch (I.Op) {
  case Opcode::OpenForRead:
    if (I.Operands[0].isReg())
      Facts.insert(packFact(FactKind::OpenRead,
                            static_cast<uint64_t>(I.Operands[0].regId())));
    return;
  case Opcode::OpenForUpdate:
    if (I.Operands[0].isReg()) {
      uint64_t R = static_cast<uint64_t>(I.Operands[0].regId());
      Facts.insert(packFact(FactKind::OpenUpdate, R));
      Facts.insert(packFact(FactKind::OpenRead, R)); // update subsumes read
    }
    return;
  case Opcode::LogUndoField:
    if (I.Operands[0].isReg())
      Facts.insert(packFact(FactKind::UndoField,
                            static_cast<uint64_t>(I.Operands[0].regId()),
                            static_cast<uint64_t>(I.ClassId),
                            static_cast<uint64_t>(I.FieldIdx)));
    return;
  case Opcode::LogUndoElem:
    if (I.Operands[0].isReg())
      if (uint64_t Key = packUndoElem(I.Operands[0].regId(), I.Operands[1]))
        Facts.insert(Key);
    return;
  case Opcode::AtomicBegin:
  case Opcode::AtomicEnd:
    Facts.clear();
    return;
  default:
    if (I.ResultReg >= 0)
      killRegFacts(Facts, I.ResultReg);
    return;
  }
}

/// True if \p I is redundant given available \p Facts.
bool isRedundant(const FactSet &Facts, const Instr &I) {
  if (!isBarrier(I.Op))
    return false;
  if (I.Operands[0].isNull())
    return true; // barrier on null is a no-op
  if (!I.Operands[0].isReg())
    return false;
  uint64_t R = static_cast<uint64_t>(I.Operands[0].regId());
  switch (I.Op) {
  case Opcode::OpenForRead:
    return Facts.count(packFact(FactKind::OpenRead, R)) != 0;
  case Opcode::OpenForUpdate:
    return Facts.count(packFact(FactKind::OpenUpdate, R)) != 0;
  case Opcode::LogUndoField:
    return Facts.count(packFact(FactKind::UndoField, R,
                                static_cast<uint64_t>(I.ClassId),
                                static_cast<uint64_t>(I.FieldIdx))) != 0;
  case Opcode::LogUndoElem: {
    uint64_t Key = packUndoElem(I.Operands[0].regId(), I.Operands[1]);
    return Key != 0 && Facts.count(Key) != 0;
  }
  default:
    return false;
  }
}

} // namespace

OTM_STATISTIC(StatOpensElided, "open-elim", "opens-elided",
              "redundant open-for-read/update barriers removed");

bool OpenElimPass::run(Module &M) {
  Removed = 0;
  for (std::unique_ptr<Function> &FP : M.Functions) {
    Function &F = *FP;
    std::vector<FactSet> In = solveForward(F, transferOpen);
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks) {
      FactSet Facts = In[BB->Id];
      std::vector<Instr> Kept;
      Kept.reserve(BB->Instrs.size());
      for (Instr &I : BB->Instrs) {
        if (isRedundant(Facts, I)) {
          ++Removed;
          continue;
        }
        transferOpen(Facts, I);
        Kept.push_back(std::move(I));
      }
      BB->Instrs = std::move(Kept);
    }
  }
  StatOpensElided += Removed;
  return Removed != 0;
}
