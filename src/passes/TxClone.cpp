//===- passes/TxClone.cpp - Transactional function cloning ----------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/TxClone.h"

#include "obs/Statistic.h"
#include "tmir/AtomicRegions.h"

#include <vector>

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

Function *passes::cloneFunction(Module &M, const Function &F,
                                const std::string &CloneName) {
  Function *C = M.addFunction(CloneName);
  C->ReturnTy = F.ReturnTy;
  C->NumParams = F.NumParams;
  C->Locals = F.Locals;
  C->RegNames = F.RegNames;
  C->RegTypes = F.RegTypes;
  for (const std::unique_ptr<BasicBlock> &BB : F.Blocks) {
    BasicBlock *NB = C->addBlock(BB->Name);
    NB->Instrs = BB->Instrs; // block ids and register ids are positional
  }
  return C;
}

OTM_STATISTIC(StatCallsRetargeted, "tx-clone", "calls-retargeted",
              "transactional call sites retargeted to atomic clones");

bool TxClonePass::run(Module &M) {
  bool Changed = false;
  // Map original function id -> clone id (lazily created).
  std::vector<int> CloneOf(M.Functions.size(), -1);
  // Functions whose call sites still need processing: pairs of
  // (function id, only-atomic-call-sites?).
  std::vector<int> Work;

  auto cloneIdFor = [&](int CalleeIdx) {
    if (M.Functions[CalleeIdx]->IsAllAtomic)
      return CalleeIdx; // already a transactional version
    if (static_cast<std::size_t>(CalleeIdx) >= CloneOf.size())
      CloneOf.resize(M.Functions.size(), -1);
    if (CloneOf[CalleeIdx] >= 0)
      return CloneOf[CalleeIdx];
    const Function &Orig = *M.Functions[CalleeIdx];
    Function *Clone = cloneFunction(M, Orig, Orig.Name + "$tx");
    Clone->IsAllAtomic = true;
    CloneOf.resize(M.Functions.size(), -1);
    CloneOf[CalleeIdx] = Clone->Id;
    Work.push_back(Clone->Id);
    return Clone->Id;
  };

  // Seed: calls inside explicit atomic regions of ordinary functions, plus
  // all calls inside pre-existing all-atomic functions.
  std::size_t OrigCount = M.Functions.size();
  for (std::size_t FI = 0; FI < OrigCount; ++FI)
    Work.push_back(static_cast<int>(FI));

  while (!Work.empty()) {
    int FI = Work.back();
    Work.pop_back();
    Function &F = *M.Functions[FI];
    AtomicRegions AR(F);
    if (!AR.valid())
      continue; // the lowering pass reports invalid regions
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks)
      for (std::size_t II = 0; II < BB->Instrs.size(); ++II) {
        Instr &I = BB->Instrs[II];
        if (I.Op != Opcode::Call)
          continue;
        bool Transactional = F.IsAllAtomic || AR.inAtomic(BB->Id, II);
        if (!Transactional)
          continue;
        if (M.Functions[I.CalleeIdx]->IsAllAtomic)
          continue; // already retargeted
        I.CalleeIdx = cloneIdFor(I.CalleeIdx);
        ++StatCallsRetargeted;
        Changed = true;
      }
  }
  return Changed;
}
