//===- passes/LowerAtomic.cpp - Naive barrier insertion --------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/LowerAtomic.h"

#include "obs/Statistic.h"
#include "support/Compiler.h"
#include "tmir/AtomicRegions.h"

#include <cstdio>
#include <cstdlib>

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

OTM_STATISTIC(StatBarriersInserted, "lower-atomic", "barriers-inserted",
              "open/log-undo barriers inserted by naive lowering");

bool LowerAtomicPass::run(Module &M) {
  bool Changed = false;
  for (std::unique_ptr<Function> &FP : M.Functions) {
    Function &F = *FP;
    AtomicRegions AR(F);
    if (!AR.valid()) {
      std::fprintf(stderr, "lower-atomic: %s\n", AR.error().c_str());
      std::abort();
    }
    if (!F.IsAllAtomic && !AR.hasAtomic())
      continue;

    for (std::unique_ptr<BasicBlock> &BB : F.Blocks) {
      std::vector<Instr> NewInstrs;
      NewInstrs.reserve(BB->Instrs.size());
      for (std::size_t II = 0; II < BB->Instrs.size(); ++II) {
        Instr &I = BB->Instrs[II];
        bool InTx = F.IsAllAtomic || AR.inAtomic(BB->Id, II);
        if (InTx) {
          switch (I.Op) {
          case Opcode::GetField:
          case Opcode::ArrGet:
          case Opcode::ArrLen: {
            Instr Open = Instr::make(Opcode::OpenForRead);
            Open.Operands.push_back(I.Operands[0]);
            NewInstrs.push_back(std::move(Open));
            ++StatBarriersInserted;
            Changed = true;
            break;
          }
          case Opcode::SetField: {
            Instr Open = Instr::make(Opcode::OpenForUpdate);
            Open.Operands.push_back(I.Operands[0]);
            NewInstrs.push_back(std::move(Open));
            Instr Log = Instr::make(Opcode::LogUndoField);
            Log.Operands.push_back(I.Operands[0]);
            Log.ClassId = I.ClassId;
            Log.FieldIdx = I.FieldIdx;
            NewInstrs.push_back(std::move(Log));
            StatBarriersInserted += 2;
            Changed = true;
            break;
          }
          case Opcode::ArrSet: {
            Instr Open = Instr::make(Opcode::OpenForUpdate);
            Open.Operands.push_back(I.Operands[0]);
            NewInstrs.push_back(std::move(Open));
            Instr Log = Instr::make(Opcode::LogUndoElem);
            Log.Operands.push_back(I.Operands[0]);
            Log.Operands.push_back(I.Operands[1]);
            NewInstrs.push_back(std::move(Log));
            StatBarriersInserted += 2;
            Changed = true;
            break;
          }
          default:
            break;
          }
        }
        NewInstrs.push_back(std::move(I));
      }
      BB->Instrs = std::move(NewInstrs);
    }
  }
  return Changed;
}
