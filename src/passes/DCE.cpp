//===- passes/DCE.cpp - Dead code elimination -------------------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/DCE.h"

#include <vector>

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

/// Instructions with no side effects and no traps: safe to drop when the
/// result is unused. Heap reads are excluded (they can fault on null).
bool isRemovableWhenUnused(const Instr &I) {
  if (I.ResultReg < 0)
    return false;
  switch (I.Op) {
  case Opcode::Mov:
  case Opcode::LoadLocal:
    return true;
  case Opcode::Div:
  case Opcode::Rem:
    return false; // may trap on a zero divisor
  default:
    return isBinaryArith(I.Op) || isCompare(I.Op);
  }
}

bool runOnFunction(Function &F) {
  bool Changed = false;
  bool Iterate = true;
  while (Iterate) {
    Iterate = false;
    std::vector<bool> Used(F.RegNames.size(), false);
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks)
      for (Instr &I : BB->Instrs)
        for (const Value &V : I.Operands)
          if (V.isReg())
            Used[V.regId()] = true;
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks) {
      std::vector<Instr> Kept;
      Kept.reserve(BB->Instrs.size());
      for (Instr &I : BB->Instrs) {
        if (isRemovableWhenUnused(I) && !Used[I.ResultReg]) {
          Changed = Iterate = true;
          continue;
        }
        Kept.push_back(std::move(I));
      }
      BB->Instrs = std::move(Kept);
    }
  }
  return Changed;
}

} // namespace

bool DcePass::run(Module &M) {
  bool Changed = false;
  for (std::unique_ptr<Function> &F : M.Functions)
    Changed |= runOnFunction(*F);
  return Changed;
}
