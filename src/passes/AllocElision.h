//===- passes/AllocElision.h - Barrier elision on fresh objects -*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Objects allocated inside a transaction are private to it until commit:
/// no other transaction can acquire them (any pointer to them published by
/// an in-place store sits behind an object this transaction has opened for
/// update), and an abort discards them wholesale. They therefore need
/// neither opens nor undo logging. This pass tracks "freshly allocated in
/// this transaction" through registers, movs and local slots with a
/// forward must-analysis and deletes every barrier whose object operand is
/// provably fresh.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_ALLOCELISION_H
#define OTM_PASSES_ALLOCELISION_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

class AllocElisionPass : public Pass {
public:
  const char *name() const override { return "alloc-elision"; }
  bool run(tmir::Module &M) override;

  unsigned removedLastRun() const { return Removed; }

private:
  unsigned Removed = 0;
};

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_ALLOCELISION_H
