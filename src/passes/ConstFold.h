//===- passes/ConstFold.h - Constant folding --------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Folds arithmetic and comparisons over immediate operands, propagates the
/// results, and turns constant conditional branches into unconditional
/// ones (SimplifyCFG then removes the dead arm). Part of the paper's
/// "decomposition exposes STM code to classic optimizations" story: a
/// barrier guarded by a constant-false condition disappears entirely once
/// folding, CFG simplification and DCE have run.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_CONSTFOLD_H
#define OTM_PASSES_CONSTFOLD_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

class ConstFoldPass : public Pass {
public:
  const char *name() const override { return "const-fold"; }
  bool run(tmir::Module &M) override;

  unsigned foldedLastRun() const { return Folded; }

private:
  unsigned Folded = 0;
};

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_CONSTFOLD_H
