//===- passes/Pipeline.h - Standard optimization pipelines -----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles the pass pipelines the experiments compare. Lowering (tx
/// cloning + naive barrier insertion) is always performed; OptConfig picks
/// which of the paper's optimizations run on top, so E4/E5 can report each
/// optimization's individual contribution cumulatively.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_PIPELINE_H
#define OTM_PASSES_PIPELINE_H

#include "passes/Pass.h"

namespace otm {
namespace passes {

struct OptConfig {
  bool Inline = true;       ///< inline small callees before lowering
  bool SimplifyCfg = true;  ///< merge chains, drop unreachable blocks
  bool LocalCse = true;     ///< load/copy forwarding (enables the rest)
  bool ConstFold = true;    ///< fold constants, collapse constant branches
  bool OpenElim = true;     ///< dominated-open / dominated-log removal
  bool Upgrade = true;      ///< read-to-update strengthening
  bool AllocElision = true; ///< no barriers on transaction-fresh objects
  bool OpenLicm = true;     ///< hoist loop-invariant opens
  bool Dce = true;          ///< cleanup of dead feeding code

  static OptConfig none() {
    OptConfig C;
    C.Inline = C.SimplifyCfg = C.LocalCse = C.ConstFold = false;
    C.OpenElim = C.Upgrade = C.AllocElision = C.OpenLicm = C.Dce = false;
    return C;
  }
  static OptConfig all() { return OptConfig(); }
};

/// Adds tx-clone + lower-atomic + the configured optimizations to \p PM.
void buildPipeline(PassManager &PM, const OptConfig &Config);

/// Lowers and optimizes \p M in place; returns the per-pass reports.
std::vector<PassReport> lowerAndOptimize(tmir::Module &M,
                                         const OptConfig &Config);

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_PIPELINE_H
