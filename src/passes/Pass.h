//===- passes/Pass.h - Pass framework and barrier statistics ---*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal pass framework for TMIR plus the static barrier statistics the
/// paper's tables report: the number of OpenForRead / OpenForUpdate /
/// LogForUndo operations in the module before and after each pass. Every
/// pass leaves the module verifier-clean.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_PASS_H
#define OTM_PASSES_PASS_H

#include "tmir/IR.h"

#include <memory>
#include <string>
#include <vector>

namespace otm {
namespace passes {

/// Static counts of transactional operations in a module.
struct BarrierCounts {
  unsigned OpenRead = 0;
  unsigned OpenUpdate = 0;
  unsigned UndoField = 0;
  unsigned UndoElem = 0;

  unsigned total() const {
    return OpenRead + OpenUpdate + UndoField + UndoElem;
  }
};

BarrierCounts countBarriers(const tmir::Module &M);
BarrierCounts countBarriers(const tmir::Function &F);

class Pass {
public:
  virtual ~Pass() = default;
  virtual const char *name() const = 0;
  /// Transforms \p M; returns true if anything changed.
  virtual bool run(tmir::Module &M) = 0;
};

/// One line of the per-pass report (feeds experiment E4's table).
struct PassReport {
  std::string PassName;
  BarrierCounts Before;
  BarrierCounts After;
  bool Changed = false;
};

class PassManager {
public:
  void add(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  template <typename PassType, typename... ArgTypes>
  void addPass(ArgTypes &&...Args) {
    add(std::make_unique<PassType>(std::forward<ArgTypes>(Args)...));
  }

  /// Runs all passes in order, verifying after each, and returns the
  /// per-pass barrier report.
  std::vector<PassReport> run(tmir::Module &M);

private:
  std::vector<std::unique_ptr<Pass>> Passes;
};

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_PASS_H
