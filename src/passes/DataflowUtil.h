//===- passes/DataflowUtil.h - Barrier dataflow helpers --------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the barrier dataflow passes: packed fact keys
/// (open-available, undo-logged, freshly-allocated, anticipated-update),
/// set intersection meets, and optimistic iterative forward/backward
/// solvers over a TMIR function's CFG.
///
/// Facts always refer to virtual registers; because each register has one
/// static definition, a fact is invalidated exactly when its register's
/// defining instruction re-executes — so the transfer functions kill all
/// facts mentioning a register at its definition, which is what makes the
/// analysis sound around loop back edges.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_PASSES_DATAFLOWUTIL_H
#define OTM_PASSES_DATAFLOWUTIL_H

#include "tmir/IR.h"

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

namespace otm {
namespace passes {

using FactSet = std::set<uint64_t>;

//===----------------------------------------------------------------------===
// Fact keys
//===----------------------------------------------------------------------===

enum class FactKind : uint64_t {
  OpenRead = 1,   ///< object in reg is enlisted for read
  OpenUpdate = 2, ///< object in reg is owned for update
  UndoField = 3,  ///< (reg, class, field) already undo-logged
  UndoElemImm = 4,///< (reg, constant index) already undo-logged
  UndoElemReg = 5,///< (reg, index reg) already undo-logged
  FreshReg = 6,   ///< reg holds an object allocated in this transaction
  FreshLocal = 7, ///< local slot holds a transaction-fresh object
  WillUpdate = 8, ///< reg is opened for update on every path to region end
};

inline uint64_t packFact(FactKind Kind, uint64_t A, uint64_t B = 0,
                         uint64_t C = 0) {
  return (static_cast<uint64_t>(Kind) << 60) | (A << 40) | (B << 20) | C;
}

/// Packs an undo-elem fact if the index is representable; returns 0 (no
/// fact, never filtered) otherwise.
inline uint64_t packUndoElem(int ArrReg, const tmir::Value &Idx) {
  constexpr uint64_t Limit = 1 << 20;
  if (Idx.isImm() && Idx.immValue() >= 0 &&
      static_cast<uint64_t>(Idx.immValue()) < Limit)
    return packFact(FactKind::UndoElemImm, static_cast<uint64_t>(ArrReg),
                    static_cast<uint64_t>(Idx.immValue()));
  if (Idx.isReg())
    return packFact(FactKind::UndoElemReg, static_cast<uint64_t>(ArrReg),
                    static_cast<uint64_t>(Idx.regId()));
  return 0;
}

/// Removes every fact that mentions register \p Reg (as object or index).
inline void killRegFacts(FactSet &Facts, int Reg) {
  uint64_t R = static_cast<uint64_t>(Reg);
  for (auto It = Facts.begin(); It != Facts.end();) {
    FactKind Kind = static_cast<FactKind>(*It >> 60);
    uint64_t A = (*It >> 40) & 0xfffff;
    uint64_t B = (*It >> 20) & 0xfffff;
    bool Mentions = false;
    switch (Kind) {
    case FactKind::OpenRead:
    case FactKind::OpenUpdate:
    case FactKind::UndoField:
    case FactKind::UndoElemImm:
    case FactKind::FreshReg:
    case FactKind::WillUpdate:
      Mentions = (A == R);
      break;
    case FactKind::UndoElemReg:
      Mentions = (A == R || B == R);
      break;
    case FactKind::FreshLocal:
      Mentions = false;
      break;
    }
    It = Mentions ? Facts.erase(It) : ++It;
  }
}

inline void killLocalFact(FactSet &Facts, int Local) {
  Facts.erase(packFact(FactKind::FreshLocal, static_cast<uint64_t>(Local)));
}

inline void intersectInto(FactSet &Dst, const FactSet &Src) {
  for (auto It = Dst.begin(); It != Dst.end();)
    It = Src.count(*It) ? ++It : Dst.erase(It);
}

//===----------------------------------------------------------------------===
// Iterative solvers
//===----------------------------------------------------------------------===

/// Optimistic forward must-analysis: IN[entry] = {}, meet = intersection,
/// unknown predecessors are TOP (identity). \p Transfer mutates the fact
/// set per instruction. Returns IN per block.
template <typename TransferFn>
std::vector<FactSet> solveForward(const tmir::Function &F,
                                  TransferFn Transfer) {
  std::size_t N = F.Blocks.size();
  std::vector<std::optional<FactSet>> Out(N);
  std::vector<FactSet> In(N);
  std::vector<std::vector<int>> Preds = F.computePredecessors();

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::size_t B = 0; B < N; ++B) {
      // Meet over predecessors (entry block meets nothing).
      FactSet NewIn;
      bool First = true;
      if (B != 0) {
        bool AnyKnown = false;
        for (int P : Preds[B]) {
          if (!Out[P])
            continue; // TOP: identity for intersection
          AnyKnown = true;
          if (First) {
            NewIn = *Out[P];
            First = false;
          } else {
            intersectInto(NewIn, *Out[P]);
          }
        }
        if (!AnyKnown && !Preds[B].empty())
          continue; // all preds TOP: stay optimistic this round
      }
      FactSet NewOut = NewIn;
      for (const tmir::Instr &I : F.Blocks[B]->Instrs)
        Transfer(NewOut, I);
      if (!Out[B] || *Out[B] != NewOut || In[B] != NewIn) {
        In[B] = std::move(NewIn);
        Out[B] = std::move(NewOut);
        Changed = true;
      }
    }
  }
  return In;
}

/// Optimistic backward must-analysis: OUT[b] = intersection of successor
/// INs; exit blocks get {}. \p Transfer is applied to instructions in
/// reverse. Returns OUT per block.
template <typename TransferFn>
std::vector<FactSet> solveBackward(const tmir::Function &F,
                                   TransferFn Transfer) {
  std::size_t N = F.Blocks.size();
  std::vector<std::optional<FactSet>> In(N);
  std::vector<FactSet> Out(N);

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::size_t BI = N; BI > 0; --BI) {
      std::size_t B = BI - 1;
      std::vector<int> Succs = F.Blocks[B]->successors();
      FactSet NewOut;
      bool First = true;
      bool AnyKnown = Succs.empty();
      for (int S : Succs) {
        if (!In[S])
          continue;
        AnyKnown = true;
        if (First) {
          NewOut = *In[S];
          First = false;
        } else {
          intersectInto(NewOut, *In[S]);
        }
      }
      if (!AnyKnown)
        continue;
      FactSet NewIn = NewOut;
      const std::vector<tmir::Instr> &Instrs = F.Blocks[B]->Instrs;
      for (std::size_t I = Instrs.size(); I > 0; --I)
        Transfer(NewIn, Instrs[I - 1]);
      if (!In[B] || *In[B] != NewIn || Out[B] != NewOut) {
        Out[B] = std::move(NewOut);
        In[B] = std::move(NewIn);
        Changed = true;
      }
    }
  }
  return Out;
}

} // namespace passes
} // namespace otm

#endif // OTM_PASSES_DATAFLOWUTIL_H
