//===- obs/Json.h - Minimal JSON document model ----------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value type with a writer and a parser — just enough for
/// the machine-readable stats the benchmarks emit (BENCH_E*.json) and for
/// tests to round-trip them. Numbers distinguish unsigned integers from
/// doubles so 64-bit counters dump exactly; object keys keep insertion
/// order so reports are stable and diffable.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_OBS_JSON_H
#define OTM_OBS_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace otm {
namespace obs {

class JsonValue {
public:
  enum class Kind { Null, Bool, UInt, Int, Double, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  JsonValue(bool V) : K(Kind::Bool), B(V) {}
  JsonValue(uint64_t V) : K(Kind::UInt), U(V) {}
  JsonValue(int64_t V) : K(Kind::Int), I(V) {}
  JsonValue(int V) : K(Kind::Int), I(V) {}
  JsonValue(unsigned V) : K(Kind::UInt), U(V) {}
  JsonValue(double V) : K(Kind::Double), D(V) {}
  JsonValue(const char *V) : K(Kind::String), S(V) {}
  JsonValue(std::string V) : K(Kind::String), S(std::move(V)) {}

  static JsonValue object() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }
  static JsonValue array() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }

  Kind kind() const { return K; }
  bool isNumber() const {
    return K == Kind::UInt || K == Kind::Int || K == Kind::Double;
  }

  bool asBool() const { return B; }
  uint64_t asUInt() const {
    return K == Kind::UInt   ? U
           : K == Kind::Int  ? static_cast<uint64_t>(I)
                             : static_cast<uint64_t>(D);
  }
  double asDouble() const {
    return K == Kind::Double ? D
           : K == Kind::UInt ? static_cast<double>(U)
                             : static_cast<double>(I);
  }
  const std::string &asString() const { return S; }

  /// Object access. set() replaces an existing key; get() returns nullptr
  /// when absent.
  JsonValue &set(const std::string &Key, JsonValue V);
  const JsonValue *get(const std::string &Key) const;
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

  /// Array access.
  JsonValue &push(JsonValue V);
  std::size_t size() const {
    return K == Kind::Array ? Elements.size() : Members.size();
  }
  const JsonValue &at(std::size_t Idx) const { return Elements[Idx]; }

  /// Serializes; \p Indent > 0 pretty-prints with that many spaces.
  std::string dump(unsigned Indent = 0) const;

  /// Parses \p Text. On failure returns Null and sets \p Error.
  static JsonValue parse(const std::string &Text, std::string *Error);

  bool operator==(const JsonValue &O) const;
  bool operator!=(const JsonValue &O) const { return !(*this == O); }

private:
  void dumpTo(std::string &Out, unsigned Indent, unsigned Depth) const;

  Kind K;
  bool B = false;
  uint64_t U = 0;
  int64_t I = 0;
  double D = 0;
  std::string S;
  std::vector<JsonValue> Elements;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

} // namespace obs
} // namespace otm

#endif // OTM_OBS_JSON_H
