//===- obs/TxObs.h - Per-transaction observability hooks -------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small per-manager state both STMs embed to feed the observability
/// layer: the thread's trace ring (nullptr when OTM_TRACE is unset), a
/// process-unique site id for abort attribution, and the begin-timestamp /
/// retry bookkeeping behind the commit-latency and retries-per-commit
/// histograms.
///
/// Cost discipline: with tracing off and sampling off, onBegin is one
/// relaxed atomic load and onCommit/onAbort are a predictable branch each.
/// Latency sampling (two TSC reads per transaction) only happens after
/// setSampling(true) — the benchmarks' StatsCapture/BenchReport turn it
/// on; OTM_STATS=1 does so from the environment.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_OBS_TXOBS_H
#define OTM_OBS_TXOBS_H

#include "obs/Histogram.h"
#include "obs/TraceRing.h"
#include "obs/Tsc.h"

#include <atomic>

namespace otm {
namespace obs {

/// Process-wide switch for latency/retry histogram sampling. An inline
/// variable (not a function-local static) so samplingEnabled() inlines to a
/// single relaxed load with no call and no guard check — it sits on every
/// transaction's begin path. OTM_STATS=1 turns it on at startup (TxObs.cpp).
inline std::atomic<bool> SamplingOn{false};
inline bool samplingEnabled() {
  return SamplingOn.load(std::memory_order_relaxed);
}
inline void setSampling(bool On) {
  SamplingOn.store(On, std::memory_order_relaxed);
}

/// Allocates the next transaction-site id (1-based; 0 means unknown).
uint32_t nextSiteId();

struct TxObs {
  TraceRing *Ring = nullptr;
  uint32_t SiteId = 0;
  bool Sampling = false;
  uint64_t BeginTsc = 0;
  uint64_t PendingRetries = 0;

  /// Called once, from the owning manager's first use on its thread.
  void attachThread() {
#if OTM_OBS_ENABLE
    Ring = TraceRing::forCurrentThread();
    SiteId = nextSiteId();
#endif
  }

  OTM_ALWAYS_INLINE void onBegin(uint16_t StmAux) {
#if OTM_OBS_ENABLE
    OTM_TRACE_EVENT(Ring, EventKind::TxBegin, nullptr, StmAux);
    Sampling = samplingEnabled();
    if (OTM_UNLIKELY(Sampling))
      BeginTsc = readTsc();
#else
    (void)StmAux;
#endif
  }

  OTM_ALWAYS_INLINE void onCommit(uint16_t StmAux, Histogram &CommitCycles,
                                  Histogram &RetriesPerCommit) {
#if OTM_OBS_ENABLE
    OTM_TRACE_EVENT(Ring, EventKind::TxCommit, nullptr, StmAux);
    if (OTM_UNLIKELY(Sampling)) {
      CommitCycles.record(readTsc() - BeginTsc);
      RetriesPerCommit.record(PendingRetries);
    }
    PendingRetries = 0;
#else
    (void)StmAux;
    (void)CommitCycles;
    (void)RetriesPerCommit;
#endif
  }

  /// \p Cause is one of the AuxCause* values; user aborts do not retry so
  /// they close the attempt chain instead of extending it.
  OTM_ALWAYS_INLINE void onAbort(uint16_t Cause, uint16_t StmAux) {
#if OTM_OBS_ENABLE
    OTM_TRACE_EVENT(Ring, EventKind::TxAbort, nullptr,
                    static_cast<uint16_t>(StmAux | Cause));
    if (Cause == AuxCauseUser)
      PendingRetries = 0;
    else
      ++PendingRetries;
#else
    (void)Cause;
    (void)StmAux;
#endif
  }
};

} // namespace obs
} // namespace otm

#endif // OTM_OBS_TXOBS_H
