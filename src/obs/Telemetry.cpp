//===- obs/Telemetry.cpp - Continuous time-series telemetry ----------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Telemetry.h"

#include "obs/TraceRing.h" // OTM_OBS_ENABLE default

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(_WIN32)
#include <process.h>
#define OTM_GETPID _getpid
#else
#include <unistd.h>
#define OTM_GETPID getpid
#endif

using namespace otm;
using namespace otm::obs;

Telemetry &Telemetry::instance() {
  static Telemetry T;
  return T;
}

void Telemetry::registerSource(const std::string &Name, SampleFn Fn) {
  std::lock_guard<std::mutex> Lock(SourceMutex);
  for (auto &Entry : Sources)
    if (Entry.first == Name) {
      Entry.second = std::move(Fn);
      return;
    }
  Sources.emplace_back(Name, std::move(Fn));
}

bool Telemetry::start(unsigned WantIntervalMs, const std::string &OutPath,
                      const std::string &PromOutPath) {
#if OTM_OBS_ENABLE
  if (WantIntervalMs == 0 || Running.load(std::memory_order_acquire))
    return false;
  {
    std::lock_guard<std::mutex> Lock(EmitMutex);
    if (OutPath == "-") {
      JsonlFile = stdout;
    } else {
      JsonlFile = std::fopen(OutPath.c_str(), "w");
      if (!JsonlFile) {
        std::fprintf(stderr, "[telemetry] cannot open %s\n", OutPath.c_str());
        return false;
      }
    }
    JsonlPath = OutPath;
    PromPath = PromOutPath;
    IntervalMs = WantIntervalMs;
    Seq = 0;
    PrevTotals = JsonValue::object();
    Epoch = std::chrono::steady_clock::now();
  }
  {
    std::lock_guard<std::mutex> Lock(WakeMutex);
    StopRequested = false;
  }
  Running.store(true, std::memory_order_release);
  Worker = std::thread([this] { threadMain(); });
  return true;
#else
  (void)WantIntervalMs;
  (void)OutPath;
  (void)PromOutPath;
  return false;
#endif
}

bool Telemetry::startFromEnv() {
  const char *Interval = std::getenv("OTM_TELEMETRY");
  if (!Interval || !Interval[0])
    return false;
  long Ms = std::strtol(Interval, nullptr, 10);
  if (Ms <= 0)
    return false;
  std::string Out;
  if (const char *O = std::getenv("OTM_TELEMETRY_OUT")) {
    Out = O;
  } else {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "otm-telemetry-%ld.jsonl",
                  static_cast<long>(OTM_GETPID()));
    if (const char *Dir = std::getenv("OTM_BENCH_JSON_DIR"))
      Out = std::string(Dir) + "/" + Buf;
    else
      Out = Buf;
  }
  std::string Prom;
  if (const char *P = std::getenv("OTM_TELEMETRY_PROM"))
    Prom = P;
  return start(static_cast<unsigned>(Ms), Out, Prom);
}

void Telemetry::stop() {
  if (!Running.load(std::memory_order_acquire))
    return;
  {
    std::lock_guard<std::mutex> Lock(WakeMutex);
    StopRequested = true;
  }
  Wake.notify_all();
  if (Worker.joinable())
    Worker.join();
  Running.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> Lock(EmitMutex);
  if (JsonlFile && JsonlFile != stdout)
    std::fclose(static_cast<FILE *>(JsonlFile));
  JsonlFile = nullptr;
}

void Telemetry::threadMain() {
  for (;;) {
    bool Stopping;
    {
      std::unique_lock<std::mutex> Lock(WakeMutex);
      Wake.wait_for(Lock, std::chrono::milliseconds(IntervalMs),
                    [this] { return StopRequested; });
      Stopping = StopRequested;
    }
    sampleOnce(); // on stop this is the flush-on-exit record
    if (Stopping)
      return;
  }
}

/// Mirrors the unsigned-integer leaves of \p Cur as clamped deltas against
/// \p Prev (same path). Non-integer leaves and mismatched shapes are
/// skipped: rates only make sense for monotonic counters.
static JsonValue diffTotals(const JsonValue &Cur, const JsonValue *Prev) {
  JsonValue Out = JsonValue::object();
  if (Cur.kind() != JsonValue::Kind::Object)
    return Out;
  for (const auto &Member : Cur.members()) {
    const JsonValue *P = Prev ? Prev->get(Member.first) : nullptr;
    if (Member.second.kind() == JsonValue::Kind::Object) {
      Out.set(Member.first, diffTotals(Member.second, P));
    } else if (Member.second.kind() == JsonValue::Kind::UInt) {
      uint64_t PrevV =
          P && P->kind() == JsonValue::Kind::UInt ? P->asUInt() : 0;
      Out.set(Member.first,
              Telemetry::clampedDelta(Member.second.asUInt(), PrevV));
    }
  }
  return Out;
}

JsonValue Telemetry::buildRecordLocked() {
  JsonValue Totals = JsonValue::object();
  {
    std::lock_guard<std::mutex> Lock(SourceMutex);
    for (const auto &Entry : Sources)
      Totals.set(Entry.first, Entry.second());
  }
  JsonValue Deltas = JsonValue::object();
  for (const auto &Member : Totals.members())
    Deltas.set(Member.first,
               diffTotals(Member.second, PrevTotals.get(Member.first)));

  JsonValue Record = JsonValue::object();
  Record.set("schema", TelemetrySchema);
  Record.set("seq", Seq++);
  double Us = std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - Epoch)
                  .count();
  Record.set("t_us", Us);
  Record.set("interval_ms", static_cast<uint64_t>(IntervalMs));
  PrevTotals = Totals;
  Record.set("totals", std::move(Totals));
  Record.set("deltas", std::move(Deltas));
  return Record;
}

void Telemetry::emitLocked(const JsonValue &Record) {
  if (JsonlFile) {
    std::string Line = Record.dump(0);
    Line += '\n';
    std::fwrite(Line.data(), 1, Line.size(), static_cast<FILE *>(JsonlFile));
    std::fflush(static_cast<FILE *>(JsonlFile));
  }
  if (!PromPath.empty()) {
    if (const JsonValue *Totals = Record.get("totals")) {
      std::string Text = prometheusText(*Totals);
      if (FILE *F = std::fopen(PromPath.c_str(), "w")) {
        std::fwrite(Text.data(), 1, Text.size(), F);
        std::fclose(F);
      }
    }
  }
  Samples.fetch_add(1, std::memory_order_release);
}

JsonValue Telemetry::sampleOnce() {
  std::lock_guard<std::mutex> Lock(EmitMutex);
  JsonValue Record = buildRecordLocked();
  emitLocked(Record);
  return Record;
}

static void sanitizeMetricKey(std::string &Name) {
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
      C = '_';
}

static void flattenForProm(const JsonValue &V, const std::string &Prefix,
                           std::string &Out) {
  switch (V.kind()) {
  case JsonValue::Kind::Object:
    for (const auto &Member : V.members()) {
      std::string Key = Member.first;
      sanitizeMetricKey(Key);
      flattenForProm(Member.second, Prefix + "_" + Key, Out);
    }
    break;
  case JsonValue::Kind::UInt:
  case JsonValue::Kind::Int:
  case JsonValue::Kind::Double: {
    char Buf[64];
    if (V.kind() == JsonValue::Kind::Double)
      std::snprintf(Buf, sizeof(Buf), "%.6g", V.asDouble());
    else
      std::snprintf(Buf, sizeof(Buf), "%llu",
                    static_cast<unsigned long long>(V.asUInt()));
    Out += "# TYPE " + Prefix + " gauge\n";
    Out += Prefix + " " + Buf + "\n";
    break;
  }
  default:
    break; // strings/arrays (top-K tables) have no Prometheus shape
  }
}

std::string Telemetry::prometheusText(const JsonValue &Totals) {
  std::string Out;
  flattenForProm(Totals, "otm", Out);
  return Out;
}

#if OTM_OBS_ENABLE
namespace {
/// Starts the sampler before main() when OTM_TELEMETRY is set. Stop (join +
/// final record + close) happens in ~Telemetry: the instance is constructed
/// here, during static initialization, so it is destroyed after the
/// function-local singletons the sources read — and those are trivially
/// destructible process-lifetime aggregates anyway.
struct TelemetryEnvInit {
  TelemetryEnvInit() { Telemetry::instance().startFromEnv(); }
} InitTelemetry;
} // namespace
#endif
