//===- obs/Json.cpp - Minimal JSON document model --------------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace otm;
using namespace otm::obs;

JsonValue &JsonValue::set(const std::string &Key, JsonValue V) {
  for (auto &KV : Members)
    if (KV.first == Key) {
      KV.second = std::move(V);
      return KV.second;
    }
  Members.emplace_back(Key, std::move(V));
  return Members.back().second;
}

const JsonValue *JsonValue::get(const std::string &Key) const {
  for (const auto &KV : Members)
    if (KV.first == Key)
      return &KV.second;
  return nullptr;
}

JsonValue &JsonValue::push(JsonValue V) {
  Elements.push_back(std::move(V));
  return Elements.back();
}

bool JsonValue::operator==(const JsonValue &O) const {
  if (isNumber() && O.isNumber())
    return asDouble() == O.asDouble();
  if (K != O.K)
    return false;
  switch (K) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return B == O.B;
  case Kind::String:
    return S == O.S;
  case Kind::Array:
    return Elements == O.Elements;
  case Kind::Object:
    return Members == O.Members;
  default:
    return true; // numbers handled above
  }
}

namespace {

void escapeTo(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void newlineIndent(std::string &Out, unsigned Indent, unsigned Depth) {
  if (!Indent)
    return;
  Out += '\n';
  Out.append(static_cast<std::size_t>(Indent) * Depth, ' ');
}

} // namespace

void JsonValue::dumpTo(std::string &Out, unsigned Indent,
                       unsigned Depth) const {
  char Buf[64];
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += B ? "true" : "false";
    break;
  case Kind::UInt:
    std::snprintf(Buf, sizeof(Buf), "%llu",
                  static_cast<unsigned long long>(U));
    Out += Buf;
    break;
  case Kind::Int:
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(I));
    Out += Buf;
    break;
  case Kind::Double:
    if (std::isfinite(D)) {
      std::snprintf(Buf, sizeof(Buf), "%.17g", D);
      Out += Buf;
    } else {
      Out += "null"; // JSON has no inf/nan
    }
    break;
  case Kind::String:
    escapeTo(Out, S);
    break;
  case Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &E : Elements) {
      if (!First)
        Out += ',';
      First = false;
      newlineIndent(Out, Indent, Depth + 1);
      E.dumpTo(Out, Indent, Depth + 1);
    }
    if (!Elements.empty())
      newlineIndent(Out, Indent, Depth);
    Out += ']';
    break;
  }
  case Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &KV : Members) {
      if (!First)
        Out += ',';
      First = false;
      newlineIndent(Out, Indent, Depth + 1);
      escapeTo(Out, KV.first);
      Out += Indent ? ": " : ":";
      KV.second.dumpTo(Out, Indent, Depth + 1);
    }
    if (!Members.empty())
      newlineIndent(Out, Indent, Depth);
    Out += '}';
    break;
  }
  }
}

std::string JsonValue::dump(unsigned Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string *Error)
      : Text(Text), Error(Error) {}

  JsonValue run() {
    JsonValue V = parseValue();
    skipWs();
    if (!Failed && Pos != Text.size())
      fail("trailing characters");
    return Failed ? JsonValue() : V;
  }

private:
  void fail(const char *Msg) {
    if (!Failed && Error) {
      char Buf[96];
      std::snprintf(Buf, sizeof(Buf), "%s at offset %zu", Msg, Pos);
      *Error = Buf;
    }
    Failed = true;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Lit) {
    std::size_t N = std::char_traits<char>::length(Lit);
    if (Text.compare(Pos, N, Lit) == 0) {
      Pos += N;
      return true;
    }
    return false;
  }

  JsonValue parseValue() {
    skipWs();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return JsonValue();
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"')
      return JsonValue(parseString());
    if (literal("true"))
      return JsonValue(true);
    if (literal("false"))
      return JsonValue(false);
    if (literal("null"))
      return JsonValue();
    return parseNumber();
  }

  std::string parseString() {
    std::string Out;
    if (!consume('"')) {
      fail("expected string");
      return Out;
    }
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'u': {
        if (Pos + 4 <= Text.size()) {
          unsigned V =
              static_cast<unsigned>(std::strtoul(
                  Text.substr(Pos, 4).c_str(), nullptr, 16));
          Pos += 4;
          Out += static_cast<char>(V & 0x7f); // ASCII escapes only
        }
        break;
      }
      default:
        Out += E; // covers \" \\ \/
      }
    }
    if (!consume('"'))
      fail("unterminated string");
    return Out;
  }

  JsonValue parseNumber() {
    std::size_t Start = Pos;
    bool IsNegative = Pos < Text.size() && Text[Pos] == '-';
    bool IsDouble = false;
    if (IsNegative)
      ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (std::isdigit(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == '.' || C == 'e' || C == 'E' || C == '+' || C == '-') {
        IsDouble = true;
        ++Pos;
      } else {
        break;
      }
    }
    if (Pos == Start) {
      fail("expected value");
      return JsonValue();
    }
    std::string Num = Text.substr(Start, Pos - Start);
    if (IsDouble)
      return JsonValue(std::strtod(Num.c_str(), nullptr));
    if (IsNegative)
      return JsonValue(
          static_cast<int64_t>(std::strtoll(Num.c_str(), nullptr, 10)));
    return JsonValue(
        static_cast<uint64_t>(std::strtoull(Num.c_str(), nullptr, 10)));
  }

  JsonValue parseArray() {
    JsonValue V = JsonValue::array();
    consume('[');
    skipWs();
    if (consume(']'))
      return V;
    do {
      V.push(parseValue());
      if (Failed)
        return V;
    } while (consume(','));
    if (!consume(']'))
      fail("expected ']' or ','");
    return V;
  }

  JsonValue parseObject() {
    JsonValue V = JsonValue::object();
    consume('{');
    skipWs();
    if (consume('}'))
      return V;
    do {
      skipWs();
      std::string Key = parseString();
      if (Failed || !consume(':')) {
        fail("expected ':' after key");
        return V;
      }
      V.set(Key, parseValue());
      if (Failed)
        return V;
    } while (consume(','));
    if (!consume('}'))
      fail("expected '}' or ','");
    return V;
  }

  const std::string &Text;
  std::string *Error;
  std::size_t Pos = 0;
  bool Failed = false;
};

} // namespace

JsonValue JsonValue::parse(const std::string &Text, std::string *Error) {
  return Parser(Text, Error).run();
}
