//===- obs/Statistic.cpp - LLVM-style named statistic counters -------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/Statistic.h"

using namespace otm;
using namespace otm::obs;

std::atomic<Statistic *> &Statistic::headStorage() {
  static std::atomic<Statistic *> Head{nullptr};
  return Head;
}

Statistic *Statistic::head() {
  return headStorage().load(std::memory_order_acquire);
}

Statistic::Statistic(const char *Group, const char *Name, const char *Desc)
    : Group(Group), Name(Name), Desc(Desc) {
  // Lock-free push; constructors run during static init or first use of a
  // function-local static, both of which may race across threads.
  std::atomic<Statistic *> &Head = headStorage();
  Next = Head.load(std::memory_order_relaxed);
  while (!Head.compare_exchange_weak(Next, this, std::memory_order_release,
                                     std::memory_order_relaxed))
    ;
}

void Statistic::resetAll() {
  for (Statistic *S = head(); S; S = S->Next)
    S->Value.store(0, std::memory_order_relaxed);
}

void Statistic::printAll(std::FILE *Out) {
  std::fprintf(Out, "=== otm statistics ===\n");
  for (Statistic *S = head(); S; S = S->Next)
    if (uint64_t V = S->value())
      std::fprintf(Out, "%10llu %-14s - %s\n",
                   static_cast<unsigned long long>(V), S->Group, S->Desc);
}

JsonValue Statistic::allToJson() {
  JsonValue Arr = JsonValue::array();
  for (Statistic *S = head(); S; S = S->Next) {
    if (!S->value())
      continue;
    JsonValue Entry = JsonValue::object();
    Entry.set("group", S->Group);
    Entry.set("name", S->Name);
    Entry.set("value", S->value());
    Arr.push(std::move(Entry));
  }
  return Arr;
}
