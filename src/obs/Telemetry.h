//===- obs/Telemetry.h - Continuous time-series telemetry ------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An opt-in background sampler that turns the process-wide aggregates
/// (GlobalTxStats, CmStats, AbortSites, phase histograms) into a live time
/// series while the workload runs, instead of only a post-mortem document.
///
/// Sources are registered as named callbacks returning cumulative-total
/// JsonValue trees, so the obs library stays dependency-free: the stm
/// library registers its own sources (see TxManager.cpp). Every interval
/// the sampler emits one JSONL record (schema `otm-telemetry-v1`):
///
///   {"schema":"otm-telemetry-v1","seq":N,"t_us":...,"interval_ms":M,
///    "totals":{"stm":{...},"txn_cm":{...},...},
///    "deltas":{"stm":{...},...}}
///
/// Deltas mirror the unsigned-integer leaves of totals and are computed
/// with clampedDelta(): a concurrent reset() (bench loops reset the
/// aggregates between cells) makes the counter *smaller*, and the clamp
/// treats that as a restart from zero instead of emitting a negative rate.
///
/// Activation: OTM_TELEMETRY=<ms> starts the sampler before main();
/// OTM_TELEMETRY_OUT names the JSONL sink (default
/// otm-telemetry-<pid>.jsonl, in $OTM_BENCH_JSON_DIR when set, "-" for
/// stdout); OTM_TELEMETRY_PROM additionally rewrites a Prometheus text
/// exposition file each interval (textfile-collector style). The sampler
/// emits one final record on stop()/exit so short runs are never empty.
/// Everything compiles out under -DOTM_OBS_ENABLE=0: start() refuses and
/// no thread ever spawns.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_OBS_TELEMETRY_H
#define OTM_OBS_TELEMETRY_H

#include "obs/Json.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace otm {
namespace obs {

inline constexpr const char *TelemetrySchema = "otm-telemetry-v1";

class Telemetry {
public:
  static Telemetry &instance();

  /// A named producer of one cumulative-totals subtree per sample. Called
  /// from the sampler thread; must be safe to call concurrently with the
  /// workload (relaxed snapshot reads) and must only touch process-lifetime
  /// state (the sampler may still fire during exit).
  using SampleFn = std::function<JsonValue()>;

  /// Registers (or replaces, matched by name) a source. Safe any time,
  /// including while the sampler runs.
  void registerSource(const std::string &Name, SampleFn Fn);

  /// Starts the background sampler. Returns false when already running,
  /// when \p IntervalMs is 0, or when observability is compiled out.
  /// \p JsonlPath may be "-" for stdout; \p PromPath empty disables the
  /// Prometheus exposition file.
  bool start(unsigned IntervalMs, const std::string &JsonlPath,
             const std::string &PromPath = "");

  /// Reads OTM_TELEMETRY / OTM_TELEMETRY_OUT / OTM_TELEMETRY_PROM and
  /// starts accordingly. Returns true iff the sampler was started.
  bool startFromEnv();

  /// Stops the sampler: signals the thread, joins it (it emits one final
  /// record first), and closes the sinks. Idempotent.
  void stop();

  bool running() const { return Running.load(std::memory_order_acquire); }
  uint64_t samplesEmitted() const {
    return Samples.load(std::memory_order_acquire);
  }
  unsigned intervalMs() const { return IntervalMs; }

  /// Builds and emits one record immediately (also what the thread does per
  /// tick). Usable without start() for tests and one-shot dumps.
  JsonValue sampleOnce();

  /// cur - prev for monotonic counters, treating a shrink (concurrent
  /// reset) as a restart from zero — never underflows.
  static uint64_t clampedDelta(uint64_t Cur, uint64_t Prev) {
    return Cur >= Prev ? Cur - Prev : Cur;
  }

  /// Renders the unsigned/double leaves of \p Totals as Prometheus text
  /// exposition lines (`otm_<source>_<path> <value>`).
  static std::string prometheusText(const JsonValue &Totals);

  ~Telemetry() { stop(); }

private:
  Telemetry() = default;

  void threadMain();
  /// Builds the next record (totals from every source, deltas vs the
  /// previous totals) under EmitMutex.
  JsonValue buildRecordLocked();
  void emitLocked(const JsonValue &Record);

  mutable std::mutex SourceMutex;
  std::vector<std::pair<std::string, SampleFn>> Sources;

  std::mutex EmitMutex; // serializes buildRecord/emit (thread vs sampleOnce)
  JsonValue PrevTotals = JsonValue::object();
  uint64_t Seq = 0;
  std::chrono::steady_clock::time_point Epoch;

  std::mutex WakeMutex;
  std::condition_variable Wake;
  bool StopRequested = false;

  std::thread Worker;
  std::atomic<bool> Running{false};
  std::atomic<uint64_t> Samples{0};
  unsigned IntervalMs = 0;
  std::string JsonlPath;
  std::string PromPath;
  void *JsonlFile = nullptr; // FILE*; void* keeps <cstdio> out of the header
};

} // namespace obs
} // namespace otm

#endif // OTM_OBS_TELEMETRY_H
