//===- obs/PhaseProfile.h - Transaction phase cycle accounting -*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase-level TSC accounting for the transaction lifecycle. Each phase is
/// one of the places a transaction's cycles can go once it has entered the
/// runtime: the open barriers, commit-time read-set validation, the
/// commit-lock acquisition (word STM), write-back/publication, waiting on a
/// conflicting owner, and the contention manager's inter-attempt backoff.
///
/// Recording is sampling-gated exactly like the commit-latency histograms:
/// a PhaseScope costs one well-predicted branch when obs::samplingEnabled()
/// is off, two TSC reads plus one histogram record when it is on, and
/// compiles out entirely under -DOTM_OBS_ENABLE=0. Each sample is one phase
/// *episode* (one barrier, one validation scan, one backoff pause), so the
/// per-phase histogram's sum() is the total cycles the phase consumed and
/// its count() is how often it ran — the per-phase breakdown every bench
/// reports, and the percentile source for p50/p99/p999 commit latency.
///
/// The phases are not a strict partition: an open that finds a foreign
/// owner contains its CmWait episode, and the word STM's CommitLock phase
/// contains the stripe-lock waits. The breakdown tables divide by the sum
/// of the exclusive phases and call this out.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_OBS_PHASEPROFILE_H
#define OTM_OBS_PHASEPROFILE_H

#include "obs/Histogram.h"
#include "obs/TraceRing.h" // OTM_OBS_ENABLE default
#include "obs/Tsc.h"
#include "support/Compiler.h"

namespace otm {
namespace obs {

/// Where a transaction's runtime cycles went. Keep in sync with
/// phaseName() and the OTM_TXSTAT_HISTOGRAMS Phase* entries.
enum class Phase : uint8_t {
  Open = 0,     ///< openForRead/openForUpdate/read/write barriers
  Validate,     ///< commit-time (and periodic) read-set validation
  CommitLock,   ///< word-STM commit lock acquisition (incl. its waits)
  WriteBack,    ///< publication: version release (obj) / redo apply (word)
  CmWait,       ///< spinning on a conflicting owner before abort/continue
  Backoff,      ///< contention manager's inter-attempt pause
};

inline constexpr unsigned NumPhases = 6;

inline const char *phaseName(Phase P) {
  switch (P) {
  case Phase::Open:
    return "open";
  case Phase::Validate:
    return "validate";
  case Phase::CommitLock:
    return "commit_lock";
  case Phase::WriteBack:
    return "write_back";
  case Phase::CmWait:
    return "cm_wait";
  case Phase::Backoff:
    return "backoff";
  }
  return "?";
}

#if OTM_OBS_ENABLE

/// RAII episode timer: records (end - start) TSC ticks into \p Hist when
/// \p On. The enable flag is the caller's per-attempt sampling cache (the
/// same byte TxObs::onBegin loads), so the disabled path re-tests a hot
/// struct member and never reads the TSC.
class PhaseScope {
public:
  OTM_ALWAYS_INLINE PhaseScope(bool On, Histogram &Hist) {
    if (OTM_UNLIKELY(On)) {
      H = &Hist;
      T0 = readTsc();
    }
  }
  OTM_ALWAYS_INLINE ~PhaseScope() {
    if (OTM_UNLIKELY(H != nullptr))
      H->record(readTsc() - T0);
  }
  PhaseScope(const PhaseScope &) = delete;
  PhaseScope &operator=(const PhaseScope &) = delete;

private:
  Histogram *H = nullptr;
  uint64_t T0 = 0;
};

#else // !OTM_OBS_ENABLE

class PhaseScope {
public:
  OTM_ALWAYS_INLINE PhaseScope(bool, Histogram &) {}
};

#endif // OTM_OBS_ENABLE

/// Per-open Open-phase timing is a compile-time opt-in, for the same reason
/// per-open trace instants are (OTM_OBS_TRACE_OPENS above): the disabled
/// PhaseScope still re-tests the sampling byte on every barrier, and one
/// extra predicted branch is measurable (E0: +5-12%) inside a read barrier
/// that is itself only a few ns. The per-transaction phases (validate,
/// commit-lock, write-back, cm-wait, backoff) run once per attempt, so
/// their runtime gate amortizes below the noise floor and they stay
/// compiled in unconditionally.
#ifndef OTM_OBS_PHASE_OPENS
#define OTM_OBS_PHASE_OPENS 0
#endif

#if OTM_OBS_ENABLE && OTM_OBS_PHASE_OPENS
#define OTM_PHASE_OPEN_SCOPE(On, Hist)                                         \
  ::otm::obs::PhaseScope OtmPhaseOpenScope((On), (Hist))
#else
#define OTM_PHASE_OPEN_SCOPE(On, Hist) ((void)0)
#endif

} // namespace obs
} // namespace otm

#endif // OTM_OBS_PHASEPROFILE_H
