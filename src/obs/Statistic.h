//===- obs/Statistic.h - LLVM-style named statistic counters ---*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Named, self-registering counters in the style of LLVM's `-stats`
/// facility. A component declares file-local counters with
/// OTM_STATISTIC(Var, "group", "name", "description") and bumps them as it
/// works; after a pipeline run the registry can print every non-zero
/// counter (OTM_PASS_STATS=1) or serialize them into the stats JSON.
///
/// Counters are process-wide atomics: they accumulate across pipeline
/// runs until resetAll(), which benchmarks call between configurations.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_OBS_STATISTIC_H
#define OTM_OBS_STATISTIC_H

#include "obs/Json.h"

#include <atomic>
#include <cstdint>
#include <cstdio>

namespace otm {
namespace obs {

class Statistic {
public:
  Statistic(const char *Group, const char *Name, const char *Desc);

  Statistic &operator+=(uint64_t N) {
    Value.fetch_add(N, std::memory_order_relaxed);
    return *this;
  }
  Statistic &operator++() { return *this += 1; }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }
  const char *group() const { return Group; }
  const char *name() const { return Name; }
  const char *description() const { return Desc; }

  /// Zeroes every registered counter.
  static void resetAll();

  /// Prints every non-zero counter, LLVM `-stats` style:
  ///   <value> <group> - <description>
  static void printAll(std::FILE *Out);

  /// [{group, name, value}, ...] for every non-zero counter.
  static JsonValue allToJson();

  /// Visits (const Statistic &) for every registered counter.
  template <typename FnType> static void forEach(FnType Fn) {
    for (Statistic *S = head(); S; S = S->Next)
      Fn(static_cast<const Statistic &>(*S));
  }

private:
  static Statistic *head();
  static std::atomic<Statistic *> &headStorage();

  const char *Group;
  const char *Name;
  const char *Desc;
  std::atomic<uint64_t> Value{0};
  Statistic *Next = nullptr; // intrusive registry list (push at init)
};

} // namespace obs
} // namespace otm

/// Declares a file-local registered counter.
#define OTM_STATISTIC(Var, Group, Name, Desc)                                  \
  static ::otm::obs::Statistic Var(Group, Name, Desc)

#endif // OTM_OBS_STATISTIC_H
