//===- obs/TxObs.cpp - Per-transaction observability hooks -----------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/TxObs.h"

#include <cstdlib>
#include <cstring>

using namespace otm;
using namespace otm::obs;

namespace {
/// Seeds SamplingOn from OTM_STATS before main() runs.
struct SamplingEnvInit {
  SamplingEnvInit() {
    const char *V = std::getenv("OTM_STATS");
    if (V && V[0] && std::strcmp(V, "0") != 0)
      setSampling(true);
  }
} InitSampling;
} // namespace

uint32_t obs::nextSiteId() {
  static std::atomic<uint32_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}
