//===- obs/AbortSites.cpp - Abort attribution & conflict graph -------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/AbortSites.h"

#include <algorithm>
#include <cstdio>

using namespace otm;
using namespace otm::obs;

AbortSites &AbortSites::instance() {
  static AbortSites A;
  return A;
}

void AbortSites::record(const void *Addr, AbortCause Cause,
                        uint32_t OwnerSite, uint32_t VictimSite) {
  if (VictimSite)
    recordEdge(VictimSite, OwnerSite, Cause);
  uintptr_t Key = reinterpret_cast<uintptr_t>(Addr);
  if (!Key)
    return;
  // Fibonacci hash; objects are pointer-aligned so low bits carry nothing.
  std::size_t H = static_cast<std::size_t>(
      (static_cast<uint64_t>(Key) * 0x9e3779b97f4a7c15ULL) >> 32);
  for (std::size_t P = 0; P < MaxProbe; ++P) {
    Slot &S = Slots[(H + P) & (NumSlots - 1)];
    uintptr_t Cur = S.Addr.load(std::memory_order_relaxed);
    if (Cur == 0) {
      if (!S.Addr.compare_exchange_strong(Cur, Key,
                                          std::memory_order_relaxed))
        if (Cur != Key)
          continue; // someone claimed it for a different address
    } else if (Cur != Key) {
      continue;
    }
    if (Cause == AbortCause::Conflict)
      S.Conflicts.fetch_add(1, std::memory_order_relaxed);
    else
      S.Validations.fetch_add(1, std::memory_order_relaxed);
    if (OwnerSite)
      S.LastOwner.store(OwnerSite, std::memory_order_relaxed);
    return;
  }
  Dropped.fetch_add(1, std::memory_order_relaxed);
}

void AbortSites::recordEdge(uint32_t VictimSite, uint32_t OwnerSite,
                            AbortCause Cause) {
  uint64_t Key = (static_cast<uint64_t>(VictimSite) << 32) | OwnerSite;
  // Mix both halves; site ids are small sequential integers.
  std::size_t H =
      static_cast<std::size_t>((Key * 0x2545f4914f6cdd1dULL) >> 32);
  for (std::size_t P = 0; P < MaxEdgeProbe; ++P) {
    EdgeSlot &S = EdgeSlots[(H + P) & (NumEdgeSlots - 1)];
    uint64_t Cur = S.Key.load(std::memory_order_relaxed);
    if (Cur == 0) {
      if (!S.Key.compare_exchange_strong(Cur, Key, std::memory_order_relaxed))
        if (Cur != Key)
          continue;
    } else if (Cur != Key) {
      continue;
    }
    if (Cause == AbortCause::Conflict)
      S.Conflicts.fetch_add(1, std::memory_order_relaxed);
    else
      S.Validations.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  EdgesDropped.fetch_add(1, std::memory_order_relaxed);
}

std::vector<AbortSites::Site> AbortSites::topK(std::size_t K) const {
  std::vector<Site> All;
  for (const Slot &S : Slots) {
    uintptr_t Addr = S.Addr.load(std::memory_order_relaxed);
    if (!Addr)
      continue;
    Site Out;
    Out.Addr = Addr;
    Out.Conflicts = S.Conflicts.load(std::memory_order_relaxed);
    Out.Validations = S.Validations.load(std::memory_order_relaxed);
    Out.LastOwnerSite = S.LastOwner.load(std::memory_order_relaxed);
    if (Out.total())
      All.push_back(Out);
  }
  std::sort(All.begin(), All.end(), [](const Site &A, const Site &B) {
    return A.total() > B.total();
  });
  if (All.size() > K)
    All.resize(K);
  return All;
}

std::vector<AbortSites::Edge> AbortSites::topEdges(std::size_t K) const {
  std::vector<Edge> All;
  for (const EdgeSlot &S : EdgeSlots) {
    uint64_t Key = S.Key.load(std::memory_order_relaxed);
    if (!Key)
      continue;
    Edge Out;
    Out.Victim = static_cast<uint32_t>(Key >> 32);
    Out.Owner = static_cast<uint32_t>(Key);
    Out.Conflicts = S.Conflicts.load(std::memory_order_relaxed);
    Out.Validations = S.Validations.load(std::memory_order_relaxed);
    if (Out.total())
      All.push_back(Out);
  }
  std::sort(All.begin(), All.end(), [](const Edge &A, const Edge &B) {
    return A.total() > B.total();
  });
  if (All.size() > K)
    All.resize(K);
  return All;
}

std::size_t AbortSites::siteOccupancy() const {
  std::size_t N = 0;
  for (const Slot &S : Slots)
    if (S.Addr.load(std::memory_order_relaxed))
      ++N;
  return N;
}

std::size_t AbortSites::edgeOccupancy() const {
  std::size_t N = 0;
  for (const EdgeSlot &S : EdgeSlots)
    if (S.Key.load(std::memory_order_relaxed))
      ++N;
  return N;
}

void AbortSites::reset() {
  for (Slot &S : Slots) {
    S.Addr.store(0, std::memory_order_relaxed);
    S.Conflicts.store(0, std::memory_order_relaxed);
    S.Validations.store(0, std::memory_order_relaxed);
    S.LastOwner.store(0, std::memory_order_relaxed);
  }
  for (EdgeSlot &S : EdgeSlots) {
    S.Key.store(0, std::memory_order_relaxed);
    S.Conflicts.store(0, std::memory_order_relaxed);
    S.Validations.store(0, std::memory_order_relaxed);
  }
  Dropped.store(0, std::memory_order_relaxed);
  EdgesDropped.store(0, std::memory_order_relaxed);
}

JsonValue AbortSites::toJson(std::size_t K) const {
  JsonValue Arr = JsonValue::array();
  for (const Site &S : topK(K)) {
    JsonValue Entry = JsonValue::object();
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "0x%llx",
                  static_cast<unsigned long long>(S.Addr));
    Entry.set("addr", Buf);
    Entry.set("conflicts", S.Conflicts);
    Entry.set("validations", S.Validations);
    Entry.set("last_owner_site", static_cast<uint64_t>(S.LastOwnerSite));
    Arr.push(std::move(Entry));
  }
  return Arr;
}

JsonValue AbortSites::edgesToJson(std::size_t K) const {
  JsonValue Arr = JsonValue::array();
  for (const Edge &E : topEdges(K)) {
    JsonValue Entry = JsonValue::object();
    Entry.set("victim_site", static_cast<uint64_t>(E.Victim));
    Entry.set("owner_site", static_cast<uint64_t>(E.Owner));
    Entry.set("conflicts", E.Conflicts);
    Entry.set("validations", E.Validations);
    Arr.push(std::move(Entry));
  }
  return Arr;
}

std::string AbortSites::dotGraph(std::size_t K) const {
  std::string Out = "digraph otm_conflicts {\n"
                    "  rankdir=LR;\n"
                    "  node [shape=circle fontsize=10];\n";
  char Buf[128];
  for (const Edge &E : topEdges(K)) {
    // Owner 0 means the owning transaction had already released; render it
    // as a distinct "unknown" sink so the weight is not lost.
    if (E.Owner)
      std::snprintf(Buf, sizeof(Buf),
                    "  s%u -> s%u [label=\"%llu\" weight=%llu];\n", E.Victim,
                    E.Owner, static_cast<unsigned long long>(E.total()),
                    static_cast<unsigned long long>(E.total()));
    else
      std::snprintf(Buf, sizeof(Buf),
                    "  s%u -> unknown [label=\"%llu\" style=dashed];\n",
                    E.Victim, static_cast<unsigned long long>(E.total()));
    Out += Buf;
  }
  Out += "}\n";
  return Out;
}
