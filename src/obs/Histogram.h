//===- obs/Histogram.h - Power-of-two latency histograms -------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-size power-of-two histograms for latency and count distributions.
/// Bucket 0 holds exact zeros; bucket B (B >= 1) holds values in
/// [2^(B-1), 2^B), with the last bucket absorbing the tail. Recording is a
/// bit-width computation and three increments, cheap enough for the STM
/// commit path when sampling is enabled.
///
/// Two variants share the bucketing: Histogram is plain (per-thread, no
/// synchronization, lives inside stm::TxStats) and AtomicHistogram is the
/// process-wide aggregate the per-thread blocks flush into.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_OBS_HISTOGRAM_H
#define OTM_OBS_HISTOGRAM_H

#include <atomic>
#include <bit>
#include <cstdint>

namespace otm {
namespace obs {

/// Shared bucketing scheme.
struct HistogramBuckets {
  static constexpr unsigned Num = 64;

  static unsigned bucketFor(uint64_t V) {
    if (V == 0)
      return 0;
    unsigned Width = static_cast<unsigned>(std::bit_width(V)); // 1..64
    return Width < Num ? Width : Num - 1;
  }

  /// Smallest value that lands in bucket \p B.
  static uint64_t lowerBound(unsigned B) {
    return B == 0 ? 0 : uint64_t{1} << (B - 1);
  }
};

/// Plain (unsynchronized) histogram; copyable so stats snapshots stay
/// value types.
class Histogram {
public:
  void record(uint64_t V) {
    ++Buckets[HistogramBuckets::bucketFor(V)];
    ++Count;
    Sum += V;
    if (V > Max)
      Max = V;
  }

  void merge(const Histogram &O) {
    for (unsigned B = 0; B < HistogramBuckets::Num; ++B)
      Buckets[B] += O.Buckets[B];
    Count += O.Count;
    Sum += O.Sum;
    if (O.Max > Max)
      Max = O.Max;
  }

  void reset() { *this = Histogram(); }

  uint64_t count() const { return Count; }
  uint64_t sum() const { return Sum; }
  uint64_t max() const { return Max; }
  double mean() const {
    return Count ? static_cast<double>(Sum) / static_cast<double>(Count) : 0.0;
  }
  uint64_t bucket(unsigned B) const { return Buckets[B]; }

  /// Value at percentile \p Pct (0..100), linearly interpolated inside the
  /// power-of-two bucket that holds the target rank. Bucket 0 is exact
  /// (only zeros land there); the bucket containing the recorded maximum is
  /// clamped to it, so the tail bucket — whose nominal upper edge may be
  /// 2^63 — never extrapolates past an observed value. Empty histogram
  /// returns 0.
  double percentile(double Pct) const {
    if (Count == 0)
      return 0.0;
    if (Pct <= 0.0)
      return static_cast<double>(minNonEmptyLowerBound());
    if (Pct >= 100.0)
      return static_cast<double>(Max);
    double Rank = Pct / 100.0 * static_cast<double>(Count);
    uint64_t Cum = 0;
    for (unsigned B = 0; B < HistogramBuckets::Num; ++B) {
      if (!Buckets[B])
        continue;
      double InBucket = static_cast<double>(Buckets[B]);
      if (static_cast<double>(Cum) + InBucket >= Rank) {
        if (B == 0)
          return 0.0; // the zero bucket holds exact zeros
        double Lo = static_cast<double>(HistogramBuckets::lowerBound(B));
        double Hi = B + 1 < HistogramBuckets::Num
                        ? static_cast<double>(HistogramBuckets::lowerBound(B + 1))
                        : static_cast<double>(Max);
        // Clamp to the observed maximum when it falls inside this bucket
        // (always true for the highest non-empty bucket).
        double MaxD = static_cast<double>(Max);
        if (MaxD >= Lo && MaxD < Hi)
          Hi = MaxD;
        double Frac = (Rank - static_cast<double>(Cum)) / InBucket;
        return Lo + Frac * (Hi - Lo);
      }
      Cum += Buckets[B];
    }
    return static_cast<double>(Max);
  }

  /// Visits (lowerBound, count) for every non-empty bucket.
  template <typename FnType> void forEachBucket(FnType Fn) const {
    for (unsigned B = 0; B < HistogramBuckets::Num; ++B)
      if (Buckets[B])
        Fn(HistogramBuckets::lowerBound(B), Buckets[B]);
  }

private:
  friend class AtomicHistogram; // snapshot() rebuilds a Histogram in place

  uint64_t minNonEmptyLowerBound() const {
    for (unsigned B = 0; B < HistogramBuckets::Num; ++B)
      if (Buckets[B])
        return HistogramBuckets::lowerBound(B);
    return 0;
  }

  uint64_t Buckets[HistogramBuckets::Num] = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;
};

/// Process-wide aggregate; add() folds a per-thread Histogram in with
/// relaxed atomics (same memory-order policy as GlobalTxStats).
class AtomicHistogram {
public:
  void add(const Histogram &O) {
    O.forEachBucket([&](uint64_t Lower, uint64_t N) {
      Buckets[HistogramBuckets::bucketFor(Lower)].fetch_add(
          N, std::memory_order_relaxed);
    });
    Count.fetch_add(O.count(), std::memory_order_relaxed);
    Sum.fetch_add(O.sum(), std::memory_order_relaxed);
    uint64_t Seen = Max.load(std::memory_order_relaxed);
    while (O.max() > Seen &&
           !Max.compare_exchange_weak(Seen, O.max(),
                                      std::memory_order_relaxed))
      ;
  }

  Histogram snapshot() const {
    Histogram H;
    for (unsigned B = 0; B < HistogramBuckets::Num; ++B)
      H.Buckets[B] = Buckets[B].load(std::memory_order_relaxed);
    H.Count = Count.load(std::memory_order_relaxed);
    H.Sum = Sum.load(std::memory_order_relaxed);
    H.Max = Max.load(std::memory_order_relaxed);
    return H;
  }

  void reset() {
    for (unsigned B = 0; B < HistogramBuckets::Num; ++B)
      Buckets[B].store(0, std::memory_order_relaxed);
    Count.store(0, std::memory_order_relaxed);
    Sum.store(0, std::memory_order_relaxed);
    Max.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> Buckets[HistogramBuckets::Num] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

} // namespace obs
} // namespace otm

#endif // OTM_OBS_HISTOGRAM_H
