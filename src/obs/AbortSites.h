//===- obs/AbortSites.h - Abort attribution & conflict graph ---*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-free abort attribution with two views of the same events:
///
///   - a per-address table: which object (object STM) or lock stripe (word
///     STM) the aborted transaction tripped over, split by cause, with the
///     site id of the last owning transaction;
///
///   - a (victim-site x owner-site) edge table: which transaction *classes*
///     fight, independent of the addresses they fight over. This is the
///     conflict graph the topology-aware scheduling work consumes — E3/E7
///     stop answering only "how many aborts" and start answering "who
///     aborts whom".
///
/// Recording happens only on abort paths — already the slow path — so both
/// tables use plain open addressing with relaxed atomics and drop (counting
/// the drops) when full rather than resizing. Occupancy and drop counts are
/// exported so saturation is visible, never silent.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_OBS_ABORTSITES_H
#define OTM_OBS_ABORTSITES_H

#include "obs/Json.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace otm {
namespace obs {

/// Abort causes the attribution tables distinguish.
enum class AbortCause : uint16_t { Conflict = 0, Validation = 1 };

class AbortSites {
public:
  static AbortSites &instance();

  /// Lock-free; safe from any thread. \p OwnerSite is the site id of the
  /// transaction that owned the address (0 when unknown, e.g. the owner
  /// released between the conflict and the read); \p VictimSite is the
  /// aborting transaction's own site id (0 keeps the edge table out of it,
  /// for callers that only want address attribution).
  void record(const void *Addr, AbortCause Cause, uint32_t OwnerSite,
              uint32_t VictimSite = 0);

  struct Site {
    uintptr_t Addr = 0;
    uint64_t Conflicts = 0;
    uint64_t Validations = 0;
    uint32_t LastOwnerSite = 0;
    uint64_t total() const { return Conflicts + Validations; }
  };

  /// One conflict-graph edge: \p Victim aborted because \p Owner held what
  /// it needed (Owner == 0 collects the unknown-owner aborts per victim).
  struct Edge {
    uint32_t Victim = 0;
    uint32_t Owner = 0;
    uint64_t Conflicts = 0;
    uint64_t Validations = 0;
    uint64_t total() const { return Conflicts + Validations; }
  };

  /// The \p K most-aborted addresses, most contended first.
  std::vector<Site> topK(std::size_t K) const;

  /// The \p K heaviest conflict edges, heaviest first.
  std::vector<Edge> topEdges(std::size_t K) const;

  /// Aborts not attributed because the address table was full.
  uint64_t dropped() const { return Dropped.load(std::memory_order_relaxed); }
  /// Aborts whose (victim, owner) edge was dropped because the edge table
  /// was full.
  uint64_t edgesDropped() const {
    return EdgesDropped.load(std::memory_order_relaxed);
  }

  /// Occupied slots, for saturation reporting next to dropped().
  std::size_t siteOccupancy() const;
  std::size_t edgeOccupancy() const;
  static constexpr std::size_t siteCapacity() { return NumSlots; }
  static constexpr std::size_t edgeCapacity() { return NumEdgeSlots; }

  void reset();

  /// [{addr, conflicts, validations, last_owner_site}, ...] for the top-K.
  JsonValue toJson(std::size_t K) const;

  /// [{victim_site, owner_site, conflicts, validations}, ...] for the
  /// heaviest \p K edges.
  JsonValue edgesToJson(std::size_t K) const;

  /// The conflict graph as a DOT digraph (nodes are transaction sites,
  /// edge weight = abort count), ready for `dot -Tsvg`.
  std::string dotGraph(std::size_t K = 64) const;

private:
  AbortSites() = default;

  static constexpr std::size_t NumSlots = 1024; // power of two
  static constexpr std::size_t MaxProbe = 16;
  static constexpr std::size_t NumEdgeSlots = 512; // power of two
  static constexpr std::size_t MaxEdgeProbe = 16;

  struct Slot {
    std::atomic<uintptr_t> Addr{0};
    std::atomic<uint64_t> Conflicts{0};
    std::atomic<uint64_t> Validations{0};
    std::atomic<uint32_t> LastOwner{0};
  };

  /// Edge slots key on (victim << 32) | owner; victim site ids are 1-based
  /// so a zero key always means "empty".
  struct EdgeSlot {
    std::atomic<uint64_t> Key{0};
    std::atomic<uint64_t> Conflicts{0};
    std::atomic<uint64_t> Validations{0};
  };

  void recordEdge(uint32_t VictimSite, uint32_t OwnerSite, AbortCause Cause);

  Slot Slots[NumSlots];
  EdgeSlot EdgeSlots[NumEdgeSlots];
  std::atomic<uint64_t> Dropped{0};
  std::atomic<uint64_t> EdgesDropped{0};
};

} // namespace obs
} // namespace otm

#endif // OTM_OBS_ABORTSITES_H
