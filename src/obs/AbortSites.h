//===- obs/AbortSites.h - Per-address abort attribution --------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size lock-free table attributing aborts to the conflicting
/// object (object STM) or lock stripe (word STM) address, split by cause,
/// with the site id of the last owning transaction. This is the data the
/// contention experiments (E7) need to answer *which* objects transactions
/// fight over, not just how often they abort.
///
/// Recording happens only on abort paths — already the slow path — so the
/// table uses plain open addressing with relaxed atomics and drops
/// (counting the drops) when full rather than resizing.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_OBS_ABORTSITES_H
#define OTM_OBS_ABORTSITES_H

#include "obs/Json.h"

#include <atomic>
#include <cstdint>
#include <vector>

namespace otm {
namespace obs {

/// Abort causes the attribution table distinguishes.
enum class AbortCause : uint16_t { Conflict = 0, Validation = 1 };

class AbortSites {
public:
  static AbortSites &instance();

  /// Lock-free; safe from any thread. \p OwnerSite is the site id of the
  /// transaction that owned the address (0 when unknown, e.g. the owner
  /// released between the conflict and the read).
  void record(const void *Addr, AbortCause Cause, uint32_t OwnerSite);

  struct Site {
    uintptr_t Addr = 0;
    uint64_t Conflicts = 0;
    uint64_t Validations = 0;
    uint32_t LastOwnerSite = 0;
    uint64_t total() const { return Conflicts + Validations; }
  };

  /// The \p K most-aborted addresses, most contended first.
  std::vector<Site> topK(std::size_t K) const;

  /// Aborts not attributed because the table was full.
  uint64_t dropped() const { return Dropped.load(std::memory_order_relaxed); }

  void reset();

  /// [{addr, conflicts, validations, last_owner_site}, ...] for the top-K.
  JsonValue toJson(std::size_t K) const;

private:
  AbortSites() = default;

  static constexpr std::size_t NumSlots = 1024; // power of two
  static constexpr std::size_t MaxProbe = 16;

  struct Slot {
    std::atomic<uintptr_t> Addr{0};
    std::atomic<uint64_t> Conflicts{0};
    std::atomic<uint64_t> Validations{0};
    std::atomic<uint32_t> LastOwner{0};
  };

  Slot Slots[NumSlots];
  std::atomic<uint64_t> Dropped{0};
};

} // namespace obs
} // namespace otm

#endif // OTM_OBS_ABORTSITES_H
