//===- obs/TraceRing.cpp - Lock-free per-thread event tracing -------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/TraceRing.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>

using namespace otm;
using namespace otm::obs;

namespace {

struct Registry {
  std::mutex M;
  std::vector<TraceRing *> Rings; // leaked: zombies may still be writing
  uint32_t NextOrd = 1;
  TscClock Clock; // epoch for microsecond conversion
};

Registry &registry() {
  static Registry R;
  return R;
}

std::size_t configuredCapacity() {
  if (const char *Cap = std::getenv("OTM_TRACE_CAP")) {
    unsigned long long V = std::strtoull(Cap, nullptr, 10);
    std::size_t Pow2 = 64;
    while (Pow2 < V && Pow2 < (std::size_t{1} << 24))
      Pow2 <<= 1;
    return Pow2;
  }
  return 1 << 14;
}

const char *eventName(uint16_t Kind) {
  switch (static_cast<EventKind>(Kind)) {
  case EventKind::TxBegin:
  case EventKind::TxCommit:
  case EventKind::TxAbort:
    return "tx";
  case EventKind::OpenForRead:
    return "open_read";
  case EventKind::OpenForUpdate:
    return "open_update";
  case EventKind::GcBegin:
  case EventKind::GcEnd:
    return "gc";
  case EventKind::SerialEnter:
  case EventKind::SerialExit:
    return "serial_irrevocable";
  }
  return "event";
}

const char *abortCauseName(uint16_t Aux) {
  switch (Aux & 0xff) {
  case AuxCauseConflict:
    return "conflict";
  case AuxCauseValidation:
    return "validation";
  case AuxCauseUser:
    return "user";
  }
  return "unknown";
}

void appendEvent(std::string &Out, bool &First, const char *Name,
                 const char *Phase, double TsUs, double DurUs, uint32_t Tid,
                 const std::string &Args) {
  char Buf[256];
  if (!First)
    Out += ",\n";
  First = false;
  int N;
  if (DurUs >= 0)
    N = std::snprintf(Buf, sizeof(Buf),
                      "{\"name\":\"%s\",\"cat\":\"otm\",\"ph\":\"%s\","
                      "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                      Name, Phase, TsUs, DurUs, Tid);
  else
    N = std::snprintf(Buf, sizeof(Buf),
                      "{\"name\":\"%s\",\"cat\":\"otm\",\"ph\":\"%s\","
                      "\"ts\":%.3f,\"pid\":1,\"tid\":%u",
                      Name, Phase, TsUs, Tid);
  Out.append(Buf, static_cast<std::size_t>(N));
  if (Phase[0] == 'i')
    Out += ",\"s\":\"t\""; // instant events need a scope
  if (!Args.empty()) {
    Out += ",\"args\":{";
    Out += Args;
    Out += "}";
  }
  Out += "}";
}

std::string addrArg(uintptr_t Addr) {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "\"addr\":\"0x%llx\"",
                static_cast<unsigned long long>(Addr));
  return Buf;
}

} // namespace

bool TraceRing::enabled() {
  static bool On = [] {
    const char *V = std::getenv("OTM_TRACE");
    bool Requested = V && V[0] && std::strcmp(V, "0") != 0;
    if (Requested)
      (void)registry(); // anchor the tsc epoch at process start-ish
    return Requested;
  }();
  return On;
}

TraceRing::TraceRing(uint32_t ThreadOrd, std::size_t CapacityPow2)
    : Slots(CapacityPow2), Mask(CapacityPow2 - 1), ThreadOrd(ThreadOrd) {}

TraceRing *TraceRing::forCurrentThread() {
  if (!enabled())
    return nullptr;
  static thread_local TraceRing *Ring = [] {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.M);
    auto *New = new TraceRing(R.NextOrd++, configuredCapacity());
    R.Rings.push_back(New);
    return New;
  }();
  return Ring;
}

TraceRing *TraceRing::createDetached(std::size_t CapacityPow2) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  auto *New = new TraceRing(R.NextOrd++, CapacityPow2);
  R.Rings.push_back(New);
  return New;
}

std::vector<TraceRing *> TraceRing::allRings() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return R.Rings;
}

std::vector<TraceEvent> TraceRing::snapshot() const {
  uint64_t End = Head.load(std::memory_order_acquire);
  uint64_t Cap = Mask + 1;
  uint64_t Begin = End > Cap ? End - Cap : 0;
  std::vector<TraceEvent> Out;
  Out.reserve(static_cast<std::size_t>(End - Begin));
  for (uint64_t I = Begin; I < End; ++I)
    Out.push_back(Slots[I & Mask]);
  return Out;
}

std::string TraceRing::chromeTraceJson() {
  Registry &R = registry();
  double TicksPerUs = R.Clock.ticksPerMicrosecond();
  std::string Out = "{\"traceEvents\":[\n";
  bool First = true;
  for (TraceRing *Ring : allRings()) {
    std::vector<TraceEvent> Events = Ring->snapshot();
    uint32_t Tid = Ring->threadOrdinal();
    // Pair TxBegin with the next TxCommit/TxAbort on the same thread to
    // emit complete ("X") events; opens and unpaired fragments become
    // instants so a wrapped ring still renders.
    uint64_t PendingBegin = 0, PendingGc = 0;
    bool HavePendingBegin = false, HavePendingGc = false;
    for (const TraceEvent &E : Events) {
      double TsUs = R.Clock.toMicroseconds(E.Tsc, TicksPerUs);
      switch (static_cast<EventKind>(E.Kind)) {
      case EventKind::TxBegin:
        PendingBegin = E.Tsc;
        HavePendingBegin = true;
        break;
      case EventKind::TxCommit:
      case EventKind::TxAbort: {
        bool IsAbort = E.Kind == static_cast<uint16_t>(EventKind::TxAbort);
        std::string Args = IsAbort ? std::string("\"outcome\":\"abort\","
                                                 "\"cause\":\"") +
                                         abortCauseName(E.Aux) + "\""
                                   : std::string("\"outcome\":\"commit\"");
        if (E.Aux & AuxWordStm)
          Args += ",\"stm\":\"word\"";
        if (HavePendingBegin) {
          double BeginUs = R.Clock.toMicroseconds(PendingBegin, TicksPerUs);
          appendEvent(Out, First, eventName(E.Kind), "X", BeginUs,
                      std::max(TsUs - BeginUs, 0.001), Tid, Args);
        } else {
          appendEvent(Out, First, eventName(E.Kind), "i", TsUs, -1, Tid,
                      Args);
        }
        HavePendingBegin = false;
        break;
      }
      case EventKind::OpenForRead:
      case EventKind::OpenForUpdate:
        appendEvent(Out, First, eventName(E.Kind), "i", TsUs, -1, Tid,
                    addrArg(E.Addr));
        break;
      case EventKind::GcBegin:
        PendingGc = E.Tsc;
        HavePendingGc = true;
        break;
      case EventKind::GcEnd:
        if (HavePendingGc) {
          double BeginUs = R.Clock.toMicroseconds(PendingGc, TicksPerUs);
          appendEvent(Out, First, "gc", "X", BeginUs,
                      std::max(TsUs - BeginUs, 0.001), Tid, "");
        }
        HavePendingGc = false;
        break;
      case EventKind::SerialEnter:
      case EventKind::SerialExit:
        appendEvent(Out, First, eventName(E.Kind), "i", TsUs, -1, Tid,
                    E.Kind == static_cast<uint16_t>(EventKind::SerialEnter)
                        ? "\"phase\":\"enter\""
                        : "\"phase\":\"exit\"");
        break;
      }
    }
  }
  Out += "\n],\"displayTimeUnit\":\"ns\"}\n";
  return Out;
}

bool TraceRing::writeChromeTrace(const std::string &Path) {
  if (!enabled())
    return true;
  bool AnyEvents = false;
  for (TraceRing *Ring : allRings())
    AnyEvents |= Ring->recorded() != 0;
  if (!AnyEvents)
    return true;
  std::string Json = chromeTraceJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);
  std::fprintf(stderr, "otm: wrote trace to %s (%zu bytes)\n", Path.c_str(),
               Json.size());
  return true;
}
