//===- obs/StatsReporter.cpp - Machine-readable stats documents ------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "obs/StatsReporter.h"

#include <cstdio>
#include <cstdlib>

using namespace otm;
using namespace otm::obs;

StatsReporter::StatsReporter(std::string BenchName)
    : BenchName(std::move(BenchName)) {}

void StatsReporter::addRun(JsonValue Run) { Runs.push(std::move(Run)); }

void StatsReporter::addSection(const std::string &Key, JsonValue V) {
  Sections.set(Key, std::move(V));
}

JsonValue StatsReporter::document() const {
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", "otm-bench-stats-v1");
  Doc.set("bench", BenchName);
  Doc.set("runs", Runs);
  for (const auto &KV : Sections.members())
    Doc.set(KV.first, KV.second);
  return Doc;
}

std::string StatsReporter::toJson(unsigned Indent) const {
  return document().dump(Indent);
}

bool StatsReporter::writeFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Json = toJson();
  Json += '\n';
  bool Ok = std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
  Ok &= std::fclose(F) == 0;
  return Ok;
}

std::string StatsReporter::outputPath(const std::string &FileName) {
  if (const char *Dir = std::getenv("OTM_BENCH_JSON_DIR"))
    if (Dir[0])
      return std::string(Dir) + "/" + FileName;
  return FileName;
}
