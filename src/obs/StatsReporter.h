//===- obs/StatsReporter.h - Machine-readable stats documents --*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assembles one JSON document per benchmark run: identity (bench name,
/// schema version), a "runs" array of per-configuration measurements, and
/// arbitrary named sections (STM counter snapshots, histograms, abort
/// attribution, pass statistics) contributed by the layers that own the
/// data. The obs library stays dependency-free: callers convert their own
/// structs to JsonValue (see stm/StatsJson.h) and hand them over.
///
/// The perf-trajectory harness consumes these files, so the layout is
/// stable: {schema, bench, runs: [...], <sections>...}.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_OBS_STATSREPORTER_H
#define OTM_OBS_STATSREPORTER_H

#include "obs/Json.h"

#include <string>

namespace otm {
namespace obs {

class StatsReporter {
public:
  explicit StatsReporter(std::string BenchName);

  /// Appends one measurement row (an object; callers fill label/metrics).
  void addRun(JsonValue Run);

  /// Sets a named top-level section, replacing any previous value.
  void addSection(const std::string &Key, JsonValue V);

  /// The assembled document.
  JsonValue document() const;

  std::string toJson(unsigned Indent = 2) const;

  /// Writes toJson() to \p Path (stdio; returns false on failure).
  bool writeFile(const std::string &Path) const;

  /// Resolves where bench JSON lands: $OTM_BENCH_JSON_DIR/<FileName> when
  /// the variable is set, else <FileName> in the working directory.
  static std::string outputPath(const std::string &FileName);

private:
  std::string BenchName;
  JsonValue Runs = JsonValue::array();
  JsonValue Sections = JsonValue::object();
};

} // namespace obs
} // namespace otm

#endif // OTM_OBS_STATSREPORTER_H
