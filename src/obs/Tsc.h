//===- obs/Tsc.h - Cycle-counter timestamps for tracing --------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A raw hardware timestamp source for the observability layer. Trace
/// events and latency histograms record unconverted ticks (reading the TSC
/// is a handful of cycles; converting is not); TscClock calibrates
/// ticks-per-microsecond lazily, at export time, against steady_clock.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_OBS_TSC_H
#define OTM_OBS_TSC_H

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace otm {
namespace obs {

/// Reads the hardware timestamp counter (or a steady_clock fallback).
/// Monotonic per-core and, on every machine this project targets
/// (invariant-TSC x86, generic-timer AArch64), across cores too.
inline uint64_t readTsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t V;
  asm volatile("mrs %0, cntvct_el0" : "=r"(V));
  return V;
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Converts raw tick values to microseconds by pairing (tsc, steady_clock)
/// samples: one at construction, one per conversion request. The longer
/// the program has run, the better the estimate; for the sub-second runs
/// of the smoke tests it is still good to a few percent.
class TscClock {
public:
  TscClock()
      : BaseTsc(readTsc()), BaseTime(std::chrono::steady_clock::now()) {}

  /// Ticks elapsed per microsecond, measured against steady_clock.
  double ticksPerMicrosecond() const {
    uint64_t NowTsc = readTsc();
    auto NowTime = std::chrono::steady_clock::now();
    double Us =
        std::chrono::duration<double, std::micro>(NowTime - BaseTime).count();
    if (Us <= 0 || NowTsc <= BaseTsc)
      return 1.0;
    return static_cast<double>(NowTsc - BaseTsc) / Us;
  }

  /// Microseconds from this clock's epoch to tick value \p Tsc.
  double toMicroseconds(uint64_t Tsc, double TicksPerUs) const {
    return (static_cast<double>(Tsc) - static_cast<double>(BaseTsc)) /
           TicksPerUs;
  }

  uint64_t baseTsc() const { return BaseTsc; }

private:
  uint64_t BaseTsc;
  std::chrono::steady_clock::time_point BaseTime;
};

} // namespace obs
} // namespace otm

#endif // OTM_OBS_TSC_H
