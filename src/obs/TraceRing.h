//===- obs/TraceRing.h - Lock-free per-thread event tracing ----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded lock-free ring buffer of transaction events. Each thread that
/// runs transactions acquires its own ring (so the hot path never shares a
/// cache line with another writer); the export walks every registered ring
/// and emits Chrome `trace_event` JSON that chrome://tracing or Perfetto
/// loads directly.
///
/// Tracing is off unless the process starts with OTM_TRACE=1. When off,
/// forCurrentThread() returns nullptr and the instrumentation sites reduce
/// to one well-predicted null check (and compile away entirely with
/// -DOTM_OBS_ENABLE=0).
///
//===----------------------------------------------------------------------===//

#ifndef OTM_OBS_TRACERING_H
#define OTM_OBS_TRACERING_H

#include "obs/Tsc.h"
#include "support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#ifndef OTM_OBS_ENABLE
#define OTM_OBS_ENABLE 1
#endif

namespace otm {
namespace obs {

enum class EventKind : uint16_t {
  TxBegin = 0,
  TxCommit = 1,
  TxAbort = 2, ///< Aux carries the abort cause (AuxCause*)
  OpenForRead = 3,
  OpenForUpdate = 4,
  GcBegin = 5,
  GcEnd = 6,
  SerialEnter = 7, ///< transaction escalated to serial-irrevocable mode
  SerialExit = 8,  ///< serial-irrevocable transaction finished
};

/// Aux payload values for TxAbort events. The two Snapshot* causes are
/// *restarts*, not aborts: a read-only attempt re-running as a writer
/// (upgrade) or on a newer snapshot stamp (refresh). They never undo
/// in-place state and are excluded from the Aborts counter.
inline constexpr uint16_t AuxCauseConflict = 0;
inline constexpr uint16_t AuxCauseValidation = 1;
inline constexpr uint16_t AuxCauseUser = 2;
inline constexpr uint16_t AuxCauseSnapshotUpgrade = 3;
inline constexpr uint16_t AuxCauseSnapshotRefresh = 4;

/// Aux payload bit marking the word-STM (vs the object STM) on tx events.
inline constexpr uint16_t AuxWordStm = 1u << 8;

struct TraceEvent {
  uint64_t Tsc = 0;
  uintptr_t Addr = 0;
  uint16_t Kind = 0;
  uint16_t Aux = 0;
};

class TraceRing {
public:
  /// True iff the process was started with OTM_TRACE=1 (parsed once).
  static bool enabled();

  /// The calling thread's ring, or nullptr when tracing is disabled.
  /// Rings are registered globally and intentionally leaked, mirroring the
  /// TxManager lifetime rules.
  static TraceRing *forCurrentThread();

  /// Renders every registered ring as Chrome trace_event JSON.
  static std::string chromeTraceJson();

  /// Writes chromeTraceJson() to \p Path; returns false on I/O failure.
  /// No-op (returns true) when tracing is disabled or no events exist.
  static bool writeChromeTrace(const std::string &Path);

  explicit TraceRing(uint32_t ThreadOrd, std::size_t CapacityPow2);

  void record(EventKind K, const void *Addr, uint16_t Aux) {
    uint64_t I = Head.fetch_add(1, std::memory_order_relaxed);
    TraceEvent &E = Slots[I & Mask];
    E.Tsc = readTsc();
    E.Addr = reinterpret_cast<uintptr_t>(Addr);
    E.Kind = static_cast<uint16_t>(K);
    E.Aux = Aux;
  }

  std::size_t capacity() const { return Mask + 1; }
  uint32_t threadOrdinal() const { return ThreadOrd; }

  /// Total events ever recorded (>= capacity() means the ring wrapped).
  uint64_t recorded() const { return Head.load(std::memory_order_acquire); }

  /// Copies the surviving events, oldest first. With concurrent writers a
  /// slot being overwritten mid-copy can surface torn, but each returned
  /// slot was written by exactly one record() call once writers quiesce —
  /// exports happen after the measured region.
  std::vector<TraceEvent> snapshot() const;

  /// Registered rings, for export and tests.
  static std::vector<TraceRing *> allRings();

  /// Creates and registers a ring detached from the thread-local lookup
  /// (test hook; the returned ring is owned by the registry and leaked).
  static TraceRing *createDetached(std::size_t CapacityPow2);

private:
  std::vector<TraceEvent> Slots;
  std::size_t Mask;
  uint32_t ThreadOrd;
  std::atomic<uint64_t> Head{0};
};

#if OTM_OBS_ENABLE
#define OTM_TRACE_EVENT(RingPtr, Kind, Addr, Aux)                              \
  do {                                                                         \
    if (OTM_UNLIKELY((RingPtr) != nullptr))                                    \
      (RingPtr)->record((Kind), (Addr), (Aux));                                \
  } while (0)
#else
#define OTM_TRACE_EVENT(RingPtr, Kind, Addr, Aux)                              \
  do {                                                                         \
  } while (0)
#endif

/// Per-access (OpenForRead/OpenForUpdate) instants are a compile-time opt-in
/// (-DOTM_OBS_TRACE_OPENS=1): even the disabled-path null check is one extra
/// predicted branch per barrier, which is measurable (E0: ~6-11%) inside a
/// read barrier that is itself only a few cycles. Transaction lifecycle
/// events (begin/commit/abort, GC) keep the cheap runtime gate — their cost
/// amortizes over the whole transaction (<2% on E0's BM_ReadOnlyTx).
#ifndef OTM_OBS_TRACE_OPENS
#define OTM_OBS_TRACE_OPENS 0
#endif

#if OTM_OBS_ENABLE && OTM_OBS_TRACE_OPENS
#define OTM_TRACE_OPEN_EVENT(RingPtr, Kind, Addr, Aux)                         \
  OTM_TRACE_EVENT(RingPtr, Kind, Addr, Aux)
#else
#define OTM_TRACE_OPEN_EVENT(RingPtr, Kind, Addr, Aux)                         \
  do {                                                                         \
  } while (0)
#endif

} // namespace obs
} // namespace otm

#endif // OTM_OBS_TRACERING_H
