//===- tmir/AtomicRegions.h - Transaction region membership ----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes, for every instruction position, whether it executes inside an
/// atomic region (between AtomicBegin and AtomicEnd), by forward dataflow
/// over the CFG. Functions must be *consistent*: every join point is
/// reached with a single in-atomic state and regions do not nest textually
/// (dynamic nesting happens through calls and is flattened by the runtime).
///
/// Barrier passes use this to restrict their transforms to transactional
/// code, and the tx-cloning pass uses it to find call sites that need the
/// transactional clone of their callee.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TMIR_ATOMICREGIONS_H
#define OTM_TMIR_ATOMICREGIONS_H

#include "tmir/IR.h"

#include <string>
#include <vector>

namespace otm {
namespace tmir {

class AtomicRegions {
public:
  /// Analyzes \p F; check valid() before using the queries.
  explicit AtomicRegions(const Function &F);

  bool valid() const { return Error.empty(); }
  const std::string &error() const { return Error; }

  /// True if block \p BlockId begins while inside an atomic region.
  bool inAtomicAtEntry(int BlockId) const { return EntryState[BlockId] == 1; }

  /// True if instruction \p InstrIdx of \p BlockId executes transactionally
  /// (AtomicBegin itself counts as inside; AtomicEnd as inside).
  bool inAtomic(int BlockId, std::size_t InstrIdx) const;

  /// True if the whole function body is inside atomic regions wherever it
  /// has any transactional instruction at all.
  bool hasAtomic() const { return AnyAtomic; }

private:
  const Function &F;
  std::vector<int8_t> EntryState; ///< -1 unknown, 0 outside, 1 inside
  bool AnyAtomic = false;
  std::string Error;
};

} // namespace tmir
} // namespace otm

#endif // OTM_TMIR_ATOMICREGIONS_H
