//===- tmir/Liveness.h - Register & local liveness -------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Backward liveness over a TMIR function's virtual registers and local
/// slots. A slot is *live* at a program point when some path from that
/// point reads it before writing it.
///
/// The interpreter's decoder uses this to narrow atomic-region snapshots:
/// when an `atomic_begin` re-executes after an abort, only the registers
/// and locals live at that point can ever be read again before being
/// redefined, so only those need to be saved and restored. Everything else
/// — including heap state, which the STM's undo log rolls back — is out of
/// scope here.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TMIR_LIVENESS_H
#define OTM_TMIR_LIVENESS_H

#include "tmir/IR.h"

#include <cstdint>
#include <vector>

namespace otm {
namespace tmir {

/// A fixed-capacity bitset over slot indices (registers or locals).
class LiveSet {
public:
  LiveSet() = default;
  explicit LiveSet(std::size_t Bits) : Words((Bits + 63) / 64, 0) {}

  void set(std::size_t I) { Words[I / 64] |= uint64_t(1) << (I % 64); }
  void clear(std::size_t I) { Words[I / 64] &= ~(uint64_t(1) << (I % 64)); }
  bool test(std::size_t I) const {
    return (Words[I / 64] >> (I % 64)) & 1;
  }

  /// Union-into; returns true when this set grew.
  bool unionWith(const LiveSet &O) {
    bool Grew = false;
    for (std::size_t W = 0; W < Words.size(); ++W) {
      uint64_t New = Words[W] | O.Words[W];
      Grew |= New != Words[W];
      Words[W] = New;
    }
    return Grew;
  }

  bool operator==(const LiveSet &O) const { return Words == O.Words; }

private:
  std::vector<uint64_t> Words;
};

/// Per-block live-in/live-out sets for registers and locals.
struct LivenessInfo {
  std::vector<LiveSet> RegIn, RegOut;
  std::vector<LiveSet> LocalIn, LocalOut;
};

/// Runs the backward fixpoint over \p F's CFG.
LivenessInfo computeLiveness(const Function &F);

/// The registers/locals live immediately *before* instruction
/// (\p Block, \p InstrIdx) — i.e. the state a restart at that instruction
/// may still read. Derived from \p LI by walking block \p Block backwards.
void liveBeforeInstr(const Function &F, const LivenessInfo &LI, int Block,
                     std::size_t InstrIdx, LiveSet &Regs, LiveSet &Locals);

} // namespace tmir
} // namespace otm

#endif // OTM_TMIR_LIVENESS_H
