//===- tmir/IR.cpp - TMIR core implementation ----------------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tmir/IR.h"

#include "support/Compiler.h"

#include <sstream>

using namespace otm;
using namespace otm::tmir;

const char *tmir::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::Mov:
    return "mov";
  case Opcode::Add:
    return "add";
  case Opcode::Sub:
    return "sub";
  case Opcode::Mul:
    return "mul";
  case Opcode::Div:
    return "div";
  case Opcode::Rem:
    return "rem";
  case Opcode::And:
    return "and";
  case Opcode::Or:
    return "or";
  case Opcode::Xor:
    return "xor";
  case Opcode::Shl:
    return "shl";
  case Opcode::Shr:
    return "shr";
  case Opcode::CmpEq:
    return "cmpeq";
  case Opcode::CmpNe:
    return "cmpne";
  case Opcode::CmpLt:
    return "cmplt";
  case Opcode::CmpLe:
    return "cmple";
  case Opcode::CmpGt:
    return "cmpgt";
  case Opcode::CmpGe:
    return "cmpge";
  case Opcode::LoadLocal:
    return "loadlocal";
  case Opcode::StoreLocal:
    return "storelocal";
  case Opcode::NewObj:
    return "newobj";
  case Opcode::GetField:
    return "getfield";
  case Opcode::SetField:
    return "setfield";
  case Opcode::NewArr:
    return "newarr";
  case Opcode::ArrLen:
    return "arrlen";
  case Opcode::ArrGet:
    return "arrget";
  case Opcode::ArrSet:
    return "arrset";
  case Opcode::Call:
    return "call";
  case Opcode::Print:
    return "print";
  case Opcode::AtomicBegin:
    return "atomic_begin";
  case Opcode::AtomicEnd:
    return "atomic_end";
  case Opcode::OpenForRead:
    return "open_read";
  case Opcode::OpenForUpdate:
    return "open_update";
  case Opcode::LogUndoField:
    return "log_undo_field";
  case Opcode::LogUndoElem:
    return "log_undo_elem";
  case Opcode::Br:
    return "br";
  case Opcode::CondBr:
    return "condbr";
  case Opcode::Ret:
    return "ret";
  }
  OTM_UNREACHABLE("unknown opcode");
}

bool tmir::isTerminator(Opcode Op) {
  return Op == Opcode::Br || Op == Opcode::CondBr || Op == Opcode::Ret;
}

bool tmir::isBarrier(Opcode Op) {
  return Op == Opcode::OpenForRead || Op == Opcode::OpenForUpdate ||
         Op == Opcode::LogUndoField || Op == Opcode::LogUndoElem;
}

bool tmir::isBinaryArith(Opcode Op) {
  switch (Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
    return true;
  default:
    return false;
  }
}

bool tmir::isCompare(Opcode Op) {
  switch (Op) {
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
    return true;
  default:
    return false;
  }
}

std::vector<std::vector<int>> Function::computePredecessors() const {
  std::vector<std::vector<int>> Preds(Blocks.size());
  for (const std::unique_ptr<BasicBlock> &BB : Blocks)
    for (int Succ : BB->successors())
      Preds[Succ].push_back(BB->Id);
  return Preds;
}

//===----------------------------------------------------------------------===
// Printing
//===----------------------------------------------------------------------===

namespace {

std::string typeName(const Module &M, const Type &Ty) {
  switch (Ty.kind()) {
  case TypeKind::Void:
    return "void";
  case TypeKind::I64:
    return "i64";
  case TypeKind::I1:
    return "i1";
  case TypeKind::Arr:
    return "arr";
  case TypeKind::Obj:
    return M.Classes[Ty.classId()].Name;
  }
  OTM_UNREACHABLE("unknown type kind");
}

std::string valueText(const Function &F, const Value &V) {
  switch (V.kind()) {
  case Value::Kind::Reg:
    return "%" + F.RegNames[V.regId()];
  case Value::Kind::Imm:
    return std::to_string(V.immValue());
  case Value::Kind::Null:
    return "null";
  case Value::Kind::None:
    return "<none>";
  }
  OTM_UNREACHABLE("unknown value kind");
}

std::string fieldRef(const Module &M, const Instr &I) {
  const ClassDecl &C = M.Classes[I.ClassId];
  return C.Name + "." + C.Fields[I.FieldIdx].Name;
}

} // namespace

std::string tmir::printInstr(const Module &M, const Function &F,
                             const Instr &I) {
  std::ostringstream OS;
  if (I.ResultReg >= 0)
    OS << "%" << F.RegNames[I.ResultReg] << " = ";
  OS << opcodeName(I.Op);

  auto Operand = [&](std::size_t Idx) { return valueText(F, I.Operands[Idx]); };

  switch (I.Op) {
  case Opcode::Mov:
  case Opcode::Print:
  case Opcode::OpenForRead:
  case Opcode::OpenForUpdate:
  case Opcode::NewArr:
  case Opcode::ArrLen:
    OS << " " << Operand(0);
    break;
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::Mul:
  case Opcode::Div:
  case Opcode::Rem:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Xor:
  case Opcode::Shl:
  case Opcode::Shr:
  case Opcode::CmpEq:
  case Opcode::CmpNe:
  case Opcode::CmpLt:
  case Opcode::CmpLe:
  case Opcode::CmpGt:
  case Opcode::CmpGe:
  case Opcode::ArrGet:
  case Opcode::LogUndoElem:
    OS << " " << Operand(0) << ", " << Operand(1);
    break;
  case Opcode::LoadLocal:
    OS << " " << F.Locals[I.LocalIdx].Name;
    break;
  case Opcode::StoreLocal:
    OS << " " << F.Locals[I.LocalIdx].Name << ", " << Operand(0);
    break;
  case Opcode::NewObj:
    OS << " " << M.Classes[I.ClassId].Name;
    break;
  case Opcode::GetField:
    OS << " " << Operand(0) << ", " << fieldRef(M, I);
    break;
  case Opcode::SetField:
    OS << " " << Operand(0) << ", " << fieldRef(M, I) << ", " << Operand(1);
    break;
  case Opcode::LogUndoField:
    OS << " " << Operand(0) << ", " << fieldRef(M, I);
    break;
  case Opcode::ArrSet:
    OS << " " << Operand(0) << ", " << Operand(1) << ", " << Operand(2);
    break;
  case Opcode::Call: {
    OS << " " << M.Functions[I.CalleeIdx]->Name << "(";
    for (std::size_t Idx = 0; Idx < I.Operands.size(); ++Idx) {
      if (Idx)
        OS << ", ";
      OS << Operand(Idx);
    }
    OS << ")";
    break;
  }
  case Opcode::AtomicBegin:
  case Opcode::AtomicEnd:
    break;
  case Opcode::Br:
    OS << " " << F.Blocks[I.TargetA]->Name;
    break;
  case Opcode::CondBr:
    OS << " " << Operand(0) << ", " << F.Blocks[I.TargetA]->Name << ", "
       << F.Blocks[I.TargetB]->Name;
    break;
  case Opcode::Ret:
    if (!I.Operands.empty())
      OS << " " << Operand(0);
    break;
  }
  return OS.str();
}

std::string tmir::printFunction(const Module &M, const Function &F) {
  std::ostringstream OS;
  OS << (F.IsAllAtomic ? "txfunc " : "func ") << F.Name << "(";
  for (unsigned I = 0; I < F.NumParams; ++I) {
    if (I)
      OS << ", ";
    OS << F.Locals[I].Name << ": " << typeName(M, F.Locals[I].Ty);
  }
  OS << ")";
  if (!F.ReturnTy.isVoid())
    OS << ": " << typeName(M, F.ReturnTy);
  OS << " {\n";
  for (std::size_t I = F.NumParams; I < F.Locals.size(); ++I)
    OS << "  var " << F.Locals[I].Name << ": " << typeName(M, F.Locals[I].Ty)
       << "\n";
  for (const std::unique_ptr<BasicBlock> &BB : F.Blocks) {
    OS << BB->Name << ":\n";
    for (const Instr &I : BB->Instrs)
      OS << "  " << printInstr(M, F, I) << "\n";
  }
  OS << "}\n";
  return OS.str();
}

std::string tmir::printModule(const Module &M) {
  std::ostringstream OS;
  for (const ClassDecl &C : M.Classes) {
    OS << "class " << C.Name << " {";
    for (std::size_t I = 0; I < C.Fields.size(); ++I) {
      if (I)
        OS << ",";
      OS << " " << C.Fields[I].Name << ": " << typeName(M, C.Fields[I].Ty);
    }
    OS << " }\n\n";
  }
  for (const std::unique_ptr<Function> &F : M.Functions)
    OS << printFunction(M, *F) << "\n";
  return OS.str();
}
