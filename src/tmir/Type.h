//===- tmir/Type.h - TMIR type system ---------------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Types of the transactional IR: 64-bit integers, booleans, references to
/// declared classes, and arrays of i64. Object references are what the STM
/// barriers operate on; the type checker guarantees barriers only ever see
/// reference-typed operands.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TMIR_TYPE_H
#define OTM_TMIR_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace otm {
namespace tmir {

enum class TypeKind : uint8_t {
  Void,
  I64,
  I1,
  Obj, ///< reference to an instance of ClassId
  Arr, ///< reference to an i64 array
};

/// A TMIR type; Obj types carry the index of their class in the Module.
class Type {
public:
  Type() : Kind(TypeKind::Void), ClassId(-1) {}

  static Type makeVoid() { return Type(TypeKind::Void, -1); }
  static Type makeI64() { return Type(TypeKind::I64, -1); }
  static Type makeI1() { return Type(TypeKind::I1, -1); }
  static Type makeArr() { return Type(TypeKind::Arr, -1); }
  static Type makeObj(int ClassId) {
    assert(ClassId >= 0 && "object type needs a class");
    return Type(TypeKind::Obj, ClassId);
  }

  TypeKind kind() const { return Kind; }
  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isI64() const { return Kind == TypeKind::I64; }
  bool isI1() const { return Kind == TypeKind::I1; }
  bool isArr() const { return Kind == TypeKind::Arr; }
  bool isObj() const { return Kind == TypeKind::Obj; }
  /// True for types the STM must track (anything holding a reference).
  bool isRef() const { return isObj() || isArr(); }

  int classId() const {
    assert(isObj() && "classId on non-object type");
    return ClassId;
  }

  bool operator==(const Type &O) const {
    return Kind == O.Kind && (Kind != TypeKind::Obj || ClassId == O.ClassId);
  }
  bool operator!=(const Type &O) const { return !(*this == O); }

  /// Reference compatibility: null (typed as Obj with ClassId -1 is not
  /// representable; the checker treats null as compatible with any ref).
  bool acceptsNullOr(const Type &O) const {
    return *this == O || (isRef() && O.isRef() && O.ClassId == -2);
  }

private:
  Type(TypeKind Kind, int ClassId) : Kind(Kind), ClassId(ClassId) {}

  TypeKind Kind;
  int ClassId;
};

} // namespace tmir
} // namespace otm

#endif // OTM_TMIR_TYPE_H
