//===- tmir/Liveness.cpp - Register & local liveness ----------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tmir/Liveness.h"

using namespace otm;
using namespace otm::tmir;

namespace {

/// Applies one instruction's transfer function in reverse:
/// kill the definition, then gen the uses.
void transferBackward(const Instr &I, LiveSet &Regs, LiveSet &Locals) {
  if (I.ResultReg >= 0)
    Regs.clear(static_cast<std::size_t>(I.ResultReg));
  if (I.Op == Opcode::StoreLocal)
    Locals.clear(static_cast<std::size_t>(I.LocalIdx));
  for (const Value &V : I.Operands)
    if (V.isReg())
      Regs.set(static_cast<std::size_t>(V.regId()));
  if (I.Op == Opcode::LoadLocal)
    Locals.set(static_cast<std::size_t>(I.LocalIdx));
}

} // namespace

LivenessInfo tmir::computeLiveness(const Function &F) {
  std::size_t N = F.Blocks.size();
  std::size_t NumRegs = static_cast<std::size_t>(F.numRegs());
  std::size_t NumLocals = F.Locals.size();

  LivenessInfo LI;
  LI.RegIn.assign(N, LiveSet(NumRegs));
  LI.RegOut.assign(N, LiveSet(NumRegs));
  LI.LocalIn.assign(N, LiveSet(NumLocals));
  LI.LocalOut.assign(N, LiveSet(NumLocals));

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (std::size_t BI = N; BI > 0; --BI) {
      std::size_t B = BI - 1;
      // OUT = union of successor INs (may-analysis).
      LiveSet RegOut(NumRegs), LocalOut(NumLocals);
      for (int S : F.Blocks[B]->successors()) {
        RegOut.unionWith(LI.RegIn[S]);
        LocalOut.unionWith(LI.LocalIn[S]);
      }
      LiveSet Regs = RegOut, Locals = LocalOut;
      const std::vector<Instr> &Instrs = F.Blocks[B]->Instrs;
      for (std::size_t I = Instrs.size(); I > 0; --I)
        transferBackward(Instrs[I - 1], Regs, Locals);
      if (!(RegOut == LI.RegOut[B]) || !(LocalOut == LI.LocalOut[B]) ||
          !(Regs == LI.RegIn[B]) || !(Locals == LI.LocalIn[B])) {
        LI.RegOut[B] = std::move(RegOut);
        LI.LocalOut[B] = std::move(LocalOut);
        LI.RegIn[B] = std::move(Regs);
        LI.LocalIn[B] = std::move(Locals);
        Changed = true;
      }
    }
  }
  return LI;
}

void tmir::liveBeforeInstr(const Function &F, const LivenessInfo &LI,
                           int Block, std::size_t InstrIdx, LiveSet &Regs,
                           LiveSet &Locals) {
  Regs = LI.RegOut[Block];
  Locals = LI.LocalOut[Block];
  const std::vector<Instr> &Instrs = F.Blocks[Block]->Instrs;
  for (std::size_t I = Instrs.size(); I > InstrIdx; --I)
    transferBackward(Instrs[I - 1], Regs, Locals);
}
