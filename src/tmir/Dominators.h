//===- tmir/Dominators.h - Dominator tree for TMIR CFGs --------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator tree (Cooper–Harvey–Kennedy iterative algorithm) over a TMIR
/// function's CFG. The barrier optimizations are dominance-based: an open
/// is redundant exactly when an equal-or-stronger open of the same
/// reference *dominates* it within the same transaction.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TMIR_DOMINATORS_H
#define OTM_TMIR_DOMINATORS_H

#include "tmir/IR.h"

#include <vector>

namespace otm {
namespace tmir {

class DominatorTree {
public:
  /// Builds the tree for \p F. Unreachable blocks get Idom -1 and are
  /// reported dominated by nothing (and dominating nothing but themselves).
  explicit DominatorTree(const Function &F);

  /// Immediate dominator block id, or -1 (entry / unreachable).
  int idom(int BlockId) const { return Idom[BlockId]; }

  /// True if block \p A dominates block \p B (reflexive).
  bool dominates(int A, int B) const;

  bool isReachable(int BlockId) const {
    return BlockId == EntryId || Idom[BlockId] >= 0;
  }

  /// Blocks in reverse postorder (reachable only).
  const std::vector<int> &reversePostOrder() const { return Rpo; }

private:
  int EntryId = 0;
  std::vector<int> Idom;
  std::vector<int> RpoIndex; ///< position of each block in Rpo, -1 if unreachable
  std::vector<int> Rpo;
};

} // namespace tmir
} // namespace otm

#endif // OTM_TMIR_DOMINATORS_H
