//===- tmir/IR.h - Transactional IR core classes ----------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Core in-memory representation of TMIR, the transactional IR this
/// project's compiler optimizes. The design follows the paper's key move:
/// an `atomic` block is *decomposed* in the IR into explicit, first-class
/// operations — AtomicBegin/AtomicEnd delimiting the region and
/// OpenForRead / OpenForUpdate / LogUndoField / LogUndoElem barriers next
/// to the accesses — so that ordinary dataflow optimizations can remove,
/// strengthen and hoist them (see src/passes).
///
/// The IR is register-based but not SSA: virtual registers are assigned by
/// exactly one static instruction, while mutable storage lives in named
/// local slots accessed by LoadLocal/StoreLocal (the "alloca" style).
/// Branch-heavy value flow goes through locals; the LocalCSE pass recovers
/// most of the redundancy this leaves.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TMIR_IR_H
#define OTM_TMIR_IR_H

#include "tmir/Type.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace otm {
namespace tmir {

//===----------------------------------------------------------------------===
// Opcodes
//===----------------------------------------------------------------------===

enum class Opcode : uint8_t {
  // Value operations
  Mov,
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  CmpEq,
  CmpNe,
  CmpLt,
  CmpLe,
  CmpGt,
  CmpGe,
  // Local slots
  LoadLocal,
  StoreLocal,
  // Heap
  NewObj,
  GetField,
  SetField,
  NewArr,
  ArrLen,
  ArrGet,
  ArrSet,
  // Calls & I/O
  Call,
  Print,
  // Transactions (region markers + decomposed barriers)
  AtomicBegin,
  AtomicEnd,
  OpenForRead,
  OpenForUpdate,
  LogUndoField,
  LogUndoElem,
  // Terminators
  Br,
  CondBr,
  Ret,
};

const char *opcodeName(Opcode Op);
bool isTerminator(Opcode Op);
bool isBarrier(Opcode Op); ///< OpenForRead/OpenForUpdate/LogUndo*
bool isBinaryArith(Opcode Op);
bool isCompare(Opcode Op);

//===----------------------------------------------------------------------===
// Operands
//===----------------------------------------------------------------------===

/// An instruction operand: a virtual register, an i64/i1 immediate, or the
/// null reference constant.
class Value {
public:
  enum class Kind : uint8_t { None, Reg, Imm, Null };

  Value() : K(Kind::None), Bits(0) {}
  static Value reg(int RegId) { return Value(Kind::Reg, RegId); }
  static Value imm(int64_t V) { return Value(Kind::Imm, V); }
  static Value null() { return Value(Kind::Null, 0); }

  Kind kind() const { return K; }
  bool isReg() const { return K == Kind::Reg; }
  bool isImm() const { return K == Kind::Imm; }
  bool isNull() const { return K == Kind::Null; }
  bool isNone() const { return K == Kind::None; }

  int regId() const {
    assert(isReg() && "not a register operand");
    return static_cast<int>(Bits);
  }
  int64_t immValue() const {
    assert(isImm() && "not an immediate operand");
    return Bits;
  }

  bool operator==(const Value &O) const { return K == O.K && Bits == O.Bits; }
  bool operator!=(const Value &O) const { return !(*this == O); }

private:
  Value(Kind K, int64_t Bits) : K(K), Bits(Bits) {}

  Kind K;
  int64_t Bits;
};

//===----------------------------------------------------------------------===
// Instruction
//===----------------------------------------------------------------------===

/// One TMIR instruction. A plain struct: passes freely rewrite instruction
/// lists. Fields not meaningful for an opcode stay at their defaults.
struct Instr {
  Opcode Op = Opcode::Mov;
  int ResultReg = -1;          ///< defined register, or -1
  std::vector<Value> Operands; ///< operand list (see opcode docs)
  int ClassId = -1;            ///< NewObj/GetField/SetField/LogUndoField
  int FieldIdx = -1;           ///< GetField/SetField/LogUndoField
  int LocalIdx = -1;           ///< LoadLocal/StoreLocal
  int CalleeIdx = -1;          ///< Call: function index in the module
  int TargetA = -1;            ///< Br: target; CondBr: true target
  int TargetB = -1;            ///< CondBr: false target

  static Instr make(Opcode Op) {
    Instr I;
    I.Op = Op;
    return I;
  }

  bool defines(int RegId) const {
    return ResultReg >= 0 && ResultReg == RegId;
  }

  bool uses(int RegId) const {
    for (const Value &V : Operands)
      if (V.isReg() && V.regId() == RegId)
        return true;
    return false;
  }
};

//===----------------------------------------------------------------------===
// BasicBlock
//===----------------------------------------------------------------------===

class BasicBlock {
public:
  explicit BasicBlock(std::string Name, int Id) : Name(std::move(Name)), Id(Id) {}

  std::string Name;
  int Id; ///< index within the parent function
  std::vector<Instr> Instrs;

  /// The block's terminator; asserts the block is well-formed.
  const Instr &terminator() const {
    assert(!Instrs.empty() && isTerminator(Instrs.back().Op) &&
           "block has no terminator");
    return Instrs.back();
  }

  bool hasTerminator() const {
    return !Instrs.empty() && isTerminator(Instrs.back().Op);
  }

  /// Successor block ids (0, 1 or 2 entries).
  std::vector<int> successors() const {
    if (!hasTerminator())
      return {};
    const Instr &T = terminator();
    switch (T.Op) {
    case Opcode::Br:
      return {T.TargetA};
    case Opcode::CondBr:
      return {T.TargetA, T.TargetB};
    default:
      return {};
    }
  }
};

//===----------------------------------------------------------------------===
// Declarations
//===----------------------------------------------------------------------===

struct FieldDecl {
  std::string Name;
  Type Ty;
};

struct ClassDecl {
  std::string Name;
  std::vector<FieldDecl> Fields;

  /// Returns the field index or -1.
  int fieldIndex(const std::string &FieldName) const {
    for (std::size_t I = 0; I < Fields.size(); ++I)
      if (Fields[I].Name == FieldName)
        return static_cast<int>(I);
    return -1;
  }
};

struct LocalDecl {
  std::string Name;
  Type Ty;
};

//===----------------------------------------------------------------------===
// Function
//===----------------------------------------------------------------------===

class Function {
public:
  Function(std::string Name, int Id) : Name(std::move(Name)), Id(Id) {}

  std::string Name;
  int Id;
  Type ReturnTy = Type::makeVoid();
  /// True for transactional clones (name$tx): the whole body executes
  /// inside the caller's transaction, without explicit region markers.
  bool IsAllAtomic = false;
  unsigned NumParams = 0;   ///< the first NumParams locals are parameters
  std::vector<LocalDecl> Locals;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;

  /// Register metadata. RegNames/RegTypes are parallel; RegTypes is filled
  /// by the type checker (TypeKind::Void until then).
  std::vector<std::string> RegNames;
  std::vector<Type> RegTypes;

  int numRegs() const { return static_cast<int>(RegNames.size()); }

  /// Creates a new register; Name may be empty (auto-named by index).
  int addReg(std::string Name, Type Ty = Type::makeVoid()) {
    RegNames.push_back(std::move(Name));
    RegTypes.push_back(Ty);
    return numRegs() - 1;
  }

  BasicBlock *addBlock(std::string BlockName) {
    Blocks.push_back(std::make_unique<BasicBlock>(
        std::move(BlockName), static_cast<int>(Blocks.size())));
    return Blocks.back().get();
  }

  BasicBlock *entry() {
    assert(!Blocks.empty() && "function has no blocks");
    return Blocks.front().get();
  }

  int localIndex(const std::string &LocalName) const {
    for (std::size_t I = 0; I < Locals.size(); ++I)
      if (Locals[I].Name == LocalName)
        return static_cast<int>(I);
    return -1;
  }

  /// Predecessor lists, recomputed on demand (passes mutate the CFG).
  std::vector<std::vector<int>> computePredecessors() const;
};

//===----------------------------------------------------------------------===
// Module
//===----------------------------------------------------------------------===

class Module {
public:
  std::vector<ClassDecl> Classes;
  std::vector<std::unique_ptr<Function>> Functions;

  int classIndex(const std::string &Name) const {
    auto It = ClassIndex.find(Name);
    return It == ClassIndex.end() ? -1 : It->second;
  }

  int functionIndex(const std::string &Name) const {
    auto It = FunctionIndex.find(Name);
    return It == FunctionIndex.end() ? -1 : It->second;
  }

  ClassDecl *classById(int Id) {
    assert(Id >= 0 && Id < static_cast<int>(Classes.size()));
    return &Classes[Id];
  }

  Function *functionByName(const std::string &Name) {
    int Idx = functionIndex(Name);
    return Idx < 0 ? nullptr : Functions[Idx].get();
  }

  int addClass(ClassDecl Decl) {
    int Id = static_cast<int>(Classes.size());
    ClassIndex[Decl.Name] = Id;
    Classes.push_back(std::move(Decl));
    return Id;
  }

  Function *addFunction(const std::string &Name) {
    int Id = static_cast<int>(Functions.size());
    FunctionIndex[Name] = Id;
    Functions.push_back(std::make_unique<Function>(Name, Id));
    return Functions.back().get();
  }

private:
  std::unordered_map<std::string, int> ClassIndex;
  std::unordered_map<std::string, int> FunctionIndex;
};

//===----------------------------------------------------------------------===
// Printing (round-trips through the parser)
//===----------------------------------------------------------------------===

std::string printModule(const Module &M);
std::string printFunction(const Module &M, const Function &F);
std::string printInstr(const Module &M, const Function &F, const Instr &I);

} // namespace tmir
} // namespace otm

#endif // OTM_TMIR_IR_H
