//===- tmir/LoopInfo.cpp - Natural loop detection -------------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tmir/LoopInfo.h"

#include <algorithm>
#include <map>

using namespace otm;
using namespace otm::tmir;

LoopInfo::LoopInfo(const Function &F, const DominatorTree &DT) {
  // Group back edges by header so a header with several latches forms one
  // loop.
  std::map<int, std::vector<int>> BackEdges;
  for (const std::unique_ptr<BasicBlock> &BB : F.Blocks) {
    if (!DT.isReachable(BB->Id))
      continue;
    for (int Succ : BB->successors())
      if (DT.dominates(Succ, BB->Id))
        BackEdges[Succ].push_back(BB->Id);
  }

  std::vector<std::vector<int>> Preds = F.computePredecessors();
  for (auto &[Header, Latches] : BackEdges) {
    Loop L;
    L.Header = Header;
    L.Latches = Latches;
    // Body: blocks that reach a latch backwards without passing the header.
    std::vector<bool> InLoop(F.Blocks.size(), false);
    InLoop[Header] = true;
    std::vector<int> Work = Latches;
    while (!Work.empty()) {
      int B = Work.back();
      Work.pop_back();
      if (InLoop[B])
        continue;
      InLoop[B] = true;
      for (int P : Preds[B])
        if (!InLoop[P])
          Work.push_back(P);
    }
    for (std::size_t B = 0; B < F.Blocks.size(); ++B)
      if (InLoop[B])
        L.Blocks.push_back(static_cast<int>(B));
    Loops.push_back(std::move(L));
  }

  // Inner loops first (fewer blocks), so hoisting cascades outward.
  std::sort(Loops.begin(), Loops.end(), [](const Loop &A, const Loop &B) {
    return A.Blocks.size() < B.Blocks.size();
  });
}
