//===- tmir/Parser.h - Textual TMIR parser ----------------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual form of TMIR (the format printModule emits; the two
/// round-trip). Example:
///
/// \code
///   class Node { key: i64, next: Node }
///
///   func sum(head: Node): i64 {
///     var acc: i64
///   entry:
///     storelocal acc, 0
///     br loop
///   loop:
///     %c = loadlocal head
///     %done = cmpeq %c, null
///     condbr %done, exit, body
///   body:
///     atomic_begin
///     %k = getfield %c, Node.key
///     atomic_end
///     ...
///   }
/// \endcode
///
/// Functions and classes may be referenced before their definition; blocks
/// are referenced by label. Errors carry a line number.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TMIR_PARSER_H
#define OTM_TMIR_PARSER_H

#include "tmir/IR.h"

#include <string>

namespace otm {
namespace tmir {

/// Parses \p Text into \p M. Returns true on success; on failure returns
/// false and sets \p Error to a "line N: message" diagnostic.
bool parseModule(const std::string &Text, Module &M, std::string &Error);

/// Convenience for tests: parses or aborts with the diagnostic.
Module parseModuleOrDie(const std::string &Text);

} // namespace tmir
} // namespace otm

#endif // OTM_TMIR_PARSER_H
