//===- tmir/Verifier.cpp - TMIR structural & type verifier ---------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tmir/Verifier.h"

#include "support/Compiler.h"

#include <cstdio>
#include <cstdlib>

using namespace otm;
using namespace otm::tmir;

namespace {

class FunctionVerifier {
public:
  FunctionVerifier(Module &M, Function &F, std::string &Error)
      : M(M), F(F), Error(Error) {}

  bool run() {
    if (F.Blocks.empty())
      return fail("function has no blocks");
    if (!checkStructure())
      return false;
    if (!inferDefTypes())
      return false;
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks)
      for (Instr &I : BB->Instrs)
        if (!checkInstr(*BB, I))
          return false;
    return true;
  }

private:
  bool fail(const std::string &Msg) {
    Error = "function " + F.Name + ": " + Msg;
    return false;
  }

  bool failIn(const BasicBlock &BB, const std::string &Msg) {
    return fail("block " + BB.Name + ": " + Msg);
  }

  bool checkStructure() {
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks) {
      if (BB->Instrs.empty())
        return failIn(*BB, "empty block");
      for (std::size_t I = 0; I + 1 < BB->Instrs.size(); ++I)
        if (isTerminator(BB->Instrs[I].Op))
          return failIn(*BB, "terminator before end of block");
      if (!isTerminator(BB->Instrs.back().Op))
        return failIn(*BB, "missing terminator");
      for (int Succ : BB->successors())
        if (Succ < 0 || Succ >= static_cast<int>(F.Blocks.size()))
          return failIn(*BB, "branch target out of range");
    }
    return true;
  }

  /// Computes the type of every register from its unique definition.
  /// Iterates to a fixpoint because a Mov may copy a register whose
  /// definition appears in a later block.
  bool inferDefTypes() {
    F.RegTypes.assign(F.RegNames.size(), Type::makeVoid());
    std::vector<bool> Defined(F.RegNames.size(), false);
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks)
      for (Instr &I : BB->Instrs) {
        if (I.ResultReg < 0)
          continue;
        if (I.ResultReg >= F.numRegs())
          return failIn(*BB, "result register out of range");
        if (Defined[I.ResultReg])
          return failIn(*BB, "register %" + F.RegNames[I.ResultReg] +
                                 " defined more than once");
        Defined[I.ResultReg] = true;
      }
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (std::unique_ptr<BasicBlock> &BB : F.Blocks)
        for (Instr &I : BB->Instrs) {
          if (I.ResultReg < 0)
            continue;
          Type NewTy = resultType(I);
          if (NewTy != F.RegTypes[I.ResultReg]) {
            F.RegTypes[I.ResultReg] = NewTy;
            Changed = true;
          }
        }
    }
    // Every used register must have a definition somewhere.
    for (std::unique_ptr<BasicBlock> &BB : F.Blocks)
      for (Instr &I : BB->Instrs)
        for (const Value &V : I.Operands)
          if (V.isReg() && !Defined[V.regId()])
            return failIn(*BB, "register %" + F.RegNames[V.regId()] +
                                   " used but never defined");
    return true;
  }

  Type resultType(const Instr &I) {
    switch (I.Op) {
    case Opcode::Mov:
      return operandStaticType(I.Operands[0]);
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::ArrLen:
    case Opcode::ArrGet:
      return Type::makeI64();
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      return Type::makeI1();
    case Opcode::LoadLocal:
      return F.Locals[I.LocalIdx].Ty;
    case Opcode::NewObj:
      return Type::makeObj(I.ClassId);
    case Opcode::GetField:
      return M.Classes[I.ClassId].Fields[I.FieldIdx].Ty;
    case Opcode::NewArr:
      return Type::makeArr();
    case Opcode::Call:
      return M.Functions[I.CalleeIdx]->ReturnTy;
    default:
      return Type::makeVoid();
    }
  }

  /// Static type of an operand for Mov inference; immediates are i64.
  Type operandStaticType(const Value &V) {
    if (V.isReg())
      return F.RegTypes[V.regId()];
    if (V.isNull())
      return Type::makeArr(); // placeholder ref type; compat() accepts
    return Type::makeI64();
  }

  /// Operand compatibility with an expected type.
  bool compat(const Value &V, const Type &Expected) {
    switch (V.kind()) {
    case Value::Kind::Imm:
      if (Expected.isI1())
        return V.immValue() == 0 || V.immValue() == 1;
      return Expected.isI64();
    case Value::Kind::Null:
      return Expected.isRef();
    case Value::Kind::Reg: {
      const Type &Actual = F.RegTypes[V.regId()];
      if (Actual == Expected)
        return true;
      // Reference types are mutually assignable (mov-of-null erases the
      // class; the interpreter traps on genuinely wrong field accesses).
      return Expected.isRef() && Actual.isRef();
    }
    case Value::Kind::None:
      return false;
    }
    return false;
  }

  bool isRefOperand(const Value &V) {
    if (V.isNull())
      return true;
    return V.isReg() && F.RegTypes[V.regId()].isRef();
  }

  bool checkInstr(const BasicBlock &BB, const Instr &I) {
    auto Bad = [&](const std::string &Msg) {
      return failIn(BB, "'" + printInstr(M, F, I) + "': " + Msg);
    };

    switch (I.Op) {
    case Opcode::Mov:
      if (I.ResultReg < 0)
        return Bad("mov needs a result");
      return true;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
      if (I.ResultReg < 0)
        return Bad("arithmetic needs a result");
      if (!compat(I.Operands[0], Type::makeI64()) ||
          !compat(I.Operands[1], Type::makeI64()))
        return Bad("arithmetic operands must be i64");
      return true;
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
      if (!compat(I.Operands[0], Type::makeI64()) ||
          !compat(I.Operands[1], Type::makeI64()))
        return Bad("ordered comparison operands must be i64");
      return true;
    case Opcode::CmpEq:
    case Opcode::CmpNe: {
      bool BothInt = compat(I.Operands[0], Type::makeI64()) &&
                     compat(I.Operands[1], Type::makeI64());
      bool BothRef = isRefOperand(I.Operands[0]) && isRefOperand(I.Operands[1]);
      bool BothBool = compat(I.Operands[0], Type::makeI1()) &&
                      compat(I.Operands[1], Type::makeI1());
      if (!BothInt && !BothRef && !BothBool)
        return Bad("equality operands must both be i64, i1 or references");
      return true;
    }
    case Opcode::LoadLocal:
      if (I.LocalIdx < 0 || I.LocalIdx >= static_cast<int>(F.Locals.size()))
        return Bad("bad local index");
      return true;
    case Opcode::StoreLocal:
      if (I.LocalIdx < 0 || I.LocalIdx >= static_cast<int>(F.Locals.size()))
        return Bad("bad local index");
      if (!compat(I.Operands[0], F.Locals[I.LocalIdx].Ty))
        return Bad("stored value does not match local type");
      return true;
    case Opcode::NewObj:
      if (I.ClassId < 0 || I.ClassId >= static_cast<int>(M.Classes.size()))
        return Bad("bad class");
      return true;
    case Opcode::GetField:
    case Opcode::SetField:
    case Opcode::LogUndoField: {
      if (I.ClassId < 0 || I.ClassId >= static_cast<int>(M.Classes.size()))
        return Bad("bad class");
      const ClassDecl &C = M.Classes[I.ClassId];
      if (I.FieldIdx < 0 || I.FieldIdx >= static_cast<int>(C.Fields.size()))
        return Bad("bad field index");
      if (!compat(I.Operands[0], Type::makeObj(I.ClassId)))
        return Bad("object operand must be a " + C.Name + " reference");
      if (I.Op == Opcode::SetField &&
          !compat(I.Operands[1], C.Fields[I.FieldIdx].Ty))
        return Bad("stored value does not match field type");
      return true;
    }
    case Opcode::NewArr:
      return compat(I.Operands[0], Type::makeI64())
                 ? true
                 : Bad("array length must be i64");
    case Opcode::ArrLen:
    case Opcode::ArrGet:
    case Opcode::ArrSet:
    case Opcode::LogUndoElem: {
      if (!compat(I.Operands[0], Type::makeArr()))
        return Bad("array operand must be arr");
      if (I.Op != Opcode::ArrLen && !compat(I.Operands[1], Type::makeI64()))
        return Bad("array index must be i64");
      if (I.Op == Opcode::ArrSet && !compat(I.Operands[2], Type::makeI64()))
        return Bad("array element must be i64");
      return true;
    }
    case Opcode::Call: {
      const Function &Callee = *M.Functions[I.CalleeIdx];
      if (I.Operands.size() != Callee.NumParams)
        return Bad("call arity mismatch");
      for (unsigned A = 0; A < Callee.NumParams; ++A)
        if (!compat(I.Operands[A], Callee.Locals[A].Ty))
          return Bad("argument " + std::to_string(A) + " type mismatch");
      if (I.ResultReg >= 0 && Callee.ReturnTy.isVoid())
        return Bad("void call cannot define a register");
      return true;
    }
    case Opcode::Print:
      return compat(I.Operands[0], Type::makeI64())
                 ? true
                 : Bad("print takes an i64");
    case Opcode::AtomicBegin:
    case Opcode::AtomicEnd:
      return true;
    case Opcode::OpenForRead:
    case Opcode::OpenForUpdate:
      return isRefOperand(I.Operands[0])
                 ? true
                 : Bad("barrier operand must be a reference");
    case Opcode::Br:
      return true;
    case Opcode::CondBr:
      return compat(I.Operands[0], Type::makeI1())
                 ? true
                 : Bad("branch condition must be i1");
    case Opcode::Ret:
      if (F.ReturnTy.isVoid())
        return I.Operands.empty() ? true : Bad("void function returns a value");
      if (I.Operands.empty())
        return Bad("non-void function must return a value");
      return compat(I.Operands[0], F.ReturnTy)
                 ? true
                 : Bad("return value type mismatch");
    }
    OTM_UNREACHABLE("unhandled opcode in verifier");
  }

  Module &M;
  Function &F;
  std::string &Error;
};

} // namespace

bool tmir::verifyModule(Module &M, std::string &Error) {
  for (std::unique_ptr<Function> &F : M.Functions) {
    FunctionVerifier V(M, *F, Error);
    if (!V.run())
      return false;
  }
  return true;
}

void tmir::verifyModuleOrDie(Module &M) {
  std::string Error;
  if (!verifyModule(M, Error)) {
    std::fprintf(stderr, "TMIR verifier error: %s\n", Error.c_str());
    std::abort();
  }
}
