//===- tmir/Dominators.cpp - Dominator tree ------------------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tmir/Dominators.h"

#include <cassert>

using namespace otm;
using namespace otm::tmir;

DominatorTree::DominatorTree(const Function &F) {
  std::size_t N = F.Blocks.size();
  Idom.assign(N, -1);
  RpoIndex.assign(N, -1);
  EntryId = F.Blocks.front()->Id;

  // Depth-first postorder, then reverse.
  std::vector<int> Post;
  std::vector<uint8_t> State(N, 0); // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<int, std::size_t>> Stack;
  Stack.push_back({EntryId, 0});
  State[EntryId] = 1;
  while (!Stack.empty()) {
    auto &[Block, NextSucc] = Stack.back();
    std::vector<int> Succs = F.Blocks[Block]->successors();
    if (NextSucc < Succs.size()) {
      int S = Succs[NextSucc++];
      if (State[S] == 0) {
        State[S] = 1;
        Stack.push_back({S, 0});
      }
      continue;
    }
    State[Block] = 2;
    Post.push_back(Block);
    Stack.pop_back();
  }
  Rpo.assign(Post.rbegin(), Post.rend());
  for (std::size_t I = 0; I < Rpo.size(); ++I)
    RpoIndex[Rpo[I]] = static_cast<int>(I);

  std::vector<std::vector<int>> Preds = F.computePredecessors();

  // Cooper-Harvey-Kennedy iteration.
  auto Intersect = [&](int A, int B) {
    while (A != B) {
      while (RpoIndex[A] > RpoIndex[B])
        A = Idom[A];
      while (RpoIndex[B] > RpoIndex[A])
        B = Idom[B];
    }
    return A;
  };

  Idom[EntryId] = EntryId;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (int Block : Rpo) {
      if (Block == EntryId)
        continue;
      int NewIdom = -1;
      for (int Pred : Preds[Block]) {
        if (RpoIndex[Pred] < 0 || Idom[Pred] < 0)
          continue; // unreachable or not yet processed
        NewIdom = (NewIdom < 0) ? Pred : Intersect(Pred, NewIdom);
      }
      if (NewIdom >= 0 && Idom[Block] != NewIdom) {
        Idom[Block] = NewIdom;
        Changed = true;
      }
    }
  }
  // Normalize: entry's idom is conventionally -1 for clients.
  Idom[EntryId] = -1;
}

bool DominatorTree::dominates(int A, int B) const {
  if (A == B)
    return true;
  if (RpoIndex[A] < 0 || RpoIndex[B] < 0)
    return false; // unreachable blocks dominate nothing
  int Runner = B;
  while (Runner != EntryId && Runner >= 0) {
    Runner = Idom[Runner];
    if (Runner == A)
      return true;
  }
  return false;
}
