//===- tmir/Verifier.h - TMIR structural & type verifier -------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Verifies a module and fills in register types:
///  - every block ends in exactly one terminator (and none mid-block);
///  - every register has exactly one defining instruction and every use
///    refers to a defined register;
///  - all operands are type-correct (including barrier operands being
///    references and undo-log field references matching their class);
///  - calls match the callee's signature; returns match the function type.
///
/// Passes are expected to leave the module verifier-clean; every pass test
/// re-verifies after running the pass.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TMIR_VERIFIER_H
#define OTM_TMIR_VERIFIER_H

#include "tmir/IR.h"

#include <string>

namespace otm {
namespace tmir {

/// Verifies \p M and computes Function::RegTypes. Returns true if valid;
/// otherwise fills \p Error with a diagnostic.
bool verifyModule(Module &M, std::string &Error);

/// Convenience for tests and tools: aborts with the diagnostic on failure.
void verifyModuleOrDie(Module &M);

} // namespace tmir
} // namespace otm

#endif // OTM_TMIR_VERIFIER_H
