//===- tmir/Parser.cpp - Textual TMIR parser ------------------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tmir/Parser.h"

#include "support/Compiler.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

using namespace otm;
using namespace otm::tmir;

namespace {

//===----------------------------------------------------------------------===
// Lexer
//===----------------------------------------------------------------------===

enum class TokKind : uint8_t {
  Ident,
  Int,
  Percent,
  Equals,
  Colon,
  Comma,
  Dot,
  LBrace,
  RBrace,
  LParen,
  RParen,
  End,
};

struct Token {
  TokKind Kind = TokKind::End;
  std::string Text;
  int64_t IntValue = 0;
  int Line = 0;

  bool is(TokKind K) const { return Kind == K; }
  bool isIdent(const char *S) const {
    return Kind == TokKind::Ident && Text == S;
  }
};

class Lexer {
public:
  Lexer(const std::string &Text, std::string &Error)
      : Text(Text), Error(Error) {}

  /// Lexes the whole input; returns false on a bad character.
  bool run(std::vector<Token> &Out) {
    std::size_t I = 0, N = Text.size();
    int Line = 1;
    while (I < N) {
      char C = Text[I];
      if (C == '\n') {
        ++Line;
        ++I;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++I;
        continue;
      }
      if (C == '/' && I + 1 < N && Text[I + 1] == '/') {
        while (I < N && Text[I] != '\n')
          ++I;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
        std::size_t Start = I;
        while (I < N && (std::isalnum(static_cast<unsigned char>(Text[I])) ||
                         Text[I] == '_' || Text[I] == '$'))
          ++I;
        Out.push_back({TokKind::Ident, Text.substr(Start, I - Start), 0, Line});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(C)) ||
          (C == '-' && I + 1 < N &&
           std::isdigit(static_cast<unsigned char>(Text[I + 1])))) {
        std::size_t Start = I;
        if (C == '-')
          ++I;
        while (I < N && std::isdigit(static_cast<unsigned char>(Text[I])))
          ++I;
        Token T{TokKind::Int, Text.substr(Start, I - Start), 0, Line};
        T.IntValue = std::strtoll(T.Text.c_str(), nullptr, 10);
        Out.push_back(std::move(T));
        continue;
      }
      TokKind K;
      switch (C) {
      case '%':
        K = TokKind::Percent;
        break;
      case '=':
        K = TokKind::Equals;
        break;
      case ':':
        K = TokKind::Colon;
        break;
      case ',':
        K = TokKind::Comma;
        break;
      case '.':
        K = TokKind::Dot;
        break;
      case '{':
        K = TokKind::LBrace;
        break;
      case '}':
        K = TokKind::RBrace;
        break;
      case '(':
        K = TokKind::LParen;
        break;
      case ')':
        K = TokKind::RParen;
        break;
      default:
        Error = "line " + std::to_string(Line) + ": unexpected character '" +
                std::string(1, C) + "'";
        return false;
      }
      Out.push_back({K, std::string(1, C), 0, Line});
      ++I;
    }
    Out.push_back({TokKind::End, "", 0, Line});
    return true;
  }

private:
  const std::string &Text;
  std::string &Error;
};

//===----------------------------------------------------------------------===
// Parser
//===----------------------------------------------------------------------===

class Parser {
public:
  Parser(std::vector<Token> Toks, Module &M, std::string &Error)
      : Toks(std::move(Toks)), M(M), Error(Error) {}

  bool run() {
    if (!preRegister())
      return false;
    while (!peek().is(TokKind::End)) {
      if (peek().isIdent("class")) {
        if (!parseClass())
          return false;
      } else if (peek().isIdent("func") || peek().isIdent("txfunc")) {
        if (!parseFunction())
          return false;
      } else {
        return fail("expected 'class' or 'func'");
      }
    }
    return true;
  }

private:
  const Token &peek(unsigned Ahead = 0) const {
    std::size_t I = Pos + Ahead;
    return I < Toks.size() ? Toks[I] : Toks.back();
  }
  Token next() { return Toks[Pos < Toks.size() - 1 ? Pos++ : Pos]; }

  bool fail(const std::string &Msg) {
    Error = "line " + std::to_string(peek().Line) + ": " + Msg;
    return false;
  }

  bool expect(TokKind K, const char *What) {
    if (!peek().is(K))
      return fail(std::string("expected ") + What);
    next();
    return true;
  }

  /// Registers all class and function names up front so bodies may refer
  /// to declarations that appear later in the file.
  bool preRegister() {
    for (std::size_t I = 0; I + 1 < Toks.size(); ++I) {
      if (Toks[I].isIdent("class") && Toks[I + 1].is(TokKind::Ident) &&
          (I == 0 || !isDeclContext(I))) {
        if (M.classIndex(Toks[I + 1].Text) >= 0) {
          Error = "line " + std::to_string(Toks[I].Line) +
                  ": duplicate class " + Toks[I + 1].Text;
          return false;
        }
        M.addClass(ClassDecl{Toks[I + 1].Text, {}});
      }
      if ((Toks[I].isIdent("func") || Toks[I].isIdent("txfunc")) &&
          Toks[I + 1].is(TokKind::Ident) &&
          (I == 0 || !isDeclContext(I))) {
        if (M.functionIndex(Toks[I + 1].Text) >= 0) {
          Error = "line " + std::to_string(Toks[I].Line) +
                  ": duplicate function " + Toks[I + 1].Text;
          return false;
        }
        M.addFunction(Toks[I + 1].Text);
      }
    }
    return true;
  }

  /// True if token I is used as an operand/decl rather than a keyword
  /// (e.g. a local named "func" would confuse the prescan; we simply ban
  /// such names by treating top-level occurrences only).
  bool isDeclContext(std::size_t I) const {
    // Keywords at top level are preceded by '}' or start of file or the
    // end of a previous declaration; inside bodies they are preceded by
    // operand punctuation. A simple rule that works for the format: the
    // previous token must be RBrace or End-of-declaration.
    const Token &P = Toks[I - 1];
    return !(P.is(TokKind::RBrace));
  }

  bool parseType(Type &Ty) {
    if (!peek().is(TokKind::Ident))
      return fail("expected a type");
    std::string Name = next().Text;
    if (Name == "i64")
      Ty = Type::makeI64();
    else if (Name == "i1")
      Ty = Type::makeI1();
    else if (Name == "arr")
      Ty = Type::makeArr();
    else if (Name == "void")
      Ty = Type::makeVoid();
    else {
      int Id = M.classIndex(Name);
      if (Id < 0)
        return fail("unknown type '" + Name + "'");
      Ty = Type::makeObj(Id);
    }
    return true;
  }

  bool parseClass() {
    next(); // class
    if (!peek().is(TokKind::Ident))
      return fail("expected class name");
    std::string Name = next().Text;
    ClassDecl &Decl = M.Classes[M.classIndex(Name)];
    if (!expect(TokKind::LBrace, "'{'"))
      return false;
    while (!peek().is(TokKind::RBrace)) {
      if (!peek().is(TokKind::Ident))
        return fail("expected field name");
      FieldDecl Field;
      Field.Name = next().Text;
      if (!expect(TokKind::Colon, "':'"))
        return false;
      if (!parseType(Field.Ty))
        return false;
      if (Field.Ty.isVoid())
        return fail("field cannot have void type");
      if (Decl.fieldIndex(Field.Name) >= 0)
        return fail("duplicate field '" + Field.Name + "'");
      Decl.Fields.push_back(std::move(Field));
      if (peek().is(TokKind::Comma))
        next();
    }
    next(); // }
    return true;
  }

  //===------------------------------------------------------------------===
  // Function bodies
  //===------------------------------------------------------------------===

  Function *F = nullptr;
  std::unordered_map<std::string, int> RegIds;
  std::unordered_map<std::string, int> BlockIds;

  int regFor(const std::string &Name) {
    auto It = RegIds.find(Name);
    if (It != RegIds.end())
      return It->second;
    int Id = F->addReg(Name);
    RegIds[Name] = Id;
    return Id;
  }

  bool parseFunction() {
    bool AllAtomic = peek().isIdent("txfunc");
    next(); // func / txfunc
    std::string Name = next().Text;
    F = M.Functions[M.functionIndex(Name)].get();
    F->IsAllAtomic = AllAtomic;
    RegIds.clear();
    BlockIds.clear();

    if (!expect(TokKind::LParen, "'('"))
      return false;
    while (!peek().is(TokKind::RParen)) {
      LocalDecl Param;
      if (!peek().is(TokKind::Ident))
        return fail("expected parameter name");
      Param.Name = next().Text;
      if (!expect(TokKind::Colon, "':'"))
        return false;
      if (!parseType(Param.Ty))
        return false;
      F->Locals.push_back(std::move(Param));
      if (peek().is(TokKind::Comma))
        next();
    }
    next(); // )
    F->NumParams = static_cast<unsigned>(F->Locals.size());
    if (peek().is(TokKind::Colon)) {
      next();
      if (!parseType(F->ReturnTy))
        return false;
    }
    if (!expect(TokKind::LBrace, "'{'"))
      return false;

    // Var declarations precede the first label.
    while (peek().isIdent("var")) {
      next();
      LocalDecl Local;
      if (!peek().is(TokKind::Ident))
        return fail("expected variable name");
      Local.Name = next().Text;
      if (!expect(TokKind::Colon, "':'"))
        return false;
      if (!parseType(Local.Ty))
        return false;
      if (F->localIndex(Local.Name) >= 0)
        return fail("duplicate local '" + Local.Name + "'");
      F->Locals.push_back(std::move(Local));
    }

    // Pre-scan for labels (Ident ':') to create blocks in textual order.
    for (std::size_t I = Pos; I < Toks.size(); ++I) {
      if (Toks[I].is(TokKind::RBrace))
        break;
      if (Toks[I].is(TokKind::Ident) && Toks[I + 1].is(TokKind::Colon)) {
        if (BlockIds.count(Toks[I].Text)) {
          Error = "line " + std::to_string(Toks[I].Line) +
                  ": duplicate label '" + Toks[I].Text + "'";
          return false;
        }
        BlockIds[Toks[I].Text] = F->addBlock(Toks[I].Text)->Id;
      }
    }
    if (F->Blocks.empty())
      return fail("function has no blocks");

    BasicBlock *BB = nullptr;
    while (!peek().is(TokKind::RBrace)) {
      if (peek().is(TokKind::End))
        return fail("unexpected end of input in function body");
      if (peek().is(TokKind::Ident) && peek(1).is(TokKind::Colon)) {
        BB = F->Blocks[BlockIds[next().Text]].get();
        next(); // :
        continue;
      }
      if (!BB)
        return fail("instruction before first label");
      if (!parseInstr(*BB))
        return false;
    }
    next(); // }
    return true;
  }

  bool parseValue(Value &V) {
    if (peek().is(TokKind::Percent)) {
      next();
      if (!peek().is(TokKind::Ident))
        return fail("expected register name after '%'");
      V = Value::reg(regFor(next().Text));
      return true;
    }
    if (peek().is(TokKind::Int)) {
      V = Value::imm(next().IntValue);
      return true;
    }
    if (peek().isIdent("null")) {
      next();
      V = Value::null();
      return true;
    }
    if (peek().isIdent("true")) {
      next();
      V = Value::imm(1);
      return true;
    }
    if (peek().isIdent("false")) {
      next();
      V = Value::imm(0);
      return true;
    }
    return fail("expected a value");
  }

  bool parseFieldRef(Instr &I) {
    if (!peek().is(TokKind::Ident))
      return fail("expected class name");
    std::string ClassName = next().Text;
    int ClassId = M.classIndex(ClassName);
    if (ClassId < 0)
      return fail("unknown class '" + ClassName + "'");
    if (!expect(TokKind::Dot, "'.'"))
      return false;
    if (!peek().is(TokKind::Ident))
      return fail("expected field name");
    std::string FieldName = next().Text;
    int FieldIdx = M.Classes[ClassId].fieldIndex(FieldName);
    if (FieldIdx < 0)
      return fail("class " + ClassName + " has no field '" + FieldName + "'");
    I.ClassId = ClassId;
    I.FieldIdx = FieldIdx;
    return true;
  }

  bool parseLabelRef(int &Target) {
    if (!peek().is(TokKind::Ident))
      return fail("expected a label");
    std::string Name = next().Text;
    auto It = BlockIds.find(Name);
    if (It == BlockIds.end())
      return fail("unknown label '" + Name + "'");
    Target = It->second;
    return true;
  }

  bool parseLocalRef(Instr &I) {
    if (!peek().is(TokKind::Ident))
      return fail("expected a local name");
    std::string Name = next().Text;
    int Idx = F->localIndex(Name);
    if (Idx < 0)
      return fail("unknown local '" + Name + "'");
    I.LocalIdx = Idx;
    return true;
  }

  bool parseOperands(Instr &I, unsigned Count) {
    for (unsigned N = 0; N < Count; ++N) {
      if (N && !expect(TokKind::Comma, "','"))
        return false;
      Value V;
      if (!parseValue(V))
        return false;
      I.Operands.push_back(V);
    }
    return true;
  }

  bool parseInstr(BasicBlock &BB) {
    Instr I;
    // Optional "%reg =" result.
    if (peek().is(TokKind::Percent)) {
      next();
      if (!peek().is(TokKind::Ident))
        return fail("expected register name");
      I.ResultReg = regFor(next().Text);
      if (!expect(TokKind::Equals, "'='"))
        return false;
    }
    if (!peek().is(TokKind::Ident))
      return fail("expected an opcode");
    std::string Op = next().Text;

    static const std::unordered_map<std::string, Opcode> OpMap = {
        {"mov", Opcode::Mov},
        {"add", Opcode::Add},
        {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},
        {"div", Opcode::Div},
        {"rem", Opcode::Rem},
        {"and", Opcode::And},
        {"or", Opcode::Or},
        {"xor", Opcode::Xor},
        {"shl", Opcode::Shl},
        {"shr", Opcode::Shr},
        {"cmpeq", Opcode::CmpEq},
        {"cmpne", Opcode::CmpNe},
        {"cmplt", Opcode::CmpLt},
        {"cmple", Opcode::CmpLe},
        {"cmpgt", Opcode::CmpGt},
        {"cmpge", Opcode::CmpGe},
        {"loadlocal", Opcode::LoadLocal},
        {"storelocal", Opcode::StoreLocal},
        {"newobj", Opcode::NewObj},
        {"getfield", Opcode::GetField},
        {"setfield", Opcode::SetField},
        {"newarr", Opcode::NewArr},
        {"arrlen", Opcode::ArrLen},
        {"arrget", Opcode::ArrGet},
        {"arrset", Opcode::ArrSet},
        {"call", Opcode::Call},
        {"print", Opcode::Print},
        {"atomic_begin", Opcode::AtomicBegin},
        {"atomic_end", Opcode::AtomicEnd},
        {"open_read", Opcode::OpenForRead},
        {"open_update", Opcode::OpenForUpdate},
        {"log_undo_field", Opcode::LogUndoField},
        {"log_undo_elem", Opcode::LogUndoElem},
        {"br", Opcode::Br},
        {"condbr", Opcode::CondBr},
        {"ret", Opcode::Ret},
    };
    auto It = OpMap.find(Op);
    if (It == OpMap.end())
      return fail("unknown opcode '" + Op + "'");
    I.Op = It->second;

    switch (I.Op) {
    case Opcode::Mov:
    case Opcode::Print:
    case Opcode::OpenForRead:
    case Opcode::OpenForUpdate:
    case Opcode::NewArr:
    case Opcode::ArrLen:
      if (!parseOperands(I, 1))
        return false;
      break;
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul:
    case Opcode::Div:
    case Opcode::Rem:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Xor:
    case Opcode::Shl:
    case Opcode::Shr:
    case Opcode::CmpEq:
    case Opcode::CmpNe:
    case Opcode::CmpLt:
    case Opcode::CmpLe:
    case Opcode::CmpGt:
    case Opcode::CmpGe:
    case Opcode::ArrGet:
    case Opcode::LogUndoElem:
      if (!parseOperands(I, 2))
        return false;
      break;
    case Opcode::ArrSet:
      if (!parseOperands(I, 3))
        return false;
      break;
    case Opcode::LoadLocal:
      if (!parseLocalRef(I))
        return false;
      break;
    case Opcode::StoreLocal:
      if (!parseLocalRef(I) || !expect(TokKind::Comma, "','") ||
          !parseOperands(I, 1))
        return false;
      break;
    case Opcode::NewObj: {
      if (!peek().is(TokKind::Ident))
        return fail("expected class name");
      std::string ClassName = next().Text;
      I.ClassId = M.classIndex(ClassName);
      if (I.ClassId < 0)
        return fail("unknown class '" + ClassName + "'");
      break;
    }
    case Opcode::GetField:
      if (!parseOperands(I, 1) || !expect(TokKind::Comma, "','") ||
          !parseFieldRef(I))
        return false;
      break;
    case Opcode::SetField:
      if (!parseOperands(I, 1) || !expect(TokKind::Comma, "','") ||
          !parseFieldRef(I) || !expect(TokKind::Comma, "','"))
        return false;
      if (!parseOperands(I, 1))
        return false;
      break;
    case Opcode::LogUndoField:
      if (!parseOperands(I, 1) || !expect(TokKind::Comma, "','") ||
          !parseFieldRef(I))
        return false;
      break;
    case Opcode::Call: {
      if (!peek().is(TokKind::Ident))
        return fail("expected function name");
      std::string Callee = next().Text;
      I.CalleeIdx = M.functionIndex(Callee);
      if (I.CalleeIdx < 0)
        return fail("unknown function '" + Callee + "'");
      if (!expect(TokKind::LParen, "'('"))
        return false;
      while (!peek().is(TokKind::RParen)) {
        if (!I.Operands.empty() && !expect(TokKind::Comma, "','"))
          return false;
        Value V;
        if (!parseValue(V))
          return false;
        I.Operands.push_back(V);
      }
      next(); // )
      break;
    }
    case Opcode::AtomicBegin:
    case Opcode::AtomicEnd:
      break;
    case Opcode::Br:
      if (!parseLabelRef(I.TargetA))
        return false;
      break;
    case Opcode::CondBr:
      if (!parseOperands(I, 1) || !expect(TokKind::Comma, "','") ||
          !parseLabelRef(I.TargetA) || !expect(TokKind::Comma, "','") ||
          !parseLabelRef(I.TargetB))
        return false;
      break;
    case Opcode::Ret:
      // "ret" may have a value; detect by lookahead.
      if (peek().is(TokKind::Percent) || peek().is(TokKind::Int) ||
          peek().isIdent("null") || peek().isIdent("true") ||
          peek().isIdent("false")) {
        if (!parseOperands(I, 1))
          return false;
      }
      break;
    default:
      return fail("unhandled opcode");
    }
    BB.Instrs.push_back(std::move(I));
    return true;
  }

  std::vector<Token> Toks;
  std::size_t Pos = 0;
  Module &M;
  std::string &Error;
};

} // namespace

bool tmir::parseModule(const std::string &Text, Module &M,
                       std::string &Error) {
  std::vector<Token> Toks;
  Lexer Lex(Text, Error);
  if (!Lex.run(Toks))
    return false;
  Parser P(std::move(Toks), M, Error);
  return P.run();
}

Module tmir::parseModuleOrDie(const std::string &Text) {
  Module M;
  std::string Error;
  if (!parseModule(Text, M, Error)) {
    std::fprintf(stderr, "TMIR parse error: %s\n", Error.c_str());
    std::abort();
  }
  return M;
}
