//===- tmir/LoopInfo.h - Natural loop detection -----------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Natural loops (back edges to a dominator, plus the body reached
/// backwards from the latch). Used by the open-hoisting pass: an open of a
/// loop-invariant reference executed on every iteration is moved to the
/// preheader, turning O(iterations) barriers into one.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_TMIR_LOOPINFO_H
#define OTM_TMIR_LOOPINFO_H

#include "tmir/Dominators.h"
#include "tmir/IR.h"

#include <vector>

namespace otm {
namespace tmir {

struct Loop {
  int Header = -1;
  std::vector<int> Latches; ///< blocks with a back edge to Header
  std::vector<int> Blocks;  ///< all blocks in the loop (includes Header)

  bool contains(int BlockId) const {
    for (int B : Blocks)
      if (B == BlockId)
        return true;
    return false;
  }
};

class LoopInfo {
public:
  LoopInfo(const Function &F, const DominatorTree &DT);

  const std::vector<Loop> &loops() const { return Loops; }

private:
  std::vector<Loop> Loops;
};

} // namespace tmir
} // namespace otm

#endif // OTM_TMIR_LOOPINFO_H
