//===- tmir/AtomicRegions.cpp - Transaction region membership -------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tmir/AtomicRegions.h"

using namespace otm;
using namespace otm::tmir;

AtomicRegions::AtomicRegions(const Function &F) : F(F) {
  EntryState.assign(F.Blocks.size(), -1);
  std::vector<int> Work;
  EntryState[F.Blocks.front()->Id] = 0;
  Work.push_back(F.Blocks.front()->Id);

  while (!Work.empty() && Error.empty()) {
    int Id = Work.back();
    Work.pop_back();
    const BasicBlock &BB = *F.Blocks[Id];
    int8_t State = EntryState[Id];
    for (const Instr &I : BB.Instrs) {
      if (I.Op == Opcode::AtomicBegin) {
        if (State == 1) {
          Error = "function " + F.Name + ": nested atomic_begin in block " +
                  BB.Name + " (flattening happens through calls, not "
                  "textual nesting)";
          return;
        }
        State = 1;
        AnyAtomic = true;
      } else if (I.Op == Opcode::AtomicEnd) {
        if (State != 1) {
          Error = "function " + F.Name + ": atomic_end outside a region in " +
                  BB.Name;
          return;
        }
        State = 0;
      } else if (I.Op == Opcode::Ret && State == 1) {
        Error = "function " + F.Name + ": return inside atomic region in " +
                BB.Name;
        return;
      }
    }
    for (int Succ : BB.successors()) {
      if (EntryState[Succ] == -1) {
        EntryState[Succ] = State;
        Work.push_back(Succ);
      } else if (EntryState[Succ] != State) {
        Error = "function " + F.Name + ": block " + F.Blocks[Succ]->Name +
                " is reached both inside and outside an atomic region";
        return;
      }
    }
  }
}

bool AtomicRegions::inAtomic(int BlockId, std::size_t InstrIdx) const {
  int8_t State = EntryState[BlockId];
  if (State == -1)
    return false; // unreachable
  const BasicBlock &BB = *F.Blocks[BlockId];
  for (std::size_t I = 0; I <= InstrIdx && I < BB.Instrs.size(); ++I) {
    if (BB.Instrs[I].Op == Opcode::AtomicBegin)
      State = 1;
    else if (BB.Instrs[I].Op == Opcode::AtomicEnd && I < InstrIdx)
      State = 0;
  }
  return State == 1;
}

