//===- sync/FineGrainedHashMap.h - Per-bucket locked hash map --*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hand-written fine-grained locking hashtable the paper's optimized
/// atomic hashtable is compared against (experiment E3): one mutex per
/// bucket, chained nodes, no global synchronization on the fast path. This
/// is the "expert-written" performance target; the STM's value proposition
/// is approaching it with `atomic { ... }` simplicity.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_SYNC_FINEGRAINEDHASHMAP_H
#define OTM_SYNC_FINEGRAINEDHASHMAP_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace otm {
namespace sync {

class FineGrainedHashMap {
public:
  explicit FineGrainedHashMap(std::size_t BucketCount)
      : Buckets(roundUpPow2(BucketCount)) {}

  ~FineGrainedHashMap() {
    for (Bucket &B : Buckets) {
      Node *N = B.Head;
      while (N) {
        Node *Next = N->Next;
        delete N;
        N = Next;
      }
    }
  }

  /// Inserts or updates; returns true if the key was newly inserted.
  bool insert(int64_t Key, int64_t Value) {
    Bucket &B = bucketFor(Key);
    std::lock_guard<std::mutex> Lock(B.M);
    for (Node *N = B.Head; N; N = N->Next)
      if (N->Key == Key) {
        N->Value = Value;
        return false;
      }
    B.Head = new Node{Key, Value, B.Head};
    return true;
  }

  /// Removes \p Key; returns true if it was present.
  bool erase(int64_t Key) {
    Bucket &B = bucketFor(Key);
    std::lock_guard<std::mutex> Lock(B.M);
    Node **Link = &B.Head;
    for (Node *N = B.Head; N; Link = &N->Next, N = N->Next)
      if (N->Key == Key) {
        *Link = N->Next;
        delete N;
        return true;
      }
    return false;
  }

  /// Looks up \p Key; returns true and fills \p Value if present.
  bool lookup(int64_t Key, int64_t &Value) {
    Bucket &B = bucketFor(Key);
    std::lock_guard<std::mutex> Lock(B.M);
    for (Node *N = B.Head; N; N = N->Next)
      if (N->Key == Key) {
        Value = N->Value;
        return true;
      }
    return false;
  }

  bool contains(int64_t Key) {
    int64_t Ignored;
    return lookup(Key, Ignored);
  }

  /// Exact size; takes all bucket locks (slow, for verification only).
  std::size_t sizeSlow() {
    std::size_t Count = 0;
    for (Bucket &B : Buckets) {
      std::lock_guard<std::mutex> Lock(B.M);
      for (Node *N = B.Head; N; N = N->Next)
        ++Count;
    }
    return Count;
  }

private:
  struct Node {
    int64_t Key;
    int64_t Value;
    Node *Next;
  };

  struct Bucket {
    std::mutex M;
    Node *Head = nullptr;
  };

  static std::size_t roundUpPow2(std::size_t N) {
    std::size_t P = 1;
    while (P < N)
      P <<= 1;
    return P;
  }

  static uint64_t hash(int64_t Key) {
    uint64_t H = static_cast<uint64_t>(Key);
    H ^= H >> 33;
    H *= 0xff51afd7ed558ccdULL;
    H ^= H >> 33;
    return H;
  }

  Bucket &bucketFor(int64_t Key) {
    return Buckets[hash(Key) & (Buckets.size() - 1)];
  }

  std::vector<Bucket> Buckets;
};

} // namespace sync
} // namespace otm

#endif // OTM_SYNC_FINEGRAINEDHASHMAP_H
