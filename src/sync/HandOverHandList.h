//===- sync/HandOverHandList.h - Lock-coupling sorted list -----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic fine-grained-lock sorted list: traversal holds at most two
/// node locks at a time (lock coupling / hand-over-hand). This is the
/// expert-written counterpart to containers::SortedList — the comparison
/// point the paper's "as easy as coarse, as fast as fine-grained" pitch is
/// made against for list structures.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_SYNC_HANDOVERHANDLIST_H
#define OTM_SYNC_HANDOVERHANDLIST_H

#include <cstdint>
#include <mutex>

namespace otm {
namespace sync {

class HandOverHandList {
public:
  HandOverHandList() : Head(new Node{INT64_MIN, 0, nullptr}) {}

  ~HandOverHandList() {
    Node *N = Head;
    while (N) {
      Node *Next = N->Next;
      delete N;
      N = Next;
    }
  }

  HandOverHandList(const HandOverHandList &) = delete;
  HandOverHandList &operator=(const HandOverHandList &) = delete;

  /// Inserts or updates; returns true if the key was newly inserted.
  bool insert(int64_t Key, int64_t Value) {
    Node *Prev = Head;
    Prev->M.lock();
    Node *Cur = Prev->Next;
    if (Cur)
      Cur->M.lock();
    while (Cur && Cur->Key < Key) {
      Prev->M.unlock();
      Prev = Cur;
      Cur = Cur->Next;
      if (Cur)
        Cur->M.lock();
    }
    bool Inserted;
    if (Cur && Cur->Key == Key) {
      Cur->Value = Value;
      Inserted = false;
    } else {
      Prev->Next = new Node{Key, Value, Cur};
      Inserted = true;
    }
    if (Cur)
      Cur->M.unlock();
    Prev->M.unlock();
    return Inserted;
  }

  /// Removes \p Key; returns true if it was present.
  bool erase(int64_t Key) {
    Node *Prev = Head;
    Prev->M.lock();
    Node *Cur = Prev->Next;
    if (Cur)
      Cur->M.lock();
    while (Cur && Cur->Key < Key) {
      Prev->M.unlock();
      Prev = Cur;
      Cur = Cur->Next;
      if (Cur)
        Cur->M.lock();
    }
    if (!Cur || Cur->Key != Key) {
      if (Cur)
        Cur->M.unlock();
      Prev->M.unlock();
      return false;
    }
    Prev->Next = Cur->Next;
    Cur->M.unlock();
    Prev->M.unlock();
    delete Cur; // exclusive: both its neighbours were locked
    return true;
  }

  /// Looks up \p Key; returns true and fills \p Value if present.
  bool lookup(int64_t Key, int64_t &Value) {
    Node *Prev = Head;
    Prev->M.lock();
    Node *Cur = Prev->Next;
    if (Cur)
      Cur->M.lock();
    while (Cur && Cur->Key < Key) {
      Prev->M.unlock();
      Prev = Cur;
      Cur = Cur->Next;
      if (Cur)
        Cur->M.lock();
    }
    bool Found = Cur && Cur->Key == Key;
    if (Found)
      Value = Cur->Value;
    if (Cur)
      Cur->M.unlock();
    Prev->M.unlock();
    return Found;
  }

  bool contains(int64_t Key) {
    int64_t Ignored;
    return lookup(Key, Ignored);
  }

  /// Quiescent helpers (verification only).
  std::size_t sizeSlow() const {
    std::size_t Count = 0;
    for (Node *N = Head->Next; N; N = N->Next)
      ++Count;
    return Count;
  }

  bool isSortedSlow() const {
    int64_t Last = INT64_MIN;
    for (Node *N = Head->Next; N; N = N->Next) {
      if (N->Key <= Last)
        return false;
      Last = N->Key;
    }
    return true;
  }

private:
  struct Node {
    int64_t Key;
    int64_t Value;
    Node *Next;
    std::mutex M;
  };

  Node *Head; // sentinel with key INT64_MIN
};

} // namespace sync
} // namespace otm

#endif // OTM_SYNC_HANDOVERHANDLIST_H
