//===- support/Backoff.h - Randomized exponential backoff ------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Randomized exponential backoff used by the STM retry loops and the lock
/// baselines. On repeated conflicts a transaction sleeps for an increasing,
/// jittered interval to break symmetric livelock.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_SUPPORT_BACKOFF_H
#define OTM_SUPPORT_BACKOFF_H

#include "support/Random.h"

#include <cstdint>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace otm {

/// A single CPU relax hint, usable inside spin loops.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#else
  std::this_thread::yield();
#endif
}

/// Randomized truncated exponential backoff.
///
/// The first few rounds spin with pause instructions; later rounds yield the
/// CPU so that on oversubscribed machines the conflicting peer can make
/// progress (essential on single-core hosts).
class Backoff {
public:
  explicit Backoff(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : Rng(Seed) {}

  /// Waits for the current round's interval and escalates the next one.
  void pause() {
    uint64_t Limit = Rng.nextBelow(CurrentCap) + 1;
    if (Round < SpinRounds) {
      for (uint64_t I = 0; I < Limit; ++I)
        cpuRelax();
    } else {
      // Oversubscribed or long conflict: let the other thread run.
      std::this_thread::yield();
    }
    ++Round;
    if (CurrentCap < MaxCap)
      CurrentCap *= 2;
  }

  void reset() {
    Round = 0;
    CurrentCap = InitialCap;
  }

  unsigned rounds() const { return Round; }

private:
  static constexpr uint64_t InitialCap = 32;
  static constexpr uint64_t MaxCap = 64 * 1024;
  static constexpr unsigned SpinRounds = 4;

  Xoshiro256 Rng;
  unsigned Round = 0;
  uint64_t CurrentCap = InitialCap;
};

} // namespace otm

#endif // OTM_SUPPORT_BACKOFF_H
