//===- support/ThreadBarrier.h - Reusable thread barrier -------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reusable barrier used by the benchmark drivers to start all worker
/// threads at the same instant, so that per-thread throughput numbers
/// measure the same contention window.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_SUPPORT_THREADBARRIER_H
#define OTM_SUPPORT_THREADBARRIER_H

#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace otm {

class ThreadBarrier {
public:
  explicit ThreadBarrier(std::size_t Count) : Threshold(Count) {}

  /// Blocks until Count threads have arrived; then all are released and the
  /// barrier resets for the next use.
  void arriveAndWait() {
    std::unique_lock<std::mutex> Lock(M);
    std::size_t MyGeneration = Generation;
    if (++Arrived == Threshold) {
      ++Generation;
      Arrived = 0;
      CV.notify_all();
      return;
    }
    CV.wait(Lock, [&] { return Generation != MyGeneration; });
  }

private:
  std::mutex M;
  std::condition_variable CV;
  std::size_t Threshold;
  std::size_t Arrived = 0;
  std::size_t Generation = 0;
};

} // namespace otm

#endif // OTM_SUPPORT_THREADBARRIER_H
