//===- support/ChunkedVector.h - Stable-address append log -----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only vector that allocates fixed-size chunks so that elements
/// never move. The STM update log requires stable addresses: an object's STM
/// word points directly at its update-log entry while the transaction owns
/// it, so the entry must not be relocated by a push_back of a later entry.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_SUPPORT_CHUNKEDVECTOR_H
#define OTM_SUPPORT_CHUNKEDVECTOR_H

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace otm {

template <typename T, std::size_t ChunkSize = 256> class ChunkedVector {
public:
  ChunkedVector() = default;
  ChunkedVector(const ChunkedVector &) = delete;
  ChunkedVector &operator=(const ChunkedVector &) = delete;

  /// Appends a value and returns a pointer that remains valid until clear().
  template <typename... ArgTypes> T *emplaceBack(ArgTypes &&...Args) {
    std::size_t Chunk = Count / ChunkSize;
    std::size_t Offset = Count % ChunkSize;
    if (Chunk == Chunks.size())
      Chunks.push_back(std::make_unique<T[]>(ChunkSize));
    T *Slot = &Chunks[Chunk][Offset];
    *Slot = T(std::forward<ArgTypes>(Args)...);
    ++Count;
    return Slot;
  }

  /// Logically empties the log. Chunk storage is retained for reuse so that
  /// steady-state transactions allocate nothing.
  void clear() { Count = 0; }

  /// Removes the most recently appended entry.
  void popBack() {
    assert(Count > 0 && "popBack on empty log");
    --Count;
  }

  T &back() {
    assert(Count > 0 && "back on empty log");
    return (*this)[Count - 1];
  }

  std::size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  T &operator[](std::size_t Index) {
    assert(Index < Count && "index out of range");
    return Chunks[Index / ChunkSize][Index % ChunkSize];
  }

  const T &operator[](std::size_t Index) const {
    assert(Index < Count && "index out of range");
    return Chunks[Index / ChunkSize][Index % ChunkSize];
  }

  /// Iterates over entries in insertion order.
  template <typename FnType> void forEach(FnType Fn) {
    for (std::size_t I = 0; I < Count; ++I)
      Fn((*this)[I]);
  }

  /// Iterates over entries in reverse insertion order (undo replay order).
  template <typename FnType> void forEachReverse(FnType Fn) {
    for (std::size_t I = Count; I > 0; --I)
      Fn((*this)[I - 1]);
  }

  /// Keeps only the entries for which \p Pred returns true, preserving
  /// insertion order. Used by the GC log-compaction hooks.
  template <typename PredType> std::size_t removeIf(PredType Pred) {
    std::size_t Kept = 0;
    for (std::size_t I = 0; I < Count; ++I) {
      T &Entry = (*this)[I];
      if (Pred(Entry))
        continue;
      if (Kept != I)
        (*this)[Kept] = Entry;
      ++Kept;
    }
    std::size_t Removed = Count - Kept;
    Count = Kept;
    return Removed;
  }

private:
  std::vector<std::unique_ptr<T[]>> Chunks;
  std::size_t Count = 0;
};

} // namespace otm

#endif // OTM_SUPPORT_CHUNKEDVECTOR_H
