//===- support/ChunkedVector.h - Stable-address append log -----*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An append-only vector that allocates fixed-size chunks so that elements
/// never move. The STM update log requires stable addresses: an object's STM
/// word points directly at its update-log entry while the transaction owns
/// it, so the entry must not be relocated by a push_back of a later entry.
///
/// The append path is the hottest loop in the whole runtime (every
/// OpenForRead / LogForUndo ends in one), so it is a pointer bump: the
/// vector caches Cur/End tail pointers into the active chunk and
/// emplaceBack is compare + placement-new + two increments — no division by
/// ChunkSize, no chunk-table indexing, no default-construct-then-assign.
/// Likewise the log walks (validation, commit release, undo replay, GC
/// compaction) iterate chunk-wise over raw entry arrays instead of paying a
/// div/mod per index.
///
/// Storage is raw memory, so element types only need a constructor matching
/// the emplaceBack arguments — move-only and non-default-constructible
/// types work. One refinement exists for the update log's benefit: when T
/// is trivially destructible and move-assignable, entries logically removed
/// by clear()/popBack() stay constructed and are *reused by assignment* on
/// the next append. UpdateEntry needs exactly this: its Owner field is an
/// atomic that a zombie transaction on another thread may still load an
/// instant after release, so re-initializing the slot must be an atomic
/// store (assignment), not a plain placement-new write. Fresh chunk slots
/// have never been published and are placement-new constructed.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_SUPPORT_CHUNKEDVECTOR_H
#define OTM_SUPPORT_CHUNKEDVECTOR_H

#include "support/Compiler.h"

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace otm {

template <typename T, std::size_t ChunkSize = 256> class ChunkedVector {
  /// Slots below the construction high-water mark are kept alive across
  /// clear() and reused by assignment (see file comment). Only sound when
  /// skipping the destructor is a no-op and assignment exists.
  static constexpr bool ReuseByAssign =
      std::is_trivially_destructible_v<T> && std::is_move_assignable_v<T>;

public:
  ChunkedVector() = default;
  ChunkedVector(const ChunkedVector &) = delete;
  ChunkedVector &operator=(const ChunkedVector &) = delete;

  ~ChunkedVector() {
    destroyAll();
    for (T *Chunk : Chunks)
      std::allocator<T>().deallocate(Chunk, ChunkSize);
  }

  /// Appends a value and returns a pointer that remains valid until clear().
  template <typename... ArgTypes> T *emplaceBack(ArgTypes &&...Args) {
    if (OTM_UNLIKELY(Cur == End))
      grow();
    T *Slot = Cur;
    if constexpr (ReuseByAssign) {
      if (OTM_LIKELY(Count < Constructed))
        *Slot = T(std::forward<ArgTypes>(Args)...);
      else {
        ::new (static_cast<void *>(Slot)) T(std::forward<ArgTypes>(Args)...);
        ++Constructed;
      }
    } else {
      ::new (static_cast<void *>(Slot)) T(std::forward<ArgTypes>(Args)...);
    }
    ++Cur;
    ++Count;
    return Slot;
  }

  /// Logically empties the log. Chunk storage is retained for reuse so that
  /// steady-state transactions allocate nothing.
  void clear() {
    destroyAll();
    Count = 0;
    ActiveChunk = 0;
    if (!Chunks.empty()) {
      Cur = Chunks[0];
      End = Cur + ChunkSize;
    }
  }

  /// Removes the most recently appended entry.
  void popBack() {
    assert(Count > 0 && "popBack on empty log");
    if (OTM_UNLIKELY(Cur == Chunks[ActiveChunk])) {
      --ActiveChunk;
      Cur = End = Chunks[ActiveChunk] + ChunkSize;
    }
    --Cur;
    --Count;
    if constexpr (!ReuseByAssign) {
      Cur->~T();
      --Constructed;
    }
  }

  T &back() {
    assert(Count > 0 && "back on empty log");
    // popBack can leave Cur parked at the base of the active chunk (it only
    // re-seats the tail pointers on the *next* pop); the last entry then
    // lives at the end of the previous chunk.
    if (OTM_UNLIKELY(Cur == Chunks[ActiveChunk]))
      return Chunks[ActiveChunk - 1][ChunkSize - 1];
    return *(Cur - 1);
  }

  std::size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  T &operator[](std::size_t Index) {
    assert(Index < Count && "index out of range");
    return Chunks[Index / ChunkSize][Index % ChunkSize];
  }

  const T &operator[](std::size_t Index) const {
    assert(Index < Count && "index out of range");
    return Chunks[Index / ChunkSize][Index % ChunkSize];
  }

  /// Visits (T *Data, std::size_t N) per chunk in insertion order: the raw
  /// contiguous entry arrays the hot log scans iterate over.
  template <typename FnType> void forEachChunkArray(FnType Fn) {
    std::size_t Remaining = Count;
    for (std::size_t C = 0; Remaining != 0; ++C) {
      std::size_t N = Remaining < ChunkSize ? Remaining : ChunkSize;
      Fn(Chunks[C], N);
      Remaining -= N;
    }
  }

  /// Iterates over entries in insertion order (chunk-wise).
  template <typename FnType> void forEach(FnType Fn) {
    forEachChunkArray([&](T *Data, std::size_t N) {
      for (std::size_t I = 0; I < N; ++I)
        Fn(Data[I]);
    });
  }

  /// Iterates over entries in reverse insertion order (undo replay order).
  template <typename FnType> void forEachReverse(FnType Fn) {
    std::size_t Remaining = Count;
    std::size_t C = Remaining / ChunkSize; // chunk holding the tail
    std::size_t Tail = Remaining % ChunkSize;
    if (Tail == 0 && C > 0) {
      --C;
      Tail = ChunkSize;
    }
    for (;;) {
      T *Data = Chunks.empty() ? nullptr : Chunks[C];
      for (std::size_t I = Tail; I > 0; --I)
        Fn(Data[I - 1]);
      if (C == 0)
        return;
      --C;
      Tail = ChunkSize;
    }
  }

  /// Keeps only the entries for which \p Pred returns true, preserving
  /// insertion order. Used by the GC log-compaction hooks.
  template <typename PredType> std::size_t removeIf(PredType Pred) {
    std::size_t Kept = 0;
    for (std::size_t I = 0; I < Count; ++I) {
      T &Entry = (*this)[I];
      if (Pred(Entry))
        continue;
      if (Kept != I)
        (*this)[Kept] = std::move(Entry);
      ++Kept;
    }
    std::size_t Removed = Count - Kept;
    if constexpr (!ReuseByAssign) {
      for (std::size_t I = Kept; I < Count; ++I)
        (*this)[I].~T();
      Constructed = Kept;
    }
    Count = Kept;
    resetTailTo(Kept);
    return Removed;
  }

private:
  OTM_NOINLINE void grow() {
    if (Chunks.empty()) {
      Chunks.push_back(std::allocator<T>().allocate(ChunkSize));
      ActiveChunk = 0;
    } else {
      ++ActiveChunk;
      if (ActiveChunk == Chunks.size())
        Chunks.push_back(std::allocator<T>().allocate(ChunkSize));
    }
    Cur = Chunks[ActiveChunk];
    End = Cur + ChunkSize;
  }

  /// Repositions Cur/End after an out-of-line shrink (removeIf).
  void resetTailTo(std::size_t NewCount) {
    if (Chunks.empty())
      return;
    ActiveChunk = NewCount / ChunkSize;
    std::size_t Offset = NewCount % ChunkSize;
    if (Offset == 0 && ActiveChunk > 0) {
      // Park the tail at the end of the last full chunk; the next append
      // grows into the following (already allocated) chunk.
      --ActiveChunk;
      Offset = ChunkSize;
    }
    Cur = Chunks[ActiveChunk] + Offset;
    End = Chunks[ActiveChunk] + ChunkSize;
  }

  void destroyAll() {
    if constexpr (!ReuseByAssign) {
      forEach([](T &Entry) { Entry.~T(); });
      Constructed = 0;
    }
  }

  std::vector<T *> Chunks;   ///< Stable chunk storage; never relocated.
  T *Cur = nullptr;          ///< Next free slot in the active chunk.
  T *End = nullptr;          ///< One past the active chunk's storage.
  std::size_t ActiveChunk = 0;
  std::size_t Count = 0;
  std::size_t Constructed = 0; ///< Prefix of slots holding live objects.
};

} // namespace otm

#endif // OTM_SUPPORT_CHUNKEDVECTOR_H
