//===- support/Compiler.h - Compiler portability helpers -------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler portability macros used across the otm libraries.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_SUPPORT_COMPILER_H
#define OTM_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define OTM_LIKELY(x) __builtin_expect(!!(x), 1)
#define OTM_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define OTM_NOINLINE __attribute__((noinline))
#define OTM_ALWAYS_INLINE inline __attribute__((always_inline))
#else
#define OTM_LIKELY(x) (x)
#define OTM_UNLIKELY(x) (x)
#define OTM_NOINLINE
#define OTM_ALWAYS_INLINE inline
#endif

namespace otm {

/// Marks a point in the program that is provably unreachable; aborts with a
/// message in all build modes (the STM must never silently corrupt state).
[[noreturn]] inline void unreachable(const char *Msg, const char *File,
                                     int Line) {
  std::fprintf(stderr, "otm: unreachable executed: %s (%s:%d)\n", Msg, File,
               Line);
  std::abort();
}

} // namespace otm

#define OTM_UNREACHABLE(Msg) ::otm::unreachable(Msg, __FILE__, __LINE__)

#endif // OTM_SUPPORT_COMPILER_H
