//===- support/Compiler.h - Compiler portability helpers -------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler portability macros used across the otm libraries.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_SUPPORT_COMPILER_H
#define OTM_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define OTM_LIKELY(x) __builtin_expect(!!(x), 1)
#define OTM_UNLIKELY(x) __builtin_expect(!!(x), 0)
#define OTM_NOINLINE __attribute__((noinline))
#define OTM_ALWAYS_INLINE inline __attribute__((always_inline))
/// Read-prefetch with high temporal locality (validation scans issue this
/// one entry ahead so the next STM word is in cache when compared).
#define OTM_PREFETCH(addr) __builtin_prefetch((addr), 0, 3)
#else
#define OTM_LIKELY(x) (x)
#define OTM_UNLIKELY(x) (x)
#define OTM_NOINLINE
#define OTM_ALWAYS_INLINE inline
#define OTM_PREFETCH(addr) ((void)0)
#endif

/// True under ThreadSanitizer. TSan does not model standalone
/// atomic_thread_fence, so fence-synchronized fast paths keep a
/// sequentially-consistent-atomic twin for instrumented builds.
#if defined(__SANITIZE_THREAD__)
#define OTM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OTM_TSAN 1
#endif
#endif
#ifndef OTM_TSAN
#define OTM_TSAN 0
#endif

namespace otm {

/// Marks a point in the program that is provably unreachable; aborts with a
/// message in all build modes (the STM must never silently corrupt state).
[[noreturn]] inline void unreachable(const char *Msg, const char *File,
                                     int Line) {
  std::fprintf(stderr, "otm: unreachable executed: %s (%s:%d)\n", Msg, File,
               Line);
  std::abort();
}

} // namespace otm

#define OTM_UNREACHABLE(Msg) ::otm::unreachable(Msg, __FILE__, __LINE__)

#endif // OTM_SUPPORT_COMPILER_H
