//===- support/TxPool.h - Per-thread transactional object pool -*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-thread size-class pool allocator for transactional objects.
///
/// Abort-heavy workloads churn objects: every aborted attempt's allocInTx
/// objects are retired through the epoch reclaimer and a fresh attempt
/// allocates replacements, which round-trips malloc once per object per
/// retry. TxPool turns that round trip into an O(1) free-list pop/push.
///
/// Layout: each block is [16-byte header | payload]. The header names the
/// owning pool and the block's size class, so deallocate() works from any
/// thread — epoch-retirement deleters run on whichever thread triggers a
/// collect(). Frees by the owning thread push onto a plain per-class free
/// list; frees by other threads push onto a lock-free Treiber stack that
/// the owner drains wholesale (exchange, so there is no ABA window) when
/// its local list runs dry. Blocks larger than the biggest size class fall
/// through to ::operator new with a null-owner header.
///
/// Pools are per-thread and intentionally leaked, exactly like TxManager:
/// a deleter deferred by the epoch reclaimer may run after the allocating
/// thread has exited, and must still find the header's owner pool mapped.
/// Slabs therefore live for the process lifetime and blocks recycle
/// forever; this mirrors the paper's reliance on a GC'd heap, where
/// transactional allocation is a bump pointer in the nursery.
///
/// OTM_POOL=0 disables pooling (every request takes the ::operator new
/// fallback path); the header scheme keeps deallocate() uniform so the
/// switch needs no cooperation from call sites.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_SUPPORT_TXPOOL_H
#define OTM_SUPPORT_TXPOOL_H

#include "support/Compiler.h"

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace otm {
namespace support {

class TxPool {
public:
  /// Allocates \p Size bytes from the calling thread's pool (created
  /// lazily). The returned block is at least 16-byte aligned.
  static void *allocate(std::size_t Size) {
    if (OTM_UNLIKELY(!enabled()))
      return fallbackAlloc(Size);
    unsigned Class = classFor(Size);
    if (OTM_UNLIKELY(Class >= NumClasses))
      return fallbackAlloc(Size);
    return threadPool().allocateClass(Class);
  }

  /// Returns \p Payload (from allocate()) to its owning pool; callable
  /// from any thread.
  static void deallocate(void *Payload) {
    Header *H = headerOf(Payload);
    TxPool *Owner = H->Owner;
    if (OTM_UNLIKELY(Owner == nullptr)) {
      ::operator delete(static_cast<void *>(H));
      return;
    }
    FreeBlock *B = static_cast<FreeBlock *>(Payload);
    if (OTM_LIKELY(Owner == tlsPool())) {
      ClassState &CS = Owner->Classes[H->ClassIdx];
      B->Next = CS.Local;
      CS.Local = B;
      ++Owner->Stats.LocalFrees;
      return;
    }
    Owner->remoteFree(H->ClassIdx, B);
  }

  /// True unless OTM_POOL=0 disabled pooling at process start.
  static bool enabled() {
    static const bool On = [] {
      const char *E = std::getenv("OTM_POOL");
      return !(E && E[0] == '0');
    }();
    return On;
  }

  /// Pool traffic counters (testing/diagnostics only; never part of the
  /// reproducible BENCH count tables — reuse depends on epoch timing).
  struct PoolStats {
    uint64_t FreeListHits = 0; ///< served from the local free list
    uint64_t RemoteDrains = 0; ///< local list dry, remote stack had blocks
    uint64_t SlabRefills = 0;  ///< carved a fresh slab
    uint64_t LocalFrees = 0;
  };
  PoolStats &statsForTesting() { return Stats; }
  /// Frees pushed at this pool by other threads (atomic: foreign writers).
  uint64_t remoteFreesForTesting() const {
    return RemoteFreeCount.load(std::memory_order_relaxed);
  }

  /// The calling thread's pool (created lazily, leaked at thread exit).
  static TxPool &threadPool() {
    TxPool *&P = tlsPool();
    if (OTM_UNLIKELY(P == nullptr))
      P = new TxPool();
    return *P;
  }

  /// Payload size of size class \p Class.
  static constexpr std::size_t classSize(unsigned Class) {
    return MinClassSize << Class;
  }

  static constexpr unsigned numClasses() { return NumClasses; }

  /// Smallest class index whose payload fits \p Size; NumClasses if the
  /// request is oversize.
  static unsigned classFor(std::size_t Size) {
    if (Size <= MinClassSize)
      return 0;
    unsigned Bits = 64 - static_cast<unsigned>(
                             __builtin_clzll(static_cast<uint64_t>(Size - 1)));
    return Bits - MinClassBits;
  }

private:
  static constexpr unsigned MinClassBits = 5; // 32-byte minimum payload
  static constexpr std::size_t MinClassSize = std::size_t{1} << MinClassBits;
  static constexpr unsigned NumClasses = 6; // 32..1024 bytes
  static constexpr std::size_t SlabBlocks = 64;

  struct Header {
    TxPool *Owner;     ///< null => ::operator new fallback block
    uint64_t ClassIdx; ///< valid when Owner != null
  };
  static_assert(sizeof(Header) == 16, "payloads must stay 16-aligned");

  struct FreeBlock {
    FreeBlock *Next;
  };

  struct ClassState {
    FreeBlock *Local = nullptr;              ///< owner-thread free list
    std::atomic<FreeBlock *> Remote{nullptr}; ///< cross-thread free stack
  };

  TxPool() = default;

  static Header *headerOf(void *Payload) {
    return reinterpret_cast<Header *>(static_cast<char *>(Payload) -
                                      sizeof(Header));
  }

  static TxPool *&tlsPool() {
    static thread_local TxPool *P = nullptr;
    return P;
  }

  static void *fallbackAlloc(std::size_t Size) {
    void *Raw = ::operator new(sizeof(Header) + Size);
    Header *H = static_cast<Header *>(Raw);
    H->Owner = nullptr;
    H->ClassIdx = 0;
    return H + 1;
  }

  void *allocateClass(unsigned Class) {
    ClassState &CS = Classes[Class];
    FreeBlock *B = CS.Local;
    if (OTM_LIKELY(B != nullptr)) {
      CS.Local = B->Next;
      ++Stats.FreeListHits;
      return B;
    }
    return refill(Class);
  }

  OTM_NOINLINE void *refill(unsigned Class) {
    ClassState &CS = Classes[Class];
    // Drain the remote-free stack wholesale; acquire pairs with the
    // releasing pushes so the freeing threads' final writes (destructors)
    // happen-before this thread reconstructs over the payloads.
    if (FreeBlock *R = CS.Remote.exchange(nullptr, std::memory_order_acquire)) {
      CS.Local = R->Next;
      ++Stats.RemoteDrains;
      return R;
    }
    // Carve a fresh slab. Headers are written once here and never change:
    // free-list linkage lives in the payload bytes.
    std::size_t BlockSize = sizeof(Header) + classSize(Class);
    char *Slab = static_cast<char *>(::operator new(BlockSize * SlabBlocks));
    FreeBlock *ListHead = nullptr;
    for (std::size_t I = SlabBlocks; I-- > 1;) {
      Header *H = reinterpret_cast<Header *>(Slab + I * BlockSize);
      H->Owner = this;
      H->ClassIdx = Class;
      FreeBlock *B = reinterpret_cast<FreeBlock *>(H + 1);
      B->Next = ListHead;
      ListHead = B;
    }
    CS.Local = ListHead;
    ++Stats.SlabRefills;
    Header *H = reinterpret_cast<Header *>(Slab);
    H->Owner = this;
    H->ClassIdx = Class;
    return H + 1;
  }

  void remoteFree(uint64_t Class, FreeBlock *B) {
    ClassState &CS = Classes[Class];
    FreeBlock *Head = CS.Remote.load(std::memory_order_relaxed);
    do {
      B->Next = Head;
    } while (!CS.Remote.compare_exchange_weak(
        Head, B, std::memory_order_release, std::memory_order_relaxed));
    RemoteFreeCount.fetch_add(1, std::memory_order_relaxed);
  }

  ClassState Classes[NumClasses];
  PoolStats Stats;
  std::atomic<uint64_t> RemoteFreeCount{0};
};

} // namespace support
} // namespace otm

#endif // OTM_SUPPORT_TXPOOL_H
