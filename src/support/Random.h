//===- support/Random.h - Deterministic fast PRNGs -------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generators used by the benchmarks and
/// property tests. Both generators are seedable so every experiment is
/// reproducible run to run.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_SUPPORT_RANDOM_H
#define OTM_SUPPORT_RANDOM_H

#include <cassert>
#include <cmath>
#include <cstdint>

namespace otm {

/// SplitMix64: used to expand a single seed into well-distributed state.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256**: the workhorse generator for workload drivers.
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (uint64_t &Word : State)
      Word = SM.next();
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniformly distributed value in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    // Multiplicative range reduction; bias is negligible for 64-bit input.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns true with probability Percent/100.
  bool nextPercent(unsigned Percent) { return nextBelow(100) < Percent; }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

/// Zipf-distributed ranks over [0, N): rank 0 is the hottest key. The
/// YCSB-style closed-form inverse CDF (Gray et al., "Quickly Generating
/// Billion-Record Synthetic Databases") — one pow() per draw after an O(N)
/// zeta precomputation, deterministic for a given seed. Skew S in (0, 1);
/// S ~ 0.99 is the standard "hot-key" web workload.
class ZipfGenerator {
public:
  ZipfGenerator(uint64_t N, double S, uint64_t Seed) : N(N), Theta(S), Rng(Seed) {
    assert(N > 0 && S > 0.0 && S < 1.0 && "unsupported Zipf parameters");
    double Zeta2 = 0.0;
    for (uint64_t I = 1; I <= (N < 2 ? N : 2); ++I)
      Zeta2 += 1.0 / pow_(double(I), Theta);
    ZetaN = 0.0;
    for (uint64_t I = 1; I <= N; ++I)
      ZetaN += 1.0 / pow_(double(I), Theta);
    Alpha = 1.0 / (1.0 - Theta);
    Eta = (1.0 - pow_(2.0 / double(N), 1.0 - Theta)) / (1.0 - Zeta2 / ZetaN);
  }

  uint64_t next() {
    double U = Rng.nextDouble();
    double Uz = U * ZetaN;
    if (Uz < 1.0)
      return 0;
    if (Uz < 1.0 + pow_(0.5, Theta))
      return 1;
    uint64_t Rank = static_cast<uint64_t>(
        double(N) * pow_(Eta * U - Eta + 1.0, Alpha));
    return Rank < N ? Rank : N - 1;
  }

private:
  static double pow_(double Base, double Exp) { return std::pow(Base, Exp); }

  uint64_t N;
  double Theta;
  double ZetaN;
  double Alpha;
  double Eta;
  Xoshiro256 Rng;
};

} // namespace otm

#endif // OTM_SUPPORT_RANDOM_H
