//===- support/Random.h - Deterministic fast PRNGs -------------*- C++ -*-===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random number generators used by the benchmarks and
/// property tests. Both generators are seedable so every experiment is
/// reproducible run to run.
///
//===----------------------------------------------------------------------===//

#ifndef OTM_SUPPORT_RANDOM_H
#define OTM_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace otm {

/// SplitMix64: used to expand a single seed into well-distributed state.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// Xoshiro256**: the workhorse generator for workload drivers.
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (uint64_t &Word : State)
      Word = SM.next();
  }

  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniformly distributed value in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "bound must be positive");
    // Multiplicative range reduction; bias is negligible for 64-bit input.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns true with probability Percent/100.
  bool nextPercent(unsigned Percent) { return nextBelow(100) < Percent; }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace otm

#endif // OTM_SUPPORT_RANDOM_H
