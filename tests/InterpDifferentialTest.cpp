//===- tests/InterpDifferentialTest.cpp - threaded vs switch dispatch -----===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Differential oracle for the interpreter's two execution loops: every
// benchmark program runs through the computed-goto threaded loop and the
// portable switch loop, in every TxMode, with naive and optimized
// lowering, and the results must agree bit-for-bit — return value, trap
// state, printed values, and all eleven dynamic counters. The forced-retry
// cases drive the ObjStm snapshot/restore path deterministically.
//
//===----------------------------------------------------------------------===//

#include "bench/TmirPrograms.h"
#include "interp/Interp.h"
#include "passes/Pipeline.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <gtest/gtest.h>

using namespace otm;
using namespace otm::bench;
using namespace otm::interp;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

struct EngineSample {
  Interpreter::RunResult R;
  std::vector<int64_t> Printed;
  uint64_t Counters[11];
};

EngineSample runEngine(const char *Source, const char *Entry, long long Arg,
                       Interpreter::Dispatch Loop, Interpreter::TxMode Mode,
                       const OptConfig &Config, uint32_t ForceRetries) {
  Module M = parseModuleOrDie(Source);
  verifyModuleOrDie(M);
  lowerAndOptimize(M, Config);

  Interpreter::Options O;
  O.Mode = Mode;
  O.Loop = Loop;
  O.ForceRetries = ForceRetries;
  Interpreter I(M, O);

  EngineSample S;
  S.R = I.run(Entry, {Arg});
  S.Printed = I.printedValues();
  const DynCounts &C = I.counts();
  uint64_t Vals[11] = {
      C.Instrs.load(),     C.OpenRead.load(),  C.OpenUpdate.load(),
      C.UndoField.load(),  C.UndoElem.load(),  C.FieldReads.load(),
      C.FieldWrites.load(), C.Calls.load(),    C.TxStarted.load(),
      C.TxCommitted.load(), C.TxRetried.load()};
  std::copy(std::begin(Vals), std::end(Vals), std::begin(S.Counters));
  return S;
}

const char *const CounterNames[11] = {
    "Instrs",     "OpenRead",  "OpenUpdate", "UndoField",
    "UndoElem",   "FieldReads", "FieldWrites", "Calls",
    "TxStarted",  "TxCommitted", "TxRetried"};

void expectSameBehavior(const char *Source, const char *Entry, long long Arg,
                        Interpreter::TxMode Mode, const OptConfig &Config,
                        uint32_t ForceRetries, const char *What) {
  EngineSample T = runEngine(Source, Entry, Arg, Interpreter::Dispatch::Threaded,
                             Mode, Config, ForceRetries);
  EngineSample S = runEngine(Source, Entry, Arg, Interpreter::Dispatch::Switch,
                             Mode, Config, ForceRetries);
  EXPECT_EQ(T.R.Trapped, S.R.Trapped) << What;
  EXPECT_EQ(T.R.Error, S.R.Error) << What;
  EXPECT_EQ(T.R.Value, S.R.Value) << What;
  EXPECT_EQ(T.Printed, S.Printed) << What;
  for (int K = 0; K < 11; ++K)
    EXPECT_EQ(T.Counters[K], S.Counters[K])
        << What << ": counter " << CounterNames[K];
}

const Interpreter::TxMode AllModes[] = {Interpreter::TxMode::IgnoreAtomic,
                                        Interpreter::TxMode::GlobalLock,
                                        Interpreter::TxMode::ObjStm};

const char *modeName(Interpreter::TxMode Mode) {
  switch (Mode) {
  case Interpreter::TxMode::IgnoreAtomic:
    return "ignore-atomic";
  case Interpreter::TxMode::GlobalLock:
    return "global-lock";
  case Interpreter::TxMode::ObjStm:
    return "obj-stm";
  }
  return "?";
}

} // namespace

TEST(InterpDifferential, BenchProgramsAllModes) {
  if (!Interpreter::threadedDispatchAvailable())
    GTEST_SKIP() << "threaded dispatch not compiled in";
  unsigned NumPrograms = 0;
  const TmirProgram *Programs = tmirPrograms(NumPrograms);
  for (unsigned P = 0; P < NumPrograms; ++P)
    for (Interpreter::TxMode Mode : AllModes)
      for (bool Optimized : {false, true}) {
        std::string What = std::string(Programs[P].Name) + "/" +
                           modeName(Mode) +
                           (Optimized ? "/optimized" : "/naive");
        expectSameBehavior(Programs[P].Source, Programs[P].Entry,
                           Programs[P].Arg, Mode,
                           Optimized ? OptConfig::all() : OptConfig::none(),
                           0, What.c_str());
      }
}

TEST(InterpDifferential, BenchProgramsObjStmForcedRetries) {
  if (!Interpreter::threadedDispatchAvailable())
    GTEST_SKIP() << "threaded dispatch not compiled in";
  unsigned NumPrograms = 0;
  const TmirProgram *Programs = tmirPrograms(NumPrograms);
  for (unsigned P = 0; P < NumPrograms; ++P)
    for (bool Optimized : {false, true}) {
      std::string What = std::string(Programs[P].Name) +
                         (Optimized ? "/optimized" : "/naive") +
                         "/force-retries";
      expectSameBehavior(Programs[P].Source, Programs[P].Entry,
                         Programs[P].Arg, Interpreter::TxMode::ObjStm,
                         Optimized ? OptConfig::all() : OptConfig::none(), 2,
                         What.c_str());
    }
}

TEST(InterpDifferential, ForcedRetriesActuallyRetry) {
  // Sanity-check the hook itself: with ForceRetries=2 every top-level
  // region takes exactly two extra attempts, and the result is unchanged.
  unsigned NumPrograms = 0;
  const TmirProgram *Programs = tmirPrograms(NumPrograms);
  const TmirProgram &P = Programs[0]; // list-sum: one top-level region
  EngineSample S =
      runEngine(P.Source, P.Entry, P.Arg, Interpreter::Dispatch::Auto,
                Interpreter::TxMode::ObjStm, OptConfig::none(), 2);
  ASSERT_FALSE(S.R.Trapped) << S.R.Error;
  EXPECT_EQ(S.R.Value, P.Expected);
  EXPECT_EQ(S.Counters[10], 2u); // TxRetried
  EXPECT_EQ(S.Counters[9], 1u);  // TxCommitted
  EXPECT_EQ(S.Counters[8], 3u);  // TxStarted: 1 + 2 retried attempts
}

TEST(InterpDifferential, PrintsAndTrapsMatch) {
  if (!Interpreter::threadedDispatchAvailable())
    GTEST_SKIP() << "threaded dispatch not compiled in";
  static const char *PrintProgram = R"(
func main(n: i64): i64 {
  var i: i64
entry:
  storelocal i, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  %sq = mul %i, %i
  print %sq
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  %r = loadlocal i
  ret %r
}
)";
  for (Interpreter::TxMode Mode : AllModes)
    expectSameBehavior(PrintProgram, "main", 10, Mode, OptConfig::none(), 0,
                       "print-squares");

  static const char *TrapProgram = R"(
func main(n: i64): i64 {
entry:
  %n = loadlocal n
  %z = sub %n, %n
  %r = div %n, %z
  ret %r
}
)";
  for (Interpreter::TxMode Mode : AllModes)
    expectSameBehavior(TrapProgram, "main", 7, Mode, OptConfig::none(), 0,
                       "div-by-zero-trap");
}
