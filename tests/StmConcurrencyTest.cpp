//===- tests/StmConcurrencyTest.cpp - Multi-threaded STM tests -----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Concurrency properties of the direct-update STM: lost-update freedom,
/// invariant preservation across committed transactions (serializability
/// witnesses), conflict-abort-retry progress, and mixed reader/writer
/// stress. The host may be single-core; the OS scheduler still interleaves
/// transactions preemptively, which is exactly the hostile case for a
/// direct-update STM (ownership held across preemption).
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"

#include "stm/TxGlobal.h"
#include "support/Random.h"
#include "support/ThreadBarrier.h"
#include "txn/CmStats.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::stm;

namespace {

struct Counter : TxObject {
  Field<int64_t> Value;
};

struct Account : TxObject {
  Field<int64_t> Balance;
};

struct ConfigGuard {
  ConfigGuard() : Saved(TxManager::config()) {}
  ~ConfigGuard() { TxManager::config() = Saved; }
  TxConfig Saved;
};

} // namespace

TEST(StmConcurrency, NoLostUpdates) {
  constexpr int NumThreads = 4;
  constexpr int IncrementsPerThread = 2000;
  Counter C;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      Barrier.arriveAndWait();
      for (int I = 0; I < IncrementsPerThread; ++I)
        Stm::atomic([&](TxManager &Tx) {
          int64_t V = Tx.read(&C, &Counter::Value);
          Tx.write(&C, &Counter::Value, V + 1);
        });
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.Value.load(), NumThreads * IncrementsPerThread);
}

TEST(StmConcurrency, TransfersPreserveTotalBalance) {
  constexpr int NumAccounts = 32;
  constexpr int NumThreads = 4;
  constexpr int TransfersPerThread = 3000;
  std::vector<Account> Accounts(NumAccounts);
  for (Account &A : Accounts)
    A.Balance.store(1000);

  ThreadBarrier Barrier(NumThreads);
  std::atomic<int64_t> ObservedBroken{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(1000 + T);
      Barrier.arriveAndWait();
      for (int I = 0; I < TransfersPerThread; ++I) {
        std::size_t From = Rng.nextBelow(NumAccounts);
        std::size_t To = Rng.nextBelow(NumAccounts);
        if (From == To)
          continue;
        int64_t Amount = static_cast<int64_t>(Rng.nextBelow(10));
        if (Rng.nextPercent(20)) {
          // Auditor: committed snapshots must always total the same.
          int64_t Total = 0;
          Stm::atomic([&](TxManager &Tx) {
            Total = 0;
            for (Account &A : Accounts)
              Total += Tx.read(&A, &Account::Balance);
          });
          if (Total != NumAccounts * 1000)
            ++ObservedBroken;
          continue;
        }
        Stm::atomic([&](TxManager &Tx) {
          int64_t F = Tx.read(&Accounts[From], &Account::Balance);
          int64_t G = Tx.read(&Accounts[To], &Account::Balance);
          Tx.write(&Accounts[From], &Account::Balance, F - Amount);
          Tx.write(&Accounts[To], &Account::Balance, G + Amount);
        });
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(ObservedBroken.load(), 0)
      << "a committed read-only transaction saw a broken invariant";
  int64_t Total = 0;
  for (Account &A : Accounts)
    Total += A.Balance.load();
  EXPECT_EQ(Total, NumAccounts * 1000);
}

TEST(StmConcurrency, WriterWriterConflictsAllCommitEventually) {
  // All threads hammer the same two objects in opposite orders — the
  // classic deadlock-shaped workload; conflict aborts + randomized backoff
  // must guarantee global progress.
  Counter A, B;
  constexpr int NumThreads = 4;
  constexpr int OpsPerThread = 1000;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (int I = 0; I < OpsPerThread; ++I)
        Stm::atomic([&](TxManager &Tx) {
          Counter *First = (T % 2 == 0) ? &A : &B;
          Counter *Second = (T % 2 == 0) ? &B : &A;
          Tx.write(First, &Counter::Value, Tx.read(First, &Counter::Value) + 1);
          Tx.write(Second, &Counter::Value,
                   Tx.read(Second, &Counter::Value) + 1);
        });
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(A.Value.load(), NumThreads * OpsPerThread);
  EXPECT_EQ(B.Value.load(), NumThreads * OpsPerThread);
}

TEST(StmConcurrency, InvariantPairNeverObservedBrokenByCommittedReaders) {
  // Writers keep X + Y == 0; committed readers must never observe
  // otherwise even though in-place updates make intermediate states
  // visible to running (doomed) transactions.
  TxGlobal<int64_t> X(0), Y(0);
  std::atomic<bool> Stop{false};
  std::atomic<int> Violations{0};

  std::thread Writer([&] {
    Xoshiro256 Rng(7);
    for (int I = 0; I < 20000; ++I) {
      int64_t Delta = static_cast<int64_t>(Rng.nextBelow(100)) - 50;
      Stm::atomic([&](TxManager &Tx) {
        X.set(Tx, X.get(Tx) + Delta);
        Y.set(Tx, Y.get(Tx) - Delta);
      });
    }
    Stop.store(true, std::memory_order_release);
  });

  std::thread ReaderThread([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      int64_t SeenX = 0, SeenY = 0;
      Stm::atomic([&](TxManager &Tx) {
        SeenX = X.get(Tx);
        SeenY = Y.get(Tx);
      });
      if (SeenX + SeenY != 0)
        ++Violations;
    }
  });

  Writer.join();
  ReaderThread.join();
  EXPECT_EQ(Violations.load(), 0);
  EXPECT_EQ(X.unsafeGet() + Y.unsafeGet(), 0);
}

TEST(StmConcurrency, LongOwnershipForcesConflictAborts) {
  // One thread holds update ownership while another tries to write: the
  // attacker must abort on conflict (not corrupt, not hang) and succeed
  // after release.
  Counter C;
  ThreadBarrier Barrier(2);
  Stm::resetGlobalStats();

  std::thread Holder([&] {
    TxManager &Tx = TxManager::current();
    Tx.begin();
    Tx.openForUpdate(&C);
    Barrier.arriveAndWait(); // attacker starts now
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Tx.logUndo(&C.Value);
    C.Value.store(100);
    ASSERT_TRUE(Tx.tryCommit());
    Tx.flushStats();
  });

  std::thread Attacker([&] {
    Barrier.arriveAndWait();
    Stm::atomic([&](TxManager &Tx) {
      Tx.write(&C, &Counter::Value, Tx.read(&C, &Counter::Value) + 1);
    });
    TxManager::current().flushStats();
  });

  Holder.join();
  Attacker.join();
  EXPECT_EQ(C.Value.load(), 101);
  TxStats G = Stm::globalStats();
  EXPECT_GE(G.AbortsOnConflict, 1u)
      << "attacker should have aborted at least once while owner held C";
}

TEST(StmConcurrency, StarvedReaderCommitsThroughSerialFallback) {
  // Starvation regression for the serial-irrevocable fallback: one long
  // read-mostly transaction scans a pool of counters (yielding between
  // reads, so writers commit mid-scan) while writer threads continuously
  // invalidate its read set. With optimistic validation alone the scan
  // livelocks; the retry budget must escalate it to serial mode, where the
  // writers drain and the scan commits.
  constexpr int NumCounters = 64;
  constexpr int NumWriters = 3;
  ConfigGuard Guard;
  TxManager::config().SerialFallbackAfter = 8; // escalate quickly
  std::vector<Counter> Counters(NumCounters);
  std::atomic<bool> Done{false};
  txn::CmStatsSnapshot Before = txn::CmStats::instance().snapshot();

  std::vector<std::thread> Writers;
  for (int W = 0; W < NumWriters; ++W)
    Writers.emplace_back([&, W] {
      Xoshiro256 Rng(4200 + W);
      while (!Done.load(std::memory_order_acquire))
        Stm::atomic([&](TxManager &Tx) {
          Counter &C = Counters[Rng.nextBelow(NumCounters)];
          Tx.write(&C, &Counter::Value, Tx.read(&C, &Counter::Value) + 1);
        });
    });

  int64_t Sum = -1;
  unsigned Attempts = 0;
  std::thread Reader([&] {
    Stm::atomic([&](TxManager &Tx) {
      ++Attempts;
      int64_t S = 0;
      for (Counter &C : Counters) {
        S += Tx.read(&C, &Counter::Value);
        std::this_thread::yield(); // let writers commit mid-scan
      }
      Sum = S;
    });
    Done.store(true, std::memory_order_release);
  });

  Reader.join();
  for (std::thread &W : Writers)
    W.join();

  txn::CmStatsSnapshot After = txn::CmStats::instance().snapshot();
  EXPECT_GE(Sum, 0);
  EXPECT_GT(Attempts, TxManager::config().SerialFallbackAfter)
      << "scan committed optimistically; the workload no longer starves it";
  EXPECT_GE(After.FallbackEntries - Before.FallbackEntries, 1u)
      << "the starving scan never escalated to serial-irrevocable mode";
  EXPECT_GE(After.FallbackCommits - Before.FallbackCommits, 1u);
}

TEST(StmConcurrency, ValidationCatchesInterleavedCommit) {
  // Reader opens A, then a writer commits to A before the reader commits:
  // the reader must fail validation and retry with the new value.
  Counter A;
  ThreadBarrier Sync(2);
  std::atomic<int> Attempts{0};
  int64_t FinalRead = -1;

  std::thread ReaderThread([&] {
    Stm::atomic([&](TxManager &Tx) {
      int Attempt = ++Attempts;
      FinalRead = Tx.read(&A, &Counter::Value);
      if (Attempt == 1) {
        Sync.arriveAndWait(); // writer commits now
        Sync.arriveAndWait();
      }
    });
  });

  std::thread WriterThread([&] {
    Sync.arriveAndWait();
    Stm::atomic([&](TxManager &Tx) {
      Tx.write(&A, &Counter::Value, int64_t{42});
    });
    Sync.arriveAndWait();
  });

  ReaderThread.join();
  WriterThread.join();
  EXPECT_GE(Attempts.load(), 2) << "first attempt must fail validation";
  EXPECT_EQ(FinalRead, 42);
}
