//===- tests/TelemetryTest.cpp - Time-series sampler tests ----------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the continuous telemetry pipeline: sampler start/stop lifecycle
// with the flush-on-exit record, the otm-telemetry-v1 JSONL schema, the
// clamped-delta guarantee across a concurrent stats reset, and the
// Prometheus text exposition. The sampler thread is started and joined
// inside the tests, so running this binary under TSan/LSan exercises the
// shutdown path.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/Telemetry.h"
#include "obs/TraceRing.h" // OTM_OBS_ENABLE
#include "stm/Stm.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::obs;

namespace {

/// Reads every line of \p Path as a parsed JSON record.
std::vector<JsonValue> readJsonl(const std::string &Path) {
  std::vector<JsonValue> Records;
  std::ifstream In(Path);
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::string Error;
    JsonValue V = JsonValue::parse(Line, &Error);
    EXPECT_TRUE(Error.empty()) << "bad JSONL line: " << Line << ": " << Error;
    Records.push_back(std::move(V));
  }
  return Records;
}

std::string tempJsonlPath(const char *Tag) {
  std::ostringstream Name;
  Name << "telemetry_test_" << Tag << ".jsonl";
  return Name.str();
}

TEST(TelemetryTest, ClampedDelta) {
  EXPECT_EQ(Telemetry::clampedDelta(10, 4), 6u);
  EXPECT_EQ(Telemetry::clampedDelta(4, 4), 0u);
  // A counter that shrank was reset underneath us: the new value IS the
  // delta since the restart, never an underflowed giant.
  EXPECT_EQ(Telemetry::clampedDelta(3, 1000), 3u);
  EXPECT_EQ(Telemetry::clampedDelta(0, ~uint64_t(0)), 0u);
}

#if OTM_OBS_ENABLE

TEST(TelemetryTest, SampleOnceProducesSchemaRecord) {
  JsonValue Rec = Telemetry::instance().sampleOnce();
  ASSERT_NE(Rec.get("schema"), nullptr);
  EXPECT_EQ(Rec.get("schema")->asString(), TelemetrySchema);
  EXPECT_NE(Rec.get("seq"), nullptr);
  EXPECT_NE(Rec.get("t_us"), nullptr);
  EXPECT_NE(Rec.get("interval_ms"), nullptr);
  ASSERT_NE(Rec.get("totals"), nullptr);
  ASSERT_NE(Rec.get("deltas"), nullptr);
  // The stm library registered its sources during static init.
  EXPECT_NE(Rec.get("totals")->get("stm"), nullptr);
  EXPECT_NE(Rec.get("totals")->get("txn_cm"), nullptr);
  EXPECT_NE(Rec.get("totals")->get("abort_sites"), nullptr);
  EXPECT_NE(Rec.get("totals")->get("phases"), nullptr);
}

TEST(TelemetryTest, StartStopEmitsAtLeastOneRecord) {
  Telemetry &T = Telemetry::instance();
  ASSERT_FALSE(T.running());
  std::string Path = tempJsonlPath("lifecycle");
  // A long interval relative to the test: the only guaranteed record is
  // the flush-on-exit one, which is exactly what this test pins down.
  ASSERT_TRUE(T.start(/*IntervalMs=*/10000, Path));
  EXPECT_TRUE(T.running());
  EXPECT_FALSE(T.start(10000, Path)) << "double start must refuse";
  // Commit a little work so the totals move while the sampler is up.
  stm::Stm::atomic([](stm::TxManager &) {});
  T.stop();
  EXPECT_FALSE(T.running());
  T.stop(); // idempotent

  std::vector<JsonValue> Records = readJsonl(Path);
  ASSERT_GE(Records.size(), 1u) << "stop() must flush a final record";
  for (std::size_t I = 0; I < Records.size(); ++I) {
    ASSERT_NE(Records[I].get("schema"), nullptr);
    EXPECT_EQ(Records[I].get("schema")->asString(), TelemetrySchema);
    ASSERT_NE(Records[I].get("seq"), nullptr);
    EXPECT_EQ(Records[I].get("seq")->asUInt(), I) << "seq must be contiguous";
  }
  std::remove(Path.c_str());
}

TEST(TelemetryTest, RestartBeginsNewSequence) {
  Telemetry &T = Telemetry::instance();
  std::string Path = tempJsonlPath("restart");
  ASSERT_TRUE(T.start(10000, Path));
  T.stop();
  ASSERT_TRUE(T.start(10000, Path)); // same sink, fresh stream
  T.stop();
  std::vector<JsonValue> Records = readJsonl(Path);
  ASSERT_GE(Records.size(), 1u);
  EXPECT_EQ(Records[0].get("seq")->asUInt(), 0u)
      << "restart must rewind seq (the file was rewritten)";
  std::remove(Path.c_str());
}

TEST(TelemetryTest, DeltasClampAcrossReset) {
  Telemetry &T = Telemetry::instance();
  // A controllable counter standing in for GlobalTxStats: the sampler must
  // survive the value shrinking between two samples (a concurrent reset).
  static uint64_t Counter;
  Counter = 100;
  T.registerSource("clamp_test", [] {
    JsonValue V = JsonValue::object();
    V.set("events", Counter);
    return V;
  });
  (void)T.sampleOnce(); // prev = 100
  Counter = 130;
  JsonValue Up = T.sampleOnce();
  EXPECT_EQ(Up.get("deltas")->get("clamp_test")->get("events")->asUInt(),
            30u);
  Counter = 7; // reset happened, then 7 new events
  JsonValue Down = T.sampleOnce();
  EXPECT_EQ(Down.get("deltas")->get("clamp_test")->get("events")->asUInt(),
            7u)
      << "shrinking counter must clamp, not underflow";
  // Deregistration is not needed: replacing with an empty-object source
  // keeps later tests' records clean.
  T.registerSource("clamp_test", [] { return JsonValue::object(); });
}

TEST(TelemetryTest, StmDeltasTrackCommits) {
  Telemetry &T = Telemetry::instance();
  (void)T.sampleOnce(); // baseline
  constexpr int N = 32;
  for (int I = 0; I < N; ++I)
    stm::Stm::atomic([](stm::TxManager &) {});
  stm::TxManager::current().flushStats(); // deltas read the global aggregate
  JsonValue Rec = T.sampleOnce();
  const JsonValue *Commits = Rec.get("deltas")->get("stm")->get("Commits");
  ASSERT_NE(Commits, nullptr);
  EXPECT_GE(Commits->asUInt(), static_cast<uint64_t>(N));
}

TEST(TelemetryTest, PrometheusTextExposition) {
  JsonValue Totals = JsonValue::object();
  JsonValue Stm = JsonValue::object();
  Stm.set("Commits", uint64_t{42});
  JsonValue Latency = JsonValue::object();
  Latency.set("p99_cycles", 1234.5);
  Stm.set("commit_latency", std::move(Latency));
  Totals.set("stm", std::move(Stm));

  std::string Text = Telemetry::prometheusText(Totals);
  EXPECT_NE(Text.find("# TYPE otm_stm_Commits gauge"), std::string::npos);
  EXPECT_NE(Text.find("otm_stm_Commits 42"), std::string::npos);
  EXPECT_NE(Text.find("otm_stm_commit_latency_p99_cycles 1234.5"),
            std::string::npos);
}

TEST(TelemetryTest, PrometheusFileRewrittenPerSample) {
  Telemetry &T = Telemetry::instance();
  std::string Path = tempJsonlPath("prom");
  std::string PromPath = "telemetry_test_prom.txt";
  ASSERT_TRUE(T.start(10000, Path, PromPath));
  T.stop(); // final record rewrites the exposition file
  std::ifstream In(PromPath);
  ASSERT_TRUE(In.good());
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_NE(Buf.str().find("otm_stm_"), std::string::npos);
  std::remove(Path.c_str());
  std::remove(PromPath.c_str());
}

#else // !OTM_OBS_ENABLE

TEST(TelemetryTest, CompiledOutStartRefuses) {
  Telemetry &T = Telemetry::instance();
  EXPECT_FALSE(T.start(10, tempJsonlPath("disabled")));
  EXPECT_FALSE(T.running());
  EXPECT_EQ(T.samplesEmitted(), 0u);
}

#endif // OTM_OBS_ENABLE

} // namespace
