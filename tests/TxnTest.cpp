//===- tests/TxnTest.cpp - Transaction-execution layer tests -------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared transaction-execution layer: contention-manager decision
/// tables (one per policy), policy name parsing, the serial-irrevocable
/// gate, retry-controller fallback escalation, CM statistics, and the
/// executor-level guarantees both STM front ends inherit (atomicResult
/// without default construction, flattened-nesting accounting).
///
//===----------------------------------------------------------------------===//

#include "txn/CmStats.h"
#include "txn/ContentionManager.h"
#include "txn/RetryExecutor.h"
#include "txn/SerialGate.h"

#include "stm/Stm.h"
#include "wstm/WordStm.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

using namespace otm;
using namespace otm::txn;

namespace {

struct ConfigGuard {
  ConfigGuard() : Saved(stm::TxManager::config()) {}
  ~ConfigGuard() { stm::TxManager::config() = Saved; }
  stm::TxConfig Saved;
};

/// CmTxState embeds atomics (non-copyable); this just initializes one.
struct TestState : CmTxState {
  TestState(uint64_t Stamp, uint64_t Priority) {
    beginTransaction(Stamp);
    addPriority(Priority);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Policy identity and parsing
//===----------------------------------------------------------------------===//

TEST(CmPolicyTest, NamesRoundTrip) {
  for (unsigned I = 0; I < NumCmPolicies; ++I) {
    CmPolicy P = static_cast<CmPolicy>(I);
    CmPolicy Parsed;
    ASSERT_TRUE(parsePolicy(policyName(P), Parsed)) << policyName(P);
    EXPECT_EQ(Parsed, P);
    EXPECT_EQ(managerFor(P).kind(), P);
    EXPECT_STREQ(managerFor(P).name(), policyName(P));
  }
}

TEST(CmPolicyTest, ParseRejectsUnknownAndNull) {
  CmPolicy P = CmPolicy::Karma;
  EXPECT_FALSE(parsePolicy("no-such-policy", P));
  EXPECT_FALSE(parsePolicy(nullptr, P));
  EXPECT_EQ(P, CmPolicy::Karma) << "failed parse must not clobber the out arg";
}

TEST(CmPolicyTest, ArrivalStampsAreUniqueAndNonZero) {
  uint64_t A = nextArrivalStamp();
  uint64_t B = nextArrivalStamp();
  EXPECT_NE(A, 0u);
  EXPECT_LT(A, B);
}

TEST(CmPolicyTest, CmTxStateResetsPerTransaction) {
  TestState St(7, 100);
  EXPECT_EQ(St.stamp(), 7u);
  EXPECT_EQ(St.priority(), 100u);
  St.beginTransaction(9);
  EXPECT_EQ(St.stamp(), 9u);
  EXPECT_EQ(St.priority(), 0u) << "karma must not leak across transactions";
}

//===----------------------------------------------------------------------===//
// Decision tables
//===----------------------------------------------------------------------===//

TEST(CmDecisionTest, PassiveNeverWaits) {
  const ContentionManager &CM = managerFor(CmPolicy::Passive);
  TestState Us(0, 0), Owner(0, 1000);
  for (unsigned Round : {0u, 1u, 100u})
    EXPECT_EQ(CM.onConflict(Us, Owner, Round, 4), ConflictChoice::AbortSelf);
  EXPECT_FALSE(CM.needsArrivalStamp());
  Backoff B(1);
  EXPECT_FALSE(CM.pauseAfterAbort(1, B)) << "passive does not pace retries";
}

TEST(CmDecisionTest, BackoffWaitsExactlyTheBudget) {
  const ContentionManager &CM = managerFor(CmPolicy::Backoff);
  TestState Us(0, 0), Owner(0, 0);
  constexpr unsigned Budget = 4;
  for (unsigned Round = 0; Round < Budget; ++Round)
    EXPECT_EQ(CM.onConflict(Us, Owner, Round, Budget), ConflictChoice::Wait);
  EXPECT_EQ(CM.onConflict(Us, Owner, Budget, Budget),
            ConflictChoice::AbortSelf)
      << "budget exhaustion is a timeout abort, not a priority abort";
  EXPECT_FALSE(CM.needsArrivalStamp());
  Backoff B(1);
  EXPECT_TRUE(CM.pauseAfterAbort(1, B));
}

TEST(CmDecisionTest, KarmaRicherWaitsPoorerYields) {
  const ContentionManager &CM = managerFor(CmPolicy::Karma);
  TestState Rich(0, 500), Poor(0, 10);
  // The richer attacker outwaits the owner, with extended patience.
  EXPECT_EQ(CM.onConflict(Rich, Poor, 0, 4), ConflictChoice::Wait);
  EXPECT_EQ(CM.onConflict(Rich, Poor, 31, 4), ConflictChoice::Wait);
  EXPECT_EQ(CM.onConflict(Rich, Poor, 32, 4), ConflictChoice::AbortSelf);
  // The poorer attacker loses the arbitration outright.
  EXPECT_EQ(CM.onConflict(Poor, Rich, 0, 4),
            ConflictChoice::AbortSelfPriority);
  // Ties go to the attacker (it waits): equal karma must not deadlock into
  // mutual priority aborts.
  TestState AlsoRich(0, 500);
  EXPECT_EQ(CM.onConflict(Rich, AlsoRich, 0, 4), ConflictChoice::Wait);
}

TEST(CmDecisionTest, GreedyOldestWins) {
  const ContentionManager &CM = managerFor(CmPolicy::TimestampGreedy);
  TestState Elder(10, 0), Younger(20, 0);
  // The elder attacker outwaits the younger owner (extended patience).
  EXPECT_EQ(CM.onConflict(Elder, Younger, 0, 4), ConflictChoice::Wait);
  EXPECT_EQ(CM.onConflict(Elder, Younger, 32, 4), ConflictChoice::AbortSelf);
  // The younger attacker yields to the elder at once.
  EXPECT_EQ(CM.onConflict(Younger, Elder, 0, 4),
            ConflictChoice::AbortSelfPriority);
  // Unstamped owners (transactions begun outside the retry layer) are
  // arbitrated like backoff: wait, then timeout.
  TestState Unstamped(0, 0);
  EXPECT_EQ(CM.onConflict(Younger, Unstamped, 0, 4), ConflictChoice::Wait);
  EXPECT_TRUE(CM.needsArrivalStamp());
}

//===----------------------------------------------------------------------===//
// CM statistics
//===----------------------------------------------------------------------===//

TEST(CmStatsTest, BumpSnapshotResetAgree) {
  CmStatsSnapshot Before = CmStats::instance().snapshot();
  CmStats::instance().bumpPriorityAborts();
  CmStats::instance().bumpPriorityAborts(3);
  CmStats::instance().bumpFallbackEntries();
  CmStatsSnapshot After = CmStats::instance().snapshot();
  EXPECT_EQ(After.PriorityAborts - Before.PriorityAborts, 4u);
  EXPECT_EQ(After.FallbackEntries - Before.FallbackEntries, 1u);
  unsigned Counters = 0;
  After.forEachCounter([&](const char *Name, uint64_t) {
    EXPECT_NE(Name, nullptr);
    ++Counters;
  });
  EXPECT_EQ(Counters, 18u); // 8 software + 10 HTM abort/fallback counters
}

//===----------------------------------------------------------------------===//
// Serial gate
//===----------------------------------------------------------------------===//

TEST(SerialGateTest, ExclusiveDrainsInFlightSharedAttempts) {
  SerialGate &Gate = SerialGate::instance();
  SerialGate::Slot &Mine = Gate.slotForCurrentThread();
  ASSERT_FALSE(Gate.exclusiveActive());
  Gate.enterShared(Mine);

  std::atomic<bool> Acquired{false};
  std::thread Owner([&] {
    SerialGate::Slot &Slot = Gate.slotForCurrentThread();
    Gate.enterExclusive(Slot); // must block until our shared attempt exits
    Acquired.store(true, std::memory_order_release);
    Gate.exitExclusive();
  });

  // The owner publishes the flag first, then drains; with our attempt still
  // in flight it cannot finish acquiring.
  while (!Gate.exclusiveActive())
    std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Acquired.load(std::memory_order_acquire))
      << "exclusive entry completed while a shared attempt was in flight";

  Gate.exitShared(Mine);
  Owner.join();
  EXPECT_TRUE(Acquired.load());
  EXPECT_FALSE(Gate.exclusiveActive());
}

TEST(SerialGateTest, ExclusiveExemptsOwnSlotDepth) {
  // A thread whose own slot is still active (outer-nesting transaction)
  // must be able to escalate without deadlocking on itself.
  SerialGate &Gate = SerialGate::instance();
  SerialGate::Slot &Mine = Gate.slotForCurrentThread();
  Gate.enterShared(Mine);
  Gate.enterExclusive(Mine);
  EXPECT_TRUE(Gate.exclusiveActive());
  Gate.exitExclusive();
  Gate.exitShared(Mine);
  EXPECT_FALSE(Gate.exclusiveActive());
}

//===----------------------------------------------------------------------===//
// Retry controller
//===----------------------------------------------------------------------===//

TEST(RetryControllerTest, EscalatesToSerialAfterBudget) {
  CmStatsSnapshot Before = CmStats::instance().snapshot();
  CmTxState St;
  {
    RetryController Ctl(managerFor(CmPolicy::Passive), St,
                        /*FallbackAfter=*/2, /*BackoffSeed=*/1);
    // Two failed attempts exhaust the budget...
    Ctl.beforeAttempt(0);
    EXPECT_FALSE(Ctl.inSerialMode());
    Ctl.afterAbort(10);
    Ctl.beforeAttempt(10);
    Ctl.afterAbort(25);
    EXPECT_EQ(Ctl.attempts(), 2u);
    EXPECT_EQ(St.priority(), 25u) << "karma accrues across attempts";
    // ...so the third runs serial-irrevocable.
    Ctl.beforeAttempt(25);
    EXPECT_TRUE(Ctl.inSerialMode());
    EXPECT_TRUE(SerialGate::instance().exclusiveActive());
    Ctl.onFinished();
    EXPECT_FALSE(SerialGate::instance().exclusiveActive());
  }
  CmStatsSnapshot After = CmStats::instance().snapshot();
  EXPECT_EQ(After.FallbackEntries - Before.FallbackEntries, 1u);
  EXPECT_EQ(After.FallbackCommits - Before.FallbackCommits, 1u);
}

TEST(RetryControllerTest, DestructorReleasesExclusiveGate) {
  CmTxState St;
  {
    RetryController Ctl(managerFor(CmPolicy::Passive), St,
                        /*FallbackAfter=*/1, /*BackoffSeed=*/1);
    Ctl.beforeAttempt(0);
    Ctl.afterAbort(0);
    Ctl.beforeAttempt(0);
    ASSERT_TRUE(SerialGate::instance().exclusiveActive());
    // Simulated unwind: no onFinished, the destructor must release.
  }
  EXPECT_FALSE(SerialGate::instance().exclusiveActive());
}

TEST(RetryControllerTest, ZeroBudgetNeverEscalates) {
  CmTxState St;
  RetryController Ctl(managerFor(CmPolicy::Passive), St, /*FallbackAfter=*/0,
                      /*BackoffSeed=*/1);
  for (int I = 0; I < 100; ++I) {
    Ctl.beforeAttempt(0);
    EXPECT_FALSE(Ctl.inSerialMode());
    Ctl.afterAbort(0);
  }
  Ctl.onFinished();
}

TEST(RetryControllerTest, GreedyTransactionsGetArrivalStamps) {
  CmTxState St;
  RetryController Ctl(managerFor(CmPolicy::TimestampGreedy), St, 0, 1);
  EXPECT_NE(St.stamp(), 0u);
  CmTxState St2;
  RetryController Ctl2(managerFor(CmPolicy::TimestampGreedy), St2, 0, 1);
  EXPECT_LT(St.stamp(), St2.stamp());
  // Policies that do not rank by age skip the global clock.
  CmTxState St3;
  RetryController Ctl3(managerFor(CmPolicy::Backoff), St3, 0, 1);
  EXPECT_EQ(St3.stamp(), 0u);
  Ctl.onFinished();
  Ctl2.onFinished();
  Ctl3.onFinished();
}

//===----------------------------------------------------------------------===//
// Executor-level guarantees shared by both STM front ends
//===----------------------------------------------------------------------===//

namespace {

/// Move-only, no default constructor: the old per-STM atomicResult copies
/// required `ResultType Result{}`; the unified executor must not.
struct Opaque {
  explicit Opaque(int64_t V) : V(V) {}
  Opaque(const Opaque &) = delete;
  Opaque &operator=(const Opaque &) = delete;
  Opaque(Opaque &&) = default;
  int64_t V;
};

struct Cell : stm::TxObject {
  stm::Field<int64_t> Value;
};

} // namespace

TEST(RetryExecutorTest, AtomicResultNeedsNoDefaultConstructor) {
  Cell C;
  C.Value.store(41);
  Opaque R = stm::Stm::atomicResult([&](stm::TxManager &Tx) {
    Tx.openForRead(&C);
    return Opaque(C.Value.load() + 1);
  });
  EXPECT_EQ(R.V, 42);

  wstm::WCell<int64_t> W;
  W.store(41);
  Opaque RW = wstm::WordStm::atomicResult([&](wstm::WTxManager &Tx) {
    return Opaque(Tx.read(W) + 1);
  });
  EXPECT_EQ(RW.V, 42);
}

TEST(RetryExecutorTest, NestedAtomicCountsAsSubsumedInBothStms) {
  // Satellite of the txn refactor: the word STM used to flatten nested
  // atomic() calls without recording them, so E5/E7 nesting counters
  // disagreed between the two STMs. Both must count one SubsumedTx per
  // flattened level now.
  uint64_t ObjBefore = stm::TxManager::current().stats().SubsumedTx;
  Cell C;
  stm::Stm::atomic([&](stm::TxManager &) {
    stm::Stm::atomic([&](stm::TxManager &) {
      stm::Stm::atomic([&](stm::TxManager &Tx) {
        Tx.write(&C, &Cell::Value, int64_t{5});
      });
    });
  });
  EXPECT_EQ(stm::TxManager::current().stats().SubsumedTx - ObjBefore, 2u);

  uint64_t WordBefore = wstm::WTxManager::current().stats().SubsumedTx;
  wstm::WCell<int64_t> W;
  wstm::WordStm::atomic([&](wstm::WTxManager &) {
    wstm::WordStm::atomic([&](wstm::WTxManager &) {
      wstm::WordStm::atomic(
          [&](wstm::WTxManager &Tx) { Tx.write(W, int64_t{5}); });
    });
  });
  EXPECT_EQ(wstm::WTxManager::current().stats().SubsumedTx - WordBefore, 2u);
  EXPECT_EQ(C.Value.load(), 5);
  EXPECT_EQ(W.load(), 5);

  // Direct begin()/tryCommit() nesting (the interpreter's path) counts the
  // same way.
  uint64_t DirectBefore = stm::TxManager::current().stats().SubsumedTx;
  stm::TxManager &Tx = stm::TxManager::current();
  Tx.begin();
  Tx.begin();
  EXPECT_TRUE(Tx.tryCommit());
  EXPECT_TRUE(Tx.tryCommit());
  EXPECT_EQ(stm::TxManager::current().stats().SubsumedTx - DirectBefore, 1u);
}

TEST(RetryExecutorTest, PolicySelectionIsRuntimeConfigurable) {
  // Every policy must drive both STMs to a correct commit (smoke-level
  // check that the adapters consult the config, not a hard-coded manager).
  ConfigGuard Guard;
  for (unsigned I = 0; I < NumCmPolicies; ++I) {
    stm::TxManager::config().ContentionPolicy = static_cast<CmPolicy>(I);
    Cell C;
    stm::Stm::atomic([&](stm::TxManager &Tx) {
      Tx.write(&C, &Cell::Value, int64_t(I + 1));
    });
    EXPECT_EQ(C.Value.load(), int64_t(I + 1));
    wstm::WCell<int64_t> W;
    wstm::WordStm::atomic(
        [&](wstm::WTxManager &Tx) { Tx.write(W, int64_t(I + 1)); });
    EXPECT_EQ(W.load(), int64_t(I + 1));
  }
}
