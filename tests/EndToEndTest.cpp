//===- tests/EndToEndTest.cpp - Whole-pipeline equivalence tests ----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The strongest integration property in the repository: every TMIR
/// benchmark program must compute the same result
///
///   - under every execution mode (sequential, global lock, object STM),
///   - at every optimization level (naive → fully optimized),
///   - after a round trip through the textual printer and parser,
///
/// and the dominator tree used by the optimizer must agree with a naive
/// reachability-based definition of dominance on all benchmark CFGs.
///
//===----------------------------------------------------------------------===//

#include "bench/TmirPrograms.h"
#include "interp/Interp.h"
#include "passes/Pipeline.h"
#include "tmir/Dominators.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <gtest/gtest.h>

using namespace otm;
using namespace otm::bench;
using namespace otm::interp;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

struct ProgramCase {
  const TmirProgram *P;
};

std::vector<ProgramCase> allPrograms() {
  unsigned Count = 0;
  const TmirProgram *Programs = tmirPrograms(Count);
  std::vector<ProgramCase> Cases;
  for (unsigned I = 0; I < Count; ++I)
    Cases.push_back({&Programs[I]});
  return Cases;
}

std::string caseName(const ::testing::TestParamInfo<ProgramCase> &Info) {
  std::string Name = Info.param.P->Name;
  for (char &C : Name)
    if (C == '-')
      C = '_';
  return Name;
}

int64_t runProgram(Module &M, const TmirProgram &P, Interpreter::TxMode Mode) {
  Interpreter::Options O;
  O.Mode = Mode;
  Interpreter I(M, O);
  Interpreter::RunResult R = I.run(P.Entry, {P.Arg});
  EXPECT_FALSE(R.Trapped) << P.Name << ": " << R.Error;
  return R.Value;
}

class ProgramEquivalence : public ::testing::TestWithParam<ProgramCase> {};

} // namespace

INSTANTIATE_TEST_SUITE_P(AllPrograms, ProgramEquivalence,
                         ::testing::ValuesIn(allPrograms()), caseName);

TEST_P(ProgramEquivalence, UnloweredModesAgree) {
  const TmirProgram &P = *GetParam().P;
  Module M = parseModuleOrDie(P.Source);
  verifyModuleOrDie(M);
  int64_t Seq = runProgram(M, P, Interpreter::TxMode::IgnoreAtomic);
  int64_t Locked = runProgram(M, P, Interpreter::TxMode::GlobalLock);
  EXPECT_EQ(Seq, Locked);
  if (P.Expected >= 0)
    EXPECT_EQ(Seq, P.Expected);
}

TEST_P(ProgramEquivalence, EveryOptLevelAgreesUnderStm) {
  const TmirProgram &P = *GetParam().P;
  Module Ref = parseModuleOrDie(P.Source);
  verifyModuleOrDie(Ref);
  int64_t Expected = runProgram(Ref, P, Interpreter::TxMode::IgnoreAtomic);

  OptConfig Levels[] = {OptConfig::none(), OptConfig::all()};
  // Also each optimization alone, to catch pairwise-masking bugs.
  for (int Bit = 0; Bit < 6; ++Bit) {
    OptConfig C = OptConfig::none();
    C.LocalCse = true;
    switch (Bit) {
    case 0:
      C.OpenElim = true;
      break;
    case 1:
      C.Upgrade = true;
      break;
    case 2:
      C.AllocElision = true;
      break;
    case 3:
      C.OpenLicm = true;
      break;
    case 4:
      C.Dce = true;
      break;
    case 5:
      C.Inline = true;
      break;
    }
    Module M = parseModuleOrDie(P.Source);
    verifyModuleOrDie(M);
    lowerAndOptimize(M, C);
    EXPECT_EQ(runProgram(M, P, Interpreter::TxMode::ObjStm), Expected)
        << "single-opt config bit " << Bit;
  }
  for (const OptConfig &C : Levels) {
    Module M = parseModuleOrDie(P.Source);
    verifyModuleOrDie(M);
    lowerAndOptimize(M, C);
    EXPECT_EQ(runProgram(M, P, Interpreter::TxMode::ObjStm), Expected);
  }
}

TEST_P(ProgramEquivalence, SurvivesPrinterRoundTripAfterLowering) {
  const TmirProgram &P = *GetParam().P;
  Module M = parseModuleOrDie(P.Source);
  verifyModuleOrDie(M);
  lowerAndOptimize(M, OptConfig::all());
  std::string Printed = printModule(M);
  Module M2 = parseModuleOrDie(Printed);
  verifyModuleOrDie(M2);
  EXPECT_EQ(printModule(M2), Printed) << "printer is not a fixpoint";
  int64_t A = runProgram(M, P, Interpreter::TxMode::ObjStm);
  int64_t B = runProgram(M2, P, Interpreter::TxMode::ObjStm);
  EXPECT_EQ(A, B);
}

TEST_P(ProgramEquivalence, DominatorTreeMatchesNaiveDefinition) {
  const TmirProgram &P = *GetParam().P;
  Module M = parseModuleOrDie(P.Source);
  verifyModuleOrDie(M);
  lowerAndOptimize(M, OptConfig::all()); // richer CFGs (preheaders, clones)
  for (std::unique_ptr<Function> &F : M.Functions) {
    DominatorTree DT(*F);
    std::size_t N = F->Blocks.size();
    // Naive definition: A dominates B iff B is unreachable when A is
    // removed from the graph.
    auto ReachableWithout = [&](int Removed) {
      std::vector<bool> Seen(N, false);
      if (Removed == 0)
        return Seen; // removing entry: nothing reachable
      std::vector<int> Work{0};
      Seen[0] = true;
      while (!Work.empty()) {
        int B = Work.back();
        Work.pop_back();
        for (int S : F->Blocks[B]->successors())
          if (S != Removed && !Seen[S]) {
            Seen[S] = true;
            Work.push_back(S);
          }
      }
      return Seen;
    };
    // Baseline reachability (for skipping unreachable blocks).
    std::vector<bool> Reachable(N, false);
    {
      std::vector<int> Work{0};
      Reachable[0] = true;
      while (!Work.empty()) {
        int B = Work.back();
        Work.pop_back();
        for (int S : F->Blocks[B]->successors())
          if (!Reachable[S]) {
            Reachable[S] = true;
            Work.push_back(S);
          }
      }
    }
    for (std::size_t A = 0; A < N; ++A) {
      if (!Reachable[A])
        continue;
      std::vector<bool> Cut = ReachableWithout(static_cast<int>(A));
      for (std::size_t B = 0; B < N; ++B) {
        if (!Reachable[B])
          continue;
        bool Expected = (A == B) || !Cut[B];
        EXPECT_EQ(DT.dominates(static_cast<int>(A), static_cast<int>(B)),
                  Expected)
            << F->Name << ": blocks " << A << " -> " << B;
      }
    }
  }
}
