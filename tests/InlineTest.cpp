//===- tests/InlineTest.cpp - Inliner pass tests --------------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "passes/Inline.h"
#include "passes/LocalCSE.h"
#include "passes/LowerAtomic.h"
#include "passes/OpenElim.h"
#include "passes/Pass.h"
#include "passes/SimplifyCFG.h"
#include "passes/TxClone.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <gtest/gtest.h>

using namespace otm;
using namespace otm::interp;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

Module parsed(const std::string &Text) {
  Module M = parseModuleOrDie(Text);
  verifyModuleOrDie(M);
  return M;
}

unsigned callCount(const Function &F) {
  unsigned N = 0;
  for (const std::unique_ptr<BasicBlock> &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      N += (I.Op == Opcode::Call);
  return N;
}

int64_t runMain(Module &M, int64_t Arg) {
  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::ObjStm;
  Interpreter I(M, O);
  Interpreter::RunResult R = I.run("main", {Arg});
  EXPECT_FALSE(R.Trapped) << R.Error;
  return R.Value;
}

} // namespace

TEST(Inline, InlinesSmallCalleeAndPreservesResult) {
  const char *Source = R"(
func square(x: i64): i64 {
entry:
  %v = loadlocal x
  %r = mul %v, %v
  ret %r
}
func main(n: i64): i64 {
entry:
  %n = loadlocal n
  %a = call square(%n)
  %b = call square(2)
  %s = add %a, %b
  ret %s
}
)";
  Module M = parsed(Source);
  InlinePass Inliner;
  EXPECT_TRUE(Inliner.run(M));
  EXPECT_EQ(Inliner.inlinedLastRun(), 2u);
  verifyModuleOrDie(M);
  EXPECT_EQ(callCount(*M.functionByName("main")), 0u);
  EXPECT_EQ(runMain(M, 5), 29);
}

TEST(Inline, MultipleReturnsMergeThroughResultLocal) {
  Module M = parsed(R"(
func absval(x: i64): i64 {
entry:
  %v = loadlocal x
  %neg = cmplt %v, 0
  condbr %neg, flip, keep
flip:
  %m = sub 0, %v
  ret %m
keep:
  ret %v
}
func main(n: i64): i64 {
entry:
  %n = loadlocal n
  %a = call absval(%n)
  %m = sub 0, %n
  %b = call absval(%m)
  %s = add %a, %b
  ret %s
}
)");
  InlinePass Inliner;
  EXPECT_TRUE(Inliner.run(M));
  verifyModuleOrDie(M);
  EXPECT_EQ(runMain(M, 7), 14);
  EXPECT_EQ(runMain(M, -9), 18);
}

TEST(Inline, SkipsDirectRecursion) {
  Module M = parsed(R"(
func rec(x: i64): i64 {
entry:
  %v = loadlocal x
  %z = cmple %v, 0
  condbr %z, base, step
base:
  ret 0
step:
  %m = sub %v, 1
  %r = call rec(%m)
  %s = add %r, %v
  ret %s
}
func main(n: i64): i64 {
entry:
  %n = loadlocal n
  %r = call rec(%n)
  ret %r
}
)");
  InlinePass Inliner;
  // The main->rec edge inlines (bounded rounds); rec->rec never does.
  Inliner.run(M);
  verifyModuleOrDie(M);
  EXPECT_GE(callCount(*M.functionByName("rec")), 1u);
  EXPECT_EQ(runMain(M, 10), 55);
}

TEST(Inline, RefusesAtomicCalleeIntoAtomicRegion) {
  Module M = parsed(R"(
class P { x: i64 }
func bump(p: P) {
entry:
  atomic_begin
  %o = loadlocal p
  %v = getfield %o, P.x
  %w = add %v, 1
  setfield %o, P.x, %w
  atomic_end
  ret
}
func caller(p: P) {
entry:
  atomic_begin
  %o = loadlocal p
  call bump(%o)
  atomic_end
  ret
}
)");
  InlinePass Inliner;
  Inliner.run(M);
  verifyModuleOrDie(M);
  // The call inside the atomic region must survive (flattening happens at
  // runtime through the call, never textually).
  EXPECT_EQ(callCount(*M.functionByName("caller")), 1u);
}

TEST(Inline, ExposesCrossCallBarrierElimination) {
  // The caller reads P.x and the helper reads it again: before inlining
  // the two transactions' opens are invisible to each other; after
  // inline + lower + local-cse + open-elim there is exactly one open.
  const char *Source = R"(
class P { x: i64 }
func readIt(p: P): i64 {
entry:
  %o = loadlocal p
  %v = getfield %o, P.x
  ret %v
}
func main2(p: P): i64 {
entry:
  atomic_begin
  %o = loadlocal p
  %a = getfield %o, P.x
  %b = call readIt(%o)
  atomic_end
  %s = add %a, %b
  ret %s
}
)";
  // Without inlining: the clone keeps its own open.
  Module NoInline = parsed(Source);
  {
    PassManager PM;
    PM.addPass<TxClonePass>();
    PM.addPass<LowerAtomicPass>();
    PM.addPass<LocalCsePass>();
    PM.addPass<OpenElimPass>();
    PM.run(NoInline);
  }
  // With inlining first: one open total.
  Module WithInline = parsed(Source);
  {
    PassManager PM;
    PM.addPass<InlinePass>();
    PM.addPass<TxClonePass>();
    PM.addPass<LowerAtomicPass>();
    PM.addPass<SimplifyCfgPass>(); // merge the inlined chain into one block
    PM.addPass<LocalCsePass>();
    PM.addPass<OpenElimPass>();
    PM.run(WithInline);
  }
  EXPECT_EQ(countBarriers(NoInline).OpenRead, 2u);
  EXPECT_EQ(countBarriers(WithInline).OpenRead, 1u)
      << "inlining should expose the duplicate open to open-elim";
}
