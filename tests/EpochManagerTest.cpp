//===- tests/EpochManagerTest.cpp - EBR unit tests -----------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "gc/EpochManager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::gc;

namespace {

std::atomic<int> LiveObjects{0};

struct Tracked {
  Tracked() { ++LiveObjects; }
  ~Tracked() { --LiveObjects; }
  int Payload = 0;
};

void retireTracked(Tracked *T) {
  EpochManager::global().retire(
      T, [](void *P) { delete static_cast<Tracked *>(P); });
}

} // namespace

TEST(EpochManager, RetireEventuallyFrees) {
  EpochManager &EM = EpochManager::global();
  int Before = LiveObjects.load();
  for (int I = 0; I < 10; ++I)
    retireTracked(new Tracked());
  EXPECT_EQ(LiveObjects.load(), Before + 10);
  EM.drainForTesting();
  EXPECT_EQ(LiveObjects.load(), Before);
}

TEST(EpochManager, PinnedThreadBlocksReclamation) {
  EpochManager &EM = EpochManager::global();
  EM.drainForTesting();
  int Before = LiveObjects.load();

  EM.pin();
  retireTracked(new Tracked());
  // While we are pinned at the retirement epoch, collect() must not free.
  EM.collect();
  EM.collect();
  EXPECT_EQ(LiveObjects.load(), Before + 1);
  EM.unpin();

  EM.drainForTesting();
  EXPECT_EQ(LiveObjects.load(), Before);
}

TEST(EpochManager, NestedPinsCount) {
  EpochManager &EM = EpochManager::global();
  EM.pin();
  EM.pin();
  EXPECT_TRUE(EM.isPinned());
  EM.unpin();
  EXPECT_TRUE(EM.isPinned());
  EM.unpin();
  EXPECT_FALSE(EM.isPinned());
}

TEST(EpochManager, ManyShortLivedThreadsDoNotLeak) {
  EpochManager &EM = EpochManager::global();
  EM.drainForTesting();
  int Before = LiveObjects.load();
  for (int Round = 0; Round < 8; ++Round) {
    std::vector<std::thread> Threads;
    for (int T = 0; T < 4; ++T)
      Threads.emplace_back([] {
        EpochManager &Local = EpochManager::global();
        for (int I = 0; I < 50; ++I) {
          Local.pin();
          retireTracked(new Tracked());
          Local.unpin();
        }
      });
    for (std::thread &T : Threads)
      T.join();
  }
  EM.drainForTesting();
  EXPECT_EQ(LiveObjects.load(), Before);
}

TEST(EpochManager, ConcurrentReadersNeverSeeFreedMemory) {
  // A writer repeatedly replaces a shared node and retires the old one; a
  // reader pins, loads, and dereferences. Payload corruption or ASan-style
  // crashes would indicate premature reclamation.
  struct Node {
    explicit Node(int V) : Value(V) {}
    int Value;
  };
  std::atomic<Node *> Shared{new Node(0)};
  std::atomic<bool> Stop{false};
  EpochManager &EM = EpochManager::global();

  std::thread Reader([&] {
    while (!Stop.load(std::memory_order_acquire)) {
      EM.pin();
      Node *N = Shared.load(std::memory_order_acquire);
      EXPECT_GE(N->Value, 0);
      EM.unpin();
    }
  });

  for (int I = 1; I <= 2000; ++I) {
    Node *Fresh = new Node(I);
    Node *Old = Shared.exchange(Fresh, std::memory_order_acq_rel);
    EM.retire(Old, [](void *P) {
      static_cast<Node *>(P)->Value = -1; // poison for the EXPECT above
      delete static_cast<Node *>(P);
    });
  }
  Stop.store(true, std::memory_order_release);
  Reader.join();
  delete Shared.load();
}
