//===- tests/ContainersListMapTest.cpp - Typed container tests -----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The same functional assertions run against every synchronization policy
/// (typed tests): the point of the policy design is that the container code
/// is identical and only the barriers differ, so all five configurations
/// must agree on semantics. Concurrency stress runs on the thread-safe
/// policies.
///
//===----------------------------------------------------------------------===//

#include "containers/HashMap.h"
#include "containers/SortedList.h"

#include "stm/Stm.h"
#include "support/Random.h"
#include "support/ThreadBarrier.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::containers;

template <typename PolicyType> class SortedListTest : public ::testing::Test {
public:
  using Policy = PolicyType;
};

template <typename PolicyType> class HashMapTest : public ::testing::Test {
public:
  using Policy = PolicyType;
};

using AllPolicies =
    ::testing::Types<SeqPolicy, CoarseLockPolicy, WordStmPolicy,
                     ObjStmNaivePolicy, ObjStmOptPolicy>;
TYPED_TEST_SUITE(SortedListTest, AllPolicies);
TYPED_TEST_SUITE(HashMapTest, AllPolicies);

TYPED_TEST(SortedListTest, InsertLookupEraseBasics) {
  SortedList<TypeParam> List;
  EXPECT_TRUE(List.insert(5, 50));
  EXPECT_TRUE(List.insert(1, 10));
  EXPECT_TRUE(List.insert(9, 90));
  EXPECT_FALSE(List.insert(5, 55)) << "duplicate key must update";
  int64_t V = 0;
  ASSERT_TRUE(List.lookup(5, V));
  EXPECT_EQ(V, 55);
  ASSERT_TRUE(List.lookup(1, V));
  EXPECT_EQ(V, 10);
  EXPECT_FALSE(List.lookup(7, V));
  EXPECT_TRUE(List.erase(5));
  EXPECT_FALSE(List.erase(5));
  EXPECT_FALSE(List.contains(5));
  EXPECT_EQ(List.sizeSlow(), 2u);
  EXPECT_TRUE(List.isSortedSlow());
}

TYPED_TEST(SortedListTest, StaysSortedUnderRandomOps) {
  SortedList<TypeParam> List;
  std::map<int64_t, int64_t> Model;
  Xoshiro256 Rng(77);
  for (int I = 0; I < 2000; ++I) {
    int64_t Key = static_cast<int64_t>(Rng.nextBelow(100));
    if (Rng.nextPercent(60)) {
      int64_t Value = static_cast<int64_t>(Rng.next() & 0xffff);
      bool Fresh = List.insert(Key, Value);
      EXPECT_EQ(Fresh, Model.find(Key) == Model.end());
      Model[Key] = Value;
    } else {
      bool Erased = List.erase(Key);
      EXPECT_EQ(Erased, Model.erase(Key) == 1);
    }
    ASSERT_TRUE(List.isSortedSlow());
  }
  EXPECT_EQ(List.sizeSlow(), Model.size());
  for (auto [Key, Value] : Model) {
    int64_t V = 0;
    ASSERT_TRUE(List.lookup(Key, V)) << "missing key " << Key;
    EXPECT_EQ(V, Value);
  }
}

TYPED_TEST(SortedListTest, SumValuesMatchesModel) {
  SortedList<TypeParam> List;
  int64_t Expected = 0;
  for (int64_t K = 0; K < 200; K += 2) {
    List.insert(K, K * 3);
    Expected += K * 3;
  }
  EXPECT_EQ(List.sumValues(), Expected);
}

TYPED_TEST(HashMapTest, InsertLookupEraseBasics) {
  HashMap<TypeParam> Map(64);
  EXPECT_TRUE(Map.insert(100, 1));
  EXPECT_TRUE(Map.insert(200, 2));
  EXPECT_FALSE(Map.insert(100, 3));
  int64_t V = 0;
  ASSERT_TRUE(Map.lookup(100, V));
  EXPECT_EQ(V, 3);
  EXPECT_FALSE(Map.lookup(300, V));
  EXPECT_TRUE(Map.erase(200));
  EXPECT_FALSE(Map.erase(200));
  EXPECT_EQ(Map.sizeSlow(), 1u);
  EXPECT_TRUE(Map.checkPlacementSlow());
}

TYPED_TEST(HashMapTest, CollidingKeysShareBuckets) {
  HashMap<TypeParam> Map(4); // force heavy chaining
  for (int64_t K = 0; K < 256; ++K)
    EXPECT_TRUE(Map.insert(K, K * K));
  EXPECT_EQ(Map.sizeSlow(), 256u);
  for (int64_t K = 0; K < 256; ++K) {
    int64_t V = 0;
    ASSERT_TRUE(Map.lookup(K, V));
    EXPECT_EQ(V, K * K);
  }
  for (int64_t K = 0; K < 256; K += 2)
    EXPECT_TRUE(Map.erase(K));
  EXPECT_EQ(Map.sizeSlow(), 128u);
  EXPECT_TRUE(Map.checkPlacementSlow());
}

TYPED_TEST(HashMapTest, RandomOpsAgainstModel) {
  HashMap<TypeParam> Map(32);
  std::map<int64_t, int64_t> Model;
  Xoshiro256 Rng(123);
  for (int I = 0; I < 3000; ++I) {
    int64_t Key = static_cast<int64_t>(Rng.nextBelow(500));
    switch (Rng.nextBelow(3)) {
    case 0: {
      int64_t Value = static_cast<int64_t>(Rng.next() & 0xffff);
      EXPECT_EQ(Map.insert(Key, Value), Model.find(Key) == Model.end());
      Model[Key] = Value;
      break;
    }
    case 1:
      EXPECT_EQ(Map.erase(Key), Model.erase(Key) == 1);
      break;
    default: {
      int64_t V = 0;
      auto It = Model.find(Key);
      bool Found = Map.lookup(Key, V);
      EXPECT_EQ(Found, It != Model.end());
      if (Found)
        EXPECT_EQ(V, It->second);
    }
    }
  }
  EXPECT_EQ(Map.sizeSlow(), Model.size());
}

//===----------------------------------------------------------------------===
// Concurrency stress for the thread-safe policies
//===----------------------------------------------------------------------===

template <typename PolicyType>
class ConcurrentMapTest : public ::testing::Test {};

using ThreadSafePolicies =
    ::testing::Types<CoarseLockPolicy, WordStmPolicy, ObjStmNaivePolicy,
                     ObjStmOptPolicy>;
TYPED_TEST_SUITE(ConcurrentMapTest, ThreadSafePolicies);

TYPED_TEST(ConcurrentMapTest, DisjointKeyRangesAllLand) {
  HashMap<TypeParam> Map(128);
  constexpr int NumThreads = 4;
  constexpr int PerThread = 500;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (int64_t I = 0; I < PerThread; ++I)
        Map.insert(T * 10000 + I, I);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Map.sizeSlow(), NumThreads * PerThread);
  EXPECT_TRUE(Map.checkPlacementSlow());
}

TYPED_TEST(ConcurrentMapTest, MixedOpsKeepStructureConsistent) {
  HashMap<TypeParam> Map(64);
  for (int64_t K = 0; K < 200; ++K)
    Map.insert(K, 0);
  constexpr int NumThreads = 4;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(900 + T);
      Barrier.arriveAndWait();
      for (int I = 0; I < 2000; ++I) {
        int64_t Key = static_cast<int64_t>(Rng.nextBelow(400));
        switch (Rng.nextBelow(4)) {
        case 0:
          Map.insert(Key, T);
          break;
        case 1:
          Map.erase(Key);
          break;
        default:
          Map.contains(Key);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_TRUE(Map.checkPlacementSlow());
  EXPECT_LE(Map.sizeSlow(), 400u);
}

TYPED_TEST(ConcurrentMapTest, ConcurrentListInsertsAllLand) {
  SortedList<TypeParam> List;
  constexpr int NumThreads = 4;
  constexpr int PerThread = 250;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Barrier.arriveAndWait();
      // Interleaved key ranges force adjacent-node conflicts.
      for (int64_t I = 0; I < PerThread; ++I)
        List.insert(I * NumThreads + T, T);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(List.sizeSlow(), NumThreads * PerThread);
  EXPECT_TRUE(List.isSortedSlow());
}
