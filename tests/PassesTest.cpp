//===- tests/PassesTest.cpp - Barrier optimization pass tests ------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/AllocElision.h"
#include "passes/DCE.h"
#include "passes/LocalCSE.h"
#include "passes/LowerAtomic.h"
#include "passes/OpenElim.h"
#include "passes/OpenLicm.h"
#include "passes/Pipeline.h"
#include "passes/TxClone.h"
#include "passes/Upgrade.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <gtest/gtest.h>

using namespace otm;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

Module parsed(const std::string &Text) {
  Module M = parseModuleOrDie(Text);
  verifyModuleOrDie(M);
  return M;
}

/// Counts instructions with opcode \p Op across the module.
unsigned countOp(const Module &M, Opcode Op) {
  unsigned N = 0;
  for (const std::unique_ptr<Function> &F : M.Functions)
    for (const std::unique_ptr<BasicBlock> &BB : F->Blocks)
      for (const Instr &I : BB->Instrs)
        N += (I.Op == Op);
  return N;
}

} // namespace

//===----------------------------------------------------------------------===
// LowerAtomic
//===----------------------------------------------------------------------===

TEST(LowerAtomic, InsertsNaiveBarriers) {
  Module M = parsed(R"(
class P { x: i64, y: i64 }
func f(p: P): i64 {
entry:
  atomic_begin
  %o = loadlocal p
  %a = getfield %o, P.x
  %b = getfield %o, P.y
  %s = add %a, %b
  setfield %o, P.x, %s
  atomic_end
  ret %s
}
)");
  LowerAtomicPass Lower;
  EXPECT_TRUE(Lower.run(M));
  verifyModuleOrDie(M);
  EXPECT_EQ(countOp(M, Opcode::OpenForRead), 2u);
  EXPECT_EQ(countOp(M, Opcode::OpenForUpdate), 1u);
  EXPECT_EQ(countOp(M, Opcode::LogUndoField), 1u);
}

TEST(LowerAtomic, LeavesNonAtomicCodeAlone) {
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P): i64 {
entry:
  %o = loadlocal p
  %a = getfield %o, P.x
  ret %a
}
)");
  LowerAtomicPass Lower;
  EXPECT_FALSE(Lower.run(M));
  EXPECT_EQ(countBarriers(M).total(), 0u);
}

TEST(LowerAtomic, InstrumentsArrays) {
  Module M = parsed(R"(
func f(a: arr): i64 {
entry:
  atomic_begin
  %r = loadlocal a
  %v = arrget %r, 3
  arrset %r, 4, %v
  %l = arrlen %r
  atomic_end
  ret %l
}
)");
  LowerAtomicPass Lower;
  EXPECT_TRUE(Lower.run(M));
  verifyModuleOrDie(M);
  EXPECT_EQ(countOp(M, Opcode::OpenForRead), 2u); // arrget + arrlen
  EXPECT_EQ(countOp(M, Opcode::OpenForUpdate), 1u);
  EXPECT_EQ(countOp(M, Opcode::LogUndoElem), 1u);
}

//===----------------------------------------------------------------------===
// TxClone
//===----------------------------------------------------------------------===

TEST(TxClone, ClonesCalleesOfAtomicRegions) {
  Module M = parsed(R"(
class P { x: i64 }
func helper(p: P): i64 {
entry:
  %o = loadlocal p
  %v = getfield %o, P.x
  ret %v
}
func f(p: P): i64 {
entry:
  %o = loadlocal p
  atomic_begin
  %v = call helper(%o)
  atomic_end
  %w = call helper(%o)
  %s = add %v, %w
  ret %s
}
)");
  TxClonePass Clone;
  EXPECT_TRUE(Clone.run(M));
  verifyModuleOrDie(M);
  Function *TxHelper = M.functionByName("helper$tx");
  ASSERT_NE(TxHelper, nullptr);
  EXPECT_TRUE(TxHelper->IsAllAtomic);
  EXPECT_FALSE(M.functionByName("helper")->IsAllAtomic);

  // The atomic call goes to the clone; the plain call stays.
  Function &F = *M.functionByName("f");
  std::vector<int> Callees;
  for (std::unique_ptr<BasicBlock> &BB : F.Blocks)
    for (Instr &I : BB->Instrs)
      if (I.Op == Opcode::Call)
        Callees.push_back(I.CalleeIdx);
  ASSERT_EQ(Callees.size(), 2u);
  EXPECT_EQ(M.Functions[Callees[0]]->Name, "helper$tx");
  EXPECT_EQ(M.Functions[Callees[1]]->Name, "helper");
}

TEST(TxClone, HandlesTransitiveAndRecursiveCalls) {
  Module M = parsed(R"(
func leaf(x: i64): i64 {
entry:
  %v = loadlocal x
  ret %v
}
func mid(x: i64): i64 {
entry:
  %v = loadlocal x
  %r = call leaf(%v)
  ret %r
}
func rec(x: i64): i64 {
entry:
  %v = loadlocal x
  %z = cmpeq %v, 0
  condbr %z, base, step
base:
  ret 0
step:
  %m = sub %v, 1
  %r = call rec(%m)
  ret %r
}
func f(x: i64): i64 {
entry:
  atomic_begin
  %v = loadlocal x
  %a = call mid(%v)
  %b = call rec(%v)
  atomic_end
  %s = add %a, %b
  ret %s
}
)");
  TxClonePass Clone;
  EXPECT_TRUE(Clone.run(M));
  verifyModuleOrDie(M);
  ASSERT_NE(M.functionByName("mid$tx"), nullptr);
  ASSERT_NE(M.functionByName("leaf$tx"), nullptr);
  ASSERT_NE(M.functionByName("rec$tx"), nullptr);

  // Calls inside clones must target clones (including self-recursion).
  Function &RecTx = *M.functionByName("rec$tx");
  for (std::unique_ptr<BasicBlock> &BB : RecTx.Blocks)
    for (Instr &I : BB->Instrs)
      if (I.Op == Opcode::Call)
        EXPECT_TRUE(M.Functions[I.CalleeIdx]->IsAllAtomic);
  Function &MidTx = *M.functionByName("mid$tx");
  for (std::unique_ptr<BasicBlock> &BB : MidTx.Blocks)
    for (Instr &I : BB->Instrs)
      if (I.Op == Opcode::Call)
        EXPECT_EQ(M.Functions[I.CalleeIdx]->Name, "leaf$tx");
}

//===----------------------------------------------------------------------===
// OpenElim
//===----------------------------------------------------------------------===

TEST(OpenElim, RemovesStraightLineDuplicates) {
  Module M = parsed(R"(
class P { x: i64, y: i64 }
func f(p: P): i64 {
entry:
  atomic_begin
  %o = loadlocal p
  open_read %o
  %a = getfield %o, P.x
  open_read %o
  %b = getfield %o, P.y
  atomic_end
  %s = add %a, %b
  ret %s
}
)");
  OpenElimPass Elim;
  EXPECT_TRUE(Elim.run(M));
  EXPECT_EQ(Elim.removedLastRun(), 1u);
  EXPECT_EQ(countOp(M, Opcode::OpenForRead), 1u);
}

TEST(OpenElim, UpdateSubsumesRead) {
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P): i64 {
entry:
  atomic_begin
  %o = loadlocal p
  open_update %o
  open_read %o
  %a = getfield %o, P.x
  atomic_end
  ret %a
}
)");
  OpenElimPass Elim;
  EXPECT_TRUE(Elim.run(M));
  EXPECT_EQ(countOp(M, Opcode::OpenForRead), 0u);
  EXPECT_EQ(countOp(M, Opcode::OpenForUpdate), 1u);
}

TEST(OpenElim, ReadDoesNotSubsumeUpdate) {
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P) {
entry:
  atomic_begin
  %o = loadlocal p
  open_read %o
  open_update %o
  log_undo_field %o, P.x
  setfield %o, P.x, 1
  atomic_end
  ret
}
)");
  OpenElimPass Elim;
  Elim.run(M);
  EXPECT_EQ(countOp(M, Opcode::OpenForUpdate), 1u);
}

TEST(OpenElim, KeepsOpensAcrossRedefinition) {
  // The register is redefined each loop iteration: the open inside the
  // loop must survive (a new object is opened each time).
  Module M = parsed(R"(
class Node { next: Node }
func walk(head: Node) {
  var cur: Node
entry:
  %h = loadlocal head
  storelocal cur, %h
  br loop
loop:
  %c = loadlocal cur
  %z = cmpeq %c, null
  condbr %z, exit, body
body:
  atomic_begin
  open_read %c
  %n = getfield %c, Node.next
  atomic_end
  storelocal cur, %n
  br loop
exit:
  ret
}
)");
  OpenElimPass Elim;
  EXPECT_FALSE(Elim.run(M));
  EXPECT_EQ(countOp(M, Opcode::OpenForRead), 1u);
}

TEST(OpenElim, RequiresAvailabilityOnAllPaths) {
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P, c: i1): i64 {
entry:
  atomic_begin
  %o = loadlocal p
  %cc = loadlocal c
  condbr %cc, yes, no
yes:
  open_read %o
  %a = getfield %o, P.x
  br join
no:
  br join
join:
  open_read %o
  %b = getfield %o, P.x
  atomic_end
  ret %b
}
)");
  OpenElimPass Elim;
  // The join-open is reachable with no prior open via "no": must stay.
  EXPECT_FALSE(Elim.run(M));
  EXPECT_EQ(countOp(M, Opcode::OpenForRead), 2u);
}

TEST(OpenElim, RemovesWhenAvailableOnAllPaths) {
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P, c: i1): i64 {
entry:
  atomic_begin
  %o = loadlocal p
  open_read %o
  %cc = loadlocal c
  condbr %cc, yes, no
yes:
  br join
no:
  br join
join:
  open_read %o
  %b = getfield %o, P.x
  atomic_end
  ret %b
}
)");
  OpenElimPass Elim;
  EXPECT_TRUE(Elim.run(M));
  EXPECT_EQ(countOp(M, Opcode::OpenForRead), 1u);
}

TEST(OpenElim, FactsDieAtRegionBoundary) {
  // Two separate transactions: the second must re-open.
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P) {
entry:
  %o = loadlocal p
  atomic_begin
  open_read %o
  %a = getfield %o, P.x
  atomic_end
  atomic_begin
  open_read %o
  %b = getfield %o, P.x
  atomic_end
  ret
}
)");
  OpenElimPass Elim;
  EXPECT_FALSE(Elim.run(M));
  EXPECT_EQ(countOp(M, Opcode::OpenForRead), 2u);
}

TEST(OpenElim, RemovesDuplicateUndoLogsPerField) {
  Module M = parsed(R"(
class P { x: i64, y: i64 }
func f(p: P) {
entry:
  atomic_begin
  %o = loadlocal p
  open_update %o
  log_undo_field %o, P.x
  setfield %o, P.x, 1
  log_undo_field %o, P.x
  setfield %o, P.x, 2
  log_undo_field %o, P.y
  setfield %o, P.y, 3
  atomic_end
  ret
}
)");
  OpenElimPass Elim;
  EXPECT_TRUE(Elim.run(M));
  EXPECT_EQ(countOp(M, Opcode::LogUndoField), 2u); // one per field
}

TEST(OpenElim, DropsBarriersOnNull) {
  Module M = parsed(R"(
func f() {
entry:
  atomic_begin
  open_read null
  atomic_end
  ret
}
)");
  OpenElimPass Elim;
  EXPECT_TRUE(Elim.run(M));
  EXPECT_EQ(countBarriers(M).total(), 0u);
}

//===----------------------------------------------------------------------===
// Upgrade
//===----------------------------------------------------------------------===

TEST(Upgrade, StrengthensWhenUpdateIsCertain) {
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P): i64 {
entry:
  atomic_begin
  %o = loadlocal p
  open_read %o
  %a = getfield %o, P.x
  open_update %o
  log_undo_field %o, P.x
  setfield %o, P.x, 9
  atomic_end
  ret %a
}
)");
  UpgradePass Up;
  EXPECT_TRUE(Up.run(M));
  EXPECT_EQ(Up.upgradedLastRun(), 1u);
  EXPECT_EQ(countOp(M, Opcode::OpenForRead), 0u);
  EXPECT_EQ(countOp(M, Opcode::OpenForUpdate), 2u);

  // And open-elim then removes the dominated second update open.
  OpenElimPass Elim;
  EXPECT_TRUE(Elim.run(M));
  EXPECT_EQ(countOp(M, Opcode::OpenForUpdate), 1u);
}

TEST(Upgrade, DoesNotStrengthenOnPartialPaths) {
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P, c: i1): i64 {
entry:
  atomic_begin
  %o = loadlocal p
  open_read %o
  %a = getfield %o, P.x
  %cc = loadlocal c
  condbr %cc, wr, done
wr:
  open_update %o
  log_undo_field %o, P.x
  setfield %o, P.x, 9
  br done
done:
  atomic_end
  ret %a
}
)");
  UpgradePass Up;
  EXPECT_FALSE(Up.run(M));
  EXPECT_EQ(countOp(M, Opcode::OpenForRead), 1u);
}

//===----------------------------------------------------------------------===
// AllocElision
//===----------------------------------------------------------------------===

TEST(AllocElision, RemovesBarriersOnFreshObjects) {
  Module M = parsed(R"(
class P { x: i64 }
func f(): P {
  var tmp: P
entry:
  atomic_begin
  %n = newobj P
  open_update %n
  log_undo_field %n, P.x
  setfield %n, P.x, 1
  storelocal tmp, %n
  %m = loadlocal tmp
  open_read %m
  %v = getfield %m, P.x
  atomic_end
  ret %n
}
)");
  AllocElisionPass Elide;
  EXPECT_TRUE(Elide.run(M));
  EXPECT_EQ(Elide.removedLastRun(), 3u);
  EXPECT_EQ(countBarriers(M).total(), 0u);
}

TEST(AllocElision, KeepsBarriersOnParameters) {
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P) {
entry:
  atomic_begin
  %o = loadlocal p
  open_update %o
  log_undo_field %o, P.x
  setfield %o, P.x, 1
  atomic_end
  ret
}
)");
  AllocElisionPass Elide;
  EXPECT_FALSE(Elide.run(M));
  EXPECT_EQ(countBarriers(M).total(), 2u);
}

TEST(AllocElision, FreshnessDiesAtRegionBoundary) {
  Module M = parsed(R"(
class P { x: i64 }
func f() {
  var tmp: P
entry:
  atomic_begin
  %n = newobj P
  storelocal tmp, %n
  atomic_end
  atomic_begin
  %m = loadlocal tmp
  open_update %m
  log_undo_field %m, P.x
  setfield %m, P.x, 1
  atomic_end
  ret
}
)");
  AllocElisionPass Elide;
  // The object escaped its allocating transaction; barriers must stay.
  EXPECT_FALSE(Elide.run(M));
  EXPECT_EQ(countBarriers(M).total(), 2u);
}

TEST(AllocElision, LocalOverwrittenWithSharedKillsFreshness) {
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P) {
  var tmp: P
entry:
  atomic_begin
  %n = newobj P
  storelocal tmp, %n
  %o = loadlocal p
  storelocal tmp, %o
  %m = loadlocal tmp
  open_update %m
  log_undo_field %m, P.x
  setfield %m, P.x, 1
  atomic_end
  ret
}
)");
  AllocElisionPass Elide;
  EXPECT_FALSE(Elide.run(M));
  EXPECT_EQ(countBarriers(M).total(), 2u);
}

//===----------------------------------------------------------------------===
// OpenLicm
//===----------------------------------------------------------------------===

TEST(OpenLicm, HoistsInvariantOpenToPreheader) {
  Module M = parsed(R"(
class Acc { total: i64 }
func f(acc: Acc, n: i64) {
  var i: i64
entry:
  storelocal i, 0
  atomic_begin
  %a = loadlocal acc
  br loop
loop:
  %i1 = loadlocal i
  %nn = loadlocal n
  %done = cmpge %i1, %nn
  condbr %done, exit, body
body:
  open_update %a
  log_undo_field %a, Acc.total
  %t = getfield %a, Acc.total
  %t2 = add %t, %i1
  setfield %a, Acc.total, %t2
  %i2 = add %i1, 1
  storelocal i, %i2
  br loop
exit:
  atomic_end
  ret
}
)");
  OpenLicmPass Licm;
  EXPECT_TRUE(Licm.run(M));
  verifyModuleOrDie(M);
  EXPECT_EQ(Licm.hoistedLastRun(), 2u); // the open and the undo log
  // Barriers moved out of the loop body.
  Function &F = *M.functionByName("f");
  for (std::unique_ptr<BasicBlock> &BB : F.Blocks)
    if (BB->Name == "body")
      for (Instr &I : BB->Instrs)
        EXPECT_FALSE(isBarrier(I.Op)) << "barrier left in loop body";
  // The entry block is the sole outside predecessor ending in an
  // unconditional branch, so it serves as the preheader: the hoisted
  // barriers land right before its terminator.
  BasicBlock &Entry = *F.entry();
  ASSERT_GE(Entry.Instrs.size(), 3u);
  EXPECT_EQ(Entry.Instrs[Entry.Instrs.size() - 3].Op, Opcode::OpenForUpdate);
  EXPECT_EQ(Entry.Instrs[Entry.Instrs.size() - 2].Op, Opcode::LogUndoField);
}

TEST(OpenLicm, DoesNotHoistVariantOpens) {
  Module M = parsed(R"(
class Node { next: Node }
func walk(head: Node) {
  var cur: Node
entry:
  %h = loadlocal head
  storelocal cur, %h
  atomic_begin
  br loop
loop:
  %c = loadlocal cur
  %z = cmpeq %c, null
  condbr %z, exit, body
body:
  open_read %c
  %n = getfield %c, Node.next
  storelocal cur, %n
  br loop
exit:
  atomic_end
  ret
}
)");
  OpenLicmPass Licm;
  EXPECT_FALSE(Licm.run(M));
  EXPECT_EQ(countOp(M, Opcode::OpenForRead), 1u);
}

TEST(OpenLicm, SkipsLoopsOutsideTransactions) {
  Module M = parsed(R"(
class Acc { total: i64 }
func f(acc: Acc, n: i64) {
  var i: i64
entry:
  storelocal i, 0
  br loop
loop:
  %i1 = loadlocal i
  %nn = loadlocal n
  %done = cmpge %i1, %nn
  condbr %done, exit, body
body:
  atomic_begin
  %a = loadlocal acc
  open_update %a
  log_undo_field %a, Acc.total
  %t = getfield %a, Acc.total
  %t2 = add %t, %i1
  setfield %a, Acc.total, %t2
  atomic_end
  %i2 = add %i1, 1
  storelocal i, %i2
  br loop
exit:
  ret
}
)");
  OpenLicmPass Licm;
  // Each iteration is its own transaction: hoisting would be wrong.
  EXPECT_FALSE(Licm.run(M));
}

//===----------------------------------------------------------------------===
// LocalCSE + DCE
//===----------------------------------------------------------------------===

TEST(LocalCse, ForwardsRepeatedLoads) {
  Module M = parsed(R"(
class P { x: i64, y: i64 }
func f(p: P): i64 {
entry:
  %o1 = loadlocal p
  %a = getfield %o1, P.x
  %o2 = loadlocal p
  %b = getfield %o2, P.y
  %s = add %a, %b
  ret %s
}
)");
  LocalCsePass Cse;
  EXPECT_TRUE(Cse.run(M));
  verifyModuleOrDie(M);
  EXPECT_EQ(countOp(M, Opcode::LoadLocal), 1u);
}

TEST(LocalCse, StoreLoadForwardingWithinBlock) {
  Module M = parsed(R"(
func f(): i64 {
  var x: i64
entry:
  storelocal x, 7
  %v = loadlocal x
  ret %v
}
)");
  LocalCsePass Cse;
  EXPECT_TRUE(Cse.run(M));
  verifyModuleOrDie(M);
  EXPECT_EQ(countOp(M, Opcode::LoadLocal), 0u);
  // The ret now returns the constant directly.
  Function &F = *M.functionByName("f");
  const Instr &Ret = F.Blocks.back()->Instrs.back();
  ASSERT_EQ(Ret.Op, Opcode::Ret);
  ASSERT_TRUE(Ret.Operands[0].isImm());
  EXPECT_EQ(Ret.Operands[0].immValue(), 7);
}

TEST(LocalCse, DoesNotForwardAcrossBlocksUnsafely) {
  // %s is defined in the loop; the mov into %a in a different block must
  // not be forwarded to uses after the loop... here simplified: loads in
  // different blocks are not forwarded.
  Module M = parsed(R"(
func f(n: i64): i64 {
entry:
  %a = loadlocal n
  br next
next:
  %b = loadlocal n
  %s = add %a, %b
  ret %s
}
)");
  LocalCsePass Cse;
  EXPECT_FALSE(Cse.run(M));
  EXPECT_EQ(countOp(M, Opcode::LoadLocal), 2u);
}

TEST(Dce, RemovesDeadLoadsAfterBarrierRemoval) {
  Module M = parsed(R"(
func f(): i64 {
  var x: i64
entry:
  storelocal x, 3
  %dead1 = loadlocal x
  %dead2 = add %dead1, 4
  ret 0
}
)");
  DcePass Dce;
  EXPECT_TRUE(Dce.run(M));
  Function &F = *M.functionByName("f");
  EXPECT_EQ(F.Blocks[0]->Instrs.size(), 2u); // storelocal + ret
}

//===----------------------------------------------------------------------===
// Full pipeline
//===----------------------------------------------------------------------===

TEST(Pipeline, ListTraversalBarriersShrinkDramatically) {
  // Naive lowering opens a node once per field access (key + next); the
  // optimizer gets that down to one open per node visit.
  const char *Program = R"(
class Node { key: i64, next: Node }
func contains(head: Node, k: i64): i1 {
  var cur: Node
entry:
  %h = loadlocal head
  storelocal cur, %h
  br loop
loop:
  %c = loadlocal cur
  %z = cmpeq %c, null
  condbr %z, nope, check
check:
  atomic_begin
  %c2 = loadlocal cur
  %ck = getfield %c2, Node.key
  %c3 = loadlocal cur
  %n = getfield %c3, Node.next
  atomic_end
  %kk = loadlocal k
  %eq = cmpeq %ck, %kk
  condbr %eq, yes, advance
advance:
  storelocal cur, %n
  br loop
yes:
  ret true
nope:
  ret false
}
)";
  Module Naive = parsed(Program);
  lowerAndOptimize(Naive, OptConfig::none());
  Module Opt = parsed(Program);
  lowerAndOptimize(Opt, OptConfig::all());

  BarrierCounts NaiveCounts = countBarriers(Naive);
  BarrierCounts OptCounts = countBarriers(Opt);
  EXPECT_EQ(NaiveCounts.OpenRead, 2u);
  EXPECT_EQ(OptCounts.OpenRead, 1u) << "local CSE + open-elim should merge "
                                       "the two per-node opens into one";
  verifyModuleOrDie(Opt);
}

TEST(Pipeline, ReportsCoverEveryPass) {
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P) {
entry:
  atomic_begin
  %o = loadlocal p
  %v = getfield %o, P.x
  %w = add %v, 1
  setfield %o, P.x, %w
  atomic_end
  ret
}
)");
  std::vector<PassReport> Reports = lowerAndOptimize(M, OptConfig::all());
  ASSERT_GE(Reports.size(), 9u);
  EXPECT_EQ(Reports[0].PassName, "inline");
  EXPECT_EQ(Reports[1].PassName, "tx-clone");
  EXPECT_EQ(Reports[2].PassName, "lower-atomic");
  EXPECT_GT(Reports[2].After.total(), 0u);
  // Upgrade turns the read open into an update open; elim removes the
  // duplicate update open; net: one open_update + one undo log.
  BarrierCounts Final = Reports.back().After;
  EXPECT_EQ(Final.OpenRead, 0u);
  EXPECT_EQ(Final.OpenUpdate, 1u);
  EXPECT_EQ(Final.UndoField, 1u);
}
