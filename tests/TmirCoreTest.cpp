//===- tests/TmirCoreTest.cpp - IR, parser, verifier, analyses -----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "tmir/AtomicRegions.h"
#include "tmir/Dominators.h"
#include "tmir/IR.h"
#include "tmir/LoopInfo.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <gtest/gtest.h>

using namespace otm;
using namespace otm::tmir;

namespace {

const char *SumList = R"(
class Node { key: i64, val: i64, next: Node }

func sum(head: Node): i64 {
  var acc: i64
  var cur: Node
entry:
  storelocal acc, 0
  storelocal cur, null
  %h = loadlocal head
  storelocal cur, %h
  br loop
loop:
  %c = loadlocal cur
  %done = cmpeq %c, null
  condbr %done, exit, body
body:
  %c2 = loadlocal cur
  %v = getfield %c2, Node.val
  %a = loadlocal acc
  %a2 = add %a, %v
  storelocal acc, %a2
  %n = getfield %c2, Node.next
  storelocal cur, %n
  br loop
exit:
  %r = loadlocal acc
  ret %r
}
)";

Module parseAndVerify(const std::string &Text) {
  Module M = parseModuleOrDie(Text);
  verifyModuleOrDie(M);
  return M;
}

} // namespace

TEST(Parser, ParsesClassesAndFunctions) {
  Module M = parseAndVerify(SumList);
  ASSERT_EQ(M.Classes.size(), 1u);
  EXPECT_EQ(M.Classes[0].Name, "Node");
  ASSERT_EQ(M.Classes[0].Fields.size(), 3u);
  EXPECT_EQ(M.Classes[0].fieldIndex("next"), 2);
  ASSERT_EQ(M.Functions.size(), 1u);
  Function &F = *M.Functions[0];
  EXPECT_EQ(F.Name, "sum");
  EXPECT_EQ(F.NumParams, 1u);
  EXPECT_EQ(F.Locals.size(), 3u); // head, acc, cur
  EXPECT_EQ(F.Blocks.size(), 4u);
  EXPECT_EQ(F.entry()->Name, "entry");
  EXPECT_TRUE(F.ReturnTy.isI64());
}

TEST(Parser, RoundTripsThroughPrinter) {
  Module M1 = parseAndVerify(SumList);
  std::string Printed = printModule(M1);
  Module M2 = parseAndVerify(Printed);
  // Second print must be a fixpoint.
  EXPECT_EQ(printModule(M2), Printed);
}

TEST(Parser, ForwardFunctionReferences) {
  Module M = parseAndVerify(R"(
func caller(): i64 {
entry:
  %r = call callee(3)
  ret %r
}
func callee(x: i64): i64 {
entry:
  %y = loadlocal x
  %r = mul %y, 2
  ret %r
}
)");
  EXPECT_EQ(M.Functions.size(), 2u);
}

TEST(Parser, ReportsUnknownOpcode) {
  Module M;
  std::string Error;
  EXPECT_FALSE(parseModule("func f() {\nentry:\n  frobnicate 1\n  ret\n}\n",
                           M, Error));
  EXPECT_NE(Error.find("frobnicate"), std::string::npos);
  EXPECT_NE(Error.find("line 3"), std::string::npos);
}

TEST(Parser, ReportsUnknownField) {
  Module M;
  std::string Error;
  EXPECT_FALSE(parseModule(R"(
class P { x: i64 }
func f(p: P): i64 {
entry:
  %o = loadlocal p
  %v = getfield %o, P.y
  ret %v
}
)",
                           M, Error));
  EXPECT_NE(Error.find("no field 'y'"), std::string::npos);
}

TEST(Verifier, RejectsMissingTerminator) {
  Module M;
  std::string Error;
  ASSERT_TRUE(parseModule("func f() {\nentry:\n  %a = mov 1\n}\n", M, Error))
      << Error;
  EXPECT_FALSE(verifyModule(M, Error));
  EXPECT_NE(Error.find("missing terminator"), std::string::npos);
}

TEST(Verifier, RejectsDoubleDefinition) {
  Module M;
  std::string Error;
  ASSERT_TRUE(parseModule(
      "func f() {\nentry:\n  %a = mov 1\n  %a = mov 2\n  ret\n}\n", M, Error));
  EXPECT_FALSE(verifyModule(M, Error));
  EXPECT_NE(Error.find("defined more than once"), std::string::npos);
}

TEST(Verifier, RejectsUndefinedUse) {
  Module M;
  std::string Error;
  ASSERT_TRUE(
      parseModule("func f(): i64 {\nentry:\n  ret %ghost\n}\n", M, Error));
  EXPECT_FALSE(verifyModule(M, Error));
  EXPECT_NE(Error.find("never defined"), std::string::npos);
}

TEST(Verifier, RejectsTypeErrors) {
  // Branch condition must be i1.
  Module M;
  std::string Error;
  ASSERT_TRUE(parseModule(R"(
func f() {
entry:
  %x = mov 5
  condbr %x, a, b
a:
  ret
b:
  ret
}
)",
                          M, Error));
  EXPECT_FALSE(verifyModule(M, Error));
  EXPECT_NE(Error.find("condition must be i1"), std::string::npos);
}

TEST(Verifier, RejectsArityMismatch) {
  Module M;
  std::string Error;
  ASSERT_TRUE(parseModule(R"(
func g(a: i64, b: i64) {
entry:
  ret
}
func f() {
entry:
  call g(1)
  ret
}
)",
                          M, Error));
  EXPECT_FALSE(verifyModule(M, Error));
  EXPECT_NE(Error.find("arity"), std::string::npos);
}

TEST(Verifier, AcceptsBarriersOnRefs) {
  Module M = parseAndVerify(R"(
class P { x: i64 }
func f(p: P): i64 {
entry:
  atomic_begin
  %o = loadlocal p
  open_read %o
  %v = getfield %o, P.x
  open_update %o
  log_undo_field %o, P.x
  setfield %o, P.x, 9
  atomic_end
  ret %v
}
)");
  EXPECT_EQ(M.Functions.size(), 1u);
}

TEST(Verifier, RejectsBarrierOnInt) {
  Module M;
  std::string Error;
  ASSERT_TRUE(parseModule(R"(
func f() {
entry:
  %x = mov 1
  open_read %x
  ret
}
)",
                          M, Error));
  EXPECT_FALSE(verifyModule(M, Error));
  EXPECT_NE(Error.find("must be a reference"), std::string::npos);
}

TEST(Dominators, LinearChain) {
  Module M = parseAndVerify(R"(
func f() {
entry:
  br mid
mid:
  br exit
exit:
  ret
}
)");
  DominatorTree DT(*M.Functions[0]);
  EXPECT_TRUE(DT.dominates(0, 1));
  EXPECT_TRUE(DT.dominates(0, 2));
  EXPECT_TRUE(DT.dominates(1, 2));
  EXPECT_FALSE(DT.dominates(2, 1));
  EXPECT_EQ(DT.idom(0), -1);
  EXPECT_EQ(DT.idom(1), 0);
  EXPECT_EQ(DT.idom(2), 1);
}

TEST(Dominators, Diamond) {
  Module M = parseAndVerify(R"(
func f(c: i1) {
entry:
  %x = loadlocal c
  condbr %x, left, right
left:
  br join
right:
  br join
join:
  ret
}
)");
  Function &F = *M.Functions[0];
  DominatorTree DT(F);
  int Entry = 0, Left = 1, Right = 2, Join = 3;
  EXPECT_TRUE(DT.dominates(Entry, Join));
  EXPECT_FALSE(DT.dominates(Left, Join));
  EXPECT_FALSE(DT.dominates(Right, Join));
  EXPECT_EQ(DT.idom(Join), Entry);
}

TEST(LoopInfoTest, FindsNaturalLoop) {
  Module M = parseAndVerify(SumList);
  Function &F = *M.Functions[0];
  DominatorTree DT(F);
  LoopInfo LI(F, DT);
  ASSERT_EQ(LI.loops().size(), 1u);
  const Loop &L = LI.loops()[0];
  EXPECT_EQ(F.Blocks[L.Header]->Name, "loop");
  ASSERT_EQ(L.Latches.size(), 1u);
  EXPECT_EQ(F.Blocks[L.Latches[0]]->Name, "body");
  EXPECT_TRUE(L.contains(L.Header));
  EXPECT_TRUE(L.contains(L.Latches[0]));
  EXPECT_FALSE(L.contains(3)); // exit
}

TEST(AtomicRegionsTest, TracksMembershipAcrossBlocks) {
  Module M = parseAndVerify(R"(
class P { x: i64 }
func f(p: P, c: i1): i64 {
entry:
  atomic_begin
  %cc = loadlocal c
  condbr %cc, a, b
a:
  br join
b:
  br join
join:
  atomic_end
  %o = loadlocal p
  %v = getfield %o, P.x
  ret %v
}
)");
  Function &F = *M.Functions[0];
  AtomicRegions AR(F);
  ASSERT_TRUE(AR.valid()) << AR.error();
  EXPECT_TRUE(AR.hasAtomic());
  EXPECT_FALSE(AR.inAtomicAtEntry(0));
  EXPECT_TRUE(AR.inAtomicAtEntry(1));
  EXPECT_TRUE(AR.inAtomicAtEntry(2));
  EXPECT_TRUE(AR.inAtomicAtEntry(3));
  // After atomic_end in join, the getfield is outside.
  EXPECT_TRUE(AR.inAtomic(3, 0));  // atomic_end itself
  EXPECT_FALSE(AR.inAtomic(3, 1)); // loadlocal p
}

TEST(AtomicRegionsTest, RejectsInconsistentJoin) {
  Module M = parseModuleOrDie(R"(
func f(c: i1) {
entry:
  %cc = loadlocal c
  condbr %cc, a, b
a:
  atomic_begin
  br join
b:
  br join
join:
  atomic_end
  ret
}
)");
  AtomicRegions AR(*M.Functions[0]);
  // Depending on traversal order this is reported either as an inconsistent
  // join or as an atomic_end outside a region; both diagnose the same bug.
  EXPECT_FALSE(AR.valid());
  EXPECT_FALSE(AR.error().empty());
}

TEST(AtomicRegionsTest, RejectsReturnInsideAtomic) {
  Module M = parseModuleOrDie(R"(
func f() {
entry:
  atomic_begin
  ret
}
)");
  AtomicRegions AR(*M.Functions[0]);
  EXPECT_FALSE(AR.valid());
  EXPECT_NE(AR.error().find("return inside atomic"), std::string::npos);
}
