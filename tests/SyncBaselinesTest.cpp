//===- tests/SyncBaselinesTest.cpp - Lock baseline tests ------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "sync/FineGrainedHashMap.h"
#include "sync/HandOverHandList.h"

#include "support/Random.h"
#include "support/ThreadBarrier.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::sync;

TEST(FineGrainedHashMap, BasicOps) {
  FineGrainedHashMap Map(64);
  EXPECT_TRUE(Map.insert(1, 10));
  EXPECT_FALSE(Map.insert(1, 11));
  int64_t V = 0;
  ASSERT_TRUE(Map.lookup(1, V));
  EXPECT_EQ(V, 11);
  EXPECT_FALSE(Map.lookup(2, V));
  EXPECT_TRUE(Map.erase(1));
  EXPECT_FALSE(Map.erase(1));
  EXPECT_EQ(Map.sizeSlow(), 0u);
}

TEST(FineGrainedHashMap, RandomAgainstModel) {
  FineGrainedHashMap Map(32);
  std::map<int64_t, int64_t> Model;
  Xoshiro256 Rng(5);
  for (int I = 0; I < 3000; ++I) {
    int64_t Key = static_cast<int64_t>(Rng.nextBelow(300));
    switch (Rng.nextBelow(3)) {
    case 0: {
      int64_t Value = static_cast<int64_t>(Rng.next() & 0xffff);
      EXPECT_EQ(Map.insert(Key, Value), Model.find(Key) == Model.end());
      Model[Key] = Value;
      break;
    }
    case 1:
      EXPECT_EQ(Map.erase(Key), Model.erase(Key) == 1);
      break;
    default: {
      int64_t V = 0;
      auto It = Model.find(Key);
      EXPECT_EQ(Map.lookup(Key, V), It != Model.end());
      if (It != Model.end())
        EXPECT_EQ(V, It->second);
    }
    }
  }
  EXPECT_EQ(Map.sizeSlow(), Model.size());
}

TEST(FineGrainedHashMap, ConcurrentDisjointInserts) {
  FineGrainedHashMap Map(256);
  constexpr int NumThreads = 4, PerThread = 2000;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (int64_t I = 0; I < PerThread; ++I)
        Map.insert(T * 100000 + I, I);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Map.sizeSlow(), NumThreads * PerThread);
}

TEST(HandOverHandListTest, BasicOps) {
  HandOverHandList List;
  EXPECT_TRUE(List.insert(5, 50));
  EXPECT_TRUE(List.insert(1, 10));
  EXPECT_TRUE(List.insert(3, 30));
  EXPECT_FALSE(List.insert(3, 31));
  int64_t V = 0;
  ASSERT_TRUE(List.lookup(3, V));
  EXPECT_EQ(V, 31);
  EXPECT_TRUE(List.erase(1));
  EXPECT_FALSE(List.contains(1));
  EXPECT_EQ(List.sizeSlow(), 2u);
  EXPECT_TRUE(List.isSortedSlow());
}

TEST(HandOverHandListTest, RandomAgainstModel) {
  HandOverHandList List;
  std::map<int64_t, int64_t> Model;
  Xoshiro256 Rng(17);
  for (int I = 0; I < 3000; ++I) {
    int64_t Key = static_cast<int64_t>(Rng.nextBelow(200));
    if (Rng.nextPercent(60)) {
      int64_t Value = static_cast<int64_t>(Rng.next() & 0xffff);
      EXPECT_EQ(List.insert(Key, Value), Model.find(Key) == Model.end());
      Model[Key] = Value;
    } else {
      EXPECT_EQ(List.erase(Key), Model.erase(Key) == 1);
    }
  }
  EXPECT_EQ(List.sizeSlow(), Model.size());
  EXPECT_TRUE(List.isSortedSlow());
}

TEST(HandOverHandListTest, ConcurrentInterleavedInserts) {
  HandOverHandList List;
  constexpr int NumThreads = 4, PerThread = 500;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (int64_t I = 0; I < PerThread; ++I)
        List.insert(I * NumThreads + T, T);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(List.sizeSlow(), NumThreads * PerThread);
  EXPECT_TRUE(List.isSortedSlow());
}

TEST(HandOverHandListTest, ConcurrentMixedOpsStaySorted) {
  HandOverHandList List;
  for (int64_t K = 0; K < 100; ++K)
    List.insert(K * 2, K);
  constexpr int NumThreads = 4;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(300 + T);
      Barrier.arriveAndWait();
      for (int I = 0; I < 1500; ++I) {
        int64_t Key = static_cast<int64_t>(Rng.nextBelow(300));
        switch (Rng.nextBelow(3)) {
        case 0:
          List.insert(Key, T);
          break;
        case 1:
          List.erase(Key);
          break;
        default:
          List.contains(Key);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_TRUE(List.isSortedSlow());
}
