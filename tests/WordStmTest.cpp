//===- tests/WordStmTest.cpp - TL2-style word STM tests ------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "wstm/WordStm.h"

#include "gc/EpochManager.h"
#include "stm/Stm.h"

#include "support/Random.h"
#include "support/ThreadBarrier.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace otm;
using namespace otm::wstm;

TEST(WriteSetTest, PutLookupOverwrite) {
  WriteSet WS;
  int Dummy1, Dummy2;
  WS.put(&Dummy1, 10, nullptr);
  WS.put(&Dummy2, 20, nullptr);
  uint64_t Bits = 0;
  ASSERT_TRUE(WS.lookup(&Dummy1, Bits));
  EXPECT_EQ(Bits, 10u);
  WS.put(&Dummy1, 30, nullptr); // overwrite keeps one entry
  ASSERT_TRUE(WS.lookup(&Dummy1, Bits));
  EXPECT_EQ(Bits, 30u);
  EXPECT_EQ(WS.size(), 2u);
  EXPECT_FALSE(WS.lookup(&Bits, Bits));
}

TEST(WriteSetTest, ClearForgetsEntries) {
  WriteSet WS;
  int Dummy;
  WS.put(&Dummy, 1, nullptr);
  WS.clear();
  uint64_t Bits;
  EXPECT_FALSE(WS.lookup(&Dummy, Bits));
  EXPECT_TRUE(WS.empty());
}

TEST(WriteSetTest, GrowthKeepsAllEntries) {
  WriteSet WS;
  std::vector<std::unique_ptr<int>> Keys;
  for (int I = 0; I < 1000; ++I) {
    Keys.push_back(std::make_unique<int>(I));
    WS.put(Keys.back().get(), static_cast<uint64_t>(I), nullptr);
  }
  for (int I = 0; I < 1000; ++I) {
    uint64_t Bits = 0;
    ASSERT_TRUE(WS.lookup(Keys[I].get(), Bits));
    EXPECT_EQ(Bits, static_cast<uint64_t>(I));
  }
}

TEST(VersionedLockTest, LockUnlockCycle) {
  VersionedLock L;
  uint64_t Saved = 99;
  ASSERT_TRUE(L.tryLock(Saved, 0x1000));
  EXPECT_EQ(Saved, 0u);
  EXPECT_TRUE(VersionedLock::isLocked(L.load()));
  uint64_t Other;
  EXPECT_FALSE(L.tryLock(Other, 0x2000));
  L.unlockToVersion(7);
  EXPECT_FALSE(VersionedLock::isLocked(L.load()));
  EXPECT_EQ(VersionedLock::versionOf(L.load()), 7u);
}

TEST(WordStmBasic, CommitPublishes) {
  WCell<int64_t> X(0), Y(0);
  WordStm::atomic([&](WTxManager &Tx) {
    Tx.write(X, int64_t{5});
    Tx.write(Y, int64_t{6});
  });
  EXPECT_EQ(X.load(), 5);
  EXPECT_EQ(Y.load(), 6);
}

TEST(WordStmBasic, ReadOwnWrite) {
  WCell<int64_t> X(1);
  int64_t Seen = 0;
  WordStm::atomic([&](WTxManager &Tx) {
    Tx.write(X, int64_t{42});
    Seen = Tx.read(X);
  });
  EXPECT_EQ(Seen, 42);
}

TEST(WordStmBasic, BufferedWritesInvisibleUntilCommit) {
  WCell<int64_t> X(1);
  WordStm::atomic([&](WTxManager &Tx) {
    Tx.write(X, int64_t{2});
    // Lazy versioning: memory must not change before commit.
    EXPECT_EQ(X.load(), 1);
  });
  EXPECT_EQ(X.load(), 2);
}

TEST(WordStmBasic, UserExceptionRollsBackAndPropagates) {
  WCell<int64_t> X(1);
  struct Boom {};
  EXPECT_THROW(WordStm::atomic([&](WTxManager &Tx) {
                 Tx.write(X, int64_t{9});
                 throw Boom{};
               }),
               Boom);
  EXPECT_EQ(X.load(), 1);
}

TEST(WordStmBasic, AtomicResult) {
  WCell<int64_t> X(20);
  int64_t R = WordStm::atomicResult(
      [&](WTxManager &Tx) { return Tx.read(X) + 2; });
  EXPECT_EQ(R, 22);
}

TEST(WordStmBasic, NestedFlattening) {
  WCell<int64_t> X(0);
  WordStm::atomic([&](WTxManager &Outer) {
    Outer.write(X, int64_t{1});
    WordStm::atomic([&](WTxManager &Inner) {
      EXPECT_EQ(&Inner, &Outer);
      EXPECT_EQ(Inner.read(X), 1);
      Inner.write(X, int64_t{2});
    });
    EXPECT_EQ(Outer.read(X), 2);
  });
  EXPECT_EQ(X.load(), 2);
}

TEST(WordStmConcurrency, NoLostUpdates) {
  constexpr int NumThreads = 4;
  constexpr int PerThread = 2000;
  WCell<int64_t> Counter(0);
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      Barrier.arriveAndWait();
      for (int I = 0; I < PerThread; ++I)
        WordStm::atomic([&](WTxManager &Tx) {
          Tx.write(Counter, Tx.read(Counter) + 1);
        });
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Counter.load(), NumThreads * PerThread);
}

TEST(WordStmConcurrency, InvariantPairHolds) {
  WCell<int64_t> X(0), Y(0);
  std::atomic<bool> Stop{false};
  std::atomic<int> Violations{0};

  std::thread Writer([&] {
    Xoshiro256 Rng(3);
    for (int I = 0; I < 20000; ++I) {
      int64_t D = static_cast<int64_t>(Rng.nextBelow(9)) - 4;
      WordStm::atomic([&](WTxManager &Tx) {
        Tx.write(X, Tx.read(X) + D);
        Tx.write(Y, Tx.read(Y) - D);
      });
    }
    Stop.store(true);
  });
  std::thread Checker([&] {
    while (!Stop.load()) {
      int64_t SX = 0, SY = 0;
      WordStm::atomic([&](WTxManager &Tx) {
        SX = Tx.read(X);
        SY = Tx.read(Y);
      });
      if (SX + SY != 0)
        ++Violations;
    }
  });
  Writer.join();
  Checker.join();
  EXPECT_EQ(Violations.load(), 0);
}

TEST(WordStmConcurrency, StaleReadAborts) {
  // A transaction that began before a concurrent commit and then reads the
  // committed location must restart (version > read version).
  WCell<int64_t> X(0);
  ThreadBarrier Sync(2);
  std::atomic<int> Attempts{0};
  int64_t Final = -1;

  std::thread ReaderThread([&] {
    WordStm::atomic([&](WTxManager &Tx) {
      if (++Attempts == 1) {
        Sync.arriveAndWait(); // writer commits now
        Sync.arriveAndWait();
      }
      Final = Tx.read(X);
    });
  });
  std::thread WriterThread([&] {
    Sync.arriveAndWait();
    WordStm::atomic([&](WTxManager &Tx) { Tx.write(X, int64_t{5}); });
    Sync.arriveAndWait();
  });
  ReaderThread.join();
  WriterThread.join();
  EXPECT_GE(Attempts.load(), 2);
  EXPECT_EQ(Final, 5);
}

namespace {

std::atomic<int> WNodeLive{0};

struct WNode {
  WNode() { ++WNodeLive; }
  ~WNode() { --WNodeLive; }
  WCell<int64_t> Value;
};

} // namespace

TEST(WordStmAlloc, AbortFreesRecordedAllocations) {
  gc::EpochManager::global().drainForTesting();
  int Before = WNodeLive.load();
  struct Boom {};
  EXPECT_THROW(WordStm::atomic([&](WTxManager &Tx) {
                 WNode *N = new WNode();
                 Tx.recordAlloc(N);
                 throw Boom{};
               }),
               Boom);
  gc::EpochManager::global().drainForTesting();
  EXPECT_EQ(WNodeLive.load(), Before) << "aborted allocation leaked";
}

TEST(WordStmAlloc, RetireOnCommitFreesAfterCommitOnly) {
  gc::EpochManager::global().drainForTesting();
  WNode *Kept = new WNode();
  int After = WNodeLive.load();

  struct Boom {};
  EXPECT_THROW(WordStm::atomic([&](WTxManager &Tx) {
                 Tx.retireOnCommit(Kept);
                 throw Boom{};
               }),
               Boom);
  gc::EpochManager::global().drainForTesting();
  EXPECT_EQ(WNodeLive.load(), After) << "abort must keep the object";

  WordStm::atomic([&](WTxManager &Tx) { Tx.retireOnCommit(Kept); });
  gc::EpochManager::global().drainForTesting();
  EXPECT_EQ(WNodeLive.load(), After - 1);
}

TEST(WordStmStats, CountersAccumulate) {
  stm::Stm::resetGlobalStats();
  WCell<int64_t> X(0);
  for (int I = 0; I < 10; ++I)
    WordStm::atomic([&](WTxManager &Tx) { Tx.write(X, Tx.read(X) + 1); });
  WTxManager::current().flushStats();
  stm::TxStats S = stm::Stm::globalStats();
  EXPECT_GE(S.Starts, 10u);
  EXPECT_GE(S.Commits, 10u);
  EXPECT_GE(S.OpensForRead, 10u);
  EXPECT_GE(S.OpensForUpdate, 10u);
}

TEST(WordStmRegression, ModeratelyStaleWriterMustAbort) {
  // Regression for a double-decoded version check: the commit-time
  // pre-lock validation compared Saved/2 against the read version, so a
  // writer whose stripe advanced to at most twice its read version
  // committed stale data without aborting (observed as lost hashtable
  // inserts under preemption). The stale writer below sits exactly in
  // that window and must retry, not clobber.
  WCell<int64_t> X(0);
  // Raise both the global clock and X's stripe version to 10.
  for (int I = 0; I < 10; ++I)
    WordStm::atomic([&](WTxManager &Tx) { Tx.write(X, Tx.read(X) + 1); });

  ThreadBarrier Sync(2);
  std::atomic<int> Attempts{0};
  std::thread Stale([&] {
    WordStm::atomic([&](WTxManager &Tx) {
      int64_t Seen = Tx.read(X); // RV = 10 on the first attempt
      if (++Attempts == 1) {
        Sync.arriveAndWait(); // main commits 5 more times (version 15)
        Sync.arriveAndWait();
      }
      Tx.write(X, Seen + 100);
    });
  });
  Sync.arriveAndWait();
  for (int I = 0; I < 5; ++I)
    WordStm::atomic([&](WTxManager &Tx) { Tx.write(X, Tx.read(X) + 1); });
  Sync.arriveAndWait();
  Stale.join();

  EXPECT_GE(Attempts.load(), 2) << "stale writer committed without retry";
  EXPECT_EQ(X.load(), 115); // 15 from increments + 100 from the fresh retry
}

TEST(WordStmRegression, PreemptedInsertersLoseNothing) {
  // End-to-end version of the same bug: many rounds of disjoint-key
  // inserts; any stale-commit clobber shows up as a short final count.
  for (int Round = 0; Round < 20; ++Round) {
    WCell<int64_t> Cells[64];
    constexpr int NumThreads = 4, PerThread = 400;
    ThreadBarrier Barrier(NumThreads);
    std::vector<std::thread> Threads;
    for (int T = 0; T < NumThreads; ++T)
      Threads.emplace_back([&] {
        Barrier.arriveAndWait();
        Xoshiro256 Rng(Round * 131 + 7);
        for (int I = 0; I < PerThread; ++I) {
          WCell<int64_t> &C = Cells[Rng.nextBelow(64)];
          WordStm::atomic(
              [&](WTxManager &Tx) { Tx.write(C, Tx.read(C) + 1); });
        }
      });
    for (std::thread &T : Threads)
      T.join();
    int64_t Total = 0;
    for (WCell<int64_t> &C : Cells)
      Total += C.load();
    ASSERT_EQ(Total, NumThreads * PerThread) << "round " << Round;
  }
}
