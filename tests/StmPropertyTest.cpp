//===- tests/StmPropertyTest.cpp - Parameterized STM properties ----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property sweeps over the STM configuration space:
///
///   - money conservation under (threads × transaction size × filters);
///   - exact counter totals under (threads × conflict-spin budget),
///     covering both the wait-out and abort-self contention paths;
///   - Field<T> round-trips for every supported payload type, including
///     undo-restore after aborts.
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"

#include "support/Random.h"
#include "support/ThreadBarrier.h"

#include <gtest/gtest.h>

#include <thread>
#include <tuple>
#include <vector>

using namespace otm;
using namespace otm::stm;

namespace {

struct Account : TxObject {
  Field<int64_t> Balance;
};

struct ConfigGuard {
  ConfigGuard() : Saved(TxManager::config()) {}
  ~ConfigGuard() { TxManager::config() = Saved; }
  TxConfig Saved;
};

} // namespace

//===----------------------------------------------------------------------===
// Money conservation sweep
//===----------------------------------------------------------------------===

class TransferSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransferSweep,
    ::testing::Combine(::testing::Values(2, 4, 8),     // threads
                       ::testing::Values(2, 8, 24),    // accounts per tx
                       ::testing::Values(true, false)),// filters on/off
    [](const ::testing::TestParamInfo<std::tuple<int, int, bool>> &Info) {
      return "t" + std::to_string(std::get<0>(Info.param)) + "_span" +
             std::to_string(std::get<1>(Info.param)) +
             (std::get<2>(Info.param) ? "_filt" : "_nofilt");
    });

TEST_P(TransferSweep, TotalBalanceConserved) {
  auto [NumThreads, Span, Filters] = GetParam();
  ConfigGuard Guard;
  TxManager::config().FilterReads = Filters;
  TxManager::config().FilterUndo = Filters;

  constexpr int NumAccounts = 48;
  constexpr int TxPerThread = 400;
  std::vector<Account> Accounts(NumAccounts);
  for (Account &A : Accounts)
    A.Balance.store(100);

  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T, Span = Span] {
      Xoshiro256 Rng(1234 + T);
      Barrier.arriveAndWait();
      for (int I = 0; I < TxPerThread; ++I) {
        // Rotate a random amount through `Span` accounts: every account in
        // the cycle gives to the next, so the total is conserved only if
        // the whole cycle commits atomically.
        std::size_t Start = Rng.nextBelow(NumAccounts);
        int64_t Amount = static_cast<int64_t>(Rng.nextBelow(20));
        Stm::atomic([&](TxManager &Tx) {
          int64_t Carry =
              Tx.read(&Accounts[Start], &Account::Balance);
          (void)Carry;
          for (int S = 0; S < Span; ++S) {
            Account &From = Accounts[(Start + S) % NumAccounts];
            Account &To = Accounts[(Start + S + 1) % NumAccounts];
            int64_t F = Tx.read(&From, &Account::Balance);
            int64_t G = Tx.read(&To, &Account::Balance);
            Tx.write(&From, &Account::Balance, F - Amount);
            Tx.write(&To, &Account::Balance, G + Amount);
          }
        });
      }
    });
  for (std::thread &T : Threads)
    T.join();

  int64_t Total = 0;
  for (Account &A : Accounts)
    Total += A.Balance.load();
  EXPECT_EQ(Total, NumAccounts * 100);
}

//===----------------------------------------------------------------------===
// Contention-path sweep: spin budget 0 forces the abort-self path on
// every ownership conflict; a large budget exercises waiting out owners.
//===----------------------------------------------------------------------===

class SpinBudgetSweep : public ::testing::TestWithParam<unsigned> {};

INSTANTIATE_TEST_SUITE_P(Sweep, SpinBudgetSweep,
                         ::testing::Values(0u, 1u, 16u, 1024u));

TEST_P(SpinBudgetSweep, CounterExactUnderConflicts) {
  ConfigGuard Guard;
  TxManager::config().ConflictSpins = GetParam();

  Account Hot;
  constexpr int NumThreads = 4;
  constexpr int PerThread = 1500;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      Barrier.arriveAndWait();
      for (int I = 0; I < PerThread; ++I)
        Stm::atomic([&](TxManager &Tx) {
          Tx.write(&Hot, &Account::Balance,
                   Tx.read(&Hot, &Account::Balance) + 1);
        });
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Hot.Balance.load(), NumThreads * PerThread);
}

//===----------------------------------------------------------------------===
// Field<T> payload round-trips, including undo restore
//===----------------------------------------------------------------------===

namespace {

template <typename T> void roundTripPayload(T First, T Second) {
  struct Holder : TxObject {
    Field<T> Payload;
  } H;
  H.Payload.store(First);

  // Committed write is visible.
  Stm::atomic([&](TxManager &Tx) {
    Tx.openForUpdate(&H);
    Tx.logUndo(&H.Payload);
    H.Payload.store(Second);
  });
  EXPECT_EQ(H.Payload.load(), Second);

  // Aborted write restores the exact bit pattern.
  Stm::atomic([&](TxManager &Tx) {
    Tx.openForUpdate(&H);
    Tx.logUndo(&H.Payload);
    H.Payload.store(First);
    Tx.userAbort();
  });
  EXPECT_EQ(H.Payload.load(), Second);
}

} // namespace

TEST(FieldPayloads, SignedExtremes) {
  roundTripPayload<int64_t>(INT64_MIN, INT64_MAX);
  roundTripPayload<int64_t>(-1, 0);
}

TEST(FieldPayloads, Narrow) {
  roundTripPayload<int8_t>(-128, 127);
  roundTripPayload<uint16_t>(0, 65535);
  roundTripPayload<int32_t>(INT32_MIN, INT32_MAX);
}

TEST(FieldPayloads, BoolAndChar) {
  roundTripPayload<bool>(false, true);
  roundTripPayload<char>('a', 'z');
}

TEST(FieldPayloads, Pointers) {
  int A = 1, B = 2;
  roundTripPayload<int *>(&A, &B);
  roundTripPayload<int *>(nullptr, &A);
}

TEST(FieldPayloads, Doubles) {
  roundTripPayload<double>(0.0, -3.25e300);
  roundTripPayload<double>(1e-300, 2.5);
}

//===----------------------------------------------------------------------===
// Deep nesting
//===----------------------------------------------------------------------===

TEST(StmNesting, DeepFlatteningCommitsOnce) {
  Account A;
  // Drain this thread's counters from earlier tests before opening the
  // measurement window (stats flush lazily per thread).
  TxManager::current().flushStats();
  Stm::resetGlobalStats();
  std::function<void(int)> Recurse = [&](int Depth) {
    Stm::atomic([&](TxManager &Tx) {
      Tx.write(&A, &Account::Balance,
               Tx.read(&A, &Account::Balance) + 1);
      if (Depth > 0)
        Recurse(Depth - 1);
    });
  };
  Recurse(20);
  TxManager::current().flushStats();
  EXPECT_EQ(A.Balance.load(), 21);
  EXPECT_EQ(Stm::globalStats().Commits, 1u)
      << "flattened nesting must commit exactly once";
}

TEST(StmNesting, AbortInDeepNestingRollsBackEverything) {
  Account A;
  A.Balance.store(7);
  std::function<void(int)> Recurse = [&](int Depth) {
    Stm::atomic([&](TxManager &Tx) {
      Tx.write(&A, &Account::Balance,
               Tx.read(&A, &Account::Balance) + 1);
      if (Depth > 0) {
        Recurse(Depth - 1);
        return;
      }
      Tx.userAbort(); // innermost level aborts the whole flat nest
    });
  };
  Recurse(10);
  EXPECT_EQ(A.Balance.load(), 7) << "all nested writes must roll back";
}
