//===- tests/HtmTest.cpp - Hardware execution tier tests -----------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hybrid HTM/STM tier (DESIGN.md §3.12): the capability probe, the
/// OTM_HTM runtime kill switch, the three-rung ladder escalation
/// (hardware -> STM retry loop -> serial irrevocable), the serial-gate
/// suppression rule, nested subsumption inside hardware regions, the
/// attempt/commit/abort accounting, and a differential check that the
/// hardware path computes the same answers as the software path.
///
/// Unlike the other suites, this binary is registered WITHOUT the
/// OTM_HTM=0 environment pin, so it sees the machine's real capability.
/// Every hardware-dependent test skips itself when the runtime probe
/// reports no working RTM (or the tier is compiled out): the suite still
/// links and passes everywhere, proving the same-surface stub contract.
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"
#include "wstm/WordStm.h"

#include "stm/TxGlobal.h"
#include "txn/CmStats.h"
#include "txn/Htm.h"
#include "txn/SerialGate.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::stm;

namespace {

struct Counter : TxObject {
  Field<int64_t> Value;
};

struct ConfigGuard {
  ConfigGuard() : Saved(TxManager::config()) {}
  ~ConfigGuard() { TxManager::config() = Saved; }
  TxConfig Saved;
};

/// Saves and restores one environment variable across a test body.
struct EnvGuard {
  explicit EnvGuard(const char *Name) : Name(Name) {
    if (const char *V = std::getenv(Name)) {
      Had = true;
      Saved = V;
    }
  }
  ~EnvGuard() {
    if (Had)
      setenv(Name, Saved.c_str(), 1);
    else
      unsetenv(Name);
  }
  const char *Name;
  bool Had = false;
  std::string Saved;
};

void resetStats() {
  TxManager::current().flushStats();
  Stm::resetGlobalStats();
}

TxStats statsNow() {
  TxManager::current().flushStats();
  return Stm::globalStats();
}

bool hardwareAvailable() {
  return txn::htm::HtmRuntime::instance().available();
}

/// Spins until \p Pred holds; fails (returns false) after ~10 seconds.
template <typename PredType> bool spinUntil(PredType Pred) {
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!Pred()) {
    if (std::chrono::steady_clock::now() > Deadline)
      return false;
    std::this_thread::yield();
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Capability probe and kill switch
//===----------------------------------------------------------------------===//

TEST(HtmProbe, ReportsConsistentCapability) {
  const txn::htm::HtmRuntime &R = txn::htm::HtmRuntime::instance();
  // available() is the conjunction of the three gates, never more.
  if (R.available()) {
    EXPECT_TRUE(R.cpuidSupported());
    EXPECT_TRUE(R.probeCommitted());
    EXPECT_FALSE(R.envDisabled());
  }
  // A functional probe commit without CPUID advertising RTM is impossible
  // (the probe never runs xbegin unless CPUID said so).
  if (R.probeCommitted()) {
    EXPECT_TRUE(R.cpuidSupported());
  }
#if !OTM_HTM
  // Compiled out: the stub runtime must answer "no" on every gate.
  EXPECT_FALSE(R.available());
  EXPECT_FALSE(R.cpuidSupported());
  EXPECT_FALSE(R.probeCommitted());
#endif
}

TEST(HtmProbe, RuntimeKillSwitchZeroesDefaultAttempts) {
  EnvGuard Htm("OTM_HTM"), Attempts("OTM_HTM_ATTEMPTS");
  setenv("OTM_HTM", "0", 1);
  setenv("OTM_HTM_ATTEMPTS", "5", 1);
  EXPECT_EQ(TxConfig::defaultHtmAttempts(), 0u); // kill switch wins
  setenv("OTM_HTM", "1", 1);
  EXPECT_EQ(TxConfig::defaultHtmAttempts(), 5u);
  unsetenv("OTM_HTM");
  EXPECT_EQ(TxConfig::defaultHtmAttempts(), 5u);
  unsetenv("OTM_HTM_ATTEMPTS");
  EXPECT_EQ(TxConfig::defaultHtmAttempts(), 8u);
}

//===----------------------------------------------------------------------===//
// Ladder behaviour
//===----------------------------------------------------------------------===//

TEST(HtmLadder, ForcedFallbackRunsSoftware) {
  ConfigGuard G;
  TxManager::config().HtmAttempts = 0;
  Counter C;
  resetStats();
  for (int I = 0; I < 10; ++I)
    Stm::atomic([&](TxManager &Tx) {
      Tx.write(&C, &Counter::Value, Tx.read(&C, &Counter::Value) + 1);
    });
  int64_t Got = -1;
  Stm::atomic([&](TxManager &Tx) { Got = Tx.read(&C, &Counter::Value); });
  EXPECT_EQ(Got, 10);
  TxStats S = statsNow();
  EXPECT_EQ(S.Commits, 11u);
  EXPECT_EQ(S.HtmAttempts, 0u); // budget 0: the hardware rung never runs
  EXPECT_EQ(S.HtmCommits, 0u);
}

TEST(HtmLadder, HardwareCommitsWhenAvailable) {
  if (!hardwareAvailable())
    GTEST_SKIP() << "no working RTM on this machine (or OTM_HTM off)";
  ConfigGuard G;
  TxManager::config().HtmAttempts = 100;
  Counter C;
  // Warm the lazy globals (lock tables, clocks, TLS) in software first so
  // hardware attempts do not abort on one-time initialization.
  Stm::atomic([&](TxManager &Tx) { Tx.write(&C, &Counter::Value, int64_t{0}); });
  resetStats();
  constexpr int Txns = 200;
  for (int I = 0; I < Txns; ++I)
    Stm::atomic([&](TxManager &Tx) {
      Tx.write(&C, &Counter::Value, Tx.read(&C, &Counter::Value) + 1);
    });
  int64_t Got = -1;
  Stm::atomic([&](TxManager &Tx) { Got = Tx.read(&C, &Counter::Value); });
  EXPECT_EQ(Got, Txns);
  TxStats S = statsNow();
  EXPECT_EQ(S.Commits, unsigned(Txns) + 1);
  // Uncontended single-thread counter bumps are the hardware tier's bread
  // and butter: the overwhelming majority must commit in hardware.
  EXPECT_GT(S.HtmCommits, 0u);
  EXPECT_GE(S.HtmAttempts, S.HtmCommits);
  EXPECT_EQ(S.Aborts, 0u); // no software aborts in a single-thread run
}

TEST(HtmLadder, EscalatesUnsupportedOpToStm) {
  ConfigGuard G;
  TxManager::config().HtmAttempts = 8;
  txn::CmStatsSnapshot Before = txn::CmStats::instance().snapshot();
  resetStats();
  Counter *Obj = nullptr;
  // allocInTx registers an abort-time deletion record, which the hardware
  // mode cannot express: the region must xabort(CodeUnsupported) and the
  // transaction must complete on the software rung, exactly once.
  Stm::atomic([&](TxManager &Tx) {
    Obj = Tx.allocInTx<Counter>();
    Tx.write(Obj, &Counter::Value, int64_t{42});
  });
  ASSERT_NE(Obj, nullptr);
  // Snapshot before the verification read: that read is hardware-eligible
  // and would otherwise fold its own HtmCommit into the assertion below.
  TxStats S = statsNow();
  txn::CmStatsSnapshot After = txn::CmStats::instance().snapshot();
  int64_t Got = -1;
  Stm::atomic([&](TxManager &Tx) { Got = Tx.read(Obj, &Counter::Value); });
  EXPECT_EQ(Got, 42);
  EXPECT_EQ(S.Commits, 1u);
  if (hardwareAvailable()) {
    // The first attempt entered hardware, hit the unsupported op, and fell
    // through; the software commit is the one that stuck.
    EXPECT_GE(After.HtmAbortsUnsupported - Before.HtmAbortsUnsupported, 1u);
    EXPECT_GE(After.HtmFallbacks - Before.HtmFallbacks, 1u);
    EXPECT_EQ(S.HtmCommits, 0u);
  } else {
    EXPECT_EQ(S.HtmAttempts, 0u);
  }
  delete Obj;
}

TEST(HtmLadder, SerialGateSuppressesHardware) {
  ConfigGuard G;
  TxManager::config().HtmAttempts = 8;
  txn::SerialGate &Gate = txn::SerialGate::instance();
  txn::SerialGate::Slot &Mine = Gate.slotForCurrentThread();
  Counter C;
  resetStats();
  uint64_t WaitsBefore = txn::CmStats::instance().snapshot().GateWaits;
  Gate.enterExclusive(Mine);
  std::thread Worker([&] {
    Stm::atomic([&](TxManager &Tx) {
      Tx.write(&C, &Counter::Value, Tx.read(&C, &Counter::Value) + 1);
    });
    TxManager::current().flushStats();
  });
  // The worker must reach the gate in software — its hardware rung sees
  // exclusiveActive() and bails without a single attempt.
  ASSERT_TRUE(spinUntil([&] {
    return txn::CmStats::instance().snapshot().GateWaits > WaitsBefore;
  }));
  Gate.exitExclusive();
  Worker.join();
  TxStats S = statsNow();
  EXPECT_EQ(S.Commits, 1u);
  EXPECT_EQ(S.HtmAttempts, 0u); // suppressed while the gate was held
  int64_t Got = -1;
  Stm::atomic([&](TxManager &Tx) { Got = Tx.read(&C, &Counter::Value); });
  EXPECT_EQ(Got, 1);
}

TEST(HtmLadder, NestedTransactionSubsumes) {
  ConfigGuard G;
  TxManager::config().HtmAttempts = 100;
  Counter C;
  Stm::atomic([&](TxManager &Tx) { Tx.write(&C, &Counter::Value, int64_t{0}); });
  resetStats();
  constexpr int Outers = 10;
  for (int I = 0; I < Outers; ++I)
    Stm::atomic([&](TxManager &Outer) {
      Outer.write(&C, &Counter::Value, Outer.read(&C, &Counter::Value) + 1);
      Stm::atomic([&](TxManager &Inner) {
        Inner.write(&C, &Counter::Value, Inner.read(&C, &Counter::Value) + 1);
      });
    });
  int64_t Got = -1;
  Stm::atomic([&](TxManager &Tx) { Got = Tx.read(&C, &Counter::Value); });
  EXPECT_EQ(Got, 2 * Outers);
  TxStats S = statsNow();
  EXPECT_EQ(S.Commits, unsigned(Outers) + 1);
  EXPECT_EQ(S.SubsumedTx, unsigned(Outers)); // inner flattened, both tiers
  if (hardwareAvailable()) {
    EXPECT_GT(S.HtmCommits, 0u);
  }
}

TEST(HtmLadder, UserAbortDoesNotRetryOnAnyTier) {
  ConfigGuard G;
  TxManager::config().HtmAttempts = 8;
  Counter C;
  Stm::atomic([&](TxManager &Tx) { Tx.write(&C, &Counter::Value, int64_t{7}); });
  resetStats();
  Stm::atomic([&](TxManager &Tx) {
    Tx.write(&C, &Counter::Value, int64_t{99});
    Tx.userAbort();
  });
  int64_t Got = -1;
  Stm::atomic([&](TxManager &Tx) { Got = Tx.read(&C, &Counter::Value); });
  EXPECT_EQ(Got, 7); // the write rolled back on whichever tier ran it
  TxStats S = statsNow();
  EXPECT_EQ(S.Starts, 2u); // the aborted txn + the verification read
  EXPECT_EQ(S.Commits, 1u);
  EXPECT_EQ(S.Aborts, 1u);
  EXPECT_EQ(S.AbortsByUser, 1u);
}

//===----------------------------------------------------------------------===//
// Word STM hardware path
//===----------------------------------------------------------------------===//

TEST(HtmWstm, HardwareAndSoftwareAgree) {
  ConfigGuard G;
  wstm::WCell<int64_t> Cell;
  wstm::WordStm::atomic(
      [&](wstm::WTxManager &Tx) { Tx.write(Cell, int64_t{0}); });
  for (unsigned Budget : {0u, 8u}) {
    TxManager::config().HtmAttempts = Budget;
    for (int I = 0; I < 50; ++I)
      wstm::WordStm::atomic([&](wstm::WTxManager &Tx) {
        Tx.write(Cell, Tx.read(Cell) + 1);
      });
  }
  int64_t Got = wstm::WordStm::atomicResult(
      [&](wstm::WTxManager &Tx) { return Tx.read(Cell); });
  EXPECT_EQ(Got, 100);
}

//===----------------------------------------------------------------------===//
// Differential: hardware on vs off, multithreaded
//===----------------------------------------------------------------------===//

TEST(HtmDifferential, HtmOnAndOffComputeIdenticalFinalState) {
  constexpr int Threads = 4;
  constexpr int TxnsPerThread = 250;
  constexpr int Objects = 8;
  uint64_t CommitTotals[2] = {0, 0};
  int64_t Sums[2] = {0, 0};
  for (int Mode = 0; Mode < 2; ++Mode) {
    ConfigGuard G;
    TxManager::config().HtmAttempts = Mode == 0 ? 8 : 0;
    std::vector<Counter> Objs(Objects);
    resetStats();
    std::vector<std::thread> Workers;
    for (int T = 0; T < Threads; ++T)
      Workers.emplace_back([&, T] {
        for (int I = 0; I < TxnsPerThread; ++I) {
          Counter &Obj = Objs[(T + I) % Objects];
          Stm::atomic([&](TxManager &Tx) {
            Tx.write(&Obj, &Counter::Value,
                     Tx.read(&Obj, &Counter::Value) + 1);
          });
        }
        TxManager::current().flushStats();
      });
    for (std::thread &W : Workers)
      W.join();
    int64_t Sum = 0;
    Stm::atomic([&](TxManager &Tx) {
      for (Counter &Obj : Objs)
        Sum += Tx.read(&Obj, &Counter::Value);
    });
    Sums[Mode] = Sum;
    CommitTotals[Mode] = statsNow().Commits;
  }
  // Same workload, same answers, same number of committed transactions —
  // the hardware tier changes the execution mechanism, not the semantics.
  EXPECT_EQ(Sums[0], int64_t(Threads) * TxnsPerThread);
  EXPECT_EQ(Sums[1], Sums[0]);
  EXPECT_EQ(CommitTotals[0], CommitTotals[1]);
}
