//===- tests/ContainersBoostTest.cpp - Transactional boosting tests ------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantic conflict detection (DESIGN.md §3.10): deferred-action ordering,
/// semantic undo on abort across all four containers, same-transaction
/// insert/erase edge cases, abstract-lock stripe contention, the
/// structural-fallback gate, and a boosted-vs-ObjStmOpt differential over
/// random multi-op transactions.
///
/// Every test also passes with -DOTM_BOOST=0: the BoostedPolicy then
/// degrades to the optimized object-STM placement, whose value-level undo
/// restores the same states the semantic inverses do. Checks that only make
/// sense when the boost tier is compiled in are gated on
/// stm::TxManager::boostEnabled().
///
//===----------------------------------------------------------------------===//

#include "containers/HashMap.h"
#include "containers/RBTree.h"
#include "containers/SkipList.h"
#include "containers/SortedList.h"

#include "stm/Stm.h"
#include "stm/TxStats.h"
#include "support/Random.h"
#include "support/ThreadBarrier.h"
#include "txn/AbstractLockTable.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::containers;
using otm::stm::Stm;
using otm::stm::TxManager;

//===----------------------------------------------------------------------===//
// Deferred-action subsystem
//===----------------------------------------------------------------------===//

#if OTM_BOOST
TEST(DeferredActions, CommitRunsFifoAbortHandlersDisposed) {
  std::vector<int> Order;
  bool AbortRan = false;
  Stm::atomic([&](TxManager &Tx) {
    Tx.onCommit([&] { Order.push_back(1); });
    Tx.onCommit([&] { Order.push_back(2); });
    Tx.onCommit([&] { Order.push_back(3); });
    Tx.onAbort([&] { AbortRan = true; });
  });
  EXPECT_EQ(Order, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(AbortRan) << "abort handlers must not run on commit";
}

TEST(DeferredActions, AbortRunsLifoCommitHandlersDisposed) {
  std::vector<int> Order;
  bool CommitRan = false;
  Stm::atomic([&](TxManager &Tx) {
    Tx.onAbort([&] { Order.push_back(1); });
    Tx.onAbort([&] { Order.push_back(2); });
    Tx.onAbort([&] { Order.push_back(3); });
    Tx.onCommit([&] { CommitRan = true; });
    Tx.userAbort();
  });
  EXPECT_EQ(Order, (std::vector<int>{3, 2, 1}))
      << "abort replay must be LIFO (reverse registration order)";
  EXPECT_FALSE(CommitRan) << "commit handlers must not run on abort";
}

TEST(DeferredActions, LogsEmptyAfterEitherOutcome) {
  Stm::atomic([&](TxManager &Tx) {
    Tx.onCommit([] {});
    Tx.onAbort([] {});
    EXPECT_EQ(Tx.deferredCommitCountForTesting(), 1u);
    EXPECT_EQ(Tx.deferredAbortCountForTesting(), 1u);
  });
  Stm::atomic([&](TxManager &Tx) {
    EXPECT_EQ(Tx.deferredCommitCountForTesting(), 0u);
    EXPECT_EQ(Tx.deferredAbortCountForTesting(), 0u);
    Tx.onAbort([] {});
    Tx.userAbort();
  });
  Stm::atomic([&](TxManager &Tx) {
    EXPECT_EQ(Tx.deferredAbortCountForTesting(), 0u);
  });
}
#endif // OTM_BOOST

//===----------------------------------------------------------------------===//
// Semantic undo on abort, all four containers
//===----------------------------------------------------------------------===//

namespace {

/// Seeds keys 0..N-1 with value 10*key.
template <typename ContainerType> void seed(ContainerType &C, int64_t N) {
  for (int64_t K = 0; K < N; ++K)
    ASSERT_TRUE(C.insert(K, 10 * K));
}

/// Runs insert-new + update + erase inside an outer transaction that user-
/// aborts, then checks every key is back to its seeded value.
template <typename ContainerType> void checkUndoAfterAbort(ContainerType &C) {
  seed(C, 8);
  ASSERT_EQ(C.sizeSlow(), 8u);
  Stm::atomic([&](TxManager &Tx) {
    C.insert(100, 1);  // new key
    C.insert(3, 999);  // update
    C.erase(5);        // erase
    Tx.userAbort();
  });
  EXPECT_EQ(C.sizeSlow(), 8u);
  int64_t V = 0;
  EXPECT_FALSE(C.lookup(100, V));
  ASSERT_TRUE(C.lookup(3, V));
  EXPECT_EQ(V, 30);
  ASSERT_TRUE(C.lookup(5, V));
  EXPECT_EQ(V, 50);
}

/// The same ops committed must stick (and the erased node must be freed
/// without disturbing the structure).
template <typename ContainerType> void checkCommitApplies(ContainerType &C) {
  seed(C, 8);
  Stm::atomic([&](TxManager &) {
    C.insert(100, 1);
    C.insert(3, 999);
    C.erase(5);
  });
  EXPECT_EQ(C.sizeSlow(), 8u); // +1 insert, -1 erase
  int64_t V = 0;
  ASSERT_TRUE(C.lookup(100, V));
  EXPECT_EQ(V, 1);
  ASSERT_TRUE(C.lookup(3, V));
  EXPECT_EQ(V, 999);
  EXPECT_FALSE(C.lookup(5, V));
}

} // namespace

TEST(BoostUndo, HashMapRestoredOnAbort) {
  HashMap<BoostedPolicy> Map(64);
  checkUndoAfterAbort(Map);
  EXPECT_TRUE(Map.checkPlacementSlow());
}

TEST(BoostUndo, SortedListRestoredOnAbort) {
  SortedList<BoostedPolicy> List;
  checkUndoAfterAbort(List);
  EXPECT_TRUE(List.isSortedSlow());
}

TEST(BoostUndo, SkipListRestoredOnAbort) {
  SkipList<BoostedPolicy> List;
  checkUndoAfterAbort(List);
  EXPECT_TRUE(List.checkInvariantsSlow());
}

TEST(BoostUndo, RBTreeRestoredOnAbort) {
  RBTree<BoostedPolicy> Tree;
  checkUndoAfterAbort(Tree);
  EXPECT_TRUE(Tree.checkInvariantsSlow());
}

TEST(BoostUndo, CommitApplies) {
  HashMap<BoostedPolicy> Map(64);
  checkCommitApplies(Map);
  RBTree<BoostedPolicy> Tree;
  checkCommitApplies(Tree);
  EXPECT_TRUE(Tree.checkInvariantsSlow());
}

TEST(BoostUndo, InsertThenEraseSameKeyAborted) {
  HashMap<BoostedPolicy> Map(64);
  Stm::atomic([&](TxManager &Tx) {
    EXPECT_TRUE(Map.insert(7, 70));
    EXPECT_TRUE(Map.erase(7));
    Tx.userAbort();
  });
  // LIFO replay: erase's re-insert runs first, then insert's erase — the
  // key must end up absent, as before the transaction.
  EXPECT_FALSE(Map.contains(7));
  EXPECT_EQ(Map.sizeSlow(), 0u);
}

TEST(BoostUndo, EraseThenInsertSameKeyAborted) {
  SkipList<BoostedPolicy> List;
  ASSERT_TRUE(List.insert(7, 70));
  Stm::atomic([&](TxManager &Tx) {
    EXPECT_TRUE(List.erase(7));
    EXPECT_TRUE(List.insert(7, 71));
    Tx.userAbort();
  });
  int64_t V = 0;
  ASSERT_TRUE(List.lookup(7, V));
  EXPECT_EQ(V, 70);
  EXPECT_EQ(List.sizeSlow(), 1u);
  EXPECT_TRUE(List.checkInvariantsSlow());
}

TEST(BoostUndo, LockTableDrainedAfterTransactions) {
  if constexpr (TxManager::boostEnabled()) {
    HashMap<BoostedPolicy> Map(64);
    seed(Map, 16);
    Stm::atomic([&](TxManager &Tx) {
      Map.insert(99, 1);
      Tx.userAbort();
    });
    EXPECT_EQ(txn::AbstractLockTable::instance().heldCount(), 0u)
        << "every abstract lock must be released on both outcomes";
  }
}

TEST(BoostUndo, StatsCountAcquiresAndUndos) {
  if constexpr (TxManager::boostEnabled()) {
    TxManager::current().flushStats();
    auto Before = stm::GlobalTxStats::instance().snapshot();
    HashMap<BoostedPolicy> Map(64);
    seed(Map, 4);
    Stm::atomic([&](TxManager &Tx) {
      Map.insert(50, 5);
      Tx.userAbort();
    });
    TxManager::current().flushStats();
    auto After = stm::GlobalTxStats::instance().snapshot();
    EXPECT_GE(After.BoostLockAcquires - Before.BoostLockAcquires, 5u);
    EXPECT_GE(After.BoostUndoOps - Before.BoostUndoOps, 1u);
  }
}

//===----------------------------------------------------------------------===//
// Differential: boosted vs ObjStmOpt vs std::map over random transactions
//===----------------------------------------------------------------------===//

TEST(BoostDifferential, RandomMultiOpTransactionsAgree) {
  HashMap<BoostedPolicy> Boosted(128);
  HashMap<ObjStmOptPolicy> Opt(128);
  std::map<int64_t, int64_t> Model;
  Xoshiro256 Rng(20260809);

  for (int Txn = 0; Txn < 800; ++Txn) {
    // 1-4 ops per transaction; ~1 in 6 transactions aborts at the end.
    unsigned Ops = 1 + static_cast<unsigned>(Rng.nextBelow(4));
    bool Abort = Rng.nextPercent(16);
    struct Op {
      int Kind; // 0 insert, 1 erase
      int64_t Key;
      int64_t Value;
    };
    std::vector<Op> Plan;
    for (unsigned I = 0; I < Ops; ++I)
      Plan.push_back({Rng.nextPercent(55) ? 0 : 1,
                      static_cast<int64_t>(Rng.nextBelow(48)),
                      static_cast<int64_t>(Rng.next() & 0xffff)});

    Stm::atomic([&](TxManager &Tx) {
      for (const Op &O : Plan) {
        if (O.Kind == 0)
          Boosted.insert(O.Key, O.Value);
        else
          Boosted.erase(O.Key);
      }
      if (Abort)
        Tx.userAbort();
    });
    Stm::atomic([&](TxManager &Tx) {
      for (const Op &O : Plan) {
        if (O.Kind == 0)
          Opt.insert(O.Key, O.Value);
        else
          Opt.erase(O.Key);
      }
      if (Abort)
        Tx.userAbort();
    });
    if (!Abort) {
      for (const Op &O : Plan) {
        if (O.Kind == 0)
          Model[O.Key] = O.Value;
        else
          Model.erase(O.Key);
      }
    }

    if ((Txn & 63) != 0)
      continue;
    ASSERT_EQ(Boosted.sizeSlow(), Model.size()) << "after txn " << Txn;
    ASSERT_EQ(Opt.sizeSlow(), Model.size());
    for (const auto &[K, V] : Model) {
      int64_t Got = 0;
      ASSERT_TRUE(Boosted.lookup(K, Got));
      ASSERT_EQ(Got, V);
      ASSERT_TRUE(Opt.lookup(K, Got));
      ASSERT_EQ(Got, V);
    }
  }
  EXPECT_EQ(Boosted.sizeSlow(), Model.size());
  EXPECT_TRUE(Boosted.checkPlacementSlow());
}

//===----------------------------------------------------------------------===//
// Concurrency: stripe contention and the structural-fallback gate
//===----------------------------------------------------------------------===//

TEST(BoostConcurrency, ContendedKeysStayConsistent) {
  // A small keyspace forces abstract-lock conflicts (and some slot-stripe
  // collisions); every conflict must resolve through the contention manager
  // without losing an update or leaking a lock.
  constexpr int NumThreads = 4;
  constexpr int OpsPerThread = 1500;
  HashMap<BoostedPolicy> Map(32);
  seed(Map, 16);
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(1000 + T);
      Barrier.arriveAndWait();
      for (int I = 0; I < OpsPerThread; ++I) {
        int64_t Key = static_cast<int64_t>(Rng.nextBelow(16));
        if (Rng.nextPercent(50))
          Map.insert(Key, static_cast<int64_t>(Rng.next() & 0xffff));
        else if (Rng.nextPercent(50))
          Map.erase(Key);
        else
          Map.contains(Key);
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_TRUE(Map.checkPlacementSlow());
  EXPECT_LE(Map.sizeSlow(), 16u);
  if constexpr (TxManager::boostEnabled()) {
    EXPECT_EQ(txn::AbstractLockTable::instance().heldCount(), 0u);
  }
}

TEST(BoostConcurrency, MultiKeyTransfersPreserveSum) {
  // Transfers move value between two keys inside one transaction; aborted
  // transfers (conflict or the deliberate user abort) must undo partially
  // applied updates, so the total is invariant.
  constexpr int NumThreads = 4;
  constexpr int OpsPerThread = 800;
  constexpr int64_t NumKeys = 12;
  RBTree<BoostedPolicy> Tree;
  int64_t Expected = 0;
  for (int64_t K = 0; K < NumKeys; ++K) {
    ASSERT_TRUE(Tree.insert(K, 1000));
    Expected += 1000;
  }
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(7000 + T);
      Barrier.arriveAndWait();
      for (int I = 0; I < OpsPerThread; ++I) {
        int64_t A = static_cast<int64_t>(Rng.nextBelow(NumKeys));
        int64_t B = static_cast<int64_t>(Rng.nextBelow(NumKeys));
        int64_t Delta = static_cast<int64_t>(Rng.nextBelow(9)) - 4;
        bool Abort = Rng.nextPercent(10);
        Stm::atomic([&](TxManager &Tx) {
          int64_t VA = 0, VB = 0;
          ASSERT_TRUE(Tree.lookup(A, VA));
          Tree.insert(A, VA - Delta);
          // When A == B this lookup sees VA - Delta, so adding Delta back
          // restores the original value: the sum is invariant either way.
          ASSERT_TRUE(Tree.lookup(B, VB));
          Tree.insert(B, VB + Delta);
          if (Abort)
            Tx.userAbort();
        });
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_TRUE(Tree.checkInvariantsSlow());
  int64_t Sum = 0;
  for (int64_t K = 0; K < NumKeys; ++K) {
    int64_t V = 0;
    ASSERT_TRUE(Tree.lookup(K, V));
    Sum += V;
  }
  EXPECT_EQ(Sum, Expected) << "an aborted transfer left a partial update";
}

TEST(BoostConcurrency, StructuralGateSeesConsistentSums) {
  // sumValues (whole-container, no per-key footprint) takes the structural
  // gate; concurrent sum-preserving transfers must never be observed
  // half-applied.
  constexpr int NumWriters = 3;
  constexpr int TransfersPerWriter = 400;
  constexpr int64_t NumKeys = 16;
  SortedList<BoostedPolicy> List;
  int64_t Expected = 0;
  for (int64_t K = 0; K < NumKeys; ++K) {
    ASSERT_TRUE(List.insert(K, 500));
    Expected += 500;
  }
  std::atomic<bool> Stop{false};
  std::atomic<int> BadSums{0};
  ThreadBarrier Barrier(NumWriters + 1);
  std::thread Reader([&] {
    Barrier.arriveAndWait();
    while (!Stop.load(std::memory_order_acquire))
      if (List.sumValues() != Expected)
        BadSums.fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<std::thread> Writers;
  for (int T = 0; T < NumWriters; ++T)
    Writers.emplace_back([&, T] {
      Xoshiro256 Rng(42 + T);
      Barrier.arriveAndWait();
      for (int I = 0; I < TransfersPerWriter; ++I) {
        int64_t A = static_cast<int64_t>(Rng.nextBelow(NumKeys));
        int64_t B = static_cast<int64_t>(Rng.nextBelow(NumKeys));
        int64_t Delta = static_cast<int64_t>(Rng.nextBelow(7)) - 3;
        Stm::atomic([&](TxManager &) {
          int64_t VA = 0, VB = 0;
          ASSERT_TRUE(List.lookup(A, VA));
          List.insert(A, VA - Delta);
          ASSERT_TRUE(List.lookup(B, VB));
          List.insert(B, VB + Delta);
        });
      }
    });
  for (std::thread &Th : Writers)
    Th.join();
  Stop.store(true, std::memory_order_release);
  Reader.join();
  EXPECT_EQ(BadSums.load(), 0)
      << "structural gate admitted a half-applied transfer";
  EXPECT_EQ(List.sumValues(), Expected);
  EXPECT_TRUE(List.isSortedSlow());
}
