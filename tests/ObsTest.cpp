//===- tests/ObsTest.cpp - Observability layer tests ----------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Covers the obs subsystem: trace-ring wrap-around under concurrent
// writers, power-of-two histogram bucket boundaries, JSON round-tripping
// (including the StatsReporter document), the statistic registry, and the
// STM-side stats-to-JSON conversion.
//
//===----------------------------------------------------------------------===//

#include "obs/AbortSites.h"
#include "obs/Histogram.h"
#include "obs/Json.h"
#include "obs/StatsReporter.h"
#include "obs/Statistic.h"
#include "obs/TraceRing.h"
#include "stm/StatsJson.h"
#include "stm/TxStats.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::obs;

namespace {

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketBoundaries) {
  // Bucket 0 holds only zero; bucket B (B >= 1) holds [2^(B-1), 2^B - 1].
  EXPECT_EQ(HistogramBuckets::bucketFor(0), 0u);
  EXPECT_EQ(HistogramBuckets::bucketFor(1), 1u);
  EXPECT_EQ(HistogramBuckets::bucketFor(2), 2u);
  EXPECT_EQ(HistogramBuckets::bucketFor(3), 2u);
  EXPECT_EQ(HistogramBuckets::bucketFor(4), 3u);
  EXPECT_EQ(HistogramBuckets::bucketFor(7), 3u);
  EXPECT_EQ(HistogramBuckets::bucketFor(8), 4u);
  for (unsigned Shift = 1; Shift < 63; ++Shift) {
    uint64_t Edge = uint64_t(1) << Shift;
    EXPECT_EQ(HistogramBuckets::bucketFor(Edge), Shift + 1)
        << "lower edge 2^" << Shift;
    EXPECT_EQ(HistogramBuckets::bucketFor(Edge - 1), Shift)
        << "upper edge 2^" << Shift << " - 1";
  }
  // The top bucket absorbs everything that would overflow the bucket count.
  EXPECT_EQ(HistogramBuckets::bucketFor(~uint64_t(0)),
            HistogramBuckets::Num - 1);
}

TEST(HistogramTest, RecordAndSummarize) {
  Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_DOUBLE_EQ(H.mean(), 0.0);
  H.record(0);
  H.record(1);
  H.record(5);
  H.record(1000);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 1006u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_DOUBLE_EQ(H.mean(), 1006.0 / 4.0);
  EXPECT_EQ(H.bucket(HistogramBuckets::bucketFor(5)), 1u);

  Histogram Other;
  Other.record(5);
  H.merge(Other);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.bucket(HistogramBuckets::bucketFor(5)), 2u);

  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.max(), 0u);
}

TEST(HistogramTest, AtomicAddAndSnapshot) {
  AtomicHistogram A;
  Histogram H;
  H.record(3);
  H.record(300);
  A.add(H);
  A.add(H);
  Histogram S = A.snapshot();
  EXPECT_EQ(S.count(), 4u);
  EXPECT_EQ(S.sum(), 606u);
  EXPECT_EQ(S.max(), 300u);
  A.reset();
  EXPECT_EQ(A.snapshot().count(), 0u);
}

//===----------------------------------------------------------------------===//
// TraceRing
//===----------------------------------------------------------------------===//

TEST(TraceRingTest, WrapAroundUnderConcurrentWriters) {
  constexpr std::size_t Capacity = 1 << 8;
  constexpr unsigned NumThreads = 4;
  constexpr unsigned PerThread = 1000; // 4000 records into 256 slots
  TraceRing *Ring = TraceRing::createDetached(Capacity);
  ASSERT_NE(Ring, nullptr);
  EXPECT_EQ(Ring->capacity(), Capacity);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (unsigned I = 0; I < PerThread; ++I)
        Ring->record(EventKind::OpenForRead,
                     reinterpret_cast<void *>(uintptr_t(T + 1)), uint16_t(T));
    });
  for (std::thread &T : Threads)
    T.join();

  // Every record landed (the head is a fetch_add, nothing is lost silently)
  // and the ring holds exactly the last `Capacity` slots.
  EXPECT_EQ(Ring->recorded(), uint64_t(NumThreads) * PerThread);
  std::vector<TraceEvent> Events = Ring->snapshot();
  EXPECT_EQ(Events.size(), Capacity);
  for (const TraceEvent &E : Events) {
    EXPECT_EQ(E.Kind, uint16_t(EventKind::OpenForRead));
    EXPECT_GE(E.Addr, 1u);
    EXPECT_LE(E.Addr, NumThreads);
    EXPECT_EQ(E.Aux + 1u, E.Addr); // each slot written by one record() call
  }
}

TEST(TraceRingTest, SnapshotBeforeWrapKeepsOrder) {
  TraceRing *Ring = TraceRing::createDetached(1 << 8);
  for (int I = 0; I < 10; ++I)
    Ring->record(EventKind::TxBegin, nullptr, uint16_t(I));
  std::vector<TraceEvent> Events = Ring->snapshot();
  ASSERT_EQ(Events.size(), 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(Events[I].Aux, I); // oldest first
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

TEST(JsonTest, RoundTrip) {
  JsonValue Doc = JsonValue::object();
  Doc.set("name", std::string("otm"));
  Doc.set("answer", uint64_t(42));
  Doc.set("delta", int64_t(-7));
  Doc.set("ratio", 2.5);
  Doc.set("on", true);
  Doc.set("off", false);
  Doc.set("nothing", JsonValue());
  Doc.set("escaped", std::string("line\n\"quoted\"\ttab\\slash"));
  JsonValue Arr = JsonValue::array();
  for (uint64_t I = 0; I < 5; ++I)
    Arr.push(I * 1000);
  Doc.set("values", std::move(Arr));
  JsonValue Nested = JsonValue::object();
  Nested.set("big", ~uint64_t(0)); // must survive exactly, not via double
  Doc.set("nested", std::move(Nested));

  std::string Text = Doc.dump(2);
  std::string Error;
  JsonValue Parsed = JsonValue::parse(Text, &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Parsed, Doc);
  // And a second trip through the compact form.
  JsonValue Again = JsonValue::parse(Parsed.dump(0), &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Again, Doc);
}

TEST(JsonTest, ParseErrors) {
  std::string Error;
  JsonValue V = JsonValue::parse("{\"a\": }", &Error);
  EXPECT_FALSE(Error.empty());
  Error.clear();
  JsonValue W = JsonValue::parse("[1, 2", &Error);
  EXPECT_FALSE(Error.empty());
}

TEST(StatsReporterTest, DocumentRoundTrip) {
  StatsReporter Reporter("unit_test_bench");
  JsonValue Run = JsonValue::object();
  Run.set("label", std::string("cfg-a"));
  Run.set("ops_per_sec", 123.5);
  Reporter.addRun(std::move(Run));
  JsonValue Extra = JsonValue::object();
  Extra.set("k", uint64_t(9));
  Reporter.addSection("extra", std::move(Extra));

  std::string Error;
  JsonValue Doc = JsonValue::parse(Reporter.toJson(), &Error);
  ASSERT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Doc.get("schema")->asString(), "otm-bench-stats-v1");
  EXPECT_EQ(Doc.get("bench")->asString(), "unit_test_bench");
  ASSERT_NE(Doc.get("runs"), nullptr);
  EXPECT_EQ(Doc.get("runs")->size(), 1u);
  EXPECT_EQ(Doc.get("runs")->at(0).get("label")->asString(), "cfg-a");
  EXPECT_EQ(Doc.get("extra")->get("k")->asUInt(), 9u);
}

TEST(StatsJsonTest, TxStatsSerializes) {
  stm::TxStats S;
  S.Starts = 10;
  S.Commits = 8;
  S.Aborts = 2;
  S.CommitTscCycles.record(1024);
  S.RetriesPerCommit.record(1);
  JsonValue V = stm::statsToJson(S);
  EXPECT_EQ(V.get("counters")->get("Starts")->asUInt(), 10u);
  EXPECT_EQ(V.get("counters")->get("Commits")->asUInt(), 8u);
  const JsonValue *H = V.get("histograms")->get("CommitTscCycles");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->get("count")->asUInt(), 1u);
  EXPECT_EQ(H->get("sum")->asUInt(), 1024u);
  // Round-trips through text without loss.
  std::string Error;
  JsonValue Back = JsonValue::parse(V.dump(2), &Error);
  EXPECT_TRUE(Error.empty()) << Error;
  EXPECT_EQ(Back, V);
}

//===----------------------------------------------------------------------===//
// X-macro generated stats plumbing
//===----------------------------------------------------------------------===//

TEST(TxStatsTest, AddAndResetCoverEveryField) {
  stm::TxStats A;
  unsigned NumCounters = 0;
  A.forEachCounter([&](const char *, uint64_t) { ++NumCounters; });
  EXPECT_GE(NumCounters, 13u);

  A.Starts = 3;
  A.UndosFiltered = 7;
  A.CommitTscCycles.record(100);
  stm::TxStats B;
  B.Starts = 2;
  B.CommitTscCycles.record(50);
  A.add(B);
  EXPECT_EQ(A.Starts, 5u);
  EXPECT_EQ(A.UndosFiltered, 7u);
  EXPECT_EQ(A.CommitTscCycles.count(), 2u);
  A.reset();
  A.forEachCounter([&](const char *Name, uint64_t V) {
    EXPECT_EQ(V, 0u) << Name;
  });
  EXPECT_EQ(A.CommitTscCycles.count(), 0u);
}

TEST(TxStatsTest, GlobalAggregateResets) {
  // Use the real singleton but restore it: add, snapshot, reset.
  stm::GlobalTxStats &G = stm::GlobalTxStats::instance();
  stm::TxStats Before = G.snapshot();
  stm::TxStats Delta;
  Delta.Starts = 11;
  Delta.RetriesPerCommit.record(2);
  G.add(Delta);
  stm::TxStats After = G.snapshot();
  EXPECT_EQ(After.Starts, Before.Starts + 11);
  EXPECT_EQ(After.RetriesPerCommit.count(),
            Before.RetriesPerCommit.count() + 1);
  G.reset();
  stm::TxStats Zero = G.snapshot();
  Zero.forEachCounter([&](const char *Name, uint64_t V) {
    EXPECT_EQ(V, 0u) << Name;
  });
  EXPECT_EQ(Zero.CommitTscCycles.count(), 0u);
  EXPECT_EQ(Zero.RetriesPerCommit.count(), 0u);
}

//===----------------------------------------------------------------------===//
// Statistic registry
//===----------------------------------------------------------------------===//

OTM_STATISTIC(TestStatA, "obs-test", "stat-a", "first test counter");
OTM_STATISTIC(TestStatB, "obs-test", "stat-b", "second test counter");

TEST(StatisticTest, RegistrationAndReset) {
  TestStatA += 5;
  ++TestStatB;
  EXPECT_EQ(TestStatA.value(), 5u);
  EXPECT_EQ(TestStatB.value(), 1u);

  bool SawA = false, SawB = false;
  Statistic::forEach([&](const Statistic &S) {
    if (std::string(S.group()) == "obs-test") {
      if (std::string(S.name()) == "stat-a") {
        SawA = true;
        EXPECT_EQ(S.value(), 5u);
      }
      if (std::string(S.name()) == "stat-b")
        SawB = true;
    }
  });
  EXPECT_TRUE(SawA);
  EXPECT_TRUE(SawB);

  JsonValue All = Statistic::allToJson();
  bool InJson = false;
  for (std::size_t I = 0; I < All.size(); ++I)
    if (All.at(I).get("name") &&
        All.at(I).get("name")->asString() == "stat-a")
      InJson = true;
  EXPECT_TRUE(InJson);

  Statistic::resetAll();
  EXPECT_EQ(TestStatA.value(), 0u);
  EXPECT_EQ(TestStatB.value(), 0u);
}

//===----------------------------------------------------------------------===//
// Abort attribution
//===----------------------------------------------------------------------===//

TEST(AbortSitesTest, RecordAndTopK) {
  AbortSites &Sites = AbortSites::instance();
  Sites.reset();
  int Obj1 = 0, Obj2 = 0;
  for (int I = 0; I < 5; ++I)
    Sites.record(&Obj1, AbortCause::Conflict, 7);
  Sites.record(&Obj2, AbortCause::Validation, 9);

  auto Top = Sites.topK(2);
  ASSERT_GE(Top.size(), 2u);
  EXPECT_EQ(Top[0].Addr, reinterpret_cast<uintptr_t>(&Obj1));
  EXPECT_EQ(Top[0].Conflicts, 5u);
  EXPECT_EQ(Top[0].LastOwnerSite, 7u);
  EXPECT_EQ(Top[1].Addr, reinterpret_cast<uintptr_t>(&Obj2));
  EXPECT_EQ(Top[1].Validations, 1u);

  JsonValue J = Sites.toJson(4);
  ASSERT_GE(J.size(), 1u);
  EXPECT_EQ(J.at(0).get("conflicts")->asUInt(), 5u);
  Sites.reset();
  EXPECT_TRUE(Sites.topK(4).empty());
}

//===----------------------------------------------------------------------===//
// Percentile interpolation
//===----------------------------------------------------------------------===//

TEST(HistogramPercentileTest, EmptyHistogramIsZero) {
  Histogram H;
  EXPECT_DOUBLE_EQ(H.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(H.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(H.percentile(100.0), 0.0);
}

TEST(HistogramPercentileTest, ZeroBucketIsExact) {
  Histogram H;
  for (int I = 0; I < 10; ++I)
    H.record(0);
  EXPECT_DOUBLE_EQ(H.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(H.percentile(99.9), 0.0);
}

TEST(HistogramPercentileTest, SingleBucketInterpolates) {
  // 100 samples of value 5 all land in bucket [4, 8); the upper edge is
  // clamped to the observed maximum, so every quantile stays in [4, 5].
  Histogram H;
  for (int I = 0; I < 100; ++I)
    H.record(5);
  EXPECT_DOUBLE_EQ(H.percentile(0.0), 4.0);   // bucket lower bound
  EXPECT_DOUBLE_EQ(H.percentile(50.0), 4.5);  // halfway through the bucket
  EXPECT_DOUBLE_EQ(H.percentile(100.0), 5.0); // observed max
  EXPECT_GE(H.percentile(99.0), 4.0);
  EXPECT_LE(H.percentile(99.0), 5.0);
}

TEST(HistogramPercentileTest, TailBucketClampsToMax) {
  // The top bucket's nominal upper edge is 2^63; the observed max must cap
  // the interpolation so p999 never extrapolates past a real sample.
  Histogram H;
  uint64_t Huge = ~uint64_t(0);
  for (int I = 0; I < 8; ++I)
    H.record(Huge);
  EXPECT_DOUBLE_EQ(H.percentile(100.0), static_cast<double>(Huge));
  EXPECT_LE(H.percentile(99.9), static_cast<double>(Huge));
  EXPECT_GE(H.percentile(50.0),
            static_cast<double>(HistogramBuckets::lowerBound(
                HistogramBuckets::Num - 1)));
}

TEST(HistogramPercentileTest, QuantilesAreMonotone) {
  Histogram H;
  for (uint64_t V = 1; V <= 1000; ++V)
    H.record(V);
  double P50 = H.percentile(50.0);
  double P99 = H.percentile(99.0);
  double P999 = H.percentile(99.9);
  EXPECT_LE(P50, P99);
  EXPECT_LE(P99, P999);
  EXPECT_LE(P999, 1000.0);
  // p50 of 1..1000 sits in the [512, 1000] bucket span.
  EXPECT_GE(P50, 256.0);
}

//===----------------------------------------------------------------------===//
// Conflict-graph edge table
//===----------------------------------------------------------------------===//

TEST(AbortSitesEdgeTest, RecordAndTopEdges) {
  AbortSites &Sites = AbortSites::instance();
  Sites.reset();
  // Victim site 1 aborted by owner site 2 (conflicts), 3 by 4 (validation).
  for (int I = 0; I < 5; ++I)
    Sites.record(nullptr, AbortCause::Conflict, /*OwnerSite=*/2,
                 /*VictimSite=*/1);
  Sites.record(nullptr, AbortCause::Validation, 4, 3);

  auto Edges = Sites.topEdges(4);
  ASSERT_EQ(Edges.size(), 2u);
  EXPECT_EQ(Edges[0].Victim, 1u);
  EXPECT_EQ(Edges[0].Owner, 2u);
  EXPECT_EQ(Edges[0].Conflicts, 5u);
  EXPECT_EQ(Edges[1].Victim, 3u);
  EXPECT_EQ(Edges[1].Owner, 4u);
  EXPECT_EQ(Edges[1].Validations, 1u);
  EXPECT_EQ(Sites.edgeOccupancy(), 2u);
  EXPECT_EQ(Sites.edgesDropped(), 0u);

  JsonValue J = Sites.edgesToJson(4);
  ASSERT_EQ(J.size(), 2u);
  EXPECT_EQ(J.at(0).get("victim_site")->asUInt(), 1u);
  EXPECT_EQ(J.at(0).get("owner_site")->asUInt(), 2u);
  EXPECT_EQ(J.at(0).get("conflicts")->asUInt(), 5u);

  std::string Dot = Sites.dotGraph();
  EXPECT_NE(Dot.find("digraph"), std::string::npos);
  EXPECT_NE(Dot.find("s1 -> s2"), std::string::npos);
  EXPECT_NE(Dot.find("s3 -> s4"), std::string::npos);
  Sites.reset();
}

TEST(AbortSitesEdgeTest, VictimZeroRecordsNoEdge) {
  AbortSites &Sites = AbortSites::instance();
  Sites.reset();
  int Obj = 0;
  Sites.record(&Obj, AbortCause::Conflict, 7); // default victim = 0
  EXPECT_EQ(Sites.edgeOccupancy(), 0u);
  EXPECT_TRUE(Sites.topEdges(4).empty());
  Sites.reset();
}

TEST(AbortSitesEdgeTest, UnknownOwnerRendersDashed) {
  AbortSites &Sites = AbortSites::instance();
  Sites.reset();
  // Owner 0 = "owner released before we sampled it": the weight must still
  // appear in the graph, as a dashed edge into a distinct sink.
  Sites.record(nullptr, AbortCause::Conflict, 0, 5);
  std::string Dot = Sites.dotGraph();
  EXPECT_NE(Dot.find("s5 -> unknown"), std::string::npos);
  Sites.reset();
}

TEST(AbortSitesEdgeTest, WraparoundDropsAndReset) {
  AbortSites &Sites = AbortSites::instance();
  Sites.reset();
  // Far more distinct (victim, owner) pairs than the table holds: the
  // bounded open-addressed table must fill, count the overflow, and never
  // grow.
  const std::size_t Pairs = 4 * AbortSites::edgeCapacity();
  for (std::size_t I = 0; I < Pairs; ++I)
    Sites.record(nullptr, AbortCause::Conflict,
                 static_cast<uint32_t>(1000 + I),
                 static_cast<uint32_t>(1 + (I % 97)));
  EXPECT_LE(Sites.edgeOccupancy(), AbortSites::edgeCapacity());
  EXPECT_GT(Sites.edgesDropped(), 0u);
  EXPECT_EQ(Sites.edgeOccupancy() + Sites.edgesDropped(), Pairs);

  // Recording an edge that already has a slot still counts after overflow.
  auto Edges = Sites.topEdges(1);
  ASSERT_EQ(Edges.size(), 1u);
  Sites.record(nullptr, AbortCause::Conflict, Edges[0].Owner,
               Edges[0].Victim);
  EXPECT_EQ(Sites.topEdges(1)[0].Conflicts, Edges[0].Conflicts + 1);

  Sites.reset();
  EXPECT_EQ(Sites.edgeOccupancy(), 0u);
  EXPECT_EQ(Sites.edgesDropped(), 0u);
  EXPECT_TRUE(Sites.topEdges(4).empty());
}

} // namespace
