//===- tests/StmBasicTest.cpp - Single-threaded STM semantics ------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sequential semantics of the decomposed direct-update STM: visibility of
/// commits, rollback of aborts, idempotence of opens, filter behaviour,
/// nesting, allocation logging and GC log compaction.
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"

#include "gc/EpochManager.h"
#include "stm/HashFilter.h"
#include "stm/TxArray.h"
#include "stm/TxGlobal.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace otm;
using namespace otm::stm;

namespace {

struct Point : TxObject {
  Field<int64_t> X;
  Field<int64_t> Y;
};

struct ConfigGuard {
  ConfigGuard() : Saved(TxManager::config()) {}
  ~ConfigGuard() { TxManager::config() = Saved; }
  TxConfig Saved;
};

} // namespace

TEST(HashFilterTest, InsertDetectsDuplicates) {
  HashFilter F;
  EXPECT_TRUE(F.insert(0x1000));
  EXPECT_FALSE(F.insert(0x1000));
  EXPECT_TRUE(F.insert(0x2000));
  EXPECT_TRUE(F.contains(0x1000));
  EXPECT_FALSE(F.contains(0x3000));
}

TEST(HashFilterTest, ClearIsLogical) {
  HashFilter F;
  for (uintptr_t K = 1; K <= 100; ++K)
    EXPECT_TRUE(F.insert(K * 8));
  F.clear();
  EXPECT_EQ(F.size(), 0u);
  for (uintptr_t K = 1; K <= 100; ++K)
    EXPECT_FALSE(F.contains(K * 8)) << "stale entry survived clear";
}

TEST(HashFilterTest, GrowthPreservesMembership) {
  HashFilter F;
  for (uintptr_t K = 1; K <= 1000; ++K)
    EXPECT_TRUE(F.insert(K * 16));
  for (uintptr_t K = 1; K <= 1000; ++K)
    EXPECT_FALSE(F.insert(K * 16));
  EXPECT_EQ(F.size(), 1000u);
}

TEST(HashFilterTest, ManyClearGenerationsNeverResurrectEntries) {
  // clear() is O(1) by bumping a generation stamp, and grow() burns an
  // extra generation per rehash; stale slots from any earlier generation
  // must stay logically empty no matter how many generations have passed.
  HashFilter F;
  for (uint64_t Cycle = 1; Cycle <= 5000; ++Cycle) {
    uintptr_t K1 = Cycle * 64, K2 = Cycle * 64 + 8;
    EXPECT_TRUE(F.insert(K1));
    EXPECT_TRUE(F.insert(K2));
    EXPECT_FALSE(F.insert(K1)) << "duplicate not caught in cycle " << Cycle;
    EXPECT_EQ(F.size(), 2u);
    if (Cycle > 1)
      EXPECT_FALSE(F.contains((Cycle - 1) * 64))
          << "previous cycle's key resurrected in cycle " << Cycle;
    F.clear();
    EXPECT_FALSE(F.contains(K1));
    EXPECT_FALSE(F.contains(K2));
    EXPECT_EQ(F.size(), 0u);
  }
}

TEST(HashFilterTest, GrowAfterManyClearsStaysExact) {
  // A grow rehash keys off the pre-grow generation; after a long clear
  // history the rehashed table must carry exactly the live keys forward.
  HashFilter F;
  for (uintptr_t K = 1; K <= 200; ++K) {
    F.insert(K * 8);
    F.clear();
  }
  for (uintptr_t K = 1; K <= 500; ++K) // forces several grows
    EXPECT_TRUE(F.insert(K * 32));
  EXPECT_EQ(F.size(), 500u);
  for (uintptr_t K = 1; K <= 500; ++K) {
    EXPECT_TRUE(F.contains(K * 32));
    EXPECT_FALSE(F.insert(K * 32));
  }
  EXPECT_FALSE(F.contains(8)) << "pre-clear key leaked through the grow";
}

TEST(StmBasic, ReadFilterGrowsMidTransaction) {
  // More distinct opens than the filter's initial capacity: the filter
  // grows inside the transaction and must keep catching duplicates (the
  // read log stays deduplicated) without dropping first-time opens.
  ConfigGuard Guard;
  TxManager::config().FilterReads = true;
  constexpr std::size_t NumObjs = 300; // initial capacity is 64 slots
  std::vector<std::unique_ptr<Point>> Objs;
  for (std::size_t I = 0; I < NumObjs; ++I)
    Objs.push_back(std::make_unique<Point>());
  uint64_t FilteredBefore = TxManager::current().stats().ReadsFiltered;
  Stm::atomic([&](TxManager &Tx) {
    for (auto &P : Objs)
      Tx.openForRead(P.get());
    for (auto &P : Objs)
      Tx.openForRead(P.get()); // every one a duplicate
    EXPECT_EQ(Tx.readLogSizeForTesting(), NumObjs);
  });
  EXPECT_EQ(TxManager::current().stats().ReadsFiltered - FilteredBefore,
            NumObjs);
}

TEST(StmBasic, CommitPublishesValues) {
  Point P;
  Stm::atomic([&](TxManager &Tx) {
    Tx.write(&P, &Point::X, int64_t{11});
    Tx.write(&P, &Point::Y, int64_t{13});
  });
  EXPECT_EQ(P.X.load(), 11);
  EXPECT_EQ(P.Y.load(), 13);
  EXPECT_FALSE(P.isOpenForUpdate());
}

TEST(StmBasic, CommitInstallsOneNewVersionPerObject) {
  Point P;
  uint64_t V0 = P.versionForTesting();
  Stm::atomic([&](TxManager &Tx) {
    Tx.write(&P, &Point::X, int64_t{1});
    Tx.write(&P, &Point::Y, int64_t{2}); // same object: one update entry
  });
  // With the MVCC tier the new version is a global commit stamp (strictly
  // greater, not +1); without it, the per-object counter bumps by one.
  uint64_t V1 = P.versionForTesting();
  EXPECT_GT(V1, V0);
  if (!TxManager::mvccEnabled())
    EXPECT_EQ(V1, V0 + 1);
  // A second commit to the same object installs exactly one newer version.
  Stm::atomic([&](TxManager &Tx) { Tx.write(&P, &Point::X, int64_t{3}); });
  EXPECT_GT(P.versionForTesting(), V1);
}

TEST(StmBasic, ReadSeesOwnWrite) {
  Point P;
  int64_t Observed = -1;
  Stm::atomic([&](TxManager &Tx) {
    Tx.write(&P, &Point::X, int64_t{7});
    Observed = Tx.read(&P, &Point::X);
  });
  EXPECT_EQ(Observed, 7);
}

TEST(StmBasic, UserAbortRollsBackAndDoesNotRetry) {
  Point P;
  P.X.store(5);
  uint64_t V0 = P.versionForTesting();
  int Executions = 0;
  Stm::atomic([&](TxManager &Tx) {
    ++Executions;
    Tx.write(&P, &Point::X, int64_t{99});
    Tx.userAbort();
  });
  EXPECT_EQ(Executions, 1);
  EXPECT_EQ(P.X.load(), 5) << "in-place store not undone";
  // The rollback of an in-place store must move the version forward: a
  // transaction that read the dirty 99 between the store and the rollback
  // would otherwise still validate against the old word and could commit
  // state that never existed (the abort-ABA race).
  EXPECT_GT(P.versionForTesting(), V0)
      << "abort of an in-place store must advance the version";
  EXPECT_FALSE(P.isOpenForUpdate()) << "ownership leaked";
}

TEST(StmBasic, UserExceptionAbortsAndPropagates) {
  Point P;
  P.X.store(1);
  struct Boom {};
  EXPECT_THROW(Stm::atomic([&](TxManager &Tx) {
                 Tx.write(&P, &Point::X, int64_t{2});
                 throw Boom{};
               }),
               Boom);
  EXPECT_EQ(P.X.load(), 1);
  EXPECT_FALSE(P.isOpenForUpdate());
}

TEST(StmBasic, UndoRestoresMultipleFieldsInOrder) {
  ConfigGuard Guard;
  TxManager::config().FilterUndo = false; // force duplicate undo entries
  Point P;
  P.X.store(10);
  Stm::atomic([&](TxManager &Tx) {
    Tx.write(&P, &Point::X, int64_t{20});
    Tx.write(&P, &Point::X, int64_t{30});
    Tx.write(&P, &Point::X, int64_t{40});
    Tx.userAbort();
  });
  EXPECT_EQ(P.X.load(), 10) << "reverse replay must restore oldest value";
}

TEST(StmBasic, OpenForReadIsIdempotentViaFilter) {
  Point P;
  TxManager &Tx = TxManager::current();
  TxStats Before = Tx.stats();
  Stm::atomic([&](TxManager &T) {
    for (int I = 0; I < 10; ++I)
      T.openForRead(&P);
  });
  TxStats &After = Tx.stats();
  EXPECT_EQ(After.OpensForRead - Before.OpensForRead, 10u);
  EXPECT_EQ(After.ReadLogAppends - Before.ReadLogAppends, 1u);
  EXPECT_EQ(After.ReadsFiltered - Before.ReadsFiltered, 9u);
}

TEST(StmBasic, OpenForUpdateSkipsReadLogging) {
  Point P;
  TxManager &Tx = TxManager::current();
  TxStats Before = Tx.stats();
  Stm::atomic([&](TxManager &T) {
    T.openForUpdate(&P);
    T.openForRead(&P); // we own it: no enlistment needed
  });
  TxStats &After = Tx.stats();
  EXPECT_EQ(After.ReadLogAppends - Before.ReadLogAppends, 0u);
}

TEST(StmBasic, UndoFilterSuppressesDuplicates) {
  Point P;
  TxManager &Tx = TxManager::current();
  TxStats Before = Tx.stats();
  Stm::atomic([&](TxManager &T) {
    T.openForUpdate(&P);
    for (int I = 0; I < 5; ++I) {
      T.logUndo(&P.X);
      P.X.store(I);
    }
  });
  TxStats &After = Tx.stats();
  EXPECT_EQ(After.UndoLogAppends - Before.UndoLogAppends, 1u);
  EXPECT_EQ(After.UndosFiltered - Before.UndosFiltered, 4u);
  EXPECT_EQ(P.X.load(), 4);
}

TEST(StmBasic, NestedAtomicIsFlattened) {
  Point P;
  Stm::atomic([&](TxManager &Tx) {
    EXPECT_EQ(Tx.nestingDepth(), 1u);
    Stm::atomic([&](TxManager &Inner) {
      EXPECT_EQ(&Inner, &Tx) << "same per-thread manager";
      EXPECT_EQ(Inner.nestingDepth(), 1u) << "flattened, not nested begin";
      Inner.write(&P, &Point::X, int64_t{3});
    });
    EXPECT_TRUE(Tx.inTx());
  });
  EXPECT_EQ(P.X.load(), 3);
}

TEST(StmBasic, ExplicitBeginNestingIsCounted) {
  TxManager &Tx = TxManager::current();
  Tx.begin();
  Tx.begin();
  EXPECT_EQ(Tx.nestingDepth(), 2u);
  EXPECT_TRUE(Tx.tryCommit()); // inner
  EXPECT_EQ(Tx.nestingDepth(), 1u);
  EXPECT_TRUE(Tx.tryCommit()); // outer
  EXPECT_FALSE(Tx.inTx());
}

TEST(StmBasic, AllocInTxFreedOnAbort) {
  gc::EpochManager &EM = gc::EpochManager::global();
  EM.drainForTesting();
  uint64_t FreedBefore = EM.freedCount();
  Stm::atomic([&](TxManager &Tx) {
    Point *Fresh = Tx.allocInTx<Point>();
    Fresh->X.store(123); // transaction-local: no open, no undo log needed
    Tx.userAbort();
  });
  EM.drainForTesting();
  EXPECT_EQ(EM.freedCount(), FreedBefore + 1) << "aborted alloc leaked";
}

TEST(StmBasic, AllocInTxSurvivesCommit) {
  Point *Fresh = nullptr;
  Stm::atomic([&](TxManager &Tx) {
    Fresh = Tx.allocInTx<Point>();
    Fresh->X.store(55);
  });
  ASSERT_NE(Fresh, nullptr);
  EXPECT_EQ(Fresh->X.load(), 55);
  delete Fresh;
}

TEST(StmBasic, RetireOnCommitFreesOnlyOnCommit) {
  gc::EpochManager &EM = gc::EpochManager::global();

  // Abort path: object must survive.
  Point *Kept = new Point();
  EM.drainForTesting();
  uint64_t Freed0 = EM.freedCount();
  Stm::atomic([&](TxManager &Tx) {
    Tx.openForUpdate(Kept);
    Tx.retireOnCommit(Kept);
    Tx.userAbort();
  });
  EM.drainForTesting();
  EXPECT_EQ(EM.freedCount(), Freed0) << "abort must keep the object";
  EXPECT_EQ(Kept->X.load(), 0);

  // Commit path: object must be retired and eventually freed. With the
  // MVCC tier the committing update also installs a version record that
  // the object's destructor retires, so one extra block is freed.
  Stm::atomic([&](TxManager &Tx) {
    Tx.openForUpdate(Kept);
    Tx.retireOnCommit(Kept);
  });
  EM.drainForTesting();
  EXPECT_EQ(EM.freedCount(), Freed0 + (TxManager::mvccEnabled() ? 2 : 1));
}

TEST(StmBasic, TxGlobalRoundTrip) {
  static TxGlobal<int64_t> Counter(0);
  Stm::atomic([&](TxManager &Tx) { Counter.set(Tx, Counter.get(Tx) + 5); });
  Stm::atomic([&](TxManager &Tx) { Counter.set(Tx, Counter.get(Tx) + 7); });
  EXPECT_EQ(Counter.unsafeGet(), 12);
}

TEST(StmBasic, TxArrayElementOps) {
  TxArray<int64_t> Arr(16);
  Stm::atomic([&](TxManager &Tx) {
    for (std::size_t I = 0; I < Arr.size(); ++I)
      Arr.set(Tx, I, static_cast<int64_t>(I * I));
  });
  int64_t Sum = 0;
  Stm::atomic([&](TxManager &Tx) {
    for (std::size_t I = 0; I < Arr.size(); ++I)
      Sum += Arr.get(Tx, I);
  });
  EXPECT_EQ(Sum, 1240);
}

TEST(StmBasic, TxArrayAbortRestoresAllElements) {
  TxArray<int64_t> Arr(8);
  for (std::size_t I = 0; I < 8; ++I)
    Arr.unsafeSet(I, 100 + static_cast<int64_t>(I));
  Stm::atomic([&](TxManager &Tx) {
    for (std::size_t I = 0; I < 8; ++I)
      Arr.set(Tx, I, -1);
    Tx.userAbort();
  });
  for (std::size_t I = 0; I < 8; ++I)
    EXPECT_EQ(Arr.unsafeGet(I), 100 + static_cast<int64_t>(I));
}

TEST(StmBasic, ValidateTrueWithoutConcurrency) {
  Point P;
  Stm::atomic([&](TxManager &Tx) {
    Tx.openForRead(&P);
    EXPECT_TRUE(Tx.validate());
    Tx.validateOrAbort(); // must not throw
  });
}

TEST(StmBasic, CompactLogsForGcDeduplicates) {
  ConfigGuard Guard;
  TxManager::config().FilterReads = false;
  TxManager::config().FilterUndo = false;
  Point P, Q;
  Stm::atomic([&](TxManager &Tx) {
    for (int I = 0; I < 4; ++I) {
      Tx.openForRead(&P);
      Tx.openForRead(&Q);
    }
    Tx.openForUpdate(&P);
    for (int I = 0; I < 3; ++I) {
      Tx.logUndo(&P.X);
      P.X.store(I);
    }
    EXPECT_EQ(Tx.readLogSizeForTesting(), 8u);
    EXPECT_EQ(Tx.undoLogSizeForTesting(), 3u);
    auto [ReadsRemoved, UndosRemoved] = Tx.compactLogsForGc();
    EXPECT_EQ(ReadsRemoved, 6u);
    EXPECT_EQ(UndosRemoved, 2u);
    EXPECT_EQ(Tx.readLogSizeForTesting(), 2u);
    EXPECT_EQ(Tx.undoLogSizeForTesting(), 1u);
    Tx.userAbort(); // replay the compacted undo log
  });
  EXPECT_EQ(P.X.load(), 0) << "compaction must keep the oldest undo value";
}

TEST(StmBasic, StatsFlushAggregatesGlobally) {
  Stm::resetGlobalStats();
  Point P;
  Stm::atomic([&](TxManager &Tx) { Tx.write(&P, &Point::X, int64_t{1}); });
  TxManager::current().flushStats();
  TxStats G = Stm::globalStats();
  EXPECT_GE(G.Commits, 1u);
  EXPECT_GE(G.OpensForUpdate, 1u);
}

TEST(StmBasic, AtomicResultReturnsValue) {
  Point P;
  P.X.store(21);
  int64_t V = Stm::atomicResult(
      [&](TxManager &Tx) { return Tx.read(&P, &Point::X) * 2; });
  EXPECT_EQ(V, 42);
}
