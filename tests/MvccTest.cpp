//===- tests/MvccTest.cpp - Multi-version snapshot path tests ------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The MVCC tier (DESIGN.md section 3.9): snapshot-isolation semantics of
/// read-only transactions against concurrent writer commits, the dynamic
/// upgrade restart, chain truncation at the configured depth, version
/// reclamation through the epoch manager, and the serial-gate bypass that
/// keeps snapshot readers running while a writer holds the gate.
///
/// Every behavioural test skips itself when the tier is compiled out
/// (-DOTM_MVCC=0); the suite still links and passes there, proving the
/// legacy path is schema-complete.
///
//===----------------------------------------------------------------------===//

#include "stm/Stm.h"

#include "gc/EpochManager.h"
#include "stm/TxGlobal.h"
#include "support/Random.h"
#include "support/ThreadBarrier.h"
#include "txn/SerialGate.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::stm;

namespace {

struct Counter : TxObject {
  Field<int64_t> Value;
};

struct Account : TxObject {
  Field<int64_t> Balance;
};

struct ConfigGuard {
  ConfigGuard() : Saved(TxManager::config()) {}
  ~ConfigGuard() { TxManager::config() = Saved; }
  TxConfig Saved;
};

/// Discards the calling thread's unflushed stats into the global block and
/// zeroes it, so the test's assertions see only its own traffic.
void resetStats() {
  TxManager::current().flushStats();
  Stm::resetGlobalStats();
}

TxStats statsNow() {
  TxManager::current().flushStats();
  return Stm::globalStats();
}

/// Spins until \p Pred holds; fails (returns false) after ~10 seconds.
template <typename PredType> bool spinUntil(PredType Pred) {
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!Pred()) {
    if (std::chrono::steady_clock::now() > Deadline)
      return false;
    std::this_thread::yield();
  }
  return true;
}

} // namespace

TEST(Mvcc, QuiescentSnapshotReadCommitsWithoutAbort) {
  if (!TxManager::mvccEnabled())
    GTEST_SKIP() << "built with OTM_MVCC=0";
  Counter C;
  Stm::atomic([&](TxManager &Tx) { Tx.write(&C, &Counter::Value, int64_t{7}); });
  resetStats();
  int64_t Got = -1;
  bool SawSnapshotMode = false;
  Stm::atomicReadOnly([&](TxManager &Tx) {
    SawSnapshotMode = Tx.inSnapshotMode();
    Got = Tx.read(&C, &Counter::Value);
  });
  EXPECT_TRUE(SawSnapshotMode);
  EXPECT_EQ(Got, 7);
  TxStats S = statsNow();
  EXPECT_EQ(S.SnapshotCommits, 1u);
  EXPECT_EQ(S.Commits, 1u);
  EXPECT_EQ(S.Aborts, 0u);
  EXPECT_EQ(S.SnapshotReads, 1u);
  // Nothing committed above the snapshot stamp: the seqlock fast path
  // serves the read, the chain is never walked.
  EXPECT_EQ(S.SnapshotReadsFromChain, 0u);
  // Nothing was enlisted: there is no read log to validate.
  EXPECT_EQ(S.ReadLogAppends, 0u);
}

TEST(Mvcc, SnapshotSeesBeginStampStateAcrossWriterCommit) {
  if (!TxManager::mvccEnabled())
    GTEST_SKIP() << "built with OTM_MVCC=0";
  Counter X, Y;
  Stm::atomic([&](TxManager &Tx) {
    Tx.write(&X, &Counter::Value, int64_t{100});
    Tx.write(&Y, &Counter::Value, int64_t{200});
  });
  resetStats();

  // Monotonic flags: a restarted body re-raises ReaderReady (idempotent)
  // and sails through an already-raised WriterDone.
  std::atomic<bool> ReaderReady{false}, WriterDone{false};
  int64_t Rx = -1, Ry = -1;
  std::thread Reader([&] {
    Stm::atomicReadOnly([&](TxManager &Tx) {
      Rx = Tx.read(&X, &Counter::Value);
      ReaderReady.store(true, std::memory_order_release);
      if (!spinUntil([&] { return WriterDone.load(std::memory_order_acquire); }))
        return;
      Ry = Tx.read(&Y, &Counter::Value);
    });
    TxManager::current().flushStats();
  });

  ASSERT_TRUE(spinUntil([&] { return ReaderReady.load(std::memory_order_acquire); }));
  Stm::atomic([&](TxManager &Tx) {
    Tx.write(&X, &Counter::Value, int64_t{101});
    Tx.write(&Y, &Counter::Value, int64_t{201});
  });
  WriterDone.store(true, std::memory_order_release);
  Reader.join();

  // The reader's stamp predates the writer's commit: Y resolves to its
  // pre-image from the version chain even though the in-place value moved.
  EXPECT_EQ(Rx, 100);
  EXPECT_EQ(Ry, 200);
  TxStats S = statsNow();
  EXPECT_EQ(S.SnapshotCommits, 1u);
  EXPECT_EQ(S.Aborts, 0u);
  EXPECT_EQ(S.SnapshotRefreshes, 0u);
  EXPECT_GE(S.SnapshotReadsFromChain, 1u);

  // A reader that begins after the commit sees the new state in place.
  int64_t Fx = -1, Fy = -1;
  Stm::atomicReadOnly([&](TxManager &Tx) {
    Fx = Tx.read(&X, &Counter::Value);
    Fy = Tx.read(&Y, &Counter::Value);
  });
  EXPECT_EQ(Fx, 101);
  EXPECT_EQ(Fy, 201);
}

TEST(Mvcc, DynamicUpgradeRestartsAsWriterWithoutCountingAnAbort) {
  if (!TxManager::mvccEnabled())
    GTEST_SKIP() << "built with OTM_MVCC=0";
  Counter C;
  resetStats();
  int Attempts = 0;
  bool FirstAttemptSnapshot = false, SecondAttemptSnapshot = true;
  Stm::atomicReadOnly([&](TxManager &Tx) {
    ++Attempts;
    if (Attempts == 1)
      FirstAttemptSnapshot = Tx.inSnapshotMode();
    else
      SecondAttemptSnapshot = Tx.inSnapshotMode();
    int64_t V = Tx.read(&C, &Counter::Value);
    Tx.write(&C, &Counter::Value, V + 1); // not read-only after all
  });
  EXPECT_EQ(Attempts, 2);
  EXPECT_TRUE(FirstAttemptSnapshot);
  EXPECT_FALSE(SecondAttemptSnapshot);
  EXPECT_EQ(C.Value.load(), 1);
  TxStats S = statsNow();
  EXPECT_EQ(S.SnapshotUpgrades, 1u);
  EXPECT_EQ(S.Commits, 1u);
  EXPECT_EQ(S.SnapshotCommits, 0u); // committed as a writer
  EXPECT_EQ(S.Aborts, 0u);          // the upgrade is a restart, not an abort

  // The upgrade latch is per-transaction: the next read-only transaction
  // runs on the snapshot path again.
  Stm::atomicReadOnly(
      [&](TxManager &Tx) { EXPECT_TRUE(Tx.inSnapshotMode()); });
  TxStats S2 = statsNow();
  EXPECT_EQ(S2.SnapshotCommits, 1u);
}

TEST(Mvcc, ChainTruncatesAtConfiguredDepth) {
  if (!TxManager::mvccEnabled())
    GTEST_SKIP() << "built with OTM_MVCC=0";
  ConfigGuard Guard;
  TxManager::config().MvVersions = 3;
  Counter C;
  resetStats();
  for (int I = 0; I < 8; ++I)
    Stm::atomic([&](TxManager &Tx) {
      Tx.write(&C, &Counter::Value, int64_t{I});
    });
  EXPECT_EQ(C.historyDepthForTesting(), 3u);
  TxStats S = statsNow();
  EXPECT_EQ(S.MvVersionsInstalled, 8u);
  EXPECT_EQ(S.MvVersionsRetired, 5u);
}

TEST(Mvcc, TruncatedChainRefreshesInsteadOfServingTooNewState) {
  if (!TxManager::mvccEnabled())
    GTEST_SKIP() << "built with OTM_MVCC=0";
  ConfigGuard Guard;
  TxManager::config().MvVersions = 1; // keep only the newest pre-image
  Counter C;
  Stm::atomic([&](TxManager &Tx) { Tx.write(&C, &Counter::Value, int64_t{1}); });
  resetStats();

  // Monotonic flags: the refresh restart re-runs the body, which re-raises
  // ReaderReady (idempotent) and passes straight through WriterDone.
  std::atomic<bool> ReaderReady{false}, WriterDone{false};
  int64_t First = -1, Second = -1;
  std::thread Reader([&] {
    Stm::atomicReadOnly([&](TxManager &Tx) {
      int64_t V = Tx.read(&C, &Counter::Value);
      ReaderReady.store(true, std::memory_order_release);
      if (!spinUntil([&] { return WriterDone.load(std::memory_order_acquire); }))
        return;
      // Two commits landed since our stamp and the chain holds only the
      // newest pre-image: the walk cannot reach our snapshot, so the
      // attempt restarts on a fresh stamp (observable as a refresh) and
      // both reads then agree on the final state.
      int64_t W = Tx.read(&C, &Counter::Value);
      First = V;
      Second = W;
    });
    TxManager::current().flushStats();
  });

  ASSERT_TRUE(spinUntil([&] { return ReaderReady.load(std::memory_order_acquire); }));
  Stm::atomic([&](TxManager &Tx) { Tx.write(&C, &Counter::Value, int64_t{2}); });
  Stm::atomic([&](TxManager &Tx) { Tx.write(&C, &Counter::Value, int64_t{3}); });
  WriterDone.store(true, std::memory_order_release);
  Reader.join();

  // Whatever stamp the final (committed) attempt ran on, its two reads
  // must be mutually consistent — and after the refresh that stamp covers
  // both commits.
  EXPECT_EQ(First, 3);
  EXPECT_EQ(Second, 3);
  TxStats S = statsNow();
  EXPECT_GE(S.SnapshotRefreshes, 1u);
  EXPECT_EQ(S.SnapshotCommits, 1u);
  EXPECT_EQ(S.Aborts, 0u); // refreshes are restarts, never aborts
}

TEST(Mvcc, VersionsAreReclaimedThroughTheEpochManager) {
  if (!TxManager::mvccEnabled())
    GTEST_SKIP() << "built with OTM_MVCC=0";
  ConfigGuard Guard;
  TxManager::config().MvVersions = 2;
  resetStats();
  gc::EpochManager &EM = gc::EpochManager::global();
  EM.drainForTesting();
  const uint64_t Freed0 = EM.freedCount();

  // Churn: objects come and go while their chains grow and truncate.
  for (int Round = 0; Round < 10; ++Round) {
    auto *Obj = new Counter();
    for (int I = 0; I < 6; ++I)
      Stm::atomic([&](TxManager &Tx) {
        Tx.write(Obj, &Counter::Value, int64_t{I});
      });
    EXPECT_EQ(Obj->historyDepthForTesting(), 2u);
    delete Obj; // releaseHistory: drops the chain, epoch-retires records
  }
  TxStats S = statsNow();
  EXPECT_EQ(S.MvVersionsInstalled, 60u);
  EXPECT_EQ(S.MvVersionsRetired, 40u); // 4 truncated per object, 10 objects
  EM.drainForTesting();
  // Every truncated node+record and every destructor-retired record is
  // actually freed once the epochs drain.
  EXPECT_GE(EM.freedCount() - Freed0, 40u);
}

TEST(Mvcc, SnapshotReadersRunWhileSerialGateIsHeld) {
  if (!TxManager::mvccEnabled())
    GTEST_SKIP() << "built with OTM_MVCC=0";
  Counter C;
  Stm::atomic([&](TxManager &Tx) { Tx.write(&C, &Counter::Value, int64_t{5}); });
  resetStats();

  txn::SerialGate &Gate = txn::SerialGate::instance();
  txn::SerialGate::Slot &Slot = Gate.slotForCurrentThread();
  Gate.enterExclusive(Slot);
  ASSERT_TRUE(Gate.exclusiveActive());

  // A zero-conflict snapshot reader must not stall behind the drain: it
  // owns nothing, writes nothing, and pins its epoch independently.
  auto ReaderDone = std::async(std::launch::async, [&] {
    int64_t Sum = 0;
    for (int I = 0; I < 100; ++I)
      Stm::atomicReadOnly(
          [&](TxManager &Tx) { Sum += Tx.read(&C, &Counter::Value); });
    TxManager::current().flushStats();
    return Sum;
  });
  auto Status = ReaderDone.wait_for(std::chrono::seconds(10));
  Gate.exitExclusive();
  ASSERT_EQ(Status, std::future_status::ready)
      << "snapshot readers stalled behind the serial gate";
  EXPECT_EQ(ReaderDone.get(), 500);
  TxStats S = statsNow();
  EXPECT_EQ(S.SnapshotCommits, 100u);
  EXPECT_EQ(S.Aborts, 0u);
}

TEST(Mvcc, TxGlobalReadsResolveAgainstTheSnapshot) {
  if (!TxManager::mvccEnabled())
    GTEST_SKIP() << "built with OTM_MVCC=0";
  TxGlobal<int64_t> G(41);
  Stm::atomic([&](TxManager &Tx) { G.set(Tx, 42); });
  resetStats();
  int64_t Got = -1;
  Stm::atomicReadOnly([&](TxManager &Tx) { Got = G.get(Tx); });
  EXPECT_EQ(Got, 42);
  TxStats S = statsNow();
  EXPECT_EQ(S.SnapshotCommits, 1u);
  EXPECT_EQ(S.SnapshotReads, 1u);
}

TEST(Mvcc, SnapshotSumsStayConsistentUnderWriterChurn) {
  if (!TxManager::mvccEnabled())
    GTEST_SKIP() << "built with OTM_MVCC=0";
  constexpr int NumAccounts = 8;
  constexpr int64_t Initial = 1000;
  constexpr int TransfersPerWriter = 2000;
  constexpr int ReadsPerReader = 400;
  constexpr int NumWriters = 2, NumReaders = 2;

  std::vector<std::unique_ptr<Account>> Accounts;
  for (int I = 0; I < NumAccounts; ++I) {
    Accounts.push_back(std::make_unique<Account>());
    Accounts.back()->Balance.store(Initial);
  }
  resetStats();

  ThreadBarrier Start(NumWriters + NumReaders);
  std::atomic<int> BadSums{0};
  std::vector<std::thread> Threads;
  for (int W = 0; W < NumWriters; ++W)
    Threads.emplace_back([&, W] {
      Xoshiro256 Rng(4242 + W);
      Start.arriveAndWait();
      for (int I = 0; I < TransfersPerWriter; ++I) {
        Account *From = Accounts[Rng.nextBelow(NumAccounts)].get();
        Account *To = Accounts[Rng.nextBelow(NumAccounts)].get();
        Stm::atomic([&](TxManager &Tx) {
          int64_t Amount = 1 + int64_t(Rng.nextBelow(5));
          Tx.write(From, &Account::Balance,
                   Tx.read(From, &Account::Balance) - Amount);
          Tx.write(To, &Account::Balance,
                   Tx.read(To, &Account::Balance) + Amount);
        });
      }
      TxManager::current().flushStats();
    });
  for (int R = 0; R < NumReaders; ++R)
    Threads.emplace_back([&] {
      Start.arriveAndWait();
      for (int I = 0; I < ReadsPerReader; ++I) {
        int64_t Sum = 0;
        Stm::atomicReadOnly([&](TxManager &Tx) {
          Sum = 0; // body may restart on a refresh
          for (auto &A : Accounts)
            Sum += Tx.read(A.get(), &Account::Balance);
        });
        if (Sum != NumAccounts * Initial)
          BadSums.fetch_add(1, std::memory_order_relaxed);
      }
      TxManager::current().flushStats();
    });
  for (std::thread &T : Threads)
    T.join();

  // Transfers preserve the total; any reader observing a different sum saw
  // a torn (non-snapshot) state.
  EXPECT_EQ(BadSums.load(), 0);
  int64_t FinalSum = 0;
  for (auto &A : Accounts)
    FinalSum += A->Balance.load();
  EXPECT_EQ(FinalSum, NumAccounts * Initial);
  TxStats S = statsNow();
  // Every read-only transaction committed on the never-abort path, exactly
  // once, no matter how many refresh restarts the churn forced.
  EXPECT_EQ(S.SnapshotCommits, uint64_t(NumReaders) * ReadsPerReader);
}

TEST(Mvcc, SchemaStaysCompleteWhenCompiledOut) {
  // Runs in every build: the MVCC counters exist (and stay zero when the
  // tier is off), so BENCH json and telemetry schemas never fork.
  TxStats S = statsNow();
  if (!TxManager::mvccEnabled()) {
    EXPECT_EQ(S.SnapshotCommits, 0u);
    EXPECT_EQ(S.MvVersionsInstalled, 0u);
    Counter C;
    EXPECT_EQ(C.historyDepthForTesting(), 0u);
    int64_t Got = -1;
    // atomicReadOnly degrades to the validate path and still works.
    Stm::atomicReadOnly([&](TxManager &Tx) {
      EXPECT_FALSE(Tx.inSnapshotMode());
      Got = Tx.read(&C, &Counter::Value);
    });
    EXPECT_EQ(Got, 0);
  }
  SUCCEED();
}
