//===- tests/ConstFoldTest.cpp - Constant folding & CFG cleanup ----------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"
#include "passes/ConstFold.h"
#include "passes/DCE.h"
#include "passes/LocalCSE.h"
#include "passes/LowerAtomic.h"
#include "passes/OpenElim.h"
#include "passes/Pass.h"
#include "passes/SimplifyCFG.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <gtest/gtest.h>

using namespace otm;
using namespace otm::interp;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

Module parsed(const std::string &Text) {
  Module M = parseModuleOrDie(Text);
  verifyModuleOrDie(M);
  return M;
}

unsigned countOp(const Module &M, Opcode Op) {
  unsigned N = 0;
  for (const std::unique_ptr<Function> &F : M.Functions)
    for (const std::unique_ptr<BasicBlock> &BB : F->Blocks)
      for (const Instr &I : BB->Instrs)
        N += (I.Op == Op);
  return N;
}

int64_t runF(Module &M, const char *Name) {
  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::IgnoreAtomic;
  Interpreter I(M, O);
  Interpreter::RunResult R = I.run(Name, {});
  EXPECT_FALSE(R.Trapped) << R.Error;
  return R.Value;
}

} // namespace

TEST(ConstFold, FoldsArithmeticChains) {
  Module M = parsed(R"(
func f(): i64 {
entry:
  %a = add 2, 3
  %b = mul %a, 4
  %c = sub %b, 6
  ret %c
}
)");
  ConstFoldPass Fold;
  EXPECT_TRUE(Fold.run(M));
  verifyModuleOrDie(M);
  EXPECT_EQ(countOp(M, Opcode::Add), 0u);
  EXPECT_EQ(countOp(M, Opcode::Mul), 0u);
  EXPECT_EQ(runF(M, "f"), 14);
}

TEST(ConstFold, KeepsTrappingDivision) {
  Module M = parsed(R"(
func f(): i64 {
entry:
  %a = div 1, 0
  ret %a
}
)");
  ConstFoldPass Fold;
  Fold.run(M);
  EXPECT_EQ(countOp(M, Opcode::Div), 1u) << "division by zero must stay";
  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::IgnoreAtomic;
  Interpreter I(M, O);
  EXPECT_TRUE(I.run("f", {}).Trapped);
}

TEST(ConstFold, CollapsesConstantBranches) {
  Module M = parsed(R"(
func f(): i64 {
entry:
  %c = cmplt 1, 2
  condbr %c, yes, no
yes:
  ret 10
no:
  ret 20
}
)");
  ConstFoldPass Fold;
  EXPECT_TRUE(Fold.run(M));
  EXPECT_EQ(countOp(M, Opcode::CondBr), 0u);
  SimplifyCfgPass Cfg;
  EXPECT_TRUE(Cfg.run(M));
  verifyModuleOrDie(M);
  EXPECT_EQ(M.Functions[0]->Blocks.size(), 1u) << "dead arm not removed";
  EXPECT_EQ(runF(M, "f"), 10);
}

TEST(ConstFold, DeadBranchBarriersDisappear) {
  // A barrier on a constant-false path must vanish entirely once folding,
  // CFG simplification and DCE cooperate — the paper's "classic
  // optimizations apply to STM operations" effect.
  Module M = parsed(R"(
class P { x: i64 }
func f(p: P): i64 {
entry:
  atomic_begin
  %never = cmpgt 1, 2
  condbr %never, cold, hot
cold:
  %o1 = loadlocal p
  %v1 = getfield %o1, P.x
  br join
hot:
  %o2 = loadlocal p
  %v2 = getfield %o2, P.x
  br join
join:
  atomic_end
  ret 0
}
)");
  PassManager PM;
  PM.addPass<LowerAtomicPass>();
  PM.addPass<ConstFoldPass>();
  PM.addPass<SimplifyCfgPass>();
  PM.addPass<LocalCsePass>();
  PM.addPass<OpenElimPass>();
  PM.addPass<DcePass>();
  PM.run(M);
  EXPECT_EQ(countBarriers(M).OpenRead, 1u)
      << "only the reachable access should keep its barrier";
}

TEST(SimplifyCfg, MergesChainsAndDropsUnreachable) {
  Module M = parsed(R"(
func f(): i64 {
entry:
  br a
a:
  %x = mov 1
  br b
b:
  %y = add %x, 2
  ret %y
dead:
  ret 99
}
)");
  SimplifyCfgPass Cfg;
  EXPECT_TRUE(Cfg.run(M));
  verifyModuleOrDie(M);
  EXPECT_EQ(M.Functions[0]->Blocks.size(), 1u);
  EXPECT_EQ(runF(M, "f"), 3);
}

TEST(SimplifyCfg, KeepsDiamonds) {
  Module M = parsed(R"(
func f(c: i1): i64 {
entry:
  %x = loadlocal c
  condbr %x, a, b
a:
  br join
b:
  br join
join:
  ret 1
}
)");
  SimplifyCfgPass Cfg;
  Cfg.run(M);
  verifyModuleOrDie(M);
  EXPECT_EQ(M.Functions[0]->Blocks.size(), 4u)
      << "multi-predecessor join must not merge";
}
