//===- tests/SchedulerTest.cpp - Admission scheduler tests ----------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// DESIGN.md §3.11 coverage: the fingerprint conservativeness guarantee
// (false conflicts allowed, false "compatible" never), the compat/merge
// decision table, the scheduler's admission mechanics (immediate admit,
// strict-FIFO queueing, bounded-queue overflow and wait-budget bypasses),
// the adaptive gate under forced abort storms, a sched-on vs sched-off
// differential over the same request streams, and a TSan-aimed concurrency
// suite (the CI TSan job's filter matches Scheduler*).
//
//===----------------------------------------------------------------------===//

#include "stm/HashFilter.h"
#include "stm/Stm.h"
#include "support/Random.h"
#include "txn/AdmissionScheduler.h"
#include "txn/Fingerprint.h"

#include "gtest/gtest.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <thread>
#include <vector>

using namespace otm;
using txn::AdmissionScheduler;
using txn::RwFingerprint;
using txn::SchedMode;
using txn::TxSummary;

namespace {

//===----------------------------------------------------------------------===//
// Fingerprints: conservativeness and the compat/merge decision table
//===----------------------------------------------------------------------===//

TEST(FingerprintTest, SharedKeyAlwaysIntersects) {
  // The one-sided guarantee, exhaustively over many key choices: a key
  // present in both filters sets the same bits in both, so disjoint() can
  // never report a provably-false "compatible".
  Xoshiro256 Rng(42);
  for (int Trial = 0; Trial < 1000; ++Trial) {
    RwFingerprint A, B;
    uint64_t Shared = Rng.next();
    A.insert(Shared);
    B.insert(Shared);
    for (unsigned I = 0, N = static_cast<unsigned>(Rng.nextBelow(16)); I < N;
         ++I)
      A.insert(Rng.next());
    for (unsigned I = 0, N = static_cast<unsigned>(Rng.nextBelow(16)); I < N;
         ++I)
      B.insert(Rng.next());
    EXPECT_FALSE(RwFingerprint::disjoint(A, B))
        << "false compatible on shared key " << Shared;
  }
}

TEST(FingerprintTest, DisjointVerdictIsProof) {
  // Whenever disjoint() says yes, the underlying sets really are disjoint.
  // (The converse direction may false-conflict; that is allowed and gets no
  // assertion.)
  Xoshiro256 Rng(43);
  for (int Trial = 0; Trial < 500; ++Trial) {
    std::set<uint64_t> SetA, SetB;
    RwFingerprint A, B;
    for (unsigned I = 0, N = 4 + static_cast<unsigned>(Rng.nextBelow(12));
         I < N; ++I) {
      uint64_t K = Rng.nextBelow(64); // tiny keyspace forces real overlaps
      SetA.insert(K);
      A.insert(K);
    }
    for (unsigned I = 0, N = 4 + static_cast<unsigned>(Rng.nextBelow(12));
         I < N; ++I) {
      uint64_t K = Rng.nextBelow(64);
      SetB.insert(K);
      B.insert(K);
    }
    if (RwFingerprint::disjoint(A, B)) {
      for (uint64_t K : SetA)
        EXPECT_EQ(SetB.count(K), 0u)
            << "disjoint() verdict contradicted by shared key " << K;
    }
  }
}

TEST(FingerprintTest, MergeIsUnion) {
  RwFingerprint A, B, Both;
  for (uint64_t K : {1ull, 2ull, 3ull}) {
    A.insert(K);
    Both.insert(K);
  }
  for (uint64_t K : {100ull, 200ull}) {
    B.insert(K);
    Both.insert(K);
  }
  A.merge(B);
  for (unsigned I = 0; I < RwFingerprint::Words; ++I)
    EXPECT_EQ(A.Bits[I], Both.Bits[I]);
}

TEST(FingerprintTest, EmptyAndClear) {
  RwFingerprint F;
  EXPECT_TRUE(F.empty());
  F.insert(7);
  EXPECT_FALSE(F.empty());
  F.clear();
  EXPECT_TRUE(F.empty());
  // Empty is compatible with everything, including itself.
  RwFingerprint G;
  G.insert(7);
  EXPECT_TRUE(RwFingerprint::disjoint(F, G));
  EXPECT_TRUE(RwFingerprint::disjoint(F, F));
}

/// Builds a summary from {reads}, {writes} key lists.
TxSummary summaryOf(std::initializer_list<uint64_t> Reads,
                    std::initializer_list<uint64_t> Writes) {
  TxSummary S;
  for (uint64_t K : Reads)
    S.addRead(K);
  for (uint64_t K : Writes)
    S.addWrite(K);
  return S;
}

TEST(FingerprintTest, CompatDecisionTable) {
  // Read/read overlap is the only overlap compat() tolerates.
  TxSummary ReadK = summaryOf({10}, {});
  TxSummary ReadK2 = summaryOf({10}, {});
  TxSummary WriteK = summaryOf({}, {10});
  TxSummary WriteK2 = summaryOf({}, {10});
  TxSummary Other = summaryOf({20}, {21});

  EXPECT_TRUE(ReadK.compat(ReadK2));   // r/r: compatible
  EXPECT_FALSE(ReadK.compat(WriteK));  // r/w: conflict
  EXPECT_FALSE(WriteK.compat(ReadK));  // w/r: conflict
  EXPECT_FALSE(WriteK.compat(WriteK2)); // w/w: conflict
  EXPECT_TRUE(WriteK.compat(Other));   // fully disjoint footprints
  EXPECT_TRUE(Other.compat(WriteK));   // ... symmetrically
}

TEST(FingerprintTest, MergedSummaryStandsInForBoth) {
  // The snippet exemplar's rule: after merging compatible transactions,
  // anything conflicting with either member conflicts with the merge.
  TxSummary A = summaryOf({1, 2}, {3});
  TxSummary B = summaryOf({4}, {5});
  ASSERT_TRUE(A.compat(B));
  TxSummary Merged = A;
  Merged.merge(B);
  TxSummary HitsA = summaryOf({}, {3});
  TxSummary HitsB = summaryOf({}, {5});
  EXPECT_FALSE(Merged.compat(HitsA));
  EXPECT_FALSE(Merged.compat(HitsB));
}

//===----------------------------------------------------------------------===//
// HashFilter fingerprint export
//===----------------------------------------------------------------------===//

TEST(HashFilterFingerprintTest, MatchesDirectInsertion) {
  stm::HashFilter Filter;
  RwFingerprint Direct;
  Xoshiro256 Rng(44);
  for (int I = 0; I < 200; ++I) {
    uint64_t Key = Rng.next() & ((uint64_t{1} << 48) - 1);
    Filter.insert(Key);
    Direct.insert(Key);
  }
  RwFingerprint Exported = Filter.fingerprint();
  for (unsigned I = 0; I < RwFingerprint::Words; ++I)
    EXPECT_EQ(Exported.Bits[I], Direct.Bits[I]);
}

TEST(HashFilterFingerprintTest, SurvivesGrowAndClear) {
  stm::HashFilter Filter;
  // Force several grows, then clear: the export must see only live keys.
  for (uint64_t K = 1; K <= 500; ++K)
    Filter.insert(K);
  Filter.clear();
  Filter.insert(0xabc);
  RwFingerprint Expected;
  Expected.insert(0xabc);
  RwFingerprint Exported = Filter.fingerprint();
  for (unsigned I = 0; I < RwFingerprint::Words; ++I)
    EXPECT_EQ(Exported.Bits[I], Expected.Bits[I]);
}

TEST(HashFilterFingerprintTest, ConservativeAcrossFilters) {
  // Same one-sidedness through the filter path: two filters sharing a key
  // can never export disjoint fingerprints.
  Xoshiro256 Rng(45);
  for (int Trial = 0; Trial < 200; ++Trial) {
    stm::HashFilter FA, FB;
    uint64_t Shared = Rng.next() & ((uint64_t{1} << 48) - 1);
    FA.insert(Shared);
    FB.insert(Shared);
    for (unsigned I = 0, N = static_cast<unsigned>(Rng.nextBelow(32)); I < N;
         ++I)
      FA.insert(Rng.next() & ((uint64_t{1} << 48) - 1));
    for (unsigned I = 0, N = static_cast<unsigned>(Rng.nextBelow(32)); I < N;
         ++I)
      FB.insert(Rng.next() & ((uint64_t{1} << 48) - 1));
    EXPECT_FALSE(
        RwFingerprint::disjoint(FA.fingerprint(), FB.fingerprint()));
  }
}

//===----------------------------------------------------------------------===//
// Scheduler admission mechanics
//===----------------------------------------------------------------------===//

/// Resets the singleton scheduler to a known configuration per test and
/// restores the environment-configured mode afterwards (other suites in
/// this binary — and the differential test — rely on it).
class SchedulerFixture : public ::testing::Test {
protected:
  void SetUp() override {
    if (!AdmissionScheduler::compiledIn())
      GTEST_SKIP() << "built with OTM_SCHED=0";
    Sched().resetForTesting();
    SavedMode = Sched().mode();
    SavedCap = Sched().queueCapacity();
    Sched().setMode(SchedMode::On);
  }

  void TearDown() override {
    if (!AdmissionScheduler::compiledIn())
      return;
    Sched().resetForTesting();
    Sched().setMode(SavedMode);
    Sched().setQueueCapacity(SavedCap ? SavedCap : 64);
    Sched().setQueueWaitBudget(std::chrono::microseconds(100000));
    Sched().setGateThresholds(0.05, 0.01);
    Sched().setGateWindow(128);
  }

  static AdmissionScheduler &Sched() {
    return AdmissionScheduler::instance();
  }

  SchedMode SavedMode = SchedMode::Adaptive;
  unsigned SavedCap = 64;
};

TEST_F(SchedulerFixture, CompatibleSummariesAdmitTogether) {
  TxSummary A = summaryOf({1, 2}, {3});
  TxSummary B = summaryOf({1}, {4}); // r/r overlap only: compatible
  auto TA = Sched().admit(7, A);
  auto TB = Sched().admit(7, B);
  EXPECT_GE(TA.Slot, 0);
  EXPECT_GE(TB.Slot, 0);
  Sched().release(TA, 0);
  Sched().release(TB, 0);
}

TEST_F(SchedulerFixture, CrossClassNeverCompared) {
  // Same footprint, different classes: different key conventions, so the
  // scheduler must not treat them as conflicting.
  TxSummary A = summaryOf({}, {10});
  TxSummary B = summaryOf({}, {10});
  auto TA = Sched().admit(8, A);   // shard(8) == shard(16): same shard,
  auto TB = Sched().admit(16, B);  // different class
  EXPECT_GE(TA.Slot, 0);
  EXPECT_GE(TB.Slot, 0);
  Sched().release(TA, 0);
  Sched().release(TB, 0);
}

TEST_F(SchedulerFixture, ConflictingArrivalWaitsForRelease) {
  TxSummary A = summaryOf({}, {10});
  TxSummary B = summaryOf({10}, {}); // reads what A writes
  auto TA = Sched().admit(7, A);
  ASSERT_GE(TA.Slot, 0);

  std::atomic<bool> Admitted{false};
  std::thread Waiter([&] {
    auto TB = Sched().admit(7, B);
    EXPECT_GE(TB.Slot, 0) << "should be granted, not bypassed";
    EXPECT_TRUE(TB.Waited);
    Admitted.store(true);
    Sched().release(TB, 0);
  });
  // Give the waiter time to park; it must not be admitted while A holds
  // its slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(Admitted.load());
  Sched().release(TA, 0);
  Waiter.join();
  EXPECT_TRUE(Admitted.load());
}

TEST_F(SchedulerFixture, QueueOverflowFallsBackToSpeculation) {
  Sched().setQueueCapacity(0); // any conflicting arrival overflows at once
  TxSummary A = summaryOf({}, {10});
  TxSummary B = summaryOf({}, {10});
  auto TA = Sched().admit(7, A);
  ASSERT_GE(TA.Slot, 0);
  auto Before = Sched().stats().QueueOverflows;
  auto TB = Sched().admit(7, B);
  EXPECT_LT(TB.Slot, 0) << "full queue must bypass, not block";
  EXPECT_EQ(Sched().stats().QueueOverflows, Before + 1);
  Sched().release(TA, 0);
  Sched().release(TB, 0); // bypass tickets still release (gate feedback)
}

TEST_F(SchedulerFixture, WaitBudgetBypassesStuckQueue) {
  Sched().setQueueWaitBudget(std::chrono::microseconds(5000));
  TxSummary A = summaryOf({}, {10});
  TxSummary B = summaryOf({}, {10});
  auto TA = Sched().admit(7, A);
  ASSERT_GE(TA.Slot, 0);
  auto TB = Sched().admit(7, B); // parks, then outlives the 5ms budget
  EXPECT_LT(TB.Slot, 0);
  EXPECT_TRUE(TB.Waited);
  EXPECT_GE(Sched().stats().TimeoutBypasses, 1u);
  Sched().release(TA, 0);
  Sched().release(TB, 0);
}

TEST_F(SchedulerFixture, StrictFifoNoOvertaking) {
  // B (conflicting) parks first; C is compatible with the in-flight A but
  // must not overtake the parked head.
  TxSummary A = summaryOf({}, {10});
  TxSummary B = summaryOf({}, {10});
  TxSummary C = summaryOf({}, {99});
  auto TA = Sched().admit(7, A);
  ASSERT_GE(TA.Slot, 0);

  std::atomic<bool> BAdmitted{false}, CAdmitted{false};
  std::thread WaitB([&] {
    auto T = Sched().admit(7, B);
    BAdmitted.store(true);
    EXPECT_GE(T.Slot, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Sched().release(T, 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20)); // B parks
  std::thread WaitC([&] {
    auto T = Sched().admit(7, C);
    // C may only be admitted after B (the head) was granted.
    EXPECT_TRUE(BAdmitted.load());
    CAdmitted.store(true);
    EXPECT_GE(T.Slot, 0);
    Sched().release(T, 0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20)); // C parks too
  EXPECT_FALSE(BAdmitted.load());
  EXPECT_FALSE(CAdmitted.load());
  Sched().release(TA, 0); // drains B, then C, in order
  WaitB.join();
  WaitC.join();
}

TEST_F(SchedulerFixture, AdaptiveGateFlipsUnderAbortStorm) {
  Sched().setMode(SchedMode::Adaptive);
  Sched().setGateWindow(8);
  Sched().setGateThresholds(0.5, 0.1);
  const uint32_t Cls = 7;
  EXPECT_FALSE(Sched().admissionActive(Cls)) << "gates start off";

  // Storm: every release reports an aborted attempt. One full window must
  // arm the gate.
  TxSummary S = summaryOf({}, {10});
  for (int I = 0; I < 8; ++I) {
    auto T = Sched().admit(Cls, S);
    EXPECT_LT(T.Slot, 0) << "gate off: admission bypassed";
    Sched().release(T, /*AbortedAttempts=*/1);
  }
  EXPECT_TRUE(Sched().admissionActive(Cls)) << "storm arms the gate";
  EXPECT_GE(Sched().stats().GateFlipsOn, 1u);

  // Calm: a window of clean releases disarms it (hysteresis: rate <= 0.1).
  for (int I = 0; I < 8; ++I) {
    auto T = Sched().admit(Cls, S);
    Sched().release(T, /*AbortedAttempts=*/0);
  }
  EXPECT_FALSE(Sched().admissionActive(Cls)) << "calm disarms the gate";
  EXPECT_GE(Sched().stats().GateFlipsOff, 1u);
}

TEST_F(SchedulerFixture, OffModeBypassesEverything) {
  Sched().setMode(SchedMode::Off);
  TxSummary A = summaryOf({}, {10});
  TxSummary B = summaryOf({}, {10});
  auto TA = Sched().admit(7, A);
  auto TB = Sched().admit(7, B);
  EXPECT_LT(TA.Slot, 0);
  EXPECT_LT(TB.Slot, 0);
  Sched().release(TA, 0);
  Sched().release(TB, 0);
}

TEST(SchedulerJsonTest, StatsKeysAlwaysPresent) {
  // The telemetry/bench schema must not fork on the compile switch: every
  // key exists (zeros when compiled out), plus the enabled flag.
  obs::JsonValue V = txn::schedStatsToJson();
  for (const char *Key :
       {"enabled", "mode", "admitted_immediate", "queued", "queue_overflows",
        "timeout_bypasses", "bypassed", "releases", "aborts_reported",
        "gate_flips_on", "gate_flips_off", "gates_on", "max_queue_depth",
        "queue_wait_us"})
    EXPECT_NE(V.get(Key), nullptr) << "missing sched stats key: " << Key;
}

//===----------------------------------------------------------------------===//
// Stm::atomicScheduled end-to-end
//===----------------------------------------------------------------------===//

struct Cell : stm::TxObject {
  stm::Field<int64_t> Value;
};

/// Scheduled-path fixture: needs the whole STM, so reuse the scheduler
/// reset/restore plumbing.
using AtomicScheduledTest = SchedulerFixture;

TEST_F(AtomicScheduledTest, DeclaredCommitsAndAdmits) {
  auto C = std::make_unique<Cell>();
  TxSummary S;
  S.addWrite(reinterpret_cast<uintptr_t>(C.get()));
  for (int I = 0; I < 10; ++I)
    stm::Stm::atomicScheduled(7, S, [&](stm::TxManager &Tx) {
      Tx.openForUpdate(C.get());
      Tx.logUndo(&C->Value);
      C->Value.store(C->Value.load() + 1);
    });
  EXPECT_EQ(C->Value.load(), 10);
  EXPECT_GE(Sched().stats().AdmittedImmediate, 10u);
  EXPECT_EQ(Sched().stats().Releases, 10u);
}

TEST_F(AtomicScheduledTest, NestedCallsFlatten) {
  auto C = std::make_unique<Cell>();
  TxSummary S;
  S.addWrite(reinterpret_cast<uintptr_t>(C.get()));
  stm::Stm::atomicScheduled(7, S, [&](stm::TxManager &Tx) {
    Tx.openForUpdate(C.get());
    Tx.logUndo(&C->Value);
    C->Value.store(1);
    // Nested scheduled atomic: must flatten (admitting inside our own
    // in-flight slot would self-deadlock), and its effects must be part of
    // the enclosing transaction.
    stm::Stm::atomicScheduled(7, S, [&](stm::TxManager &Tx2) {
      Tx2.logUndo(&C->Value);
      C->Value.store(C->Value.load() + 10);
    });
  });
  EXPECT_EQ(C->Value.load(), 11);
}

TEST_F(AtomicScheduledTest, ExceptionsPropagateAndReleaseTicket) {
  auto C = std::make_unique<Cell>();
  TxSummary S;
  S.addWrite(reinterpret_cast<uintptr_t>(C.get()));
  struct Boom {};
  EXPECT_THROW(stm::Stm::atomicScheduled(7, S,
                                         [&](stm::TxManager &Tx) {
                                           Tx.openForUpdate(C.get());
                                           Tx.logUndo(&C->Value);
                                           C->Value.store(42);
                                           throw Boom{};
                                         }),
               Boom);
  EXPECT_EQ(C->Value.load(), 0) << "failure atomicity";
  // The ticket was released: a conflicting admit must go straight in.
  auto T = Sched().admit(7, S);
  EXPECT_GE(T.Slot, 0);
  Sched().release(T, 0);
}

TEST_F(AtomicScheduledTest, SampledModeConvergesUnderContention) {
  // Two threads increment one cell through the sampled path: first
  // attempts speculate, aborted ones sample their footprint and re-enter
  // admitted. The final count proves no increment was lost either way.
  auto C = std::make_unique<Cell>();
  constexpr int PerThread = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < 2; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I)
        stm::Stm::atomicScheduled(7, [&](stm::TxManager &Tx) {
          Tx.openForUpdate(C.get());
          Tx.logUndo(&C->Value);
          C->Value.store(C->Value.load() + 1);
        });
      stm::TxManager::current().flushStats();
    });
  for (std::thread &Th : Threads)
    Th.join();
  EXPECT_EQ(C->Value.load(), 2 * PerThread);
}

//===----------------------------------------------------------------------===//
// Differential: scheduled execution is invisible to final state
//===----------------------------------------------------------------------===//

/// Runs the E11-shaped workload (deterministic per-thread request streams,
/// commutative increments) under one arm and returns the final table.
std::vector<int64_t> runWorkload(bool Scheduled, unsigned NumThreads) {
  constexpr unsigned TableSize = 64; // small: force real conflicts
  constexpr int PerThread = 500;
  std::vector<std::unique_ptr<Cell>> Table;
  for (unsigned I = 0; I < TableSize; ++I)
    Table.push_back(std::make_unique<Cell>());

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Role(500 + T);
      Xoshiro256 Keys(600 + T);
      for (int I = 0; I < PerThread; ++I) {
        uint32_t K1 = static_cast<uint32_t>(Keys.nextBelow(TableSize));
        uint32_t K2 = static_cast<uint32_t>(Keys.nextBelow(TableSize));
        bool WriteBoth = Role.nextPercent(50);
        auto Body = [&](stm::TxManager &Tx) {
          Cell *A = Table[K1].get();
          Cell *B = Table[K2].get();
          Tx.openForUpdate(A);
          Tx.logUndo(&A->Value);
          A->Value.store(A->Value.load() + 1);
          if (WriteBoth && K2 != K1) {
            Tx.openForUpdate(B);
            Tx.logUndo(&B->Value);
            B->Value.store(B->Value.load() + 1);
          } else {
            Tx.openForRead(B);
            (void)B->Value.load();
          }
        };
        if (Scheduled) {
          TxSummary S;
          S.addWrite(reinterpret_cast<uintptr_t>(Table[K1].get()));
          if (WriteBoth && K2 != K1)
            S.addWrite(reinterpret_cast<uintptr_t>(Table[K2].get()));
          else
            S.addRead(reinterpret_cast<uintptr_t>(Table[K2].get()));
          stm::Stm::atomicScheduled(7, S, Body);
        } else {
          stm::Stm::atomic(Body);
        }
      }
      stm::TxManager::current().flushStats();
    });
  for (std::thread &Th : Threads)
    Th.join();

  std::vector<int64_t> Final;
  for (auto &C : Table)
    Final.push_back(C->Value.load());
  return Final;
}

TEST_F(SchedulerFixture, DifferentialSchedOnEqualsSchedOff) {
  // Same deterministic request streams; increments are commutative, so the
  // final per-row totals are interleaving-independent. Any divergence
  // means the scheduler dropped, duplicated, or corrupted a transaction.
  Sched().setMode(SchedMode::Off);
  std::vector<int64_t> Off = runWorkload(/*Scheduled=*/true, 4);
  Sched().resetForTesting();
  Sched().setMode(SchedMode::On);
  std::vector<int64_t> On = runWorkload(/*Scheduled=*/true, 4);
  Sched().resetForTesting();
  std::vector<int64_t> Plain = runWorkload(/*Scheduled=*/false, 4);
  EXPECT_EQ(Off, On);
  EXPECT_EQ(On, Plain);
}

//===----------------------------------------------------------------------===//
// Concurrency (TSan suite — keep "Scheduler" in these names)
//===----------------------------------------------------------------------===//

TEST(SchedulerConcurrencyTest, MixedArmsHammer) {
  if (!AdmissionScheduler::compiledIn())
    GTEST_SKIP() << "built with OTM_SCHED=0";
  auto &Sched = AdmissionScheduler::instance();
  Sched.resetForTesting();
  SchedMode Saved = Sched.mode();
  Sched.setMode(SchedMode::On);

  constexpr unsigned TableSize = 32;
  constexpr int PerThread = 800;
  std::vector<std::unique_ptr<Cell>> Table;
  for (unsigned I = 0; I < TableSize; ++I)
    Table.push_back(std::make_unique<Cell>());

  // Four threads, four flavors at once: declared, sampled, plain atomic,
  // and raw admit/release traffic on a disjoint class — every cross-thread
  // interaction the scheduler has.
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(900 + T);
      for (int I = 0; I < PerThread; ++I) {
        uint32_t K = static_cast<uint32_t>(Rng.nextBelow(TableSize));
        Cell *Obj = Table[K].get();
        auto Body = [&](stm::TxManager &Tx) {
          Tx.openForUpdate(Obj);
          Tx.logUndo(&Obj->Value);
          Obj->Value.store(Obj->Value.load() + 1);
        };
        switch (T) {
        case 0: {
          TxSummary S;
          S.addWrite(reinterpret_cast<uintptr_t>(Obj));
          stm::Stm::atomicScheduled(3, S, Body);
          break;
        }
        case 1:
          stm::Stm::atomicScheduled(3, Body);
          break;
        case 2:
          stm::Stm::atomic(Body);
          break;
        default: {
          TxSummary S;
          S.addWrite(Rng.nextBelow(1000));
          auto Ticket = Sched.admit(5, S);
          Sched.release(Ticket, I % 3 == 0 ? 1 : 0, 1 + T);
          break;
        }
        }
      }
      stm::TxManager::current().flushStats();
    });
  for (std::thread &Th : Threads)
    Th.join();

  int64_t Total = 0;
  for (auto &C : Table)
    Total += C->Value.load();
  EXPECT_EQ(Total, 3 * PerThread); // threads 0-2 each ran PerThread incs
  Sched.resetForTesting();
  Sched.setMode(Saved);
}

TEST(SchedulerConcurrencyTest, AdaptiveFlipsWhileAdmitting) {
  if (!AdmissionScheduler::compiledIn())
    GTEST_SKIP() << "built with OTM_SCHED=0";
  auto &Sched = AdmissionScheduler::instance();
  Sched.resetForTesting();
  SchedMode Saved = Sched.mode();
  Sched.setMode(SchedMode::Adaptive);
  Sched.setGateWindow(16);
  Sched.setGateThresholds(0.3, 0.05);

  // Gate recomputation racing admission from multiple threads: alternating
  // storm/calm feedback keeps the gates flipping while others admit.
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < 4; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(950 + T);
      for (int I = 0; I < 2000; ++I) {
        TxSummary S;
        S.addWrite(Rng.nextBelow(64));
        auto Ticket = Sched.admit(static_cast<uint32_t>(Rng.nextBelow(4)), S);
        Sched.release(Ticket, (I / 64) % 2, 1 + T);
      }
    });
  for (std::thread &Th : Threads)
    Th.join();
  auto Stats = Sched.stats();
  EXPECT_EQ(Stats.Releases, 4u * 2000u);
  Sched.resetForTesting();
  Sched.setGateThresholds(0.05, 0.01);
  Sched.setGateWindow(128);
  Sched.setMode(Saved);
}

} // namespace
