//===- tests/ContainersTreeSkipTest.cpp - RBTree & SkipList tests --------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Typed (all-policy) functional and invariant tests for the red-black
/// tree and skip list, plus concurrency stress on the thread-safe
/// policies. The trees validate full red-black invariants after every
/// operation in the randomized tests — the classic way rebalancing bugs
/// surface.
///
//===----------------------------------------------------------------------===//

#include "containers/RBTree.h"
#include "containers/SkipList.h"

#include "support/Random.h"
#include "support/ThreadBarrier.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

using namespace otm;
using namespace otm::containers;

template <typename PolicyType> class RBTreeTest : public ::testing::Test {};
template <typename PolicyType> class SkipListTest : public ::testing::Test {};

using AllPolicies =
    ::testing::Types<SeqPolicy, CoarseLockPolicy, WordStmPolicy,
                     ObjStmNaivePolicy, ObjStmOptPolicy>;
TYPED_TEST_SUITE(RBTreeTest, AllPolicies);
TYPED_TEST_SUITE(SkipListTest, AllPolicies);

TYPED_TEST(RBTreeTest, InsertLookupEraseBasics) {
  RBTree<TypeParam> Tree;
  EXPECT_TRUE(Tree.insert(10, 100));
  EXPECT_TRUE(Tree.insert(5, 50));
  EXPECT_TRUE(Tree.insert(15, 150));
  EXPECT_FALSE(Tree.insert(10, 101));
  int64_t V = 0;
  ASSERT_TRUE(Tree.lookup(10, V));
  EXPECT_EQ(V, 101);
  EXPECT_FALSE(Tree.lookup(7, V));
  EXPECT_TRUE(Tree.erase(5));
  EXPECT_FALSE(Tree.erase(5));
  EXPECT_EQ(Tree.sizeSlow(), 2u);
  EXPECT_TRUE(Tree.checkInvariantsSlow());
}

TYPED_TEST(RBTreeTest, AscendingInsertsStayBalanced) {
  RBTree<TypeParam> Tree;
  for (int64_t K = 0; K < 512; ++K) {
    EXPECT_TRUE(Tree.insert(K, K));
    ASSERT_TRUE(Tree.checkInvariantsSlow()) << "broken after insert " << K;
  }
  EXPECT_EQ(Tree.sizeSlow(), 512u);
  int64_t Expected = 511 * 512 / 2;
  EXPECT_EQ(Tree.sumValues(), Expected);
}

TYPED_TEST(RBTreeTest, RandomOpsAgainstModelWithInvariants) {
  RBTree<TypeParam> Tree;
  std::map<int64_t, int64_t> Model;
  Xoshiro256 Rng(4242);
  for (int I = 0; I < 2000; ++I) {
    int64_t Key = static_cast<int64_t>(Rng.nextBelow(300));
    if (Rng.nextPercent(55)) {
      int64_t Value = static_cast<int64_t>(Rng.next() & 0xffff);
      EXPECT_EQ(Tree.insert(Key, Value), Model.find(Key) == Model.end());
      Model[Key] = Value;
    } else {
      EXPECT_EQ(Tree.erase(Key), Model.erase(Key) == 1);
    }
    if (I % 16 == 0)
      ASSERT_TRUE(Tree.checkInvariantsSlow()) << "broken at op " << I;
  }
  ASSERT_TRUE(Tree.checkInvariantsSlow());
  EXPECT_EQ(Tree.sizeSlow(), Model.size());
  for (auto [Key, Value] : Model) {
    int64_t V = 0;
    ASSERT_TRUE(Tree.lookup(Key, V)) << "missing key " << Key;
    EXPECT_EQ(V, Value);
  }
}

TYPED_TEST(RBTreeTest, EraseEveryElement) {
  RBTree<TypeParam> Tree;
  std::vector<int64_t> Keys;
  Xoshiro256 Rng(99);
  for (int I = 0; I < 300; ++I) {
    int64_t K = static_cast<int64_t>(Rng.next() & 0xffffff);
    if (Tree.insert(K, K))
      Keys.push_back(K);
  }
  for (int64_t K : Keys) {
    EXPECT_TRUE(Tree.erase(K));
    ASSERT_TRUE(Tree.checkInvariantsSlow());
  }
  EXPECT_EQ(Tree.sizeSlow(), 0u);
}

TYPED_TEST(SkipListTest, InsertLookupEraseBasics) {
  SkipList<TypeParam> List;
  EXPECT_TRUE(List.insert(3, 30));
  EXPECT_TRUE(List.insert(1, 10));
  EXPECT_TRUE(List.insert(2, 20));
  EXPECT_FALSE(List.insert(2, 21));
  int64_t V = 0;
  ASSERT_TRUE(List.lookup(2, V));
  EXPECT_EQ(V, 21);
  EXPECT_TRUE(List.erase(1));
  EXPECT_FALSE(List.erase(1));
  EXPECT_FALSE(List.contains(1));
  EXPECT_EQ(List.sizeSlow(), 2u);
  EXPECT_TRUE(List.checkInvariantsSlow());
}

TYPED_TEST(SkipListTest, RandomOpsAgainstModel) {
  SkipList<TypeParam> List;
  std::map<int64_t, int64_t> Model;
  Xoshiro256 Rng(777);
  for (int I = 0; I < 2500; ++I) {
    int64_t Key = static_cast<int64_t>(Rng.nextBelow(400));
    switch (Rng.nextBelow(3)) {
    case 0: {
      int64_t Value = static_cast<int64_t>(Rng.next() & 0xffff);
      EXPECT_EQ(List.insert(Key, Value), Model.find(Key) == Model.end());
      Model[Key] = Value;
      break;
    }
    case 1:
      EXPECT_EQ(List.erase(Key), Model.erase(Key) == 1);
      break;
    default: {
      int64_t V = 0;
      auto It = Model.find(Key);
      EXPECT_EQ(List.lookup(Key, V), It != Model.end());
      if (It != Model.end())
        EXPECT_EQ(V, It->second);
    }
    }
    if (I % 64 == 0)
      ASSERT_TRUE(List.checkInvariantsSlow()) << "broken at op " << I;
  }
  EXPECT_EQ(List.sizeSlow(), Model.size());
}

//===----------------------------------------------------------------------===
// Concurrency stress
//===----------------------------------------------------------------------===

template <typename PolicyType>
class ConcurrentTreeTest : public ::testing::Test {};

using ThreadSafePolicies =
    ::testing::Types<CoarseLockPolicy, WordStmPolicy, ObjStmNaivePolicy,
                     ObjStmOptPolicy>;
TYPED_TEST_SUITE(ConcurrentTreeTest, ThreadSafePolicies);

TYPED_TEST(ConcurrentTreeTest, TreeParallelInsertsAllLandAndBalanced) {
  RBTree<TypeParam> Tree;
  constexpr int NumThreads = 4;
  constexpr int PerThread = 200;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (int64_t I = 0; I < PerThread; ++I)
        Tree.insert(I * NumThreads + T, T);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Tree.sizeSlow(), NumThreads * PerThread);
  EXPECT_TRUE(Tree.checkInvariantsSlow());
}

TYPED_TEST(ConcurrentTreeTest, TreeMixedOpsKeepInvariants) {
  RBTree<TypeParam> Tree;
  for (int64_t K = 0; K < 128; ++K)
    Tree.insert(K * 3, K);
  constexpr int NumThreads = 4;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Xoshiro256 Rng(555 + T);
      Barrier.arriveAndWait();
      for (int I = 0; I < 500; ++I) {
        int64_t Key = static_cast<int64_t>(Rng.nextBelow(500));
        switch (Rng.nextBelow(4)) {
        case 0:
          Tree.insert(Key, T);
          break;
        case 1:
          Tree.erase(Key);
          break;
        default:
          Tree.contains(Key);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_TRUE(Tree.checkInvariantsSlow());
}

TYPED_TEST(ConcurrentTreeTest, SkipListParallelInsertsAllLand) {
  SkipList<TypeParam> List;
  constexpr int NumThreads = 4;
  constexpr int PerThread = 300;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (int64_t I = 0; I < PerThread; ++I)
        List.insert(I * NumThreads + T, T);
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(List.sizeSlow(), NumThreads * PerThread);
  EXPECT_TRUE(List.checkInvariantsSlow());
}
