//===- tests/InterpTest.cpp - TMIR interpreter tests ---------------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end interpreter tests: sequential semantics, traps, transactional
/// execution against the real STM (single- and multi-threaded), equivalence
/// of naive vs optimized barrier placement, and the GC/log integration.
///
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "passes/Pipeline.h"
#include "stm/Stm.h"
#include "support/ThreadBarrier.h"
#include "tmir/Parser.h"
#include "tmir/Verifier.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace otm;
using namespace otm::interp;
using namespace otm::passes;
using namespace otm::tmir;

namespace {

Module parsed(const std::string &Text) {
  Module M = parseModuleOrDie(Text);
  verifyModuleOrDie(M);
  return M;
}

Interpreter::Options seqOpts() {
  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::IgnoreAtomic;
  return O;
}

} // namespace

TEST(InterpSeq, ArithmeticAndControlFlow) {
  Module M = parsed(R"(
func fib(n: i64): i64 {
  var a: i64
  var b: i64
  var i: i64
entry:
  storelocal a, 0
  storelocal b, 1
  storelocal i, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  %a = loadlocal a
  %b = loadlocal b
  %s = add %a, %b
  storelocal a, %b
  storelocal b, %s
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  %r = loadlocal a
  ret %r
}
)");
  Interpreter I(M, seqOpts());
  EXPECT_EQ(I.run("fib", {0}).Value, 0);
  EXPECT_EQ(I.run("fib", {1}).Value, 1);
  EXPECT_EQ(I.run("fib", {10}).Value, 55);
  EXPECT_EQ(I.run("fib", {20}).Value, 6765);
}

TEST(InterpSeq, RecursionAndCalls) {
  Module M = parsed(R"(
func fact(n: i64): i64 {
entry:
  %n = loadlocal n
  %z = cmple %n, 1
  condbr %z, base, step
base:
  ret 1
step:
  %m = sub %n, 1
  %r = call fact(%m)
  %p = mul %n, %r
  ret %p
}
)");
  Interpreter I(M, seqOpts());
  EXPECT_EQ(I.run("fact", {5}).Value, 120);
  EXPECT_EQ(I.run("fact", {10}).Value, 3628800);
}

TEST(InterpSeq, ObjectsAndArrays) {
  Module M = parsed(R"(
class Pair { a: i64, b: i64 }
func go(): i64 {
entry:
  %p = newobj Pair
  setfield %p, Pair.a, 7
  setfield %p, Pair.b, 8
  %arr = newarr 4
  %x = getfield %p, Pair.a
  arrset %arr, 0, %x
  %y = getfield %p, Pair.b
  arrset %arr, 1, %y
  %v0 = arrget %arr, 0
  %v1 = arrget %arr, 1
  %l = arrlen %arr
  %s = add %v0, %v1
  %s2 = add %s, %l
  ret %s2
}
)");
  Interpreter I(M, seqOpts());
  EXPECT_EQ(I.run("go", {}).Value, 19);
}

TEST(InterpSeq, PrintCaptures) {
  Module M = parsed(R"(
func go() {
entry:
  print 42
  print 43
  ret
}
)");
  Interpreter I(M, seqOpts());
  ASSERT_FALSE(I.run("go", {}).Trapped);
  ASSERT_EQ(I.printedValues().size(), 2u);
  EXPECT_EQ(I.printedValues()[0], 42);
  EXPECT_EQ(I.printedValues()[1], 43);
}

TEST(InterpSeq, TrapsAreReported) {
  Module M = parsed(R"(
class P { x: i64 }
func nullDeref(): i64 {
  var p: P
entry:
  %o = loadlocal p
  %v = getfield %o, P.x
  ret %v
}
func divZero(): i64 {
entry:
  %v = div 1, 0
  ret %v
}
func oob(): i64 {
entry:
  %a = newarr 2
  %v = arrget %a, 5
  ret %v
}
func infinite(): i64 {
entry:
  %r = call infinite()
  ret %r
}
)");
  Interpreter I(M, seqOpts());
  Interpreter::RunResult R = I.run("nullDeref", {});
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.Error.find("null reference"), std::string::npos);
  EXPECT_TRUE(I.run("divZero", {}).Trapped);
  EXPECT_TRUE(I.run("oob", {}).Trapped);
  R = I.run("infinite", {});
  EXPECT_TRUE(R.Trapped);
  EXPECT_NE(R.Error.find("depth"), std::string::npos);
}

namespace {

/// Shared counter-increment program used by the transactional tests. The
/// incr function runs `reps` atomic increments on the object's field.
const char *CounterProgram = R"(
class Counter { value: i64 }
func incr(c: Counter, reps: i64): i64 {
  var i: i64
entry:
  storelocal i, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal reps
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  atomic_begin
  %o = loadlocal c
  %v = getfield %o, Counter.value
  %v2 = add %v, 1
  setfield %o, Counter.value, %v2
  atomic_end
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  %o2 = loadlocal c
  %r = getfield %o2, Counter.value
  ret %r
}
)";

} // namespace

TEST(InterpTx, SingleThreadCommitCounts) {
  Module M = parsed(CounterProgram);
  lowerAndOptimize(M, OptConfig::all());
  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::ObjStm;
  Interpreter I(M, O);
  HeapObject *C = I.makeObject("Counter");
  Interpreter::RunResult R =
      I.run("incr", {HeapObject::toBits(C), 100});
  ASSERT_FALSE(R.Trapped) << R.Error;
  EXPECT_EQ(R.Value, 100);
  EXPECT_EQ(C->Slots[0].load(), 100);
  EXPECT_EQ(I.counts().TxCommitted.load(), 100u);
  EXPECT_EQ(I.counts().TxRetried.load(), 0u);
}

class InterpTxModes
    : public ::testing::TestWithParam<Interpreter::TxMode> {};

INSTANTIATE_TEST_SUITE_P(AllModes, InterpTxModes,
                         ::testing::Values(Interpreter::TxMode::GlobalLock,
                                           Interpreter::TxMode::ObjStm));

TEST_P(InterpTxModes, ConcurrentIncrementsAreExact) {
  Module M = parsed(CounterProgram);
  lowerAndOptimize(M, OptConfig::all());
  Interpreter::Options O;
  O.Mode = GetParam();
  Interpreter I(M, O);
  HeapObject *C = I.makeObject("Counter");

  constexpr int NumThreads = 4;
  constexpr int Reps = 300;
  ThreadBarrier Barrier(NumThreads);
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      Barrier.arriveAndWait();
      Interpreter::RunResult R =
          I.run("incr", {HeapObject::toBits(C), Reps});
      EXPECT_FALSE(R.Trapped) << R.Error;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C->Slots[0].load(), NumThreads * Reps);
}

TEST(InterpTx, NaiveAndOptimizedAgreeButCountsDiffer) {
  Module Naive = parsed(CounterProgram);
  lowerAndOptimize(Naive, OptConfig::none());
  Module Opt = parsed(CounterProgram);
  lowerAndOptimize(Opt, OptConfig::all());

  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::ObjStm;
  Interpreter NaiveInterp(Naive, O);
  Interpreter OptInterp(Opt, O);
  HeapObject *C1 = NaiveInterp.makeObject("Counter");
  HeapObject *C2 = OptInterp.makeObject("Counter");

  EXPECT_EQ(NaiveInterp.run("incr", {HeapObject::toBits(C1), 50}).Value, 50);
  EXPECT_EQ(OptInterp.run("incr", {HeapObject::toBits(C2), 50}).Value, 50);

  uint64_t NaiveOpens = NaiveInterp.counts().OpenRead.load() +
                        NaiveInterp.counts().OpenUpdate.load();
  uint64_t OptOpens = OptInterp.counts().OpenRead.load() +
                      OptInterp.counts().OpenUpdate.load();
  EXPECT_LT(OptOpens, NaiveOpens)
      << "optimized code must execute fewer dynamic opens";
}

TEST(InterpTx, AbortedWritesRollBack) {
  // Two threads write conflicting values in long transactions; whatever
  // interleaving happens, the final state must be one thread's complete
  // transaction (both fields), never a mix.
  Module M = parsed(R"(
class Pair { a: i64, b: i64 }
func setBoth(p: Pair, v: i64, spin: i64): i64 {
  var i: i64
entry:
  atomic_begin
  %o = loadlocal p
  %v = loadlocal v
  setfield %o, Pair.a, %v
  storelocal i, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal spin
  %done = cmpge %i, %n
  condbr %done, fin, body
body:
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
fin:
  setfield %o, Pair.b, %v
  atomic_end
  ret 0
}
)");
  lowerAndOptimize(M, OptConfig::all());
  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::ObjStm;
  Interpreter I(M, O);
  HeapObject *P = I.makeObject("Pair");

  ThreadBarrier Barrier(2);
  std::vector<std::thread> Threads;
  for (int T = 0; T < 2; ++T)
    Threads.emplace_back([&, T] {
      Barrier.arriveAndWait();
      for (int K = 0; K < 50; ++K)
        I.run("setBoth", {HeapObject::toBits(P), T + 1, 200});
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(P->Slots[0].load(), P->Slots[1].load())
      << "torn transaction visible after completion";
}

TEST(InterpGc, CollectsGarbageAllocations) {
  Module M = parsed(R"(
class Node { next: Node }
func churn(n: i64): i64 {
  var i: i64
  var keep: Node
entry:
  storelocal i, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  %fresh = newobj Node
  storelocal keep, %fresh
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  %r = loadlocal i
  ret %r
}
)");
  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::IgnoreAtomic;
  O.GcEveryNAllocs = 64;
  Interpreter I(M, O);
  Interpreter::RunResult R = I.run("churn", {10000});
  ASSERT_FALSE(R.Trapped) << R.Error;
  EXPECT_EQ(R.Value, 10000);
  EXPECT_GE(I.heap().stats().Collections, 10u);
  EXPECT_GT(I.heap().stats().ObjectsFreed, 9000u);
  EXPECT_LT(I.heap().liveCount(), 200u);
}

TEST(InterpGc, LiveObjectsSurviveThroughLocals) {
  Module M = parsed(R"(
class Node { val: i64, next: Node }
func buildList(n: i64): i64 {
  var i: i64
  var head: Node
entry:
  storelocal i, 0
  storelocal head, null
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, count, body
body:
  %fresh = newobj Node
  setfield %fresh, Node.val, %i
  %h = loadlocal head
  setfield %fresh, Node.next, %h
  storelocal head, %fresh
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
count:
  %c = loadlocal head
  storelocal i, 0
  br countloop
countloop:
  %cc = loadlocal i
  %cur = loadlocal head
  %z = cmpeq %cur, null
  condbr %z, exit, step
step:
  %nx = getfield %cur, Node.next
  storelocal head, %nx
  %c2 = add %cc, 1
  storelocal i, %c2
  br countloop
exit:
  %r = loadlocal i
  ret %r
}
)");
  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::IgnoreAtomic;
  O.GcEveryNAllocs = 128; // collections happen while the list is live
  Interpreter I(M, O);
  Interpreter::RunResult R = I.run("buildList", {5000});
  ASSERT_FALSE(R.Trapped) << R.Error;
  EXPECT_EQ(R.Value, 5000) << "GC freed reachable nodes";
}

TEST(InterpGc, CompactsTransactionLogsDuringCollection) {
  // Force duplicate read enlistments by disabling runtime filtering, then
  // let the GC run mid-transaction: it must dedupe the logs.
  Module M = parsed(R"(
class P { x: i64 }
func hammer(p: P, n: i64): i64 {
  var i: i64
  var acc: i64
entry:
  atomic_begin
  storelocal i, 0
  storelocal acc, 0
  br loop
loop:
  %i = loadlocal i
  %n = loadlocal n
  %done = cmpge %i, %n
  condbr %done, exit, body
body:
  %o = loadlocal p
  open_read %o
  %junk = newobj P
  %v = getfield %o, P.x
  %a = loadlocal acc
  %a2 = add %a, %v
  storelocal acc, %a2
  %i2 = add %i, 1
  storelocal i, %i2
  br loop
exit:
  atomic_end
  %r = loadlocal acc
  ret %r
}
)");
  stm::TxConfig Saved = stm::Stm::config();
  stm::Stm::config().FilterReads = false;
  Interpreter::Options O;
  O.Mode = Interpreter::TxMode::ObjStm;
  O.GcEveryNAllocs = 32;
  Interpreter I(M, O);
  HeapObject *P = I.makeObject("P");
  P->Slots[0].store(2);
  Interpreter::RunResult R = I.run("hammer", {HeapObject::toBits(P), 500});
  stm::Stm::config() = Saved;
  ASSERT_FALSE(R.Trapped) << R.Error;
  EXPECT_EQ(R.Value, 1000);
  EXPECT_GT(I.heap().stats().ReadEntriesDropped, 100u)
      << "GC should have deduplicated unfiltered read enlistments";
  EXPECT_GT(I.heap().stats().ObjectsFreed, 0u)
      << "garbage allocated inside the transaction should be collected";
}
