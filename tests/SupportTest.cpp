//===- tests/SupportTest.cpp - Support library unit tests ----------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Backoff.h"
#include "support/ChunkedVector.h"
#include "support/Random.h"
#include "support/ThreadBarrier.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

using namespace otm;

TEST(Random, DeterministicForSameSeed) {
  Xoshiro256 A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, DifferentSeedsDiffer) {
  Xoshiro256 A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += (A.next() == B.next());
  EXPECT_LT(Same, 3);
}

TEST(Random, NextBelowStaysInRange) {
  Xoshiro256 Rng(7);
  for (uint64_t Bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(Rng.nextBelow(Bound), Bound);
  }
}

TEST(Random, NextBelowCoversSmallRange) {
  Xoshiro256 Rng(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(Rng.nextBelow(4));
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(Random, NextDoubleInUnitInterval) {
  Xoshiro256 Rng(11);
  for (int I = 0; I < 1000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, PercentExtremes) {
  Xoshiro256 Rng(13);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rng.nextPercent(0));
    EXPECT_TRUE(Rng.nextPercent(100));
  }
}

TEST(ChunkedVector, AppendAndIndex) {
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 100; ++I)
    V.emplaceBack(I);
  ASSERT_EQ(V.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(ChunkedVector, AddressesStableAcrossGrowth) {
  ChunkedVector<int, 4> V;
  std::vector<int *> Ptrs;
  for (int I = 0; I < 64; ++I)
    Ptrs.push_back(V.emplaceBack(I));
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(*Ptrs[I], I) << "entry moved after later appends";
}

TEST(ChunkedVector, ClearRetainsCapacityAndReuses) {
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 10; ++I)
    V.emplaceBack(I);
  V.clear();
  EXPECT_EQ(V.size(), 0u);
  EXPECT_TRUE(V.empty());
  V.emplaceBack(99);
  EXPECT_EQ(V[0], 99);
}

TEST(ChunkedVector, PopBackRemovesLast) {
  ChunkedVector<int, 4> V;
  V.emplaceBack(1);
  V.emplaceBack(2);
  V.popBack();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V.back(), 1);
}

TEST(ChunkedVector, ForEachReverseVisitsInReverse) {
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 9; ++I)
    V.emplaceBack(I);
  std::vector<int> Seen;
  V.forEachReverse([&](int X) { Seen.push_back(X); });
  ASSERT_EQ(Seen.size(), 9u);
  for (int I = 0; I < 9; ++I)
    EXPECT_EQ(Seen[I], 8 - I);
}

TEST(ChunkedVector, RemoveIfKeepsOrderAndCounts) {
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 20; ++I)
    V.emplaceBack(I);
  std::size_t Removed = V.removeIf([](int X) { return X % 2 == 0; });
  EXPECT_EQ(Removed, 10u);
  ASSERT_EQ(V.size(), 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(V[I], 2 * I + 1);
}

TEST(ChunkedVector, RemoveIfNothingMatches) {
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 5; ++I)
    V.emplaceBack(I);
  EXPECT_EQ(V.removeIf([](int) { return false; }), 0u);
  EXPECT_EQ(V.size(), 5u);
}

TEST(Backoff, RoundsEscalate) {
  Backoff B(1);
  for (int I = 0; I < 3; ++I)
    B.pause();
  EXPECT_EQ(B.rounds(), 3u);
  B.reset();
  EXPECT_EQ(B.rounds(), 0u);
}

TEST(ThreadBarrier, ReleasesAllThreads) {
  constexpr int NumThreads = 4;
  ThreadBarrier Barrier(NumThreads);
  std::atomic<int> Before{0}, After{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&] {
      ++Before;
      Barrier.arriveAndWait();
      // Every thread must have arrived before any proceeds.
      EXPECT_EQ(Before.load(), NumThreads);
      ++After;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(After.load(), NumThreads);
}

TEST(ThreadBarrier, Reusable) {
  constexpr int NumThreads = 3;
  ThreadBarrier Barrier(NumThreads);
  std::atomic<int> Counter{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&] {
      for (int Round = 0; Round < 5; ++Round) {
        Barrier.arriveAndWait();
        ++Counter;
        Barrier.arriveAndWait();
        EXPECT_EQ(Counter.load() % NumThreads, 0);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Counter.load(), NumThreads * 5);
}
