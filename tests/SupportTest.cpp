//===- tests/SupportTest.cpp - Support library unit tests ----------------===//
//
// Part of the otm project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Backoff.h"
#include "support/ChunkedVector.h"
#include "support/Random.h"
#include "support/ThreadBarrier.h"
#include "support/TxPool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <set>
#include <thread>
#include <vector>

using namespace otm;

TEST(Random, DeterministicForSameSeed) {
  Xoshiro256 A(42), B(42);
  for (int I = 0; I < 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Random, DifferentSeedsDiffer) {
  Xoshiro256 A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += (A.next() == B.next());
  EXPECT_LT(Same, 3);
}

TEST(Random, NextBelowStaysInRange) {
  Xoshiro256 Rng(7);
  for (uint64_t Bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(Rng.nextBelow(Bound), Bound);
  }
}

TEST(Random, NextBelowCoversSmallRange) {
  Xoshiro256 Rng(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 200; ++I)
    Seen.insert(Rng.nextBelow(4));
  EXPECT_EQ(Seen.size(), 4u);
}

TEST(Random, NextDoubleInUnitInterval) {
  Xoshiro256 Rng(11);
  for (int I = 0; I < 1000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Random, PercentExtremes) {
  Xoshiro256 Rng(13);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(Rng.nextPercent(0));
    EXPECT_TRUE(Rng.nextPercent(100));
  }
}

TEST(ChunkedVector, AppendAndIndex) {
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 100; ++I)
    V.emplaceBack(I);
  ASSERT_EQ(V.size(), 100u);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(V[I], I);
}

TEST(ChunkedVector, AddressesStableAcrossGrowth) {
  ChunkedVector<int, 4> V;
  std::vector<int *> Ptrs;
  for (int I = 0; I < 64; ++I)
    Ptrs.push_back(V.emplaceBack(I));
  for (int I = 0; I < 64; ++I)
    EXPECT_EQ(*Ptrs[I], I) << "entry moved after later appends";
}

TEST(ChunkedVector, ClearRetainsCapacityAndReuses) {
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 10; ++I)
    V.emplaceBack(I);
  V.clear();
  EXPECT_EQ(V.size(), 0u);
  EXPECT_TRUE(V.empty());
  V.emplaceBack(99);
  EXPECT_EQ(V[0], 99);
}

TEST(ChunkedVector, PopBackRemovesLast) {
  ChunkedVector<int, 4> V;
  V.emplaceBack(1);
  V.emplaceBack(2);
  V.popBack();
  ASSERT_EQ(V.size(), 1u);
  EXPECT_EQ(V.back(), 1);
}

TEST(ChunkedVector, ForEachReverseVisitsInReverse) {
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 9; ++I)
    V.emplaceBack(I);
  std::vector<int> Seen;
  V.forEachReverse([&](int X) { Seen.push_back(X); });
  ASSERT_EQ(Seen.size(), 9u);
  for (int I = 0; I < 9; ++I)
    EXPECT_EQ(Seen[I], 8 - I);
}

TEST(ChunkedVector, RemoveIfKeepsOrderAndCounts) {
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 20; ++I)
    V.emplaceBack(I);
  std::size_t Removed = V.removeIf([](int X) { return X % 2 == 0; });
  EXPECT_EQ(Removed, 10u);
  ASSERT_EQ(V.size(), 10u);
  for (int I = 0; I < 10; ++I)
    EXPECT_EQ(V[I], 2 * I + 1);
}

TEST(ChunkedVector, RemoveIfNothingMatches) {
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 5; ++I)
    V.emplaceBack(I);
  EXPECT_EQ(V.removeIf([](int) { return false; }), 0u);
  EXPECT_EQ(V.size(), 5u);
}

TEST(ChunkedVector, MoveOnlyElements) {
  // Storage is raw memory: move-only types need only a matching
  // emplaceBack constructor (this type takes the destructor path, not
  // reuse-by-assignment).
  ChunkedVector<std::unique_ptr<int>, 4> V;
  for (int I = 0; I < 10; ++I)
    V.emplaceBack(std::make_unique<int>(I));
  int Sum = 0;
  V.forEach([&](std::unique_ptr<int> &P) { Sum += *P; });
  EXPECT_EQ(Sum, 45);
  V.popBack();
  EXPECT_EQ(V.size(), 9u);
  V.clear();
  EXPECT_TRUE(V.empty());
  V.emplaceBack(std::make_unique<int>(7));
  EXPECT_EQ(*V[0], 7);
}

namespace {
struct NoDefault {
  explicit NoDefault(int X) : X(X) {}
  int X;
};
} // namespace

TEST(ChunkedVector, NonDefaultConstructibleElements) {
  // NoDefault is trivially destructible + move-assignable, so clear() keeps
  // slots constructed and the second fill takes the reuse-by-assignment
  // path over them.
  ChunkedVector<NoDefault, 4> V;
  for (int I = 0; I < 9; ++I)
    V.emplaceBack(I);
  V.clear();
  for (int I = 0; I < 6; ++I)
    V.emplaceBack(10 + I);
  ASSERT_EQ(V.size(), 6u);
  for (int I = 0; I < 6; ++I)
    EXPECT_EQ(V[I].X, 10 + I);
}

TEST(ChunkedVector, AddressesStableAcrossTailGrowth) {
  // Every returned slot pointer must survive later appends (the STM word
  // points straight at update-log entries), including across the chunk
  // boundaries where the tail pointers are re-seated.
  ChunkedVector<int, 4> V;
  std::vector<int *> Slots;
  for (int I = 0; I < 29; ++I)
    Slots.push_back(V.emplaceBack(I));
  for (int I = 0; I < 29; ++I) {
    EXPECT_EQ(Slots[I], &V[I]);
    EXPECT_EQ(*Slots[I], I);
  }
}

TEST(ChunkedVector, ForEachExactCountAfterClearAndReuse) {
  // After clear()+reuse the chunk-wise walks must visit exactly size()
  // entries: stale constructed slots past the logical tail stay invisible.
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 11; ++I) // 2.75 chunks
    V.emplaceBack(I);
  V.clear();
  for (int I = 0; I < 5; ++I)
    V.emplaceBack(100 + I);
  std::size_t Visited = 0;
  V.forEach([&](int X) {
    EXPECT_EQ(X, 100 + static_cast<int>(Visited));
    ++Visited;
  });
  EXPECT_EQ(Visited, 5u);
  std::size_t ChunkTotal = 0;
  V.forEachChunkArray([&](int *, std::size_t N) { ChunkTotal += N; });
  EXPECT_EQ(ChunkTotal, 5u);
  std::size_t Reversed = 0;
  V.forEachReverse([&](int X) {
    ++Reversed;
    EXPECT_EQ(X, 105 - static_cast<int>(Reversed));
  });
  EXPECT_EQ(Reversed, 5u);
}

TEST(ChunkedVector, PopBackAcrossChunkBoundary) {
  ChunkedVector<int, 4> V;
  for (int I = 0; I < 5; ++I) // one full chunk + one entry
    V.emplaceBack(I);
  V.popBack();
  EXPECT_EQ(V.size(), 4u);
  EXPECT_EQ(V.back(), 3);
  V.popBack(); // back into the first chunk
  EXPECT_EQ(V.back(), 2);
  int *Slot = V.emplaceBack(42); // refill the vacated slot
  EXPECT_EQ(*Slot, 42);
  EXPECT_EQ(V.size(), 4u);
}

TEST(TxPool, RecyclesSameThreadFrees) {
  auto &Pool = support::TxPool::threadPool();
  uint64_t HitsBefore = Pool.statsForTesting().FreeListHits;
  void *A = support::TxPool::allocate(48);
  support::TxPool::deallocate(A);
  void *B = support::TxPool::allocate(48);
  EXPECT_EQ(A, B); // LIFO free list returns the block just freed
  EXPECT_GT(Pool.statsForTesting().FreeListHits, HitsBefore);
  support::TxPool::deallocate(B);
}

TEST(TxPool, CrossThreadFreeDrainsBackToOwner) {
  auto &Pool = support::TxPool::threadPool();
  void *P = support::TxPool::allocate(64);
  uint64_t RemoteBefore = Pool.remoteFreesForTesting();
  std::thread([P] { support::TxPool::deallocate(P); }).join();
  EXPECT_EQ(Pool.remoteFreesForTesting(), RemoteBefore + 1);
  // Exhaust the local free list; the drain must eventually hand the
  // remotely freed block back to this thread.
  std::vector<void *> Held;
  bool Recycled = false;
  for (int I = 0; I < 1000 && !Recycled; ++I) {
    void *Q = support::TxPool::allocate(64);
    Recycled = (Q == P);
    Held.push_back(Q);
  }
  EXPECT_TRUE(Recycled);
  for (void *Q : Held)
    support::TxPool::deallocate(Q);
}

TEST(TxPool, OversizeFallsThroughToOperatorNew) {
  // Requests beyond the largest size class take the null-owner header path
  // (the same path OTM_POOL=0 routes everything through).
  EXPECT_GE(support::TxPool::classFor(4096), support::TxPool::numClasses());
  void *P = support::TxPool::allocate(4096);
  ASSERT_NE(P, nullptr);
  std::memset(P, 0xab, 4096); // must really own the bytes
  support::TxPool::deallocate(P);
}

TEST(TxPool, ClassForMatchesClassSize) {
  for (unsigned C = 0; C < support::TxPool::numClasses(); ++C) {
    std::size_t Size = support::TxPool::classSize(C);
    EXPECT_EQ(support::TxPool::classFor(Size), C);
    if (Size > 1)
      EXPECT_LE(support::TxPool::classFor(Size - 1), C);
    EXPECT_EQ(support::TxPool::classFor(Size + 1), C + 1);
  }
}

TEST(Backoff, RoundsEscalate) {
  Backoff B(1);
  for (int I = 0; I < 3; ++I)
    B.pause();
  EXPECT_EQ(B.rounds(), 3u);
  B.reset();
  EXPECT_EQ(B.rounds(), 0u);
}

TEST(ThreadBarrier, ReleasesAllThreads) {
  constexpr int NumThreads = 4;
  ThreadBarrier Barrier(NumThreads);
  std::atomic<int> Before{0}, After{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&] {
      ++Before;
      Barrier.arriveAndWait();
      // Every thread must have arrived before any proceeds.
      EXPECT_EQ(Before.load(), NumThreads);
      ++After;
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(After.load(), NumThreads);
}

TEST(ThreadBarrier, Reusable) {
  constexpr int NumThreads = 3;
  ThreadBarrier Barrier(NumThreads);
  std::atomic<int> Counter{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < NumThreads; ++I)
    Threads.emplace_back([&] {
      for (int Round = 0; Round < 5; ++Round) {
        Barrier.arriveAndWait();
        ++Counter;
        Barrier.arriveAndWait();
        EXPECT_EQ(Counter.load() % NumThreads, 0);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Counter.load(), NumThreads * 5);
}
