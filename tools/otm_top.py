#!/usr/bin/env python3
"""Live terminal viewer for an otm-telemetry-v1 JSONL stream.

Run a workload with the sampler on, then point this at the stream:

  OTM_TELEMETRY=250 OTM_TELEMETRY_OUT=/tmp/otm.jsonl ./e7_contention &
  tools/otm_top.py /tmp/otm.jsonl

The viewer tails the file (like `tail -f`), and on every record repaints a
one-screen summary: commit/abort rates from the deltas, the commit-latency
quantiles from the totals, and where transaction time went per phase. With
--once it renders the last complete record and exits (useful on a finished
file). Only the Python standard library is used.
"""

import argparse
import json
import os
import sys
import time

SCHEMA = "otm-telemetry-v1"

PHASES = ("open", "validate", "commit_lock", "write_back", "cm_wait",
          "backoff")


def fmt_count(n):
    for unit, div in (("G", 1e9), ("M", 1e6), ("k", 1e3)):
        if n >= div:
            return f"{n / div:6.1f}{unit}"
    return f"{n:6.0f} "


def render(rec, out):
    totals = rec.get("totals", {})
    deltas = rec.get("deltas", {})
    interval_s = rec.get("interval_ms", 0) / 1000.0 or 1.0
    stm_t = totals.get("stm", {})
    stm_d = deltas.get("stm", {})

    lines = []
    lines.append(f"otm_top  seq={rec.get('seq')}  "
                 f"t={rec.get('t_us', 0) / 1e6:.1f}s  "
                 f"interval={rec.get('interval_ms')}ms")
    lines.append("-" * 64)

    def rate(name):
        return stm_d.get(name, 0) / interval_s

    lines.append(f"tx/s     commit {fmt_count(rate('Commits'))}   "
                 f"abort {fmt_count(rate('Aborts'))}   "
                 f"start {fmt_count(rate('Starts'))}")
    lines.append(f"aborts   conflict {fmt_count(rate('AbortsOnConflict'))}  "
                 f"validation {fmt_count(rate('AbortsOnValidation'))}  "
                 f"user {fmt_count(rate('AbortsByUser'))}")

    mv_t = totals.get("mvcc", {})
    mv_d = deltas.get("mvcc", {})
    if mv_t.get("enabled"):
        lines.append(f"mvcc     snap commit/s "
                     f"{fmt_count(mv_d.get('snapshot_commits', 0) / interval_s)}"
                     f"   live versions {fmt_count(mv_t.get('versions_live', 0))}"
                     f"   retired {fmt_count(mv_t.get('versions_retired', 0))}")

    bo_t = totals.get("boost", {})
    bo_d = deltas.get("boost", {})
    if bo_t.get("enabled"):
        lines.append(f"boost    acquire/s "
                     f"{fmt_count(bo_d.get('lock_acquires', 0) / interval_s)}"
                     f"   waits {fmt_count(bo_t.get('lock_waits', 0))}"
                     f"   undos {fmt_count(bo_t.get('undo_ops', 0))}"
                     f"   held {fmt_count(bo_t.get('lock_table_held', 0))}")

    sc_t = totals.get("sched", {})
    sc_d = deltas.get("sched", {})
    if sc_t.get("enabled"):
        lines.append(f"sched    admit/s "
                     f"{fmt_count(sc_d.get('admitted_immediate', 0) / interval_s)}"
                     f"   queued {fmt_count(sc_t.get('queued', 0))}"
                     f"   gates on {fmt_count(sc_t.get('gates_on', 0))}"
                     f"   max depth {fmt_count(sc_t.get('max_queue_depth', 0))}")

    ht_t = totals.get("htm", {})
    ht_d = deltas.get("htm", {})
    if ht_t.get("enabled"):
        avail = "yes" if ht_t.get("available") else "no"
        aborts = sum(ht_d.get(k, 0) for k in
                     ("aborts_conflict", "aborts_capacity", "aborts_explicit",
                      "aborts_other"))
        lines.append(f"htm      rtm={avail}  commit/s "
                     f"{fmt_count(ht_d.get('commits', 0) / interval_s)}"
                     f"   abort/s {fmt_count(aborts / interval_s)}"
                     f"   fallback/s "
                     f"{fmt_count(ht_d.get('fallbacks', 0) / interval_s)}")

    lat = stm_t.get("commit_latency", {})
    if lat.get("count"):
        lines.append(f"commit latency (cycles)   "
                     f"p50 {lat.get('p50_cycles', 0):>12.0f}   "
                     f"p99 {lat.get('p99_cycles', 0):>12.0f}   "
                     f"p999 {lat.get('p999_cycles', 0):>12.0f}")

    phases = totals.get("phases", {})
    total_cycles = sum(phases.get(p, {}).get("cycles", 0) for p in PHASES)
    if total_cycles:
        lines.append("phase breakdown (cumulative cycles)")
        for p in PHASES:
            cyc = phases.get(p, {}).get("cycles", 0)
            pct = 100.0 * cyc / total_cycles
            bar = "#" * int(pct / 2.5)
            lines.append(f"  {p:<12} {fmt_count(cyc)}  {pct:5.1f}% {bar}")

    sites = totals.get("abort_sites", {})
    if sites:
        lines.append(f"abort sites  used {sites.get('sites_used', 0)}  "
                     f"edges {sites.get('edges_used', 0)}  "
                     f"dropped {sites.get('dropped', 0)}"
                     f"+{sites.get('edges_dropped', 0)}")

    out.write("\x1b[2J\x1b[H" if out.isatty() else "")
    out.write("\n".join(lines) + "\n")
    if not out.isatty():
        out.write("\n")
    out.flush()


def tail_records(path, follow):
    """Yields parsed records; with follow=True keeps polling for appends."""
    with open(path) as f:
        while True:
            line = f.readline()
            if not line:
                if not follow:
                    return
                time.sleep(0.2)
                continue
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # partial line while the writer flushes
            if rec.get("schema") == SCHEMA:
                yield rec


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Tail an otm-telemetry-v1 JSONL file as a live view.")
    ap.add_argument("file", help="telemetry JSONL path")
    ap.add_argument("--once", action="store_true",
                    help="render the last record already in the file, exit")
    args = ap.parse_args(argv)

    if not os.path.exists(args.file):
        sys.exit(f"otm_top: no such file: {args.file}")

    if args.once:
        last = None
        for rec in tail_records(args.file, follow=False):
            last = rec
        if last is None:
            sys.exit("otm_top: no records")
        render(last, sys.stdout)
        return 0

    try:
        for rec in tail_records(args.file, follow=True):
            render(rec, sys.stdout)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
