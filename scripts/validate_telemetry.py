#!/usr/bin/env python3
"""Validate an otm-telemetry-v1 JSONL stream.

The telemetry sampler (OTM_TELEMETRY=<ms>, see src/obs/Telemetry.h) emits
one JSON object per line. CI runs the bench smoke suite with the sampler on
and feeds the resulting files through this script, which enforces the
schema contract a downstream consumer (otm_top.py, a metrics shipper)
relies on:

  - every line parses as a JSON object with schema == "otm-telemetry-v1"
  - the required keys are present: seq, t_us, interval_ms, totals, deltas
  - seq is monotonically increasing from 0 (no dropped or duplicated
    records within one file)
  - t_us is non-decreasing
  - every numeric leaf under deltas is >= 0 (the clamped-delta guarantee:
    a concurrent stats reset must never produce a negative rate)
  - the file holds at least one record (flush-on-exit guarantee)

Usage:
  validate_telemetry.py FILE.jsonl [FILE.jsonl ...]

Exit status: 0 when every file validates, 1 otherwise.
"""

import json
import sys

SCHEMA = "otm-telemetry-v1"
REQUIRED_KEYS = ("schema", "seq", "t_us", "interval_ms", "totals", "deltas")

# When a record carries the "mvcc" source (registered by the object STM when
# the tier is compiled in), these keys must be present so consumers can rely
# on them without per-key existence checks. The keys exist with value 0 in
# OTM_MVCC=0 builds too — the schema must not fork on the compile switch.
MVCC_KEYS = ("enabled", "snapshot_commits", "snapshot_upgrades",
             "snapshot_refreshes", "snapshot_reads",
             "snapshot_reads_from_chain", "snapshot_waits",
             "versions_installed", "versions_retired", "versions_live",
             "chain_depth")

# Same contract for the "boost" source (transactional boosting, DESIGN.md
# section 3.10): keys exist with value 0 in OTM_BOOST=0 builds.
BOOST_KEYS = ("enabled", "lock_acquires", "lock_waits", "commit_ops",
              "undo_ops", "structural_fallbacks", "lock_table_held",
              "lock_table_capacity")

# Same contract for the "sched" source (admission/batching scheduler,
# DESIGN.md section 3.11): keys exist with value 0 (enabled=false) in
# OTM_SCHED=0 builds.
SCHED_KEYS = ("enabled", "mode", "admitted_immediate", "queued",
              "queue_overflows", "timeout_bypasses", "bypassed", "releases",
              "aborts_reported", "gate_flips_on", "gate_flips_off",
              "gates_on", "max_queue_depth", "queue_wait_us")

# Same contract for the "htm" source (hybrid HTM/STM tier, DESIGN.md
# section 3.12): keys exist with value 0 (enabled=false) in -DOTM_HTM=0
# builds and on machines whose runtime probe found no working RTM.
HTM_KEYS = ("enabled", "available", "attempts", "commits", "aborts_conflict",
            "aborts_capacity", "aborts_explicit", "aborts_serial",
            "aborts_locked", "aborts_unsupported", "aborts_user",
            "aborts_exception", "aborts_other", "fallbacks")


def check_deltas_nonnegative(node, path, errors):
    if isinstance(node, dict):
        for key, value in node.items():
            check_deltas_nonnegative(value, f"{path}.{key}", errors)
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        if node < 0:
            errors.append(f"negative delta {path} = {node}")


def validate_file(path):
    errors = []
    records = 0
    prev_seq = None
    prev_t = None
    try:
        with open(path) as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as err:
                    errors.append(f"line {lineno}: not JSON: {err}")
                    continue
                if not isinstance(rec, dict):
                    errors.append(f"line {lineno}: not an object")
                    continue
                for key in REQUIRED_KEYS:
                    if key not in rec:
                        errors.append(f"line {lineno}: missing key {key!r}")
                if rec.get("schema") != SCHEMA:
                    errors.append(f"line {lineno}: schema "
                                  f"{rec.get('schema')!r} != {SCHEMA!r}")
                seq = rec.get("seq")
                if isinstance(seq, int):
                    if prev_seq is None:
                        if seq != 0:
                            errors.append(f"line {lineno}: first seq is "
                                          f"{seq}, expected 0")
                    elif seq != prev_seq + 1:
                        errors.append(f"line {lineno}: seq {seq} after "
                                      f"{prev_seq} (not contiguous)")
                    prev_seq = seq
                t_us = rec.get("t_us")
                if isinstance(t_us, (int, float)):
                    if prev_t is not None and t_us < prev_t:
                        errors.append(f"line {lineno}: t_us went backwards "
                                      f"({prev_t} -> {t_us})")
                    prev_t = t_us
                check_deltas_nonnegative(rec.get("deltas", {}),
                                         f"line {lineno}: deltas", errors)
                totals = rec.get("totals")
                if isinstance(totals, dict) and "mvcc" in totals:
                    mvcc = totals["mvcc"]
                    if not isinstance(mvcc, dict):
                        errors.append(f"line {lineno}: totals.mvcc is not "
                                      f"an object")
                    else:
                        for key in MVCC_KEYS:
                            if key not in mvcc:
                                errors.append(f"line {lineno}: totals.mvcc "
                                              f"missing key {key!r}")
                if isinstance(totals, dict) and "boost" in totals:
                    boost = totals["boost"]
                    if not isinstance(boost, dict):
                        errors.append(f"line {lineno}: totals.boost is not "
                                      f"an object")
                    else:
                        for key in BOOST_KEYS:
                            if key not in boost:
                                errors.append(f"line {lineno}: totals.boost "
                                              f"missing key {key!r}")
                if isinstance(totals, dict) and "sched" in totals:
                    sched = totals["sched"]
                    if not isinstance(sched, dict):
                        errors.append(f"line {lineno}: totals.sched is not "
                                      f"an object")
                    else:
                        for key in SCHED_KEYS:
                            if key not in sched:
                                errors.append(f"line {lineno}: totals.sched "
                                              f"missing key {key!r}")
                if isinstance(totals, dict) and "htm" in totals:
                    htm = totals["htm"]
                    if not isinstance(htm, dict):
                        errors.append(f"line {lineno}: totals.htm is not "
                                      f"an object")
                    else:
                        for key in HTM_KEYS:
                            if key not in htm:
                                errors.append(f"line {lineno}: totals.htm "
                                              f"missing key {key!r}")
                records += 1
    except OSError as err:
        errors.append(f"cannot read: {err}")
    if records == 0 and not errors:
        errors.append("no records (sampler must flush at least one on exit)")
    return records, errors


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print(__doc__.strip().splitlines()[0])
        print("usage: validate_telemetry.py FILE.jsonl [FILE.jsonl ...]")
        return 2
    failed = False
    for path in argv:
        records, errors = validate_file(path)
        if errors:
            failed = True
            print(f"validate_telemetry: {path}: INVALID "
                  f"({records} record(s)):")
            for e in errors[:20]:
                print(f"  {e}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            print(f"validate_telemetry: {path}: OK ({records} record(s))")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
