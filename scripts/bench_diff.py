#!/usr/bin/env python3
"""Compare two otm-bench-stats-v1 JSON files (BENCH_E<n>.json).

The benchmarks emit machine-readable stats next to their timing numbers.
Timing moves with the host; the *count* columns (static barriers after each
pass, runtime filter hits, GC compaction drops, ...) are deterministic and
must not drift when a change claims to be perf-only. This tool diffs the
deterministic rows of two such files and fails when any count changes.

Usage:
  bench_diff.py BASE.json NEW.json [--allow-diff]

Compared:
  - runs[]           per-row count fields, matched by "label"
  - pass_stats[]     static pass counters, matched by "group/name"

Excluded (host/timing dependent):
  - per-row timing fields (cpu_time_ns, real_time_ns, seconds, iterations)
  - the stm/txn_cm aggregate counter blocks and histograms: they also count
    warm-up and timing iterations, whose number the benchmark harness picks
    adaptively, so they are not comparable across runs

Exit status: 0 when all compared fields match (or --allow-diff), 1 on any
difference, 2 on usage/schema errors.
"""

import argparse
import json
import re
import sys

SCHEMA = "otm-bench-stats-v1"

# Per-row fields that scale with wall time or the harness's adaptive
# iteration count; everything else in a run row is a deterministic count
# (or a checksum-style "result" that must match exactly).
TIMING_FIELDS = {"cpu_time_ns", "real_time_ns", "seconds", "iterations",
                 "ns_per_op", "ops_per_sec"}

# Timing-like fields by shape: anything measured in cycles or nanoseconds,
# quantiles of latency histograms (commit_p50_cycles, ...), and rates. These
# vary with the host clock, so new rows of this shape must never trip the
# count gate. The nd_ prefix marks counts that are nondeterministic by
# construction (abort/retry/wait totals that depend on thread interleaving);
# benchmarks use it to report them without joining the gate. E12's hardware
# tier is the canonical example: every transaction commits exactly once, so
# txns/commits are gated, but *which tier* committed it depends on the
# machine's RTM support — the hit split and abort-code counters are nd_.
TIMING_PATTERNS = re.compile(
    r"(_cycles|_ns|_us|_ms|_per_sec|_percent)$|^(p50|p99|p999)(_|$)|^nd_")


def is_timing_field(name):
    return name in TIMING_FIELDS or TIMING_PATTERNS.search(name) is not None


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"bench_diff: cannot read {path}: {err}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"bench_diff: {path}: expected schema {SCHEMA!r}, "
                 f"got {doc.get('schema')!r}")
    return doc


def comparable_rows(doc):
    """Yields (row_key, {field: value}) for every deterministic row."""
    for row in doc.get("runs", []):
        label = row.get("label", "?")
        fields = {k: v for k, v in row.items()
                  if k != "label" and not is_timing_field(k)}
        if fields:
            yield f"runs/{label}", fields
    for row in doc.get("pass_stats", []):
        key = f"pass_stats/{row.get('group', '?')}/{row.get('name', '?')}"
        yield key, {"value": row.get("value")}


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Diff the deterministic count rows of two "
                    "otm-bench-stats-v1 files.")
    ap.add_argument("base", help="baseline BENCH_E<n>.json")
    ap.add_argument("new", help="candidate BENCH_E<n>.json")
    ap.add_argument("--allow-diff", action="store_true",
                    help="report differences but exit 0")
    args = ap.parse_args(argv)

    base_doc, new_doc = load(args.base), load(args.new)
    if base_doc.get("bench") != new_doc.get("bench"):
        sys.exit(f"bench_diff: comparing different benches: "
                 f"{base_doc.get('bench')!r} vs {new_doc.get('bench')!r}")

    base_rows = dict(comparable_rows(base_doc))
    new_rows = dict(comparable_rows(new_doc))

    diffs = []
    for key in sorted(base_rows.keys() | new_rows.keys()):
        b, n = base_rows.get(key), new_rows.get(key)
        if b is None:
            diffs.append(f"{key}: only in {args.new}")
            continue
        if n is None:
            diffs.append(f"{key}: only in {args.base}")
            continue
        for field in sorted(b.keys() | n.keys()):
            bv, nv = b.get(field), n.get(field)
            if bv == nv:
                continue
            delta = ""
            if isinstance(bv, (int, float)) and isinstance(nv, (int, float)):
                delta = f" ({nv - bv:+})"
            diffs.append(f"{key}.{field}: {bv} -> {nv}{delta}")

    bench = base_doc.get("bench", "?")
    if diffs:
        print(f"bench_diff: {bench}: {len(diffs)} difference(s):")
        for d in diffs:
            print(f"  {d}")
        return 0 if args.allow_diff else 1
    print(f"bench_diff: {bench}: {len(base_rows)} row(s) identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
