# Empty compiler generated dependencies file for directory.
# This may be replaced when dependencies are built.
