file(REMOVE_RECURSE
  "CMakeFiles/directory.dir/directory.cpp.o"
  "CMakeFiles/directory.dir/directory.cpp.o.d"
  "directory"
  "directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
