file(REMOVE_RECURSE
  "CMakeFiles/txc.dir/txc.cpp.o"
  "CMakeFiles/txc.dir/txc.cpp.o.d"
  "txc"
  "txc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
