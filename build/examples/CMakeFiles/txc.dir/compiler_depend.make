# Empty compiler generated dependencies file for txc.
# This may be replaced when dependencies are built.
