# Empty compiler generated dependencies file for otm_tmir.
# This may be replaced when dependencies are built.
