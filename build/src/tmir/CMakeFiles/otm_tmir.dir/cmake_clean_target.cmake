file(REMOVE_RECURSE
  "libotm_tmir.a"
)
