
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tmir/AtomicRegions.cpp" "src/tmir/CMakeFiles/otm_tmir.dir/AtomicRegions.cpp.o" "gcc" "src/tmir/CMakeFiles/otm_tmir.dir/AtomicRegions.cpp.o.d"
  "/root/repo/src/tmir/Dominators.cpp" "src/tmir/CMakeFiles/otm_tmir.dir/Dominators.cpp.o" "gcc" "src/tmir/CMakeFiles/otm_tmir.dir/Dominators.cpp.o.d"
  "/root/repo/src/tmir/IR.cpp" "src/tmir/CMakeFiles/otm_tmir.dir/IR.cpp.o" "gcc" "src/tmir/CMakeFiles/otm_tmir.dir/IR.cpp.o.d"
  "/root/repo/src/tmir/LoopInfo.cpp" "src/tmir/CMakeFiles/otm_tmir.dir/LoopInfo.cpp.o" "gcc" "src/tmir/CMakeFiles/otm_tmir.dir/LoopInfo.cpp.o.d"
  "/root/repo/src/tmir/Parser.cpp" "src/tmir/CMakeFiles/otm_tmir.dir/Parser.cpp.o" "gcc" "src/tmir/CMakeFiles/otm_tmir.dir/Parser.cpp.o.d"
  "/root/repo/src/tmir/Verifier.cpp" "src/tmir/CMakeFiles/otm_tmir.dir/Verifier.cpp.o" "gcc" "src/tmir/CMakeFiles/otm_tmir.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
