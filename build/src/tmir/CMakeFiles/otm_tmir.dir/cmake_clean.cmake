file(REMOVE_RECURSE
  "CMakeFiles/otm_tmir.dir/AtomicRegions.cpp.o"
  "CMakeFiles/otm_tmir.dir/AtomicRegions.cpp.o.d"
  "CMakeFiles/otm_tmir.dir/Dominators.cpp.o"
  "CMakeFiles/otm_tmir.dir/Dominators.cpp.o.d"
  "CMakeFiles/otm_tmir.dir/IR.cpp.o"
  "CMakeFiles/otm_tmir.dir/IR.cpp.o.d"
  "CMakeFiles/otm_tmir.dir/LoopInfo.cpp.o"
  "CMakeFiles/otm_tmir.dir/LoopInfo.cpp.o.d"
  "CMakeFiles/otm_tmir.dir/Parser.cpp.o"
  "CMakeFiles/otm_tmir.dir/Parser.cpp.o.d"
  "CMakeFiles/otm_tmir.dir/Verifier.cpp.o"
  "CMakeFiles/otm_tmir.dir/Verifier.cpp.o.d"
  "libotm_tmir.a"
  "libotm_tmir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_tmir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
