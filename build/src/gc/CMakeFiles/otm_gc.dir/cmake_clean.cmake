file(REMOVE_RECURSE
  "CMakeFiles/otm_gc.dir/EpochManager.cpp.o"
  "CMakeFiles/otm_gc.dir/EpochManager.cpp.o.d"
  "libotm_gc.a"
  "libotm_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
