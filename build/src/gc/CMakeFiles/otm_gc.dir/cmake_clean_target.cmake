file(REMOVE_RECURSE
  "libotm_gc.a"
)
