# Empty compiler generated dependencies file for otm_gc.
# This may be replaced when dependencies are built.
