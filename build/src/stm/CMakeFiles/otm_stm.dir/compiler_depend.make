# Empty compiler generated dependencies file for otm_stm.
# This may be replaced when dependencies are built.
