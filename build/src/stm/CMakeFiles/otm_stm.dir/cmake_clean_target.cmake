file(REMOVE_RECURSE
  "libotm_stm.a"
)
