file(REMOVE_RECURSE
  "CMakeFiles/otm_stm.dir/TxManager.cpp.o"
  "CMakeFiles/otm_stm.dir/TxManager.cpp.o.d"
  "libotm_stm.a"
  "libotm_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
