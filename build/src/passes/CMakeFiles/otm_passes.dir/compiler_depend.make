# Empty compiler generated dependencies file for otm_passes.
# This may be replaced when dependencies are built.
