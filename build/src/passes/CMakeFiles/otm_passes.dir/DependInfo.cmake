
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/AllocElision.cpp" "src/passes/CMakeFiles/otm_passes.dir/AllocElision.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/AllocElision.cpp.o.d"
  "/root/repo/src/passes/ConstFold.cpp" "src/passes/CMakeFiles/otm_passes.dir/ConstFold.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/ConstFold.cpp.o.d"
  "/root/repo/src/passes/DCE.cpp" "src/passes/CMakeFiles/otm_passes.dir/DCE.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/DCE.cpp.o.d"
  "/root/repo/src/passes/Inline.cpp" "src/passes/CMakeFiles/otm_passes.dir/Inline.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/Inline.cpp.o.d"
  "/root/repo/src/passes/LocalCSE.cpp" "src/passes/CMakeFiles/otm_passes.dir/LocalCSE.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/LocalCSE.cpp.o.d"
  "/root/repo/src/passes/LowerAtomic.cpp" "src/passes/CMakeFiles/otm_passes.dir/LowerAtomic.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/LowerAtomic.cpp.o.d"
  "/root/repo/src/passes/OpenElim.cpp" "src/passes/CMakeFiles/otm_passes.dir/OpenElim.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/OpenElim.cpp.o.d"
  "/root/repo/src/passes/OpenLicm.cpp" "src/passes/CMakeFiles/otm_passes.dir/OpenLicm.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/OpenLicm.cpp.o.d"
  "/root/repo/src/passes/Pass.cpp" "src/passes/CMakeFiles/otm_passes.dir/Pass.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/Pass.cpp.o.d"
  "/root/repo/src/passes/Pipeline.cpp" "src/passes/CMakeFiles/otm_passes.dir/Pipeline.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/Pipeline.cpp.o.d"
  "/root/repo/src/passes/SimplifyCFG.cpp" "src/passes/CMakeFiles/otm_passes.dir/SimplifyCFG.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/SimplifyCFG.cpp.o.d"
  "/root/repo/src/passes/TxClone.cpp" "src/passes/CMakeFiles/otm_passes.dir/TxClone.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/TxClone.cpp.o.d"
  "/root/repo/src/passes/Upgrade.cpp" "src/passes/CMakeFiles/otm_passes.dir/Upgrade.cpp.o" "gcc" "src/passes/CMakeFiles/otm_passes.dir/Upgrade.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tmir/CMakeFiles/otm_tmir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
