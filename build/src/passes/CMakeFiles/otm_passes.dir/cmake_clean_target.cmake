file(REMOVE_RECURSE
  "libotm_passes.a"
)
