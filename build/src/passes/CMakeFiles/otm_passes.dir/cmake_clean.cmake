file(REMOVE_RECURSE
  "CMakeFiles/otm_passes.dir/AllocElision.cpp.o"
  "CMakeFiles/otm_passes.dir/AllocElision.cpp.o.d"
  "CMakeFiles/otm_passes.dir/ConstFold.cpp.o"
  "CMakeFiles/otm_passes.dir/ConstFold.cpp.o.d"
  "CMakeFiles/otm_passes.dir/DCE.cpp.o"
  "CMakeFiles/otm_passes.dir/DCE.cpp.o.d"
  "CMakeFiles/otm_passes.dir/Inline.cpp.o"
  "CMakeFiles/otm_passes.dir/Inline.cpp.o.d"
  "CMakeFiles/otm_passes.dir/LocalCSE.cpp.o"
  "CMakeFiles/otm_passes.dir/LocalCSE.cpp.o.d"
  "CMakeFiles/otm_passes.dir/LowerAtomic.cpp.o"
  "CMakeFiles/otm_passes.dir/LowerAtomic.cpp.o.d"
  "CMakeFiles/otm_passes.dir/OpenElim.cpp.o"
  "CMakeFiles/otm_passes.dir/OpenElim.cpp.o.d"
  "CMakeFiles/otm_passes.dir/OpenLicm.cpp.o"
  "CMakeFiles/otm_passes.dir/OpenLicm.cpp.o.d"
  "CMakeFiles/otm_passes.dir/Pass.cpp.o"
  "CMakeFiles/otm_passes.dir/Pass.cpp.o.d"
  "CMakeFiles/otm_passes.dir/Pipeline.cpp.o"
  "CMakeFiles/otm_passes.dir/Pipeline.cpp.o.d"
  "CMakeFiles/otm_passes.dir/SimplifyCFG.cpp.o"
  "CMakeFiles/otm_passes.dir/SimplifyCFG.cpp.o.d"
  "CMakeFiles/otm_passes.dir/TxClone.cpp.o"
  "CMakeFiles/otm_passes.dir/TxClone.cpp.o.d"
  "CMakeFiles/otm_passes.dir/Upgrade.cpp.o"
  "CMakeFiles/otm_passes.dir/Upgrade.cpp.o.d"
  "libotm_passes.a"
  "libotm_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
