file(REMOVE_RECURSE
  "libotm_wstm.a"
)
