# Empty dependencies file for otm_wstm.
# This may be replaced when dependencies are built.
