file(REMOVE_RECURSE
  "CMakeFiles/otm_wstm.dir/WordStm.cpp.o"
  "CMakeFiles/otm_wstm.dir/WordStm.cpp.o.d"
  "libotm_wstm.a"
  "libotm_wstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_wstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
