# Empty compiler generated dependencies file for otm_interp.
# This may be replaced when dependencies are built.
