file(REMOVE_RECURSE
  "libotm_interp.a"
)
