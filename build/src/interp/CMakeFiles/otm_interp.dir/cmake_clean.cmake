file(REMOVE_RECURSE
  "CMakeFiles/otm_interp.dir/Heap.cpp.o"
  "CMakeFiles/otm_interp.dir/Heap.cpp.o.d"
  "CMakeFiles/otm_interp.dir/Interp.cpp.o"
  "CMakeFiles/otm_interp.dir/Interp.cpp.o.d"
  "libotm_interp.a"
  "libotm_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/otm_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
