file(REMOVE_RECURSE
  "CMakeFiles/e6_upgrade.dir/e6_upgrade.cpp.o"
  "CMakeFiles/e6_upgrade.dir/e6_upgrade.cpp.o.d"
  "e6_upgrade"
  "e6_upgrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_upgrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
