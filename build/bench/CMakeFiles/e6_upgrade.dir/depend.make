# Empty dependencies file for e6_upgrade.
# This may be replaced when dependencies are built.
