file(REMOVE_RECURSE
  "CMakeFiles/e1_seq_overhead.dir/e1_seq_overhead.cpp.o"
  "CMakeFiles/e1_seq_overhead.dir/e1_seq_overhead.cpp.o.d"
  "e1_seq_overhead"
  "e1_seq_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_seq_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
