# Empty dependencies file for e1_seq_overhead.
# This may be replaced when dependencies are built.
