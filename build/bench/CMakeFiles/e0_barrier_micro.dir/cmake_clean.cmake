file(REMOVE_RECURSE
  "CMakeFiles/e0_barrier_micro.dir/e0_barrier_micro.cpp.o"
  "CMakeFiles/e0_barrier_micro.dir/e0_barrier_micro.cpp.o.d"
  "e0_barrier_micro"
  "e0_barrier_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e0_barrier_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
