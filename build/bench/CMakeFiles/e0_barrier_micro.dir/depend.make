# Empty dependencies file for e0_barrier_micro.
# This may be replaced when dependencies are built.
