file(REMOVE_RECURSE
  "CMakeFiles/e5_dynamic_counts.dir/e5_dynamic_counts.cpp.o"
  "CMakeFiles/e5_dynamic_counts.dir/e5_dynamic_counts.cpp.o.d"
  "e5_dynamic_counts"
  "e5_dynamic_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_dynamic_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
