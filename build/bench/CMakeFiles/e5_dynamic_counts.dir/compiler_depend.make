# Empty compiler generated dependencies file for e5_dynamic_counts.
# This may be replaced when dependencies are built.
