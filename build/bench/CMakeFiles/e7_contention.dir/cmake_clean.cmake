file(REMOVE_RECURSE
  "CMakeFiles/e7_contention.dir/e7_contention.cpp.o"
  "CMakeFiles/e7_contention.dir/e7_contention.cpp.o.d"
  "e7_contention"
  "e7_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
