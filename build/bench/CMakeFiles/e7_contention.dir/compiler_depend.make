# Empty compiler generated dependencies file for e7_contention.
# This may be replaced when dependencies are built.
