file(REMOVE_RECURSE
  "CMakeFiles/e4_static_counts.dir/e4_static_counts.cpp.o"
  "CMakeFiles/e4_static_counts.dir/e4_static_counts.cpp.o.d"
  "e4_static_counts"
  "e4_static_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_static_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
