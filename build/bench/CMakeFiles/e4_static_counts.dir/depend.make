# Empty dependencies file for e4_static_counts.
# This may be replaced when dependencies are built.
