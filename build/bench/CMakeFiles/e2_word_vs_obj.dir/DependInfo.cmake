
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/e2_word_vs_obj.cpp" "bench/CMakeFiles/e2_word_vs_obj.dir/e2_word_vs_obj.cpp.o" "gcc" "bench/CMakeFiles/e2_word_vs_obj.dir/e2_word_vs_obj.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stm/CMakeFiles/otm_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/wstm/CMakeFiles/otm_wstm.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/otm_gc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
