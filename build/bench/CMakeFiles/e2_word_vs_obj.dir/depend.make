# Empty dependencies file for e2_word_vs_obj.
# This may be replaced when dependencies are built.
