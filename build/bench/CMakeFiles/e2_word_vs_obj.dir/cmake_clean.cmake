file(REMOVE_RECURSE
  "CMakeFiles/e2_word_vs_obj.dir/e2_word_vs_obj.cpp.o"
  "CMakeFiles/e2_word_vs_obj.dir/e2_word_vs_obj.cpp.o.d"
  "e2_word_vs_obj"
  "e2_word_vs_obj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_word_vs_obj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
