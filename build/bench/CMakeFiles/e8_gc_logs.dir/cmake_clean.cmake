file(REMOVE_RECURSE
  "CMakeFiles/e8_gc_logs.dir/e8_gc_logs.cpp.o"
  "CMakeFiles/e8_gc_logs.dir/e8_gc_logs.cpp.o.d"
  "e8_gc_logs"
  "e8_gc_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_gc_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
