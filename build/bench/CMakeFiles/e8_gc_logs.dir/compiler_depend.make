# Empty compiler generated dependencies file for e8_gc_logs.
# This may be replaced when dependencies are built.
