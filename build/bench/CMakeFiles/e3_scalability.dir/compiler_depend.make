# Empty compiler generated dependencies file for e3_scalability.
# This may be replaced when dependencies are built.
