file(REMOVE_RECURSE
  "CMakeFiles/e3_scalability.dir/e3_scalability.cpp.o"
  "CMakeFiles/e3_scalability.dir/e3_scalability.cpp.o.d"
  "e3_scalability"
  "e3_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
