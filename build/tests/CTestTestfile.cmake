# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/SupportTest[1]_include.cmake")
include("/root/repo/build/tests/EpochManagerTest[1]_include.cmake")
include("/root/repo/build/tests/StmBasicTest[1]_include.cmake")
include("/root/repo/build/tests/StmConcurrencyTest[1]_include.cmake")
include("/root/repo/build/tests/WordStmTest[1]_include.cmake")
include("/root/repo/build/tests/ContainersListMapTest[1]_include.cmake")
include("/root/repo/build/tests/TmirCoreTest[1]_include.cmake")
include("/root/repo/build/tests/PassesTest[1]_include.cmake")
include("/root/repo/build/tests/InterpTest[1]_include.cmake")
include("/root/repo/build/tests/ContainersTreeSkipTest[1]_include.cmake")
include("/root/repo/build/tests/EndToEndTest[1]_include.cmake")
include("/root/repo/build/tests/InlineTest[1]_include.cmake")
include("/root/repo/build/tests/ConstFoldTest[1]_include.cmake")
include("/root/repo/build/tests/SyncBaselinesTest[1]_include.cmake")
include("/root/repo/build/tests/StmPropertyTest[1]_include.cmake")
