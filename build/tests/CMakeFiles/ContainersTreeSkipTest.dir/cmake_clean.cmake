file(REMOVE_RECURSE
  "CMakeFiles/ContainersTreeSkipTest.dir/ContainersTreeSkipTest.cpp.o"
  "CMakeFiles/ContainersTreeSkipTest.dir/ContainersTreeSkipTest.cpp.o.d"
  "ContainersTreeSkipTest"
  "ContainersTreeSkipTest.pdb"
  "ContainersTreeSkipTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ContainersTreeSkipTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
