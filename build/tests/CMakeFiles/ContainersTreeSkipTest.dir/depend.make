# Empty dependencies file for ContainersTreeSkipTest.
# This may be replaced when dependencies are built.
