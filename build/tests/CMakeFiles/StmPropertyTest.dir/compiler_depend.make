# Empty compiler generated dependencies file for StmPropertyTest.
# This may be replaced when dependencies are built.
