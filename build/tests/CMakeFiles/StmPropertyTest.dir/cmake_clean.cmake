file(REMOVE_RECURSE
  "CMakeFiles/StmPropertyTest.dir/StmPropertyTest.cpp.o"
  "CMakeFiles/StmPropertyTest.dir/StmPropertyTest.cpp.o.d"
  "StmPropertyTest"
  "StmPropertyTest.pdb"
  "StmPropertyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StmPropertyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
