file(REMOVE_RECURSE
  "CMakeFiles/TmirCoreTest.dir/TmirCoreTest.cpp.o"
  "CMakeFiles/TmirCoreTest.dir/TmirCoreTest.cpp.o.d"
  "TmirCoreTest"
  "TmirCoreTest.pdb"
  "TmirCoreTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/TmirCoreTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
