# Empty dependencies file for TmirCoreTest.
# This may be replaced when dependencies are built.
