file(REMOVE_RECURSE
  "CMakeFiles/InlineTest.dir/InlineTest.cpp.o"
  "CMakeFiles/InlineTest.dir/InlineTest.cpp.o.d"
  "InlineTest"
  "InlineTest.pdb"
  "InlineTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/InlineTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
