# Empty dependencies file for InterpTest.
# This may be replaced when dependencies are built.
