# Empty compiler generated dependencies file for ContainersListMapTest.
# This may be replaced when dependencies are built.
