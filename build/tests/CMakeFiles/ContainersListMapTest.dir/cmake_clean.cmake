file(REMOVE_RECURSE
  "CMakeFiles/ContainersListMapTest.dir/ContainersListMapTest.cpp.o"
  "CMakeFiles/ContainersListMapTest.dir/ContainersListMapTest.cpp.o.d"
  "ContainersListMapTest"
  "ContainersListMapTest.pdb"
  "ContainersListMapTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ContainersListMapTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
