# Empty dependencies file for ContainersListMapTest.
# This may be replaced when dependencies are built.
