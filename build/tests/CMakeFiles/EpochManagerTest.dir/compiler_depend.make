# Empty compiler generated dependencies file for EpochManagerTest.
# This may be replaced when dependencies are built.
