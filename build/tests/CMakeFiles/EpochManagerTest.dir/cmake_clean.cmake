file(REMOVE_RECURSE
  "CMakeFiles/EpochManagerTest.dir/EpochManagerTest.cpp.o"
  "CMakeFiles/EpochManagerTest.dir/EpochManagerTest.cpp.o.d"
  "EpochManagerTest"
  "EpochManagerTest.pdb"
  "EpochManagerTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/EpochManagerTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
