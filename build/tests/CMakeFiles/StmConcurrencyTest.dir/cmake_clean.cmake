file(REMOVE_RECURSE
  "CMakeFiles/StmConcurrencyTest.dir/StmConcurrencyTest.cpp.o"
  "CMakeFiles/StmConcurrencyTest.dir/StmConcurrencyTest.cpp.o.d"
  "StmConcurrencyTest"
  "StmConcurrencyTest.pdb"
  "StmConcurrencyTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StmConcurrencyTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
