# Empty compiler generated dependencies file for StmConcurrencyTest.
# This may be replaced when dependencies are built.
