# Empty dependencies file for SyncBaselinesTest.
# This may be replaced when dependencies are built.
