file(REMOVE_RECURSE
  "CMakeFiles/SyncBaselinesTest.dir/SyncBaselinesTest.cpp.o"
  "CMakeFiles/SyncBaselinesTest.dir/SyncBaselinesTest.cpp.o.d"
  "SyncBaselinesTest"
  "SyncBaselinesTest.pdb"
  "SyncBaselinesTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/SyncBaselinesTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
