file(REMOVE_RECURSE
  "CMakeFiles/WordStmTest.dir/WordStmTest.cpp.o"
  "CMakeFiles/WordStmTest.dir/WordStmTest.cpp.o.d"
  "WordStmTest"
  "WordStmTest.pdb"
  "WordStmTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/WordStmTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
