# Empty dependencies file for WordStmTest.
# This may be replaced when dependencies are built.
