
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/EndToEndTest.cpp" "tests/CMakeFiles/EndToEndTest.dir/EndToEndTest.cpp.o" "gcc" "tests/CMakeFiles/EndToEndTest.dir/EndToEndTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/otm_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/otm_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/wstm/CMakeFiles/otm_wstm.dir/DependInfo.cmake"
  "/root/repo/build/src/tmir/CMakeFiles/otm_tmir.dir/DependInfo.cmake"
  "/root/repo/build/src/stm/CMakeFiles/otm_stm.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/otm_gc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
