# Empty dependencies file for StmBasicTest.
# This may be replaced when dependencies are built.
