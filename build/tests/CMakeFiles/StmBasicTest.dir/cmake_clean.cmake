file(REMOVE_RECURSE
  "CMakeFiles/StmBasicTest.dir/StmBasicTest.cpp.o"
  "CMakeFiles/StmBasicTest.dir/StmBasicTest.cpp.o.d"
  "StmBasicTest"
  "StmBasicTest.pdb"
  "StmBasicTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/StmBasicTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
