file(REMOVE_RECURSE
  "CMakeFiles/ConstFoldTest.dir/ConstFoldTest.cpp.o"
  "CMakeFiles/ConstFoldTest.dir/ConstFoldTest.cpp.o.d"
  "ConstFoldTest"
  "ConstFoldTest.pdb"
  "ConstFoldTest[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ConstFoldTest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
