# Empty compiler generated dependencies file for ConstFoldTest.
# This may be replaced when dependencies are built.
